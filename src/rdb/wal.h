// Write-ahead log: logical redo records for committed work on durable
// tables, appended to one file per database directory.
//
// Redo is the missing half of the logging the transaction subsystem already
// does: rdb/txn.h logs one logical UNDO record per row mutation so an open
// transaction can roll back; the WAL captures the matching REDO image (table
// name + row id + values) so committed work survives a crash. Records are
// serialized at mutation time into an in-memory pending buffer (the row data
// may be gone by commit — e.g. a staged table dropped mid-unit), truncated
// on scope rollback in lockstep with the undo log, and written to the file
// as ONE unit — data frames followed by a commit frame carrying the next-id
// counter — when the outermost transaction commits (or, outside a
// transaction, when a top-level statement finishes, so autocommit writes and
// the bulk-load API persist too). Only whole units ever reach the file: a
// crash can tear the tail of the last write(), never interleave units.
//
// File format (little-endian):
//   header:  "XUPDWAL1" (8 bytes) | u32 format version | u64 epoch
//   frame:   u32 payload length | u32 CRC32(payload) | payload
//   payload: u8 kind | kind-specific fields (see wal.cc)
//
// Since format version 2 each WAL file carries a table-name dictionary:
// the first data record naming a durable table is preceded by a table-def
// frame (u16 id | name) and every insert/delete/update frame references
// the u16 id instead of repeating the name — ~30% fewer wal_bytes on
// narrow tables. The dictionary restarts with each file (checkpoints reset
// it); recovery reconstructs the committed prefix's dictionary and seeds
// the resuming writer with it.
//
// The epoch pairs the WAL with its snapshot (rdb/snapshot.h): Checkpoint
// writes a snapshot with epoch N+1 and then resets the WAL to epoch N+1, so
// a crash between the two steps leaves an epoch-N WAL that recovery
// recognizes as already contained in the snapshot and ignores. Off-thread
// checkpoints instead keep the WAL (same epoch) and stamp the snapshot with
// the byte offset it folds in; replay skips applying that prefix.
//
// Recovery (ReplayWal) buffers decoded records and applies them only when
// their commit frame arrives; a torn or corrupt frame ends the log — the
// committed prefix is kept, everything at and after the bad frame is
// discarded (the file is truncated back to the last commit boundary before
// new writes append). A bad header (wrong magic / unsupported version) is a
// hard error: that file is not a WAL we can interpret.
#ifndef XUPD_RDB_WAL_H_
#define XUPD_RDB_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "rdb/stats.h"
#include "rdb/value.h"
#include "rdb/vfs.h"

namespace xupd::rdb {

class Database;
class Table;

/// When the WAL fsyncs.
enum class SyncMode {
  kNone,     ///< never fsync; the OS flushes eventually (survives process
             ///< crash, not power loss).
  kCommit,   ///< fsync once per commit unit (classic durable commit).
  kBatched,  ///< group commit: a background flusher fsyncs every
             ///< `group_commit_window_us` microseconds (and on
             ///< checkpoint/close) — commits never fsync inline, so the
             ///< loss bound on power loss is one time window of
             ///< acknowledged units, not a unit count.
};

const char* ToString(SyncMode mode);

struct DurabilityOptions {
  SyncMode sync_mode = SyncMode::kCommit;
  /// kBatched: the background group-commit flusher's fsync period in
  /// microseconds. Power loss can drop at most the acknowledged commit
  /// units of the last un-fsynced window (plus the one fsync in flight).
  int group_commit_window_us = 2000;
  /// Filesystem to run all durable I/O through; null means Vfs::Default().
  /// Tests interpose a FaultVfs here (rdb/vfs.h).
  Vfs* vfs = nullptr;
};

// --- binary encoding helpers (shared with rdb/snapshot.cc) -----------------

namespace binio {

uint32_t Crc32(const void* data, size_t size);

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutString(std::string* out, std::string_view s);  ///< u32 len + bytes.
void PutValue(std::string* out, const Value& v);

/// Sequential decoder; any out-of-bounds read sets ok() false and every
/// later read returns a zero value, so callers check once at the end.
class Reader {
 public:
  Reader(const char* data, size_t size) : p_(data), end_(data + size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64();
  std::string String();
  Value ReadValue();

 private:
  bool Need(size_t n);
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace binio

// --- writer ----------------------------------------------------------------

class WalWriter {
 public:
  /// Opens (creating if needed) the WAL at `path` for appending. The file is
  /// truncated to `resume_offset` first — recovery passes the end of the last
  /// committed unit so a torn tail never precedes fresh records; 0 resets the
  /// file and writes a fresh header with `epoch`.
  /// `table_ids` (optional) seeds the per-file table-name dictionary when
  /// resuming an existing log (`resume_offset > 0`): the kept prefix
  /// already carries table-def records for those names, so the writer must
  /// not re-emit them under fresh ids. A reset (`resume_offset == 0`)
  /// starts with an empty dictionary.
  static Result<std::unique_ptr<WalWriter>> Open(
      Vfs* vfs, const std::string& path, uint64_t epoch, uint64_t resume_offset,
      const DurabilityOptions& options, Stats* stats,
      const std::vector<std::pair<std::string, uint16_t>>* table_ids =
          nullptr);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  uint64_t epoch() const { return epoch_; }
  /// Bytes (header included) up to the last successfully fsynced commit
  /// boundary — the on-disk file must hold at least this committed prefix
  /// even across a power loss (scrub anchor; anything beyond it is
  /// acknowledged-but-unsynced work or discardable tail). Units acked under
  /// kNone/kBatched before their group sync are intentionally not counted.
  /// Safe from any thread.
  uint64_t committed_bytes() const {
    return synced_size_.load(std::memory_order_acquire);
  }
  /// Bytes (header included) up to the last fully appended commit unit —
  /// the offset an off-thread checkpoint captures as "everything before
  /// this is folded into the snapshot". Writer thread (commit boundary).
  uint64_t file_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return file_size_;
  }

  /// A position in the pending buffer; taken at transaction-scope Begin and
  /// restored on rollback (mirrors the undo log's scope boundaries).
  /// Table-def records pended after the mark are rolled back with it (their
  /// ids were never written, so they are handed back to the counter).
  struct Mark {
    size_t bytes = 0;
    uint64_t records = 0;
  };
  Mark mark() const { return {pending_.size(), pending_records_}; }
  void TruncatePending(const Mark& m);
  bool pending_empty() const { return pending_.empty(); }

  // Record appends. Insert/update serialize the row data NOW (the values or
  // even the Table may be gone by commit time); all stay in memory until
  // CommitPending.
  void PendInsert(const Table& table, size_t rowid);
  void PendDelete(const Table& table, size_t rowid);
  void PendUpdate(const Table& table, size_t rowid, int column,
                  const Value& new_value);
  void PendDdl(std::string_view sql);

  /// Appends the commit frame (carrying the database's next-id counter),
  /// writes the whole unit to the file with one write, and fsyncs according
  /// to the sync mode. No-op when nothing is pending. (Rollback — outermost
  /// or savepoint — discards pending records via TruncatePending; only
  /// committed units ever reach this call.)
  Status CommitPending(int64_t next_id);

  /// Fail-stop this writer: every later CommitPending of a non-empty unit
  /// returns an error (reads — which never have pending redo — are
  /// unaffected). Used when the WAL file could not be reset after a
  /// checkpoint, so durable writes fail loudly instead of silently
  /// diverging from disk. The first cause is kept for diagnostics (the
  /// Database surfaces it in read-only mode). Safe from any thread (the
  /// group-commit flusher fail-stops on fsync failure; the writer
  /// discovers it at its next commit boundary).
  void MarkBroken(std::string cause) {
    std::lock_guard<std::mutex> lock(broken_mu_);
    if (broken_cause_.empty()) broken_cause_ = std::move(cause);
    broken_.store(true, std::memory_order_release);
  }
  bool broken() const { return broken_.load(std::memory_order_acquire); }
  /// Human-readable description of the first failure that fail-stopped this
  /// writer (operation + path + symbolic errno); empty when not broken.
  std::string broken_cause() const {
    std::lock_guard<std::mutex> lock(broken_mu_);
    return broken_cause_;
  }

  /// Wires the owning Database's observability sinks in after Open (each
  /// re-open after checkpoint re-attaches): CommitPending records its wall
  /// time into `commit_hist` plus a kWalUnit event, Sync records fsync time
  /// into `fsync_hist` plus a kFsync event and the number of commit units
  /// the fsync covered into `batch_hist` (group-commit batch size). All may
  /// be null (detached writer, e.g. the TryHeal probe) — timing is skipped
  /// entirely then.
  void AttachMetrics(Histogram* commit_hist, Histogram* fsync_hist,
                     Histogram* batch_hist, EventLog* events) {
    commit_hist_ = commit_hist;
    fsync_hist_ = fsync_hist;
    batch_hist_ = batch_hist;
    events_ = events;
  }

  /// Wires the Database's memory accountant: the pending redo buffer's
  /// bytes charge to mem.wal_pending as records are pended and release when
  /// a unit commits (or rolls back). The accountant's wal_pending_limit is
  /// the bounded-buffer watermark — once the charge crosses it, statement
  /// governance polls (ExecContext::PollGovernance) fail the unit cleanly
  /// with kResourceExhausted instead of letting the buffer grow unbounded.
  /// Writer thread only, like the pending buffer itself.
  void set_accountant(MemoryAccountant* mem) { mem_ = mem; }

  /// fsync now if anything written is unsynced. Safe from any thread —
  /// this is the group-commit flusher's entry point.
  Status Sync();
  /// Sync + close the file descriptor. Pending (uncommitted) records are
  /// discarded — only committed units ever persist.
  Status Close();

 private:
  WalWriter() = default;
  /// Sync with mu_ already held (CommitPending's kCommit inline fsync).
  Status SyncLocked();
  /// In-place framing: reserves the 8-byte length+CRC header in pending_,
  /// returns its offset; FrameEnd patches it over the bytes appended since.
  size_t FrameBegin();
  void FrameEnd(size_t header_at);
  /// Fast path: `buf` holds 8 reserved header bytes + `payload_size` payload
  /// bytes on the caller's stack; fills the header and appends the whole
  /// frame with one copy.
  void AppendFixedFrame(const char* buf, size_t payload_size);

  /// Interns `name` into the per-file table-id dictionary, pending a
  /// table-def record on first sight. Each WAL file carries each durable
  /// table name at most once; every data record then spends 2 bytes on the
  /// id instead of 4 + len on the name.
  uint16_t TableId(const std::string& name);

  /// Reconciles the mem.wal_pending charge with pending_.size(). Called
  /// after every append/truncate/flush of the pending buffer (writer
  /// thread only, like the buffer).
  void SyncPendingCharge() {
    if (mem_ == nullptr) return;
    const size_t now = pending_.size();
    if (now > charged_pending_) {
      mem_->Charge(MemoryAccountant::kWalPending, now - charged_pending_);
    } else if (now < charged_pending_) {
      mem_->Release(MemoryAccountant::kWalPending, charged_pending_ - now);
    }
    charged_pending_ = now;
  }

  std::unique_ptr<VfsFile> file_;
  std::string path_;
  uint64_t epoch_ = 0;
  DurabilityOptions options_;
  Stats* stats_ = nullptr;
  std::string pending_;
  uint64_t pending_records_ = 0;
  /// Per-file table-name dictionary (see TableId).
  std::unordered_map<std::string, uint16_t> table_ids_;
  uint16_t next_table_id_ = 0;
  /// Defs pended but not yet committed: (name, id, frame offset in
  /// pending_), offset-ascending — TruncatePending drops a suffix.
  std::vector<std::tuple<std::string, uint16_t, size_t>> pending_defs_;
  /// Observability sinks (see AttachMetrics); null = detached.
  Histogram* commit_hist_ = nullptr;
  Histogram* fsync_hist_ = nullptr;
  Histogram* batch_hist_ = nullptr;
  EventLog* events_ = nullptr;
  /// Guards the file descriptor and its byte-count state (file_size_,
  /// dirty_, commits_since_sync_) against the group-commit flusher thread,
  /// which calls Sync() concurrently with the writer's CommitPending.
  /// The pending buffer and table-id dictionary stay writer-thread-only
  /// and are touched outside the lock.
  mutable std::mutex mu_;
  uint64_t commits_since_sync_ = 0;  ///< guarded by mu_.
  /// Causal handoff from the last committed unit's span to the fsync that
  /// will persist it — CommitPending stashes it, SyncLocked adopts it as
  /// the kFsync event's parent. Under kBatched the adopting thread is the
  /// group-commit flusher, so this is the writer->flusher trace edge.
  /// Guarded by mu_.
  trace::Handoff sync_handoff_;
  bool dirty_ = false;  ///< written bytes not yet fsynced; guarded by mu_.
  /// File length after the last fully written unit — where a failed append
  /// truncates back to before the writer fail-stops. Guarded by mu_.
  uint64_t file_size_ = 0;
  /// file_size_ as of the last successful fsync: the newest boundary the
  /// disk is guaranteed to retain across power loss (committed_bytes()).
  /// Atomic so scrub/status paths read it without the file lock.
  std::atomic<uint64_t> synced_size_{0};
  /// Set when an append failed mid-write: the writer refuses further
  /// commits so the on-disk log always ends at a unit boundary. The flag
  /// is atomic (flusher sets it on fsync failure); the cause string has
  /// its own lock.
  std::atomic<bool> broken_{false};
  mutable std::mutex broken_mu_;
  std::string broken_cause_;  ///< guarded by broken_mu_.
  /// Memory accountant (null = unaccounted) and the mem.wal_pending bytes
  /// currently charged for pending_. Writer thread only.
  MemoryAccountant* mem_ = nullptr;
  size_t charged_pending_ = 0;
};

// --- recovery --------------------------------------------------------------

struct WalReplayResult {
  /// Byte offset just past the last applied commit frame (== header size when
  /// nothing was committed). 0 means the file should be reset from scratch
  /// (missing, empty, or from an epoch older than the snapshot's).
  uint64_t valid_bytes = 0;
  uint64_t applied_records = 0;
  /// Table-name dictionary accumulated by the committed prefix, in def
  /// order — seeds WalWriter::Open when it resumes this file.
  std::vector<std::pair<std::string, uint16_t>> table_ids;
};

/// Replays the committed prefix of the WAL at `path` into `db` (which must
/// already hold the snapshot state of `snapshot_epoch`). Torn or corrupt
/// frames end the log silently (crash semantics); a WAL whose epoch predates
/// the snapshot is ignored; a bad header or a record that cannot be applied
/// (e.g. an insert whose row id does not line up) is a hard error.
/// `start_offset` (the snapshot's wal_offset, from an off-thread checkpoint
/// that kept the WAL) marks the prefix already folded into the snapshot:
/// frames before it are still decoded — the table-name dictionary and
/// commit boundaries span the whole file — but their units are not applied
/// and their commit frames do not move next_id.
Result<WalReplayResult> ReplayWal(Database* db, Vfs* vfs,
                                  const std::string& path,
                                  uint64_t snapshot_epoch,
                                  uint64_t start_offset = 0);

/// Integrity scrub: re-walks the WAL file's header and frame CRCs with the
/// same tolerance as ReplayWal — a torn or CRC-failing tail is a crash
/// artifact recovery discards, not a violation. What IS flagged: a corrupt
/// header, a version mismatch, a file epoch ahead of `expected_epoch`
/// (nothing durable could anchor it), and — when `writer_epoch`/
/// `writer_bytes` describe the open writer and the file is that writer's
/// epoch — a last commit boundary short of `writer_bytes`, meaning committed
/// data was lost. Returns human-readable violations (empty = clean). A
/// missing file is clean when `expected_epoch` is 0 (no writer open).
std::vector<std::string> VerifyWalFile(Vfs* vfs, const std::string& path,
                                       uint64_t expected_epoch,
                                       uint64_t writer_epoch = 0,
                                       uint64_t writer_bytes = 0);

}  // namespace xupd::rdb

#endif  // XUPD_RDB_WAL_H_
