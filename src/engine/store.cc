#include "engine/store.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/str_util.h"
#include "engine/engine_span.h"

namespace xupd::engine {

using asr::AsrManager;
using rdb::Value;
using shred::Mapping;
using shred::ShreddedTuple;
using shred::TableMapping;

namespace {
/// Shared scratch table the engine stages bound id sets in (see
/// IdListPredicate). Predicates that reference it have constant SQL text.
constexpr const char* kIdListTable = "xupd_idlist";

/// One-row marker created as the LAST step of store setup. Durable-store
/// creation commits each schema DDL as its own WAL unit (DDL cannot ride
/// in a transaction), so a crash mid-setup leaves a partial catalog that
/// recovery would otherwise present as a complete store — with cascade
/// triggers or element tables silently missing. Reopen requires the
/// marker; its absence is reported as an incomplete creation.
constexpr const char* kSetupMarkerTable = "xupd_setup";

/// Durable key/value table persisting the strategy Options the store was
/// created with. Reopen verifies the caller's Options against it: a store
/// created with cascade triggers and reopened expecting ASR maintenance
/// (or vice versa) would silently corrupt on the first update — the
/// recovered triggers/ASR would not match the code paths the strategies
/// take. Riding in a durable SQL table keeps it inside the existing WAL +
/// snapshot formats.
constexpr const char* kMetaTable = "xupd_meta";

/// True when a predicate produces constant statement text across calls:
/// empty, or routed through the xupd_idlist scratch table. Statements built
/// from such predicates are worth caching; literal one-shot predicates
/// (e.g. "id = 42") would only evict reusable plans.
bool ConstantPredicateText(const std::string& predicate) {
  return predicate.empty() ||
         predicate.find(kIdListTable) != std::string::npos;
}
}  // namespace

const char* ToString(DeleteStrategy s) {
  switch (s) {
    case DeleteStrategy::kPerTupleTrigger:
      return "per-tuple";
    case DeleteStrategy::kPerStatementTrigger:
      return "per-stm";
    case DeleteStrategy::kCascade:
      return "cascade";
    case DeleteStrategy::kAsr:
      return "asr";
  }
  return "?";
}

const char* ToString(InsertStrategy s) {
  switch (s) {
    case InsertStrategy::kTuple:
      return "tuple";
    case InsertStrategy::kTable:
      return "table";
    case InsertStrategy::kAsr:
      return "asr";
  }
  return "?";
}

Result<std::unique_ptr<RelationalStore>> RelationalStore::Create(
    const xml::Dtd& dtd, const Options& options) {
  auto mapping = Mapping::SharedInlining(dtd);
  if (!mapping.ok()) return mapping.status();
  std::unique_ptr<RelationalStore> store(new RelationalStore());
  store->options_ = options;
  if (options.delete_strategy == DeleteStrategy::kAsr ||
      options.insert_strategy == InsertStrategy::kAsr) {
    store->options_.build_asr = true;
  }
  store->mapping_ = std::make_unique<Mapping>(std::move(mapping).value());
  store->shredder_ = std::make_unique<shred::Shredder>(
      store->mapping_.get(), &store->db_, options.insert_batch_size);
  if (store->options_.durability) {
    rdb::DurabilityOptions dopts;
    dopts.sync_mode = store->options_.sync_mode;
    dopts.vfs = store->options_.vfs;
    XUPD_RETURN_IF_ERROR(store->db_.Open(store->options_.data_dir, dopts));
  }
  if (store->options_.build_asr) {
    store->asr_ =
        std::make_unique<AsrManager>(store->mapping_.get(), &store->db_);
  }
  if (store->db_.recovered()) {
    // The schema, indexes, triggers, ASR and all rows came back from the
    // snapshot + WAL. The setup marker is written LAST during creation, so
    // its absence means the original process crashed mid-setup — the
    // partial catalog must not masquerade as a complete store (it may be
    // missing element tables or the cascade triggers).
    const rdb::Table* marker = store->db_.FindTable(kSetupMarkerTable);
    if (marker == nullptr || marker->live_count() == 0) {
      return Status::Internal(
          "data directory '" + store->options_.data_dir +
          "' holds an incomplete store creation (the process crashed "
          "mid-setup before the schema was fully committed); remove the "
          "directory and create the store again");
    }
    // The stored strategy options must match the caller's: a mismatched
    // reopen is a clean error, not silent corruption.
    XUPD_RETURN_IF_ERROR(store->VerifyStoredOptions());
    // Re-derive the engine's root id from the stored root tuple (the
    // shredder attaches the document root to parent 0).
    const TableMapping* root = store->mapping_->root();
    if (store->db_.FindTable(root->table) == nullptr) {
      return Status::Internal("recovered store is missing root table '" +
                              root->table + "' (DTD mismatch?)");
    }
    auto root_row = store->db_.ExecuteQuery(
        "SELECT id FROM " + root->table + " WHERE parentId = 0 ORDER BY id");
    if (!root_row.ok()) return root_row.status();
    if (!root_row->rows.empty()) {
      store->root_id_ = root_row->rows[0][0].AsInt();
    }
    return store;
  }
  XUPD_RETURN_IF_ERROR(store->shredder_->CreateSchema());
  if (store->options_.build_asr) {
    XUPD_RETURN_IF_ERROR(store->asr_->CreateSchema());
  }
  XUPD_RETURN_IF_ERROR(store->InstallTriggers());
  XUPD_RETURN_IF_ERROR(store->PersistOptions());
  // Setup-complete marker, created last (and in non-durable stores too, so
  // durable and in-memory state dumps stay comparable).
  XUPD_RETURN_IF_ERROR(store->db_.Execute(
      std::string("CREATE TABLE ") + kSetupMarkerTable + " (completed INTEGER)"));
  XUPD_RETURN_IF_ERROR(store->db_.Execute(
      std::string("INSERT INTO ") + kSetupMarkerTable + " VALUES (1)"));
  return store;
}

Status RelationalStore::Checkpoint() { return db_.Checkpoint(); }

Status RelationalStore::PersistOptions() {
  XUPD_RETURN_IF_ERROR(db_.Execute(std::string("CREATE TABLE ") + kMetaTable +
                                   " (k VARCHAR, v VARCHAR)"));
  // One row per statement: multi-row INSERT would count into the
  // batched_rows stat the §6.2.1 shape tests pin to the workload's own
  // statements.
  for (const auto& [key, value] : StrategyFields()) {
    XUPD_RETURN_IF_ERROR(db_.Execute(std::string("INSERT INTO ") + kMetaTable +
                                     " VALUES ('" + key + "', '" + value +
                                     "')"));
  }
  return Status::OK();
}

Status RelationalStore::VerifyStoredOptions() {
  if (db_.FindTable(kMetaTable) == nullptr) {
    return Status::Internal(
        "recovered store has no '" + std::string(kMetaTable) +
        "' table; it was created by a build that did not persist its "
        "strategy options");
  }
  auto rows = db_.ExecuteQuery(std::string("SELECT k, v FROM ") + kMetaTable);
  if (!rows.ok()) return rows.status();
  std::map<std::string, std::string> stored;
  for (const auto& row : rows->rows) {
    stored[std::string(row[0].AsString())] = std::string(row[1].AsString());
  }
  for (const auto& [key, expected] : StrategyFields()) {
    auto it = stored.find(key);
    const std::string& on_disk = it == stored.end() ? std::string("<absent>")
                                                    : it->second;
    if (on_disk != expected) {
      return Status::InvalidArgument(
          "data directory '" + options_.data_dir + "' was created with " +
          key + "='" + on_disk + "' but is being reopened with '" + expected +
          "'; reopen with the original strategy options (a mismatched "
          "reopen would corrupt the store on the first update)");
    }
  }
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>>
RelationalStore::StrategyFields() const {
  return {
      {"delete_strategy", ToString(options_.delete_strategy)},
      {"insert_strategy", ToString(options_.insert_strategy)},
      {"build_asr", options_.build_asr ? "1" : "0"},
  };
}

Status RelationalStore::InstallTriggers() {
  if (options_.delete_strategy != DeleteStrategy::kPerTupleTrigger &&
      options_.delete_strategy != DeleteStrategy::kPerStatementTrigger) {
    return Status::OK();
  }
  bool per_row = options_.delete_strategy == DeleteStrategy::kPerTupleTrigger;
  for (const TableMapping& t : mapping_->tables()) {
    std::vector<const TableMapping*> children = mapping_->ChildTables(t.element);
    if (children.empty()) continue;
    std::string body;
    for (const TableMapping* c : children) {
      if (per_row) {
        body += "DELETE FROM " + c->table + " WHERE parentId = OLD.id; ";
      } else {
        body += "DELETE FROM " + c->table +
                " WHERE parentId NOT IN (SELECT id FROM " + t.table + "); ";
      }
    }
    std::string sql = "CREATE TRIGGER trg_" + t.table + " AFTER DELETE ON " +
                      t.table + " FOR EACH " +
                      (per_row ? "ROW" : "STATEMENT") + " BEGIN " + body +
                      "END";
    XUPD_RETURN_IF_ERROR(db_.Execute(sql));
  }
  return Status::OK();
}

Status RelationalStore::Load(const xml::Document& doc) {
  EngineSpan span(&db_, "load");
  if (options_.build_asr) {
    // Shred once; feed both the tables and the ASR.
    auto tuples = shredder_->ShredSubtree(*doc.root(), 0);
    if (!tuples.ok()) return tuples.status();
    root_id_ = tuples->front().id;
    if (options_.load_via_sql) {
      XUPD_RETURN_IF_ERROR(shredder_->InsertTuplesSql(*tuples));
    } else {
      for (const ShreddedTuple& t : *tuples) {
        rdb::Table* table = db_.FindTable(t.table->table);
        XUPD_RETURN_IF_ERROR(db_.InsertDirect(table, t.row));
      }
    }
    XUPD_RETURN_IF_ERROR(asr_->BuildFromTuples(*tuples));
    // Direct bulk-API writes do not cross a statement boundary; flush them
    // as one committed WAL unit so the load survives a crash.
    return db_.WalFlush();
  }
  auto root_id = shredder_->LoadDocument(doc, options_.load_via_sql);
  if (!root_id.ok()) return root_id.status();
  root_id_ = root_id.value();
  return db_.WalFlush();
}

// ---------------------------------------------------------------------------
// Transactions

namespace {

// Arms the Database's operation deadline for one update entry point and
// restores the previous one on exit — sub-operations keep the outer (earlier)
// deadline because EffectiveDeadline always takes the minimum.
class OpDeadlineScope {
 public:
  OpDeadlineScope(rdb::Database* db, int64_t timeout_us) : db_(db) {
    prev_ = db_->operation_deadline_ns();
    if (timeout_us > 0) {
      uint64_t deadline =
          MonotonicNanos() + static_cast<uint64_t>(timeout_us) * 1000;
      if (prev_ != 0 && prev_ < deadline) deadline = prev_;
      db_->ArmOperationDeadline(deadline);
    }
  }
  ~OpDeadlineScope() { db_->ArmOperationDeadline(prev_); }

  OpDeadlineScope(const OpDeadlineScope&) = delete;
  OpDeadlineScope& operator=(const OpDeadlineScope&) = delete;

 private:
  rdb::Database* db_;
  uint64_t prev_ = 0;
};

}  // namespace

Status RelationalStore::RunInTxn(const std::function<Status()>& fn) {
  OpDeadlineScope deadline(&db_, options_.op_timeout_us);
  if (!options_.transactional) return fn();
  XUPD_RETURN_IF_ERROR(db_.Begin());
  Status s = fn();
  if (!s.ok()) {
    // Propagate fn's error; Rollback of an open scope cannot fail here.
    (void)db_.Rollback();
    return s;
  }
  return db_.Commit();
}

// ---------------------------------------------------------------------------
// Deletes (§6.1)

Status RelationalStore::DeleteWhere(const std::string& element,
                                    const std::string& predicate) {
  const TableMapping* tm = mapping_->ForElement(element);
  if (tm == nullptr) {
    return Status::InvalidArgument("element <" + element +
                                   "> is not table-mapped");
  }
  EngineSpan span(&db_, "delete_where");
  return RunInTxn([&] { return DeleteSubtreesImpl(tm, predicate); });
}

Status RelationalStore::DeleteByIds(const std::string& element,
                                    const std::vector<int64_t>& ids) {
  const TableMapping* tm = mapping_->ForElement(element);
  if (tm == nullptr) {
    return Status::InvalidArgument("element <" + element +
                                   "> is not table-mapped");
  }
  // One entry point = one transaction: the id batch lands or rolls back as a
  // unit (each id's delete still issues its own statements, §7.3).
  EngineSpan span(&db_, "delete_by_ids");
  return RunInTxn([&]() -> Status {
    if (options_.delete_strategy == DeleteStrategy::kPerTupleTrigger ||
        options_.delete_strategy == DeleteStrategy::kPerStatementTrigger) {
      // The random workload issues one DELETE per subtree (§7.3); with the
      // trigger strategies the statement text is identical across ids, so one
      // prepared plan serves the whole loop — each delete still pays its
      // round trip, but only the first pays the parse.
      auto handle = db_.Prepare("DELETE FROM " + tm->table + " WHERE id = ?");
      if (!handle.ok()) return handle.status();
      for (int64_t id : ids) {
        XUPD_RETURN_IF_ERROR(
            db_.ExecutePrepared(handle.value(), {Value::Int(id)}));
      }
      return Status::OK();
    }
    for (int64_t id : ids) {
      XUPD_RETURN_IF_ERROR(
          DeleteSubtreesImpl(tm, "id = " + std::to_string(id)));
    }
    return Status::OK();
  });
}

Status RelationalStore::DeleteSubtreesImpl(const TableMapping* tm,
                                           const std::string& predicate) {
  switch (options_.delete_strategy) {
    case DeleteStrategy::kPerTupleTrigger:
    case DeleteStrategy::kPerStatementTrigger: {
      // One statement; triggers cascade inside the engine (6.1.1).
      std::string sql = "DELETE FROM " + tm->table;
      if (!predicate.empty()) sql += " WHERE " + predicate;
      return db_.Execute(sql);
    }
    case DeleteStrategy::kCascade:
      return CascadeDelete(tm, predicate);
    case DeleteStrategy::kAsr:
      return AsrDelete(tm, predicate);
  }
  return Status::Internal("unknown delete strategy");
}

Status RelationalStore::CascadeDelete(const TableMapping* tm,
                                      const std::string& predicate) {
  // 6.1.2: delete the targets, then sweep orphans level by level, stopping
  // along a branch as soon as a delete removes no tuples.
  std::string sql = "DELETE FROM " + tm->table;
  if (!predicate.empty()) sql += " WHERE " + predicate;
  uint64_t before = db_.stats().rows_deleted;
  XUPD_RETURN_IF_ERROR(db_.Execute(sql));
  if (db_.stats().rows_deleted == before) return Status::OK();

  std::vector<const TableMapping*> frontier{tm};
  while (!frontier.empty()) {
    std::vector<const TableMapping*> next;
    for (const TableMapping* parent : frontier) {
      for (const TableMapping* child : mapping_->ChildTables(parent->element)) {
        uint64_t level_before = db_.stats().rows_deleted;
        XUPD_RETURN_IF_ERROR(
            db_.Execute("DELETE FROM " + child->table +
                        " WHERE parentId NOT IN (SELECT id FROM " +
                        parent->table + ")"));
        if (db_.stats().rows_deleted > level_before) next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return Status::OK();
}

Status RelationalStore::AsrDelete(const TableMapping* tm,
                                  const std::string& predicate) {
  // 6.1.3: mark ASR rows through the targets, delete descendants by id sets
  // from the ASR, delete the targets, repair left-completeness, unmark.
  ScopedNsCounter asr_ns(db_.metrics().Counter("engine.asr_ns"));
  const std::string id_col = AsrManager::IdColumn(tm);
  std::string mark = std::string("UPDATE ") + AsrManager::kTableName +
                     " SET marked = 1 WHERE " + id_col + " IN (SELECT id FROM " +
                     tm->table;
  if (!predicate.empty()) mark += " WHERE " + predicate;
  mark += ")";
  XUPD_RETURN_IF_ERROR(db_.Execute(mark));

  std::vector<const TableMapping*> region = mapping_->SubtreeTables(tm);
  for (size_t i = 1; i < region.size(); ++i) {  // strict descendants
    XUPD_RETURN_IF_ERROR(db_.Execute(
        "DELETE FROM " + region[i]->table + " WHERE id IN (SELECT " +
        AsrManager::IdColumn(region[i]) + " FROM " + AsrManager::kTableName +
        " WHERE marked = 1)"));
  }
  std::string del = "DELETE FROM " + tm->table;
  if (!predicate.empty()) del += " WHERE " + predicate;
  XUPD_RETURN_IF_ERROR(db_.Execute(del));

  XUPD_RETURN_IF_ERROR(db_.Execute(std::string("DELETE FROM ") +
                                   AsrManager::kTableName +
                                   " WHERE marked = 1"));

  // Left-completeness repair: ancestors that lost all their paths get a
  // fresh row ending at their level.
  const TableMapping* parent = tm->parent_element.empty()
                                   ? nullptr
                                   : mapping_->ForElement(tm->parent_element);
  if (parent != nullptr) {
    auto orphans = db_.ExecuteQuery(
        "SELECT id FROM " + parent->table + " WHERE id NOT IN (SELECT " +
        AsrManager::IdColumn(parent) + " FROM " + AsrManager::kTableName +
        " WHERE " + AsrManager::IdColumn(parent) + " IS NOT NULL)");
    if (!orphans.ok()) return orphans.status();
    // One prepared INSERT shape serves every repaired row: all id columns
    // are placeholders, only the bound values differ per orphan.
    std::string sql = AsrInsertRowSql();
    for (const rdb::Row& row : orphans->rows) {
      int64_t pid = row[0].AsInt();
      auto chain = AncestorChain(parent, pid);
      if (!chain.ok()) return chain.status();
      chain->emplace_back(parent, pid);
      std::map<const TableMapping*, int64_t> ids(chain->begin(), chain->end());
      XUPD_RETURN_IF_ERROR(db_.ExecuteBound(sql, AsrRowParams(ids)));
    }
  }
  return Status::OK();
}

std::string RelationalStore::AsrInsertRowSql() const {
  std::string sql = std::string("INSERT INTO ") + AsrManager::kTableName +
                    " VALUES (";
  for (size_t i = 0; i < mapping_->tables().size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "?";
  }
  sql += ", 0)";
  return sql;
}

std::vector<Value> RelationalStore::AsrRowParams(
    const std::map<const TableMapping*, int64_t>& ids) const {
  std::vector<Value> params;
  params.reserve(mapping_->tables().size());
  for (const TableMapping& t : mapping_->tables()) {
    auto it = ids.find(&t);
    params.push_back(it == ids.end() ? Value::Null() : Value::Int(it->second));
  }
  return params;
}

Result<std::vector<std::pair<const TableMapping*, int64_t>>>
RelationalStore::AncestorChain(const TableMapping* tm, int64_t id) {
  std::vector<std::pair<const TableMapping*, int64_t>> chain;
  const TableMapping* cur = tm;
  int64_t cur_id = id;
  while (!cur->parent_element.empty()) {
    // Point query per level; the prepared text is constant per table, so
    // repeated chain walks parse each table's probe once.
    auto parent_id =
        db_.ExecuteQueryBound("SELECT parentId FROM " + cur->table +
                              " WHERE id = ?", {Value::Int(cur_id)});
    if (!parent_id.ok()) return parent_id.status();
    if (parent_id->rows.empty() || parent_id->rows[0][0].is_null()) break;
    const TableMapping* parent = mapping_->ForElement(cur->parent_element);
    cur_id = parent_id->rows[0][0].AsInt();
    chain.insert(chain.begin(), {parent, cur_id});
    cur = parent;
  }
  return chain;
}

// ---------------------------------------------------------------------------
// Inserts (§6.2)

Status RelationalStore::CopySubtree(const std::string& element, int64_t src_id,
                                    int64_t dest_parent_id) {
  return CopySubtreesWhere(element, "id = " + std::to_string(src_id),
                           dest_parent_id);
}

Status RelationalStore::CopySubtreesWhere(const std::string& element,
                                          const std::string& predicate,
                                          int64_t dest_parent_id) {
  const TableMapping* tm = mapping_->ForElement(element);
  if (tm == nullptr) {
    return Status::InvalidArgument("element <" + element +
                                   "> is not table-mapped");
  }
  EngineSpan span(&db_, "copy_subtrees");
  switch (options_.insert_strategy) {
    case InsertStrategy::kTuple:
      return RunInTxn([&] { return TupleInsert(tm, predicate, dest_parent_id); });
    case InsertStrategy::kTable:
      // Manages its own scope: the temp-table DDL must stay outside it.
      return TableInsert(tm, predicate, dest_parent_id);
    case InsertStrategy::kAsr:
      return RunInTxn([&] { return AsrInsert(tm, predicate, dest_parent_id); });
  }
  return Status::Internal("unknown insert strategy");
}

Status RelationalStore::TupleInsert(const TableMapping* tm,
                                    const std::string& predicate,
                                    int64_t dest_parent_id) {
  // 6.2.1: read the source subtrees through the Sorted Outer Union, remap
  // ids tuple by tuple (old->new kept in memory), then insert through
  // prepared statements — per-table batches of up to insert_batch_size rows
  // per multi-row INSERT. Batch size 1 restores the paper's regime exactly:
  // one literal INSERT statement per tuple, parsed every time.
  shred::OuterUnionQuery query =
      shred::BuildOuterUnion(*mapping_, tm, predicate);
  // When the root predicate rides in the xupd_idlist scratch table (or is
  // empty) the outer-union text is constant across calls, so the big SELECT
  // reuses one cached plan no matter which ids are staged; literal
  // predicates stay on the parse-per-call path rather than churn the cache.
  auto result = ConstantPredicateText(predicate)
                    ? db_.ExecuteQueryBound(query.sql, {})
                    : db_.ExecuteQuery(query.sql);
  if (!result.ok()) return result.status();
  const size_t batch = options_.insert_batch_size < 1
                           ? 1
                           : static_cast<size_t>(options_.insert_batch_size);
  struct PendingBatch {
    std::vector<Value> params;
    size_t rows = 0;
  };
  std::map<const TableMapping*, PendingBatch> pending;
  auto flush = [&](const TableMapping* t, PendingBatch* b) -> Status {
    if (b->rows == 0) return Status::OK();
    std::string sql =
        rdb::MultiRowInsertSql(t->table, 2 + t->fields.size(), b->rows);
    Status s = db_.ExecuteBound(sql, b->params);
    b->params.clear();
    b->rows = 0;
    return s;
  };
  std::map<int64_t, int64_t> id_map;  // old id -> new id
  for (const rdb::Row& row : result->rows) {
    // Deepest non-null segment owns the row.
    const shred::OuterUnionLayout::Segment* seg = nullptr;
    for (const auto& s : query.layout.segments) {
      if (!row[static_cast<size_t>(s.id_col)].is_null()) seg = &s;
    }
    if (seg == nullptr) continue;
    int64_t old_id = row[static_cast<size_t>(seg->id_col)].AsInt();
    int64_t new_id = db_.AllocateId();
    id_map[old_id] = new_id;
    int64_t parent;
    if (seg->parent_id_col < 0) {
      parent = dest_parent_id;
    } else {
      int64_t old_parent = row[static_cast<size_t>(seg->parent_id_col)].AsInt();
      auto it = id_map.find(old_parent);
      if (it == id_map.end()) {
        return Status::Internal("outer-union stream out of order");
      }
      parent = it->second;
    }
    if (batch == 1) {
      std::string sql = "INSERT INTO " + seg->table->table + " VALUES (" +
                        std::to_string(new_id) + ", " + std::to_string(parent);
      for (size_t f = 0; f < seg->field_count; ++f) {
        sql += ", " +
               row[static_cast<size_t>(seg->first_field_col) + f].ToSqlLiteral();
      }
      sql += ")";
      XUPD_RETURN_IF_ERROR(db_.Execute(sql));
      continue;
    }
    PendingBatch& b = pending[seg->table];
    b.params.push_back(Value::Int(new_id));
    b.params.push_back(Value::Int(parent));
    for (size_t f = 0; f < seg->field_count; ++f) {
      b.params.push_back(row[static_cast<size_t>(seg->first_field_col) + f]);
    }
    ++b.rows;
    if (b.rows >= batch) XUPD_RETURN_IF_ERROR(flush(seg->table, &b));
  }
  for (auto& [t, b] : pending) {
    XUPD_RETURN_IF_ERROR(flush(t, &b));
  }
  return Status::OK();
}

Status RelationalStore::TableInsert(const TableMapping* tm,
                                    const std::string& predicate,
                                    int64_t dest_parent_id) {
  // 6.2.2: stage the source subtrees in temp tables, remap all ids with one
  // offset (nextId - minId), and insert en masse per relation. The staging
  // tables are created/dropped through the direct catalog API: DDL is barred
  // inside transactions, and scratch tables are not transactional state —
  // DropTableDirect purges their undo records, so only the real-table writes
  // remain in the enclosing scope's log.
  std::vector<const TableMapping*> region = mapping_->SubtreeTables(tm);
  auto tmp_name = [](const TableMapping* t) { return "tmp_" + t->table; };

  Status s = Status::OK();
  size_t created = 0;
  for (const TableMapping* t : region) {
    std::vector<rdb::ColumnDef> cols{{"id", rdb::ColumnType::kInteger},
                                     {"parentId", rdb::ColumnType::kInteger}};
    for (const auto& f : t->fields) {
      cols.push_back({f.column, rdb::ColumnType::kVarchar});
    }
    auto table = db_.CreateTableDirect(rdb::TableSchema(tmp_name(t), cols));
    if (!table.ok()) {
      s = table.status();
      break;
    }
    ++created;
  }
  if (s.ok()) {
    s = RunInTxn(
        [&] { return TableInsertDml(region, tm, predicate, dest_parent_id); });
  }
  for (size_t i = 0; i < created; ++i) {
    Status drop = db_.DropTableDirect(tmp_name(region[i]));
    if (s.ok() && !drop.ok()) s = drop;
  }
  return s;
}

Status RelationalStore::TableInsertDml(
    const std::vector<const TableMapping*>& region, const TableMapping* tm,
    const std::string& predicate, int64_t dest_parent_id) {
  auto tmp_name = [](const TableMapping* t) { return "tmp_" + t->table; };

  for (size_t i = 0; i < region.size(); ++i) {
    const TableMapping* t = region[i];
    if (i == 0) {
      std::string sql =
          "INSERT INTO " + tmp_name(t) + " SELECT * FROM " + t->table;
      if (!predicate.empty()) sql += " WHERE " + predicate;
      XUPD_RETURN_IF_ERROR(db_.Execute(sql));
    } else {
      const TableMapping* parent = mapping_->ForElement(t->parent_element);
      XUPD_RETURN_IF_ERROR(db_.Execute(
          "INSERT INTO " + tmp_name(t) + " SELECT * FROM " + t->table +
          " WHERE parentId IN (SELECT id FROM " + tmp_name(parent) + ")"));
    }
  }

  // min/max over all staged ids (one statement per staging table).
  int64_t min_id = 0, max_id = -1;
  for (const TableMapping* t : region) {
    auto mm = db_.ExecuteQuery("SELECT MIN(id), MAX(id) FROM " + tmp_name(t));
    if (!mm.ok()) return mm.status();
    const rdb::Row& row = mm->rows[0];
    if (row[0].is_null()) continue;
    if (max_id < min_id) {
      min_id = row[0].AsInt();
      max_id = row[1].AsInt();
    } else {
      min_id = std::min(min_id, row[0].AsInt());
      max_id = std::max(max_id, row[1].AsInt());
    }
  }
  if (max_id < min_id) {
    return Status::NotFound("source subtree is empty");
  }
  int64_t offset = db_.next_id() - min_id;
  db_.AllocateIdBlock(max_id - min_id + 1);

  for (const TableMapping* t : region) {
    std::string cols = "id + " + std::to_string(offset) + ", parentId + " +
                       std::to_string(offset);
    for (const auto& f : t->fields) cols += ", " + f.column;
    XUPD_RETURN_IF_ERROR(db_.Execute("INSERT INTO " + t->table + " SELECT " +
                                     cols + " FROM " + tmp_name(t)));
  }
  // The copied region roots point at their new parent.
  return db_.Execute("UPDATE " + tm->table +
                     " SET parentId = " + std::to_string(dest_parent_id) +
                     " WHERE id IN (SELECT id + " + std::to_string(offset) +
                     " FROM " + tmp_name(tm) + ")");
}

Status RelationalStore::AsrInsert(const TableMapping* tm,
                                  const std::string& predicate,
                                  int64_t dest_parent_id) {
  // 6.2.3: mark ASR paths through the sources, compute the offset from the
  // ASR (no temp tables, no outer union), replicate per relation, add the
  // new ASR paths, unmark.
  ScopedNsCounter asr_ns(db_.metrics().Counter("engine.asr_ns"));
  const std::string asr = AsrManager::kTableName;
  std::string mark = "UPDATE " + asr + " SET marked = 1 WHERE " +
                     AsrManager::IdColumn(tm) + " IN (SELECT id FROM " +
                     tm->table;
  if (!predicate.empty()) mark += " WHERE " + predicate;
  mark += ")";
  XUPD_RETURN_IF_ERROR(db_.Execute(mark));

  std::vector<const TableMapping*> region = mapping_->SubtreeTables(tm);
  // One combined MIN/MAX statement over all region columns (a single ASR
  // scan computes the remapping offset, §6.2.3).
  std::string mm_sql = "SELECT ";
  for (size_t i = 0; i < region.size(); ++i) {
    if (i > 0) mm_sql += ", ";
    mm_sql += "MIN(" + AsrManager::IdColumn(region[i]) + "), MAX(" +
              AsrManager::IdColumn(region[i]) + ")";
  }
  mm_sql += " FROM " + asr + " WHERE marked = 1";
  auto mm = db_.ExecuteQuery(mm_sql);
  if (!mm.ok()) return mm.status();
  int64_t min_id = 0, max_id = -1;
  for (size_t i = 0; i < region.size(); ++i) {
    const rdb::Value& lo = mm->rows[0][2 * i];
    const rdb::Value& hi = mm->rows[0][2 * i + 1];
    if (lo.is_null()) continue;
    if (max_id < min_id) {
      min_id = lo.AsInt();
      max_id = hi.AsInt();
    } else {
      min_id = std::min(min_id, lo.AsInt());
      max_id = std::max(max_id, hi.AsInt());
    }
  }
  if (max_id < min_id) {
    XUPD_RETURN_IF_ERROR(
        db_.Execute("UPDATE " + asr + " SET marked = 0 WHERE marked = 1"));
    return Status::NotFound("source subtree not present in ASR");
  }
  int64_t offset = db_.next_id() - min_id;
  db_.AllocateIdBlock(max_id - min_id + 1);

  for (const TableMapping* t : region) {
    std::string cols = "id + " + std::to_string(offset) + ", parentId + " +
                       std::to_string(offset);
    for (const auto& f : t->fields) cols += ", " + f.column;
    XUPD_RETURN_IF_ERROR(db_.Execute(
        "INSERT INTO " + t->table + " SELECT " + cols + " FROM " + t->table +
        " WHERE id IN (SELECT " + AsrManager::IdColumn(t) + " FROM " + asr +
        " WHERE marked = 1)"));
  }
  XUPD_RETURN_IF_ERROR(db_.Execute(
      "UPDATE " + tm->table +
      " SET parentId = " + std::to_string(dest_parent_id) +
      " WHERE id IN (SELECT " + AsrManager::IdColumn(tm) + " + " +
      std::to_string(offset) + " FROM " + asr + " WHERE marked = 1)"));

  // New ASR paths: destination ancestor chain above the copy, offset ids for
  // the copied region, NULL elsewhere.
  const TableMapping* dest_table = nullptr;
  std::vector<std::pair<const TableMapping*, int64_t>> dest_chain;
  if (dest_parent_id != 0) {
    // Locate the destination parent's table by probing candidates.
    for (const TableMapping& t : mapping_->tables()) {
      auto r = db_.ExecuteQuery("SELECT id FROM " + t.table + " WHERE id = " +
                                std::to_string(dest_parent_id));
      if (r.ok() && !r->rows.empty()) {
        dest_table = &t;
        break;
      }
    }
    if (dest_table == nullptr) {
      return Status::NotFound("destination parent tuple not found");
    }
    auto chain = AncestorChain(dest_table, dest_parent_id);
    if (!chain.ok()) return chain.status();
    dest_chain = std::move(chain).value();
    dest_chain.emplace_back(dest_table, dest_parent_id);
  }
  std::map<const TableMapping*, int64_t> dest_ids(dest_chain.begin(),
                                                  dest_chain.end());
  std::set<const TableMapping*> in_region(region.begin(), region.end());
  std::string sql = "INSERT INTO " + asr + " SELECT ";
  bool first = true;
  for (const TableMapping& t : mapping_->tables()) {
    if (!first) sql += ", ";
    first = false;
    if (in_region.count(&t) > 0) {
      sql += AsrManager::IdColumn(&t) + " + " + std::to_string(offset);
    } else if (dest_ids.count(&t) > 0) {
      sql += std::to_string(dest_ids.at(&t));
    } else {
      sql += "NULL";
    }
  }
  sql += ", 0 FROM " + asr + " WHERE marked = 1";
  XUPD_RETURN_IF_ERROR(db_.Execute(sql));
  return db_.Execute("UPDATE " + asr + " SET marked = 0 WHERE marked = 1");
}

Status RelationalStore::InsertConstructed(const xml::Element& content,
                                          int64_t dest_parent_id) {
  EngineSpan span(&db_, "insert_constructed");
  return RunInTxn(
      [&] { return InsertConstructedImpl(content, dest_parent_id); });
}

Status RelationalStore::InsertConstructedImpl(const xml::Element& content,
                                              int64_t dest_parent_id) {
  auto tuples = shredder_->ShredSubtree(content, dest_parent_id);
  if (!tuples.ok()) return tuples.status();
  XUPD_RETURN_IF_ERROR(shredder_->InsertTuplesSql(*tuples));
  if (options_.build_asr) {
    // Maintain the ASR for the constructed content.
    const TableMapping* tm = tuples->front().table;
    std::map<const TableMapping*, int64_t> dest_ids;
    if (dest_parent_id != 0 && !tm->parent_element.empty()) {
      const TableMapping* parent = mapping_->ForElement(tm->parent_element);
      auto chain = AncestorChain(parent, dest_parent_id);
      if (!chain.ok()) return chain.status();
      for (auto& [t, id] : *chain) dest_ids[t] = id;
      dest_ids[parent] = dest_parent_id;
    }
    // Build adjacency and emit leaf-complete rows via SQL inserts.
    std::map<int64_t, std::vector<const ShreddedTuple*>> children;
    for (const ShreddedTuple& t : *tuples) {
      if (t.parent_id != 0 && t.id != tuples->front().id) {
        children[t.parent_id].push_back(&t);
      }
    }
    std::map<const TableMapping*, int64_t> current = dest_ids;
    // One prepared INSERT shape for every leaf-complete ASR row.
    std::string asr_sql = AsrInsertRowSql();
    std::function<Status(const ShreddedTuple*)> walk =
        [&](const ShreddedTuple* node) -> Status {
      current[node->table] = node->id;
      auto it = children.find(node->id);
      if (it == children.end() || it->second.empty()) {
        XUPD_RETURN_IF_ERROR(db_.ExecuteBound(asr_sql, AsrRowParams(current)));
      } else {
        for (const ShreddedTuple* c : it->second) {
          XUPD_RETURN_IF_ERROR(walk(c));
        }
      }
      current.erase(node->table);
      return Status::OK();
    };
    XUPD_RETURN_IF_ERROR(walk(&tuples->front()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Id-list staging (shared scratch table for the translator's IN predicates)

Result<std::string> RelationalStore::IdListPredicate(
    const std::string& column, const std::vector<int64_t>& ids) {
  rdb::Table* scratch = db_.FindTable(kIdListTable);
  if (scratch == nullptr) {
    // Unwired from the undo log: id staging is engine scratch, not
    // transactional state — rolling a statement back must not waste time
    // reviving rows the next staging would clobber anyway.
    auto table = db_.CreateTableDirect(
        rdb::TableSchema(kIdListTable, {{"id", rdb::ColumnType::kInteger}}),
        /*transactional=*/false);
    if (!table.ok()) return table.status();
    scratch = table.value();
  }
  // Truncate rather than DELETE FROM: a SQL delete only tombstones, which
  // would grow the slot array (and every later scan over it) without bound
  // across statements.
  scratch->Clear();
  // Constant statement texts for the staging INSERTs: each batch shape
  // parses once and then serves every staged id set from the plan cache.
  size_t i = 0;
  // Descending chunk sizes bound the number of distinct INSERT shapes to 4
  // while keeping the statement count ~ids/64.
  for (size_t chunk : {size_t{64}, size_t{16}, size_t{4}, size_t{1}}) {
    while (ids.size() - i >= chunk) {
      std::vector<Value> params;
      params.reserve(chunk);
      for (size_t k = 0; k < chunk; ++k) params.push_back(Value::Int(ids[i++]));
      XUPD_RETURN_IF_ERROR(
          db_.ExecuteBound(rdb::MultiRowInsertSql(kIdListTable, 1, chunk),
                           params));
    }
  }
  return column + " IN (SELECT id FROM " + kIdListTable + ")";
}

// ---------------------------------------------------------------------------
// Queries

Result<std::vector<int64_t>> RelationalStore::SelectIds(
    const std::string& element, const std::string& predicate) {
  const TableMapping* tm = mapping_->ForElement(element);
  if (tm == nullptr) {
    return Status::InvalidArgument("element <" + element +
                                   "> is not table-mapped");
  }
  std::string sql = "SELECT id FROM " + tm->table;
  if (!predicate.empty()) sql += " WHERE " + predicate;
  sql += " ORDER BY id";
  auto result = db_.ExecuteQuery(sql);
  if (!result.ok()) return result.status();
  std::vector<int64_t> ids;
  ids.reserve(result->rows.size());
  for (const rdb::Row& row : result->rows) ids.push_back(row[0].AsInt());
  return ids;
}

Result<std::vector<int64_t>> RelationalStore::PathQueryJoins(
    const std::string& start_element, const std::string& leaf_element,
    const std::string& leaf_predicate) {
  const TableMapping* start = mapping_->ForElement(start_element);
  const TableMapping* leaf = mapping_->ForElement(leaf_element);
  if (start == nullptr || leaf == nullptr) {
    return Status::InvalidArgument("elements are not table-mapped");
  }
  std::vector<const TableMapping*> path = mapping_->PathFromRoot(leaf);
  auto it = std::find(path.begin(), path.end(), start);
  if (it == path.end()) {
    return Status::InvalidArgument("'" + start_element +
                                   "' is not an ancestor of '" + leaf_element +
                                   "'");
  }
  path.erase(path.begin(), it);  // start .. leaf
  // FROM leaf l0, parent l1, ... WHERE l0.<pred> AND l0.parentId = l1.id ...
  std::string sql = "SELECT ";
  size_t n = path.size();
  sql += "l" + std::to_string(n - 1) + ".id FROM ";
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    // l0 = leaf ... l(n-1) = start
    sql += path[n - 1 - i]->table + " l" + std::to_string(i);
  }
  sql += " WHERE " + leaf_predicate;
  for (size_t i = 0; i + 1 < n; ++i) {
    sql += " AND l" + std::to_string(i) + ".parentId = l" +
           std::to_string(i + 1) + ".id";
  }
  auto result = db_.ExecuteQuery(sql);
  if (!result.ok()) return result.status();
  std::vector<int64_t> ids;
  for (const rdb::Row& row : result->rows) ids.push_back(row[0].AsInt());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

Result<std::vector<int64_t>> RelationalStore::PathQueryAsr(
    const std::string& start_element, const std::string& leaf_element,
    const std::string& leaf_predicate) {
  if (!options_.build_asr) {
    return Status::InvalidArgument("store has no ASR");
  }
  const TableMapping* start = mapping_->ForElement(start_element);
  const TableMapping* leaf = mapping_->ForElement(leaf_element);
  if (start == nullptr || leaf == nullptr) {
    return Status::InvalidArgument("elements are not table-mapped");
  }
  // Two joins regardless of path length (§5.3): leaf (filtered) x ASR x start.
  std::string sql = "SELECT s.id FROM " + leaf->table + " l, " +
                    AsrManager::kTableName + " a, " + start->table +
                    " s WHERE " + leaf_predicate + " AND a." +
                    AsrManager::IdColumn(leaf) + " = l.id AND s.id = a." +
                    AsrManager::IdColumn(start);
  auto result = db_.ExecuteQuery(sql);
  if (!result.ok()) return result.status();
  std::vector<int64_t> ids;
  for (const rdb::Row& row : result->rows) ids.push_back(row[0].AsInt());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

Result<rdb::ResultSet> RelationalStore::OuterUnion(
    const std::string& element, const std::string& root_where) {
  const TableMapping* tm = mapping_->ForElement(element);
  if (tm == nullptr) {
    return Status::InvalidArgument("element <" + element +
                                   "> is not table-mapped");
  }
  shred::OuterUnionQuery query =
      shred::BuildOuterUnion(*mapping_, tm, root_where);
  return db_.ExecuteQuery(query.sql);
}

Result<std::unique_ptr<xml::Document>> RelationalStore::Reconstruct() {
  return shred::ReconstructDocument(*mapping_, &db_);
}

}  // namespace xupd::engine
