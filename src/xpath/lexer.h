// Token scanner shared by the path-expression parser and the XQuery-update
// parser. Keywords are case-insensitive (the paper mixes FOR/for, IN/in).
#ifndef XUPD_XPATH_LEXER_H_
#define XUPD_XPATH_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xupd::xpath {

enum class TokenType {
  kEnd,
  kName,        ///< bare identifier (element names, keywords)
  kVariable,    ///< $name
  kString,      ///< "..." or '...'
  kNumber,      ///< integer literal
  kSlash,       ///< /
  kDoubleSlash, ///< //
  kDot,         ///< .
  kAt,          ///< @
  kStar,        ///< *
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kEq,          ///< =
  kNe,          ///< != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kArrow,       ///< ->
  kAssign,      ///< :=
  kXmlFragment, ///< a balanced <...>...</...> fragment captured verbatim
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< name / string contents / fragment text
  int64_t number = 0; ///< kNumber value
  int line = 1;
  int col = 1;
};

/// Streaming lexer. XML fragments (element constructors inside INSERT /
/// REPLACE clauses) are only recognized when the parser explicitly asks via
/// NextContent(), since '<' is otherwise a comparison operator.
class Lexer {
 public:
  explicit Lexer(std::string_view text);

  /// Returns the current token without consuming it.
  const Token& Peek();

  /// Consumes and returns the current token.
  Token Next();

  /// Like Next(), but a leading '<' is treated as the start of a balanced
  /// XML element constructor and captured verbatim as kXmlFragment.
  Result<Token> NextContent();

  /// True if the current token is a name equal (case-insensitively) to kw.
  bool PeekKeyword(std::string_view kw);

  /// Consumes the keyword if present.
  bool ConsumeKeyword(std::string_view kw);

  /// Consumes a token of the given type or returns a ParseError.
  Result<Token> Expect(TokenType type, std::string_view what);

  Status Error(const std::string& msg) const;

 private:
  Token Scan();
  Result<Token> ScanXmlFragment();
  void SkipSpace();

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool has_peek_ = false;
  Token peek_;
};

}  // namespace xupd::xpath

#endif  // XUPD_XPATH_LEXER_H_
