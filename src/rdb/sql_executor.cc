#include "rdb/sql_executor.h"

#include <algorithm>
#include <cctype>
#include <mutex>
#include <shared_mutex>

#include "common/str_util.h"
#include "rdb/sql_parser.h"

namespace xupd::rdb {

using sql::Expr;

// ---------------------------------------------------------------------------
// Entry point

Result<ResultSet> Executor::Run(const sql::Statement& stmt,
                                PlanCacheSlot* slot) {
  // Both hooks see every statement execution, including trigger-body and
  // nested statements: the failpoint can land mid-cascade, and the DDL
  // barrier cannot be bypassed from inside a trigger.
  XUPD_RETURN_IF_ERROR(db_->ConsumeFailpoint());
  XUPD_RETURN_IF_ERROR(db_->CheckDdlBarrier(stmt));
  XUPD_RETURN_IF_ERROR(db_->CheckWritable(stmt));
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kDelete:
    case sql::Statement::Kind::kUpdate: {
      XUPD_ASSIGN_OR_RETURN(auto plan, GetPlan(stmt, slot));
      return RunPlanned(*plan);
    }
    case sql::Statement::Kind::kExplain:
      return RunExplain(*stmt.explain, slot, stmt.explain_analyze);
    case sql::Statement::Kind::kShow:
      return RunShow(stmt);
    // DDL invalidates here — the single choke point every entry path
    // (Execute, ExecuteQuery, ExecutePrepared) funnels through — so cached
    // parses are flushed and cached plans version out before any reuse.
    // Successful DDL is also pended to the WAL as its statement text (the
    // Database flushes it at the statement boundary); trigger-body DDL has
    // no text of its own and is not persisted.
    case sql::Statement::Kind::kCreateTable: {
      auto r = RunCreateTable(stmt.create_table);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kCreateIndex: {
      auto r = RunCreateIndex(stmt.create_index);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kCreateTrigger: {
      auto r = RunCreateTrigger(stmt.create_trigger);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kDrop: {
      auto r = RunDrop(stmt.drop);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kBegin:
      XUPD_RETURN_IF_ERROR(db_->Begin());
      return ResultSet{};
    case sql::Statement::Kind::kCommit:
      XUPD_RETURN_IF_ERROR(db_->Commit());
      return ResultSet{};
    case sql::Statement::Kind::kRollback:
      if (stmt.txn_name.empty()) {
        XUPD_RETURN_IF_ERROR(db_->Rollback());
      } else {
        XUPD_RETURN_IF_ERROR(db_->RollbackTo(stmt.txn_name));
      }
      return ResultSet{};
    case sql::Statement::Kind::kSavepoint:
      XUPD_RETURN_IF_ERROR(db_->Savepoint(stmt.txn_name));
      return ResultSet{};
    case sql::Statement::Kind::kRelease:
      XUPD_RETURN_IF_ERROR(db_->Release(stmt.txn_name));
      return ResultSet{};
    case sql::Statement::Kind::kCheckIntegrity: {
      // Online scrub: read-only over in-memory structures and on-disk
      // files, so it stays available in degraded mode.
      ResultSet out;
      out.columns = {"violation"};
      for (std::string& v : db_->VerifyIntegrity()) {
        out.rows.push_back({Value::Str(std::move(v))});
      }
      if (out.rows.empty()) out.rows.push_back({Value::Str("ok")});
      return out;
    }
    case sql::Statement::Kind::kSet: {
      // Session knobs; governance-exempt so an operator can always raise or
      // clear a timeout even while statements are being shed.
      std::string name = stmt.set_name;
      for (char& c : name) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      if (name == "STATEMENT_TIMEOUT") {
        db_->set_statement_timeout_us(stmt.set_value);
        return ResultSet{};
      }
      return Status::InvalidArgument("unknown setting: " + stmt.set_name +
                                     " (supported: STATEMENT_TIMEOUT)");
    }
  }
  return Status::Internal("unknown statement kind");
}

// ---------------------------------------------------------------------------
// Planning

Result<std::shared_ptr<const PlannedStatement>> Executor::GetPlan(
    const sql::Statement& stmt, PlanCacheSlot* slot) {
  if (slot != nullptr && slot->plan != nullptr && slot->db == db_ &&
      slot->version == db_->catalog_version()) {
    // The global version covers SQL DDL; the per-table dependencies cover
    // direct catalog changes (DropTableDirect bumps only the dropped
    // table's counter, so plans over other tables pass this check).
    bool deps_current = true;
    for (const PlanTableDep& dep : slot->plan->table_deps) {
      if (*dep.version != dep.snapshot) {
        deps_current = false;
        break;
      }
    }
    if (deps_current) {
      ++db_->stats_.plan_cache_hits;
      if (db_->slow_statement_threshold_us_ >= 0 && trigger_depth_ == 0) {
        last_plan_ = slot->plan;
      }
      return slot->plan;
    }
  }
  Planner planner(db_, trigger_old_schema_);
  XUPD_ASSIGN_OR_RETURN(auto plan, planner.Plan(stmt));
  ++db_->stats_.plans_built;
  if (slot != nullptr) {
    slot->plan = plan;
    slot->version = db_->catalog_version();
    slot->db = db_;
  }
  // Keep the top-level plan alive for the slow-statement log (one shared_ptr
  // copy, and only while the log is enabled — the hot path skips this).
  if (db_->slow_statement_threshold_us_ >= 0 && trigger_depth_ == 0) {
    last_plan_ = plan;
  }
  return plan;
}

ExecContext Executor::MakeContext(
    std::vector<std::unique_ptr<ResultSet>>* cte_store) {
  ExecContext ctx;
  ctx.db = db_;
  ctx.stats = &db_->stats();
  ctx.params = params_;
  ctx.old_row = trigger_old_row_;
  ctx.cte_values = cte_store;
  ctx.subquery_memo = &subquery_memo_;
  ctx.analyze = analyze_;
  ctx.analyze_select = analyze_select_;
  // Governance: the statement deadline, the connection's cancel flag, the
  // accountant for hard-budget polls, and (when armed) the test-only
  // cancel-at-pull countdown.
  ctx.deadline_ns = deadline_ns_;
  ctx.cancel = db_->cancel_token_.flag();
  ctx.mem = &db_->mem_;
  if (db_->cancel_at_pull_armed_) ctx.cancel_at_pull = &db_->cancel_at_pull_;
  return ctx;
}

Result<ResultSet> Executor::RunPlanned(const PlannedStatement& plan) {
  switch (plan.kind) {
    case sql::Statement::Kind::kSelect:
      return RunPlannedSelect(plan);
    case sql::Statement::Kind::kInsert:
      return RunPlannedInsert(plan);
    case sql::Statement::Kind::kDelete:
      return RunPlannedDelete(plan);
    case sql::Statement::Kind::kUpdate:
      return RunPlannedUpdate(plan);
    default:
      return Status::Internal("unplanned statement kind");
  }
}

Result<ResultSet> Executor::RunExplain(const sql::Statement& stmt,
                                       PlanCacheSlot* slot, bool analyze) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kDelete:
    case sql::Statement::Kind::kUpdate:
      break;
    default:
      return Status::InvalidArgument(
          "EXPLAIN supports only SELECT, INSERT, DELETE and UPDATE");
  }
  // The handle's slot caches the inner statement's plan, so a prepared
  // EXPLAIN re-renders without re-planning.
  XUPD_ASSIGN_OR_RETURN(auto plan, GetPlan(stmt, slot));

  ResultSet out;
  out.columns = {"plan"};
  if (!analyze) {
    for (const std::string& line : SplitChar(PlanToString(*plan), '\n')) {
      out.rows.push_back({Value::Str(line)});
    }
    return out;
  }

  // EXPLAIN ANALYZE executes the statement for real, so the inner statement
  // must pass the same read-only gate it would face unwrapped.
  XUPD_RETURN_IF_ERROR(db_->CheckWritable(stmt));

  // Size the actuals to the plan shape, then run with the sink installed.
  AnalyzeStats actuals;
  const PlannedSelect* root_select =
      plan->kind == sql::Statement::Kind::kInsert ? plan->insert.select.get()
                                                  : plan->select.get();
  if (root_select != nullptr) {
    actuals.cores.resize(root_select->cores.size());
    for (size_t i = 0; i < root_select->cores.size(); ++i) {
      actuals.cores[i].rels.resize(root_select->cores[i].relations.size());
    }
  }
  analyze_ = &actuals;
  analyze_select_ = root_select;
  const uint64_t t0 = MonotonicNanos();
  auto result = RunPlanned(*plan);
  actuals.root.time_ns = MonotonicNanos() - t0;
  analyze_ = nullptr;
  analyze_select_ = nullptr;
  if (!result.ok()) return result.status();
  ++actuals.root.opens;
  switch (plan->kind) {
    case sql::Statement::Kind::kSelect:
      actuals.root.rows = result.value().rows.size();
      break;
    case sql::Statement::Kind::kDelete:
    case sql::Statement::Kind::kUpdate:
      actuals.root.rows = actuals.mutation.rows;
      break;
    default:
      break;  // kInsert fills root.rows during execution.
  }
  ++db_->stats_.explain_analyzes;

  for (const std::string& line :
       SplitChar(PlanToStringAnalyzed(*plan, actuals), '\n')) {
    out.rows.push_back({Value::Str(line)});
  }
  return out;
}

Result<ResultSet> Executor::RunShow(const sql::Statement& stmt) {
  ResultSet out;
  switch (stmt.show) {
    case sql::Statement::ShowWhat::kMetrics: {
      out.columns = {"metric", "value"};
      auto add = [&out](std::string name, uint64_t v) {
        out.rows.push_back(
            {Value::Str(std::move(name)), Value::Int(static_cast<int64_t>(v))});
      };
      // The Stats cost model first (declaration order), then registry
      // counters/gauges and histogram summaries (name-sorted).
      db_->stats_.ForEachField(
          [&](const char* name, uint64_t v) { add(std::string("stats.") + name, v); });
      db_->metrics().ForEachCounter(
          [&](const std::string& name, uint64_t v) { add(name, v); });
      db_->metrics().ForEachGauge([&](const std::string& name, int64_t v) {
        add(name, static_cast<uint64_t>(v));
      });
      db_->metrics().ForEachHistogram(
          [&](const std::string& name, const Histogram& h) {
            const HistogramSnapshot s = h.Snapshot();
            add(name + ".count", s.count);
            if (s.count == 0) return;
            add(name + ".p50_ns", static_cast<uint64_t>(s.p50));
            add(name + ".p95_ns", static_cast<uint64_t>(s.p95));
            add(name + ".p99_ns", static_cast<uint64_t>(s.p99));
            add(name + ".max_ns", s.max);
            add(name + ".sum_ns", s.sum);
          });
      return out;
    }
    case sql::Statement::ShowWhat::kHealth: {
      out.columns = {"field", "value"};
      auto add = [&out](const char* field, std::string value) {
        out.rows.push_back({Value::Str(field), Value::Str(std::move(value))});
      };
      const Database::Health h = db_->health();
      add("read_only", h.read_only ? "1" : "0");
      add("cause", h.cause);
      add("durability_open", db_->durability_open() ? "1" : "0");
      add("recovered", db_->recovered() ? "1" : "0");
      add("flusher_stalled", h.flusher_stalled ? "1" : "0");
      add("checkpoint_stalled", h.checkpoint_stalled ? "1" : "0");
      const MemoryAccountant& mem = db_->memory_accountant();
      add("mem_total", std::to_string(mem.total_used()));
      add("mem_soft_budget", std::to_string(mem.soft_budget()));
      add("mem_hard_budget", std::to_string(mem.hard_budget()));
      add("mem_over_soft", mem.OverSoft() ? "1" : "0");
      add("mem_over_hard", mem.OverHard() ? "1" : "0");
      return out;
    }
    case sql::Statement::ShowWhat::kSlow: {
      out.columns = {"time_us", "cause", "sql", "stats", "plan"};
      for (const Database::SlowStatement& s : db_->slow_statements()) {
        out.rows.push_back(
            {Value::Int(static_cast<int64_t>(s.duration_ns / 1000)),
             Value::Str(s.cause.empty() ? "slow" : s.cause), Value::Str(s.sql),
             Value::Str(s.delta.ToString()), Value::Str(s.plan)});
      }
      return out;
    }
    case sql::Statement::ShowWhat::kEvents: {
      out.columns = {"event"};
      for (std::string& line : db_->events().ToJsonLines()) {
        out.rows.push_back({Value::Str(std::move(line))});
      }
      return out;
    }
    case sql::Statement::ShowWhat::kTableStats: {
      out.columns = {"stat", "value"};
      auto add = [&out](std::string name, uint64_t v) {
        out.rows.push_back(
            {Value::Str(std::move(name)), Value::Int(static_cast<int64_t>(v))});
      };
      // tables_ is keyed case-insensitively by name; emit in map order with
      // the schema's original casing.
      for (const auto& [key, table] : db_->tables_) {
        const std::string& name = table->schema().name();
        const TableAccessStats& s = table->access_stats();
        add("table." + name + ".scans", s.scans);
        add("table." + name + ".rows_read", s.rows_read);
        add("table." + name + ".rows_inserted", s.rows_inserted);
        add("table." + name + ".rows_deleted", s.rows_deleted);
        add("table." + name + ".rows_updated", s.rows_updated);
        add("table." + name + ".live_rows", table->live_count());
        add("table." + name + ".version_rows", table->version_rows());
        add("table." + name + ".version_bytes", table->version_bytes());
        for (const auto& index : table->indexes()) {
          add("index." + name + "." + index->name() + ".probes",
              index->probes());
          add("index." + name + "." + index->name() + ".hits",
              index->probe_hits());
        }
      }
      return out;
    }
    case sql::Statement::ShowWhat::kTrace: {
      out.columns = {"trace"};
      out.rows.push_back({Value::Str(db_->events().DumpChromeTrace())});
      return out;
    }
  }
  return Status::Internal("unknown SHOW kind");
}

// ---------------------------------------------------------------------------
// DDL

Result<ResultSet> Executor::RunCreateTable(const sql::CreateTableStmt& stmt) {
  // SQL-created tables are durable: they participate in WAL logging and
  // snapshots (direct-API scratch tables do not).
  XUPD_ASSIGN_OR_RETURN(
      Table * ignored,
      db_->CreateTableDirect(TableSchema(stmt.name, stmt.columns),
                             /*transactional=*/true, /*durable=*/true));
  (void)ignored;
  return ResultSet{};
}

Result<ResultSet> Executor::RunCreateIndex(const sql::CreateIndexStmt& stmt) {
  Table* table = db_->FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  int col = table->schema().ColumnIndex(stmt.column);
  if (col < 0) {
    return Status::NotFound("column '" + stmt.column + "' not found");
  }
  {
    // Index vectors are walked by reader-session planners under the shared
    // catalog lock; mutate them exclusively.
    auto lock = db_->LockCatalogExclusive();
    XUPD_RETURN_IF_ERROR(table->CreateIndex(stmt.name, col));
  }
  return ResultSet{};
}

Result<ResultSet> Executor::RunCreateTrigger(const sql::CreateTriggerStmt& stmt) {
  if (db_->FindTable(stmt.table) == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  for (const auto& t : db_->triggers_) {
    if (EqualsIgnoreCase(t.name, stmt.name)) {
      return Status::AlreadyExists("trigger '" + stmt.name + "' already exists");
    }
  }
  Database::TriggerDef def;
  def.name = stmt.name;
  def.table = stmt.table;
  def.granularity = stmt.granularity;
  def.body = stmt.body;
  // Keep the original text only for top-level creates — it is how snapshots
  // persist the trigger (trigger-body DDL would capture the wrong text).
  if (trigger_depth_ == 0) def.sql = std::string(sql_text_);
  {
    auto lock = db_->LockCatalogExclusive();
    db_->triggers_.push_back(std::move(def));
  }
  return ResultSet{};
}

Result<ResultSet> Executor::RunDrop(const sql::DropStmt& stmt) {
  switch (stmt.what) {
    case sql::DropStmt::What::kTable: {
      auto it = db_->tables_.find(stmt.name);
      if (it == db_->tables_.end()) {
        return Status::NotFound("table '" + stmt.name + "' not found");
      }
      // An off-thread checkpoint may hold a raw Table*; let it finish
      // before the table is destroyed, then drop under the exclusive
      // catalog lock so no reader-session planner resolves a dangling
      // pointer. DDL is not snapshot-isolated: a pinned reader's next
      // statement simply fails to find the table (documented anomaly).
      db_->CheckpointWait();
      {
        auto lock = db_->LockCatalogExclusive();
        // Bump inside the exclusive section: a reader session validating a
        // cached plan under the shared lock must never pass validation
        // after the mutation but before the version change.
        db_->catalog_version_.fetch_add(1, std::memory_order_acq_rel);
        db_->tables_.erase(it);
        auto& trigs = db_->triggers_;
        trigs.erase(std::remove_if(trigs.begin(), trigs.end(),
                                   [&](const Database::TriggerDef& t) {
                                     return EqualsIgnoreCase(t.table, stmt.name);
                                   }),
                    trigs.end());
      }
      return ResultSet{};
    }
    case sql::DropStmt::What::kIndex: {
      auto lock = db_->LockCatalogExclusive();
      if (!stmt.table.empty()) {
        Table* table = db_->FindTable(stmt.table);
        if (table == nullptr) {
          return Status::NotFound("table '" + stmt.table + "' not found");
        }
        XUPD_RETURN_IF_ERROR(table->DropIndex(stmt.name));
        return ResultSet{};
      }
      // Owning table unknown: one pass over the catalog, one scan per table.
      for (auto& [name, table] : db_->tables_) {
        if (table->TryDropIndex(stmt.name)) return ResultSet{};
      }
      return Status::NotFound("index '" + stmt.name + "' not found");
    }
    case sql::DropStmt::What::kTrigger: {
      auto lock = db_->LockCatalogExclusive();
      auto& trigs = db_->triggers_;
      size_t before = trigs.size();
      trigs.erase(std::remove_if(trigs.begin(), trigs.end(),
                                 [&](const Database::TriggerDef& t) {
                                   return EqualsIgnoreCase(t.name, stmt.name);
                                 }),
                  trigs.end());
      if (trigs.size() == before) {
        return Status::NotFound("trigger '" + stmt.name + "' not found");
      }
      return ResultSet{};
    }
  }
  return Status::Internal("unknown drop kind");
}

// ---------------------------------------------------------------------------
// Planned SELECT

Result<ResultSet> Executor::RunPlannedSelect(const PlannedStatement& plan) {
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);
  return ExecutePlannedSelect(*plan.select, ctx);
}

// ---------------------------------------------------------------------------
// Planned DML

Result<ResultSet> Executor::RunPlannedInsert(const PlannedStatement& plan) {
  const PlannedInsert& ins = plan.insert;
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);

  auto build_row = [&](const std::vector<Value>& values) -> Result<Row> {
    if (values.size() != ins.column_map.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    Row row(ins.table->schema().column_count(), Value::Null());
    for (size_t i = 0; i < values.size(); ++i) {
      XUPD_ASSIGN_OR_RETURN(Value coerced,
                            CoerceValue(values[i], ins.column_types[i]));
      row[static_cast<size_t>(ins.column_map[i])] = std::move(coerced);
    }
    return row;
  };

  if (ins.select != nullptr) {
    XUPD_ASSIGN_OR_RETURN(ResultSet result,
                          ExecutePlannedSelect(*ins.select, ctx));
    for (const Row& row : result.rows) {
      XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
      XUPD_ASSIGN_OR_RETURN(Row built, build_row(row));
      XUPD_ASSIGN_OR_RETURN(size_t rowid, ins.table->Insert(std::move(built)));
      (void)rowid;
      ++db_->stats_.rows_inserted;
    }
    if (analyze_ != nullptr) analyze_->root.rows += result.rows.size();
    return ResultSet{};
  }

  // Evaluate and coerce every VALUES row before inserting any, so a bad row
  // leaves the table untouched (multi-row INSERT is atomic).
  std::vector<const Value*> no_slots;
  std::vector<Row> built_rows;
  built_rows.reserve(ins.rows.size());
  for (const auto& exprs : ins.rows) {
    std::vector<Value> values;
    values.reserve(exprs.size());
    for (const BoundExpr& e : exprs) {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(e, no_slots, ctx));
      values.push_back(std::move(v));
    }
    XUPD_ASSIGN_OR_RETURN(Row built, build_row(values));
    built_rows.push_back(std::move(built));
  }
  for (Row& row : built_rows) {
    XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
    XUPD_ASSIGN_OR_RETURN(size_t rowid, ins.table->Insert(std::move(row)));
    (void)rowid;
    ++db_->stats_.rows_inserted;
  }
  if (ins.rows.size() > 1) db_->stats_.batched_rows += ins.rows.size();
  if (analyze_ != nullptr) analyze_->root.rows += built_rows.size();
  return ResultSet{};
}

Result<ResultSet> Executor::RunPlannedDelete(const PlannedStatement& plan) {
  const PlannedMutation& m = plan.mutation;
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);
  XUPD_ASSIGN_OR_RETURN(std::vector<size_t> rowids,
                        CollectMatchingRowids(m, ctx));

  std::vector<Row> deleted_rows;
  deleted_rows.reserve(rowids.size());
  // The mutation loop ticks like an operator pull: growth the mutations
  // themselves cause (WAL pending bytes, undo chunks) must hit a poll
  // point before the statement completes.
  for (size_t rowid : rowids) {
    XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
    deleted_rows.push_back(m.table->CopyRow(rowid));
    XUPD_RETURN_IF_ERROR(m.table->Delete(rowid));
    ++db_->stats_.rows_deleted;
  }
  XUPD_RETURN_IF_ERROR(FireDeleteTriggers(m.table, deleted_rows));
  return ResultSet{};
}

Result<ResultSet> Executor::RunPlannedUpdate(const PlannedStatement& plan) {
  const PlannedMutation& m = plan.mutation;
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);
  XUPD_ASSIGN_OR_RETURN(std::vector<size_t> rowids,
                        CollectMatchingRowids(m, ctx));

  std::vector<const Value*> slots(1, nullptr);
  for (size_t rowid : rowids) {
    XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
    // Evaluate all SET expressions against the pre-update row.
    Row snapshot = m.table->CopyRow(rowid);
    slots[0] = snapshot.data();
    std::vector<std::pair<int, Value>> new_values;
    new_values.reserve(m.sets.size());
    for (const PlannedMutation::Set& set : m.sets) {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(set.expr, slots, ctx));
      XUPD_ASSIGN_OR_RETURN(Value coerced, CoerceValue(std::move(v), set.type));
      new_values.emplace_back(set.col, std::move(coerced));
    }
    for (auto& [col, value] : new_values) {
      XUPD_RETURN_IF_ERROR(m.table->SetColumn(rowid, col, std::move(value)));
    }
    ++db_->stats_.rows_updated;
  }
  return ResultSet{};
}

// ---------------------------------------------------------------------------
// Triggers

Status Executor::FireDeleteTriggers(const Table* table,
                                    const std::vector<Row>& deleted_rows) {
  if (deleted_rows.empty()) return Status::OK();
  if (trigger_depth_ > 100) {
    return Status::Internal("trigger recursion limit exceeded");
  }
  // A trigger cascade is the statement's side effect, not part of its plan:
  // suspend any EXPLAIN ANALYZE sink for the body statements, and at the
  // cascade root charge the whole cascade to the Database's trigger-time
  // counter (engine/store.cc spans read it to decompose operation cost).
  struct CascadeScope {
    Executor* e;
    AnalyzeStats* saved_analyze;
    const void* saved_select;
    uint64_t t0 = 0;
    bool root;
    explicit CascadeScope(Executor* ex)
        : e(ex),
          saved_analyze(ex->analyze_),
          saved_select(ex->analyze_select_),
          root(ex->trigger_depth_ == 0) {
      e->analyze_ = nullptr;
      e->analyze_select_ = nullptr;
      if (root) t0 = MonotonicNanos();
    }
    ~CascadeScope() {
      e->analyze_ = saved_analyze;
      e->analyze_select_ = saved_select;
      if (root) e->db_->AddTriggerNs(MonotonicNanos() - t0);
    }
  } cascade_scope(this);
  ++trigger_depth_;
  const std::string& table_name = table->schema().name();
  // Snapshot the trigger list: bodies may not add triggers, but the vector
  // could reallocate if they did.
  std::vector<Database::TriggerDef> defs;
  for (const auto& t : db_->triggers_) {
    if (EqualsIgnoreCase(t.table, table_name)) defs.push_back(t);
  }
  for (const auto& def : defs) {
    if (def.granularity == sql::TriggerGranularity::kRow) {
      for (const Row& row : deleted_rows) {
        ++db_->stats_.trigger_firings;
        const Row* saved_row = trigger_old_row_;
        const TableSchema* saved_schema = trigger_old_schema_;
        trigger_old_row_ = &row;
        trigger_old_schema_ = &table->schema();
        for (const auto& body_stmt : def.body) {
          ++db_->stats_.trigger_statements;
          auto r = Run(*body_stmt, db_->TriggerPlanSlot(body_stmt.get()));
          if (!r.ok()) {
            trigger_old_row_ = saved_row;
            trigger_old_schema_ = saved_schema;
            --trigger_depth_;
            return r.status();
          }
        }
        trigger_old_row_ = saved_row;
        trigger_old_schema_ = saved_schema;
      }
    } else {
      ++db_->stats_.trigger_firings;
      const Row* saved_row = trigger_old_row_;
      const TableSchema* saved_schema = trigger_old_schema_;
      trigger_old_row_ = nullptr;
      trigger_old_schema_ = nullptr;
      for (const auto& body_stmt : def.body) {
        ++db_->stats_.trigger_statements;
        auto r = Run(*body_stmt, db_->TriggerPlanSlot(body_stmt.get()));
        if (!r.ok()) {
          trigger_old_row_ = saved_row;
          trigger_old_schema_ = saved_schema;
          --trigger_depth_;
          return r.status();
        }
      }
      trigger_old_row_ = saved_row;
      trigger_old_schema_ = saved_schema;
    }
  }
  --trigger_depth_;
  return Status::OK();
}

}  // namespace xupd::rdb
