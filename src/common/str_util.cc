#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace xupd {

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitChar(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

int CompareIgnoreCase(std::string_view a, std::string_view b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int ca = std::tolower(static_cast<unsigned char>(a[i]));
    int cb = std::tolower(static_cast<unsigned char>(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '\'';
  for (char c : s) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += '\'';
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace xupd
