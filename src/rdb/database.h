// Database: catalog of tables + AFTER DELETE triggers, and the SQL entry
// points. Every Execute/ExecuteQuery call parses its SQL text — statement
// issue overhead is part of the cost model the paper studies (§6: "issuing
// multiple separate SQL statements incurs overhead"). Prepare/ExecutePrepared
// model the JDBC PreparedStatement path: the text is parsed once, kept in an
// LRU cache keyed by SQL text, and later executions only bind parameter
// values (they still pay the simulated round-trip latency, but not the
// parse). Begin/Commit/Rollback expose the transaction subsystem (rdb/txn.h)
// that gives multi-statement XML update operations the all-or-nothing
// semantics the paper inherits from the relational engine (§6).
#ifndef XUPD_RDB_DATABASE_H_
#define XUPD_RDB_DATABASE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/str_util.h"
#include "rdb/planner.h"
#include "rdb/result.h"
#include "rdb/sql_ast.h"
#include "rdb/stats.h"
#include "rdb/table.h"
#include "rdb/txn.h"

namespace xupd::rdb {

/// An immutable parsed statement. Handles stay valid after cache eviction or
/// invalidation (they are shared_ptrs); name resolution happens at plan
/// time, so a handle held across DDL simply re-plans against the new
/// catalog (the per-handle plan slot is version-guarded).
struct PreparedStatement {
  std::string sql;     ///< original text (also the cache key).
  sql::Statement stmt; ///< parsed form.
  int param_count = 0; ///< number of ? placeholders to bind.
  /// Cached plan for this statement (the plan cache hangs off the handle, so
  /// ExecutePrepared/ExecuteBound reuse it across calls and only bind
  /// parameters). Mutable: handles are shared as pointers-to-const.
  mutable PlanCacheSlot plan_slot;
};

using StatementHandle = std::shared_ptr<const PreparedStatement>;

/// Renders "INSERT INTO <table> VALUES (?, ...), (?, ...), ..." with `rows`
/// placeholder rows of `columns` placeholders each. Parameter values are
/// bound row-major. Constant for a fixed (table, columns, rows) shape, so
/// batched loads of the same batch size hit the prepared cache.
std::string MultiRowInsertSql(std::string_view table, size_t columns,
                              size_t rows);

class Database {
 public:
  Database() = default;
  /// The TransactionManager and every undo record hold pointers into this
  /// object (stats, tables), so it is pinned in place.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and executes a DDL/DML statement.
  Status Execute(std::string_view sql);

  /// Parses and executes a SELECT, returning its rows.
  Result<ResultSet> ExecuteQuery(std::string_view sql);

  /// Parses `sql` into a reusable handle, or returns the cached handle when
  /// the same text was prepared before (LRU, invalidated by DDL). DDL
  /// statements parse but are never cached. `cacheable = false` still probes
  /// the cache but never inserts on a miss — for one-shot texts (e.g. with
  /// inlined id lists) that would only evict reusable plans.
  Result<StatementHandle> Prepare(std::string_view sql, bool cacheable = true);

  /// Executes a prepared statement, binding `params` to its ? placeholders
  /// positionally. Pays the per-statement latency but skips the parse.
  Status ExecutePrepared(const StatementHandle& handle,
                         const std::vector<Value>& params = {});
  Result<ResultSet> ExecuteQueryPrepared(const StatementHandle& handle,
                                         const std::vector<Value>& params = {});

  /// Convenience: Prepare (served from the cache after the first call) then
  /// ExecutePrepared.
  Status ExecuteBound(std::string_view sql, const std::vector<Value>& params,
                      bool cacheable = true);
  Result<ResultSet> ExecuteQueryBound(std::string_view sql,
                                      const std::vector<Value>& params,
                                      bool cacheable = true);

  // --- transactions --------------------------------------------------------
  //
  // Begin/Commit/Rollback control an in-memory logical undo log (rdb/txn.h).
  // Nested Begin opens a savepoint scope: an inner Rollback undoes only that
  // scope's writes, an inner Commit merges them into the enclosing scope.
  // Rollback restores row liveness (tombstones), hash-index entries, updated
  // column values, and the next-id counter to their state at the matching
  // Begin. Trigger-issued writes log into the enclosing transaction like any
  // other write. These calls run inside the engine (no simulated statement
  // latency); the SQL statements BEGIN/COMMIT/ROLLBACK map onto them and pay
  // the usual per-statement cost.
  //
  // DDL-in-transaction policy: SQL DDL (CREATE/DROP of tables, indexes and
  // triggers) inside an active transaction is REJECTED with InvalidArgument
  // — catalog changes are not undoable, and silently auto-committing would
  // break the atomicity the engine layers rely on. The direct catalog APIs
  // below are exempt: they exist for engine-internal scratch tables (temp
  // staging for the §6.2.2 table insert, id-list probes), which are not
  // transactional state; DropTableDirect purges the dropped table's undo
  // records so the log never dangles. Direct catalog changes do not flush
  // the prepared-statement (parse) cache, but DropTableDirect bumps the
  // catalog version so cached plans holding the dropped Table re-plan.

  /// Opens a transaction scope (a savepoint when one is already active).
  Status Begin();
  /// Commits the innermost scope; the outermost commit discards the log.
  Status Commit();
  /// Rolls back the innermost scope's writes in reverse order.
  Status Rollback();
  /// Opens a NAMED savepoint scope (SQL: SAVEPOINT name). Requires an
  /// active transaction — savepoints mark positions inside one.
  Status Savepoint(const std::string& name);
  /// Undoes every write since the innermost savepoint named `name` and
  /// keeps the savepoint open (SQL: ROLLBACK TO [SAVEPOINT] name).
  Status RollbackTo(const std::string& name);
  /// Merges the named savepoint (and scopes nested inside it) into its
  /// parent scope (SQL: RELEASE [SAVEPOINT] name).
  Status Release(const std::string& name);
  bool in_transaction() const { return txn_.active(); }
  size_t transaction_depth() const { return txn_.depth(); }
  /// Undo records currently held for open scopes (tests/benches).
  size_t undo_log_size() const { return txn_.undo_size(); }

  /// Failure injection (tests/benches): after `statements` further statement
  /// executions — counting trigger-body and nested statements — the next one
  /// fails with an Internal error, and the hook disarms. Negative cancels.
  void InjectFailureAfterStatements(int64_t statements) {
    fail_after_statements_ = statements;
  }

  /// Prepared-statement cache introspection (tests/benches).
  size_t prepared_cache_size() const { return cache_lru_.size(); }
  size_t prepared_cache_capacity() const { return cache_capacity_; }
  void set_prepared_cache_capacity(size_t capacity);

  /// Catalog snapshot version guarding cached plans. Bumped by every SQL
  /// DDL statement (including CREATE INDEX / DROP INDEX — plans capture
  /// index choices) and by DropTableDirect (plans capture Table pointers);
  /// a cached plan built under an older version is rebuilt before use.
  uint64_t catalog_version() const { return catalog_version_; }

  /// Planner knob (tests): when false, every plan uses full scans — the
  /// parity harness compares probed vs scanned execution. Toggling
  /// invalidates cached plans.
  bool planner_index_probes_enabled() const {
    return planner_index_probes_enabled_;
  }
  void set_planner_index_probes_enabled(bool enabled) {
    if (planner_index_probes_enabled_ != enabled) BumpCatalogVersion();
    planner_index_probes_enabled_ = enabled;
  }

  /// Direct bulk-load API (bypasses SQL): used by the shredder to load
  /// documents quickly; benchmark updates always go through Execute().
  /// `transactional = false` leaves the table unwired from the undo log —
  /// for engine scratch tables whose contents are not transactional state
  /// (writes to them are never undone and never logged).
  Result<Table*> CreateTableDirect(TableSchema schema,
                                   bool transactional = true);
  Status InsertDirect(Table* table, Row row);
  /// Drops a table from the catalog without SQL (exempt from the DDL txn
  /// barrier; see above). Also removes triggers on the table and purges its
  /// undo records.
  Status DropTableDirect(std::string_view name);

  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;
  std::vector<std::string> TableNames() const;

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// Simulated per-statement issue latency (microseconds), applied to every
  /// Execute/ExecuteQuery/ExecutePrepared call — models the client/server
  /// round trip a 2001-era JDBC/DB2 stack pays per statement (trigger
  /// bodies run inside the engine and do NOT pay it; prepared statements
  /// pay the round trip but skip the parse). Default 0 (off); the Table 2
  /// bench uses it to reproduce the paper's cost regime (DESIGN.md).
  double statement_latency_us() const { return statement_latency_us_; }
  void set_statement_latency_us(double us) { statement_latency_us_ = us; }

  /// A next-id counter for the mapping layer (the paper's "systemwide next
  /// available id", §6.2.2).
  int64_t next_id() const { return next_id_; }
  void set_next_id(int64_t v) { next_id_ = v; }
  int64_t AllocateId() { return next_id_++; }
  /// Advances next_id by `count` and returns the first id of the block.
  int64_t AllocateIdBlock(int64_t count) {
    int64_t first = next_id_;
    next_id_ += count;
    return first;
  }

  struct TriggerDef {
    std::string name;
    std::string table;
    sql::TriggerGranularity granularity = sql::TriggerGranularity::kRow;
    std::vector<std::shared_ptr<sql::Statement>> body;
  };
  const std::vector<TriggerDef>& triggers() const { return triggers_; }

 private:
  friend class Executor;

  /// CREATE/DROP of any catalog object drops every cached parse (outstanding
  /// handles survive; re-Prepare of the same text is a miss) and bumps the
  /// catalog version, invalidating every cached plan.
  void InvalidateStatementCache();
  /// Invalidates cached plans only (catalog shape changed without SQL DDL,
  /// or the planner knob flipped). Clears the trigger-body plan map so its
  /// statement-pointer keys can never dangle across a version change.
  void BumpCatalogVersion();
  static bool IsDdl(const sql::Statement& stmt);

  /// Plan slot for a trigger-body statement (keyed by the shared Statement's
  /// identity; trigger bodies are stable shared_ptrs held by triggers_).
  PlanCacheSlot* TriggerPlanSlot(const sql::Statement* stmt) {
    return &trigger_plans_[stmt];
  }

  /// Returns the injected error when the failpoint counter runs out.
  Status ConsumeFailpoint();
  /// The DDL-in-transaction barrier (see the policy comment above).
  Status CheckDdlBarrier(const sql::Statement& stmt) const;

  /// Tables keyed by their original name, compared case-insensitively; the
  /// transparent comparator keeps FindTable allocation-free on the hot path.
  std::map<std::string, std::unique_ptr<Table>, AsciiCaseInsensitiveLess>
      tables_;
  std::vector<TriggerDef> triggers_;
  Stats stats_;
  TransactionManager txn_{&stats_};
  int64_t next_id_ = 1;
  double statement_latency_us_ = 0;
  /// Failpoint countdown; negative = disarmed.
  int64_t fail_after_statements_ = -1;

  /// LRU prepared-statement cache: list front = most recently used; the
  /// index maps SQL text to its list node (transparent lookup, no copy).
  std::list<std::pair<std::string, StatementHandle>> cache_lru_;
  std::map<std::string, std::list<std::pair<std::string, StatementHandle>>::
                            iterator,
           std::less<>>
      cache_index_;
  size_t cache_capacity_ = 128;

  /// Plan-cache guard (see catalog_version()). Starts at 1 so a
  /// default-constructed PlanCacheSlot (version 0) never validates.
  uint64_t catalog_version_ = 1;
  bool planner_index_probes_enabled_ = true;
  /// Cached plans for trigger-body statements. Entries are version-guarded
  /// like handle slots and the map is cleared on every version bump.
  std::map<const sql::Statement*, PlanCacheSlot> trigger_plans_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_DATABASE_H_
