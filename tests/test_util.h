// Shared fixtures for xupd tests: the paper's running examples.
#ifndef XUPD_TESTS_TEST_UTIL_H_
#define XUPD_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "xml/document.h"
#include "xml/dtd.h"
#include "xml/parser.h"

namespace xupd::testing {

/// The bio-labs document of Figure 1 of the paper.
extern const char kBioXml[];

/// The customer DTD of Figure 4 of the paper (extended with the Status and
/// comment elements used by Example 8, and Name made repeatable-free).
extern const char kCustomerDtd[];

/// A small customer document conforming to kCustomerDtd.
extern const char kCustomerXml[];

/// Parses kBioXml with the ref-attribute declarations used in the paper
/// (managers, source, biologist, lab are IDREF/IDREFS attributes).
std::unique_ptr<xml::Document> ParseBioDocument();

/// Parses arbitrary XML and aborts the test on failure.
std::unique_ptr<xml::Document> MustParse(const std::string& text);

/// Parses a DTD or aborts.
xml::Dtd MustParseDtd(const std::string& text);

}  // namespace xupd::testing

#endif  // XUPD_TESTS_TEST_UTIL_H_
