#include "xml/parser.h"

#include <cctype>
#include <cstdint>

#include "common/str_util.h"

namespace xupd::xml {

namespace {

class XmlCursor {
 public:
  explicit XmlCursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t off = 0) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  void Advance() {
    if (!AtEnd()) {
      if (text_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_).substr(0, word.size()) == word) {
      for (size_t i = 0; i < word.size(); ++i) Advance();
      return true;
    }
    return false;
  }
  bool LookingAt(std::string_view word) const {
    return text_.substr(pos_).substr(0, word.size()) == word;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from, size_t to) const {
    return text_.substr(from, to - from);
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XML " + std::to_string(line_) + ":" +
                              std::to_string(col_) + ": " + msg);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

std::string ReadName(XmlCursor* cur) {
  std::string name;
  if (!IsNameStart(cur->Peek())) return name;
  while (IsNameChar(cur->Peek())) {
    name += cur->Peek();
    cur->Advance();
  }
  return name;
}

Status DecodeEntity(XmlCursor* cur, std::string* out) {
  // Called after consuming '&'.
  if (cur->Consume('#')) {
    int base = 10;
    if (cur->Consume('x') || cur->Consume('X')) base = 16;
    std::string digits;
    while (std::isxdigit(static_cast<unsigned char>(cur->Peek()))) {
      digits += cur->Peek();
      cur->Advance();
    }
    if (!cur->Consume(';') || digits.empty()) {
      return cur->Error("malformed character reference");
    }
    uint32_t cp = static_cast<uint32_t>(std::stoul(digits, nullptr, base));
    // UTF-8 encode.
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return Status::OK();
  }
  std::string name = ReadName(cur);
  if (!cur->Consume(';')) return cur->Error("malformed entity reference");
  if (name == "amp") {
    *out += '&';
  } else if (name == "lt") {
    *out += '<';
  } else if (name == "gt") {
    *out += '>';
  } else if (name == "quot") {
    *out += '"';
  } else if (name == "apos") {
    *out += '\'';
  } else {
    return cur->Error("unknown entity '&" + name + ";'");
  }
  return Status::OK();
}

bool IsWhitespaceOnly(const std::string& s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : cur_(text), options_(options), dtd_(options.dtd) {}

  Result<ParsedXml> ParseDocument() {
    XUPD_RETURN_IF_ERROR(SkipProlog());
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    cur_.SkipWhitespace();
    while (cur_.LookingAt("<!--")) {
      XUPD_RETURN_IF_ERROR(SkipComment());
      cur_.SkipWhitespace();
    }
    if (!cur_.AtEnd()) {
      return cur_.Error("trailing content after document element");
    }
    ParsedXml out;
    out.document = std::make_unique<Document>(std::move(root).value());
    out.document->set_id_attribute(options_.id_attribute);
    for (const std::string& r : options_.ref_attributes) {
      out.document->DeclareRefAttribute(r);
    }
    if (internal_dtd_.has_value()) {
      for (const AttrDecl& a : internal_dtd_->attributes()) {
        if (a.type == AttrType::kIdref || a.type == AttrType::kIdrefs) {
          out.document->DeclareRefAttribute(a.name);
        }
      }
      out.internal_dtd = std::move(internal_dtd_);
    }
    return out;
  }

  Result<std::unique_ptr<Element>> ParseSingleElement() {
    cur_.SkipWhitespace();
    auto elem = ParseElement();
    if (!elem.ok()) return elem.status();
    cur_.SkipWhitespace();
    if (!cur_.AtEnd()) return cur_.Error("trailing content after fragment");
    return std::move(elem).value();
  }

 private:
  Status SkipProlog() {
    while (true) {
      cur_.SkipWhitespace();
      if (cur_.LookingAt("<?")) {
        XUPD_RETURN_IF_ERROR(SkipPi());
      } else if (cur_.LookingAt("<!--")) {
        XUPD_RETURN_IF_ERROR(SkipComment());
      } else if (cur_.LookingAt("<!DOCTYPE")) {
        XUPD_RETURN_IF_ERROR(ParseDoctype());
      } else {
        return Status::OK();
      }
    }
  }

  Status SkipPi() {
    cur_.ConsumeWord("<?");
    while (!cur_.AtEnd() && !cur_.ConsumeWord("?>")) cur_.Advance();
    return Status::OK();
  }

  Status SkipComment() {
    cur_.ConsumeWord("<!--");
    while (!cur_.AtEnd()) {
      if (cur_.ConsumeWord("-->")) return Status::OK();
      cur_.Advance();
    }
    return cur_.Error("unterminated comment");
  }

  Status ParseDoctype() {
    cur_.ConsumeWord("<!DOCTYPE");
    cur_.SkipWhitespace();
    ReadName(&cur_);  // root name (unused)
    cur_.SkipWhitespace();
    if (cur_.Consume('[')) {
      size_t start = cur_.pos();
      int depth = 0;
      while (!cur_.AtEnd()) {
        char c = cur_.Peek();
        if (c == '<') ++depth;
        if (c == '>') --depth;
        if (c == ']' && depth <= 0) break;
        cur_.Advance();
      }
      size_t end = cur_.pos();
      if (!cur_.Consume(']')) return cur_.Error("unterminated internal subset");
      auto dtd = Dtd::Parse(cur_.Slice(start, end));
      if (!dtd.ok()) return dtd.status();
      internal_dtd_ = std::move(dtd).value();
      if (dtd_ == nullptr) dtd_ = &*internal_dtd_;
    }
    cur_.SkipWhitespace();
    if (!cur_.Consume('>')) return cur_.Error("expected '>' after DOCTYPE");
    return Status::OK();
  }

  bool IsRefAttribute(const std::string& element, const std::string& attr) {
    if (options_.ref_attributes.count(attr) > 0) return true;
    if (dtd_ != nullptr) {
      const AttrDecl* decl = dtd_->FindAttribute(element, attr);
      if (decl != nullptr) {
        return decl->type == AttrType::kIdref || decl->type == AttrType::kIdrefs;
      }
    }
    return false;
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    if (!cur_.Consume('<')) return cur_.Error("expected '<'");
    std::string name = ReadName(&cur_);
    if (name.empty()) return cur_.Error("expected element name");
    auto elem = std::make_unique<Element>(name);

    // Attributes.
    while (true) {
      cur_.SkipWhitespace();
      if (cur_.Consume('>')) break;
      if (cur_.ConsumeWord("/>")) return elem;  // empty element
      std::string attr_name = ReadName(&cur_);
      if (attr_name.empty()) return cur_.Error("expected attribute name");
      cur_.SkipWhitespace();
      if (!cur_.Consume('=')) return cur_.Error("expected '=' after attribute");
      cur_.SkipWhitespace();
      std::string value;
      XUPD_RETURN_IF_ERROR(ParseAttrValue(&value));
      if (IsRefAttribute(name, attr_name)) {
        for (std::string& target : SplitWhitespace(value)) {
          elem->AppendRef(attr_name, std::move(target));
        }
      } else {
        if (elem->FindAttribute(attr_name) != nullptr) {
          return cur_.Error("duplicate attribute '" + attr_name + "'");
        }
        elem->SetAttribute(std::move(attr_name), std::move(value));
      }
    }

    // Content.
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (options_.keep_whitespace_text || !IsWhitespaceOnly(text)) {
        elem->AppendText(std::move(text));
      }
      text.clear();
    };
    while (true) {
      if (cur_.AtEnd()) return cur_.Error("unexpected end inside <" + name + ">");
      if (cur_.LookingAt("</")) {
        flush_text();
        cur_.ConsumeWord("</");
        std::string close = ReadName(&cur_);
        cur_.SkipWhitespace();
        if (!cur_.Consume('>')) return cur_.Error("expected '>' in close tag");
        // Accept the paper's shorthand </> for "close current element".
        if (!close.empty() && close != name) {
          return cur_.Error("mismatched close tag </" + close + "> for <" +
                            name + ">");
        }
        return elem;
      }
      if (cur_.LookingAt("<!--")) {
        flush_text();
        XUPD_RETURN_IF_ERROR(SkipComment());
        continue;
      }
      if (cur_.LookingAt("<![CDATA[")) {
        cur_.ConsumeWord("<![CDATA[");
        while (!cur_.AtEnd() && !cur_.LookingAt("]]>")) {
          text += cur_.Peek();
          cur_.Advance();
        }
        if (!cur_.ConsumeWord("]]>")) return cur_.Error("unterminated CDATA");
        continue;
      }
      if (cur_.LookingAt("<?")) {
        flush_text();
        XUPD_RETURN_IF_ERROR(SkipPi());
        continue;
      }
      if (cur_.Peek() == '<') {
        flush_text();
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        elem->AppendChild(std::move(child).value());
        continue;
      }
      if (cur_.Peek() == '&') {
        cur_.Advance();
        XUPD_RETURN_IF_ERROR(DecodeEntity(&cur_, &text));
        continue;
      }
      text += cur_.Peek();
      cur_.Advance();
    }
  }

  Status ParseAttrValue(std::string* out) {
    char quote = cur_.Peek();
    if (quote != '"' && quote != '\'') {
      return cur_.Error("expected quoted attribute value");
    }
    cur_.Advance();
    out->clear();
    while (!cur_.AtEnd() && cur_.Peek() != quote) {
      if (cur_.Peek() == '&') {
        cur_.Advance();
        XUPD_RETURN_IF_ERROR(DecodeEntity(&cur_, out));
      } else {
        *out += cur_.Peek();
        cur_.Advance();
      }
    }
    if (!cur_.Consume(quote)) return cur_.Error("unterminated attribute value");
    return Status::OK();
  }

  XmlCursor cur_;
  const ParseOptions& options_;
  const Dtd* dtd_;
  std::optional<Dtd> internal_dtd_;
};

}  // namespace

Result<ParsedXml> ParseXml(std::string_view text, const ParseOptions& options) {
  Parser parser(text, options);
  return parser.ParseDocument();
}

Result<ParsedXml> ParseXml(std::string_view text) {
  ParseOptions options;
  return ParseXml(text, options);
}

Result<std::unique_ptr<Element>> ParseFragment(std::string_view text,
                                               const ParseOptions& options) {
  Parser parser(text, options);
  return parser.ParseSingleElement();
}

}  // namespace xupd::xml
