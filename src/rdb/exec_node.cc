#include "rdb/exec_node.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/str_util.h"
#include "rdb/database.h"

namespace xupd::rdb {

using sql::Expr;

// ---------------------------------------------------------------------------
// Governance poll (the TickGovernance slow path)

Status ExecContext::PollGovernance() const {
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    return Status::Cancelled("statement cancelled via CancelToken");
  }
  if (deadline_ns != 0 && MonotonicNanos() >= deadline_ns) {
    return Status::DeadlineExceeded(
        "statement deadline exceeded (see Database::set_statement_timeout_us "
        "/ SET STATEMENT_TIMEOUT)");
  }
  if (mem != nullptr) return mem->CheckHard();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Value helpers

Result<Value> CoerceValue(Value v, ColumnType type) {
  if (v.is_null()) return v;
  if (type == ColumnType::kInteger) {
    if (v.type() == ValueType::kInt) return v;
    int64_t parsed;
    if (ParseInt64(v.AsString(), &parsed)) return Value::Int(parsed);
    return Status::InvalidArgument("cannot coerce '" +
                                   std::string(v.AsString()) + "' to INTEGER");
  }
  if (v.type() == ValueType::kString) return v;
  return Value::Str(v.ToString());
}

namespace {

// Truthiness of a value with NULL == not-true.
bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.AsInt() != 0;
  return !v.AsString().empty();
}

}  // namespace

// ---------------------------------------------------------------------------
// Bound-expression evaluation

Result<const std::unordered_set<Value, ValueHash>*> SubquerySet(
    const PlannedSelect& sub, ExecContext& ctx) {
  auto it = ctx.subquery_memo->find(&sub);
  if (it != ctx.subquery_memo->end()) return it->second.get();
  XUPD_ASSIGN_OR_RETURN(ResultSet result, ExecutePlannedSelect(sub, ctx));
  auto set = std::make_unique<std::unordered_set<Value, ValueHash>>();
  for (const Row& row : result.rows) {
    if (!row.empty() && !row[0].is_null()) set->insert(row[0]);
  }
  const auto* raw = set.get();
  ctx.subquery_memo->emplace(&sub, std::move(set));
  return raw;
}

Result<Value> EvalBound(const BoundExpr& expr,
                        const std::vector<const Value*>& slots,
                        ExecContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kParam: {
      if (ctx.params == nullptr ||
          expr.param_index >= static_cast<int>(ctx.params->size()) ||
          expr.param_index < 0) {
        return Status::InvalidArgument(
            "parameter ?" + std::to_string(expr.param_index + 1) +
            " is not bound");
      }
      return (*ctx.params)[static_cast<size_t>(expr.param_index)];
    }
    case Expr::Kind::kColumn:
      return slots[expr.rel][expr.col];
    case Expr::Kind::kOldColumn: {
      if (ctx.old_row == nullptr) {
        return Status::InvalidArgument("OLD.* outside a row trigger");
      }
      return (*ctx.old_row)[expr.col];
    }
    case Expr::Kind::kUnary: {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(expr.children[0], slots, ctx));
      if (expr.op == Expr::Op::kNot) {
        if (v.is_null()) return Value::Null();
        return Value::Int(Truthy(v) ? 0 : 1);
      }
      if (expr.op == Expr::Op::kNeg) {
        if (v.is_null()) return Value::Null();
        XUPD_ASSIGN_OR_RETURN(Value i, CoerceValue(v, ColumnType::kInteger));
        return Value::Int(-i.AsInt());
      }
      return Status::Internal("unknown unary op");
    }
    case Expr::Kind::kBinary: {
      if (expr.op == Expr::Op::kAnd) {
        XUPD_ASSIGN_OR_RETURN(Value l, EvalBound(expr.children[0], slots, ctx));
        if (!l.is_null() && !Truthy(l)) return Value::Int(0);
        XUPD_ASSIGN_OR_RETURN(Value r, EvalBound(expr.children[1], slots, ctx));
        if (!r.is_null() && !Truthy(r)) return Value::Int(0);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Int(1);
      }
      if (expr.op == Expr::Op::kOr) {
        XUPD_ASSIGN_OR_RETURN(Value l, EvalBound(expr.children[0], slots, ctx));
        if (!l.is_null() && Truthy(l)) return Value::Int(1);
        XUPD_ASSIGN_OR_RETURN(Value r, EvalBound(expr.children[1], slots, ctx));
        if (!r.is_null() && Truthy(r)) return Value::Int(1);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Int(0);
      }
      XUPD_ASSIGN_OR_RETURN(Value l, EvalBound(expr.children[0], slots, ctx));
      XUPD_ASSIGN_OR_RETURN(Value r, EvalBound(expr.children[1], slots, ctx));
      switch (expr.op) {
        case Expr::Op::kAdd:
        case Expr::Op::kSub:
        case Expr::Op::kMul:
        case Expr::Op::kDiv: {
          if (l.is_null() || r.is_null()) return Value::Null();
          XUPD_ASSIGN_OR_RETURN(Value li, CoerceValue(l, ColumnType::kInteger));
          XUPD_ASSIGN_OR_RETURN(Value ri, CoerceValue(r, ColumnType::kInteger));
          int64_t a = li.AsInt(), b = ri.AsInt();
          switch (expr.op) {
            case Expr::Op::kAdd:
              return Value::Int(a + b);
            case Expr::Op::kSub:
              return Value::Int(a - b);
            case Expr::Op::kMul:
              return Value::Int(a * b);
            default:
              if (b == 0) return Status::InvalidArgument("division by zero");
              return Value::Int(a / b);
          }
        }
        default: {
          if (l.is_null() || r.is_null()) return Value::Null();
          int cmp = l.Compare(r);
          bool result = false;
          switch (expr.op) {
            case Expr::Op::kEq:
              result = cmp == 0;
              break;
            case Expr::Op::kNe:
              result = cmp != 0;
              break;
            case Expr::Op::kLt:
              result = cmp < 0;
              break;
            case Expr::Op::kLe:
              result = cmp <= 0;
              break;
            case Expr::Op::kGt:
              result = cmp > 0;
              break;
            case Expr::Op::kGe:
              result = cmp >= 0;
              break;
            default:
              return Status::Internal("unknown binary op");
          }
          return Value::Int(result ? 1 : 0);
        }
      }
    }
    case Expr::Kind::kIsNull: {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(expr.children[0], slots, ctx));
      bool is_null = v.is_null();
      return Value::Int((is_null != expr.negated) ? 1 : 0);
    }
    case Expr::Kind::kInList: {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(expr.children[0], slots, ctx));
      if (v.is_null()) return Value::Null();
      for (const BoundExpr& item : expr.in_list) {
        XUPD_ASSIGN_OR_RETURN(Value candidate, EvalBound(item, slots, ctx));
        if (v.SqlEquals(candidate)) {
          return Value::Int(expr.negated ? 0 : 1);
        }
      }
      return Value::Int(expr.negated ? 1 : 0);
    }
    case Expr::Kind::kInSubquery: {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(expr.children[0], slots, ctx));
      if (v.is_null()) return Value::Null();
      XUPD_ASSIGN_OR_RETURN(const auto* set, SubquerySet(*expr.subquery, ctx));
      bool found = set->count(v) > 0;
      return Value::Int((found != expr.negated) ? 1 : 0);
    }
    case Expr::Kind::kAggregate:
      return Status::InvalidArgument("aggregate outside select list");
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvalBoolBound(const BoundExpr& expr,
                           const std::vector<const Value*>& slots,
                           ExecContext& ctx) {
  XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(expr, slots, ctx));
  return Truthy(v);
}

// ---------------------------------------------------------------------------
// Operators

namespace {

/// Gathers candidate rowids for an index-driven access path (one Lookup per
/// probe value; counts each as an index probe).
Status GatherCandidates(const AccessPath& path,
                        const std::vector<const Value*>& slots,
                        ExecContext& ctx, std::vector<size_t>* out) {
  switch (path.kind) {
    case AccessPath::Kind::kScan:
      return Status::Internal("scan path has no candidates");
    case AccessPath::Kind::kIndexEq: {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(path.probe, slots, ctx));
      path.index->Lookup(v, out);
      ++ctx.stats->index_probes;
      return Status::OK();
    }
    case AccessPath::Kind::kIndexIn: {
      for (const BoundExpr& item : path.probe_list) {
        XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(item, slots, ctx));
        path.index->Lookup(v, out);
        ++ctx.stats->index_probes;
      }
      return Status::OK();
    }
    case AccessPath::Kind::kIndexInSubquery: {
      XUPD_ASSIGN_OR_RETURN(const auto* set,
                            SubquerySet(*path.probe_subquery, ctx));
      for (const Value& v : *set) {
        path.index->Lookup(v, out);
        ++ctx.stats->index_probes;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown access path kind");
}

void SortUnique(std::vector<size_t>* rowids) {
  std::sort(rowids->begin(), rowids->end());
  rowids->erase(std::unique(rowids->begin(), rowids->end()), rowids->end());
}

/// Emits exactly one empty tuple (SELECT with no FROM clause).
class OneRowNode : public ExecNode {
 public:
  Status Open(ExecContext&) override {
    emitted_ = false;
    return Status::OK();
  }
  Result<bool> Next(ExecContext&) override {
    if (emitted_) return false;
    emitted_ = true;
    return true;
  }

 private:
  bool emitted_ = false;
};

/// Full scan over a catalog table or a materialized CTE.
class ScanNode : public ExecNode {
 public:
  ScanNode(const PlannedRelation* rel, size_t k,
           std::vector<const Value*>* slots)
      : rel_(rel), k_(k), slots_(slots) {}

  Status Open(ExecContext& ctx) override {
    pos_ = 0;
    mat_ = rel_->cte_slot >= 0
               ? (*ctx.cte_values)[static_cast<size_t>(rel_->cte_slot)].get()
               : nullptr;
    // Per-table access stats (SHOW TABLE STATS); CTE scans have no table.
    if (rel_->table != nullptr) ++rel_->table->access_stats().scans;
    if (rel_->table != nullptr && ctx.read_epoch != kLatestEpoch) {
      // Snapshot bound: slots appended after this point belong to epochs
      // newer than the pin and would be invisible anyway.
      snap_rows_ = rel_->table->SnapshotRowCount();
    }
    return Status::OK();
  }

  Result<bool> Next(ExecContext& ctx) override {
    if (rel_->table != nullptr) {
      const Table* table = rel_->table;
      if (ctx.read_epoch != kLatestEpoch) {
        // Snapshot read (reader session): visibility comes from row epoch
        // metadata, not the writer-private liveness bitmap, and cell values
        // are materialized through the seqlock into this node's staging row
        // (stable while inner join steps iterate — only this node's own
        // Next overwrites it).
        while (pos_ < snap_rows_) {
          XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
          size_t rowid = pos_++;
          staging_.clear();
          if (!table->SnapshotReadRow(rowid, ctx.read_epoch, &staging_)) {
            continue;
          }
          ++ctx.stats->rows_scanned;
          ++table->access_stats().rows_read;
          (*slots_)[k_] = staging_.data();
          return true;
        }
        return false;
      }
      while (pos_ < table->capacity()) {
        XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
        size_t rowid = pos_++;
        if (!table->is_live(rowid)) continue;
        ++ctx.stats->rows_scanned;
        ++table->access_stats().rows_read;
        (*slots_)[k_] = table->row(rowid);
        return true;
      }
      return false;
    }
    if (pos_ < mat_->rows.size()) {
      XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
      ++ctx.stats->rows_scanned;
      (*slots_)[k_] = mat_->rows[pos_++].data();
      return true;
    }
    return false;
  }

 private:
  const PlannedRelation* rel_;
  size_t k_;
  std::vector<const Value*>* slots_;
  size_t pos_ = 0;
  size_t snap_rows_ = 0;
  Row staging_;  // snapshot reads materialize here (owned copies).
  const ResultSet* mat_ = nullptr;
};

/// Hash-index probe: gathers candidate rowids at Open (probe values may
/// reference earlier relations' current tuples) and streams the live ones.
class IndexProbeNode : public ExecNode {
 public:
  IndexProbeNode(const PlannedRelation* rel, const AccessPath* path, size_t k,
                 std::vector<const Value*>* slots)
      : rel_(rel), path_(path), k_(k), slots_(slots) {}

  Status Open(ExecContext& ctx) override {
    pos_ = 0;
    if (ctx.read_epoch != kLatestEpoch) {
      // Reader sessions plan with index probes disabled (hash indexes are
      // writer-private, not epoch-versioned); reaching here means a plan
      // leaked across the writer/reader boundary.
      return Status::Internal("index probe reached in snapshot read");
    }
    // IN-list / IN-subquery probe values are row-free by construction, so
    // at an inner join step the candidate set is identical for every outer
    // row: gather it once per execution and replay it on later re-Opens
    // (liveness is still checked per Next, and mutations never interleave
    // with an executing pipeline).
    if (gathered_ && path_->kind != AccessPath::Kind::kIndexEq) {
      return Status::OK();
    }
    rowids_.clear();
    XUPD_RETURN_IF_ERROR(GatherCandidates(*path_, *slots_, ctx, &rowids_));
    // Multi-probe paths can surface a rowid twice; dedupe. Sorting puts
    // every probe kind in ascending rowid order == scan order, keeping
    // output order stable vs a filtered scan.
    SortUnique(&rowids_);
    gathered_ = true;
    return Status::OK();
  }

  Result<bool> Next(ExecContext& ctx) override {
    while (pos_ < rowids_.size()) {
      XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
      size_t rowid = rowids_[pos_++];
      if (!rel_->table->is_live(rowid)) continue;
      ++rel_->table->access_stats().rows_read;
      (*slots_)[k_] = rel_->table->row(rowid);
      return true;
    }
    return false;
  }

 private:
  const PlannedRelation* rel_;
  const AccessPath* path_;
  size_t k_;
  std::vector<const Value*>* slots_;
  std::vector<size_t> rowids_;
  size_t pos_ = 0;
  bool gathered_ = false;
};

/// Passes through child tuples that satisfy every conjunct.
class FilterNode : public ExecNode {
 public:
  FilterNode(std::unique_ptr<ExecNode> child,
             const std::vector<BoundExpr>* filters,
             std::vector<const Value*>* slots)
      : child_(std::move(child)), filters_(filters), slots_(slots) {}

  Status Open(ExecContext& ctx) override { return child_->Open(ctx); }

  Result<bool> Next(ExecContext& ctx) override {
    while (true) {
      XUPD_ASSIGN_OR_RETURN(bool more, child_->Next(ctx));
      if (!more) return false;
      bool pass = true;
      for (const BoundExpr& f : *filters_) {
        XUPD_ASSIGN_OR_RETURN(bool ok, EvalBoolBound(f, *slots_, ctx));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
    }
  }

 private:
  std::unique_ptr<ExecNode> child_;
  const std::vector<BoundExpr>* filters_;
  std::vector<const Value*>* slots_;
};

/// Nested-loop join: for each outer tuple, re-opens the inner side (whose
/// probe expressions see the outer tuple through the shared slots).
class NestedLoopJoinNode : public ExecNode {
 public:
  NestedLoopJoinNode(std::unique_ptr<ExecNode> outer,
                     std::unique_ptr<ExecNode> inner)
      : outer_(std::move(outer)), inner_(std::move(inner)) {}

  Status Open(ExecContext& ctx) override {
    inner_open_ = false;
    return outer_->Open(ctx);
  }

  Result<bool> Next(ExecContext& ctx) override {
    while (true) {
      if (!inner_open_) {
        XUPD_ASSIGN_OR_RETURN(bool more, outer_->Next(ctx));
        if (!more) return false;
        XUPD_RETURN_IF_ERROR(inner_->Open(ctx));
        inner_open_ = true;
      }
      XUPD_ASSIGN_OR_RETURN(bool more, inner_->Next(ctx));
      if (more) return true;
      inner_open_ = false;
    }
  }

 private:
  std::unique_ptr<ExecNode> outer_;
  std::unique_ptr<ExecNode> inner_;
  bool inner_open_ = false;
};

/// EXPLAIN ANALYZE wrapper: charges wall time spent in the wrapped subtree's
/// Open()/Next() and counts emitted rows. Only built when a statement is
/// being analyzed — normal execution never sees it.
class TimedNode : public ExecNode {
 public:
  TimedNode(std::unique_ptr<ExecNode> child, OpStats* stats)
      : child_(std::move(child)), stats_(stats) {}

  Status Open(ExecContext& ctx) override {
    ++stats_->opens;
    const uint64_t t0 = MonotonicNanos();
    Status s = child_->Open(ctx);
    stats_->time_ns += MonotonicNanos() - t0;
    return s;
  }

  Result<bool> Next(ExecContext& ctx) override {
    const uint64_t t0 = MonotonicNanos();
    Result<bool> r = child_->Next(ctx);
    stats_->time_ns += MonotonicNanos() - t0;
    if (r.ok() && r.value()) ++stats_->rows;
    return r;
  }

 private:
  std::unique_ptr<ExecNode> child_;
  OpStats* stats_;
};

std::unique_ptr<ExecNode> MakeAccessNode(const PlannedCore& core, size_t k,
                                         std::vector<const Value*>* slots,
                                         OpStats* stats) {
  std::unique_ptr<ExecNode> node;
  if (core.paths[k].kind == AccessPath::Kind::kScan) {
    node = std::make_unique<ScanNode>(&core.relations[k], k, slots);
  } else {
    node = std::make_unique<IndexProbeNode>(&core.relations[k], &core.paths[k],
                                            k, slots);
  }
  if (!core.filters[k].empty()) {
    node = std::make_unique<FilterNode>(std::move(node), &core.filters[k],
                                        slots);
  }
  if (stats != nullptr) {
    node = std::make_unique<TimedNode>(std::move(node), stats);
  }
  return node;
}

}  // namespace

std::unique_ptr<ExecNode> BuildCorePipeline(const PlannedCore& core,
                                            std::vector<const Value*>* slots,
                                            AnalyzeStats::Core* core_stats) {
  auto rel_stats = [core_stats](size_t k) -> OpStats* {
    return core_stats != nullptr && k < core_stats->rels.size()
               ? &core_stats->rels[k]
               : nullptr;
  };
  if (core.relations.empty()) {
    std::unique_ptr<ExecNode> node = std::make_unique<OneRowNode>();
    if (!core.const_filters.empty()) {
      node = std::make_unique<FilterNode>(std::move(node), &core.const_filters,
                                          slots);
    }
    return node;
  }
  std::unique_ptr<ExecNode> node = MakeAccessNode(core, 0, slots,
                                                  rel_stats(0));
  for (size_t k = 1; k < core.relations.size(); ++k) {
    node = std::make_unique<NestedLoopJoinNode>(
        std::move(node), MakeAccessNode(core, k, slots, rel_stats(k)));
  }
  return node;
}

// ---------------------------------------------------------------------------
// Core / statement execution

namespace {

/// Charges materialized result/CTE rows to mem.query_scratch for the
/// duration of one ExecutePlannedSelect (released wholesale on scope exit).
/// Charges are batched so the accountant's atomics are touched once per
/// ~16 KiB of growth, not once per row.
class ScratchCharge {
 public:
  explicit ScratchCharge(MemoryAccountant* mem) : mem_(mem) {}
  ~ScratchCharge() {
    if (mem_ != nullptr && charged_ != 0) {
      mem_->Release(MemoryAccountant::kQueryScratch, charged_);
    }
  }
  void AddRow(size_t columns) {
    if (mem_ == nullptr) return;
    pending_ += columns * sizeof(Value) + sizeof(Row);
    if (pending_ >= 16 * 1024) Flush();
  }
  void Flush() {
    if (mem_ == nullptr || pending_ == 0) return;
    mem_->Charge(MemoryAccountant::kQueryScratch, pending_);
    charged_ += pending_;
    pending_ = 0;
  }

 private:
  MemoryAccountant* mem_;
  size_t pending_ = 0;
  size_t charged_ = 0;
};

Result<ResultSet> ExecutePlannedCore(const PlannedCore& core,
                                     ExecContext& ctx, ScratchCharge* scratch,
                                     AnalyzeStats::Core* cs = nullptr) {
  std::vector<const Value*> slots(core.relations.size(), nullptr);
  std::unique_ptr<ExecNode> root = BuildCorePipeline(core, &slots, cs);
  XUPD_RETURN_IF_ERROR(root->Open(ctx));

  ResultSet out;
  out.columns = core.out_columns;

  if (core.has_aggregate) {
    struct Accumulator {
      int64_t count = 0;
      Value acc;
    };
    std::vector<Accumulator> accs(core.outputs.size());
    while (true) {
      XUPD_ASSIGN_OR_RETURN(bool more, root->Next(ctx));
      if (!more) break;
      for (size_t i = 0; i < core.outputs.size(); ++i) {
        const BoundExpr& e = core.outputs[i];
        Value v =
            e.count_star ? Value::Int(1) : slots[e.rel][e.col];
        if (v.is_null()) continue;
        Accumulator& a = accs[i];
        ++a.count;
        switch (e.agg) {
          case Expr::Agg::kCount:
            break;
          case Expr::Agg::kMin:
            if (a.acc.is_null() || v.Compare(a.acc) < 0) a.acc = v;
            break;
          case Expr::Agg::kMax:
            if (a.acc.is_null() || v.Compare(a.acc) > 0) a.acc = v;
            break;
          case Expr::Agg::kSum: {
            XUPD_ASSIGN_OR_RETURN(Value vi,
                                  CoerceValue(v, ColumnType::kInteger));
            a.acc = Value::Int((a.acc.is_null() ? 0 : a.acc.AsInt()) +
                               vi.AsInt());
            break;
          }
        }
      }
    }
    Row row;
    row.reserve(core.outputs.size());
    for (size_t i = 0; i < core.outputs.size(); ++i) {
      if (core.outputs[i].agg == Expr::Agg::kCount) {
        row.push_back(Value::Int(accs[i].count));
      } else {
        row.push_back(accs[i].acc);
      }
    }
    out.rows.push_back(std::move(row));
    return out;
  }

  while (true) {
    XUPD_ASSIGN_OR_RETURN(bool more, root->Next(ctx));
    if (!more) break;
    Row row;
    row.reserve(core.outputs.size());
    for (const BoundExpr& e : core.outputs) {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(e, slots, ctx));
      row.push_back(std::move(v));
    }
    scratch->AddRow(row.size());
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace

Result<ResultSet> ExecutePlannedSelect(const PlannedSelect& plan,
                                       ExecContext& ctx) {
  // Sort / CTE / UNION materialization is this statement's scratch memory;
  // the hard budget fires at the next governance tick once it overruns.
  ScratchCharge scratch(ctx.mem);
  for (const PlannedSelect::Cte& cte : plan.ctes) {
    XUPD_ASSIGN_OR_RETURN(ResultSet result,
                          ExecutePlannedSelect(*cte.query, ctx));
    auto mat = std::make_unique<ResultSet>(std::move(result));
    mat->columns = cte.columns;
    for (const Row& row : mat->rows) scratch.AddRow(row.size());
    scratch.Flush();
    (*ctx.cte_values)[static_cast<size_t>(cte.slot)] = std::move(mat);
  }

  // EXPLAIN ANALYZE instruments only the root select (compared by identity)
  // so CTE bodies and IN-subqueries recursing through here stay plain.
  AnalyzeStats* an =
      ctx.analyze != nullptr &&
              ctx.analyze_select == static_cast<const void*>(&plan)
          ? ctx.analyze
          : nullptr;

  ResultSet out;
  for (size_t i = 0; i < plan.cores.size(); ++i) {
    AnalyzeStats::Core* cs =
        an != nullptr && i < an->cores.size() ? &an->cores[i] : nullptr;
    const uint64_t t0 = cs != nullptr ? MonotonicNanos() : 0;
    XUPD_ASSIGN_OR_RETURN(ResultSet core,
                          ExecutePlannedCore(plan.cores[i], ctx, &scratch, cs));
    scratch.Flush();
    if (cs != nullptr) {
      ++cs->total.opens;
      cs->total.time_ns += MonotonicNanos() - t0;
      cs->total.rows += core.rows.size();
    }
    if (i == 0) {
      out = std::move(core);
    } else {
      for (Row& row : core.rows) out.rows.push_back(std::move(row));
    }
  }

  if (!plan.order_by.empty()) {
    std::stable_sort(out.rows.begin(), out.rows.end(),
                     [&plan](const Row& a, const Row& b) {
                       for (const auto& [col, desc] : plan.order_by) {
                         int cmp = a[static_cast<size_t>(col)].Compare(
                             b[static_cast<size_t>(col)]);
                         if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
  }
  return out;
}

Result<std::vector<size_t>> CollectMatchingRowids(const PlannedMutation& m,
                                                  ExecContext& ctx) {
  // EXPLAIN ANALYZE: the whole collection (index gather or scan plus
  // residual filters, including any IN-subquery evaluation) is the
  // mutation's access step.
  struct MutationTimer {
    OpStats* os;
    uint64_t t0;
    explicit MutationTimer(AnalyzeStats* an)
        : os(an != nullptr ? &an->mutation : nullptr),
          t0(os != nullptr ? MonotonicNanos() : 0) {}
    ~MutationTimer() {
      if (os != nullptr) {
        ++os->opens;
        os->time_ns += MonotonicNanos() - t0;
      }
    }
  } timer(ctx.analyze);

  std::vector<size_t> out;
  std::vector<const Value*> slots(1, nullptr);

  auto matches = [&](size_t rowid) -> Result<bool> {
    slots[0] = m.table->row(rowid);
    for (const BoundExpr& f : m.filters) {
      XUPD_ASSIGN_OR_RETURN(bool ok, EvalBoolBound(f, slots, ctx));
      if (!ok) return false;
    }
    return true;
  };

  if (m.path.kind == AccessPath::Kind::kScan) {
    ++m.table->access_stats().scans;
    for (size_t rowid = 0; rowid < m.table->capacity(); ++rowid) {
      XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
      if (!m.table->is_live(rowid)) continue;
      ++ctx.stats->rows_scanned;
      ++m.table->access_stats().rows_read;
      XUPD_ASSIGN_OR_RETURN(bool ok, matches(rowid));
      if (ok) out.push_back(rowid);
    }
    if (timer.os != nullptr) timer.os->rows = out.size();
    return out;
  }

  std::vector<size_t> candidates;
  std::vector<const Value*> no_slots;
  XUPD_RETURN_IF_ERROR(GatherCandidates(m.path, no_slots, ctx, &candidates));
  SortUnique(&candidates);
  for (size_t rowid : candidates) {
    XUPD_RETURN_IF_ERROR(ctx.TickGovernance());
    if (!m.table->is_live(rowid)) continue;
    XUPD_ASSIGN_OR_RETURN(bool ok, matches(rowid));
    if (ok) out.push_back(rowid);
  }
  if (timer.os != nullptr) timer.os->rows = out.size();
  return out;
}

}  // namespace xupd::rdb
