// Deterministic pseudo-random generator (SplitMix64) used by the workload
// generators and benches so that every experiment is reproducible from a seed.
#ifndef XUPD_COMMON_RNG_H_
#define XUPD_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace xupd {

/// SplitMix64. Not cryptographic; chosen for speed and reproducibility across
/// platforms (unlike std::mt19937 distributions, results are stable).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Random lowercase ASCII string of length n.
  std::string RandomString(size_t n) {
    std::string s;
    s.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      s += static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace xupd

#endif  // XUPD_COMMON_RNG_H_
