// Figure 9: delete performance, random workload (10 random subtrees),
// fixed sf=100 fanout=4, depth 1..6.
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int max_depth = argc > 2 ? std::atoi(argv[2]) : 6;
  bench::PrintHeader(
      "Figure 9: delete, random workload (10 subtrees), sf=100 fanout=4",
      "depth");
  const DeleteStrategy methods[] = {
      DeleteStrategy::kAsr, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kCascade};
  for (int depth = 1; depth <= max_depth; ++depth) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = depth;
    spec.fanout = 4;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    std::vector<int64_t> picked;
    {
      auto scratch = bench::FreshStore(*gen, DeleteStrategy::kCascade,
                                       InsertStrategy::kTable);
      auto ids = scratch->SelectIds("n1", "");
      if (!ids.ok()) return 1;
      picked = bench::PickRandomIds(*ids, 10, 7);
    }
    for (DeleteStrategy method : methods) {
      double t = MeasureOnFreshStores(
          *gen, method, InsertStrategy::kTable,
          [&picked](engine::RelationalStore* store) {
            Status s = store->DeleteByIds("n1", picked);
            if (!s.ok()) std::abort();
          },
          {runs});
      bench::PrintPoint(ToString(method), depth, t);
    }
  }
  return 0;
}
