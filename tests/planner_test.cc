// Tests for the plan-based query execution layer: index selection (probe vs
// scan), join-conjunct pushdown, plan caching + invalidation on DDL, EXPLAIN
// output shape, and parity between probed and forced-scan execution on the
// fig. 6-11 workload query shapes (through the engine's update strategies).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/store.h"
#include "rdb/database.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xupd::rdb {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void Must(const std::string& sql) {
    Status s = db_.Execute(sql);
    ASSERT_TRUE(s.ok()) << sql << "\n  -> " << s;
  }
  ResultSet Query(const std::string& sql) {
    auto r = db_.ExecuteQuery(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }
  /// EXPLAIN output joined back into one string for substring assertions.
  std::string Explain(const std::string& sql) {
    ResultSet r = Query("EXPLAIN " + sql);
    std::string out;
    for (const Row& row : r.rows) {
      out += row[0].AsString();
      out += '\n';
    }
    return out;
  }

  void CreateEmpDept(bool indexed) {
    Must("CREATE TABLE Emp (id INTEGER, deptId INTEGER, name VARCHAR)");
    Must("CREATE TABLE Dept (id INTEGER, name VARCHAR)");
    if (indexed) {
      Must("CREATE INDEX emp_dept ON Emp (deptId)");
      Must("CREATE INDEX dept_id ON Dept (id)");
    }
    Must("INSERT INTO Dept VALUES (1, 'eng'), (2, 'ops'), (3, 'hr')");
    Must("INSERT INTO Emp VALUES (10, 1, 'ann'), (11, 1, 'bob'), "
         "(12, 2, 'cat'), (13, 3, 'dan')");
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Index selection: probe vs scan.

TEST_F(PlannerTest, PointQueryUsesIndexProbe) {
  CreateEmpDept(/*indexed=*/true);
  Stats before = db_.stats();
  ResultSet r = Query("SELECT name FROM Emp WHERE deptId = 1");
  EXPECT_EQ(r.rows.size(), 2u);
  Stats delta = db_.stats().Delta(before);
  EXPECT_GT(delta.index_probes, 0u);
  EXPECT_EQ(delta.rows_scanned, 0u);  // no scan of Emp
  EXPECT_NE(Explain("SELECT name FROM Emp WHERE deptId = 1")
                .find("IndexProbe Emp via emp_dept"),
            std::string::npos);
}

TEST_F(PlannerTest, UnindexedPredicateFallsBackToScan) {
  CreateEmpDept(/*indexed=*/false);
  Stats before = db_.stats();
  ResultSet r = Query("SELECT name FROM Emp WHERE deptId = 1");
  EXPECT_EQ(r.rows.size(), 2u);
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.index_probes, 0u);
  EXPECT_GT(delta.rows_scanned, 0u);
  std::string plan = Explain("SELECT name FROM Emp WHERE deptId = 1");
  EXPECT_NE(plan.find("Scan Emp"), std::string::npos);
  EXPECT_EQ(plan.find("IndexProbe"), std::string::npos);
}

TEST_F(PlannerTest, InListProbesTheIndexPerValue) {
  CreateEmpDept(/*indexed=*/true);
  Stats before = db_.stats();
  ResultSet r = Query("SELECT name FROM Emp WHERE deptId IN (1, 3)");
  EXPECT_EQ(r.rows.size(), 3u);
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.index_probes, 2u);  // one probe per IN value
  EXPECT_EQ(delta.rows_scanned, 0u);
}

TEST_F(PlannerTest, InSubqueryProbesTheIndex) {
  CreateEmpDept(/*indexed=*/true);
  Stats before = db_.stats();
  ResultSet r = Query(
      "SELECT name FROM Emp WHERE deptId IN (SELECT id FROM Dept "
      "WHERE name = 'eng')");
  EXPECT_EQ(r.rows.size(), 2u);
  Stats delta = db_.stats().Delta(before);
  EXPECT_GT(delta.index_probes, 0u);
  // Only the subquery's Dept scan touches rows; Emp is probed.
  EXPECT_EQ(delta.rows_scanned, 3u);
}

// ---------------------------------------------------------------------------
// Join-conjunct pushdown.

TEST_F(PlannerTest, JoinConjunctDrivesInnerIndexProbe) {
  CreateEmpDept(/*indexed=*/true);
  Stats before = db_.stats();
  ResultSet r = Query(
      "SELECT Emp.name, Dept.name FROM Emp, Dept "
      "WHERE Emp.deptId = Dept.id AND Emp.id = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "eng");
  Stats delta = db_.stats().Delta(before);
  // Emp is scanned (no index on Emp.id) but Dept is probed per Emp row —
  // never scanned — because the equi-join conjunct was pushed down.
  EXPECT_EQ(delta.rows_scanned, 4u);  // Emp only
  EXPECT_GT(delta.index_probes, 0u);
  std::string plan = Explain(
      "SELECT Emp.name, Dept.name FROM Emp, Dept "
      "WHERE Emp.deptId = Dept.id AND Emp.id = 10");
  EXPECT_NE(plan.find("NestedLoopJoin"), std::string::npos);
  EXPECT_NE(plan.find("IndexProbe Dept via dept_id"), std::string::npos);
}

TEST_F(PlannerTest, SingleRelationFilterIsAppliedBeforeTheJoin) {
  CreateEmpDept(/*indexed=*/false);
  Stats before = db_.stats();
  ResultSet r = Query(
      "SELECT Emp.name FROM Emp, Dept "
      "WHERE Emp.deptId = Dept.id AND Dept.name = 'hr'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "dan");
  // Emp (4 rows) scanned once; Dept (3 rows) rescanned per Emp row. Without
  // pushdown the cross product would join first and filter 12 tuples later;
  // the filter placement keeps the inner loop's emitted tuples at 4.
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.rows_scanned, 4u + 4u * 3u);
}

// ---------------------------------------------------------------------------
// Plan cache: reuse and invalidation.

TEST_F(PlannerTest, ExecuteBoundReusesThePlan) {
  CreateEmpDept(/*indexed=*/true);
  Stats before = db_.stats();
  for (int i = 0; i < 5; ++i) {
    auto r = db_.ExecuteQueryBound("SELECT name FROM Emp WHERE deptId = ?",
                                   {Value::Int(1)});
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->rows.size(), 2u);
  }
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.plans_built, 1u);
  EXPECT_EQ(delta.plan_cache_hits, 4u);
}

TEST_F(PlannerTest, CreateIndexInvalidatesCachedPlans) {
  CreateEmpDept(/*indexed=*/false);
  const char kSql[] = "SELECT name FROM Emp WHERE deptId = ?";
  ASSERT_TRUE(db_.ExecuteQueryBound(kSql, {Value::Int(1)}).ok());
  Stats before = db_.stats();
  ASSERT_TRUE(db_.ExecuteQueryBound(kSql, {Value::Int(1)}).ok());
  EXPECT_EQ(db_.stats().Delta(before).plan_cache_hits, 1u);

  // The new index must be picked up: the cached scan plan is stale.
  Must("CREATE INDEX emp_dept ON Emp (deptId)");
  before = db_.stats();
  auto r = db_.ExecuteQueryBound(kSql, {Value::Int(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.plan_cache_hits, 0u);
  EXPECT_GE(delta.plans_built, 1u);
  EXPECT_GT(delta.index_probes, 0u);
  EXPECT_EQ(delta.rows_scanned, 0u);
}

TEST_F(PlannerTest, DropIndexInvalidatesCachedPlans) {
  CreateEmpDept(/*indexed=*/true);
  const char kSql[] = "SELECT name FROM Emp WHERE deptId = ?";
  ASSERT_TRUE(db_.ExecuteQueryBound(kSql, {Value::Int(1)}).ok());
  Must("DROP INDEX emp_dept");  // owning table resolved by catalog search
  Stats before = db_.stats();
  auto r = db_.ExecuteQueryBound(kSql, {Value::Int(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.plan_cache_hits, 0u);  // stale probe plan was rebuilt
  EXPECT_EQ(delta.index_probes, 0u);
  EXPECT_GT(delta.rows_scanned, 0u);
}

TEST_F(PlannerTest, DropTableInvalidatesCachedPlans) {
  CreateEmpDept(/*indexed=*/true);
  const char kSql[] = "SELECT name FROM Emp WHERE deptId = ?";
  ASSERT_TRUE(db_.ExecuteQueryBound(kSql, {Value::Int(1)}).ok());
  Must("DROP TABLE Emp");
  // The stale plan holds a dead Table*; the version check forces a re-plan,
  // which reports the missing table instead of dereferencing it.
  auto r = db_.ExecuteQueryBound(kSql, {Value::Int(1)});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // Recreating the table makes the same handle usable again.
  Must("CREATE TABLE Emp (id INTEGER, deptId INTEGER, name VARCHAR)");
  auto r2 = db_.ExecuteQueryBound(kSql, {Value::Int(1)});
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->rows.size(), 0u);
}

TEST_F(PlannerTest, DdlThroughEveryEntryPointInvalidatesPlans) {
  // Regression: DDL issued via ExecuteQuery (not just Execute /
  // ExecutePrepared) must version out cached plans — a stale plan holds the
  // dropped Table* and would otherwise be dereferenced after free.
  CreateEmpDept(/*indexed=*/true);
  const char kSql[] = "SELECT name FROM Emp WHERE deptId = ?";
  auto handle = db_.Prepare(kSql);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(db_.ExecuteQueryPrepared(handle.value(), {Value::Int(1)}).ok());
  ASSERT_TRUE(db_.ExecuteQuery("DROP TABLE Emp").ok());
  auto r = db_.ExecuteQueryPrepared(handle.value(), {Value::Int(1)});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(PlannerTest, PreparedExplainReusesThePlan) {
  CreateEmpDept(/*indexed=*/true);
  Stats before = db_.stats();
  for (int i = 0; i < 3; ++i) {
    auto r = db_.ExecuteQueryBound("EXPLAIN SELECT name FROM Emp WHERE "
                                   "deptId = ?",
                                   {Value::Int(1)});
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r->rows.empty());
  }
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.plans_built, 1u);
  EXPECT_EQ(delta.plan_cache_hits, 2u);
}

// ---------------------------------------------------------------------------
// Per-table plan dependencies: DropTableDirect bumps only the dropped
// table's version, so §6.2.2-style staging churn leaves unrelated cached
// plans hot while plans over the dropped table still re-plan (never
// dereference a dead Table*).

TEST_F(PlannerTest, DirectDropKeepsUnrelatedCachedPlansHot) {
  CreateEmpDept(/*indexed=*/true);
  const char kSql[] = "SELECT name FROM Emp WHERE deptId = ?";
  ASSERT_TRUE(db_.ExecuteQueryBound(kSql, {Value::Int(1)}).ok());
  // Staging-table churn: create and drop scratch tables through the direct
  // catalog API, like the table-insert strategy does per operation.
  for (int i = 0; i < 3; ++i) {
    auto t = db_.CreateTableDirect(
        TableSchema("tmp_stage", {{"id", ColumnType::kInteger}}));
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_.DropTableDirect("tmp_stage").ok());
  }
  Stats before = db_.stats();
  ASSERT_TRUE(db_.ExecuteQueryBound(kSql, {Value::Int(1)}).ok());
  Stats delta = db_.stats().Delta(before);
  // The Emp plan never referenced tmp_stage: zero re-plans.
  EXPECT_EQ(delta.plans_built, 0u);
  EXPECT_EQ(delta.plan_cache_hits, 1u);
}

TEST_F(PlannerTest, DirectDropInvalidatesPlansOverTheDroppedTable) {
  CreateEmpDept(/*indexed=*/true);
  auto scratch = db_.CreateTableDirect(
      TableSchema("stage", {{"id", ColumnType::kInteger}}));
  ASSERT_TRUE(scratch.ok());
  const char kSql[] = "SELECT id FROM stage";
  ASSERT_TRUE(db_.ExecuteQueryBound(kSql, {}).ok());
  ASSERT_TRUE(db_.DropTableDirect("stage").ok());
  // The cached plan holds the dead Table*; its per-table dependency forces
  // a re-plan, which reports the missing table instead of dereferencing.
  auto r = db_.ExecuteQueryBound(kSql, {});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // Recreating the name makes the same statement text usable again (the
  // version counter survives the drop).
  auto again = db_.CreateTableDirect(
      TableSchema("stage", {{"id", ColumnType::kInteger}}));
  ASSERT_TRUE(again.ok());
  auto r2 = db_.ExecuteQueryBound(kSql, {});
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->rows.size(), 0u);
}

TEST_F(PlannerTest, DirectDropInvalidatesPlansThatJoinTheDroppedTable) {
  // The dependency set must cover every relation a plan touches, not just
  // the leading one — joins, IN-subqueries and CTEs included.
  CreateEmpDept(/*indexed=*/true);
  auto scratch = db_.CreateTableDirect(
      TableSchema("ids", {{"id", ColumnType::kInteger}}));
  ASSERT_TRUE(scratch.ok());
  ASSERT_TRUE(db_.InsertDirect(scratch.value(), {Value::Int(1)}).ok());
  const char kJoin[] =
      "SELECT name FROM Emp WHERE deptId IN (SELECT id FROM ids)";
  auto r1 = db_.ExecuteQueryBound(kJoin, {});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->rows.size(), 2u);
  ASSERT_TRUE(db_.DropTableDirect("ids").ok());
  auto r2 = db_.ExecuteQueryBound(kJoin, {});
  EXPECT_EQ(r2.status().code(), StatusCode::kNotFound);
}

TEST_F(PlannerTest, TableInsertStagingChurnDoesNotEvictEnginePlans) {
  // Engine-level version of the property: two consecutive table-strategy
  // copies. The second operation's statements re-plan only what touched the
  // re-created tmp_ staging tables; the per-id DELETE probe cached before
  // the churn stays hot.
  auto dtd = testing::MustParseDtd(testing::kCustomerDtd);
  auto doc = testing::MustParse(testing::kCustomerXml);
  engine::RelationalStore::Options options;
  options.delete_strategy = engine::DeleteStrategy::kPerTupleTrigger;
  options.insert_strategy = engine::InsertStrategy::kTable;
  auto store = engine::RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Load(*doc).ok());
  Database* db = store.value()->db();
  const char kProbe[] = "SELECT id FROM Customer WHERE id = ?";
  ASSERT_TRUE(db->ExecuteQueryBound(kProbe, {Value::Int(1)}).ok());
  auto ids = store.value()->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(ids.ok());
  ASSERT_FALSE(ids->empty());
  ASSERT_TRUE(store.value()
                  ->CopySubtree("Customer", ids->front(), store.value()->root_id())
                  .ok());
  Stats before = db->stats();
  ASSERT_TRUE(db->ExecuteQueryBound(kProbe, {Value::Int(1)}).ok());
  Stats delta = db->stats().Delta(before);
  EXPECT_EQ(delta.plans_built, 0u);  // staging churn did not evict it
  EXPECT_EQ(delta.plan_cache_hits, 1u);
}

TEST_F(PlannerTest, TriggerBodyPlansAreCachedAcrossRows) {
  Must("CREATE TABLE parent (id INTEGER)");
  Must("CREATE TABLE child (id INTEGER, parentId INTEGER)");
  Must("CREATE INDEX child_pid ON child (parentId)");
  Must("CREATE TRIGGER cascade_del AFTER DELETE ON parent FOR EACH ROW "
       "BEGIN DELETE FROM child WHERE parentId = OLD.id; END");
  Must("INSERT INTO parent VALUES (1), (2), (3), (4)");
  Must("INSERT INTO child VALUES (10, 1), (11, 2), (12, 3), (13, 4)");
  Stats before = db_.stats();
  Must("DELETE FROM parent");
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.trigger_firings, 4u);
  // One plan for the DELETE itself + one for the body; the body's remaining
  // three firings reuse the cached plan.
  EXPECT_EQ(delta.plans_built, 2u);
  EXPECT_EQ(delta.plan_cache_hits, 3u);
  ResultSet r = Query("SELECT COUNT(*) FROM child");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// EXPLAIN output shape.

TEST_F(PlannerTest, ExplainSelectShowsProjectAndAccessPath) {
  CreateEmpDept(/*indexed=*/true);
  std::string plan = Explain("SELECT name FROM Emp WHERE deptId = 1");
  EXPECT_NE(plan.find("Project [name]"), std::string::npos);
  EXPECT_NE(plan.find("IndexProbe Emp via emp_dept (deptId = 1)"),
            std::string::npos);
}

TEST_F(PlannerTest, ExplainShowsSortUnionAndAggregate) {
  CreateEmpDept(/*indexed=*/false);
  std::string plan = Explain(
      "SELECT id FROM Emp UNION ALL SELECT id FROM Dept ORDER BY id DESC");
  EXPECT_NE(plan.find("Sort [id DESC]"), std::string::npos);
  EXPECT_NE(plan.find("UnionAll"), std::string::npos);
  std::string agg = Explain("SELECT COUNT(*), MIN(id) FROM Emp");
  EXPECT_NE(agg.find("Aggregate [COUNT(*), MIN(id)]"), std::string::npos);
}

TEST_F(PlannerTest, ExplainDeleteAndUpdateShowTargetAndPath) {
  CreateEmpDept(/*indexed=*/true);
  std::string del = Explain("DELETE FROM Emp WHERE deptId = 2");
  EXPECT_NE(del.find("Delete Emp"), std::string::npos);
  EXPECT_NE(del.find("IndexProbe Emp via emp_dept"), std::string::npos);
  std::string upd = Explain("UPDATE Emp SET name = 'x' WHERE id = 10");
  EXPECT_NE(upd.find("Update Emp [set name]"), std::string::npos);
  EXPECT_NE(upd.find("Scan Emp (filter: (id = 10))"), std::string::npos);
}

TEST_F(PlannerTest, ExplainDoesNotExecute) {
  CreateEmpDept(/*indexed=*/false);
  ASSERT_TRUE(db_.Execute("EXPLAIN DELETE FROM Emp").ok());
  ResultSet r = Query("SELECT COUNT(*) FROM Emp");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
}

TEST_F(PlannerTest, ExplainRejectsNonPlannableStatements) {
  EXPECT_EQ(db_.Execute("EXPLAIN BEGIN").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.Execute("EXPLAIN CREATE TABLE t (a INTEGER)").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, ExplainErrorsOnUnknownNames) {
  EXPECT_EQ(db_.ExecuteQuery("EXPLAIN SELECT * FROM nope").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Planner name-resolution errors surface even on empty tables (the seed
// interpreter validated up front; the planner must too).

TEST_F(PlannerTest, UnknownColumnsFailOnEmptyTables) {
  Must("CREATE TABLE t (a INTEGER)");
  EXPECT_EQ(db_.ExecuteQuery("SELECT nope FROM t").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.ExecuteQuery("SELECT a FROM t WHERE nope = 1").status().code(),
            StatusCode::kNotFound);
  Must("CREATE TABLE u (a INTEGER)");
  EXPECT_EQ(
      db_.ExecuteQuery("SELECT a FROM t, u").status().code(),
      StatusCode::kInvalidArgument);  // ambiguous
}

// ---------------------------------------------------------------------------
// Parity: probed and forced-scan execution return identical results on the
// workload query shapes (point/join/IN-subquery/aggregate/outer-union).

class ParityTest : public PlannerTest {
 protected:
  /// Customer/Order/OrderLine fixture: 8 customers x 3 orders x 2 lines.
  static void LoadParityData(Database* db, bool indexed) {
    auto must = [db](const std::string& sql) {
      Status s = db->Execute(sql);
      ASSERT_TRUE(s.ok()) << sql << "\n  -> " << s;
    };
    must("CREATE TABLE CustDB (id INTEGER)");
    must("CREATE TABLE Customer (id INTEGER, parentId INTEGER, "
         "Name VARCHAR, City VARCHAR)");
    must("CREATE TABLE Ord (id INTEGER, parentId INTEGER, Status VARCHAR)");
    must("CREATE TABLE OrderLine (id INTEGER, parentId INTEGER, "
         "ItemName VARCHAR, Qty INTEGER)");
    if (indexed) {
      for (const char* idx :
           {"cust_id ON Customer (id)", "cust_pid ON Customer (parentId)",
            "ord_id ON Ord (id)", "ord_pid ON Ord (parentId)",
            "ol_id ON OrderLine (id)", "ol_pid ON OrderLine (parentId)"}) {
        must(std::string("CREATE INDEX ") + idx);
      }
    }
    must("INSERT INTO CustDB VALUES (1)");
    for (int c = 0; c < 8; ++c) {
      int cid = 100 + c;
      must("INSERT INTO Customer VALUES (" + std::to_string(cid) + ", 1, "
           "'cust" + std::to_string(c % 3) + "', 'city" +
           std::to_string(c % 2) + "')");
      for (int o = 0; o < 3; ++o) {
        int oid = 1000 + c * 10 + o;
        must("INSERT INTO Ord VALUES (" + std::to_string(oid) + ", " +
             std::to_string(cid) + ", 'st" + std::to_string(o) + "')");
        for (int l = 0; l < 2; ++l) {
          must("INSERT INTO OrderLine VALUES (" +
               std::to_string(10000 + oid * 10 + l) + ", " +
               std::to_string(oid) + ", 'item" + std::to_string(l) + "', " +
               std::to_string(l + c) + ")");
        }
      }
    }
  }

  void SetUp() override { LoadParityData(&db_, /*indexed=*/true); }

  /// Runs `sql` with index probes on and off and asserts identical results.
  void ExpectParity(const std::string& sql) {
    db_.set_planner_index_probes_enabled(true);
    auto probed = db_.ExecuteQuery(sql);
    ASSERT_TRUE(probed.ok()) << sql << "\n  -> " << probed.status();
    db_.set_planner_index_probes_enabled(false);
    auto scanned = db_.ExecuteQuery(sql);
    ASSERT_TRUE(scanned.ok()) << sql << "\n  -> " << scanned.status();
    db_.set_planner_index_probes_enabled(true);
    EXPECT_EQ(probed->columns, scanned->columns) << sql;
    // Row order can legitimately differ between access paths (hash-set
    // iteration vs scan order); compare as sorted multisets.
    auto normalize = [](const ResultSet& r) {
      std::vector<std::string> rows;
      for (const Row& row : r.rows) {
        std::string s;
        for (const Value& v : row) s += v.ToSqlLiteral() + "|";
        rows.push_back(std::move(s));
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    EXPECT_EQ(normalize(*probed), normalize(*scanned)) << sql;
  }
};

TEST_F(ParityTest, WorkloadQueryShapesMatch) {
  // Point and range predicates (fig. 6/8 subtree-root selection).
  ExpectParity("SELECT id FROM Customer WHERE Name = 'cust1'");
  ExpectParity("SELECT id FROM Ord WHERE parentId = 103");
  ExpectParity("SELECT id FROM OrderLine WHERE Qty > 3");
  // Parent/child join chains (§7.2 path queries).
  ExpectParity(
      "SELECT OrderLine.id FROM Customer, Ord, OrderLine "
      "WHERE Ord.parentId = Customer.id AND OrderLine.parentId = Ord.id "
      "AND Customer.Name = 'cust0'");
  // IN-subquery semijoins (the translator's xupd_idlist shape).
  ExpectParity(
      "SELECT id FROM Ord WHERE parentId IN "
      "(SELECT id FROM Customer WHERE City = 'city1')");
  // Aggregates over joins (fig. 7/9 bookkeeping queries).
  ExpectParity(
      "SELECT COUNT(*), MIN(OrderLine.id), MAX(OrderLine.Qty) "
      "FROM Ord, OrderLine WHERE OrderLine.parentId = Ord.id");
  // Outer-union style UNION ALL + ORDER BY (§5.2 sorted outer union).
  ExpectParity(
      "SELECT id, parentId FROM Ord WHERE parentId = 101 UNION ALL "
      "SELECT id, parentId FROM OrderLine WHERE parentId = 1010 "
      "ORDER BY id");
  // CTE staging (the compound-select machinery).
  ExpectParity(
      "WITH eng (cid) AS (SELECT id FROM Customer WHERE Name = 'cust2') "
      "SELECT Ord.id FROM Ord, eng WHERE Ord.parentId = eng.cid "
      "ORDER BY id DESC");
}

TEST_F(ParityTest, MutationsMatchUnderBothAccessPaths) {
  // Apply the same delete+update sequence on probed and scanned plans and
  // compare the full surviving contents.
  auto run_sequence = [&](Database* db) {
    ASSERT_TRUE(db->Execute("DELETE FROM OrderLine WHERE parentId IN "
                            "(SELECT id FROM Ord WHERE Status = 'st1')")
                    .ok());
    ASSERT_TRUE(db->Execute("UPDATE Ord SET Status = 'gone' "
                            "WHERE id IN (SELECT parentId FROM OrderLine "
                            "WHERE Qty = 4)")
                    .ok());
    ASSERT_TRUE(
        db->Execute("DELETE FROM Customer WHERE Name = 'cust0'").ok());
  };
  auto dump = [&](Database* db) {
    std::vector<std::string> rows;
    for (const char* sql :
         {"SELECT * FROM Customer", "SELECT * FROM Ord",
          "SELECT * FROM OrderLine"}) {
      auto r = db->ExecuteQuery(sql);
      EXPECT_TRUE(r.ok()) << r.status();
      for (const Row& row : r->rows) {
        std::string s;
        for (const Value& v : row) s += v.ToSqlLiteral() + "|";
        rows.push_back(std::move(s));
      }
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  db_.set_planner_index_probes_enabled(true);
  run_sequence(&db_);
  auto probed = dump(&db_);

  // Fresh database, same schema + data (no indexes), scans forced.
  Database scan_db;
  LoadParityData(&scan_db, /*indexed=*/false);
  scan_db.set_planner_index_probes_enabled(false);
  run_sequence(&scan_db);
  auto scanned = dump(&scan_db);
  EXPECT_EQ(probed, scanned);
}

// ---------------------------------------------------------------------------
// Engine-level: the fig. 6 bulk-delete workload runs fully planned, and the
// engine's hot paths (store/translator) reuse cached plans.

TEST(PlannerEngineTest, EngineWorkloadReconstructsIdenticallyUnderForcedScans) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  engine::RelationalStore::Options options;
  options.delete_strategy = engine::DeleteStrategy::kPerTupleTrigger;

  std::string probed_xml, scanned_xml;
  for (bool probes : {true, false}) {
    auto store = engine::RelationalStore::Create(dtd, options);
    ASSERT_TRUE(store.ok()) << store.status();
    auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
    ASSERT_TRUE(store.value()->Load(*doc).ok());
    store.value()->db()->set_planner_index_probes_enabled(probes);
    ASSERT_TRUE(store.value()->DeleteWhere("Customer", "Name = 'John'").ok());
    ASSERT_TRUE(store.value()
                    ->ExecuteXQueryUpdate(R"(
      FOR $d IN document("custdb.xml"), $c IN $d/Customer[Name="Mary"]
      UPDATE $d { DELETE $c })")
                    .ok());
    auto rebuilt = store.value()->Reconstruct();
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
    (probes ? probed_xml : scanned_xml) = xml::Serialize(*rebuilt.value());
  }
  EXPECT_EQ(probed_xml, scanned_xml);
}

TEST(PlannerEngineTest, EngineUpdatePathsHitThePlanCache) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  engine::RelationalStore::Options options;
  options.delete_strategy = engine::DeleteStrategy::kPerTupleTrigger;
  auto store = engine::RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store.ok()) << store.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  ASSERT_TRUE(store.value()->Load(*doc).ok());

  // The bulk delete cascades through per-row triggers: after the first row,
  // every body statement runs on a cached plan, so the engine's hottest
  // delete path executes fully planned with reuse.
  uint64_t before = store.value()->stats().plan_cache_hits;
  ASSERT_TRUE(store.value()->DeleteWhere("Customer", "").ok());
  EXPECT_GT(store.value()->stats().plan_cache_hits, before);
}

// ---------------------------------------------------------------------------
// Savepoint SQL surface (mapped onto nested transaction scopes).

class SavepointTest : public PlannerTest {
 protected:
  void SetUp() override {
    Must("CREATE TABLE t (id INTEGER, v VARCHAR)");
    Must("CREATE INDEX t_id ON t (id)");
    Must("INSERT INTO t VALUES (1, 'a'), (2, 'b')");
  }
  int64_t CountRows() {
    ResultSet r = Query("SELECT COUNT(*) FROM t");
    return r.rows[0][0].AsInt();
  }
};

TEST_F(SavepointTest, RollbackToUndoesOnlyThePostSavepointWrites) {
  Must("BEGIN");
  Must("INSERT INTO t VALUES (3, 'c')");
  Must("SAVEPOINT sp1");
  Must("INSERT INTO t VALUES (4, 'd')");
  Must("UPDATE t SET v = 'z' WHERE id = 1");
  EXPECT_EQ(CountRows(), 4);
  Must("ROLLBACK TO sp1");
  EXPECT_EQ(CountRows(), 3);  // (4,'d') undone, (3,'c') kept
  ResultSet r = Query("SELECT v FROM t WHERE id = 1");
  EXPECT_EQ(r.rows[0][0].AsString(), "a");  // update undone
  // The savepoint survives ROLLBACK TO: it can be rolled back to again.
  Must("INSERT INTO t VALUES (5, 'e')");
  Must("ROLLBACK TO SAVEPOINT sp1");
  EXPECT_EQ(CountRows(), 3);
  // The savepoint is a nested scope: COMMIT merges it into the outer
  // transaction, which a second COMMIT then makes durable.
  Must("COMMIT");
  EXPECT_EQ(db_.transaction_depth(), 1u);
  Must("COMMIT");
  EXPECT_EQ(CountRows(), 3);
  EXPECT_FALSE(db_.in_transaction());
}

TEST_F(SavepointTest, ReleaseMergesIntoTheParentScope) {
  Must("BEGIN");
  Must("SAVEPOINT sp1");
  Must("INSERT INTO t VALUES (3, 'c')");
  Must("RELEASE sp1");
  EXPECT_EQ(db_.transaction_depth(), 1u);
  // The released writes roll back with the outer transaction.
  Must("ROLLBACK");
  EXPECT_EQ(CountRows(), 2);
}

TEST_F(SavepointTest, RollbackToDiscardsNestedSavepoints) {
  Must("BEGIN");
  Must("SAVEPOINT outer_sp");
  Must("INSERT INTO t VALUES (3, 'c')");
  Must("SAVEPOINT inner_sp");
  Must("INSERT INTO t VALUES (4, 'd')");
  Must("ROLLBACK TO outer_sp");
  EXPECT_EQ(CountRows(), 2);
  // inner_sp is gone with its enclosing rollback.
  EXPECT_EQ(db_.Execute("ROLLBACK TO inner_sp").code(),
            StatusCode::kInvalidArgument);
  Must("COMMIT");
}

TEST_F(SavepointTest, SavepointRequiresActiveTransaction) {
  EXPECT_EQ(db_.Execute("SAVEPOINT sp1").code(),
            StatusCode::kInvalidArgument);
  Must("BEGIN");
  EXPECT_EQ(db_.Execute("ROLLBACK TO nope").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.Execute("RELEASE nope").code(), StatusCode::kInvalidArgument);
  Must("COMMIT");
}

TEST_F(SavepointTest, SavepointNamesAreCaseInsensitive) {
  Must("BEGIN");
  Must("SAVEPOINT MySp");
  Must("INSERT INTO t VALUES (3, 'c')");
  Must("ROLLBACK TO mysp");
  EXPECT_EQ(CountRows(), 2);
  Must("RELEASE MYSP");
  Must("COMMIT");
}

// ---------------------------------------------------------------------------
// IN-list / IN-subquery probes at inner join steps: the probe values are
// row-free by construction, so the executor gathers the candidate set once
// per execution and replays it for every outer row.

TEST_F(PlannerTest, InnerJoinStepUsesInListProbe) {
  CreateEmpDept(/*indexed=*/true);
  std::string plan = Explain(
      "SELECT Emp.name FROM Dept, Emp "
      "WHERE Emp.deptId IN (1, 2) AND Dept.id = 1");
  // The IN conjunct binds only Emp (the inner relation) and must drive an
  // index probe there, not a per-outer-row scan.
  EXPECT_NE(plan.find("IndexProbe Emp via emp_dept (Emp.deptId IN [2 values])"),
            std::string::npos)
      << plan;

  Stats before = db_.stats();
  ResultSet r = Query(
      "SELECT Emp.name FROM Dept, Emp "
      "WHERE Emp.deptId IN (1, 2) AND Dept.id = 1 ORDER BY name");
  ASSERT_EQ(r.rows.size(), 3u);  // ann, bob (dept 1) + cat (dept 2)
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.rows_scanned, 0u);  // both steps probe, nothing scans
  // One gather for the single qualifying outer row; re-Opens replay it.
  EXPECT_GT(delta.index_probes, 0u);
}

TEST_F(PlannerTest, InnerJoinStepUsesInSubqueryProbe) {
  CreateEmpDept(/*indexed=*/true);
  std::string plan = Explain(
      "SELECT Emp.name FROM Dept, Emp "
      "WHERE Emp.deptId IN (SELECT id FROM Dept WHERE name = 'eng')");
  EXPECT_NE(plan.find("IndexProbe Emp via emp_dept (Emp.deptId IN (subquery))"),
            std::string::npos)
      << plan;
  // Parity with the forced-scan plan on the same query.
  ResultSet probed = Query(
      "SELECT Emp.name FROM Dept, Emp WHERE Emp.deptId IN "
      "(SELECT id FROM Dept WHERE name = 'eng') ORDER BY name");
  db_.set_planner_index_probes_enabled(false);
  ResultSet scanned = Query(
      "SELECT Emp.name FROM Dept, Emp WHERE Emp.deptId IN "
      "(SELECT id FROM Dept WHERE name = 'eng') ORDER BY name");
  db_.set_planner_index_probes_enabled(true);
  ASSERT_EQ(probed.rows.size(), scanned.rows.size());
  for (size_t i = 0; i < probed.rows.size(); ++i) {
    EXPECT_EQ(probed.rows[i][0].AsString(), scanned.rows[i][0].AsString());
  }
  // 3 Dept outer rows x 2 eng Emps each.
  EXPECT_EQ(probed.rows.size(), 6u);
}

TEST_F(PlannerTest, InnerInProbeGathersOncePerExecution) {
  CreateEmpDept(/*indexed=*/true);
  Stats before = db_.stats();
  ResultSet r = Query(
      "SELECT Emp.name FROM Dept, Emp WHERE Emp.deptId IN (1, 2)");
  EXPECT_EQ(r.rows.size(), 9u);  // 3 Dept rows x 3 matching Emps
  Stats delta = db_.stats().Delta(before);
  // One Lookup per IN value, once — NOT once per outer Dept row.
  EXPECT_EQ(delta.index_probes, 2u);
}

}  // namespace
}  // namespace xupd::rdb
