// Execution statistics — the observable cost model of the engine. Tests and
// benches assert on these (e.g. tuple-based insert issues O(#tuples)
// statements; per-statement triggers scan whole child relations).
#ifndef XUPD_RDB_STATS_H_
#define XUPD_RDB_STATS_H_

#include <cstdint>
#include <string>

namespace xupd::rdb {

struct Stats {
  /// SQL statements issued through Database::Execute / ExecuteQuery.
  uint64_t statements = 0;
  /// Statements executed inside trigger bodies.
  uint64_t trigger_statements = 0;
  /// Trigger firings (row triggers: per row; statement triggers: per stmt).
  uint64_t trigger_firings = 0;
  /// Rows visited by table scans.
  uint64_t rows_scanned = 0;
  /// Index probes (hash lookups).
  uint64_t index_probes = 0;
  uint64_t rows_inserted = 0;
  uint64_t rows_deleted = 0;
  uint64_t rows_updated = 0;

  void Reset() { *this = Stats{}; }

  Stats Delta(const Stats& earlier) const {
    Stats d;
    d.statements = statements - earlier.statements;
    d.trigger_statements = trigger_statements - earlier.trigger_statements;
    d.trigger_firings = trigger_firings - earlier.trigger_firings;
    d.rows_scanned = rows_scanned - earlier.rows_scanned;
    d.index_probes = index_probes - earlier.index_probes;
    d.rows_inserted = rows_inserted - earlier.rows_inserted;
    d.rows_deleted = rows_deleted - earlier.rows_deleted;
    d.rows_updated = rows_updated - earlier.rows_updated;
    return d;
  }

  std::string ToString() const {
    return "stmts=" + std::to_string(statements) +
           " trig_stmts=" + std::to_string(trigger_statements) +
           " trig_fires=" + std::to_string(trigger_firings) +
           " scanned=" + std::to_string(rows_scanned) +
           " probes=" + std::to_string(index_probes) +
           " ins=" + std::to_string(rows_inserted) +
           " del=" + std::to_string(rows_deleted) +
           " upd=" + std::to_string(rows_updated);
  }
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_STATS_H_
