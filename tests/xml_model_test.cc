// Unit tests for the XML data model (src/xml/node.h, document.h).
#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/node.h"
#include "xml/serializer.h"

namespace xupd::xml {
namespace {

TEST(ElementTest, InsertAttributeFailsOnDuplicate) {
  Element e("paper");
  ASSERT_TRUE(e.InsertAttribute("category", "spectral").ok());
  Status s = e.InsertAttribute("category", "other");
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  ASSERT_NE(e.FindAttribute("category"), nullptr);
  EXPECT_EQ(e.FindAttribute("category")->value, "spectral");
}

TEST(ElementTest, RemoveAttribute) {
  Element e("paper");
  e.SetAttribute("category", "spectral");
  EXPECT_TRUE(e.RemoveAttribute("category").ok());
  EXPECT_EQ(e.FindAttribute("category"), nullptr);
  EXPECT_EQ(e.RemoveAttribute("category").code(), StatusCode::kNotFound);
}

TEST(ElementTest, RenameAttribute) {
  Element e("lab");
  e.SetAttribute("city", "Seattle");
  ASSERT_TRUE(e.RenameAttribute("city", "town").ok());
  EXPECT_EQ(e.FindAttribute("city"), nullptr);
  ASSERT_NE(e.FindAttribute("town"), nullptr);
  EXPECT_EQ(e.FindAttribute("town")->value, "Seattle");
}

TEST(ElementTest, RenameAttributeToExistingFails) {
  Element e("lab");
  e.SetAttribute("a", "1");
  e.SetAttribute("b", "2");
  EXPECT_EQ(e.RenameAttribute("a", "b").code(), StatusCode::kAlreadyExists);
}

TEST(ElementTest, AppendRefCreatesAndExtends) {
  Element e("lab");
  e.AppendRef("managers", "smith1");
  e.AppendRef("managers", "jones1");
  const RefList* list = e.FindRefList("managers");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->targets, (std::vector<std::string>{"smith1", "jones1"}));
}

TEST(ElementTest, InsertRefAtFront) {
  Element e("lab");
  e.AppendRef("managers", "smith1");
  ASSERT_TRUE(e.InsertRefAt("managers", 0, "jones1").ok());
  EXPECT_EQ(e.FindRefList("managers")->targets,
            (std::vector<std::string>{"jones1", "smith1"}));
}

TEST(ElementTest, RemoveRefPreservesRemainder) {
  Element e("lab");
  e.AppendRef("managers", "a");
  e.AppendRef("managers", "b");
  e.AppendRef("managers", "c");
  ASSERT_TRUE(e.RemoveRefAt("managers", 1).ok());
  EXPECT_EQ(e.FindRefList("managers")->targets,
            (std::vector<std::string>{"a", "c"}));
}

TEST(ElementTest, RemoveLastRefDropsList) {
  Element e("lab");
  e.AppendRef("managers", "a");
  ASSERT_TRUE(e.RemoveRefAt("managers", 0).ok());
  EXPECT_EQ(e.FindRefList("managers"), nullptr);
}

TEST(ElementTest, RemoveRefOutOfRange) {
  Element e("lab");
  e.AppendRef("managers", "a");
  EXPECT_EQ(e.RemoveRefAt("managers", 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(e.RemoveRefAt("absent", 0).code(), StatusCode::kNotFound);
}

TEST(ElementTest, RenameRefListRenamesWholeList) {
  Element e("lab");
  e.AppendRef("managers", "a");
  e.AppendRef("managers", "b");
  ASSERT_TRUE(e.RenameRefList("managers", "bosses").ok());
  EXPECT_EQ(e.FindRefList("managers"), nullptr);
  EXPECT_EQ(e.FindRefList("bosses")->targets,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ElementTest, ChildInsertRemoveOrder) {
  Element e("db");
  e.AppendSimpleChild("a", "1");
  e.AppendSimpleChild("c", "3");
  auto b = std::make_unique<Element>("b");
  ASSERT_TRUE(e.InsertChildAt(1, std::move(b)).ok());
  ASSERT_EQ(e.child_count(), 3u);
  EXPECT_EQ(static_cast<Element*>(e.child(0))->name(), "a");
  EXPECT_EQ(static_cast<Element*>(e.child(1))->name(), "b");
  EXPECT_EQ(static_cast<Element*>(e.child(2))->name(), "c");
  auto removed = e.RemoveChildAt(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(static_cast<Element*>(removed.value().get())->name(), "b");
  EXPECT_EQ(e.child_count(), 2u);
}

TEST(ElementTest, IndexOfChild) {
  Element e("db");
  Element* a = e.AppendSimpleChild("a", "");
  Element* b = e.AppendSimpleChild("b", "");
  EXPECT_EQ(e.IndexOfChild(a), 0u);
  EXPECT_EQ(e.IndexOfChild(b), 1u);
  Element other("x");
  EXPECT_EQ(e.IndexOfChild(&other), Element::kNpos);
}

TEST(ElementTest, ParentPointersMaintained) {
  Element e("db");
  Element* a = e.AppendSimpleChild("a", "");
  EXPECT_EQ(a->parent(), &e);
  auto removed = e.RemoveChildAt(0);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value()->parent(), nullptr);
}

TEST(ElementTest, CloneIsDeepAndDetached) {
  Element e("lab");
  e.SetAttribute("ID", "baselab");
  e.AppendRef("managers", "smith1");
  e.AppendSimpleChild("name", "Seattle Bio Lab");
  auto copy = e.Clone();
  EXPECT_TRUE(DeepEqual(e, *copy));
  copy->SetAttribute("ID", "other");
  EXPECT_FALSE(DeepEqual(e, *copy));
  EXPECT_EQ(copy->parent(), nullptr);
}

TEST(ElementTest, TextContentConcatenatesDirectText) {
  Element e("name");
  e.AppendText("Seattle ");
  e.AppendSimpleChild("b", "ignored");
  e.AppendText("Bio Lab");
  EXPECT_EQ(e.TextContent(), "Seattle Bio Lab");
}

TEST(ElementTest, SubtreeElementCount) {
  auto doc = xupd::testing::ParseBioDocument();
  // Figure 1 has exactly 20 elements: db, university, 3 labs, paper,
  // 2 biologists, and 12 leaf elements.
  EXPECT_EQ(doc->root()->SubtreeElementCount(), 20u);
}

TEST(DeepEqualTest, OrderSensitivity) {
  auto a = xupd::testing::MustParse("<r><x/><y/></r>");
  auto b = xupd::testing::MustParse("<r><y/><x/></r>");
  EXPECT_FALSE(DeepEqual(*a->root(), *b->root()));
  EXPECT_TRUE(DeepEqualUnordered(*a->root(), *b->root()));
}

TEST(DeepEqualTest, AttributeOrderIsInsignificant) {
  auto a = xupd::testing::MustParse(R"(<r a="1" b="2"/>)");
  auto b = xupd::testing::MustParse(R"(<r b="2" a="1"/>)");
  EXPECT_TRUE(DeepEqual(*a->root(), *b->root()));
}

TEST(DeepEqualTest, UnorderedMultisetSemantics) {
  auto a = xupd::testing::MustParse("<r><x/><x/><y/></r>");
  auto b = xupd::testing::MustParse("<r><x/><y/><y/></r>");
  EXPECT_FALSE(DeepEqualUnordered(*a->root(), *b->root()));
}

TEST(DocumentTest, FindById) {
  auto doc = xupd::testing::ParseBioDocument();
  Element* lab = doc->FindById("baselab");
  ASSERT_NE(lab, nullptr);
  EXPECT_EQ(lab->name(), "lab");
  EXPECT_EQ(doc->FindById("nosuch"), nullptr);
}

TEST(DocumentTest, IdMapInvalidation) {
  auto doc = xupd::testing::ParseBioDocument();
  ASSERT_NE(doc->FindById("baselab"), nullptr);
  Element* root = doc->root();
  auto newlab = std::make_unique<Element>("lab");
  newlab->SetAttribute("ID", "freshlab");
  root->AppendChild(std::move(newlab));
  doc->InvalidateIdMap();
  EXPECT_NE(doc->FindById("freshlab"), nullptr);
}

TEST(DocumentTest, CloneIsIndependent) {
  auto doc = xupd::testing::ParseBioDocument();
  auto copy = doc->Clone();
  EXPECT_TRUE(DeepEqual(*doc->root(), *copy->root()));
  EXPECT_NE(copy->FindById("baselab"), nullptr);
  copy->root()->SetAttribute("touched", "yes");
  EXPECT_FALSE(DeepEqual(*doc->root(), *copy->root()));
}

TEST(DocumentTest, RefAttributesParsedAsRefLists) {
  auto doc = xupd::testing::ParseBioDocument();
  Element* lalab = doc->FindById("lalab");
  ASSERT_NE(lalab, nullptr);
  const RefList* managers = lalab->FindRefList("managers");
  ASSERT_NE(managers, nullptr);
  EXPECT_EQ(managers->targets, (std::vector<std::string>{"smith1", "jones1"}));
  // Plain attributes stay attributes.
  Element* paper = doc->FindById("Smith991231");
  ASSERT_NE(paper, nullptr);
  EXPECT_NE(paper->FindAttribute("category"), nullptr);
  EXPECT_NE(paper->FindRefList("biologist"), nullptr);
}

}  // namespace
}  // namespace xupd::xml
