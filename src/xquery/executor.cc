#include "xquery/executor.h"

#include "xml/parser.h"
#include "xpath/parser.h"
#include "xquery/parser.h"

namespace xupd::xquery {

using update::Content;
using xpath::Environment;
using xpath::XmlObject;

namespace {

// Context object for relative paths: the first FOR variable in scope
// (Example 3 binds ref(managers,"smith1") relative to $lab).
XmlObject RelativeContext(const std::vector<ForClause>& fors,
                          const Environment& env) {
  if (fors.empty()) return XmlObject::Null();
  auto it = env.find(fors.front().variable);
  return it == env.end() ? XmlObject::Null() : it->second;
}

}  // namespace

Result<std::vector<Environment>> NativeExecutor::BindTuples(
    const std::vector<ForClause>& fors, const std::vector<LetClause>& lets,
    const std::vector<xpath::Predicate>& where, const Environment& outer,
    const XmlObject& context) const {
  xpath::Evaluator eval(doc_);
  std::vector<Environment> tuples{outer};
  for (const ForClause& clause : fors) {
    std::vector<Environment> next;
    for (const Environment& env : tuples) {
      XmlObject rel = RelativeContext(fors, env);
      if (rel.is_null()) rel = context;
      auto objects = eval.Eval(clause.path, env, rel);
      if (!objects.ok()) return objects.status();
      size_t pos = 0;
      for (const XmlObject& obj : *objects) {
        Environment extended = env;
        XmlObject bound = obj;
        bound.binding_index = pos++;
        extended[clause.variable] = bound;
        next.push_back(std::move(extended));
      }
    }
    tuples = std::move(next);
    if (tuples.empty()) break;
  }
  for (const LetClause& clause : lets) {
    for (Environment& env : tuples) {
      XmlObject rel = RelativeContext(fors, env);
      if (rel.is_null()) rel = context;
      auto objects = eval.Eval(clause.path, env, rel);
      if (!objects.ok()) return objects.status();
      env[clause.variable] =
          objects->empty() ? XmlObject::Null() : objects->front();
    }
  }
  if (!where.empty()) {
    std::vector<Environment> filtered;
    for (const Environment& env : tuples) {
      XmlObject rel = RelativeContext(fors, env);
      if (rel.is_null()) rel = context;
      bool keep = true;
      for (const xpath::Predicate& pred : where) {
        auto ok = eval.EvalPredicate(pred, env, rel);
        if (!ok.ok()) return ok.status();
        if (!ok.value()) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(env);
    }
    tuples = std::move(filtered);
  }
  return tuples;
}

Result<Content> NativeExecutor::ResolveContent(const ContentExpr& expr,
                                               const Environment& env,
                                               const XmlObject& context) const {
  switch (expr.kind) {
    case ContentExpr::Kind::kNone:
      return Status::InvalidArgument("missing content expression");
    case ContentExpr::Kind::kXmlFragment: {
      xml::ParseOptions options;
      options.id_attribute = doc_->id_attribute();
      for (const std::string& r : doc_->ref_attributes()) {
        options.ref_attributes.insert(r);
      }
      auto frag = xml::ParseFragment(expr.text, options);
      if (!frag.ok()) return frag.status();
      return Content::MakeElement(std::move(frag).value());
    }
    case ContentExpr::Kind::kString:
      return Content::MakePcdata(expr.text);
    case ContentExpr::Kind::kNewAttribute:
      return Content::MakeAttribute(expr.name, expr.text);
    case ContentExpr::Kind::kNewRef:
      return Content::MakeReference(expr.name, expr.text);
    case ContentExpr::Kind::kPath: {
      xpath::Evaluator eval(doc_);
      auto objects = eval.Eval(expr.path, env, context);
      if (!objects.ok()) return objects.status();
      if (objects->empty()) {
        return Status::NotFound("content path produced no objects");
      }
      const XmlObject& obj = objects->front();
      switch (obj.kind) {
        case XmlObject::Kind::kElement:
          // Copy semantics (§6.2): the subtree is duplicated.
          return Content::MakeElement(obj.element->Clone());
        case XmlObject::Kind::kAttribute: {
          const xml::Attribute* a = obj.element->FindAttribute(obj.name);
          return Content::MakeAttribute(obj.name, a != nullptr ? a->value : "");
        }
        case XmlObject::Kind::kRefEntry:
          return Content::MakeReference(obj.name, StringValueOf(obj));
        case XmlObject::Kind::kText:
          return Content::MakePcdata(StringValueOf(obj));
        case XmlObject::Kind::kNull:
          return Status::InvalidArgument("null content binding");
      }
      return Status::Internal("unknown content object kind");
    }
  }
  return Status::Internal("unknown content kind");
}

Status NativeExecutor::BindUpdateOp(const UpdateOp& op, const Environment& env,
                                    const XmlObject& context,
                                    std::vector<BoundOp>* out) const {
  xpath::Evaluator eval(doc_);
  auto targets = eval.Eval(op.target, env, context);
  if (!targets.ok()) return targets.status();
  for (const XmlObject& target : *targets) {
    for (const SubOp& sub : op.sub_ops) {
      if (sub.kind == SubOp::Kind::kNestedUpdate) {
        // Bind the nested FOR/WHERE against the input (before any updates),
        // relative to the current UPDATE target.
        auto sub_tuples =
            BindTuples(sub.nested->for_clauses, {}, sub.nested->where, env,
                       target);
        if (!sub_tuples.ok()) return sub_tuples.status();
        for (const Environment& sub_env : *sub_tuples) {
          XUPD_RETURN_IF_ERROR(
              BindUpdateOp(*sub.nested, sub_env, target, out));
        }
        continue;
      }
      BoundOp bound;
      bound.kind = sub.kind;
      bound.position = sub.position;
      bound.target = target;
      bound.rename_to = sub.rename_to;
      // Operand binding.
      if (sub.kind == SubOp::Kind::kDelete ||
          sub.kind == SubOp::Kind::kRename ||
          sub.kind == SubOp::Kind::kReplace ||
          (sub.kind == SubOp::Kind::kInsert &&
           sub.position != SubOp::Position::kAppend)) {
        auto children = eval.Eval(sub.child, env, target);
        if (!children.ok()) return children.status();
        if (children->empty()) {
          return Status::NotFound("operand path '" + ToString(sub.child) +
                                  "' bound no object");
        }
        bound.child = children->front();
      }
      if (sub.kind == SubOp::Kind::kInsert ||
          sub.kind == SubOp::Kind::kReplace) {
        auto content = ResolveContent(sub.content, env, target);
        if (!content.ok()) return content.status();
        bound.content = std::move(content).value();
      }
      out->push_back(std::move(bound));
    }
  }
  return Status::OK();
}

Status NativeExecutor::Execute(const Statement& stmt) {
  if (!stmt.is_update()) {
    return Status::InvalidArgument("statement has no UPDATE clause");
  }
  auto tuples = BindTuples(stmt.for_clauses, stmt.let_clauses, stmt.where, {},
                           XmlObject::Null());
  if (!tuples.ok()) return tuples.status();
  last_tuple_count_ = tuples->size();

  // Bind phase: everything binds against the input document.
  std::vector<BoundOp> plan;
  for (const Environment& env : *tuples) {
    for (const UpdateOp& op : stmt.updates) {
      XUPD_RETURN_IF_ERROR(
          BindUpdateOp(op, env, RelativeContext(stmt.for_clauses, env), &plan));
    }
  }

  // Execute phase.
  update::UpdateExecutor exec(doc_, model_);
  for (const BoundOp& op : plan) {
    switch (op.kind) {
      case SubOp::Kind::kDelete:
        // A binding deleted by an earlier tuple's operation is skipped
        // (deleting it again would be a deleted-binding violation; see
        // DESIGN.md on cross-tuple dedup).
        if (exec.IsDeleted(op.child)) break;
        XUPD_RETURN_IF_ERROR(exec.Delete(op.child));
        break;
      case SubOp::Kind::kRename:
        XUPD_RETURN_IF_ERROR(exec.Rename(op.child, op.rename_to));
        break;
      case SubOp::Kind::kInsert:
        if (op.position == SubOp::Position::kAppend) {
          XUPD_RETURN_IF_ERROR(exec.Insert(op.target, *op.content));
        } else if (op.position == SubOp::Position::kBefore) {
          XUPD_RETURN_IF_ERROR(exec.InsertBefore(op.child, *op.content));
        } else {
          XUPD_RETURN_IF_ERROR(exec.InsertAfter(op.child, *op.content));
        }
        break;
      case SubOp::Kind::kReplace:
        XUPD_RETURN_IF_ERROR(exec.Replace(op.child, *op.content));
        break;
      case SubOp::Kind::kNestedUpdate:
        return Status::Internal("nested update not flattened");
    }
  }
  doc_->InvalidateIdMap();
  return Status::OK();
}

Status NativeExecutor::ExecuteString(std::string_view query) {
  auto stmt = ParseStatement(query);
  if (!stmt.ok()) return stmt.status();
  return Execute(stmt.value());
}

Result<std::vector<XmlObject>> NativeExecutor::EvalQuery(const Statement& stmt) {
  if (!stmt.return_path.has_value()) {
    return Status::InvalidArgument("statement has no RETURN clause");
  }
  auto tuples = BindTuples(stmt.for_clauses, stmt.let_clauses, stmt.where, {},
                           XmlObject::Null());
  if (!tuples.ok()) return tuples.status();
  xpath::Evaluator eval(doc_);
  std::vector<XmlObject> results;
  for (const Environment& env : *tuples) {
    auto objects = eval.Eval(*stmt.return_path, env,
                             RelativeContext(stmt.for_clauses, env));
    if (!objects.ok()) return objects.status();
    for (const XmlObject& obj : *objects) results.push_back(obj);
  }
  return results;
}

}  // namespace xupd::xquery
