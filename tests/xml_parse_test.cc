// Tests for the XML parser and serializer: features, errors, round trips.
#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xupd::xml {
namespace {

TEST(XmlParseTest, MinimalDocument) {
  auto parsed = ParseXml("<a/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->document->root()->name(), "a");
  EXPECT_EQ(parsed->document->root()->child_count(), 0u);
}

TEST(XmlParseTest, AttributesBothQuoteStyles) {
  auto parsed = ParseXml(R"(<a x="1" y='2'/>)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->document->root()->FindAttribute("x")->value, "1");
  EXPECT_EQ(parsed->document->root()->FindAttribute("y")->value, "2");
}

TEST(XmlParseTest, EntityReferences) {
  auto parsed = ParseXml("<a x=\"&lt;&amp;&gt;\">&quot;hi&apos; &#65;&#x42;</a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->document->root()->FindAttribute("x")->value, "<&>");
  EXPECT_EQ(parsed->document->root()->TextContent(), "\"hi' AB");
}

TEST(XmlParseTest, CdataSection) {
  auto parsed = ParseXml("<a><![CDATA[<not><parsed>&amp;]]></a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->document->root()->TextContent(), "<not><parsed>&amp;");
}

TEST(XmlParseTest, CommentsAndPisSkipped) {
  auto parsed = ParseXml(
      "<?xml version=\"1.0\"?><!-- c --><a><!-- inner --><b/><?pi data?></a>"
      "<!-- trailing -->");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->document->root()->child_count(), 1u);
}

TEST(XmlParseTest, WhitespaceTextDroppedByDefault) {
  auto parsed = ParseXml("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->document->root()->child_count(), 1u);
  ParseOptions keep;
  keep.keep_whitespace_text = true;
  auto kept = ParseXml("<a>\n  <b/>\n</a>", keep);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->document->root()->child_count(), 3u);
}

TEST(XmlParseTest, MixedContentPreserved) {
  auto parsed = ParseXml("<p>one <em>two</em> three</p>");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->document->root()->child_count(), 3u);
  EXPECT_TRUE(parsed->document->root()->child(0)->is_text());
  EXPECT_TRUE(parsed->document->root()->child(1)->is_element());
  EXPECT_TRUE(parsed->document->root()->child(2)->is_text());
}

TEST(XmlParseTest, EmptyCloseShorthand) {
  // The paper writes <name>UCLA Primary Lab</> in Example 5.
  auto frag = ParseFragment("<name>UCLA Primary Lab</>", ParseOptions{});
  ASSERT_TRUE(frag.ok()) << frag.status();
  EXPECT_EQ(frag.value()->TextContent(), "UCLA Primary Lab");
}

TEST(XmlParseTest, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                    // unterminated
  EXPECT_FALSE(ParseXml("<a></b>").ok());                // mismatched
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());               // unquoted attr
  EXPECT_FALSE(ParseXml("<a x=\"1\" x=\"2\"/>").ok());   // duplicate attr
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());               // two roots
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());         // unknown entity
  EXPECT_FALSE(ParseXml("<1tag/>").ok());                // bad name
}

TEST(XmlParseTest, ErrorsCarryLineInfo) {
  auto parsed = ParseXml("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("3"), std::string::npos)
      << parsed.status();
}

TEST(XmlRoundTripTest, BioDocument) {
  auto doc = xupd::testing::ParseBioDocument();
  std::string text = Serialize(*doc);
  ParseOptions options;
  options.ref_attributes = {"managers", "source", "biologist", "lab"};
  auto reparsed = ParseXml(text, options);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(DeepEqual(*doc->root(), *reparsed->document->root()));
}

TEST(XmlRoundTripTest, CompactForm) {
  auto doc = xupd::testing::ParseBioDocument();
  SerializeOptions compact;
  compact.pretty = false;
  std::string text = Serialize(*doc, compact);
  ParseOptions options;
  options.ref_attributes = {"managers", "source", "biologist", "lab"};
  auto reparsed = ParseXml(text, options);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(DeepEqual(*doc->root(), *reparsed->document->root()));
}

TEST(XmlRoundTripTest, EscapingSurvives) {
  Element e("t");
  e.SetAttribute("a", "x<y&\"z'");
  e.AppendText("a<b>&c");
  std::string text = Canonical(e);
  auto frag = ParseFragment(text, ParseOptions{});
  ASSERT_TRUE(frag.ok()) << frag.status() << " text=" << text;
  EXPECT_TRUE(DeepEqual(e, *frag.value()));
}

TEST(XmlSerializeTest, CanonicalSortsAttributes) {
  auto a = xupd::testing::MustParse(R"(<r b="2" a="1"/>)");
  auto b = xupd::testing::MustParse(R"(<r a="1" b="2"/>)");
  EXPECT_EQ(Canonical(*a), Canonical(*b));
}

TEST(XmlSerializeTest, RefListsSerializedSpaceJoined) {
  auto doc = xupd::testing::ParseBioDocument();
  std::string text = Canonical(*doc->FindById("lalab"));
  EXPECT_NE(text.find("managers=\"smith1 jones1\""), std::string::npos) << text;
}

}  // namespace
}  // namespace xupd::xml
