#include "update/ops.h"

#include <algorithm>

namespace xupd::update {

using xpath::XmlObject;

namespace {

Status DeletedBindingError() {
  return Status::ConstraintViolation(
      "binding has been deleted earlier in this update sequence");
}

}  // namespace

bool UpdateExecutor::IsDeleted(const XmlObject& obj) const {
  // Attribute tombstones.
  if (obj.is_attribute() &&
      deleted_attrs_.count({obj.element, obj.name}) > 0) {
    return true;
  }
  // Ref entry tombstones.
  if (obj.is_ref_entry()) {
    if (CurrentRefIndex(obj.element, obj.name, obj.index) < 0) return true;
  }
  // Element/text (or owner) tombstones: walk up the ancestor chain; deleted
  // subtree roots are detached, so the walk terminates at the subtree root.
  const xml::Node* node =
      obj.is_text() ? static_cast<const xml::Node*>(obj.text)
                    : static_cast<const xml::Node*>(obj.element);
  while (node != nullptr) {
    if (deleted_nodes_.count(node) > 0) return true;
    node = node->parent();
  }
  return false;
}

Status UpdateExecutor::CheckLive(const XmlObject& obj) {
  if (obj.is_null()) return Status::InvalidArgument("null binding");
  if (IsDeleted(obj)) return DeletedBindingError();
  return Status::OK();
}

int64_t UpdateExecutor::CurrentRefIndex(const xml::Element* owner,
                                        const std::string& list,
                                        size_t original) const {
  auto it = ref_positions_.find({owner, list});
  if (it == ref_positions_.end()) return static_cast<int64_t>(original);
  if (original >= it->second.size()) return static_cast<int64_t>(original);
  return it->second[original];
}

void UpdateExecutor::NoteRefRemoved(const xml::Element* owner,
                                    const std::string& list,
                                    int64_t current_pos) {
  RefKey key{owner, list};
  auto it = ref_positions_.find(key);
  if (it == ref_positions_.end()) {
    // Initialize identity mapping sized to the pre-removal list length + 1
    // (the list has already been mutated by the caller, hence +1).
    const xml::RefList* rl = owner->FindRefList(list);
    size_t n = (rl != nullptr ? rl->targets.size() : 0) + 1;
    std::vector<int64_t> ident(n);
    for (size_t i = 0; i < n; ++i) ident[i] = static_cast<int64_t>(i);
    it = ref_positions_.emplace(key, std::move(ident)).first;
  }
  for (int64_t& pos : it->second) {
    if (pos == current_pos) {
      pos = -1;
    } else if (pos > current_pos) {
      --pos;
    }
  }
}

void UpdateExecutor::NoteRefInserted(const xml::Element* owner,
                                     const std::string& list,
                                     int64_t current_pos) {
  RefKey key{owner, list};
  auto it = ref_positions_.find(key);
  if (it == ref_positions_.end()) {
    const xml::RefList* rl = owner->FindRefList(list);
    size_t n = rl != nullptr ? rl->targets.size() : 0;
    // The list already contains the inserted entry; original positions cover
    // n-1 entries.
    std::vector<int64_t> ident(n > 0 ? n - 1 : 0);
    for (size_t i = 0; i < ident.size(); ++i) ident[i] = static_cast<int64_t>(i);
    it = ref_positions_.emplace(key, std::move(ident)).first;
  }
  for (int64_t& pos : it->second) {
    if (pos >= current_pos) ++pos;
  }
}

Status UpdateExecutor::Delete(const XmlObject& child) {
  XUPD_RETURN_IF_ERROR(CheckLive(child));
  switch (child.kind) {
    case XmlObject::Kind::kElement: {
      xml::Element* parent = child.element->parent();
      if (parent == nullptr) {
        return Status::InvalidArgument("cannot delete the document root");
      }
      size_t idx = parent->IndexOfChild(child.element);
      if (idx == xml::Element::kNpos) {
        return Status::Internal("child not found in parent");
      }
      auto removed = parent->RemoveChildAt(idx);
      if (!removed.ok()) return removed.status();
      deleted_nodes_.insert(removed.value().get());
      graveyard_.push_back(std::move(removed).value());
      doc_->InvalidateIdMap();
      return Status::OK();
    }
    case XmlObject::Kind::kAttribute: {
      XUPD_RETURN_IF_ERROR(child.element->RemoveAttribute(child.name));
      deleted_attrs_.insert({child.element, child.name});
      return Status::OK();
    }
    case XmlObject::Kind::kRefEntry: {
      int64_t cur = CurrentRefIndex(child.element, child.name, child.index);
      if (cur < 0) return DeletedBindingError();
      XUPD_RETURN_IF_ERROR(
          child.element->RemoveRefAt(child.name, static_cast<size_t>(cur)));
      NoteRefRemoved(child.element, child.name, cur);
      return Status::OK();
    }
    case XmlObject::Kind::kText: {
      xml::Element* parent = child.element;
      size_t idx = parent->IndexOfChild(child.text);
      if (idx == xml::Element::kNpos) {
        return Status::Internal("text node not found in parent");
      }
      auto removed = parent->RemoveChildAt(idx);
      if (!removed.ok()) return removed.status();
      deleted_nodes_.insert(removed.value().get());
      graveyard_.push_back(std::move(removed).value());
      return Status::OK();
    }
    case XmlObject::Kind::kNull:
      return Status::InvalidArgument("null binding");
  }
  return Status::Internal("unknown object kind");
}

Status UpdateExecutor::Rename(const XmlObject& child, const std::string& name) {
  XUPD_RETURN_IF_ERROR(CheckLive(child));
  switch (child.kind) {
    case XmlObject::Kind::kElement:
      child.element->set_name(name);
      return Status::OK();
    case XmlObject::Kind::kAttribute:
      return child.element->RenameAttribute(child.name, name);
    case XmlObject::Kind::kRefEntry:
      // "we cannot rename an individual IDREF within an IDREFS; such a
      //  rename operation will rename the entire IDREFS" (§3.2).
      return child.element->RenameRefList(child.name, name);
    case XmlObject::Kind::kText:
      return Status::InvalidArgument("PCDATA cannot be renamed");
    case XmlObject::Kind::kNull:
      return Status::InvalidArgument("null binding");
  }
  return Status::Internal("unknown object kind");
}

Status UpdateExecutor::Insert(const XmlObject& target, const Content& content) {
  XUPD_RETURN_IF_ERROR(CheckLive(target));
  if (!target.is_element()) {
    return Status::InvalidArgument("Insert target must be an element");
  }
  switch (content.kind()) {
    case Content::Kind::kElement:
      target.element->AppendChild(content.element()->Clone());
      doc_->InvalidateIdMap();
      return Status::OK();
    case Content::Kind::kPcdata:
      target.element->AppendText(content.text());
      return Status::OK();
    case Content::Kind::kAttribute:
      // "An attempt to insert an attribute with the same name as an existing
      //  attribute fails" (§3.2).
      return target.element->InsertAttribute(content.name(), content.text());
    case Content::Kind::kReference: {
      target.element->AppendRef(content.name(), content.text());
      // Appending never disturbs tracked original positions.
      return Status::OK();
    }
  }
  return Status::Internal("unknown content kind");
}

Status UpdateExecutor::InsertRelative(const XmlObject& ref,
                                      const Content& content, bool before) {
  if (model_ == ExecutionModel::kUnordered) {
    return Status::InvalidArgument(
        "InsertBefore/InsertAfter are defined only for the ordered model");
  }
  XUPD_RETURN_IF_ERROR(CheckLive(ref));
  switch (ref.kind) {
    case XmlObject::Kind::kElement:
    case XmlObject::Kind::kText: {
      if (content.kind() != Content::Kind::kElement &&
          content.kind() != Content::Kind::kPcdata) {
        return Status::InvalidArgument(
            "positional insert relative to a child requires element or PCDATA "
            "content");
      }
      xml::Element* parent = ref.is_element() ? ref.element->parent()
                                              : ref.element;
      if (parent == nullptr) {
        return Status::InvalidArgument("cannot insert relative to the root");
      }
      const xml::Node* ref_node =
          ref.is_element() ? static_cast<const xml::Node*>(ref.element)
                           : static_cast<const xml::Node*>(ref.text);
      size_t idx = parent->IndexOfChild(ref_node);
      if (idx == xml::Element::kNpos) {
        return Status::Internal("reference child not found in parent");
      }
      std::unique_ptr<xml::Node> node;
      if (content.kind() == Content::Kind::kElement) {
        node = content.element()->Clone();
      } else {
        node = std::make_unique<xml::Text>(content.text());
      }
      XUPD_RETURN_IF_ERROR(parent->InsertChildAt(before ? idx : idx + 1,
                                                 std::move(node)));
      doc_->InvalidateIdMap();
      return Status::OK();
    }
    case XmlObject::Kind::kRefEntry: {
      if (content.kind() != Content::Kind::kReference &&
          content.kind() != Content::Kind::kPcdata) {
        return Status::InvalidArgument(
            "positional insert into an IDREFS requires an ID");
      }
      int64_t cur = CurrentRefIndex(ref.element, ref.name, ref.index);
      if (cur < 0) return DeletedBindingError();
      int64_t pos = before ? cur : cur + 1;
      // A plain string ("jones1") used as content against a ref binding is
      // interpreted as an ID (Example 3 inserts "jones1" BEFORE $sref).
      const std::string& target_id = content.text();
      XUPD_RETURN_IF_ERROR(ref.element->InsertRefAt(
          ref.name, static_cast<size_t>(pos), target_id));
      NoteRefInserted(ref.element, ref.name, pos);
      return Status::OK();
    }
    case XmlObject::Kind::kAttribute:
      return Status::InvalidArgument(
          "attributes are unordered; positional insert is undefined");
    case XmlObject::Kind::kNull:
      return Status::InvalidArgument("null binding");
  }
  return Status::Internal("unknown object kind");
}

Status UpdateExecutor::InsertBefore(const XmlObject& ref,
                                    const Content& content) {
  return InsertRelative(ref, content, /*before=*/true);
}

Status UpdateExecutor::InsertAfter(const XmlObject& ref,
                                   const Content& content) {
  return InsertRelative(ref, content, /*before=*/false);
}

Status UpdateExecutor::Replace(const XmlObject& child, const Content& content) {
  XUPD_RETURN_IF_ERROR(CheckLive(child));
  // Reference bindings may only be replaced by references of the same label.
  if (child.is_ref_entry()) {
    if (content.kind() == Content::Kind::kReference) {
      if (content.name() != child.name) {
        return Status::InvalidArgument(
            "a reference can only be replaced with a reference of the same "
            "label ('" + child.name + "')");
      }
      int64_t cur = CurrentRefIndex(child.element, child.name, child.index);
      if (cur < 0) return DeletedBindingError();
      return child.element->ReplaceRefAt(child.name,
                                         static_cast<size_t>(cur),
                                         content.text());
    }
    if (content.kind() == Content::Kind::kAttribute) {
      // Example 4 replaces a manager reference with
      // new_attribute(managers, "jones1"): the paper treats the attribute
      // constructor as supplying the (label, id) pair for the reference.
      if (content.name() != child.name) {
        return Status::InvalidArgument(
            "a reference can only be replaced with a reference of the same "
            "label ('" + child.name + "')");
      }
      int64_t cur = CurrentRefIndex(child.element, child.name, child.index);
      if (cur < 0) return DeletedBindingError();
      return child.element->ReplaceRefAt(child.name,
                                         static_cast<size_t>(cur),
                                         content.text());
    }
    return Status::InvalidArgument(
        "a reference binding can only be replaced by a reference");
  }
  if (child.is_attribute()) {
    if (content.kind() != Content::Kind::kAttribute) {
      return Status::InvalidArgument(
          "an attribute binding can only be replaced by an attribute");
    }
    XUPD_RETURN_IF_ERROR(Delete(child));
    // The replacement may carry a different name.
    XUPD_RETURN_IF_ERROR(
        child.element->InsertAttribute(content.name(), content.text()));
    return Status::OK();
  }
  if (child.is_element() || child.is_text()) {
    if (model_ == ExecutionModel::kOrdered) {
      XUPD_RETURN_IF_ERROR(InsertRelative(child, content, /*before=*/true));
      return Delete(child);
    }
    XmlObject parent = XmlObject::OfElement(
        child.is_element() ? child.element->parent() : child.element);
    if (parent.element == nullptr) {
      return Status::InvalidArgument("cannot replace the document root");
    }
    XUPD_RETURN_IF_ERROR(Insert(parent, content));
    return Delete(child);
  }
  return Status::InvalidArgument("null binding");
}

}  // namespace xupd::update
