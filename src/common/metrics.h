// Engine-wide observability primitives: a monotonic clock, log-bucketed
// latency histograms, a registry of named counters/gauges/histograms, and a
// fixed-size ring buffer of structured trace events.
//
// The paper's argument is experimental — figs. 6-11 attribute update cost
// to strategy choices — so the engine must be able to say *where time went*,
// not just how often things happened (that is rdb/stats.h's job). Everything
// here is built to be always-on: recording a histogram sample is one clock
// read plus one bucket increment, and recording a trace event is a struct
// copy into a preallocated ring. Nothing allocates on the hot path.
//
// Thread safety: the multi-threaded engine (epoch-snapshot readers, the
// group-commit flusher, the background checkpointer) records into these
// primitives from several threads at once. Histogram::Record and registry
// counters/gauges are relaxed atomics — concurrent Record() calls never
// tear, though a reader taking a snapshot mid-burst may observe a count
// that is ahead of the matching bucket (monotonic, eventually consistent).
// EventLog is mutex-guarded (Record is rare enough that a lock beats the
// complexity of a lock-free ring). MetricsRegistry's get-or-create maps are
// mutex-guarded; the returned pointers stay valid for the registry's
// lifetime and are themselves atomic, so hot paths still touch plain
// memory after a one-time lookup.
#ifndef XUPD_COMMON_METRICS_H_
#define XUPD_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xupd {

/// Nanoseconds on the monotonic clock. All histogram samples and event
/// timestamps use this time base; it is not wall time.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Point-in-time summary of a Histogram. Percentiles are interpolated
/// within the matching bucket and clamped to the observed [min, max].
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Log-linear latency histogram (HdrHistogram-style): values below 16 get
/// exact unit buckets; above that, each power-of-two octave is split into
/// 16 linear sub-buckets, so relative error is bounded at ~6% across the
/// full uint64 range. Record() is one std::bit_width plus one relaxed
/// atomic increment, safe to call from any thread. Readers (Percentile,
/// Snapshot, Merge, copy) take a racy-but-untorn view: each word is loaded
/// atomically, so concurrent recording can skew a snapshot by at most the
/// in-flight samples.
///
/// Samples are dimensionless; engine call sites record nanoseconds.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                       // 16 sub-buckets
  static constexpr int kSubCount = 1 << kSubBits;          // per octave
  static constexpr int kFirstOctave = kSubBits;            // values >= 16
  static constexpr int kLastOctave = 63;
  static constexpr int kBucketCount =
      kSubCount + (kLastOctave - kFirstOctave + 1) * kSubCount;

  Histogram() = default;
  Histogram(const Histogram& other) { CopyFrom(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Bucket index for a value. Deterministic and exposed for tests:
  /// BucketIndex(v) == v for v < 16; BucketIndex(32) starts a new octave.
  static int BucketIndex(uint64_t value) {
    if (value < kSubCount) return static_cast<int>(value);
    const int octave = std::bit_width(value) - 1;  // >= kFirstOctave
    const int shift = octave - kSubBits;
    const int sub = static_cast<int>((value >> shift) - kSubCount);
    return kSubCount + (octave - kFirstOctave) * kSubCount + sub;
  }

  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index) {
    if (index < kSubCount) return static_cast<uint64_t>(index);
    const int rel = index - kSubCount;
    const int octave = rel / kSubCount + kFirstOctave;
    const int sub = rel % kSubCount;
    const int shift = octave - kSubBits;
    return static_cast<uint64_t>(kSubCount + sub) << shift;
  }

  /// Width of bucket `index` (1 for the exact range).
  static uint64_t BucketWidth(int index) {
    if (index < kSubCount) return 1;
    const int octave = (index - kSubCount) / kSubCount + kFirstOctave;
    return uint64_t{1} << (octave - kSubBits);
  }

  void Record(uint64_t value) {
    buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t m = min_.load(std::memory_order_relaxed);
    while (value < m &&
           !min_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
    }
    m = max_.load(std::memory_order_relaxed);
    while (value > m &&
           !max_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kNoMin ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Value at percentile `p` in [0, 100]: linear interpolation inside the
  /// bucket holding the p-th sample, clamped to [min, max] so single-sample
  /// and narrow distributions report exact observed values. Returns 0 when
  /// empty.
  double Percentile(double p) const;

  /// Adds every bucket (and count/sum/min/max) of `other` into this.
  void Merge(const Histogram& other);

  void Reset() { *this = Histogram{}; }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    s.count = count();
    s.sum = sum();
    s.min = min();
    s.max = max();
    s.p50 = Percentile(50);
    s.p95 = Percentile(95);
    s.p99 = Percentile(99);
    return s;
  }

 private:
  static constexpr uint64_t kNoMin = UINT64_MAX;  // min_ when empty.

  void CopyFrom(const Histogram& other) {
    for (int i = 0; i < kBucketCount; ++i) {
      buckets_[static_cast<size_t>(i)].store(
          other.buckets_[static_cast<size_t>(i)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{kNoMin};
  std::atomic<uint64_t> max_{0};
};

/// One structured trace event: a timestamped span with two numeric payload
/// slots whose meaning depends on the kind (see the kind comments).
/// `detail` must point at a string literal or other static storage — the
/// ring never copies it, which keeps Record() allocation-free.
struct TraceEvent {
  enum class Kind : uint8_t {
    kStatement,   ///< one SQL statement; a = sql::Statement::Kind.
    kTxn,         ///< outermost BEGIN..COMMIT/ROLLBACK; a = 1 if committed.
    kWalUnit,     ///< one WAL commit unit; a = records, b = bytes.
    kFsync,       ///< one WAL fsync.
    kCheckpoint,  ///< snapshot + WAL truncation (snapshot.write histogram
                  ///< holds the write alone).
    kRecovery,    ///< startup replay; a = records replayed.
    kScrub,       ///< integrity scrub; a = violations found.
    kEngineOp,    ///< one engine/store.cc operation; a = SQL exec ns,
                  ///< b = trigger-cascade ns; detail = op name.
  };
  Kind kind = Kind::kStatement;
  uint64_t start_ns = 0;     ///< MonotonicNanos() at span start.
  uint64_t duration_ns = 0;  ///< span length.
  uint64_t a = 0;            ///< kind-specific payload.
  uint64_t b = 0;            ///< kind-specific payload.
  const char* detail = nullptr;  ///< static string or nullptr.
};

const char* ToString(TraceEvent::Kind kind);

/// Fixed-capacity ring of TraceEvents. When full, the oldest event is
/// overwritten and `dropped()` counts it; the engine can therefore trace
/// forever with bounded memory and no branch-heavy bookkeeping. A mutex
/// guards the ring — events are recorded at statement/fsync granularity
/// (thousands per second, not millions), so contention is negligible and
/// recording from the writer, flusher, and checkpoint threads is safe.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024) : ring_(capacity) {}

  void Record(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty()) return;
    if (size_ == ring_.size()) {
      ring_[head_] = e;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    } else {
      ring_[(head_ + size_) % ring_.size()] = e;
      ++size_;
    }
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return ring_.size(); }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    size_ = head_ = 0;
    dropped_ = 0;
  }

  /// Events oldest-first.
  std::vector<TraceEvent> Events() const;

  /// One JSON object per event, oldest-first.
  std::vector<std::string> ToJsonLines() const;

  /// The whole ring as a JSON array.
  std::string DumpJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // capacity fixed after construction.
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

/// Named counters, gauges, and histograms. Counter()/Gauge()/GetHistogram()
/// are get-or-create and return pointers that stay valid for the registry's
/// lifetime, so call sites resolve names once and then touch plain memory.
/// Counters and gauges are atomics (updated via the returned pointer from
/// any thread); the name maps are mutex-guarded. Iteration and export are
/// name-sorted for deterministic output.
class MetricsRegistry {
 public:
  /// Monotonically increasing counter (caller increments through the
  /// returned pointer).
  std::atomic<uint64_t>* Counter(std::string_view name);

  /// Point-in-time gauge (caller assigns through the returned pointer).
  std::atomic<int64_t>* Gauge(std::string_view name);

  Histogram* GetHistogram(std::string_view name);

  /// Existing histogram or nullptr (does not create).
  const Histogram* FindHistogram(std::string_view name) const;

  template <typename Fn>  // fn(const std::string&, uint64_t)
  void ForEachCounter(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : counters_) {
      fn(name, value->load(std::memory_order_relaxed));
    }
  }

  template <typename Fn>  // fn(const std::string&, int64_t)
  void ForEachGauge(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : gauges_) {
      fn(name, value->load(std::memory_order_relaxed));
    }
  }

  template <typename Fn>  // fn(const std::string&, const Histogram&)
  void ForEachHistogram(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, hist] : histograms_) fn(name, *hist);
  }

  /// "name value" per line; histograms expand to name.count / name.p50 /
  /// name.p95 / name.p99 / name.max / name.sum.
  std::string ExportText() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{snapshot...}}}.
  std::string ExportJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<std::atomic<int64_t>>, std::less<>>
      gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xupd

#endif  // XUPD_COMMON_METRICS_H_
