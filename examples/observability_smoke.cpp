// Observability smoke tool for CI: run the fig. 6-shaped workload, then
// prove the observability surfaces carry real numbers — EXPLAIN ANALYZE
// reports per-operator actuals that match the plain query, SHOW METRICS
// reports nonzero statement timings, the slow-statement log captures at
// threshold 0, and the event ring holds statement spans. Exits nonzero on
// any missing or zero timing field, so a silently-broken instrumentation
// path fails the build instead of shipping dead dashboards.
//
//   $ ./observability_smoke            default (in-memory) checks
//   $ ./observability_smoke trace DIR  concurrency/trace checks: runs the
//                                      fig. 6 workload durable under DIR
//                                      with the batched group-commit
//                                      flusher and a background checkpoint,
//                                      then validates the exported Chrome
//                                      trace (matched ts/dur on every span,
//                                      fsync spans on the flusher track,
//                                      checkpoint spans on the background
//                                      track, flow arrows that resolve) and
//                                      the new concurrency telemetry
//                                      (SHOW TABLE STATS, epoch/version
//                                      gauges).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/store.h"
#include "workload/synthetic.h"

using namespace xupd;
using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  } else {
    std::printf("ok: %s\n", what);
  }
}

/// Finds `key` in SHOW METRICS rows and returns its value (-1 = missing).
int64_t MetricValue(const rdb::ResultSet& metrics, const std::string& key) {
  for (const rdb::Row& row : metrics.rows) {
    if (row[0].ToString() == key) return row[1].AsInt();
  }
  return -1;
}

/// Every number following `marker` in `s` (used to pair flow arrow ids).
std::vector<uint64_t> ExtractIds(const std::string& s,
                                 const std::string& marker) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while ((pos = s.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    out.push_back(std::strtoull(s.c_str() + pos, nullptr, 10));
  }
  return out;
}

const TraceEvent* FindSpan(const std::vector<TraceEvent>& events,
                           uint64_t span_id) {
  for (const TraceEvent& e : events) {
    if (e.span_id == span_id) return &e;
  }
  return nullptr;
}

/// Concurrency/trace mode (`observability_smoke trace DIR`): the fig. 6
/// workload durable under DIR with kBatched group commit, MVCC churn
/// against a pinned reader, and a background checkpoint — then validates
/// the exported Chrome trace and the concurrency telemetry.
int RunTraceMode(const std::string& dir) {
  workload::SyntheticSpec spec;
  spec.scaling_factor = 20;
  spec.depth = 4;
  spec.fanout = 2;
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  if (!gen.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 gen.status().ToString().c_str());
    return 2;
  }

  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerStatementTrigger;
  options.insert_strategy = InsertStrategy::kTable;
  options.durability = true;
  options.data_dir = dir;
  options.sync_mode = rdb::SyncMode::kBatched;
  auto store = RelationalStore::Create(gen->dtd, options);
  if (!store.ok()) {
    std::fprintf(stderr, "store create failed: %s\n",
                 store.status().ToString().c_str());
    return 2;
  }
  rdb::Database* db = store.value()->db();
  Status loaded = store.value()->Load(*gen->doc);
  if (!loaded.ok()) {
    std::fprintf(stderr, "store load failed: %s\n", loaded.ToString().c_str());
    return 2;
  }
  const uint32_t main_tid = trace::CurrentTid();

  // --- MVCC churn against a pinned reader ----------------------------------
  if (!db->Execute("CREATE TABLE obs_kv (id INT, v INT)").ok()) return 2;
  for (int i = 0; i < 32; ++i) {
    if (!db->Execute("INSERT INTO obs_kv VALUES (" + std::to_string(i) +
                     ", 0)")
             .ok()) {
      return 2;
    }
  }
  auto session = db->OpenReaderSession();
  if (!session.ok()) return 2;
  session.value()->PinSnapshot();
  for (int r = 0; r < 4; ++r) {
    if (!db->Execute("UPDATE obs_kv SET v = v + 1").ok()) return 2;
  }
  // Reader statements take the catalog lock shared; the pinned scan also
  // proves the version buffer reconstructs the pre-update values.
  auto pinned_sum = session.value()->ExecuteQuery("SELECT SUM(v) FROM obs_kv");
  if (!pinned_sum.ok()) return 2;
  Check(pinned_sum->rows[0][0].AsInt() == 0,
        "pinned reader reconstructs pre-update values");
  auto pinned_metrics = db->ExecuteQuery("SHOW METRICS");
  if (!pinned_metrics.ok()) return 2;
  Check(MetricValue(*pinned_metrics, "epoch.published") > 0,
        "epoch.published gauge is nonzero");
  Check(MetricValue(*pinned_metrics, "epoch.lag") > 0,
        "epoch.lag is nonzero while a pinned reader trails the writer");
  Check(MetricValue(*pinned_metrics, "mvcc.version_rows") > 0,
        "pre-update images are parked while the pin can reach them");
  Check(MetricValue(*pinned_metrics, "readers.sessions") == 1,
        "readers.sessions gauges the open session");
  // Release the pin: the next boundaries trim the version buffer.
  session.value()->Unpin();
  for (int r = 0; r < 2; ++r) {
    if (!db->Execute("UPDATE obs_kv SET v = v + 1").ok()) return 2;
  }
  auto unpinned_metrics = db->ExecuteQuery("SHOW METRICS");
  if (!unpinned_metrics.ok()) return 2;
  Check(MetricValue(*unpinned_metrics, "mvcc.version_gc_rows") > 0,
        "version-buffer GC fired once the pin released");
  Check(MetricValue(*unpinned_metrics, "catalog_lock.shared_wait.count") > 0,
        "catalog-lock shared wait histogram records acquisitions");

  // --- cross-thread spans --------------------------------------------------
  // The group-commit flusher fsyncs the batched tail within a window or
  // two; its kFsync span lands on the flusher tid with the last commit
  // unit's span as causal parent.
  bool flusher_fsync = false;
  for (int i = 0; i < 400 && !flusher_fsync; ++i) {
    for (const TraceEvent& e : db->events().Events()) {
      if (e.kind == TraceEvent::Kind::kFsync && e.tid != main_tid) {
        flusher_fsync = true;
        break;
      }
    }
    if (!flusher_fsync) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  Check(flusher_fsync, "group-commit fsync span recorded on the flusher "
                       "thread");

  Status cp = db->CheckpointBackground();
  Check(cp.ok(), "background checkpoint schedules");
  Status cpw = db->CheckpointWait();
  Check(cpw.ok(), "background checkpoint completes");

  // fig. 6 bulk delete (per-statement triggers cascade to the children).
  Status deleted = store.value()->DeleteWhere("n1", "");
  if (!deleted.ok()) {
    std::fprintf(stderr, "delete failed: %s\n", deleted.ToString().c_str());
    return 2;
  }

  // --- SHOW TABLE STATS ----------------------------------------------------
  auto table_stats = db->ExecuteQuery("SHOW TABLE STATS");
  Check(table_stats.ok(), "SHOW TABLE STATS executes");
  if (table_stats.ok()) {
    Check(MetricValue(*table_stats, "table.obs_kv.scans") > 0,
          "per-table scan count is nonzero");
    Check(MetricValue(*table_stats, "table.obs_kv.rows_updated") > 0,
          "per-table rows_updated is nonzero");
    Check(MetricValue(*table_stats, "table.n1.rows_deleted") > 0,
          "the fig. 6 delete shows in per-table rows_deleted");
    Check(MetricValue(*table_stats, "table.n1.rows_inserted") > 0,
          "the fig. 6 load shows in per-table rows_inserted");
  }

  // --- Chrome trace export -------------------------------------------------
  const std::string trace_json = db->events().DumpChromeTrace();
  const std::vector<TraceEvent> events = db->events().Events();
  Check(trace_json.find("\"traceEvents\":[") == 0 ||
            trace_json.find("{\"traceEvents\":[") == 0,
        "trace export is a traceEvents document");
  Check(trace_json.find("\"wal-flusher\"") != std::string::npos,
        "the flusher track is named");
  Check(trace_json.find("\"checkpoint\"") != std::string::npos,
        "the checkpoint track is named");

  // Every ring span appears as an X slice with exactly its ts/dur.
  bool all_match = !events.empty();
  char want[96];
  for (const TraceEvent& e : events) {
    std::snprintf(want, sizeof want, "\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3);
    if (trace_json.find(want) == std::string::npos) {
      all_match = false;
      break;
    }
  }
  Check(all_match, "every span exports with matched ts/dur");

  // The background checkpoint's snapshot-write span sits on the bg track
  // with the writer-side schedule span as parent.
  bool bg_checkpoint = false;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::kCheckpoint || e.a != 1) continue;
    const TraceEvent* parent = FindSpan(events, e.parent_span_id);
    bg_checkpoint = e.tid != main_tid && parent != nullptr &&
                    parent->kind == TraceEvent::Kind::kCheckpoint &&
                    parent->a == 2 && parent->tid == main_tid;
  }
  Check(bg_checkpoint,
        "background snapshot write span links to the writer's schedule span");

  // Flow arrows pair up and resolve to cross-thread edges in the ring.
  std::vector<uint64_t> starts =
      ExtractIds(trace_json, "\"ph\":\"s\",\"id\":");
  std::vector<uint64_t> finishes =
      ExtractIds(trace_json, "\"bp\":\"e\",\"id\":");
  Check(!starts.empty(), "trace carries flow arrows");
  std::sort(starts.begin(), starts.end());
  std::sort(finishes.begin(), finishes.end());
  Check(starts == finishes, "every flow start has a matching finish");
  bool flows_resolve = !starts.empty();
  for (uint64_t id : starts) {
    const TraceEvent* child = FindSpan(events, id);
    const TraceEvent* parent =
        child != nullptr ? FindSpan(events, child->parent_span_id) : nullptr;
    if (child == nullptr || parent == nullptr || parent->tid == child->tid) {
      flows_resolve = false;
      break;
    }
  }
  Check(flows_resolve, "every flow arrow resolves to a cross-thread edge");

  // SQL surface for the same export.
  auto show_trace = db->ExecuteQuery("SHOW TRACE");
  Check(show_trace.ok() && show_trace->rows.size() == 1 &&
            show_trace->rows[0][0].ToString().find("traceEvents") !=
                std::string::npos,
        "SHOW TRACE returns the Chrome trace document");

  if (g_failures > 0) {
    std::fprintf(stderr, "%d trace check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("observability trace smoke passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "trace") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: observability_smoke trace <fresh-dir>\n");
      return 2;
    }
    return RunTraceMode(argv[2]);
  }
  workload::SyntheticSpec spec;
  spec.scaling_factor = 20;
  spec.depth = 4;
  spec.fanout = 2;
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  if (!gen.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 gen.status().ToString().c_str());
    return 2;
  }

  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerStatementTrigger;
  options.insert_strategy = InsertStrategy::kTable;
  auto store = RelationalStore::Create(gen->dtd, options);
  if (!store.ok()) {
    std::fprintf(stderr, "store create failed: %s\n",
                 store.status().ToString().c_str());
    return 2;
  }
  rdb::Database* db = store.value()->db();
  db->set_slow_statement_threshold_us(0);  // capture everything
  Status loaded = store.value()->Load(*gen->doc);
  if (!loaded.ok()) {
    std::fprintf(stderr, "store load failed: %s\n", loaded.ToString().c_str());
    return 2;
  }

  // --- EXPLAIN ANALYZE over the fig. 6 join shape --------------------------
  const std::string join =
      "SELECT n2.id FROM n1, n2 WHERE n2.parentId = n1.id";
  auto plain = db->ExecuteQuery(join);
  if (!plain.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 plain.status().ToString().c_str());
    return 2;
  }
  auto analyzed = db->ExecuteQuery("EXPLAIN ANALYZE " + join);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "EXPLAIN ANALYZE failed: %s\n",
                 analyzed.status().ToString().c_str());
    return 2;
  }
  std::string plan_text;
  for (const rdb::Row& row : analyzed->rows) {
    plan_text += row[0].ToString();
    plan_text += '\n';
  }
  std::printf("%s", plan_text.c_str());
  Check(plan_text.find("actual rows=") != std::string::npos,
        "EXPLAIN ANALYZE reports per-operator actual rows");
  Check(plan_text.find("time_us=") != std::string::npos,
        "EXPLAIN ANALYZE reports per-operator times");
  const std::string exec_line =
      "Execution: rows=" + std::to_string(plain->rows.size());
  Check(plan_text.find(exec_line) != std::string::npos,
        "EXPLAIN ANALYZE row count matches the plain query");
  Check(plan_text.find("time_us=0.000") == std::string::npos,
        "no operator reports a zero time");

  // --- fig. 6 bulk delete + SHOW METRICS -----------------------------------
  Status deleted = store.value()->DeleteWhere("n1", "");
  if (!deleted.ok()) {
    std::fprintf(stderr, "delete failed: %s\n", deleted.ToString().c_str());
    return 2;
  }
  auto metrics = db->ExecuteQuery("SHOW METRICS");
  if (!metrics.ok()) {
    std::fprintf(stderr, "SHOW METRICS failed: %s\n",
                 metrics.status().ToString().c_str());
    return 2;
  }
  Check(MetricValue(*metrics, "stats.statements") > 0,
        "SHOW METRICS carries the stats counters");
  Check(MetricValue(*metrics, "stmt.delete.count") >= 1,
        "DELETE statements recorded a latency sample");
  Check(MetricValue(*metrics, "stmt.delete.p50_ns") > 0,
        "DELETE latency p50 is nonzero");
  Check(MetricValue(*metrics, "stmt.select.p99_ns") > 0,
        "SELECT latency p99 is nonzero");
  Check(MetricValue(*metrics, "db.exec_ns") > 0,
        "cumulative execution time counter is nonzero");
  Check(MetricValue(*metrics, "engine.delete_where.count") >= 1,
        "the engine operation recorded its span");
  Check(MetricValue(*metrics, "engine.delete_where.p50_ns") > 0,
        "the engine span time is nonzero");

  // --- slow log + event ring ----------------------------------------------
  auto slow = db->ExecuteQuery("SHOW SLOW");
  Check(slow.ok() && !slow->rows.empty(),
        "SHOW SLOW captured statements at threshold 0");
  auto events = db->ExecuteQuery("SHOW EVENTS");
  Check(events.ok() && !events->rows.empty(), "SHOW EVENTS returns spans");
  if (events.ok() && !events->rows.empty()) {
    const std::string first = events->rows[0][0].ToString();
    Check(first.find("\"kind\"") != std::string::npos &&
              first.find("\"duration_ns\"") != std::string::npos,
          "events serialize as JSON spans");
  }
  auto health = db->ExecuteQuery("SHOW HEALTH");
  Check(health.ok() && !health->rows.empty(), "SHOW HEALTH returns rows");

  if (g_failures > 0) {
    std::fprintf(stderr, "%d observability check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("observability smoke passed\n");
  return 0;
}
