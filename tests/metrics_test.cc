// Tests for the metrics layer (common/metrics.h): log-linear histogram
// bucket math, percentile interpolation, merge, the trace-event ring, and
// registry export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace xupd {
namespace {

// --- histogram bucket math --------------------------------------------------

TEST(HistogramTest, SmallValuesGetExactBuckets) {
  // Values below 2^kSubBits land in their own unit-width bucket.
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v)) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v) << v;
    EXPECT_EQ(Histogram::BucketWidth(Histogram::BucketIndex(v)), 1u) << v;
  }
}

TEST(HistogramTest, OctaveBoundariesAreBucketStarts) {
  // Each power-of-two boundary starts a fresh bucket whose lower bound is
  // the boundary itself; widths double per octave.
  const int b32 = Histogram::BucketIndex(32);
  EXPECT_EQ(Histogram::BucketLowerBound(b32), 32u);
  EXPECT_EQ(Histogram::BucketWidth(b32), 2u);
  // 32 and 33 share a bucket (width 2); 34 is the next one.
  EXPECT_EQ(Histogram::BucketIndex(33), b32);
  EXPECT_EQ(Histogram::BucketIndex(34), b32 + 1);

  const int b1024 = Histogram::BucketIndex(1024);
  EXPECT_EQ(Histogram::BucketLowerBound(b1024), 1024u);
  EXPECT_EQ(Histogram::BucketWidth(b1024), 64u);
}

TEST(HistogramTest, BucketIndexIsMonotonic) {
  int prev = Histogram::BucketIndex(0);
  for (uint64_t v = 1; v < 100000; v = v * 2 + 1) {
    int b = Histogram::BucketIndex(v);
    EXPECT_GE(b, prev) << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << v;
    EXPECT_GT(Histogram::BucketLowerBound(b) + Histogram::BucketWidth(b), v)
        << v;
    prev = b;
  }
}

TEST(HistogramTest, HugeValuesSaturateInsteadOfOverflowing) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  // The percentile comes back from the top bucket without wrapping.
  EXPECT_GT(h.Percentile(50), 0.0);
}

// --- recording and percentiles ----------------------------------------------

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
}

TEST(HistogramTest, SingleValueClampsAllPercentiles) {
  Histogram h;
  h.Record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 777u);
  EXPECT_EQ(h.max(), 777u);
  // Interpolation inside the bucket is clamped to the observed range, so a
  // single sample reports itself at every percentile.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 777.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 777.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 777.0);
}

TEST(HistogramTest, PercentilesOfUniformSmallRange) {
  // 0..15 once each: every value has its own exact bucket, so percentiles
  // are sharp up to intra-bucket interpolation.
  Histogram h;
  for (uint64_t v = 0; v <= 15; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.sum(), 120u);
  double p50 = h.Percentile(50);
  EXPECT_GE(p50, 7.0);
  EXPECT_LE(p50, 9.0);
  EXPECT_GE(h.Percentile(100), 15.0);
  EXPECT_LE(h.Percentile(1), 1.0);
}

TEST(HistogramTest, PercentileOrderingHolds) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  double p50 = h.Percentile(50);
  double p95 = h.Percentile(95);
  double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-linear buckets bound the relative error: p50 of 1..10000 is near
  // 5000, and a bucket at that magnitude is 512 wide.
  EXPECT_NEAR(p50, 5000.0, 600.0);
  EXPECT_NEAR(p99, 9900.0, 1200.0);
}

TEST(HistogramTest, MergeCombinesCountsAndBounds) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 100000u);
  EXPECT_EQ(a.sum(), 100030u);
  EXPECT_GT(a.Percentile(99), 1000.0);  // the merged tail is visible
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SnapshotMatchesAccessors) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 10);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, h.count());
  EXPECT_EQ(s.sum, h.sum());
  EXPECT_EQ(s.min, h.min());
  EXPECT_EQ(s.max, h.max());
  EXPECT_DOUBLE_EQ(s.p50, h.Percentile(50));
  EXPECT_DOUBLE_EQ(s.p99, h.Percentile(99));
}

// --- trace-event ring -------------------------------------------------------

TEST(EventLogTest, RingOverwritesOldestAndCountsDrops) {
  EventLog log(4);
  for (uint64_t i = 0; i < 6; ++i) {
    log.Record({TraceEvent::Kind::kStatement, /*start_ns=*/i * 100,
                /*duration_ns=*/i, /*a=*/i, /*b=*/0, /*detail=*/nullptr});
  }
  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  // Oldest two (a=0, a=1) were overwritten; order is oldest-first.
  EXPECT_EQ(events[0].a, 2u);
  EXPECT_EQ(events[3].a, 5u);
}

TEST(EventLogTest, JsonLinesCarryKindAndTiming) {
  EventLog log(8);
  log.Record({TraceEvent::Kind::kFsync, 1000, 250, 1, 2, nullptr});
  std::vector<std::string> lines = log.ToJsonLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\":\"fsync\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"duration_ns\":250"), std::string::npos);
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistogramsRoundTrip) {
  MetricsRegistry reg;
  std::atomic<uint64_t>* c = reg.Counter("test.counter");
  *c += 41;
  *reg.Counter("test.counter") += 1;  // same slot on re-lookup
  EXPECT_EQ(*c, 42u);
  std::atomic<int64_t>* g = reg.Gauge("test.gauge");
  *g = -7;
  Histogram* h = reg.GetHistogram("test.hist");
  h->Record(123);
  EXPECT_EQ(reg.FindHistogram("test.hist"), h);
  EXPECT_EQ(reg.FindHistogram("no.such"), nullptr);
}

TEST(MetricsRegistryTest, ExportsContainRegisteredNames) {
  MetricsRegistry reg;
  *reg.Counter("export.counter") = 5;
  reg.GetHistogram("export.hist")->Record(1000);
  std::string text = reg.ExportText();
  EXPECT_NE(text.find("export.counter"), std::string::npos) << text;
  EXPECT_NE(text.find("export.hist"), std::string::npos) << text;
  std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"export.counter\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"export.hist\""), std::string::npos) << json;
  // The JSON export is at least structurally balanced.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- concurrency ------------------------------------------------------------

TEST(MetricsConcurrencyTest, ParallelRecordingLosesNothing) {
  // Histograms, counters and gauges are recorded from the writer, the
  // group-commit flusher, the checkpointer and reader sessions at once; no
  // increment may be lost and min/max must cover every recorded value.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("conc.hist");
  std::atomic<uint64_t>* c = reg.Counter("conc.counter");
  std::atomic<int64_t>* g = reg.Gauge("conc.gauge");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        h->Record(i + static_cast<uint64_t>(t));
        c->fetch_add(1, std::memory_order_relaxed);
        g->fetch_add(t % 2 == 0 ? 1 : -1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), kPerThread + kThreads - 1);
  EXPECT_EQ(c->load(), kThreads * kPerThread);
  EXPECT_EQ(g->load(), 0);  // two up-counting threads, two down-counting
  // A snapshot taken after the join is internally consistent.
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_GE(s.max, s.min);
}

TEST(MetricsConcurrencyTest, RegistryLookupsRaceWithRecording) {
  // Re-looking up named slots while other threads hammer them must neither
  // invalidate pointers nor drop counts (the registry hands out stable
  // pointers guarded by an internal mutex).
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.Counter("race.counter")->fetch_add(1, std::memory_order_relaxed);
        reg.GetHistogram("race.hist")->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.Counter("race.counter")->load(),
            static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(reg.GetHistogram("race.hist")->count(),
            static_cast<uint64_t>(kThreads * kIters));
}

}  // namespace
}  // namespace xupd
