// Physical operators: pull-based (Volcano-style) iterator nodes over a
// PlannedCore. The join pipeline streams row pointers through a shared slot
// array — one slot per relation — instead of materializing the joined
// cross-product, and every predicate evaluates over plan-time-resolved
// ordinals. Nodes are built fresh per execution (they are tiny); the plan
// itself stays immutable and shareable.
#ifndef XUPD_RDB_EXEC_NODE_H_
#define XUPD_RDB_EXEC_NODE_H_

#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "rdb/epoch.h"
#include "rdb/governance.h"
#include "rdb/planner.h"
#include "rdb/result.h"
#include "rdb/stats.h"

namespace xupd::rdb {

class Database;

/// Per-statement execution context threaded through every operator.
struct ExecContext {
  /// Memoized IN-subquery result sets, keyed by planned-subquery identity.
  /// Owned by the Executor so the memo spans a whole top-level statement
  /// (including its trigger cascade), matching the seed interpreter.
  using SubqueryMemo =
      std::map<const PlannedSelect*,
               std::unique_ptr<std::unordered_set<Value, ValueHash>>>;

  Database* db = nullptr;
  /// Event-count sink for this execution: &db->stats() on the writer
  /// thread, the session's private Stats on a ReaderSession (the shared
  /// Stats would otherwise be a cross-thread data race magnet and a
  /// cache-line battleground).
  Stats* stats = nullptr;
  /// MVCC read epoch. kLatestEpoch (writer thread) scans the live in-memory
  /// state via the liveness bitmap; a pinned epoch (reader sessions) routes
  /// every table scan through Table::SnapshotReadRow for a consistent
  /// point-in-time view.
  uint64_t read_epoch = kLatestEpoch;
  /// Values bound to ? placeholders (null = none bound).
  const std::vector<Value>* params = nullptr;
  /// Trigger OLD row (null outside a row-trigger body).
  const Row* old_row = nullptr;
  /// Materialized CTE values for the executing planned statement, indexed
  /// by plan slot. Sized from PlannedStatement::cte_slot_count.
  std::vector<std::unique_ptr<ResultSet>>* cte_values = nullptr;
  SubqueryMemo* subquery_memo = nullptr;
  /// EXPLAIN ANALYZE sink (null in normal execution — the hot path pays one
  /// pointer test). Filled by the pipeline for the select identified by
  /// `analyze_select`, and by CollectMatchingRowids for mutations.
  AnalyzeStats* analyze = nullptr;
  /// Identity of the root PlannedSelect being analyzed; CTE bodies and
  /// IN-subqueries execute other PlannedSelects and stay uninstrumented.
  const void* analyze_select = nullptr;

  // --- Resource governance (see rdb/governance.h) -------------------------
  /// Absolute statement deadline (MonotonicNanos instant); 0 = none.
  uint64_t deadline_ns = 0;
  /// External cancel flag (a CancelToken's state); null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// Memory budgets polled alongside the deadline; null = unaccounted.
  MemoryAccountant* mem = nullptr;
  /// Test hook: counts down once per operator pull; reaching zero injects a
  /// kCancelled failure at exactly that pull (null in production).
  std::atomic<int64_t>* cancel_at_pull = nullptr;
  /// Amortization counter for TickGovernance (per-statement, not shared).
  uint32_t governance_tick = 0;

  /// Every pull loop calls this; every kGovernanceCheckInterval-th pull (or
  /// every pull while the injection hook is armed) runs the full poll:
  /// deadline, cancel flag, hard memory budget, WAL pending watermark.
  static constexpr uint32_t kGovernanceCheckInterval = 64;
  Status TickGovernance() {
    if (cancel_at_pull != nullptr &&
        cancel_at_pull->fetch_sub(1, std::memory_order_relaxed) <= 1) {
      return Status::Cancelled("cancellation injected at operator pull");
    }
    if ((++governance_tick & (kGovernanceCheckInterval - 1)) != 0) {
      return Status::OK();
    }
    return PollGovernance();
  }
  /// The unamortized check (also called per statement by the executor).
  Status PollGovernance() const;
};

/// Pull-based operator: Open resets state, Next advances to the next tuple
/// (writing row pointers into the shared slot array) and reports whether one
/// is available.
class ExecNode {
 public:
  virtual ~ExecNode() = default;
  virtual Status Open(ExecContext& ctx) = 0;
  virtual Result<bool> Next(ExecContext& ctx) = 0;
};

/// Evaluates a bound expression against the current tuple. `slots` holds
/// one pointer per relation to the current row's first column — rows are
/// contiguous Value slots in the table slab (empty for row-free
/// expressions).
Result<Value> EvalBound(const BoundExpr& expr,
                        const std::vector<const Value*>& slots,
                        ExecContext& ctx);
/// Boolean evaluation with SQL three-valued logic collapsed to true /
/// not-true (NULL counts as not-true).
Result<bool> EvalBoolBound(const BoundExpr& expr,
                           const std::vector<const Value*>& slots,
                           ExecContext& ctx);

/// Coerces `v` to a column type (INTEGER parse or textual rendering).
Result<Value> CoerceValue(Value v, ColumnType type);

/// Builds the iterator tree for one core; current-tuple pointers stream
/// through `slots` (must be sized to the relation count and outlive the
/// tree). With `core_stats` (EXPLAIN ANALYZE), each access step is wrapped
/// in a timing node filling core_stats->rels. Exposed for tests; most
/// callers want ExecutePlannedSelect.
std::unique_ptr<ExecNode> BuildCorePipeline(
    const PlannedCore& core, std::vector<const Value*>* slots,
    AnalyzeStats::Core* core_stats = nullptr);

/// Runs a planned SELECT to completion: materializes CTEs into their
/// context slots, streams each core through its pipeline (project or
/// aggregate), concatenates UNION ALL cores, and applies ORDER BY.
Result<ResultSet> ExecutePlannedSelect(const PlannedSelect& plan,
                                       ExecContext& ctx);

/// Evaluates (and memoizes) the hash set of first-column values a planned
/// IN-subquery produces.
Result<const std::unordered_set<Value, ValueHash>*> SubquerySet(
    const PlannedSelect& sub, ExecContext& ctx);

/// Rowids of the mutation's target table matching its access path +
/// residual filters, in ascending rowid order (the order DELETE/UPDATE
/// apply their changes in).
Result<std::vector<size_t>> CollectMatchingRowids(const PlannedMutation& m,
                                                  ExecContext& ctx);

}  // namespace xupd::rdb

#endif  // XUPD_RDB_EXEC_NODE_H_
