// Figure 7: delete performance, random workload (10 random subtrees, one
// SQL operation per subtree), fixed fanout=1 depth=8, sf 100..800.
// Expected shape: per-tuple is flat in sf; per-stm grows with document size
// (orphan sweeps scan whole child relations).
#include <cstdio>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  bench::PrintHeader(
      "Figure 7: delete, random workload (10 subtrees), fanout=1 depth=8",
      "sf");
  const DeleteStrategy methods[] = {
      DeleteStrategy::kAsr, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kCascade};
  for (int sf : {100, 200, 400, 800}) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = sf;
    spec.depth = 8;
    spec.fanout = 1;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    // Loads are deterministic, so target ids are stable across fresh stores;
    // pick them once, untimed.
    std::vector<int64_t> picked;
    {
      auto scratch = bench::FreshStore(*gen, DeleteStrategy::kCascade,
                                       InsertStrategy::kTable);
      auto ids = scratch->SelectIds("n1", "");
      if (!ids.ok()) return 1;
      picked = bench::PickRandomIds(*ids, 10, /*seed=*/7);
    }
    for (DeleteStrategy method : methods) {
      double t = MeasureOnFreshStores(
          *gen, method, InsertStrategy::kTable,
          [&picked](engine::RelationalStore* store) {
            Status s = store->DeleteByIds("n1", picked);
            if (!s.ok()) {
              std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
              std::abort();
            }
          },
          {runs});
      bench::PrintPoint(ToString(method), sf, t);
    }
  }
  return 0;
}
