// SQL execution engine. One Executor instance runs one top-level statement
// (plus any trigger cascade it sets off).
//
// Join strategy: FROM tables bind left to right; each new table is joined by
// hash-index lookup when an equi-join conjunct with an indexed column is
// available, else by filtered scan. IN (SELECT ...) subqueries are evaluated
// once per statement and memoized as hash sets.
#ifndef XUPD_RDB_SQL_EXECUTOR_H_
#define XUPD_RDB_SQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "rdb/database.h"
#include "rdb/result.h"
#include "rdb/sql_ast.h"

namespace xupd::rdb {

class Executor {
 public:
  /// `params` (optional) are the values bound to the statement's ?
  /// placeholders, positionally; they must outlive the Run call.
  explicit Executor(Database* db, const std::vector<Value>* params = nullptr)
      : db_(db), params_(params) {}

  /// Executes any statement; SELECTs return their ResultSet, DML returns an
  /// empty set.
  Result<ResultSet> Run(const sql::Statement& stmt);

 private:
  struct Relation {
    std::string alias;
    const Table* table = nullptr;        // catalog table
    const ResultSet* mat = nullptr;      // materialized CTE
    size_t NumColumns() const;
    int ColumnIndex(std::string_view name) const;
    std::string ColumnName(size_t i) const;
  };

  /// A tuple in an intermediate join result: one row pointer per relation.
  using JoinedRow = std::vector<const Row*>;

  struct EvalContext {
    const std::vector<Relation>* relations = nullptr;
    const JoinedRow* row = nullptr;      // size = #bound relations
    size_t bound = 0;                    // how many relations are bound
    const Row* old_row = nullptr;        // trigger OLD row
    const TableSchema* old_schema = nullptr;
  };

  Result<ResultSet> RunSelect(const sql::SelectStmt& stmt);
  Result<ResultSet> RunSelectCore(const sql::SelectCore& core);
  Result<ResultSet> RunCreateTable(const sql::CreateTableStmt& stmt);
  Result<ResultSet> RunCreateIndex(const sql::CreateIndexStmt& stmt);
  Result<ResultSet> RunCreateTrigger(const sql::CreateTriggerStmt& stmt);
  Result<ResultSet> RunDrop(const sql::DropStmt& stmt);
  Result<ResultSet> RunInsert(const sql::InsertStmt& stmt);
  Result<ResultSet> RunDelete(const sql::DeleteStmt& stmt);
  Result<ResultSet> RunUpdate(const sql::UpdateStmt& stmt);

  /// Fires AFTER DELETE triggers for `table` given the deleted rows.
  Status FireDeleteTriggers(const Table* table,
                            const std::vector<Row>& deleted_rows);

  Result<Value> Eval(const sql::Expr& expr, const EvalContext& ctx);
  /// Boolean evaluation with SQL three-valued logic collapsed to
  /// true / not-true (NULL counts as not-true).
  Result<bool> EvalBool(const sql::Expr& expr, const EvalContext& ctx);

  /// Finds rowids of `table` matching `where` (index-assisted), with
  /// OLD-row context for trigger bodies.
  Result<std::vector<size_t>> SelectRowids(const Table* table,
                                           const sql::Expr* where,
                                           const EvalContext& outer);

  /// Resolves [alias.]column to (relation ordinal, column ordinal).
  Result<std::pair<size_t, size_t>> ResolveColumn(
      const std::vector<Relation>& relations, size_t bound,
      const std::string& table, const std::string& column) const;

  Result<Relation> LookupRelation(const std::string& name,
                                  const std::string& alias) const;

  const std::unordered_set<Value, ValueHash>* SubquerySet(const sql::Expr& e);

  Database* db_;
  /// Parameter values for ? placeholders (null = none bound).
  const std::vector<Value>* params_ = nullptr;
  /// CTEs visible while executing the current SELECT (name -> result).
  std::map<std::string, std::unique_ptr<ResultSet>, std::less<>> ctes_;
  /// Memoized IN-subquery sets, keyed by Expr identity.
  std::map<const sql::Expr*, std::unique_ptr<std::unordered_set<Value, ValueHash>>>
      subquery_sets_;
  /// OLD-row context while running trigger bodies.
  const Row* trigger_old_row_ = nullptr;
  const TableSchema* trigger_old_schema_ = nullptr;
  int trigger_depth_ = 0;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_SQL_EXECUTOR_H_
