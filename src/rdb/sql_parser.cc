#include "rdb/sql_parser.h"

#include <cctype>

#include "common/str_util.h"

namespace xupd::rdb::sql {

namespace {

enum class Tok {
  kEnd,
  kIdent,
  kString,
  kNumber,
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  kSemicolon,
  kQuestion,
};

struct Token {
  Tok type = Tok::kEnd;
  std::string text;
  int64_t number = 0;
  int line = 1;
};

class SqlLexer {
 public:
  explicit SqlLexer(std::string_view text) : text_(text) {}

  const Token& Peek() {
    if (!has_peek_) {
      peek_ = Scan();
      has_peek_ = true;
    }
    return peek_;
  }
  Token Next() {
    if (has_peek_) {
      has_peek_ = false;
      return peek_;
    }
    return Scan();
  }
  bool PeekKw(std::string_view kw) {
    const Token& t = Peek();
    return t.type == Tok::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool ConsumeKw(std::string_view kw) {
    if (PeekKw(kw)) {
      Next();
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) {
    return Status::ParseError("SQL line " + std::to_string(Peek().line) + ": " +
                              msg + " (near '" + Peek().text + "')");
  }

 private:
  Token Scan() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;
    char c = text_[pos_];
    auto two = [&](char next) {
      return pos_ + 1 < text_.size() && text_[pos_ + 1] == next;
    };
    switch (c) {
      case ',':
        ++pos_;
        t.type = Tok::kComma;
        return t;
      case '.':
        ++pos_;
        t.type = Tok::kDot;
        return t;
      case '(':
        ++pos_;
        t.type = Tok::kLParen;
        return t;
      case ')':
        ++pos_;
        t.type = Tok::kRParen;
        return t;
      case '*':
        ++pos_;
        t.type = Tok::kStar;
        return t;
      case ';':
        ++pos_;
        t.type = Tok::kSemicolon;
        return t;
      case '?':
        ++pos_;
        t.type = Tok::kQuestion;
        return t;
      case '+':
        ++pos_;
        t.type = Tok::kPlus;
        return t;
      case '-':
        ++pos_;
        t.type = Tok::kMinus;
        return t;
      case '/':
        ++pos_;
        t.type = Tok::kSlash;
        return t;
      case '=':
        ++pos_;
        t.type = Tok::kEq;
        return t;
      case '<':
        if (two('=')) {
          pos_ += 2;
          t.type = Tok::kLe;
        } else if (two('>')) {
          pos_ += 2;
          t.type = Tok::kNe;
        } else {
          ++pos_;
          t.type = Tok::kLt;
        }
        return t;
      case '>':
        if (two('=')) {
          pos_ += 2;
          t.type = Tok::kGe;
        } else {
          ++pos_;
          t.type = Tok::kGt;
        }
        return t;
      case '!':
        if (two('=')) {
          pos_ += 2;
          t.type = Tok::kNe;
          return t;
        }
        ++pos_;
        t.type = Tok::kIdent;
        t.text = "!";
        return t;
      case '\'': {
        ++pos_;
        std::string value;
        while (pos_ < text_.size()) {
          if (text_[pos_] == '\'') {
            if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
              value += '\'';
              pos_ += 2;
              continue;
            }
            break;
          }
          if (text_[pos_] == '\n') ++line_;
          value += text_[pos_];
          ++pos_;
        }
        if (pos_ < text_.size()) ++pos_;  // closing quote
        t.type = Tok::kString;
        t.text = std::move(value);
        return t;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        digits += text_[pos_];
        ++pos_;
      }
      t.type = Tok::kNumber;
      ParseInt64(digits, &t.number);
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ident += text_[pos_];
        ++pos_;
      }
      t.type = Tok::kIdent;
      t.text = std::move(ident);
      return t;
    }
    ++pos_;
    t.type = Tok::kIdent;
    t.text = std::string(1, c);
    return t;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  bool has_peek_ = false;
  Token peek_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  Result<Statement> ParseStatement() {
    bool explain = lex_.ConsumeKw("explain");
    bool analyze = explain && lex_.ConsumeKw("analyze");
    XUPD_ASSIGN_OR_RETURN(Statement stmt, ParseBareStatement());
    while (lex_.Peek().type == Tok::kSemicolon) lex_.Next();
    if (lex_.Peek().type != Tok::kEnd) {
      return lex_.Error("trailing input after statement");
    }
    if (explain) {
      Statement wrapper;
      wrapper.kind = Statement::Kind::kExplain;
      wrapper.explain = std::make_shared<Statement>(std::move(stmt));
      wrapper.explain_analyze = analyze;
      wrapper.param_count = param_count_;
      return wrapper;
    }
    stmt.param_count = param_count_;
    return stmt;
  }

  Result<Statement> ParseBareStatement() {
    Statement stmt;
    if (lex_.PeekKw("select") || lex_.PeekKw("with")) {
      stmt.kind = Statement::Kind::kSelect;
      auto select = ParseSelect();
      if (!select.ok()) return select.status();
      stmt.select = std::move(select).value();
    } else if (lex_.ConsumeKw("create")) {
      if (lex_.ConsumeKw("table")) {
        stmt.kind = Statement::Kind::kCreateTable;
        auto ct = ParseCreateTable();
        if (!ct.ok()) return ct.status();
        stmt.create_table = std::move(ct).value();
      } else if (lex_.ConsumeKw("index")) {
        stmt.kind = Statement::Kind::kCreateIndex;
        auto ci = ParseCreateIndex();
        if (!ci.ok()) return ci.status();
        stmt.create_index = std::move(ci).value();
      } else if (lex_.ConsumeKw("trigger")) {
        stmt.kind = Statement::Kind::kCreateTrigger;
        auto ct = ParseCreateTrigger();
        if (!ct.ok()) return ct.status();
        stmt.create_trigger = std::move(ct).value();
      } else {
        return lex_.Error("expected TABLE, INDEX or TRIGGER after CREATE");
      }
    } else if (lex_.ConsumeKw("drop")) {
      stmt.kind = Statement::Kind::kDrop;
      auto drop = ParseDrop();
      if (!drop.ok()) return drop.status();
      stmt.drop = std::move(drop).value();
    } else if (lex_.ConsumeKw("insert")) {
      stmt.kind = Statement::Kind::kInsert;
      auto ins = ParseInsert();
      if (!ins.ok()) return ins.status();
      stmt.insert = std::move(ins).value();
    } else if (lex_.ConsumeKw("delete")) {
      stmt.kind = Statement::Kind::kDelete;
      auto del = ParseDelete();
      if (!del.ok()) return del.status();
      stmt.del = std::move(del).value();
    } else if (lex_.ConsumeKw("update")) {
      stmt.kind = Statement::Kind::kUpdate;
      auto upd = ParseUpdate();
      if (!upd.ok()) return upd.status();
      stmt.update = std::move(upd).value();
    } else if (lex_.ConsumeKw("begin")) {
      stmt.kind = Statement::Kind::kBegin;
      ConsumeTxnNoiseWord();
    } else if (lex_.ConsumeKw("commit")) {
      stmt.kind = Statement::Kind::kCommit;
      ConsumeTxnNoiseWord();
    } else if (lex_.ConsumeKw("rollback")) {
      stmt.kind = Statement::Kind::kRollback;
      ConsumeTxnNoiseWord();
      if (lex_.ConsumeKw("to")) {
        (void)lex_.ConsumeKw("savepoint");
        XUPD_ASSIGN_OR_RETURN(stmt.txn_name, ExpectIdent("savepoint name"));
      }
    } else if (lex_.ConsumeKw("savepoint")) {
      stmt.kind = Statement::Kind::kSavepoint;
      XUPD_ASSIGN_OR_RETURN(stmt.txn_name, ExpectIdent("savepoint name"));
    } else if (lex_.ConsumeKw("release")) {
      stmt.kind = Statement::Kind::kRelease;
      (void)lex_.ConsumeKw("savepoint");
      XUPD_ASSIGN_OR_RETURN(stmt.txn_name, ExpectIdent("savepoint name"));
    } else if (lex_.ConsumeKw("check")) {
      if (!lex_.ConsumeKw("integrity")) {
        return lex_.Error("expected INTEGRITY after CHECK");
      }
      stmt.kind = Statement::Kind::kCheckIntegrity;
    } else if (lex_.ConsumeKw("set")) {
      stmt.kind = Statement::Kind::kSet;
      XUPD_ASSIGN_OR_RETURN(stmt.set_name, ExpectIdent("setting name"));
      (void)(lex_.Peek().type == Tok::kEq && (lex_.Next(), true));
      bool negative = lex_.Peek().type == Tok::kMinus && (lex_.Next(), true);
      if (lex_.Peek().type != Tok::kNumber) {
        return lex_.Error("expected an integer value after SET " +
                          stmt.set_name);
      }
      stmt.set_value = lex_.Next().number;
      if (negative) stmt.set_value = -stmt.set_value;
    } else if (lex_.ConsumeKw("show")) {
      stmt.kind = Statement::Kind::kShow;
      if (lex_.ConsumeKw("metrics")) {
        stmt.show = Statement::ShowWhat::kMetrics;
      } else if (lex_.ConsumeKw("health")) {
        stmt.show = Statement::ShowWhat::kHealth;
      } else if (lex_.ConsumeKw("slow")) {
        (void)lex_.ConsumeKw("statements");
        stmt.show = Statement::ShowWhat::kSlow;
      } else if (lex_.ConsumeKw("events")) {
        stmt.show = Statement::ShowWhat::kEvents;
      } else if (lex_.ConsumeKw("table")) {
        if (!lex_.ConsumeKw("stats")) {
          return lex_.Error("expected STATS after SHOW TABLE");
        }
        stmt.show = Statement::ShowWhat::kTableStats;
      } else if (lex_.ConsumeKw("trace")) {
        stmt.show = Statement::ShowWhat::kTrace;
      } else {
        return lex_.Error(
            "expected METRICS, HEALTH, SLOW, EVENTS, TABLE STATS or TRACE "
            "after SHOW");
      }
    } else {
      return lex_.Error("expected a SQL statement");
    }
    return stmt;
  }

  /// For trigger bodies: parse one statement terminated by ';'.
  Result<Statement> ParseInnerStatement() {
    Statement stmt;
    if (lex_.PeekKw("select") || lex_.PeekKw("with")) {
      stmt.kind = Statement::Kind::kSelect;
      auto select = ParseSelect();
      if (!select.ok()) return select.status();
      stmt.select = std::move(select).value();
    } else if (lex_.ConsumeKw("insert")) {
      stmt.kind = Statement::Kind::kInsert;
      auto ins = ParseInsert();
      if (!ins.ok()) return ins.status();
      stmt.insert = std::move(ins).value();
    } else if (lex_.ConsumeKw("delete")) {
      stmt.kind = Statement::Kind::kDelete;
      auto del = ParseDelete();
      if (!del.ok()) return del.status();
      stmt.del = std::move(del).value();
    } else if (lex_.ConsumeKw("update")) {
      stmt.kind = Statement::Kind::kUpdate;
      auto upd = ParseUpdate();
      if (!upd.ok()) return upd.status();
      stmt.update = std::move(upd).value();
    } else {
      return lex_.Error("expected DML statement in trigger body");
    }
    return stmt;
  }

  SqlLexer& lex() { return lex_; }

 private:
  /// The optional TRANSACTION / WORK after BEGIN, COMMIT and ROLLBACK.
  void ConsumeTxnNoiseWord() {
    if (!lex_.ConsumeKw("transaction")) (void)lex_.ConsumeKw("work");
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (lex_.Peek().type != Tok::kIdent) {
      return lex_.Error(std::string("expected ") + what);
    }
    return lex_.Next().text;
  }
  Status Expect(Tok type, const char* what) {
    if (lex_.Peek().type != type) {
      return lex_.Error(std::string("expected ") + what);
    }
    lex_.Next();
    return Status::OK();
  }

  Result<CreateTableStmt> ParseCreateTable() {
    CreateTableStmt stmt;
    XUPD_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("table name"));
    XUPD_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    while (true) {
      ColumnDef col;
      XUPD_ASSIGN_OR_RETURN(col.name, ExpectIdent("column name"));
      auto type = ExpectIdent("column type");
      if (!type.ok()) return type.status();
      std::string type_name = AsciiToUpper(type.value());
      if (type_name == "INTEGER" || type_name == "INT" || type_name == "BIGINT") {
        col.type = ColumnType::kInteger;
      } else if (type_name == "VARCHAR" || type_name == "TEXT" ||
                 type_name == "CHAR") {
        col.type = ColumnType::kVarchar;
        if (lex_.Peek().type == Tok::kLParen) {  // VARCHAR(n)
          lex_.Next();
          if (lex_.Peek().type == Tok::kNumber) lex_.Next();
          XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        }
      } else {
        return lex_.Error("unsupported column type " + type_name);
      }
      // Ignore PRIMARY KEY / NOT NULL decorations.
      while (lex_.ConsumeKw("primary") || lex_.ConsumeKw("key") ||
             lex_.ConsumeKw("not") || lex_.ConsumeKw("null")) {
      }
      stmt.columns.push_back(std::move(col));
      if (lex_.Peek().type == Tok::kComma) {
        lex_.Next();
        continue;
      }
      break;
    }
    XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    return stmt;
  }

  Result<CreateIndexStmt> ParseCreateIndex() {
    CreateIndexStmt stmt;
    XUPD_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("index name"));
    if (!lex_.ConsumeKw("on")) return lex_.Error("expected ON");
    XUPD_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    XUPD_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    XUPD_ASSIGN_OR_RETURN(stmt.column, ExpectIdent("column name"));
    XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    return stmt;
  }

  Result<CreateTriggerStmt> ParseCreateTrigger() {
    CreateTriggerStmt stmt;
    XUPD_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("trigger name"));
    if (!lex_.ConsumeKw("after")) return lex_.Error("expected AFTER");
    if (!lex_.ConsumeKw("delete")) {
      return lex_.Error("only AFTER DELETE triggers are supported");
    }
    if (!lex_.ConsumeKw("on")) return lex_.Error("expected ON");
    XUPD_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (!lex_.ConsumeKw("for")) return lex_.Error("expected FOR EACH");
    if (!lex_.ConsumeKw("each")) return lex_.Error("expected EACH");
    if (lex_.ConsumeKw("row")) {
      stmt.granularity = TriggerGranularity::kRow;
    } else if (lex_.ConsumeKw("statement")) {
      stmt.granularity = TriggerGranularity::kStatement;
    } else {
      return lex_.Error("expected ROW or STATEMENT");
    }
    if (!lex_.ConsumeKw("begin")) return lex_.Error("expected BEGIN");
    while (!lex_.PeekKw("end")) {
      auto inner = ParseInnerStatement();
      if (!inner.ok()) return inner.status();
      stmt.body.push_back(
          std::make_shared<Statement>(std::move(inner).value()));
      while (lex_.Peek().type == Tok::kSemicolon) lex_.Next();
    }
    lex_.Next();  // END
    return stmt;
  }

  Result<DropStmt> ParseDrop() {
    DropStmt stmt;
    if (lex_.ConsumeKw("table")) {
      stmt.what = DropStmt::What::kTable;
    } else if (lex_.ConsumeKw("index")) {
      stmt.what = DropStmt::What::kIndex;
    } else if (lex_.ConsumeKw("trigger")) {
      stmt.what = DropStmt::What::kTrigger;
    } else {
      return lex_.Error("expected TABLE, INDEX or TRIGGER");
    }
    XUPD_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("name"));
    if (stmt.what == DropStmt::What::kIndex && lex_.ConsumeKw("on")) {
      XUPD_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    }
    return stmt;
  }

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    if (!lex_.ConsumeKw("into")) return lex_.Error("expected INTO");
    XUPD_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (lex_.Peek().type == Tok::kLParen) {
      lex_.Next();
      while (true) {
        auto col = ExpectIdent("column name");
        if (!col.ok()) return col.status();
        stmt.columns.push_back(col.value());
        if (lex_.Peek().type == Tok::kComma) {
          lex_.Next();
          continue;
        }
        break;
      }
      XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    }
    if (lex_.ConsumeKw("values")) {
      while (true) {
        XUPD_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
        std::vector<Expr> row;
        while (true) {
          auto e = ParseExpr();
          if (!e.ok()) return e.status();
          row.push_back(std::move(e).value());
          if (lex_.Peek().type == Tok::kComma) {
            lex_.Next();
            continue;
          }
          break;
        }
        XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        stmt.rows.push_back(std::move(row));
        if (lex_.Peek().type == Tok::kComma) {
          lex_.Next();
          continue;
        }
        break;
      }
      return stmt;
    }
    if (lex_.PeekKw("select") || lex_.PeekKw("with")) {
      auto select = ParseSelect();
      if (!select.ok()) return select.status();
      stmt.select = std::make_shared<SelectStmt>(std::move(select).value());
      return stmt;
    }
    return lex_.Error("expected VALUES or SELECT in INSERT");
  }

  Result<DeleteStmt> ParseDelete() {
    DeleteStmt stmt;
    if (!lex_.ConsumeKw("from")) return lex_.Error("expected FROM");
    XUPD_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (lex_.ConsumeKw("where")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.where = std::move(e).value();
    }
    return stmt;
  }

  Result<UpdateStmt> ParseUpdate() {
    UpdateStmt stmt;
    XUPD_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (!lex_.ConsumeKw("set")) return lex_.Error("expected SET");
    while (true) {
      auto col = ExpectIdent("column name");
      if (!col.ok()) return col.status();
      XUPD_RETURN_IF_ERROR(Expect(Tok::kEq, "'='"));
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.sets.emplace_back(col.value(), std::move(e).value());
      if (lex_.Peek().type == Tok::kComma) {
        lex_.Next();
        continue;
      }
      break;
    }
    if (lex_.ConsumeKw("where")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.where = std::move(e).value();
    }
    return stmt;
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    if (lex_.ConsumeKw("with")) {
      while (true) {
        SelectStmt::Cte cte;
        XUPD_ASSIGN_OR_RETURN(cte.name, ExpectIdent("CTE name"));
        if (lex_.Peek().type == Tok::kLParen) {
          lex_.Next();
          while (true) {
            auto col = ExpectIdent("CTE column");
            if (!col.ok()) return col.status();
            cte.columns.push_back(col.value());
            if (lex_.Peek().type == Tok::kComma) {
              lex_.Next();
              continue;
            }
            break;
          }
          XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        }
        if (!lex_.ConsumeKw("as")) return lex_.Error("expected AS");
        XUPD_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
        auto inner = ParseSelect();
        if (!inner.ok()) return inner.status();
        cte.query = std::make_shared<SelectStmt>(std::move(inner).value());
        XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        stmt.ctes.push_back(std::move(cte));
        if (lex_.Peek().type == Tok::kComma) {
          lex_.Next();
          continue;
        }
        break;
      }
    }
    // One or more cores joined by UNION ALL. Each core may be parenthesized.
    while (true) {
      bool parens = false;
      if (lex_.Peek().type == Tok::kLParen) {
        lex_.Next();
        parens = true;
      }
      auto core = ParseSelectCore();
      if (!core.ok()) return core.status();
      stmt.cores.push_back(std::move(core).value());
      if (parens) XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      if (lex_.ConsumeKw("union")) {
        if (!lex_.ConsumeKw("all")) {
          return lex_.Error("only UNION ALL is supported");
        }
        continue;
      }
      break;
    }
    if (lex_.ConsumeKw("order")) {
      if (!lex_.ConsumeKw("by")) return lex_.Error("expected BY");
      while (true) {
        OrderItem item;
        XUPD_ASSIGN_OR_RETURN(item.column, ExpectIdent("order column"));
        if (lex_.ConsumeKw("desc")) {
          item.desc = true;
        } else {
          lex_.ConsumeKw("asc");
        }
        stmt.order_by.push_back(std::move(item));
        if (lex_.Peek().type == Tok::kComma) {
          lex_.Next();
          continue;
        }
        break;
      }
    }
    return stmt;
  }

  Result<SelectCore> ParseSelectCore() {
    if (!lex_.ConsumeKw("select")) return lex_.Error("expected SELECT");
    SelectCore core;
    while (true) {
      SelectItem item;
      if (lex_.Peek().type == Tok::kStar) {
        lex_.Next();
        item.star = true;
      } else {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(e).value();
        if (lex_.ConsumeKw("as")) {
          XUPD_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
        }
      }
      core.items.push_back(std::move(item));
      if (lex_.Peek().type == Tok::kComma) {
        lex_.Next();
        continue;
      }
      break;
    }
    if (lex_.ConsumeKw("from")) {
      while (true) {
        TableRef ref;
        XUPD_ASSIGN_OR_RETURN(ref.table, ExpectIdent("table name"));
        // Optional alias (an identifier that is not a clause keyword).
        const Token& t = lex_.Peek();
        if (t.type == Tok::kIdent && !EqualsIgnoreCase(t.text, "where") &&
            !EqualsIgnoreCase(t.text, "order") &&
            !EqualsIgnoreCase(t.text, "union") &&
            !EqualsIgnoreCase(t.text, "on")) {
          ref.alias = lex_.Next().text;
        } else {
          ref.alias = ref.table;
        }
        core.from.push_back(std::move(ref));
        if (lex_.Peek().type == Tok::kComma) {
          lex_.Next();
          continue;
        }
        break;
      }
    }
    if (lex_.ConsumeKw("where")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      core.where = std::move(e).value();
    }
    return core;
  }

  // Expression grammar: or > and > not > comparison > additive > term.
  Result<Expr> ParseExpr() { return ParseOr(); }

  Result<Expr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (lex_.ConsumeKw("or")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      Expr e;
      e.kind = Expr::Kind::kBinary;
      e.op = Expr::Op::kOr;
      e.children.push_back(std::move(lhs).value());
      e.children.push_back(std::move(rhs).value());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<Expr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    while (lex_.ConsumeKw("and")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      Expr e;
      e.kind = Expr::Kind::kBinary;
      e.op = Expr::Op::kAnd;
      e.children.push_back(std::move(lhs).value());
      e.children.push_back(std::move(rhs).value());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<Expr> ParseNot() {
    if (lex_.ConsumeKw("not")) {
      auto inner = ParseNot();
      if (!inner.ok()) return inner;
      Expr e;
      e.kind = Expr::Kind::kUnary;
      e.op = Expr::Op::kNot;
      e.children.push_back(std::move(inner).value());
      return e;
    }
    return ParseComparison();
  }

  Result<Expr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    // IS [NOT] NULL
    if (lex_.ConsumeKw("is")) {
      Expr e;
      e.kind = Expr::Kind::kIsNull;
      e.negated = lex_.ConsumeKw("not");
      if (!lex_.ConsumeKw("null")) return lex_.Error("expected NULL after IS");
      e.children.push_back(std::move(lhs).value());
      return e;
    }
    // [NOT] IN (...)
    bool negated = false;
    if (lex_.PeekKw("not")) {
      // Could be "NOT IN"; NOT as prefix was handled earlier, so here it must
      // be NOT IN.
      lex_.Next();
      negated = true;
      if (!lex_.PeekKw("in")) return lex_.Error("expected IN after NOT");
    }
    if (lex_.ConsumeKw("in")) {
      XUPD_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after IN"));
      Expr e;
      e.negated = negated;
      e.children.push_back(std::move(lhs).value());
      if (lex_.PeekKw("select") || lex_.PeekKw("with")) {
        auto sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        e.kind = Expr::Kind::kInSubquery;
        e.subquery = std::make_shared<SelectStmt>(std::move(sub).value());
      } else {
        e.kind = Expr::Kind::kInList;
        while (true) {
          auto v = ParseExpr();
          if (!v.ok()) return v.status();
          e.in_list.push_back(std::move(v).value());
          if (lex_.Peek().type == Tok::kComma) {
            lex_.Next();
            continue;
          }
          break;
        }
      }
      XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return e;
    }
    Expr::Op op = Expr::Op::kNone;
    switch (lex_.Peek().type) {
      case Tok::kEq:
        op = Expr::Op::kEq;
        break;
      case Tok::kNe:
        op = Expr::Op::kNe;
        break;
      case Tok::kLt:
        op = Expr::Op::kLt;
        break;
      case Tok::kLe:
        op = Expr::Op::kLe;
        break;
      case Tok::kGt:
        op = Expr::Op::kGt;
        break;
      case Tok::kGe:
        op = Expr::Op::kGe;
        break;
      default:
        return lhs;
    }
    lex_.Next();
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs;
    Expr e;
    e.kind = Expr::Kind::kBinary;
    e.op = op;
    e.children.push_back(std::move(lhs).value());
    e.children.push_back(std::move(rhs).value());
    return e;
  }

  Result<Expr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    while (true) {
      Expr::Op op;
      if (lex_.Peek().type == Tok::kPlus) {
        op = Expr::Op::kAdd;
      } else if (lex_.Peek().type == Tok::kMinus) {
        op = Expr::Op::kSub;
      } else {
        return lhs;
      }
      lex_.Next();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      Expr e;
      e.kind = Expr::Kind::kBinary;
      e.op = op;
      e.children.push_back(std::move(lhs).value());
      e.children.push_back(std::move(rhs).value());
      lhs = std::move(e);
    }
  }

  Result<Expr> ParseMultiplicative() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs;
    while (true) {
      Expr::Op op;
      if (lex_.Peek().type == Tok::kStar) {
        op = Expr::Op::kMul;
      } else if (lex_.Peek().type == Tok::kSlash) {
        op = Expr::Op::kDiv;
      } else {
        return lhs;
      }
      lex_.Next();
      auto rhs = ParseTerm();
      if (!rhs.ok()) return rhs;
      Expr e;
      e.kind = Expr::Kind::kBinary;
      e.op = op;
      e.children.push_back(std::move(lhs).value());
      e.children.push_back(std::move(rhs).value());
      lhs = std::move(e);
    }
  }

  Result<Expr> ParseTerm() {
    const Token& t = lex_.Peek();
    Expr e;
    if (t.type == Tok::kNumber) {
      e.kind = Expr::Kind::kLiteral;
      e.literal = Value::Int(lex_.Next().number);
      return e;
    }
    if (t.type == Tok::kString) {
      e.kind = Expr::Kind::kLiteral;
      e.literal = Value::Str(lex_.Next().text);
      return e;
    }
    if (t.type == Tok::kQuestion) {
      lex_.Next();
      e.kind = Expr::Kind::kParam;
      e.param_index = param_count_++;
      return e;
    }
    if (t.type == Tok::kMinus) {
      lex_.Next();
      auto inner = ParseTerm();
      if (!inner.ok()) return inner;
      e.kind = Expr::Kind::kUnary;
      e.op = Expr::Op::kNeg;
      e.children.push_back(std::move(inner).value());
      return e;
    }
    if (t.type == Tok::kLParen) {
      lex_.Next();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner;
      XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return inner;
    }
    if (t.type == Tok::kIdent) {
      std::string ident = lex_.Next().text;
      if (EqualsIgnoreCase(ident, "null")) {
        e.kind = Expr::Kind::kLiteral;
        e.literal = Value::Null();
        return e;
      }
      // Aggregates.
      if ((EqualsIgnoreCase(ident, "min") || EqualsIgnoreCase(ident, "max") ||
           EqualsIgnoreCase(ident, "count") || EqualsIgnoreCase(ident, "sum")) &&
          lex_.Peek().type == Tok::kLParen) {
        lex_.Next();
        e.kind = Expr::Kind::kAggregate;
        if (EqualsIgnoreCase(ident, "min")) e.agg = Expr::Agg::kMin;
        if (EqualsIgnoreCase(ident, "max")) e.agg = Expr::Agg::kMax;
        if (EqualsIgnoreCase(ident, "count")) e.agg = Expr::Agg::kCount;
        if (EqualsIgnoreCase(ident, "sum")) e.agg = Expr::Agg::kSum;
        if (lex_.Peek().type == Tok::kStar) {
          lex_.Next();
          e.count_star = true;
        } else {
          auto col = ExpectIdent("aggregate column");
          if (!col.ok()) return col.status();
          e.column = col.value();
          if (lex_.Peek().type == Tok::kDot) {
            lex_.Next();
            e.table = e.column;
            auto col2 = ExpectIdent("column after '.'");
            if (!col2.ok()) return col2.status();
            e.column = col2.value();
          }
        }
        XUPD_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        return e;
      }
      // OLD.column
      if (EqualsIgnoreCase(ident, "old") && lex_.Peek().type == Tok::kDot) {
        lex_.Next();
        auto col = ExpectIdent("column after OLD.");
        if (!col.ok()) return col.status();
        e.kind = Expr::Kind::kOldColumn;
        e.column = col.value();
        return e;
      }
      // [table.]column
      e.kind = Expr::Kind::kColumn;
      e.column = std::move(ident);
      if (lex_.Peek().type == Tok::kDot) {
        lex_.Next();
        e.table = e.column;
        auto col = ExpectIdent("column after '.'");
        if (!col.ok()) return col.status();
        e.column = col.value();
      }
      return e;
    }
    return lex_.Error("expected expression");
  }

  SqlLexer lex_;
  /// ? placeholders seen so far; their 0-based ordinal is the bind position.
  int param_count_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view text) {
  Parser parser(text);
  return parser.ParseStatement();
}

}  // namespace xupd::rdb::sql
