// Sorted Outer Union (§5.2, Figure 5): one WITH/UNION ALL/ORDER BY query
// retrieves an XML region stored across multiple tables as a single sorted
// stream of wide tuples (child data after parent data, different parents not
// intermixed), plus the reconstruction of XML from that stream.
#ifndef XUPD_SHRED_OUTER_UNION_H_
#define XUPD_SHRED_OUTER_UNION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdb/database.h"
#include "shred/mapping.h"
#include "xml/document.h"

namespace xupd::shred {

/// Column layout of the wide tuple.
struct OuterUnionLayout {
  struct Segment {
    const TableMapping* table = nullptr;
    int id_col = -1;         ///< wide-tuple column holding this table's id.
    int parent_id_col = -1;  ///< wide-tuple column holding the parent id
                             ///< (-1 for the region root).
    int first_field_col = -1;
    size_t field_count = 0;
  };
  std::vector<Segment> segments;  ///< pre-order over the region's tables.
  size_t width = 0;

  /// Wide-tuple column names: C1..Cwidth (as in Figure 5).
  std::vector<std::string> ColumnNames() const;
};

/// Builds the Figure-5 query for the region rooted at `region_root`.
/// `root_where` is a SQL predicate over the root table's columns (applied in
/// the base subquery Q1, since "the other branches of the Outer Union cannot
/// remove tuples"); empty selects everything.
struct OuterUnionQuery {
  std::string sql;
  OuterUnionLayout layout;
};
OuterUnionQuery BuildOuterUnion(const Mapping& mapping,
                                const TableMapping* region_root,
                                const std::string& root_where);

/// Rebuilds XML elements from a sorted outer-union result. Returns the
/// reconstructed region roots (one element per qualifying root tuple).
Result<std::vector<std::unique_ptr<xml::Element>>> ReconstructFromOuterUnion(
    const Mapping& mapping, const OuterUnionLayout& layout,
    const rdb::ResultSet& result);

/// Convenience: runs the outer-union query for the whole document and
/// reconstructs it. The result has ref-attribute declarations taken from the
/// mapping's DTD.
Result<std::unique_ptr<xml::Document>> ReconstructDocument(
    const Mapping& mapping, rdb::Database* db);

}  // namespace xupd::shred

#endif  // XUPD_SHRED_OUTER_UNION_H_
