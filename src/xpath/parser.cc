#include "xpath/parser.h"

#include "common/str_util.h"

namespace xupd::xpath {

namespace {

// Parses one step after its leading separator has been consumed.
// `descendant` marks a step introduced by '//'.
Result<Step> ParseStep(Lexer* lexer, bool descendant);

Result<std::vector<Predicate>> ParseStepPredicates(Lexer* lexer) {
  std::vector<Predicate> preds;
  while (lexer->Peek().type == TokenType::kLBracket) {
    lexer->Next();
    auto pred = ParsePredicate(lexer);
    if (!pred.ok()) return pred.status();
    preds.push_back(std::move(pred).value());
    auto close = lexer->Expect(TokenType::kRBracket, "']'");
    if (!close.ok()) return close.status();
  }
  return preds;
}

// ref(label, "id") — after consuming the name "ref"; '(' is next.
Result<Step> ParseRefStep(Lexer* lexer, bool descendant) {
  Step step;
  step.axis = Step::Axis::kRefEntry;
  (void)descendant;  // ref() entries are direct members of the element
  lexer->Next();     // '('
  const Token& name_tok = lexer->Peek();
  if (name_tok.type == TokenType::kStar) {
    lexer->Next();
    step.name = "*";
  } else if (name_tok.type == TokenType::kName) {
    step.name = lexer->Next().text;
  } else {
    return lexer->Error("expected IDREFS name in ref()");
  }
  auto comma = lexer->Expect(TokenType::kComma, "',' in ref()");
  if (!comma.ok()) return comma.status();
  const Token& target_tok = lexer->Peek();
  if (target_tok.type == TokenType::kStar) {
    lexer->Next();
    step.ref_target = "*";
  } else if (target_tok.type == TokenType::kString ||
             target_tok.type == TokenType::kName) {
    step.ref_target = lexer->Next().text;
  } else {
    return lexer->Error("expected target ID or * in ref()");
  }
  auto close = lexer->Expect(TokenType::kRParen, "')' in ref()");
  if (!close.ok()) return close.status();
  auto preds = ParseStepPredicates(lexer);
  if (!preds.ok()) return preds.status();
  step.predicates = std::move(preds).value();
  return step;
}

Result<Step> ParseStep(Lexer* lexer, bool descendant) {
  const Token& t = lexer->Peek();
  Step step;
  step.axis = descendant ? Step::Axis::kDescendant : Step::Axis::kChild;
  if (t.type == TokenType::kAt) {
    lexer->Next();
    step.axis = Step::Axis::kAttribute;
    const Token& name_tok = lexer->Peek();
    if (name_tok.type == TokenType::kStar) {
      lexer->Next();
      step.name = "*";
    } else if (name_tok.type == TokenType::kName) {
      step.name = lexer->Next().text;
    } else {
      return lexer->Error("expected attribute name after '@'");
    }
    auto preds = ParseStepPredicates(lexer);
    if (!preds.ok()) return preds.status();
    step.predicates = std::move(preds).value();
    return step;
  }
  if (t.type == TokenType::kStar) {
    lexer->Next();
    step.name = "*";
    auto preds = ParseStepPredicates(lexer);
    if (!preds.ok()) return preds.status();
    step.predicates = std::move(preds).value();
    return step;
  }
  if (t.type == TokenType::kName) {
    if (EqualsIgnoreCase(t.text, "ref") &&
        lexer->Peek().type == TokenType::kName) {
      // Look ahead for '(' — ref is also a legal element name.
      Token saved = lexer->Next();
      if (lexer->Peek().type == TokenType::kLParen) {
        return ParseRefStep(lexer, descendant);
      }
      step.name = saved.text;
      auto preds = ParseStepPredicates(lexer);
      if (!preds.ok()) return preds.status();
      step.predicates = std::move(preds).value();
      return step;
    }
    if (EqualsIgnoreCase(t.text, "text")) {
      Token saved = lexer->Next();
      if (lexer->Peek().type == TokenType::kLParen) {
        lexer->Next();
        auto close = lexer->Expect(TokenType::kRParen, "')' after text(");
        if (!close.ok()) return close.status();
        step.axis = Step::Axis::kTextNodes;
        return step;
      }
      step.name = saved.text;
      auto preds = ParseStepPredicates(lexer);
      if (!preds.ok()) return preds.status();
      step.predicates = std::move(preds).value();
      return step;
    }
    step.name = lexer->Next().text;
    auto preds = ParseStepPredicates(lexer);
    if (!preds.ok()) return preds.status();
    step.predicates = std::move(preds).value();
    return step;
  }
  return lexer->Error("expected a path step");
}

// True if the token can begin a path step.
bool StartsStep(const Token& t) {
  return t.type == TokenType::kName || t.type == TokenType::kAt ||
         t.type == TokenType::kStar;
}

}  // namespace

Result<PathExpr> ParsePath(Lexer* lexer) {
  PathExpr path;
  const Token& head = lexer->Peek();

  if (head.type == TokenType::kVariable) {
    path.head = PathExpr::Head::kVariable;
    path.variable = lexer->Next().text;
  } else if (head.type == TokenType::kName &&
             EqualsIgnoreCase(head.text, "document")) {
    Token saved = lexer->Next();
    if (lexer->Peek().type == TokenType::kLParen) {
      lexer->Next();
      auto uri = lexer->Expect(TokenType::kString, "document URI string");
      if (!uri.ok()) return uri.status();
      auto close = lexer->Expect(TokenType::kRParen, "')'");
      if (!close.ok()) return close.status();
      path.head = PathExpr::Head::kDocument;
      path.document_name = uri.value().text;
    } else {
      // "document" used as a plain element name in a relative path.
      path.head = PathExpr::Head::kContext;
      Step step;
      step.axis = Step::Axis::kChild;
      step.name = saved.text;
      auto preds = ParseStepPredicates(lexer);
      if (!preds.ok()) return preds.status();
      step.predicates = std::move(preds).value();
      path.steps.push_back(std::move(step));
    }
  } else if (StartsStep(head)) {
    path.head = PathExpr::Head::kContext;
    auto step = ParseStep(lexer, /*descendant=*/false);
    if (!step.ok()) return step.status();
    path.steps.push_back(std::move(step).value());
  } else if (head.type == TokenType::kSlash ||
             head.type == TokenType::kDoubleSlash) {
    // Leading '/' or '//' relative to the context (document root).
    path.head = PathExpr::Head::kContext;
  } else {
    return lexer->Error("expected a path expression");
  }

  // Steps.
  while (true) {
    const Token& t = lexer->Peek();
    if (t.type == TokenType::kSlash || t.type == TokenType::kDoubleSlash ||
        t.type == TokenType::kDot) {
      bool descendant = t.type == TokenType::kDoubleSlash;
      lexer->Next();
      // `.index()` — the position function terminates the path.
      if (lexer->PeekKeyword("index")) {
        Token saved = lexer->Next();
        if (lexer->Peek().type == TokenType::kLParen) {
          lexer->Next();
          auto close = lexer->Expect(TokenType::kRParen, "')' after index(");
          if (!close.ok()) return close.status();
          path.index_fn = true;
          return path;
        }
        // Plain element named "index".
        Step step;
        step.axis =
            descendant ? Step::Axis::kDescendant : Step::Axis::kChild;
        step.name = saved.text;
        auto preds = ParseStepPredicates(lexer);
        if (!preds.ok()) return preds.status();
        step.predicates = std::move(preds).value();
        path.steps.push_back(std::move(step));
        continue;
      }
      auto step = ParseStep(lexer, descendant);
      if (!step.ok()) return step.status();
      path.steps.push_back(std::move(step).value());
      continue;
    }
    if (t.type == TokenType::kArrow) {
      lexer->Next();
      Step step;
      step.axis = Step::Axis::kDeref;
      const Token& name_tok = lexer->Peek();
      if (name_tok.type == TokenType::kStar) {
        lexer->Next();
        step.name = "*";
      } else if (name_tok.type == TokenType::kName) {
        step.name = lexer->Next().text;
      } else {
        // Bare '->' dereferences without a name filter.
        step.name = "*";
      }
      auto preds = ParseStepPredicates(lexer);
      if (!preds.ok()) return preds.status();
      step.predicates = std::move(preds).value();
      path.steps.push_back(std::move(step));
      continue;
    }
    break;
  }
  return path;
}

Result<Predicate> ParsePredicate(Lexer* lexer) {
  // or-expression
  auto parse_and = [&]() -> Result<Predicate> {
    // and-expression over unary terms
    auto parse_unary = [&](auto&& self) -> Result<Predicate> {
      if (lexer->ConsumeKeyword("not")) {
        auto open = lexer->Expect(TokenType::kLParen, "'(' after not");
        if (!open.ok()) return open.status();
        auto inner = ParsePredicate(lexer);
        if (!inner.ok()) return inner.status();
        auto close = lexer->Expect(TokenType::kRParen, "')'");
        if (!close.ok()) return close.status();
        Predicate pred;
        pred.kind = Predicate::Kind::kNot;
        pred.children.push_back(std::move(inner).value());
        return pred;
      }
      if (lexer->Peek().type == TokenType::kLParen) {
        lexer->Next();
        auto inner = ParsePredicate(lexer);
        if (!inner.ok()) return inner.status();
        auto close = lexer->Expect(TokenType::kRParen, "')'");
        if (!close.ok()) return close.status();
        return inner;
      }
      (void)self;
      // comparison or existence test
      auto path = ParsePath(lexer);
      if (!path.ok()) return path.status();
      Predicate pred;
      pred.path = std::move(path).value();
      const Token& t = lexer->Peek();
      Predicate::Op op;
      switch (t.type) {
        case TokenType::kEq:
          op = Predicate::Op::kEq;
          break;
        case TokenType::kNe:
          op = Predicate::Op::kNe;
          break;
        case TokenType::kLt:
          op = Predicate::Op::kLt;
          break;
        case TokenType::kLe:
          op = Predicate::Op::kLe;
          break;
        case TokenType::kGt:
          op = Predicate::Op::kGt;
          break;
        case TokenType::kGe:
          op = Predicate::Op::kGe;
          break;
        default:
          pred.kind = Predicate::Kind::kExists;
          return pred;
      }
      lexer->Next();
      pred.kind = Predicate::Kind::kCompare;
      pred.op = op;
      const Token& rhs = lexer->Peek();
      if (rhs.type == TokenType::kNumber) {
        pred.rhs_is_number = true;
        pred.rhs_number = lexer->Next().number;
      } else if (rhs.type == TokenType::kString) {
        pred.rhs_string = lexer->Next().text;
      } else {
        return lexer->Error("expected literal on right side of comparison");
      }
      return pred;
    };

    auto first = parse_unary(parse_unary);
    if (!first.ok()) return first.status();
    if (!lexer->PeekKeyword("and")) return first;
    Predicate conj;
    conj.kind = Predicate::Kind::kAnd;
    conj.children.push_back(std::move(first).value());
    while (lexer->ConsumeKeyword("and")) {
      auto next = parse_unary(parse_unary);
      if (!next.ok()) return next.status();
      conj.children.push_back(std::move(next).value());
    }
    return conj;
  };

  auto first = parse_and();
  if (!first.ok()) return first.status();
  if (!lexer->PeekKeyword("or")) return first;
  Predicate disj;
  disj.kind = Predicate::Kind::kOr;
  disj.children.push_back(std::move(first).value());
  while (lexer->ConsumeKeyword("or")) {
    auto next = parse_and();
    if (!next.ok()) return next.status();
    disj.children.push_back(std::move(next).value());
  }
  return disj;
}

Result<PathExpr> ParsePathString(std::string_view text) {
  Lexer lexer(text);
  auto path = ParsePath(&lexer);
  if (!path.ok()) return path.status();
  if (lexer.Peek().type != TokenType::kEnd) {
    return lexer.Error("trailing input after path expression");
  }
  return path;
}

Result<Predicate> ParsePredicateString(std::string_view text) {
  Lexer lexer(text);
  auto pred = ParsePredicate(&lexer);
  if (!pred.ok()) return pred.status();
  if (lexer.Peek().type != TokenType::kEnd) {
    return lexer.Error("trailing input after predicate");
  }
  return pred;
}

namespace {

const char* OpName(Predicate::Op op) {
  switch (op) {
    case Predicate::Op::kEq:
      return "=";
    case Predicate::Op::kNe:
      return "!=";
    case Predicate::Op::kLt:
      return "<";
    case Predicate::Op::kLe:
      return "<=";
    case Predicate::Op::kGt:
      return ">";
    case Predicate::Op::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

std::string ToString(const PathExpr& path) {
  std::string out;
  switch (path.head) {
    case PathExpr::Head::kDocument:
      out += "document(\"" + path.document_name + "\")";
      break;
    case PathExpr::Head::kVariable:
      out += "$" + path.variable;
      break;
    case PathExpr::Head::kContext:
      break;
  }
  bool first = true;
  for (const Step& s : path.steps) {
    bool relative_first = first && path.head == PathExpr::Head::kContext;
    switch (s.axis) {
      case Step::Axis::kChild:
        if (!relative_first) out += "/";
        out += s.name;
        break;
      case Step::Axis::kDescendant:
        out += "//" + s.name;
        break;
      case Step::Axis::kAttribute:
        if (!relative_first) out += "/";
        out += "@" + s.name;
        break;
      case Step::Axis::kRefEntry:
        if (!relative_first) out += "/";
        out += "ref(" + s.name + ",";
        out += s.ref_target == "*" ? "*" : "\"" + s.ref_target + "\"";
        out += ")";
        break;
      case Step::Axis::kDeref:
        out += "->" + s.name;
        break;
      case Step::Axis::kTextNodes:
        if (!relative_first) out += "/";
        out += "text()";
        break;
    }
    for (const Predicate& p : s.predicates) {
      out += "[" + ToString(p) + "]";
    }
    first = false;
  }
  if (path.index_fn) out += ".index()";
  return out;
}

std::string ToString(const Predicate& pred) {
  switch (pred.kind) {
    case Predicate::Kind::kExists:
      return ToString(pred.path);
    case Predicate::Kind::kCompare: {
      std::string rhs = pred.rhs_is_number ? std::to_string(pred.rhs_number)
                                           : "\"" + pred.rhs_string + "\"";
      return ToString(pred.path) + OpName(pred.op) + rhs;
    }
    case Predicate::Kind::kAnd: {
      std::string out;
      for (size_t i = 0; i < pred.children.size(); ++i) {
        if (i > 0) out += " and ";
        out += ToString(pred.children[i]);
      }
      return out;
    }
    case Predicate::Kind::kOr: {
      std::string out;
      for (size_t i = 0; i < pred.children.size(); ++i) {
        if (i > 0) out += " or ";
        out += ToString(pred.children[i]);
      }
      return out;
    }
    case Predicate::Kind::kNot:
      return "not(" + ToString(pred.children[0]) + ")";
  }
  return "";
}

}  // namespace xupd::xpath
