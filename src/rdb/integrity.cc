// Online integrity scrub (Database::VerifyIntegrity, SQL CHECK INTEGRITY).
//
// The scrub is strictly read-only: it cross-checks the in-memory structures
// (row slabs vs hash indexes, next-id vs stored ids, undo log emptiness) and
// re-walks the on-disk WAL and snapshot CRCs without installing anything —
// so it stays runnable while the database is degraded to read-only mode, and
// tests can assert invariants right after an injected storage fault.
#include <string>
#include <vector>

#include "rdb/database.h"
#include "rdb/snapshot.h"
#include "rdb/table.h"
#include "rdb/wal.h"

namespace xupd::rdb {

namespace {

// Mirrors the layout constants in database.cc — the data directory owns
// exactly one WAL and one snapshot under these fixed names.
std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.xupd";
}
std::string WalPath(const std::string& dir) { return dir + "/wal.xupd"; }

std::string ValueBrief(const Value& v) {
  std::string s = v.ToString();
  if (s.size() > 32) s = s.substr(0, 29) + "...";
  return s;
}

// Both directions of the slab/index invariant: every index entry points to
// a live row still carrying that value, and every live row is findable
// through every index on its table.
void VerifyTableIndexes(const Table& t, std::vector<std::string>* out) {
  const std::string& tname = t.schema().name();
  for (const auto& index : t.indexes()) {
    const int col = index->column();
    if (col < 0 || static_cast<size_t>(col) >= t.schema().column_count()) {
      out->push_back("index '" + index->name() + "' on table '" + tname +
                     "' covers out-of-range column " + std::to_string(col));
      continue;
    }
    size_t entries = 0;
    index->ForEachEntry([&](const Value& v, size_t rowid) {
      ++entries;
      if (rowid >= t.capacity()) {
        out->push_back("index '" + index->name() + "' on table '" + tname +
                       "' holds rowid " + std::to_string(rowid) +
                       " beyond capacity " + std::to_string(t.capacity()));
        return;
      }
      if (!t.is_live(rowid)) {
        out->push_back("index '" + index->name() + "' on table '" + tname +
                       "' holds tombstoned rowid " + std::to_string(rowid));
        return;
      }
      if (!(t.row(rowid)[col] == v)) {
        out->push_back("index '" + index->name() + "' on table '" + tname +
                       "' entry (" + ValueBrief(v) + ", " +
                       std::to_string(rowid) + ") disagrees with the slab "
                       "value " + ValueBrief(t.row(rowid)[col]));
      }
    });
    if (entries != t.live_count()) {
      out->push_back("index '" + index->name() + "' on table '" + tname +
                     "' has " + std::to_string(entries) + " entries for " +
                     std::to_string(t.live_count()) + " live rows");
    }
    // Forward direction: a missing entry would make index probes silently
    // drop rows that a full scan still sees.
    std::vector<size_t> hits;
    for (size_t rowid = 0; rowid < t.capacity(); ++rowid) {
      if (!t.is_live(rowid)) continue;
      hits.clear();
      index->Lookup(t.row(rowid)[col], &hits);
      bool found = false;
      for (size_t h : hits) {
        if (h == rowid) {
          found = true;
          break;
        }
      }
      if (!found) {
        out->push_back("live row " + std::to_string(rowid) + " of table '" +
                       tname + "' is missing from index '" + index->name() +
                       "'");
      }
    }
  }
}

}  // namespace

std::vector<std::string> Database::VerifyIntegrity() {
  ++stats_.integrity_checks;
  const uint64_t t0 = MonotonicNanos();
  std::vector<std::string> violations;

  // In-memory: slab liveness vs hash indexes, both directions.
  for (const auto& [key, table] : tables_) {
    VerifyTableIndexes(*table, &violations);
  }

  // next-id must stay ahead of every id the engine has handed out; a stale
  // counter after recovery would mint duplicate node ids. Only element
  // tables follow the allocator convention (the id, parentId, ... layout) —
  // arbitrary SQL tables may hold any integers in a column named "id".
  for (const auto& [key, table] : tables_) {
    int col = table->schema().ColumnIndex("id");
    if (col != 0 || table->schema().ColumnIndex("parentId") != 1) continue;
    for (size_t rowid = 0; rowid < table->capacity(); ++rowid) {
      if (!table->is_live(rowid)) continue;
      const Value& v = table->row(rowid)[col];
      if (v.is_null() || v.type() != ValueType::kInt) continue;
      if (v.AsInt() >= next_id_) {
        violations.push_back("table '" + table->schema().name() +
                             "' row " + std::to_string(rowid) + " holds id " +
                             std::to_string(v.AsInt()) +
                             " >= next id counter " + std::to_string(next_id_));
      }
    }
  }

  // Outside a transaction the undo log must be fully drained — leftover
  // records mean some commit/rollback path forgot to consume them.
  if (!txn_.active() && txn_.undo_size() != 0) {
    violations.push_back("undo log holds " + std::to_string(txn_.undo_size()) +
                         " records outside any transaction");
  }

  // On-disk: re-walk the WAL frames and the snapshot CRC. Reads only, so
  // this works even while a write fault is being injected.
  if (!data_dir_.empty() && vfs_ != nullptr) {
    // The WAL may legally be one epoch ahead of a fail-stopped writer (a
    // checkpoint that reset the log before breaking), so the expected epoch
    // is whichever of the writer and the on-disk snapshot is newest.
    uint64_t writer_epoch = wal_ != nullptr ? wal_->epoch() : 0;
    uint64_t writer_bytes = wal_ != nullptr ? wal_->committed_bytes() : 0;
    uint64_t epoch = writer_epoch;
    uint64_t snap_epoch = SnapshotEpochOnDisk(vfs_, SnapshotPath(data_dir_));
    if (snap_epoch > epoch) epoch = snap_epoch;
    for (std::string& v : VerifyWalFile(vfs_, WalPath(data_dir_), epoch,
                                        writer_epoch, writer_bytes)) {
      violations.push_back(std::move(v));
    }
    for (std::string& v : VerifySnapshotFile(vfs_, SnapshotPath(data_dir_))) {
      violations.push_back(std::move(v));
    }
  }
  const uint64_t dur = MonotonicNanos() - t0;
  metrics_.GetHistogram("db.scrub")->Record(dur);
  events_.Record({TraceEvent::Kind::kScrub, t0, dur, violations.size(), 0,
                  nullptr});
  return violations;
}

}  // namespace xupd::rdb
