#include "rdb/vfs.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/status.h"

namespace xupd::rdb {

namespace {

/// Transient-errno retry bound: a signal storm should not loop forever, but
/// a handful of EINTR wakeups must never fail-stop the WAL writer.
constexpr int kMaxTransientRetries = 100;

class PosixFile : public VfsFile {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override { Close(); }

  VfsIoResult Read(void* buf, size_t size) override {
    ssize_t n = ::read(fd_, buf, size);
    if (n < 0) return {0, errno};
    return {n, 0};
  }
  VfsIoResult Write(const void* buf, size_t size) override {
    ssize_t n = ::write(fd_, buf, size);
    if (n < 0) return {0, errno};
    return {n, 0};
  }
  int Sync() override { return ::fsync(fd_) != 0 ? errno : 0; }
  int Truncate(uint64_t size) override {
    return ::ftruncate(fd_, static_cast<off_t>(size)) != 0 ? errno : 0;
  }
  int Seek(uint64_t offset) override {
    return ::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0 ? errno : 0;
  }
  int TryLockExclusive() override {
    return ::flock(fd_, LOCK_EX | LOCK_NB) != 0 ? errno : 0;
  }
  int Close() override {
    if (fd_ < 0) return 0;
    int fd = fd_;
    fd_ = -1;
    return ::close(fd) != 0 ? errno : 0;
  }

 private:
  int fd_;
};

class PosixVfs : public Vfs {
 public:
  std::unique_ptr<VfsFile> Open(const std::string& path, OpenMode mode,
                                int* err) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::kRead:
        flags = O_RDONLY;
        break;
      case OpenMode::kWrite:
        flags = O_WRONLY | O_CREAT;
        break;
      case OpenMode::kTruncate:
        flags = O_WRONLY | O_CREAT | O_TRUNC;
        break;
    }
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      *err = errno;
      return nullptr;
    }
    *err = 0;
    return std::make_unique<PosixFile>(fd);
  }

  int Mkdir(const std::string& dir) override {
    return ::mkdir(dir.c_str(), 0755) != 0 ? errno : 0;
  }
  int Rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str()) != 0 ? errno : 0;
  }
  int Remove(const std::string& path) override {
    return ::unlink(path.c_str()) != 0 ? errno : 0;
  }
  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
  int SyncDir(const std::string& path_in_dir) override {
    size_t slash = path_in_dir.find_last_of('/');
    std::string dir = slash == std::string::npos ? std::string(".")
                                                 : path_in_dir.substr(0, slash);
    if (dir.empty()) dir = "/";
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return errno;
    int result = ::fsync(fd) != 0 ? errno : 0;
    ::close(fd);
    return result;
  }
};

}  // namespace

Vfs* Vfs::Default() {
  static PosixVfs posix;
  return &posix;
}

const char* ErrnoName(int err) {
  switch (err) {
    case EIO: return "EIO";
    case ENOSPC: return "ENOSPC";
    case EINTR: return "EINTR";
    case ENOENT: return "ENOENT";
    case EEXIST: return "EEXIST";
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case EBADF: return "EBADF";
    case EINVAL: return "EINVAL";
    case ENOTDIR: return "ENOTDIR";
    case EISDIR: return "EISDIR";
    case EMFILE: return "EMFILE";
    case ENFILE: return "ENFILE";
    case EFBIG: return "EFBIG";
    case EROFS: return "EROFS";
    case EAGAIN: return "EAGAIN";
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK: return "EWOULDBLOCK";
#endif
#if defined(EDQUOT)
    case EDQUOT: return "EDQUOT";
#endif
    default: {
      thread_local char buf[32];
      std::snprintf(buf, sizeof(buf), "errno %d", err);
      return buf;
    }
  }
}

Status ErrnoStatus(const std::string& what, const std::string& path, int err) {
  return Status::Internal(what + " '" + path + "': " + ErrnoName(err) + " (" +
                          std::strerror(err) + ")");
}

Status WriteFully(VfsFile* file, const char* data, size_t size,
                  const std::string& what, const std::string& path) {
  size_t done = 0;
  int transient = 0;
  while (done < size) {
    VfsIoResult r = file->Write(data + done, size - done);
    if (r.err != 0) {
      if ((r.err == EINTR || r.err == EAGAIN) &&
          ++transient <= kMaxTransientRetries) {
        continue;
      }
      return ErrnoStatus(what, path, r.err);
    }
    if (r.n <= 0) {
      return Status::Internal(what + " '" + path + "': wrote 0 bytes");
    }
    done += static_cast<size_t>(r.n);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(Vfs* vfs, const std::string& path) {
  int err = 0;
  std::unique_ptr<VfsFile> file = vfs->Open(path, Vfs::OpenMode::kRead, &err);
  if (file == nullptr) {
    if (err == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path, err);
  }
  std::string out;
  char buf[64 << 10];
  int transient = 0;
  for (;;) {
    VfsIoResult r = file->Read(buf, sizeof(buf));
    if (r.err != 0) {
      if ((r.err == EINTR || r.err == EAGAIN) &&
          ++transient <= kMaxTransientRetries) {
        continue;
      }
      return ErrnoStatus("read", path, r.err);
    }
    if (r.n == 0) break;
    out.append(buf, static_cast<size_t>(r.n));
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultVfs

/// Handle wrapper: mirrors the logical offset so writes can be applied to the
/// shadow image at the right position, and goes dead (EIO) after power loss.
class FaultFile : public VfsFile {
 public:
  FaultFile(FaultVfs* owner, std::string path, std::unique_ptr<VfsFile> base)
      : owner_(owner), path_(std::move(path)), base_(std::move(base)) {}
  ~FaultFile() override {
    Close();
  }

  VfsIoResult Read(void* buf, size_t size) override {
    if (dead_) return {0, EIO};
    VfsIoResult r = base_->Read(buf, size);
    if (r.err == 0) offset_ += static_cast<size_t>(r.n);
    return r;
  }

  VfsIoResult Write(const void* buf, size_t size) override {
    if (dead_) return {0, EIO};
    FaultVfs::FaultKind one_shot = FaultVfs::FaultKind::kNone;
    int err = owner_->CheckFault(path_, /*is_write=*/true, &one_shot);
    if (err == EINTR) return {0, EINTR};
    if (dead_) return {0, EIO};  // the op itself was the power-loss trigger
    if (err != 0 && one_shot != FaultVfs::FaultKind::kEnospc) return {0, err};
    size_t allowed = size;
    if (one_shot == FaultVfs::FaultKind::kEnospc ||
        one_shot == FaultVfs::FaultKind::kShortWrite) {
      allowed = size / 2;  // the device accepts half, then gives out
    }
    VfsIoResult r = allowed == 0 ? VfsIoResult{0, 0}
                                 : base_->Write(buf, allowed);
    if (r.err != 0) return r;
    owner_->RecordWrite(path_, offset_, static_cast<const char*>(buf),
                        static_cast<size_t>(r.n));
    offset_ += static_cast<size_t>(r.n);
    if (one_shot == FaultVfs::FaultKind::kEnospc) return {0, ENOSPC};
    return r;  // full or injected-short count
  }

  int Sync() override {
    if (dead_) return EIO;
    FaultVfs::FaultKind one_shot = FaultVfs::FaultKind::kNone;
    int err = owner_->CheckFault(path_, /*is_write=*/false, &one_shot);
    if (dead_) return EIO;
    if (err != 0) return err;
    err = base_->Sync();
    if (err == 0) owner_->RecordSync(path_);
    return err;
  }

  int Truncate(uint64_t size) override {
    if (dead_) return EIO;
    FaultVfs::FaultKind one_shot = FaultVfs::FaultKind::kNone;
    int err = owner_->CheckFault(path_, /*is_write=*/false, &one_shot);
    if (dead_) return EIO;
    if (err != 0) return err;
    err = base_->Truncate(size);
    if (err == 0) owner_->RecordTruncate(path_, size);
    return err;
  }

  int Seek(uint64_t offset) override {
    if (dead_) return EIO;
    int err = base_->Seek(offset);
    if (err == 0) offset_ = offset;
    return err;
  }

  int TryLockExclusive() override {
    if (dead_) return EIO;
    return base_->TryLockExclusive();
  }

  int Close() override {
    if (closed_) return 0;
    closed_ = true;
    owner_->ForgetFile(this);
    return base_->Close();
  }

  void MarkDead() { dead_ = true; }
  const std::string& path() const { return path_; }

 private:
  FaultVfs* owner_;
  std::string path_;
  std::unique_ptr<VfsFile> base_;
  size_t offset_ = 0;
  bool dead_ = false;
  bool closed_ = false;
};

void FaultVfs::ArmFault(FaultKind kind, int fail_at, std::string path_filter) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  armed_ = kind;
  fail_at_ = fail_at;
  path_filter_ = std::move(path_filter);
  fired_ = false;
  op_count_ = 0;
  active_ = FaultKind::kNone;
}

void FaultVfs::ClearFault() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  armed_ = FaultKind::kNone;
  active_ = FaultKind::kNone;
  fired_ = false;
  path_filter_.clear();
}

int FaultVfs::CheckFault(const std::string& path, bool is_write,
                         FaultKind* one_shot) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  *one_shot = FaultKind::kNone;
  if (active_ == FaultKind::kEio) return EIO;
  if (active_ == FaultKind::kEnospc && is_write) return ENOSPC;
  bool match = path_filter_.empty() ||
               path.find(path_filter_) != std::string::npos;
  if (!match) return 0;
  ++op_count_;
  if (armed_ == FaultKind::kNone || fired_ || op_count_ < fail_at_) return 0;
  fired_ = true;
  switch (armed_) {
    case FaultKind::kEio:
      active_ = FaultKind::kEio;
      return EIO;
    case FaultKind::kEnospc:
      active_ = FaultKind::kEnospc;
      if (is_write) {
        *one_shot = FaultKind::kEnospc;  // caller lands half, then ENOSPC
        return ENOSPC;
      }
      return ENOSPC;
    case FaultKind::kShortWrite:
      // Short counts only exist for writes; stay armed until one comes by.
      if (!is_write) {
        fired_ = false;
        return 0;
      }
      armed_ = FaultKind::kNone;
      *one_shot = FaultKind::kShortWrite;
      return 0;
    case FaultKind::kEintr:
      // Modeled on a signal interrupting write(2) — the retry loop under
      // test lives in WriteFully, so fire on the next write.
      if (!is_write) {
        fired_ = false;
        return 0;
      }
      armed_ = FaultKind::kNone;
      return EINTR;
    case FaultKind::kPowerLoss:
      SimulatePowerLoss();
      return EIO;
    case FaultKind::kNone:
      break;
  }
  return 0;
}

std::string FaultVfs::DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

FaultVfs::Shadow& FaultVfs::TouchShadow(const std::string& path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = shadows_.find(path);
  if (it != shadows_.end()) return it->second;
  Shadow& s = shadows_[path];
  if (base_->Exists(path)) {
    // A file that predates the FaultVfs is assumed fully durable.
    auto content = ReadWholeFile(base_, path);
    if (content.ok()) {
      s.synced = s.current = std::move(content).value();
      s.exists_synced = s.exists_current = true;
    }
  }
  return s;
}

std::unique_ptr<VfsFile> FaultVfs::Open(const std::string& path, OpenMode mode,
                                        int* err) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::unique_ptr<VfsFile> base = base_->Open(path, mode, err);
  if (base == nullptr) return nullptr;
  if (mode != OpenMode::kRead) {
    Shadow& s = TouchShadow(path);
    bool pre_existing = s.exists_current;
    if (mode == OpenMode::kTruncate) s.current.clear();
    s.exists_current = true;
    // A newly created directory entry is not durable until SyncDir.
    if (!pre_existing) s.exists_synced = false;
  }
  auto file = std::make_unique<FaultFile>(this, path, std::move(base));
  open_files_.push_back(file.get());
  return file;
}

int FaultVfs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FaultKind one_shot = FaultKind::kNone;
  int err = CheckFault(from + "|" + to, /*is_write=*/false, &one_shot);
  if (err != 0 && err != EINTR) return err;
  if (err == EINTR) return EINTR;
  err = base_->Rename(from, to);
  if (err != 0) return err;
  Shadow moved = TouchShadow(from);
  PendingRename pr;
  pr.dir = DirOf(to);
  pr.from = from;
  pr.to = to;
  pr.old_from = moved;
  auto old_to = shadows_.find(to);
  pr.to_existed = old_to != shadows_.end();
  if (pr.to_existed) pr.old_to = old_to->second;
  pending_renames_.push_back(std::move(pr));
  shadows_.erase(from);
  Shadow& t = shadows_[to];
  t.current = std::move(moved.current);
  t.synced = std::move(moved.synced);  // inode content durability travels
  t.exists_current = true;
  t.exists_synced = false;  // the new directory entry needs SyncDir
  return 0;
}

int FaultVfs::Remove(const std::string& path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FaultKind one_shot = FaultKind::kNone;
  int err = CheckFault(path, /*is_write=*/false, &one_shot);
  if (err != 0) return err;
  err = base_->Remove(path);
  if (err != 0) return err;
  Shadow& s = TouchShadow(path);
  s.exists_current = false;
  s.current.clear();
  return 0;
}

int FaultVfs::SyncDir(const std::string& path_in_dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FaultKind one_shot = FaultKind::kNone;
  int err = CheckFault(path_in_dir, /*is_write=*/false, &one_shot);
  if (err != 0) return err;
  err = base_->SyncDir(path_in_dir);
  if (err != 0) return err;
  std::string dir = DirOf(path_in_dir);
  for (auto& [path, shadow] : shadows_) {
    if (DirOf(path) == dir) shadow.exists_synced = shadow.exists_current;
  }
  pending_renames_.erase(
      std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                     [&dir](const PendingRename& pr) { return pr.dir == dir; }),
      pending_renames_.end());
  return 0;
}

void FaultVfs::RecordWrite(const std::string& path, size_t offset,
                           const char* data, size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (n == 0) return;
  Shadow& s = TouchShadow(path);
  if (s.current.size() < offset + n) s.current.resize(offset + n, '\0');
  s.current.replace(offset, n, data, n);
  last_written_path_ = path;
}

void FaultVfs::RecordSync(const std::string& path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Shadow& s = TouchShadow(path);
  s.synced = s.current;
  if (last_written_path_ == path) last_written_path_.clear();
}

void FaultVfs::RecordTruncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Shadow& s = TouchShadow(path);
  s.current.resize(static_cast<size_t>(size), '\0');
}

void FaultVfs::ForgetFile(FaultFile* file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  open_files_.erase(std::remove(open_files_.begin(), open_files_.end(), file),
                    open_files_.end());
}

void FaultVfs::SimulatePowerLoss() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Open handles survive as objects but every further op fails: the process
  // conceptually kept running while its storage rebooted underneath it.
  for (FaultFile* f : open_files_) f->MarkDead();

  // Un-synced renames never happened.
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    shadows_[it->from] = it->old_from;
    if (it->to_existed) {
      shadows_[it->to] = it->old_to;
    } else {
      shadows_.erase(it->to);
    }
  }
  pending_renames_.clear();

  for (auto& [path, s] : shadows_) {
    if (!s.exists_synced) {
      (void)base_->Remove(path);
      s.exists_current = false;
      s.current.clear();
      s.synced.clear();
      continue;
    }
    // Last-synced image, plus a torn prefix of the unsynced tail of the most
    // recently written file (models a partially persisted sector).
    std::string image = s.synced;
    if (path == last_written_path_ && torn_tail_bytes_ > 0 &&
        s.current.size() > s.synced.size()) {
      size_t keep = std::min(s.current.size(),
                             s.synced.size() + torn_tail_bytes_);
      image = s.current.substr(0, keep);
    }
    int err = 0;
    auto f = base_->Open(path, OpenMode::kTruncate, &err);
    if (f != nullptr) {
      (void)WriteFully(f.get(), image.data(), image.size(), "restore", path);
      (void)f->Sync();
      (void)f->Close();
    }
    s.current = s.synced = std::move(image);
    s.exists_current = s.exists_synced = true;
  }
  last_written_path_.clear();
  armed_ = FaultKind::kNone;
  active_ = FaultKind::kNone;
}

}  // namespace xupd::rdb
