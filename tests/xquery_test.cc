// Tests for the XQuery-update parser and native executor, centered on the
// paper's Examples 1-5 and 8 (§4, §6).
#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/serializer.h"
#include "xpath/eval.h"
#include "xpath/parser.h"
#include "xquery/executor.h"
#include "xquery/parser.h"

namespace xupd::xquery {
namespace {

using xpath::XmlObject;

class XQueryTest : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = xupd::testing::ParseBioDocument(); }

  void MustExecute(const std::string& query) {
    NativeExecutor exec(doc_.get());
    Status s = exec.ExecuteString(query);
    ASSERT_TRUE(s.ok()) << s;
  }

  std::unique_ptr<xml::Document> doc_;
};

TEST_F(XQueryTest, ParseExample1Shape) {
  auto stmt = ParseStatement(R"(
    FOR $p IN document("bio.xml")/paper,
        $cat IN $p/@category,
        $bio IN $p/ref(biologist,"smith1"),
        $ti IN $p/title
    UPDATE $p {
      DELETE $cat,
      DELETE $bio,
      DELETE $ti
    })");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->for_clauses.size(), 4u);
  ASSERT_EQ(stmt->updates.size(), 1u);
  EXPECT_EQ(stmt->updates[0].sub_ops.size(), 3u);
  EXPECT_EQ(stmt->updates[0].sub_ops[0].kind, SubOp::Kind::kDelete);
}

TEST_F(XQueryTest, ParseErrors) {
  EXPECT_FALSE(ParseStatement("FOR $x document(\"a\")/b UPDATE $x {DELETE $x}").ok());
  EXPECT_FALSE(ParseStatement("FOR $x IN a/b").ok());  // no UPDATE/RETURN
  EXPECT_FALSE(ParseStatement("FOR $x IN a/b UPDATE $x {DELETE}").ok());
  EXPECT_FALSE(ParseStatement("FOR $x IN a/b UPDATE $x {RENAME $x}").ok());
  EXPECT_FALSE(ParseStatement("FOR $x IN a/b UPDATE $x {INSERT}").ok());
  EXPECT_FALSE(
      ParseStatement("FOR $x IN a/b UPDATE $x {DELETE $x").ok());  // no '}'
  EXPECT_FALSE(ParseStatement("FOR $x IN a/b UPDATE $x {DELETE $x} garbage").ok());
}

TEST_F(XQueryTest, Example1_DeleteAttrRefAndSubelement) {
  MustExecute(R"(
    FOR $p IN document("bio.xml")/paper,
        $cat IN $p/@category,
        $bio IN $p/ref(biologist,"smith1"),
        $ti IN $p/title
    UPDATE $p {
      DELETE $cat,
      DELETE $bio,
      DELETE $ti
    })");
  xml::Element* paper = doc_->FindById("Smith991231");
  ASSERT_NE(paper, nullptr);
  EXPECT_EQ(paper->FindAttribute("category"), nullptr);
  EXPECT_EQ(paper->FindRefList("biologist"), nullptr);
  EXPECT_EQ(paper->FindChildElement("title"), nullptr);
  // Untouched parts remain.
  EXPECT_NE(paper->FindRefList("source"), nullptr);
}

TEST_F(XQueryTest, Example2_InsertAttrRefsAndSubelement) {
  MustExecute(R"(
    FOR $bio in document("bio.xml")/db/biologist[@ID="smith1"]
    UPDATE $bio {
      INSERT new_attribute(age,"29"),
      INSERT new_ref(worksAt,"ucla"),
      INSERT new_ref(worksAt,"baselab"),
      INSERT <firstname>Jeff</firstname>
    })");
  xml::Element* smith = doc_->FindById("smith1");
  ASSERT_NE(smith, nullptr);
  ASSERT_NE(smith->FindAttribute("age"), nullptr);
  EXPECT_EQ(smith->FindAttribute("age")->value, "29");
  ASSERT_NE(smith->FindRefList("worksAt"), nullptr);
  // Ordered model: successive references append to the worksAt list.
  EXPECT_EQ(smith->FindRefList("worksAt")->targets,
            (std::vector<std::string>{"ucla", "baselab"}));
  // The firstname subelement appears after existing subelements.
  ASSERT_EQ(smith->child_count(), 2u);
  EXPECT_EQ(static_cast<xml::Element*>(smith->child(1))->name(), "firstname");
}

TEST_F(XQueryTest, Example3_PositionalInserts) {
  MustExecute(R"(
    FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
        $n IN $lab/name,
        $sref IN ref(managers,"smith1")
    UPDATE $lab {
      INSERT "jones1" BEFORE $sref,
      INSERT <street>Oak</street> AFTER $n
    })");
  xml::Element* lab = doc_->FindById("baselab");
  ASSERT_NE(lab, nullptr);
  // jones1 is now the first manager.
  EXPECT_EQ(lab->FindRefList("managers")->targets,
            (std::vector<std::string>{"jones1", "smith1"}));
  // street comes right after name.
  ASSERT_GE(lab->child_count(), 3u);
  EXPECT_EQ(static_cast<xml::Element*>(lab->child(0))->name(), "name");
  EXPECT_EQ(static_cast<xml::Element*>(lab->child(1))->name(), "street");
  EXPECT_EQ(static_cast<xml::Element*>(lab->child(1))->TextContent(), "Oak");
}

TEST_F(XQueryTest, Example4_ReplaceElementAndRef) {
  MustExecute(R"(
    FOR $lab in document("bio.xml")/db/lab,
        $name IN $lab/name,
        $mgr IN $lab/ref(managers, *)
    UPDATE $lab {
      REPLACE $name WITH <appellation>Fancy Lab</>,
      REPLACE $mgr WITH new_attribute(managers,"jones1")
    })");
  // Only baselab has managers, so only it qualifies (lab2 yields no tuple).
  xml::Element* baselab = doc_->FindById("baselab");
  EXPECT_EQ(baselab->FindChildElement("name"), nullptr);
  ASSERT_NE(baselab->FindChildElement("appellation"), nullptr);
  EXPECT_EQ(baselab->FindChildElement("appellation")->TextContent(),
            "Fancy Lab");
  EXPECT_EQ(baselab->FindRefList("managers")->targets,
            (std::vector<std::string>{"jones1"}));
  // lab2 untouched.
  EXPECT_NE(doc_->FindById("lab2")->FindChildElement("name"), nullptr);
}

TEST_F(XQueryTest, Example5_MultiLevelNestedUpdate) {
  // The paper's Example 5 (with $u/lab for the binding the prose describes;
  // the printed query contains a $u/name typo). Expected output is Figure 3.
  MustExecute(R"(
    FOR $u in document("bio.xml")/db/university[@ID="ucla"],
        $lab IN $u/lab
    WHERE $lab.index() = 0
    UPDATE $u {
      INSERT new_attribute(labs,"2"),
      INSERT <lab ID="newlab">
               <name>UCLA Secondary Lab</name>
             </lab> BEFORE $lab,
      FOR $l1 IN $u/lab,
          $labname IN $l1/name,
          $ci IN $l1/city
      UPDATE $l1 {
        REPLACE $labname WITH <name>UCLA Primary Lab</>,
        DELETE $ci
      }
    })");
  xml::Element* ucla = doc_->FindById("ucla");
  ASSERT_NE(ucla, nullptr);
  ASSERT_NE(ucla->FindAttribute("labs"), nullptr);
  EXPECT_EQ(ucla->FindAttribute("labs")->value, "2");
  // Two labs: newlab first, then the renamed original.
  ASSERT_EQ(ucla->child_count(), 2u);
  auto* first = static_cast<xml::Element*>(ucla->child(0));
  auto* second = static_cast<xml::Element*>(ucla->child(1));
  EXPECT_EQ(first->FindAttribute("ID")->value, "newlab");
  EXPECT_EQ(first->FindChildElement("name")->TextContent(),
            "UCLA Secondary Lab");
  EXPECT_EQ(second->FindAttribute("ID")->value, "lalab");
  EXPECT_EQ(second->FindChildElement("name")->TextContent(),
            "UCLA Primary Lab");
  // The nested update bound against the *input*: the freshly inserted newlab
  // is not renamed, and lalab's city is gone.
  EXPECT_EQ(second->FindChildElement("city"), nullptr);
  EXPECT_EQ(first->FindChildElement("city"), nullptr);
  // lalab keeps its managers.
  EXPECT_EQ(second->FindRefList("managers")->targets.size(), 2u);
}

TEST_F(XQueryTest, Example8_NestedUpdateOnCustomerDoc) {
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  NativeExecutor exec(doc.get());
  Status s = exec.ExecuteString(R"(
    FOR $o IN document("custdb.xml")//Order[Status="ready" and
                                            OrderLine/ItemName="tire"]
    UPDATE $o {
      INSERT <Status>suspended</Status>,
      FOR $i IN $o/OrderLine[ItemName="tire"]
      UPDATE $i {
        INSERT <comment>recalled</comment>
      }
    })");
  ASSERT_TRUE(s.ok()) << s;
  // John's first order was ready + tire.
  xpath::Evaluator eval(doc.get());
  auto parsed = xpath::ParsePathString("document(\"c\")//Order");
  auto orders = eval.Eval(parsed.value(), {}, XmlObject::Null());
  ASSERT_TRUE(orders.ok());
  ASSERT_EQ(orders->size(), 3u);
  xml::Element* first_order = orders->front().element;
  // A second Status element was appended (native model has no DTD checks).
  size_t status_count = 0;
  for (const auto& c : first_order->children()) {
    if (c->is_element() &&
        static_cast<xml::Element*>(c.get())->name() == "Status") {
      ++status_count;
    }
  }
  EXPECT_EQ(status_count, 2u);
  // Only the tire order line got the comment.
  xml::Element* tire_line = first_order->FindChildElement("OrderLine");
  ASSERT_NE(tire_line, nullptr);
  EXPECT_NE(tire_line->FindChildElement("comment"), nullptr);
  // The wrench line is untouched.
  auto lines_parsed =
      xpath::ParsePathString("document(\"c\")//OrderLine[ItemName=\"wrench\"]");
  auto wrench = eval.Eval(lines_parsed.value(), {}, XmlObject::Null());
  ASSERT_TRUE(wrench.ok());
  ASSERT_EQ(wrench->size(), 1u);
  EXPECT_EQ(wrench->front().element->FindChildElement("comment"), nullptr);
  // The shipped tire order was not selected.
  xml::Element* second_order = orders->at(1).element;
  EXPECT_EQ(second_order->FindChildElement("Status")->TextContent(), "shipped");
}

TEST_F(XQueryTest, WhereFiltersTuples) {
  MustExecute(R"(
    FOR $lab IN document("bio.xml")//lab
    WHERE $lab/name = "PMBL"
    UPDATE $lab { RENAME $lab TO archive })");
  // Only lab2 renamed.
  EXPECT_EQ(doc_->FindById("lab2")->name(), "archive");
  EXPECT_EQ(doc_->FindById("baselab")->name(), "lab");
}

TEST_F(XQueryTest, MultipleUpdateClauses) {
  MustExecute(R"(
    FOR $l2 IN document("bio.xml")//lab[@ID="lab2"],
        $b IN document("bio.xml")/db/biologist[@ID="jones1"]
    UPDATE $l2 { INSERT new_attribute(size,"small") }
    UPDATE $b { INSERT new_attribute(tenured,"yes") })");
  EXPECT_NE(doc_->FindById("lab2")->FindAttribute("size"), nullptr);
  EXPECT_NE(doc_->FindById("jones1")->FindAttribute("tenured"), nullptr);
}

TEST_F(XQueryTest, LetClauseBinds) {
  MustExecute(R"(
    FOR $p IN document("bio.xml")/paper
    LET $t := $p/title
    UPDATE $p { DELETE $t })");
  EXPECT_EQ(doc_->FindById("Smith991231")->FindChildElement("title"), nullptr);
}

TEST_F(XQueryTest, InsertCopyFromPathHasCopySemantics) {
  // Copy baselab's location into lab2; the original must stay.
  MustExecute(R"(
    FOR $src IN document("bio.xml")//lab[@ID="baselab"]/location,
        $dst IN document("bio.xml")//lab[@ID="lab2"]
    UPDATE $dst { INSERT $src })");
  EXPECT_NE(doc_->FindById("lab2")->FindChildElement("location"), nullptr);
  EXPECT_NE(doc_->FindById("baselab")->FindChildElement("location"), nullptr);
  // Deep copy, not alias.
  EXPECT_NE(doc_->FindById("lab2")->FindChildElement("location"),
            doc_->FindById("baselab")->FindChildElement("location"));
}

TEST_F(XQueryTest, BulkDeleteManyTuplesSkipsAlreadyDeleted) {
  // //lab binds lalab, baselab and lab2; //city binds cities including those
  // under labs. Deleting labs first must not break deleting cities bound
  // inside them (they are skipped as already-deleted).
  MustExecute(R"(
    FOR $lab IN document("bio.xml")//lab
    UPDATE $lab { DELETE $lab })");
  xpath::Evaluator eval(doc_.get());
  auto parsed = xpath::ParsePathString("document(\"b\")//lab");
  auto labs = eval.Eval(parsed.value(), {}, XmlObject::Null());
  ASSERT_TRUE(labs.ok());
  EXPECT_TRUE(labs->empty());
}

TEST_F(XQueryTest, FlwrQueryReturn) {
  auto stmt = ParseStatement(R"(
    FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John"]
    RETURN $c)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  NativeExecutor exec(doc.get());
  auto result = exec.EvalQuery(stmt.value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);  // two Johns
}

TEST_F(XQueryTest, UpdateTargetBoundNothingIsNoop) {
  NativeExecutor exec(doc_.get());
  Status s = exec.ExecuteString(R"(
    FOR $x IN document("bio.xml")/db/nosuch
    UPDATE $x { DELETE $x })");
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(exec.last_tuple_count(), 0u);
}

}  // namespace
}  // namespace xupd::xquery
