// Property-based tests (parameterized over seeds):
//  1. shred -> outer-union reconstruct round-trips randomized documents;
//  2. the same XQuery update script executed natively and against the
//     relational store under EVERY (delete x insert) strategy combination
//     yields the same document;
//  3. random primitive-operation sequences keep the native tree
//     serializable/reparsable (structural integrity fuzz).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/store.h"
#include "test_util.h"
#include "update/ops.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/eval.h"
#include "xpath/parser.h"
#include "xquery/executor.h"

namespace xupd {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededTest, ShredReconstructRoundTrip) {
  workload::SyntheticSpec spec{15, 4, 3};
  auto gen = workload::GenerateRandomizedSynthetic(spec, GetParam());
  ASSERT_TRUE(gen.ok());
  engine::RelationalStore::Options options;
  auto store = engine::RelationalStore::Create(gen->dtd, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Load(*gen->doc).ok());
  auto rebuilt = store.value()->Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(xml::DeepEqualUnordered(*gen->doc->root(),
                                      *rebuilt.value()->root()));
}

TEST_P(SeededTest, AllStrategyCombosAgreeWithNativeExecution) {
  workload::SyntheticSpec spec{10, 3, 3};
  auto gen = workload::GenerateRandomizedSynthetic(spec, GetParam());
  ASSERT_TRUE(gen.ok());

  // The update script: a multi-level delete, a subtree copy, and an inlined
  // delete. String comparisons are lexicographic on both sides.
  const char* kScript[] = {
      R"(FOR $d IN document("x"), $t IN $d//n2[v2 >= "800000"]
         UPDATE $d { DELETE $t })",
      R"(FOR $d IN document("x"), $src IN $d/n1[v1 < "400000"]
         UPDATE $d { INSERT $src })",
      R"(FOR $x IN document("x")//n1[v1 >= "900000"], $s IN $x/s1
         UPDATE $x { DELETE $s })",
  };

  // Native execution.
  auto native_doc = gen->doc->Clone();
  xquery::NativeExecutor native(native_doc.get());
  for (const char* q : kScript) {
    ASSERT_TRUE(native.ExecuteString(q).ok()) << q;
  }

  // Every strategy combination.
  const engine::DeleteStrategy dels[] = {
      engine::DeleteStrategy::kPerTupleTrigger,
      engine::DeleteStrategy::kPerStatementTrigger,
      engine::DeleteStrategy::kCascade, engine::DeleteStrategy::kAsr};
  const engine::InsertStrategy inss[] = {engine::InsertStrategy::kTuple,
                                         engine::InsertStrategy::kTable,
                                         engine::InsertStrategy::kAsr};
  for (auto del : dels) {
    for (auto ins : inss) {
      engine::RelationalStore::Options options;
      options.delete_strategy = del;
      options.insert_strategy = ins;
      auto store = engine::RelationalStore::Create(gen->dtd, options);
      ASSERT_TRUE(store.ok());
      ASSERT_TRUE(store.value()->Load(*gen->doc).ok());
      for (const char* q : kScript) {
        Status s = store.value()->ExecuteXQueryUpdate(q);
        ASSERT_TRUE(s.ok()) << engine::ToString(del) << "/"
                            << engine::ToString(ins) << ": " << s << "\n"
                            << q;
      }
      auto rebuilt = store.value()->Reconstruct();
      ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
      EXPECT_TRUE(xml::DeepEqualUnordered(*native_doc->root(),
                                          *rebuilt.value()->root()))
          << "strategies " << engine::ToString(del) << "/"
          << engine::ToString(ins) << " diverged from native execution";
    }
  }
}

TEST_P(SeededTest, RandomPrimitiveOpsKeepTreeWellFormed) {
  auto doc = testing::ParseBioDocument();
  // The fuzz inserts references under these names; declare them so the
  // round-trip reparse classifies them as IDREFs again.
  doc->DeclareRefAttribute("r0");
  doc->DeclareRefAttribute("r1");
  Rng rng(GetParam());
  update::UpdateExecutor exec(doc.get(), update::ExecutionModel::kOrdered);
  xpath::Evaluator eval(doc.get());

  auto all_elements = [&]() {
    auto parsed = xpath::ParsePathString("document(\"b\")//*");
    auto result = eval.Eval(parsed.value(), {}, xpath::XmlObject::Null());
    return result.ok() ? std::move(result).value()
                       : std::vector<xpath::XmlObject>{};
  };

  int applied = 0;
  for (int step = 0; step < 60; ++step) {
    auto elements = all_elements();
    if (elements.empty()) break;
    xpath::XmlObject target = elements[rng.Uniform(elements.size())];
    switch (rng.Uniform(5)) {
      case 0: {  // insert attribute (may collide: both outcomes legal)
        Status s = exec.Insert(
            target, update::Content::MakeAttribute(
                        "a" + std::to_string(rng.Uniform(4)), "v"));
        applied += s.ok() ? 1 : 0;
        break;
      }
      case 1: {  // insert element
        auto child = std::make_unique<xml::Element>(
            "x" + std::to_string(rng.Uniform(3)));
        child->AppendText(rng.RandomString(5));
        Status s = exec.Insert(target,
                               update::Content::MakeElement(std::move(child)));
        applied += s.ok() ? 1 : 0;
        break;
      }
      case 2: {  // insert reference
        Status s = exec.Insert(target, update::Content::MakeReference(
                                           "r" + std::to_string(rng.Uniform(2)),
                                           "baselab"));
        applied += s.ok() ? 1 : 0;
        break;
      }
      case 3: {  // rename
        if (exec.IsDeleted(target)) break;
        Status s = exec.Rename(target, "ren" + std::to_string(rng.Uniform(4)));
        applied += s.ok() ? 1 : 0;
        break;
      }
      case 4: {  // delete (skip the root)
        if (target.element == doc->root() || exec.IsDeleted(target)) break;
        Status s = exec.Delete(target);
        applied += s.ok() ? 1 : 0;
        break;
      }
    }
  }
  EXPECT_GT(applied, 10);

  // Whatever happened, the tree serializes and reparses identically. The
  // compact form is the faithful one: pretty-printing inserts indentation
  // into mixed content (elements holding both text and element children).
  xml::SerializeOptions compact;
  compact.pretty = false;
  std::string text = xml::Serialize(*doc, compact);
  xml::ParseOptions options;
  for (const std::string& r : doc->ref_attributes()) {
    options.ref_attributes.insert(r);
  }
  auto reparsed = xml::ParseXml(text, options);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_TRUE(xml::DeepEqual(*doc->root(), *reparsed->document->root()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace xupd
