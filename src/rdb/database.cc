#include "rdb/database.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "rdb/sql_executor.h"
#include "rdb/sql_parser.h"

namespace xupd::rdb {

namespace {

// Busy-wait so the simulated latency shows up in wall-clock measurements.
void SpinFor(double us) {
  if (us <= 0) return;
  Stopwatch sw;
  while (sw.ElapsedSeconds() * 1e6 < us) {
  }
}

}  // namespace

std::string MultiRowInsertSql(std::string_view table, size_t columns,
                              size_t rows) {
  std::string sql = "INSERT INTO ";
  sql += table;
  sql += " VALUES ";
  for (size_t r = 0; r < rows; ++r) {
    if (r > 0) sql += ", ";
    sql += "(";
    for (size_t c = 0; c < columns; ++c) {
      if (c > 0) sql += ", ";
      sql += "?";
    }
    sql += ")";
  }
  return sql;
}

bool Database::IsDdl(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateIndex:
    case sql::Statement::Kind::kCreateTrigger:
    case sql::Statement::Kind::kDrop:
      return true;
    default:
      return false;
  }
}

void Database::InvalidateStatementCache() {
  cache_index_.clear();
  cache_lru_.clear();
  BumpCatalogVersion();
}

void Database::BumpCatalogVersion() {
  ++catalog_version_;
  trigger_plans_.clear();
}

Status Database::Begin() {
  txn_.Begin(next_id_);
  return Status::OK();
}

Status Database::Commit() { return txn_.Commit(); }

Status Database::Rollback() {
  auto next_id = txn_.Rollback();
  if (!next_id.ok()) return next_id.status();
  next_id_ = next_id.value();
  return Status::OK();
}

Status Database::Savepoint(const std::string& name) {
  if (!txn_.active()) {
    return Status::InvalidArgument(
        "SAVEPOINT requires an active transaction");
  }
  txn_.Begin(next_id_, name);
  return Status::OK();
}

Status Database::RollbackTo(const std::string& name) {
  auto next_id = txn_.RollbackTo(name);
  if (!next_id.ok()) return next_id.status();
  next_id_ = next_id.value();
  return Status::OK();
}

Status Database::Release(const std::string& name) {
  return txn_.Release(name);
}

Status Database::ConsumeFailpoint() {
  if (fail_after_statements_ < 0) return Status::OK();
  if (fail_after_statements_ == 0) {
    fail_after_statements_ = -1;
    return Status::Internal("injected failure");
  }
  --fail_after_statements_;
  return Status::OK();
}

Status Database::CheckDdlBarrier(const sql::Statement& stmt) const {
  if (txn_.active() && IsDdl(stmt)) {
    return Status::InvalidArgument(
        "DDL is not allowed inside a transaction (catalog changes are not "
        "undoable; commit or roll back first)");
  }
  return Status::OK();
}

void Database::set_prepared_cache_capacity(size_t capacity) {
  cache_capacity_ = capacity;
  while (cache_lru_.size() > cache_capacity_) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

Status Database::Execute(std::string_view sql_text) {
  ++stats_.statements;
  SpinFor(statement_latency_us_);
  ++stats_.sql_parses;
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return stmt.status();
  // DDL invalidation happens inside the Executor, the choke point shared
  // with ExecuteQuery and the prepared paths.
  Executor exec(this);
  auto result = exec.Run(stmt.value());
  if (!result.ok()) return result.status();
  return Status::OK();
}

Result<ResultSet> Database::ExecuteQuery(std::string_view sql_text) {
  ++stats_.statements;
  SpinFor(statement_latency_us_);
  ++stats_.sql_parses;
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return stmt.status();
  Executor exec(this);
  return exec.Run(stmt.value());
}

Result<StatementHandle> Database::Prepare(std::string_view sql_text,
                                          bool cacheable) {
  auto it = cache_index_.find(sql_text);
  if (it != cache_index_.end()) {
    ++stats_.prepared_hits;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->second;
  }
  ++stats_.prepared_misses;
  ++stats_.sql_parses;
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return stmt.status();
  auto prepared = std::make_shared<PreparedStatement>();
  prepared->sql = std::string(sql_text);
  prepared->param_count = stmt.value().param_count;
  prepared->stmt = std::move(stmt).value();
  StatementHandle handle = std::move(prepared);
  // DDL is never cached: executing it would invalidate its own entry.
  if (cacheable && !IsDdl(handle->stmt) && cache_capacity_ > 0) {
    cache_lru_.emplace_front(handle->sql, handle);
    cache_index_[handle->sql] = cache_lru_.begin();
    if (cache_lru_.size() > cache_capacity_) {
      cache_index_.erase(cache_lru_.back().first);
      cache_lru_.pop_back();
    }
  }
  return handle;
}

Status Database::ExecutePrepared(const StatementHandle& handle,
                                 const std::vector<Value>& params) {
  auto result = ExecuteQueryPrepared(handle, params);
  if (!result.ok()) return result.status();
  return Status::OK();
}

Result<ResultSet> Database::ExecuteQueryPrepared(
    const StatementHandle& handle, const std::vector<Value>& params) {
  if (handle == nullptr) {
    return Status::InvalidArgument("null prepared statement handle");
  }
  if (static_cast<int>(params.size()) != handle->param_count) {
    return Status::InvalidArgument(
        "bound " + std::to_string(params.size()) + " parameters, statement has " +
        std::to_string(handle->param_count));
  }
  ++stats_.statements;
  SpinFor(statement_latency_us_);
  Executor exec(this, &params);
  return exec.Run(handle->stmt, &handle->plan_slot);
}

Status Database::ExecuteBound(std::string_view sql,
                              const std::vector<Value>& params,
                              bool cacheable) {
  auto handle = Prepare(sql, cacheable);
  if (!handle.ok()) return handle.status();
  return ExecutePrepared(handle.value(), params);
}

Result<ResultSet> Database::ExecuteQueryBound(std::string_view sql,
                                              const std::vector<Value>& params,
                                              bool cacheable) {
  auto handle = Prepare(sql, cacheable);
  if (!handle.ok()) return handle.status();
  return ExecuteQueryPrepared(handle.value(), params);
}

Result<Table*> Database::CreateTableDirect(TableSchema schema,
                                           bool transactional) {
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table '" + schema.name() + "' already exists");
  }
  std::string key = schema.name();
  auto table = std::make_unique<Table>(std::move(schema),
                                       transactional ? &txn_ : nullptr);
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

Status Database::DropTableDirect(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' not found");
  }
  // Cached plans may hold this Table*; force a re-plan before any reuse.
  BumpCatalogVersion();
  txn_.PurgeTable(it->second.get());
  std::string dropped = it->second->schema().name();
  tables_.erase(it);
  triggers_.erase(std::remove_if(triggers_.begin(), triggers_.end(),
                                 [&](const TriggerDef& t) {
                                   return EqualsIgnoreCase(t.table, dropped);
                                 }),
                 triggers_.end());
  return Status::OK();
}

Status Database::InsertDirect(Table* table, Row row) {
  auto rowid = table->Insert(std::move(row));
  if (!rowid.ok()) return rowid.status();
  ++stats_.rows_inserted;
  return Status::OK();
}

Table* Database::FindTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    out.push_back(table->schema().name());
  }
  return out;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size()) + " rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace xupd::rdb
