// Governance smoke tool for CI: drive an overloaded workload into every
// resource-governance surface — soft-budget load shedding, hard-budget
// kills, statement deadlines, cooperative cancellation — and prove the
// database degrades CLEANLY: every rejection carries the right governed
// status code, nothing partial lands, the diagnostic statements (SHOW
// HEALTH / SHOW METRICS / CHECK INTEGRITY / SET) stay admitted throughout,
// and lifting the pressure restores full service with integrity intact.
// Exits nonzero on any violation, so a crash or a silently-admitted
// statement under pressure fails the build.
//
//   $ ./example_governance_smoke            (no arguments)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "rdb/database.h"
#include "rdb/governance.h"

using namespace xupd;

namespace {

int failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

int64_t Count(rdb::Database& db, const char* table) {
  auto rows = db.ExecuteQuery(std::string("SELECT COUNT(*) FROM ") + table);
  if (!rows.ok()) return -1;
  return rows->rows[0][0].AsInt();
}

}  // namespace

int main() {
  rdb::Database db;
  Check(db.Execute("CREATE TABLE t (id INTEGER, payload VARCHAR)").ok(),
        "schema creation");

  // Warm load: the data every later phase must leave untouched.
  constexpr int kWarmRows = 5000;
  for (int i = 0; i < kWarmRows; ++i) {
    Status s = db.ExecuteBound(
        "INSERT INTO t VALUES (?, ?)",
        {rdb::Value::Int(i), rdb::Value::Str("row-" + std::to_string(i))});
    if (!s.ok()) {
      std::fprintf(stderr, "FAIL: warm load: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // --- Phase 1: soft-budget overload => every new statement sheds --------
  rdb::MemoryAccountant& mem = db.memory_accountant();
  mem.set_soft_budget(1);
  int shed = 0;
  for (int i = 0; i < 200; ++i) {
    Status s = db.ExecuteBound("INSERT INTO t VALUES (?, ?)",
                               {rdb::Value::Int(kWarmRows + i),
                                rdb::Value::Str("overload")});
    if (s.ok()) {
      Check(false, "statement admitted while over the soft budget");
      break;
    }
    Check(s.code() == StatusCode::kResourceExhausted,
          "shed status is kResourceExhausted");
    ++shed;
  }
  Check(shed == 200, "all overload statements were shed");
  // Diagnostics stay admitted under pressure — this is how an operator
  // sees what is wrong and fixes it.
  Check(db.ExecuteQuery("SHOW HEALTH").ok(), "SHOW HEALTH under pressure");
  Check(db.ExecuteQuery("SHOW METRICS").ok(), "SHOW METRICS under pressure");
  Check(db.ExecuteQuery("CHECK INTEGRITY").ok(),
        "CHECK INTEGRITY under pressure");
  Check(db.Execute("SET STATEMENT_TIMEOUT 0").ok(), "SET under pressure");
  Check(db.metrics().Counter("stmt.shed")->load(std::memory_order_relaxed) >=
            static_cast<uint64_t>(shed),
        "stmt.shed counter tracked the shed statements");
  mem.set_soft_budget(0);

  // --- Phase 2: statement-deadline storm --------------------------------
  db.set_statement_latency_us(5000);  // every statement "takes" 5ms...
  db.set_statement_timeout_us(100);   // ...against a 100us deadline
  for (int i = 0; i < 50; ++i) {
    Status s = db.ExecuteBound("INSERT INTO t VALUES (?, ?)",
                               {rdb::Value::Int(kWarmRows + i),
                                rdb::Value::Str("too-slow")});
    Check(s.code() == StatusCode::kDeadlineExceeded,
          "overloaded statement returns kDeadlineExceeded");
  }
  db.set_statement_timeout_us(0);
  db.set_statement_latency_us(0);
  Check(db.metrics()
            .Counter("stmt.deadline_exceeded")
            ->load(std::memory_order_relaxed) >= 50,
        "stmt.deadline_exceeded counter tracked the kills");

  // --- Phase 3: cooperative cancellation --------------------------------
  // Latched cancel: everything is rejected until Reset().
  db.cancel_token().Cancel();
  Status cancelled = db.Execute("INSERT INTO t VALUES (0, 'x')");
  Check(cancelled.code() == StatusCode::kCancelled,
        "cancelled statement returns kCancelled");
  Check(db.ExecuteQuery("SELECT COUNT(*) FROM t").status().code() ==
            StatusCode::kCancelled,
        "cancel latches until Reset");
  db.cancel_token().Reset();
  // Cross-thread cancel of a running statement: a long scan dies cleanly.
  {
    std::thread canceller([&db] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      db.cancel_token().Cancel();
    });
    Status s = Status::OK();
    // Re-run scans until the canceller lands mid-statement (or latches and
    // kills the next admission — either way the status must be governed).
    while (s.ok()) {
      s = db.ExecuteQuery("SELECT COUNT(*) FROM t WHERE id >= 0").status();
    }
    canceller.join();
    Check(s.code() == StatusCode::kCancelled,
          "cross-thread cancel returns kCancelled");
    db.cancel_token().Reset();
  }

  // --- Phase 4: hard budget => kResourceExhausted, nothing partial ------
  mem.set_hard_budget(1);
  Status hard = db.Execute("INSERT INTO t VALUES (0, 'over-hard')");
  Check(hard.code() == StatusCode::kResourceExhausted,
        "hard-budget kill returns kResourceExhausted");
  mem.set_hard_budget(0);

  // --- Recovery: pressure lifted, full service restored -----------------
  Check(Count(db, "t") == kWarmRows,
        "no governed rejection leaked partial effects");
  for (int i = 0; i < 100; ++i) {
    Status s = db.ExecuteBound("INSERT INTO t VALUES (?, ?)",
                               {rdb::Value::Int(kWarmRows + i),
                                rdb::Value::Str("recovered")});
    Check(s.ok(), "post-pressure insert admitted");
  }
  Check(Count(db, "t") == kWarmRows + 100, "post-pressure inserts landed");
  Check(db.VerifyIntegrity().empty(), "integrity scrub clean");

  if (failures != 0) {
    std::fprintf(stderr, "governance smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("governance smoke: all surfaces shed cleanly and recovered\n");
  return 0;
}
