// Parser for the XQuery update/query surface syntax of §4.
#ifndef XUPD_XQUERY_PARSER_H_
#define XUPD_XQUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xquery/ast.h"

namespace xupd::xquery {

/// Parses a complete FOR...LET...WHERE...UPDATE/RETURN statement.
Result<Statement> ParseStatement(std::string_view text);

}  // namespace xupd::xquery

#endif  // XUPD_XQUERY_PARSER_H_
