#include "rdb/txn.h"

#include <algorithm>

#include "rdb/table.h"

namespace xupd::rdb {

void TransactionManager::Begin(int64_t next_id) {
  scopes_.push_back({log_.size(), next_id});
  // First-use reservation (96 KiB): typical per-operation logs fit without a
  // single reallocation, and clear() keeps the capacity for later
  // transactions, so steady-state appends never copy.
  if (log_.capacity() == 0) log_.reserve(4096);
  ++stats_->txn_begins;
}

Status TransactionManager::Commit() {
  if (scopes_.empty()) {
    return Status::InvalidArgument("COMMIT without an active transaction");
  }
  scopes_.pop_back();
  // Outermost commit: the changes are durable, the log is dead weight.
  if (scopes_.empty()) {
    log_.clear();
    old_values_.clear();
  }
  ++stats_->txn_commits;
  return Status::OK();
}

Result<int64_t> TransactionManager::Rollback() {
  if (scopes_.empty()) {
    return Status::InvalidArgument("ROLLBACK without an active transaction");
  }
  const Scope scope = scopes_.back();
  scopes_.pop_back();
  while (log_.size() > scope.undo_start) {
    const UndoRecord& rec = log_.back();
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        rec.table->UndoInsert(rec.rowid);
        break;
      case UndoRecord::Kind::kDelete:
        rec.table->UndoDelete(rec.rowid);
        break;
      case UndoRecord::Kind::kUpdate:
        rec.table->UndoSetColumn(rec.rowid, rec.column, old_values_.back());
        old_values_.pop_back();
        break;
    }
    log_.pop_back();
  }
  ++stats_->txn_rollbacks;
  return scope.next_id;
}

void TransactionManager::PurgeTable(const Table* table) {
  if (log_.empty()) return;
  // Removing records shifts positions; every scope boundary must be remapped
  // to the count of surviving records that preceded it. The old-value vector
  // is compacted in step with the surviving kUpdate records (entries pair up
  // with kUpdate records in log order).
  std::vector<size_t> survivors_before(scopes_.size(), 0);
  size_t kept = 0;
  size_t next_value = 0;
  std::vector<UndoRecord> filtered;
  filtered.reserve(log_.size());
  std::vector<Value> filtered_values;
  filtered_values.reserve(old_values_.size());
  for (size_t i = 0; i < log_.size(); ++i) {
    for (size_t s = 0; s < scopes_.size(); ++s) {
      if (scopes_[s].undo_start == i) survivors_before[s] = kept;
    }
    bool is_update = log_[i].kind == UndoRecord::Kind::kUpdate;
    if (log_[i].table != table) {
      if (is_update) {
        filtered_values.push_back(std::move(old_values_[next_value]));
      }
      filtered.push_back(log_[i]);
      ++kept;
    }
    if (is_update) ++next_value;
  }
  for (size_t s = 0; s < scopes_.size(); ++s) {
    if (scopes_[s].undo_start >= log_.size()) {
      scopes_[s].undo_start = kept;
    } else {
      scopes_[s].undo_start = survivors_before[s];
    }
  }
  log_ = std::move(filtered);
  old_values_ = std::move(filtered_values);
}

}  // namespace xupd::rdb
