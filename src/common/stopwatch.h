// Wall-clock stopwatch for the benchmark harness.
#ifndef XUPD_COMMON_STOPWATCH_H_
#define XUPD_COMMON_STOPWATCH_H_

#include <chrono>

namespace xupd {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xupd

#endif  // XUPD_COMMON_STOPWATCH_H_
