// Database: catalog of tables + AFTER DELETE triggers, and the SQL entry
// points. Every Execute/ExecuteQuery call parses its SQL text — statement
// issue overhead is part of the cost model the paper studies (§6: "issuing
// multiple separate SQL statements incurs overhead").
#ifndef XUPD_RDB_DATABASE_H_
#define XUPD_RDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rdb/result.h"
#include "rdb/sql_ast.h"
#include "rdb/stats.h"
#include "rdb/table.h"

namespace xupd::rdb {

class Database {
 public:
  Database() = default;

  /// Parses and executes a DDL/DML statement.
  Status Execute(std::string_view sql);

  /// Parses and executes a SELECT, returning its rows.
  Result<ResultSet> ExecuteQuery(std::string_view sql);

  /// Direct bulk-load API (bypasses SQL): used by the shredder to load
  /// documents quickly; benchmark updates always go through Execute().
  Result<Table*> CreateTableDirect(TableSchema schema);
  Status InsertDirect(Table* table, Row row);

  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;
  std::vector<std::string> TableNames() const;

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// Simulated per-statement issue latency (microseconds), applied to every
  /// Execute/ExecuteQuery call — models the client/server round trip +
  /// optimizer cost a 2001-era JDBC/DB2 stack pays per statement (trigger
  /// bodies run inside the engine and do NOT pay it). Default 0 (off); the
  /// Table 2 bench uses it to reproduce the paper's cost regime (DESIGN.md).
  double statement_latency_us() const { return statement_latency_us_; }
  void set_statement_latency_us(double us) { statement_latency_us_ = us; }

  /// A next-id counter for the mapping layer (the paper's "systemwide next
  /// available id", §6.2.2).
  int64_t next_id() const { return next_id_; }
  void set_next_id(int64_t v) { next_id_ = v; }
  int64_t AllocateId() { return next_id_++; }
  /// Advances next_id by `count` and returns the first id of the block.
  int64_t AllocateIdBlock(int64_t count) {
    int64_t first = next_id_;
    next_id_ += count;
    return first;
  }

  struct TriggerDef {
    std::string name;
    std::string table;
    sql::TriggerGranularity granularity = sql::TriggerGranularity::kRow;
    std::vector<std::shared_ptr<sql::Statement>> body;
  };
  const std::vector<TriggerDef>& triggers() const { return triggers_; }

 private:
  friend class Executor;

  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  std::vector<TriggerDef> triggers_;
  Stats stats_;
  int64_t next_id_ = 1;
  double statement_latency_us_ = 0;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_DATABASE_H_
