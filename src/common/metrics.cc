#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace xupd {

double Histogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (p <= 0) return static_cast<double>(min());
  if (p >= 100) return static_cast<double>(max());
  // Rank of the target sample, 1-based; ceil so p=50 over 2 samples picks
  // the first.
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const uint64_t n =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= rank) {
      // Interpolate linearly inside the bucket by how far the rank sits
      // among its samples.
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(n);
      const double v = static_cast<double>(BucketLowerBound(i)) +
                       frac * static_cast<double>(BucketWidth(i));
      return std::clamp(v, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    seen += n;
  }
  return static_cast<double>(max());
}

void Histogram::Merge(const Histogram& other) {
  if (other.count() == 0) return;
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<size_t>(i)].fetch_add(
        other.buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  const uint64_t omin = other.min_.load(std::memory_order_relaxed);
  uint64_t m = min_.load(std::memory_order_relaxed);
  while (omin < m &&
         !min_.compare_exchange_weak(m, omin, std::memory_order_relaxed)) {
  }
  const uint64_t omax = other.max_.load(std::memory_order_relaxed);
  m = max_.load(std::memory_order_relaxed);
  while (omax > m &&
         !max_.compare_exchange_weak(m, omax, std::memory_order_relaxed)) {
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

const char* ToString(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kStatement: return "statement";
    case TraceEvent::Kind::kTxn: return "txn";
    case TraceEvent::Kind::kWalUnit: return "wal_unit";
    case TraceEvent::Kind::kFsync: return "fsync";
    case TraceEvent::Kind::kCheckpoint: return "checkpoint";
    case TraceEvent::Kind::kRecovery: return "recovery";
    case TraceEvent::Kind::kScrub: return "scrub";
    case TraceEvent::Kind::kEngineOp: return "engine_op";
  }
  return "unknown";
}

std::vector<TraceEvent> EventLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<std::string> EventLog::ToJsonLines() const {
  const std::vector<TraceEvent> events = Events();
  std::vector<std::string> out;
  out.reserve(events.size());
  char buf[256];
  for (const TraceEvent& e : events) {
    int n = std::snprintf(
        buf, sizeof buf,
        "{\"kind\":\"%s\",\"start_ns\":%" PRIu64 ",\"duration_ns\":%" PRIu64
        ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 "%s%s%s}",
        ToString(e.kind), e.start_ns, e.duration_ns, e.a, e.b,
        e.detail != nullptr ? ",\"detail\":\"" : "",
        e.detail != nullptr ? e.detail : "", e.detail != nullptr ? "\"" : "");
    out.emplace_back(buf, static_cast<size_t>(std::max(n, 0)));
  }
  return out;
}

std::string EventLog::DumpJson() const {
  std::string out = "[";
  bool first = true;
  for (std::string& line : ToJsonLines()) {
    if (!first) out += ',';
    first = false;
    out += line;
  }
  out += ']';
  return out;
}

std::atomic<uint64_t>* MetricsRegistry::Counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<uint64_t>>(0))
             .first;
  }
  return it->second.get();
}

std::atomic<int64_t>* MetricsRegistry::Gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<int64_t>>(0))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", name.c_str(),
                  value->load(std::memory_order_relaxed));
    out += buf;
  }
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof buf, "%s %" PRId64 "\n", name.c_str(),
                  value->load(std::memory_order_relaxed));
    out += buf;
  }
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot s = hist->Snapshot();
    std::snprintf(buf, sizeof buf,
                  "%s.count %" PRIu64 "\n%s.p50 %.0f\n%s.p95 %.0f\n"
                  "%s.p99 %.0f\n%s.max %" PRIu64 "\n%s.sum %" PRIu64 "\n",
                  name.c_str(), s.count, name.c_str(), s.p50, name.c_str(),
                  s.p95, name.c_str(), s.p99, name.c_str(), s.max,
                  name.c_str(), s.sum);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  char buf[200];
  bool first = true;
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof buf, "%s\"%s\":%" PRIu64, first ? "" : ",",
                  name.c_str(), value->load(std::memory_order_relaxed));
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof buf, "%s\"%s\":%" PRId64, first ? "" : ",",
                  name.c_str(), value->load(std::memory_order_relaxed));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot s = hist->Snapshot();
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
                  ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
                  first ? "" : ",", name.c_str(), s.count, s.sum, s.min, s.max,
                  s.p50, s.p95, s.p99);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace xupd
