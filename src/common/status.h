// Status: lightweight error propagation for xupd (Arrow/RocksDB idiom).
//
// Library code never throws across API boundaries; fallible functions return
// Status or Result<T> (see result.h).
#ifndef XUPD_COMMON_STATUS_H_
#define XUPD_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace xupd {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kParseError = 5,        ///< XML / DTD / XQuery / SQL syntax errors.
  kConstraintViolation = 6,  ///< Schema or update-semantics violations.
  kUnimplemented = 7,
  kInternal = 8,
  kUnavailable = 9,  ///< Degraded mode: retry later (e.g. store read-only).
  kDeadlineExceeded = 10,   ///< Statement/operation deadline expired.
  kResourceExhausted = 11,  ///< Memory budget (or other quota) exceeded.
  kCancelled = 12,          ///< Cooperatively cancelled via a CancelToken.
};

/// Returns a stable human-readable name for a code ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to pass by value: the OK state carries no
/// allocation; error states hold a heap string.
class Status {
 public:
  /// Constructs OK.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace xupd

/// Propagates a non-OK Status from the current function.
#define XUPD_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::xupd::Status _xupd_status = (expr);         \
    if (!_xupd_status.ok()) return _xupd_status;  \
  } while (0)

#define XUPD_CONCAT_IMPL(x, y) x##y
#define XUPD_CONCAT(x, y) XUPD_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define XUPD_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  XUPD_ASSIGN_OR_RETURN_IMPL(XUPD_CONCAT(_xupd_result_, __LINE__), lhs, rexpr)

#define XUPD_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value();

#endif  // XUPD_COMMON_STATUS_H_
