#include "xquery/parser.h"

#include "common/str_util.h"
#include "xpath/lexer.h"
#include "xpath/parser.h"

namespace xupd::xquery {

using xpath::Lexer;
using xpath::Token;
using xpath::TokenType;

namespace {

Result<std::vector<ForClause>> ParseForClauses(Lexer* lexer) {
  // "FOR" already consumed.
  std::vector<ForClause> clauses;
  while (true) {
    auto var = lexer->Expect(TokenType::kVariable, "variable after FOR");
    if (!var.ok()) return var.status();
    if (!lexer->ConsumeKeyword("in")) {
      return lexer->Error("expected IN in FOR clause");
    }
    auto path = xpath::ParsePath(lexer);
    if (!path.ok()) return path.status();
    clauses.push_back(ForClause{var.value().text, std::move(path).value()});
    if (lexer->Peek().type == TokenType::kComma) {
      lexer->Next();
      continue;
    }
    break;
  }
  return clauses;
}

Result<std::vector<LetClause>> ParseLetClauses(Lexer* lexer) {
  std::vector<LetClause> clauses;
  while (true) {
    auto var = lexer->Expect(TokenType::kVariable, "variable after LET");
    if (!var.ok()) return var.status();
    auto assign = lexer->Expect(TokenType::kAssign, "':=' in LET clause");
    if (!assign.ok()) return assign.status();
    auto path = xpath::ParsePath(lexer);
    if (!path.ok()) return path.status();
    clauses.push_back(LetClause{var.value().text, std::move(path).value()});
    if (lexer->Peek().type == TokenType::kComma) {
      lexer->Next();
      continue;
    }
    break;
  }
  return clauses;
}

Result<std::vector<xpath::Predicate>> ParseWhere(Lexer* lexer) {
  // "WHERE" already consumed. Comma-separated predicates form a conjunction.
  std::vector<xpath::Predicate> preds;
  while (true) {
    auto pred = xpath::ParsePredicate(lexer);
    if (!pred.ok()) return pred.status();
    preds.push_back(std::move(pred).value());
    if (lexer->Peek().type == TokenType::kComma) {
      lexer->Next();
      continue;
    }
    break;
  }
  return preds;
}

Result<ContentExpr> ParseContent(Lexer* lexer) {
  ContentExpr content;
  const Token& t = lexer->Peek();
  if (t.type == TokenType::kLt) {
    auto frag = lexer->NextContent();
    if (!frag.ok()) return frag.status();
    if (frag.value().type != TokenType::kXmlFragment) {
      return lexer->Error("malformed XML constructor");
    }
    content.kind = ContentExpr::Kind::kXmlFragment;
    content.text = frag.value().text;
    return content;
  }
  if (t.type == TokenType::kString) {
    content.kind = ContentExpr::Kind::kString;
    content.text = lexer->Next().text;
    return content;
  }
  if (t.type == TokenType::kName && (EqualsIgnoreCase(t.text, "new_attribute") ||
                                     EqualsIgnoreCase(t.text, "new_ref"))) {
    bool is_attr = EqualsIgnoreCase(t.text, "new_attribute");
    lexer->Next();
    auto open = lexer->Expect(TokenType::kLParen, "'('");
    if (!open.ok()) return open.status();
    const Token& name_tok = lexer->Peek();
    if (name_tok.type != TokenType::kName &&
        name_tok.type != TokenType::kString) {
      return lexer->Error("expected name in constructor");
    }
    content.name = lexer->Next().text;
    auto comma = lexer->Expect(TokenType::kComma, "','");
    if (!comma.ok()) return comma.status();
    const Token& val_tok = lexer->Peek();
    if (val_tok.type == TokenType::kString || val_tok.type == TokenType::kName) {
      content.text = lexer->Next().text;
    } else if (val_tok.type == TokenType::kNumber) {
      content.text = std::to_string(lexer->Next().number);
    } else {
      return lexer->Error("expected value in constructor");
    }
    auto close = lexer->Expect(TokenType::kRParen, "')'");
    if (!close.ok()) return close.status();
    content.kind = is_attr ? ContentExpr::Kind::kNewAttribute
                           : ContentExpr::Kind::kNewRef;
    return content;
  }
  // Otherwise: a path (e.g. INSERT $source).
  auto path = xpath::ParsePath(lexer);
  if (!path.ok()) return path.status();
  content.kind = ContentExpr::Kind::kPath;
  content.path = std::move(path).value();
  return content;
}

Result<UpdateOp> ParseUpdateOp(Lexer* lexer);

Result<SubOp> ParseSubOp(Lexer* lexer) {
  SubOp op;
  if (lexer->ConsumeKeyword("delete")) {
    op.kind = SubOp::Kind::kDelete;
    auto path = xpath::ParsePath(lexer);
    if (!path.ok()) return path.status();
    op.child = std::move(path).value();
    return op;
  }
  if (lexer->ConsumeKeyword("rename")) {
    op.kind = SubOp::Kind::kRename;
    auto path = xpath::ParsePath(lexer);
    if (!path.ok()) return path.status();
    op.child = std::move(path).value();
    if (!lexer->ConsumeKeyword("to")) {
      return lexer->Error("expected TO in RENAME");
    }
    const Token& name_tok = lexer->Peek();
    if (name_tok.type != TokenType::kName &&
        name_tok.type != TokenType::kString) {
      return lexer->Error("expected new name after TO");
    }
    op.rename_to = lexer->Next().text;
    return op;
  }
  if (lexer->ConsumeKeyword("insert")) {
    op.kind = SubOp::Kind::kInsert;
    auto content = ParseContent(lexer);
    if (!content.ok()) return content.status();
    op.content = std::move(content).value();
    if (lexer->ConsumeKeyword("before")) {
      op.position = SubOp::Position::kBefore;
    } else if (lexer->ConsumeKeyword("after")) {
      op.position = SubOp::Position::kAfter;
    } else {
      op.position = SubOp::Position::kAppend;
      return op;
    }
    auto ref = xpath::ParsePath(lexer);
    if (!ref.ok()) return ref.status();
    op.child = std::move(ref).value();
    return op;
  }
  if (lexer->ConsumeKeyword("replace")) {
    op.kind = SubOp::Kind::kReplace;
    auto path = xpath::ParsePath(lexer);
    if (!path.ok()) return path.status();
    op.child = std::move(path).value();
    if (!lexer->ConsumeKeyword("with")) {
      return lexer->Error("expected WITH in REPLACE");
    }
    auto content = ParseContent(lexer);
    if (!content.ok()) return content.status();
    op.content = std::move(content).value();
    return op;
  }
  if (lexer->ConsumeKeyword("for")) {
    op.kind = SubOp::Kind::kNestedUpdate;
    auto nested = std::make_unique<UpdateOp>();
    auto fors = ParseForClauses(lexer);
    if (!fors.ok()) return fors.status();
    nested->for_clauses = std::move(fors).value();
    if (lexer->ConsumeKeyword("where")) {
      auto where = ParseWhere(lexer);
      if (!where.ok()) return where.status();
      nested->where = std::move(where).value();
    }
    if (!lexer->ConsumeKeyword("update")) {
      return lexer->Error("expected UPDATE in nested update");
    }
    auto inner = ParseUpdateOp(lexer);
    if (!inner.ok()) return inner.status();
    nested->target = std::move(inner.value().target);
    nested->sub_ops = std::move(inner.value().sub_ops);
    op.nested = std::move(nested);
    return op;
  }
  return lexer->Error(
      "expected DELETE, RENAME, INSERT, REPLACE or nested FOR...UPDATE");
}

// Parses "$target { subop, ... }" — the part after the UPDATE keyword.
Result<UpdateOp> ParseUpdateOp(Lexer* lexer) {
  UpdateOp op;
  auto target = xpath::ParsePath(lexer);
  if (!target.ok()) return target.status();
  op.target = std::move(target).value();
  auto open = lexer->Expect(TokenType::kLBrace, "'{' after UPDATE target");
  if (!open.ok()) return open.status();
  while (true) {
    auto sub = ParseSubOp(lexer);
    if (!sub.ok()) return sub.status();
    op.sub_ops.push_back(std::move(sub).value());
    if (lexer->Peek().type == TokenType::kComma) {
      lexer->Next();
      continue;
    }
    break;
  }
  auto close = lexer->Expect(TokenType::kRBrace, "'}' after update operations");
  if (!close.ok()) return close.status();
  return op;
}

}  // namespace

Result<Statement> ParseStatement(std::string_view text) {
  Lexer lexer(text);
  Statement stmt;
  if (lexer.ConsumeKeyword("for")) {
    auto fors = ParseForClauses(&lexer);
    if (!fors.ok()) return fors.status();
    stmt.for_clauses = std::move(fors).value();
  }
  if (lexer.ConsumeKeyword("let")) {
    auto lets = ParseLetClauses(&lexer);
    if (!lets.ok()) return lets.status();
    stmt.let_clauses = std::move(lets).value();
  }
  if (lexer.ConsumeKeyword("where")) {
    auto where = ParseWhere(&lexer);
    if (!where.ok()) return where.status();
    stmt.where = std::move(where).value();
  }
  bool saw_clause = false;
  while (lexer.ConsumeKeyword("update")) {
    saw_clause = true;
    auto op = ParseUpdateOp(&lexer);
    if (!op.ok()) return op.status();
    stmt.updates.push_back(std::move(op).value());
  }
  if (!saw_clause) {
    if (lexer.ConsumeKeyword("return")) {
      auto path = xpath::ParsePath(&lexer);
      if (!path.ok()) return path.status();
      stmt.return_path = std::move(path).value();
    } else {
      return lexer.Error("expected UPDATE or RETURN clause");
    }
  }
  if (lexer.Peek().type != TokenType::kEnd) {
    return lexer.Error("trailing input after statement");
  }
  return stmt;
}

}  // namespace xupd::xquery
