#include "xml/node.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"

namespace xupd::xml {

const Attribute* Element::FindAttribute(std::string_view name) const {
  for (const Attribute& a : attrs_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

Status Element::InsertAttribute(std::string name, std::string value) {
  if (FindAttribute(name) != nullptr) {
    return Status::AlreadyExists("attribute '" + name + "' already exists on <" +
                                 name_ + ">");
  }
  attrs_.push_back(Attribute{std::move(name), std::move(value)});
  return Status::OK();
}

void Element::SetAttribute(std::string name, std::string value) {
  for (Attribute& a : attrs_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attrs_.push_back(Attribute{std::move(name), std::move(value)});
}

Status Element::RemoveAttribute(std::string_view name) {
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (it->name == name) {
      attrs_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("attribute '" + std::string(name) + "' not found on <" +
                          name_ + ">");
}

Status Element::RenameAttribute(std::string_view old_name, std::string new_name) {
  if (old_name != new_name && FindAttribute(new_name) != nullptr) {
    return Status::AlreadyExists("attribute '" + new_name + "' already exists");
  }
  for (Attribute& a : attrs_) {
    if (a.name == old_name) {
      a.name = std::move(new_name);
      return Status::OK();
    }
  }
  return Status::NotFound("attribute '" + std::string(old_name) + "' not found");
}

const RefList* Element::FindRefList(std::string_view name) const {
  for (const RefList& r : refs_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

RefList* Element::FindRefList(std::string_view name) {
  for (RefList& r : refs_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void Element::AppendRef(std::string name, std::string target) {
  if (RefList* list = FindRefList(name)) {
    list->targets.push_back(std::move(target));
    return;
  }
  refs_.push_back(RefList{std::move(name), {std::move(target)}});
}

Status Element::InsertRefAt(std::string_view name, size_t index,
                            std::string target) {
  RefList* list = FindRefList(name);
  if (list == nullptr) {
    return Status::NotFound("IDREFS list '" + std::string(name) + "' not found");
  }
  if (index > list->targets.size()) {
    return Status::OutOfRange("IDREFS index out of range");
  }
  list->targets.insert(list->targets.begin() + static_cast<ptrdiff_t>(index),
                       std::move(target));
  return Status::OK();
}

Status Element::RemoveRefAt(std::string_view name, size_t index) {
  for (auto it = refs_.begin(); it != refs_.end(); ++it) {
    if (it->name == name) {
      if (index >= it->targets.size()) {
        return Status::OutOfRange("IDREFS index out of range");
      }
      it->targets.erase(it->targets.begin() + static_cast<ptrdiff_t>(index));
      if (it->targets.empty()) refs_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("IDREFS list '" + std::string(name) + "' not found");
}

Status Element::RenameRefList(std::string_view old_name, std::string new_name) {
  if (old_name != new_name && FindRefList(new_name) != nullptr) {
    return Status::AlreadyExists("IDREFS list '" + new_name + "' already exists");
  }
  for (RefList& r : refs_) {
    if (r.name == old_name) {
      r.name = std::move(new_name);
      return Status::OK();
    }
  }
  return Status::NotFound("IDREFS list '" + std::string(old_name) + "' not found");
}

Status Element::ReplaceRefAt(std::string_view name, size_t index,
                             std::string target) {
  RefList* list = FindRefList(name);
  if (list == nullptr) {
    return Status::NotFound("IDREFS list '" + std::string(name) + "' not found");
  }
  if (index >= list->targets.size()) {
    return Status::OutOfRange("IDREFS index out of range");
  }
  list->targets[index] = std::move(target);
  return Status::OK();
}

size_t Element::IndexOfChild(const Node* node) const {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == node) return i;
  }
  return kNpos;
}

Element* Element::AppendChild(std::unique_ptr<Node> node) {
  node->parent_ = this;
  Node* raw = node.get();
  children_.push_back(std::move(node));
  return raw->is_element() ? static_cast<Element*>(raw) : nullptr;
}

Status Element::InsertChildAt(size_t index, std::unique_ptr<Node> node) {
  if (index > children_.size()) {
    return Status::OutOfRange("child index out of range");
  }
  node->parent_ = this;
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(index),
                   std::move(node));
  return Status::OK();
}

Result<std::unique_ptr<Node>> Element::RemoveChildAt(size_t index) {
  if (index >= children_.size()) {
    return Status::OutOfRange("child index out of range");
  }
  std::unique_ptr<Node> out = std::move(children_[index]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  out->parent_ = nullptr;
  return out;
}

Element* Element::AppendSimpleChild(std::string name, std::string text) {
  auto child = std::make_unique<Element>(std::move(name));
  if (!text.empty()) child->AppendText(std::move(text));
  return static_cast<Element*>(AppendChild(std::move(child)));
}

void Element::AppendText(std::string text) {
  AppendChild(std::make_unique<Text>(std::move(text)));
}

Element* Element::FindChildElement(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element()) {
      auto* e = static_cast<Element*>(c.get());
      if (e->name() == name) return e;
    }
  }
  return nullptr;
}

std::string Element::TextContent() const {
  std::string out;
  for (const auto& c : children_) {
    if (c->is_text()) out += static_cast<const Text*>(c.get())->value();
  }
  return out;
}

std::unique_ptr<Element> Element::Clone() const {
  auto copy = std::make_unique<Element>(name_);
  copy->attrs_ = attrs_;
  copy->refs_ = refs_;
  copy->children_.reserve(children_.size());
  for (const auto& c : children_) {
    copy->AppendChild(c->CloneNode());
  }
  return copy;
}

std::unique_ptr<Node> Element::CloneNode() const { return Clone(); }

size_t Element::SubtreeElementCount() const {
  size_t n = 1;
  for (const auto& c : children_) {
    if (c->is_element()) {
      n += static_cast<const Element*>(c.get())->SubtreeElementCount();
    }
  }
  return n;
}

namespace {

// Order-insensitive comparison of attribute sets and reflist name sets.
bool AttrsEqual(const Element& a, const Element& b) {
  if (a.attributes().size() != b.attributes().size()) return false;
  for (const Attribute& attr : a.attributes()) {
    const Attribute* other = b.FindAttribute(attr.name);
    if (other == nullptr || other->value != attr.value) return false;
  }
  return true;
}

bool RefsEqual(const Element& a, const Element& b) {
  if (a.ref_lists().size() != b.ref_lists().size()) return false;
  for (const RefList& r : a.ref_lists()) {
    const RefList* other = b.FindRefList(r.name);
    if (other == nullptr || other->targets != r.targets) return false;
  }
  return true;
}

bool DeepEqualImpl(const Node& a, const Node& b, bool ordered);

// Canonical sort key for unordered child comparison.
std::string UnorderedKey(const Node& n);

bool ChildrenEqual(const Element& a, const Element& b, bool ordered) {
  if (a.child_count() != b.child_count()) return false;
  if (ordered) {
    for (size_t i = 0; i < a.child_count(); ++i) {
      if (!DeepEqualImpl(*a.child(i), *b.child(i), ordered)) return false;
    }
    return true;
  }
  // Unordered: match children as multisets via canonical serialization keys.
  std::multimap<std::string, const Node*> bkeys;
  for (size_t i = 0; i < b.child_count(); ++i) {
    bkeys.emplace(UnorderedKey(*b.child(i)), b.child(i));
  }
  for (size_t i = 0; i < a.child_count(); ++i) {
    auto it = bkeys.find(UnorderedKey(*a.child(i)));
    if (it == bkeys.end()) return false;
    bkeys.erase(it);
  }
  return true;
}

bool DeepEqualImpl(const Node& a, const Node& b, bool ordered) {
  if (a.kind() != b.kind()) return false;
  if (a.is_text()) {
    return static_cast<const Text&>(a).value() ==
           static_cast<const Text&>(b).value();
  }
  const auto& ea = static_cast<const Element&>(a);
  const auto& eb = static_cast<const Element&>(b);
  if (ea.name() != eb.name()) return false;
  if (!AttrsEqual(ea, eb) || !RefsEqual(ea, eb)) return false;
  return ChildrenEqual(ea, eb, ordered);
}

std::string UnorderedKey(const Node& n) {
  if (n.is_text()) {
    return "#text:" + static_cast<const Text&>(n).value();
  }
  const auto& e = static_cast<const Element&>(n);
  std::string key = "<" + e.name();
  std::vector<std::string> attrs;
  for (const Attribute& a : e.attributes()) {
    attrs.push_back(a.name + "=" + a.value);
  }
  std::sort(attrs.begin(), attrs.end());
  for (const auto& a : attrs) key += " @" + a;
  std::vector<std::string> refs;
  for (const RefList& r : e.ref_lists()) {
    refs.push_back(r.name + "=" + Join(r.targets, " "));
  }
  std::sort(refs.begin(), refs.end());
  for (const auto& r : refs) key += " &" + r;
  key += ">";
  std::vector<std::string> kids;
  kids.reserve(e.child_count());
  for (size_t i = 0; i < e.child_count(); ++i) {
    kids.push_back(UnorderedKey(*e.child(i)));
  }
  std::sort(kids.begin(), kids.end());
  for (const auto& k : kids) key += k;
  key += "</>";
  return key;
}

}  // namespace

bool DeepEqual(const Node& a, const Node& b) {
  return DeepEqualImpl(a, b, /*ordered=*/true);
}

bool DeepEqualUnordered(const Node& a, const Node& b) {
  return DeepEqualImpl(a, b, /*ordered=*/false);
}

}  // namespace xupd::xml
