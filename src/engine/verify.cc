// Engine-level integrity scrub (RelationalStore::VerifyStore).
//
// Checks the invariants the update strategies (§6) must preserve but the
// relational layer cannot see: every element tuple's parent chain resolves
// through the mapping hierarchy up to the root without cycles or orphans,
// and the ASR — when built — agrees with the element tables in both
// directions (every ASR id exists; every tuple appears on some path row).
// Read-only, so it runs in degraded (read-only) mode and right after an
// injected storage fault.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/store.h"

namespace xupd::engine {

namespace {

using shred::TableMapping;

// id -> parentId (kInt-or-null already validated) for one element table.
struct TableIds {
  std::unordered_map<int64_t, int64_t> parent_of;  ///< 0 = NULL parent.
};

}  // namespace

std::vector<std::string> RelationalStore::VerifyStore() {
  std::vector<std::string> violations;

  // Collect every element table's live (id, parentId) pairs.
  std::unordered_map<const TableMapping*, TableIds> ids;
  bool tables_missing = false;
  for (const TableMapping& tm : mapping_->tables()) {
    const rdb::Table* t = db_.FindTable(tm.table);
    if (t == nullptr) {
      violations.push_back("element table '" + tm.table + "' is missing");
      tables_missing = true;
      continue;
    }
    TableIds& entry = ids[&tm];
    for (size_t rowid = 0; rowid < t->capacity(); ++rowid) {
      if (!t->is_live(rowid)) continue;
      const rdb::Value& id = t->row(rowid)[TableMapping::kIdColumn];
      const rdb::Value& parent = t->row(rowid)[TableMapping::kParentIdColumn];
      if (id.is_null() || id.type() != rdb::ValueType::kInt) {
        violations.push_back("table '" + tm.table + "' row " +
                             std::to_string(rowid) + " has a non-integer id");
        continue;
      }
      int64_t parent_id = 0;
      if (!parent.is_null()) {
        if (parent.type() != rdb::ValueType::kInt) {
          violations.push_back("table '" + tm.table + "' id " +
                               std::to_string(id.AsInt()) +
                               " has a non-integer parentId");
          continue;
        }
        parent_id = parent.AsInt();
      }
      if (!entry.parent_of.emplace(id.AsInt(), parent_id).second) {
        violations.push_back("table '" + tm.table + "' holds duplicate id " +
                             std::to_string(id.AsInt()));
      }
    }
  }

  // Parent chains: every tuple walks up, tuple by tuple, to the root,
  // acyclically. The DTD mapping names each element's usual parent table,
  // but re-parenting inserts (CopySubtree* to an arbitrary destination) may
  // legally hang a subtree under any existing tuple — so parent ids resolve
  // against a global id map spanning every element table, and a tuple is an
  // orphan only when its parent id exists nowhere. Ids are minted by one
  // global counter, so an id seen in two tables is itself corruption.
  const TableMapping* root = mapping_->root();
  std::unordered_map<int64_t, std::pair<const TableMapping*, int64_t>> owner;
  for (auto& [tm, entry] : ids) {
    for (const auto& [id, parent_id] : entry.parent_of) {
      auto [it, inserted] = owner.emplace(id, std::make_pair(tm, parent_id));
      if (!inserted) {
        violations.push_back("id " + std::to_string(id) +
                             " appears in both table '" +
                             it->second.first->table + "' and table '" +
                             tm->table + "'");
      }
    }
  }
  if (!tables_missing) {
    for (const TableMapping& tm : mapping_->tables()) {
      auto table_ids = ids.find(&tm);
      if (table_ids == ids.end()) continue;
      for (const auto& [id, parent_id] : table_ids->second.parent_of) {
        const TableMapping* at = &tm;
        int64_t at_id = id;
        int64_t up = parent_id;
        size_t steps = 0;
        while (true) {
          if (up == 0) {
            if (at != root) {
              violations.push_back("table '" + at->table + "' id " +
                                   std::to_string(at_id) +
                                   " is a non-root tuple with NULL parentId");
            }
            break;
          }
          if (at == root) {
            violations.push_back("root-table tuple id " +
                                 std::to_string(at_id) +
                                 " has non-NULL parentId " +
                                 std::to_string(up));
            break;
          }
          if (++steps > owner.size()) {
            violations.push_back("parent chain of '" + tm.table + "' id " +
                                 std::to_string(id) +
                                 " does not terminate (cycle?)");
            break;
          }
          auto parent_row = owner.find(up);
          if (parent_row == owner.end()) {
            violations.push_back("table '" + at->table + "' id " +
                                 std::to_string(at_id) +
                                 " points at parentId " + std::to_string(up) +
                                 " absent from every element table "
                                 "(orphan subtree)");
            break;
          }
          at = parent_row->second.first;
          at_id = up;
          up = parent_row->second.second;
        }
      }
    }
  }

  // ASR: every non-null id on a path row exists in its element table, path
  // rows extend from the root (left-complete: a present child implies a
  // present, matching parent), no stale marks linger outside an operation,
  // and every element tuple appears on at least one path row.
  if (asr_ != nullptr) {
    const rdb::Table* asr_table = db_.FindTable(asr::AsrManager::kTableName);
    if (asr_table == nullptr) {
      violations.push_back("ASR table is missing");
      return violations;
    }
    const rdb::TableSchema& schema = asr_table->schema();
    int marked_col = schema.ColumnIndex("marked");
    std::unordered_map<const TableMapping*, std::unordered_set<int64_t>> seen;
    for (size_t rowid = 0; rowid < asr_table->capacity(); ++rowid) {
      if (!asr_table->is_live(rowid)) continue;
      const rdb::Value* row = asr_table->row(rowid);
      if (marked_col >= 0 && !row[marked_col].is_null() &&
          row[marked_col].AsInt() != 0) {
        violations.push_back("asr row " + std::to_string(rowid) +
                             " holds a stale mark outside any operation");
      }
      for (const TableMapping& tm : mapping_->tables()) {
        int col = schema.ColumnIndex(asr::AsrManager::IdColumn(&tm));
        if (col < 0) {
          violations.push_back("ASR lacks a column for table '" + tm.table +
                               "'");
          continue;
        }
        const rdb::Value& v = row[col];
        if (v.is_null()) continue;
        int64_t id = v.AsInt();
        auto table_ids = ids.find(&tm);
        if (table_ids == ids.end() ||
            table_ids->second.parent_of.count(id) == 0) {
          violations.push_back("asr row " + std::to_string(rowid) +
                               " references id " + std::to_string(id) +
                               " absent from table '" + tm.table + "'");
          continue;
        }
        seen[&tm].insert(id);
        int64_t expect =
            &tm != root ? table_ids->second.parent_of.at(id) : 0;
        if (expect != 0) {
          // The parent column to check is the one for the table that owns
          // the parent id — usually the DTD parent, but re-parented
          // subtrees may hang under any element.
          auto own = owner.find(expect);
          const TableMapping* ptm =
              own != owner.end() ? own->second.first
                                 : mapping_->ForElement(tm.parent_element);
          int pcol = ptm != nullptr
                         ? schema.ColumnIndex(asr::AsrManager::IdColumn(ptm))
                         : -1;
          if (pcol < 0 || row[pcol].is_null() ||
              row[pcol].AsInt() != expect) {
            violations.push_back(
                "asr row " + std::to_string(rowid) + " lists id " +
                std::to_string(id) + " of table '" + tm.table +
                "' under the wrong ancestor (expected parentId " +
                std::to_string(expect) + ")");
          }
        }
      }
    }
    for (const TableMapping& tm : mapping_->tables()) {
      auto table_ids = ids.find(&tm);
      if (table_ids == ids.end()) continue;
      const auto& on_paths = seen[&tm];
      for (const auto& [id, parent_id] : table_ids->second.parent_of) {
        if (on_paths.count(id) == 0) {
          violations.push_back("table '" + tm.table + "' id " +
                               std::to_string(id) +
                               " appears on no ASR path row");
        }
      }
    }
  }
  return violations;
}

}  // namespace xupd::engine
