// Native-tree execution of parsed XQuery update statements and FLWR queries.
//
// Follows §3.2/§4 semantics: all variable bindings (including those of
// nested FOR...UPDATE sub-operations) are computed over the *input* document
// before any update executes; content is materialized per target at bind
// time (copy semantics); deleted bindings cannot be reused as operation
// targets later in the sequence.
#ifndef XUPD_XQUERY_EXECUTOR_H_
#define XUPD_XQUERY_EXECUTOR_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "update/ops.h"
#include "xml/document.h"
#include "xpath/eval.h"
#include "xquery/ast.h"

namespace xupd::xquery {

class NativeExecutor {
 public:
  explicit NativeExecutor(
      xml::Document* doc,
      update::ExecutionModel model = update::ExecutionModel::kOrdered)
      : doc_(doc), model_(model) {}

  /// Parses and executes an update statement.
  Status ExecuteString(std::string_view query);

  /// Executes a parsed update statement.
  Status Execute(const Statement& stmt);

  /// Evaluates a FLWR query (RETURN clause); returns the bound objects, one
  /// per qualifying tuple.
  Result<std::vector<xpath::XmlObject>> EvalQuery(const Statement& stmt);

  /// Number of binding tuples processed by the last Execute call.
  size_t last_tuple_count() const { return last_tuple_count_; }

 private:
  /// A fully-bound primitive operation ready for execution.
  struct BoundOp {
    SubOp::Kind kind = SubOp::Kind::kDelete;
    SubOp::Position position = SubOp::Position::kAppend;
    xpath::XmlObject target;  ///< UPDATE target (for plain INSERT).
    xpath::XmlObject child;   ///< op operand (delete/rename/replace/ref).
    std::string rename_to;
    std::optional<update::Content> content;
  };

  Result<std::vector<xpath::Environment>> BindTuples(
      const std::vector<ForClause>& fors,
      const std::vector<LetClause>& lets,
      const std::vector<xpath::Predicate>& where,
      const xpath::Environment& outer, const xpath::XmlObject& context) const;

  Status BindUpdateOp(const UpdateOp& op, const xpath::Environment& env,
                      const xpath::XmlObject& context,
                      std::vector<BoundOp>* out) const;

  Result<update::Content> ResolveContent(const ContentExpr& expr,
                                         const xpath::Environment& env,
                                         const xpath::XmlObject& context) const;

  xml::Document* doc_;
  update::ExecutionModel model_;
  size_t last_tuple_count_ = 0;
};

}  // namespace xupd::xquery

#endif  // XUPD_XQUERY_EXECUTOR_H_
