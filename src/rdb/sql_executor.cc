#include "rdb/sql_executor.h"

#include <algorithm>

#include "common/str_util.h"
#include "rdb/sql_parser.h"

namespace xupd::rdb {

using sql::Expr;

// ---------------------------------------------------------------------------
// Entry point

Result<ResultSet> Executor::Run(const sql::Statement& stmt,
                                PlanCacheSlot* slot) {
  // Both hooks see every statement execution, including trigger-body and
  // nested statements: the failpoint can land mid-cascade, and the DDL
  // barrier cannot be bypassed from inside a trigger.
  XUPD_RETURN_IF_ERROR(db_->ConsumeFailpoint());
  XUPD_RETURN_IF_ERROR(db_->CheckDdlBarrier(stmt));
  XUPD_RETURN_IF_ERROR(db_->CheckWritable(stmt));
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kDelete:
    case sql::Statement::Kind::kUpdate: {
      XUPD_ASSIGN_OR_RETURN(auto plan, GetPlan(stmt, slot));
      return RunPlanned(*plan);
    }
    case sql::Statement::Kind::kExplain:
      return RunExplain(*stmt.explain, slot);
    // DDL invalidates here — the single choke point every entry path
    // (Execute, ExecuteQuery, ExecutePrepared) funnels through — so cached
    // parses are flushed and cached plans version out before any reuse.
    // Successful DDL is also pended to the WAL as its statement text (the
    // Database flushes it at the statement boundary); trigger-body DDL has
    // no text of its own and is not persisted.
    case sql::Statement::Kind::kCreateTable: {
      auto r = RunCreateTable(stmt.create_table);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kCreateIndex: {
      auto r = RunCreateIndex(stmt.create_index);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kCreateTrigger: {
      auto r = RunCreateTrigger(stmt.create_trigger);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kDrop: {
      auto r = RunDrop(stmt.drop);
      if (r.ok()) {
        db_->InvalidateStatementCache();
        if (trigger_depth_ == 0) db_->WalLogDdl(sql_text_);
      }
      return r;
    }
    case sql::Statement::Kind::kBegin:
      XUPD_RETURN_IF_ERROR(db_->Begin());
      return ResultSet{};
    case sql::Statement::Kind::kCommit:
      XUPD_RETURN_IF_ERROR(db_->Commit());
      return ResultSet{};
    case sql::Statement::Kind::kRollback:
      if (stmt.txn_name.empty()) {
        XUPD_RETURN_IF_ERROR(db_->Rollback());
      } else {
        XUPD_RETURN_IF_ERROR(db_->RollbackTo(stmt.txn_name));
      }
      return ResultSet{};
    case sql::Statement::Kind::kSavepoint:
      XUPD_RETURN_IF_ERROR(db_->Savepoint(stmt.txn_name));
      return ResultSet{};
    case sql::Statement::Kind::kRelease:
      XUPD_RETURN_IF_ERROR(db_->Release(stmt.txn_name));
      return ResultSet{};
    case sql::Statement::Kind::kCheckIntegrity: {
      // Online scrub: read-only over in-memory structures and on-disk
      // files, so it stays available in degraded mode.
      ResultSet out;
      out.columns = {"violation"};
      for (std::string& v : db_->VerifyIntegrity()) {
        out.rows.push_back({Value::Str(std::move(v))});
      }
      if (out.rows.empty()) out.rows.push_back({Value::Str("ok")});
      return out;
    }
  }
  return Status::Internal("unknown statement kind");
}

// ---------------------------------------------------------------------------
// Planning

Result<std::shared_ptr<const PlannedStatement>> Executor::GetPlan(
    const sql::Statement& stmt, PlanCacheSlot* slot) {
  if (slot != nullptr && slot->plan != nullptr && slot->db == db_ &&
      slot->version == db_->catalog_version()) {
    // The global version covers SQL DDL; the per-table dependencies cover
    // direct catalog changes (DropTableDirect bumps only the dropped
    // table's counter, so plans over other tables pass this check).
    bool deps_current = true;
    for (const PlanTableDep& dep : slot->plan->table_deps) {
      if (*dep.version != dep.snapshot) {
        deps_current = false;
        break;
      }
    }
    if (deps_current) {
      ++db_->stats_.plan_cache_hits;
      return slot->plan;
    }
  }
  Planner planner(db_, trigger_old_schema_);
  XUPD_ASSIGN_OR_RETURN(auto plan, planner.Plan(stmt));
  ++db_->stats_.plans_built;
  if (slot != nullptr) {
    slot->plan = plan;
    slot->version = db_->catalog_version();
    slot->db = db_;
  }
  return plan;
}

ExecContext Executor::MakeContext(
    std::vector<std::unique_ptr<ResultSet>>* cte_store) {
  ExecContext ctx;
  ctx.db = db_;
  ctx.params = params_;
  ctx.old_row = trigger_old_row_;
  ctx.cte_values = cte_store;
  ctx.subquery_memo = &subquery_memo_;
  return ctx;
}

Result<ResultSet> Executor::RunPlanned(const PlannedStatement& plan) {
  switch (plan.kind) {
    case sql::Statement::Kind::kSelect:
      return RunPlannedSelect(plan);
    case sql::Statement::Kind::kInsert:
      return RunPlannedInsert(plan);
    case sql::Statement::Kind::kDelete:
      return RunPlannedDelete(plan);
    case sql::Statement::Kind::kUpdate:
      return RunPlannedUpdate(plan);
    default:
      return Status::Internal("unplanned statement kind");
  }
}

Result<ResultSet> Executor::RunExplain(const sql::Statement& stmt,
                                       PlanCacheSlot* slot) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kDelete:
    case sql::Statement::Kind::kUpdate:
      break;
    default:
      return Status::InvalidArgument(
          "EXPLAIN supports only SELECT, INSERT, DELETE and UPDATE");
  }
  // The handle's slot caches the inner statement's plan, so a prepared
  // EXPLAIN re-renders without re-planning.
  XUPD_ASSIGN_OR_RETURN(auto plan, GetPlan(stmt, slot));
  ResultSet out;
  out.columns = {"plan"};
  for (const std::string& line : SplitChar(PlanToString(*plan), '\n')) {
    out.rows.push_back({Value::Str(line)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// DDL

Result<ResultSet> Executor::RunCreateTable(const sql::CreateTableStmt& stmt) {
  // SQL-created tables are durable: they participate in WAL logging and
  // snapshots (direct-API scratch tables do not).
  XUPD_ASSIGN_OR_RETURN(
      Table * ignored,
      db_->CreateTableDirect(TableSchema(stmt.name, stmt.columns),
                             /*transactional=*/true, /*durable=*/true));
  (void)ignored;
  return ResultSet{};
}

Result<ResultSet> Executor::RunCreateIndex(const sql::CreateIndexStmt& stmt) {
  Table* table = db_->FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  int col = table->schema().ColumnIndex(stmt.column);
  if (col < 0) {
    return Status::NotFound("column '" + stmt.column + "' not found");
  }
  XUPD_RETURN_IF_ERROR(table->CreateIndex(stmt.name, col));
  return ResultSet{};
}

Result<ResultSet> Executor::RunCreateTrigger(const sql::CreateTriggerStmt& stmt) {
  if (db_->FindTable(stmt.table) == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  for (const auto& t : db_->triggers_) {
    if (EqualsIgnoreCase(t.name, stmt.name)) {
      return Status::AlreadyExists("trigger '" + stmt.name + "' already exists");
    }
  }
  Database::TriggerDef def;
  def.name = stmt.name;
  def.table = stmt.table;
  def.granularity = stmt.granularity;
  def.body = stmt.body;
  // Keep the original text only for top-level creates — it is how snapshots
  // persist the trigger (trigger-body DDL would capture the wrong text).
  if (trigger_depth_ == 0) def.sql = std::string(sql_text_);
  db_->triggers_.push_back(std::move(def));
  return ResultSet{};
}

Result<ResultSet> Executor::RunDrop(const sql::DropStmt& stmt) {
  switch (stmt.what) {
    case sql::DropStmt::What::kTable: {
      auto it = db_->tables_.find(stmt.name);
      if (it == db_->tables_.end()) {
        return Status::NotFound("table '" + stmt.name + "' not found");
      }
      db_->tables_.erase(it);
      auto& trigs = db_->triggers_;
      trigs.erase(std::remove_if(trigs.begin(), trigs.end(),
                                 [&](const Database::TriggerDef& t) {
                                   return EqualsIgnoreCase(t.table, stmt.name);
                                 }),
                  trigs.end());
      return ResultSet{};
    }
    case sql::DropStmt::What::kIndex: {
      if (!stmt.table.empty()) {
        Table* table = db_->FindTable(stmt.table);
        if (table == nullptr) {
          return Status::NotFound("table '" + stmt.table + "' not found");
        }
        XUPD_RETURN_IF_ERROR(table->DropIndex(stmt.name));
        return ResultSet{};
      }
      // Owning table unknown: one pass over the catalog, one scan per table.
      for (auto& [name, table] : db_->tables_) {
        if (table->TryDropIndex(stmt.name)) return ResultSet{};
      }
      return Status::NotFound("index '" + stmt.name + "' not found");
    }
    case sql::DropStmt::What::kTrigger: {
      auto& trigs = db_->triggers_;
      size_t before = trigs.size();
      trigs.erase(std::remove_if(trigs.begin(), trigs.end(),
                                 [&](const Database::TriggerDef& t) {
                                   return EqualsIgnoreCase(t.name, stmt.name);
                                 }),
                  trigs.end());
      if (trigs.size() == before) {
        return Status::NotFound("trigger '" + stmt.name + "' not found");
      }
      return ResultSet{};
    }
  }
  return Status::Internal("unknown drop kind");
}

// ---------------------------------------------------------------------------
// Planned SELECT

Result<ResultSet> Executor::RunPlannedSelect(const PlannedStatement& plan) {
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);
  return ExecutePlannedSelect(*plan.select, ctx);
}

// ---------------------------------------------------------------------------
// Planned DML

Result<ResultSet> Executor::RunPlannedInsert(const PlannedStatement& plan) {
  const PlannedInsert& ins = plan.insert;
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);

  auto build_row = [&](const std::vector<Value>& values) -> Result<Row> {
    if (values.size() != ins.column_map.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    Row row(ins.table->schema().column_count(), Value::Null());
    for (size_t i = 0; i < values.size(); ++i) {
      XUPD_ASSIGN_OR_RETURN(Value coerced,
                            CoerceValue(values[i], ins.column_types[i]));
      row[static_cast<size_t>(ins.column_map[i])] = std::move(coerced);
    }
    return row;
  };

  if (ins.select != nullptr) {
    XUPD_ASSIGN_OR_RETURN(ResultSet result,
                          ExecutePlannedSelect(*ins.select, ctx));
    for (const Row& row : result.rows) {
      XUPD_ASSIGN_OR_RETURN(Row built, build_row(row));
      XUPD_ASSIGN_OR_RETURN(size_t rowid, ins.table->Insert(std::move(built)));
      (void)rowid;
      ++db_->stats_.rows_inserted;
    }
    return ResultSet{};
  }

  // Evaluate and coerce every VALUES row before inserting any, so a bad row
  // leaves the table untouched (multi-row INSERT is atomic).
  std::vector<const Value*> no_slots;
  std::vector<Row> built_rows;
  built_rows.reserve(ins.rows.size());
  for (const auto& exprs : ins.rows) {
    std::vector<Value> values;
    values.reserve(exprs.size());
    for (const BoundExpr& e : exprs) {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(e, no_slots, ctx));
      values.push_back(std::move(v));
    }
    XUPD_ASSIGN_OR_RETURN(Row built, build_row(values));
    built_rows.push_back(std::move(built));
  }
  for (Row& row : built_rows) {
    XUPD_ASSIGN_OR_RETURN(size_t rowid, ins.table->Insert(std::move(row)));
    (void)rowid;
    ++db_->stats_.rows_inserted;
  }
  if (ins.rows.size() > 1) db_->stats_.batched_rows += ins.rows.size();
  return ResultSet{};
}

Result<ResultSet> Executor::RunPlannedDelete(const PlannedStatement& plan) {
  const PlannedMutation& m = plan.mutation;
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);
  XUPD_ASSIGN_OR_RETURN(std::vector<size_t> rowids,
                        CollectMatchingRowids(m, ctx));

  std::vector<Row> deleted_rows;
  deleted_rows.reserve(rowids.size());
  for (size_t rowid : rowids) {
    deleted_rows.push_back(m.table->CopyRow(rowid));
    XUPD_RETURN_IF_ERROR(m.table->Delete(rowid));
    ++db_->stats_.rows_deleted;
  }
  XUPD_RETURN_IF_ERROR(FireDeleteTriggers(m.table, deleted_rows));
  return ResultSet{};
}

Result<ResultSet> Executor::RunPlannedUpdate(const PlannedStatement& plan) {
  const PlannedMutation& m = plan.mutation;
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan.cte_slot_count));
  ExecContext ctx = MakeContext(&cte_store);
  XUPD_ASSIGN_OR_RETURN(std::vector<size_t> rowids,
                        CollectMatchingRowids(m, ctx));

  std::vector<const Value*> slots(1, nullptr);
  for (size_t rowid : rowids) {
    // Evaluate all SET expressions against the pre-update row.
    Row snapshot = m.table->CopyRow(rowid);
    slots[0] = snapshot.data();
    std::vector<std::pair<int, Value>> new_values;
    new_values.reserve(m.sets.size());
    for (const PlannedMutation::Set& set : m.sets) {
      XUPD_ASSIGN_OR_RETURN(Value v, EvalBound(set.expr, slots, ctx));
      XUPD_ASSIGN_OR_RETURN(Value coerced, CoerceValue(std::move(v), set.type));
      new_values.emplace_back(set.col, std::move(coerced));
    }
    for (auto& [col, value] : new_values) {
      XUPD_RETURN_IF_ERROR(m.table->SetColumn(rowid, col, std::move(value)));
    }
    ++db_->stats_.rows_updated;
  }
  return ResultSet{};
}

// ---------------------------------------------------------------------------
// Triggers

Status Executor::FireDeleteTriggers(const Table* table,
                                    const std::vector<Row>& deleted_rows) {
  if (deleted_rows.empty()) return Status::OK();
  if (trigger_depth_ > 100) {
    return Status::Internal("trigger recursion limit exceeded");
  }
  ++trigger_depth_;
  const std::string& table_name = table->schema().name();
  // Snapshot the trigger list: bodies may not add triggers, but the vector
  // could reallocate if they did.
  std::vector<Database::TriggerDef> defs;
  for (const auto& t : db_->triggers_) {
    if (EqualsIgnoreCase(t.table, table_name)) defs.push_back(t);
  }
  for (const auto& def : defs) {
    if (def.granularity == sql::TriggerGranularity::kRow) {
      for (const Row& row : deleted_rows) {
        ++db_->stats_.trigger_firings;
        const Row* saved_row = trigger_old_row_;
        const TableSchema* saved_schema = trigger_old_schema_;
        trigger_old_row_ = &row;
        trigger_old_schema_ = &table->schema();
        for (const auto& body_stmt : def.body) {
          ++db_->stats_.trigger_statements;
          auto r = Run(*body_stmt, db_->TriggerPlanSlot(body_stmt.get()));
          if (!r.ok()) {
            trigger_old_row_ = saved_row;
            trigger_old_schema_ = saved_schema;
            --trigger_depth_;
            return r.status();
          }
        }
        trigger_old_row_ = saved_row;
        trigger_old_schema_ = saved_schema;
      }
    } else {
      ++db_->stats_.trigger_firings;
      const Row* saved_row = trigger_old_row_;
      const TableSchema* saved_schema = trigger_old_schema_;
      trigger_old_row_ = nullptr;
      trigger_old_schema_ = nullptr;
      for (const auto& body_stmt : def.body) {
        ++db_->stats_.trigger_statements;
        auto r = Run(*body_stmt, db_->TriggerPlanSlot(body_stmt.get()));
        if (!r.ok()) {
          trigger_old_row_ = saved_row;
          trigger_old_schema_ = saved_schema;
          --trigger_depth_;
          return r.status();
        }
      }
      trigger_old_row_ = saved_row;
      trigger_old_schema_ = saved_schema;
    }
  }
  --trigger_depth_;
  return Status::OK();
}

}  // namespace xupd::rdb
