// Tests for the §7.1 workload generators: Table 1 tuple counts, determinism,
// DTD conformance, randomized bounds, DBLP shape.
#include <gtest/gtest.h>

#include "shred/mapping.h"
#include "workload/synthetic.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace xupd::workload {
namespace {

TEST(FixedSyntheticTest, Table1TupleCounts) {
  // The exact corner values from Table 1 of the paper.
  EXPECT_EQ(FixedSyntheticTupleCount({800, 8, 1}), 6400u + 1);   // 0.8MB row
  EXPECT_EQ(FixedSyntheticTupleCount({800, 2, 8}), 7200u + 1);   // 0.7MB row
  EXPECT_EQ(FixedSyntheticTupleCount({100, 4, 8}), 58500u + 1);  // 7MB row
}

TEST(FixedSyntheticTest, GeneratedCountsMatchClosedForm) {
  for (int sf : {10, 50}) {
    for (int d : {1, 2, 4}) {
      for (int f : {1, 2, 4}) {
        SyntheticSpec spec{sf, d, f};
        auto gen = GenerateFixedSynthetic(spec, 1);
        ASSERT_TRUE(gen.ok());
        EXPECT_EQ(gen->tuple_count, FixedSyntheticTupleCount(spec))
            << "sf=" << sf << " d=" << d << " f=" << f;
      }
    }
  }
}

TEST(FixedSyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec{20, 3, 2};
  auto a = GenerateFixedSynthetic(spec, 7);
  auto b = GenerateFixedSynthetic(spec, 7);
  auto c = GenerateFixedSynthetic(spec, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(xml::Canonical(*a->doc), xml::Canonical(*b->doc));
  EXPECT_NE(xml::Canonical(*a->doc), xml::Canonical(*c->doc));
}

TEST(FixedSyntheticTest, ValidAgainstOwnDtd) {
  auto gen = GenerateFixedSynthetic({10, 3, 2}, 3);
  ASSERT_TRUE(gen.ok());
  EXPECT_TRUE(xml::Validate(*gen->doc, gen->dtd).ok());
}

TEST(FixedSyntheticTest, DataElementsInlineUnderSharedInlining) {
  auto gen = GenerateFixedSynthetic({10, 4, 2}, 3);
  ASSERT_TRUE(gen.ok());
  auto mapping = shred::Mapping::SharedInlining(gen->dtd);
  ASSERT_TRUE(mapping.ok());
  // Tables: doc + n1..n4; s*/v* data elements are inlined columns.
  EXPECT_EQ(mapping->tables().size(), 5u);
  EXPECT_EQ(mapping->ForElement("s2"), nullptr);
  EXPECT_NE(mapping->ForElement("n2")->FindFieldByColumn("s2"), nullptr);
}

TEST(FixedSyntheticTest, FiftyCharStrings) {
  auto gen = GenerateFixedSynthetic({2, 1, 1}, 3);
  ASSERT_TRUE(gen.ok());
  xml::Element* n1 = gen->doc->root()->FindChildElement("n1");
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->FindChildElement("s1")->TextContent().size(), 50u);
}

TEST(FixedSyntheticTest, RejectsBadSpec) {
  EXPECT_FALSE(GenerateFixedSynthetic({0, 1, 1}, 1).ok());
  EXPECT_FALSE(GenerateFixedSynthetic({1, 0, 1}, 1).ok());
  EXPECT_FALSE(GenerateFixedSynthetic({1, 1, 0}, 1).ok());
}

TEST(RandomizedSyntheticTest, RespectsBounds) {
  SyntheticSpec spec{50, 5, 4};
  auto gen = GenerateRandomizedSynthetic(spec, 11);
  ASSERT_TRUE(gen.ok());
  // Every subtree depth within [2,5]; every fanout within [1,4]. Validate
  // against the DTD (covers structure), and check the doc is not degenerate.
  EXPECT_TRUE(xml::Validate(*gen->doc, gen->dtd).ok());
  size_t min_count = 1 + 50 * 2;  // every subtree has at least 2 levels
  EXPECT_GE(gen->tuple_count, min_count);
  size_t max_count = workload::FixedSyntheticTupleCount(spec);
  EXPECT_LE(gen->tuple_count, max_count);
}

TEST(RandomizedSyntheticTest, VariesAcrossSubtrees) {
  auto gen = GenerateRandomizedSynthetic({30, 5, 4}, 13);
  ASSERT_TRUE(gen.ok());
  std::set<size_t> sizes;
  for (const auto& c : gen->doc->root()->children()) {
    if (c->is_element()) {
      sizes.insert(static_cast<xml::Element*>(c.get())->SubtreeElementCount());
    }
  }
  EXPECT_GT(sizes.size(), 3u);  // not all subtrees identical
}

TEST(DblpTest, ShapeAndDeterminism) {
  DblpSpec spec;
  spec.conferences = 10;
  auto a = GenerateDblp(spec, 5);
  auto b = GenerateDblp(spec, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(xml::Canonical(*a->doc), xml::Canonical(*b->doc));
  EXPECT_TRUE(xml::Validate(*a->doc, a->dtd).ok());
  // Bushy: far more tuples than conferences.
  EXPECT_GT(a->tuple_count, 10u * 20u);
}

TEST(DblpTest, YearsWithinRange) {
  DblpSpec spec;
  spec.conferences = 5;
  auto gen = GenerateDblp(spec, 5);
  ASSERT_TRUE(gen.ok());
  std::function<void(const xml::Element&)> walk = [&](const xml::Element& e) {
    if (e.name() == "year") {
      int y = std::stoi(e.TextContent());
      EXPECT_GE(y, 1990);
      EXPECT_LE(y, 2002);
    }
    for (const auto& c : e.children()) {
      if (c->is_element()) walk(*static_cast<xml::Element*>(c.get()));
    }
  };
  walk(*gen->doc->root());
}

TEST(DblpTest, MapsToFiveTables) {
  auto gen = GenerateDblp({}, 5);
  ASSERT_TRUE(gen.ok());
  auto mapping = shred::Mapping::SharedInlining(gen->dtd);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->tables().size(), 5u);
  EXPECT_NE(mapping->ForElement("publication"), nullptr);
  // year is inlined on publication (the Table-2 delete predicate relies on
  // it being a column).
  EXPECT_NE(mapping->ForElement("publication")->FindFieldByColumn("year"),
            nullptr);
}

}  // namespace
}  // namespace xupd::workload
