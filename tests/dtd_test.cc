// Tests for the DTD parser and the validator (§8 "typechecking" extension).
#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/validator.h"

namespace xupd::xml {
namespace {

TEST(DtdParseTest, Figure4CustomerDtd) {
  Dtd dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  EXPECT_EQ(dtd.RootName(), "CustDB");
  const ElementDecl* customer = dtd.FindElement("Customer");
  ASSERT_NE(customer, nullptr);
  EXPECT_EQ(customer->type, ContentType::kChildren);
  auto children = dtd.ChildElements("Customer");
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0].name, "Name");
  EXPECT_FALSE(children[0].repeated);
  EXPECT_FALSE(children[0].optional);
  EXPECT_EQ(children[2].name, "Order");
  EXPECT_TRUE(children[2].repeated);
  EXPECT_TRUE(children[2].optional);
  EXPECT_TRUE(dtd.IsPcdataOnly("Name"));
  EXPECT_FALSE(dtd.IsPcdataOnly("Address"));
}

TEST(DtdParseTest, OptionalMarksOptionalNotRepeated) {
  Dtd dtd = xupd::testing::MustParseDtd(
      "<!ELEMENT a (b?, c+)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>");
  auto children = dtd.ChildElements("a");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_TRUE(children[0].optional);
  EXPECT_FALSE(children[0].repeated);
  EXPECT_TRUE(children[1].repeated);
  EXPECT_FALSE(children[1].optional);  // '+' requires at least one
}

TEST(DtdParseTest, ChoiceBranchesAreOptional) {
  Dtd dtd = xupd::testing::MustParseDtd(
      "<!ELEMENT a (b | c)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>");
  auto children = dtd.ChildElements("a");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_TRUE(children[0].optional);
  EXPECT_TRUE(children[1].optional);
}

TEST(DtdParseTest, RepeatedMention) {
  Dtd dtd = xupd::testing::MustParseDtd(
      "<!ELEMENT a (b, c, b)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>");
  auto children = dtd.ChildElements("a");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_TRUE(children[0].repeated);  // b appears twice
}

TEST(DtdParseTest, StarredGroupMakesMembersRepeated) {
  Dtd dtd = xupd::testing::MustParseDtd(
      "<!ELEMENT a ((b, c)*)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>");
  for (const auto& child : dtd.ChildElements("a")) {
    EXPECT_TRUE(child.repeated) << child.name;
    EXPECT_TRUE(child.optional) << child.name;
  }
}

TEST(DtdParseTest, MixedContent) {
  Dtd dtd = xupd::testing::MustParseDtd(
      "<!ELEMENT p (#PCDATA | em | b)*> <!ELEMENT em (#PCDATA)> "
      "<!ELEMENT b (#PCDATA)>");
  const ElementDecl* p = dtd.FindElement("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->type, ContentType::kMixed);
  EXPECT_EQ(p->mixed_names.size(), 2u);
}

TEST(DtdParseTest, AttlistTypes) {
  Dtd dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT lab EMPTY>
    <!ATTLIST lab ID ID #REQUIRED
                  managers IDREFS #IMPLIED
                  kind (bio|chem) "bio"
                  note CDATA #FIXED "x">)");
  EXPECT_EQ(dtd.FindAttribute("lab", "ID")->type, AttrType::kId);
  EXPECT_EQ(dtd.FindAttribute("lab", "ID")->mode, AttrDefaultMode::kRequired);
  EXPECT_EQ(dtd.FindAttribute("lab", "managers")->type, AttrType::kIdrefs);
  const AttrDecl* kind = dtd.FindAttribute("lab", "kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(kind->type, AttrType::kEnumerated);
  EXPECT_EQ(kind->default_value, "bio");
  EXPECT_EQ(dtd.FindAttribute("lab", "note")->mode, AttrDefaultMode::kFixed);
}

TEST(DtdParseTest, Errors) {
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT >").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b,| c)>").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b | c, d)>").ok());  // mixed seps
  EXPECT_FALSE(Dtd::Parse("<!BOGUS a>").ok());
  EXPECT_FALSE(Dtd::Parse("").ok());
  EXPECT_FALSE(Dtd::Parse("<!ATTLIST a x WEIRD #IMPLIED>").ok());
}

TEST(DtdParseTest, InternalSubsetPickedUpByXmlParser) {
  auto parsed = ParseXml(R"(<!DOCTYPE db [
      <!ELEMENT db (lab*)>
      <!ELEMENT lab (#PCDATA)>
      <!ATTLIST lab managers IDREFS #IMPLIED>
    ]>
    <db><lab managers="a b">X</lab></db>)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->internal_dtd.has_value());
  xml::Element* lab = parsed->document->root()->FindChildElement("lab");
  ASSERT_NE(lab, nullptr);
  ASSERT_NE(lab->FindRefList("managers"), nullptr);
  EXPECT_EQ(lab->FindRefList("managers")->targets.size(), 2u);
}

class ValidatorTest : public ::testing::Test {
 protected:
  Dtd dtd_ = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
};

TEST_F(ValidatorTest, ValidDocumentPasses) {
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  EXPECT_TRUE(Validate(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, MissingRequiredChildFails) {
  auto doc = xupd::testing::MustParse(
      "<CustDB><Customer><Name>X</Name></Customer></CustDB>");
  // Customer requires Name, Address.
  Status s = Validate(*doc, dtd_);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST_F(ValidatorTest, WrongChildOrderFails) {
  auto doc = xupd::testing::MustParse(
      "<CustDB><Customer>"
      "<Address><City>A</City><State>B</State></Address><Name>X</Name>"
      "</Customer></CustDB>");
  EXPECT_FALSE(Validate(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, UndeclaredElementFails) {
  auto doc = xupd::testing::MustParse("<CustDB><Widget/></CustDB>");
  EXPECT_FALSE(Validate(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, PcdataInElementContentFails) {
  auto doc = xupd::testing::MustParse(
      "<CustDB>stray text<Customer><Name>X</Name>"
      "<Address><City>A</City><State>B</State></Address>"
      "</Customer></CustDB>");
  EXPECT_FALSE(Validate(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, DuplicateIdFails) {
  Dtd dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT db (lab*)> <!ELEMENT lab (#PCDATA)>
    <!ATTLIST lab ID ID #REQUIRED>)");
  auto doc = xupd::testing::MustParse(
      R"(<db><lab ID="x">a</lab><lab ID="x">b</lab></db>)");
  Status s = Validate(*doc, dtd);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST_F(ValidatorTest, DanglingIdrefPolicy) {
  Dtd dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT db (lab*)> <!ELEMENT lab (#PCDATA)>
    <!ATTLIST lab ID ID #REQUIRED boss IDREF #IMPLIED>)");
  ParseOptions options;
  options.dtd = &dtd;  // classifies boss as an IDREF attribute
  auto parsed = ParseXml(
      R"(<db><lab ID="x" boss="ghost">a</lab></db>)", options);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->document->root()
                ->FindChildElement("lab")
                ->FindRefList("boss"),
            nullptr);
  // Default: dangling refs allowed (the paper's delete semantics, §4.2.1).
  EXPECT_TRUE(Validate(*parsed->document, dtd).ok());
  // Strict conformance: rejected.
  ValidateOptions strict;
  strict.check_idref_targets = true;
  EXPECT_FALSE(Validate(*parsed->document, dtd, strict).ok());
}

TEST_F(ValidatorTest, RequiredAttributeMissing) {
  Dtd dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT db (lab*)> <!ELEMENT lab (#PCDATA)>
    <!ATTLIST lab ID ID #REQUIRED>)");
  auto doc = xupd::testing::MustParse("<db><lab>a</lab></db>");
  EXPECT_FALSE(Validate(*doc, dtd).ok());
}

TEST_F(ValidatorTest, EnumeratedValueChecked) {
  Dtd dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT db (lab*)> <!ELEMENT lab (#PCDATA)>
    <!ATTLIST lab kind (bio|chem) #IMPLIED>)");
  auto good = xupd::testing::MustParse(R"(<db><lab kind="bio">a</lab></db>)");
  EXPECT_TRUE(Validate(*good, dtd).ok());
  auto bad = xupd::testing::MustParse(R"(<db><lab kind="math">a</lab></db>)");
  EXPECT_FALSE(Validate(*bad, dtd).ok());
}

TEST_F(ValidatorTest, StrictAttributesRejectUndeclared) {
  auto doc = xupd::testing::MustParse(
      "<CustDB><Customer bogus=\"1\"><Name>X</Name>"
      "<Address><City>A</City><State>B</State></Address>"
      "</Customer></CustDB>");
  EXPECT_TRUE(Validate(*doc, dtd_).ok());  // lenient by default
  ValidateOptions strict;
  strict.strict_attributes = true;
  EXPECT_FALSE(Validate(*doc, dtd_, strict).ok());
}

TEST_F(ValidatorTest, ShallowValidationChecksOneLevel) {
  auto doc = xupd::testing::MustParse(
      "<CustDB><Customer><Name>X</Name>"
      "<Address><City>A</City><State>B</State></Address>"
      "</Customer></CustDB>");
  xml::Element* customer = doc->root()->FindChildElement("Customer");
  ASSERT_NE(customer, nullptr);
  EXPECT_TRUE(ValidateElementShallow(*customer, dtd_).ok());
  // Break a grandchild: shallow validation of Customer still passes.
  xml::Element* address = customer->FindChildElement("Address");
  address->AppendSimpleChild("Widget", "");
  EXPECT_TRUE(ValidateElementShallow(*customer, dtd_).ok());
  EXPECT_FALSE(ValidateElementShallow(*address, dtd_).ok());
}

}  // namespace
}  // namespace xupd::xml
