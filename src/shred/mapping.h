// Shared Inlining mapping (§5.1, after Shanmugasundaram et al. [14]): the
// DTD determines which elements get their own relation and which are inlined
// into an ancestor's relation.
//
// Rules implemented:
//  * the document root always maps to a table;
//  * an element maps to a table if it can occur more than once under some
//    parent (under * or +, or listed twice), if it appears under two or more
//    distinct parents (shared), or if it is recursive;
//  * all other elements are inlined into the nearest table ancestor: a
//    PCDATA-only child becomes a VARCHAR column; attributes become columns;
//    an inlined non-leaf element gets a presence-flag column (§6.1's
//    delete-ambiguity fix) and its children are inlined recursively.
//
// Every table has `id INTEGER` and `parentId INTEGER` columns linking child
// tuples to their parent element's tuple (§5.1).
#ifndef XUPD_SHRED_MAPPING_H_
#define XUPD_SHRED_MAPPING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/str_util.h"
#include "xml/dtd.h"

namespace xupd::shred {

/// One column of a table that stores inlined content.
struct InlinedField {
  enum class Kind {
    kPcdata,    ///< text content of the element at `path`.
    kAttribute, ///< attribute `attr` of the element at `path`.
    kPresence,  ///< 1 when the (non-leaf) element at `path` is present.
  };
  Kind kind = Kind::kPcdata;
  /// Element path below the table's element ("" steps = the element itself).
  std::vector<std::string> path;
  std::string attr;    ///< kAttribute only.
  bool is_ref = false; ///< attribute declared IDREF/IDREFS (space-joined).
  std::string column;  ///< SQL column name.
};

/// Mapping of one XML element type onto one relation.
struct TableMapping {
  std::string element;         ///< XML element name.
  std::string table;           ///< SQL table name (sanitized element name).
  std::string parent_element;  ///< "" for the root table.
  std::vector<InlinedField> fields;

  /// Column layout: 0 = id, 1 = parentId, 2.. = fields in order.
  static constexpr int kIdColumn = 0;
  static constexpr int kParentIdColumn = 1;
  int FieldColumn(size_t field_index) const {
    return 2 + static_cast<int>(field_index);
  }
  const InlinedField* FindFieldByColumn(const std::string& column) const {
    for (const InlinedField& f : fields) {
      if (EqualsIgnoreCase(f.column, column)) return &f;
    }
    return nullptr;
  }
};

class Mapping {
 public:
  /// Derives the Shared Inlining mapping from a DTD. Fails on DTDs with ANY
  /// content (unmappable without a schema).
  static Result<Mapping> SharedInlining(const xml::Dtd& dtd);

  const std::vector<TableMapping>& tables() const { return tables_; }
  const xml::Dtd& dtd() const { return dtd_; }

  const TableMapping* ForElement(std::string_view element) const;
  const TableMapping* ForTable(std::string_view table) const;
  const TableMapping* root() const { return &tables_.front(); }

  /// Direct child tables of `element`'s table.
  std::vector<const TableMapping*> ChildTables(std::string_view element) const;

  /// All tables in the subtree rooted at `t` (pre-order, including t).
  std::vector<const TableMapping*> SubtreeTables(const TableMapping* t) const;

  /// Chain of tables from the root to `t` (inclusive).
  std::vector<const TableMapping*> PathFromRoot(const TableMapping* t) const;

  /// Maximum depth of the table hierarchy (root = 1).
  size_t Depth() const;

  /// CREATE TABLE + CREATE INDEX statements for the whole schema (indexes on
  /// id and parentId of every table).
  std::vector<std::string> SchemaSql() const;

  /// Finds the inlined field reached by following `path` of element names
  /// below `t`'s element (optionally ending in an attribute). Null if the
  /// path does not stay within the inlined region.
  const InlinedField* ResolveInlined(const TableMapping* t,
                                     const std::vector<std::string>& path,
                                     const std::string& attr) const;

 private:
  xml::Dtd dtd_;
  std::vector<TableMapping> tables_;
};

}  // namespace xupd::shred

#endif  // XUPD_SHRED_MAPPING_H_
