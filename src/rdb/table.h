// Heap table with tombstone deletes and hash indexes.
//
// Storage layout (the scan/probe hot path of every fig. 6-11 workload):
//
//  * Rows live in ONE contiguous slab per table — `arity * 16` bytes per row
//    slot (16-byte compact Values, rdb/value.h), appended in rowid order —
//    instead of a vector of per-row heap vectors. Scan/IndexProbe/Filter
//    stream over cache-line-friendly memory and a row is addressed by one
//    multiply (`slab + rowid * arity`), not a double indirection.
//
//  * HashIndex is a flat open-addressing table whose entries hold
//    (hash, value, rowid) inline — no per-key map node, no per-entry set
//    node. Entries of equal key are threaded through a doubly-linked chain
//    (indexes into the entry array) whose head is found through a second
//    flat table keyed by value, so Lookup walks a chain and Erase of an
//    exact (value, rowid) pair is O(1): the pair itself is open-addressed.
#ifndef XUPD_RDB_TABLE_H_
#define XUPD_RDB_TABLE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdb/schema.h"
#include "rdb/value.h"

namespace xupd::rdb {

class TransactionManager;

/// Hash index over one column: value -> set of row ids. Erase of an exact
/// (value, rowid) pair stays O(1) even for low-cardinality keys (e.g. a
/// parentId shared by thousands of children, or an ASR column holding the
/// single root id) because the pair table is open-addressed on
/// (value, rowid), not on the value alone.
class HashIndex {
 public:
  HashIndex(std::string name, int column)
      : name_(std::move(name)), column_(column) {}

  const std::string& name() const { return name_; }
  int column() const { return column_; }

  /// Adds (v, rowid); a duplicate exact pair is a no-op (set semantics).
  void Insert(const Value& v, size_t rowid);
  /// Removes (v, rowid); absent pairs are a no-op.
  void Erase(const Value& v, size_t rowid);
  /// Appends matching row ids to *out (chain order — callers that need a
  /// deterministic order sort; multi-probe callers dedupe too).
  void Lookup(const Value& v, std::vector<size_t>* out) const;
  void Clear();
  size_t size() const { return size_; }

  /// Scrub hook (rdb/integrity.cc): calls fn(value, rowid) for every live
  /// entry, in slot order.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.state == 1) fn(s.value, static_cast<size_t>(s.rowid));
    }
  }

 private:
  /// One entry: the key's hash, the key, the rowid, and the doubly-linked
  /// same-key chain threaded through the entry array.
  struct Slot {
    uint64_t vhash = 0;
    uint64_t rowid = 0;
    Value value;
    int32_t prev = -1;  ///< chain: previous entry index, -1 = chain head.
    int32_t next = -1;  ///< chain: next entry index, -1 = chain tail.
    uint8_t state = 0;  ///< 0 empty, 1 occupied, 2 tombstone.
  };

  /// Entry index of (v, rowid) in slots_, or -1.
  int32_t FindPair(uint64_t vhash, const Value& v, size_t rowid) const;
  /// Insert with a precomputed value hash (Rehash relinks without
  /// recomputing Value::Hash, which re-parses numeric-looking strings).
  void InsertEntry(uint64_t vhash, const Value& v, size_t rowid);
  /// heads_ position whose chain head carries key `v`, or -1.
  int32_t FindHead(uint64_t vhash, const Value& v) const;
  /// Grows (or initializes) both flat tables and relinks every chain.
  void Rehash(size_t new_cap);
  /// Finalizing bit mixer (murmur3 fmix64). Value::Hash of an integer is
  /// the identity (libstdc++ std::hash<int64_t>), and the engine's keys and
  /// rowids are dense sequential ints — feeding them to linear probing
  /// unmixed coalesces the table into one giant probe run (O(n) inserts).
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  static uint64_t PairHash(uint64_t vhash, uint64_t rowid) {
    return Mix(vhash ^ (rowid + 0x9e3779b97f4a7c15ULL));
  }
  static uint64_t HeadHash(uint64_t vhash) { return Mix(vhash); }

  std::string name_;
  int column_;
  /// Flat entry array, open-addressed on PairHash(value, rowid).
  /// Power-of-two capacity; linear probing; tombstoned on erase.
  std::vector<Slot> slots_;
  /// Chain heads, open-addressed on the value hash alone: -1 empty,
  /// -2 tombstone, else the entry index of the key's chain head.
  std::vector<int32_t> heads_;
  size_t size_ = 0;        ///< live entries.
  size_t slots_used_ = 0;  ///< occupied + tombstoned entry slots.
  size_t heads_used_ = 0;  ///< occupied + tombstoned head slots.
};

class Table {
 public:
  /// `txn` (optional) is the undo log every mutation reports to while a
  /// transaction is active; tables created through the Database catalog are
  /// always wired to its TransactionManager.
  explicit Table(TableSchema schema, TransactionManager* txn = nullptr)
      : schema_(std::move(schema)),
        arity_(schema_.column_count()),
        txn_(txn) {}

  const TableSchema& schema() const { return schema_; }

  /// Durable tables participate in write-ahead logging and snapshots
  /// (rdb/wal.h): tables created through SQL DDL or recovered from a
  /// snapshot are durable; engine scratch tables created through the direct
  /// catalog API are not — their contents are rebuilt, not recovered.
  bool durable() const { return durable_; }
  void set_durable(bool durable) { durable_ = durable; }

  /// Wires the per-Database string interner: long string values are
  /// canonicalized on their way into the slab, so repeated names/paths
  /// across millions of rows share one heap block.
  void set_interner(StringInterner* interner) { interner_ = interner; }

  /// Number of row slots (live + tombstoned). Scans iterate this range.
  size_t capacity() const { return live_.size(); }
  size_t live_count() const { return live_count_; }

  bool is_live(size_t rowid) const { return live_[rowid]; }
  /// The row's columns, contiguous in the table slab. Valid until the next
  /// insert into this table (slab growth may relocate it) — the same
  /// lifetime the old vector-of-rows layout gave.
  const Value* row(size_t rowid) const { return slab_.data() + rowid * arity_; }
  /// Range-for friendly view of one row.
  std::span<const Value> row_span(size_t rowid) const {
    return {row(rowid), arity_};
  }
  /// Copies one row out (callers that must survive later mutations).
  Row CopyRow(size_t rowid) const {
    const Value* r = row(rowid);
    return Row(r, r + arity_);
  }

  /// Appends a row (arity must match the schema). Returns its rowid.
  Result<size_t> Insert(Row row);

  /// Snapshot-restore append (rdb/snapshot.cc): places `row` in the next
  /// slot with the given liveness, without undo/WAL logging or index
  /// maintenance — tombstoned slots keep their positions (row ids are
  /// physical WAL addresses) and indexes are created after all slots load.
  void LoadSlot(Row row, bool live);

  /// Tombstones a row; index entries are removed.
  Status Delete(size_t rowid);

  /// Truncates the table: every row slot (live and tombstoned) and all index
  /// entries are discarded, resetting capacity() to 0. NOT transactional —
  /// no undo is logged and any undo records already held for this table
  /// become no-ops (their rowids fall out of range). For scratch tables.
  void Clear();

  /// Sets one column; index entries are maintained.
  Status SetColumn(size_t rowid, int column, Value v);

  /// Creates a hash index over `column` (by index), populating from current
  /// rows. Fails if an index of this name exists.
  Status CreateIndex(const std::string& index_name, int column);
  Status DropIndex(const std::string& index_name);
  /// Drops the index if this table owns one of that name; returns whether it
  /// did. Single scan — lets DROP INDEX's owning-table search avoid the
  /// find-then-drop double lookup.
  bool TryDropIndex(std::string_view index_name);

  /// Index over `column`, or null.
  const HashIndex* FindIndexOnColumn(int column) const;
  const HashIndex* FindIndexByName(const std::string& name) const;
  /// All indexes, for snapshot serialization.
  const std::vector<std::unique_ptr<HashIndex>>& indexes() const {
    return indexes_;
  }

  // --- rollback hooks (TransactionManager only; none of these log) --------

  /// Reverts an Insert: removes index entries and kills the row. When the
  /// row is still the newest slot (always true under LIFO undo) the slot is
  /// popped, restoring capacity() too.
  void UndoInsert(size_t rowid);
  /// Reverts a Delete: revives the tombstoned row (its data is still in the
  /// slot) and re-adds its index entries.
  void UndoDelete(size_t rowid);
  /// Reverts a SetColumn: writes the old value back, index-maintaining.
  void UndoSetColumn(size_t rowid, int column, const Value& v);

 private:
  Value* mutable_row(size_t rowid) { return slab_.data() + rowid * arity_; }

  TableSchema schema_;
  size_t arity_;
  TransactionManager* txn_ = nullptr;
  StringInterner* interner_ = nullptr;
  bool durable_ = false;
  /// Row slots back to back: slot i occupies [i*arity_, (i+1)*arity_).
  std::vector<Value> slab_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_TABLE_H_
