// The Edge mapping (§5.1, after Florescu & Kossmann [10]): every element,
// attribute, reference and text node becomes a tuple in a single `edge`
// relation. Its advantages over inlining, per the paper: it needs no DTD,
// and (in our implementation) it preserves document order via an ordinal
// column. Its drawback — "excessive fragmentation ... traversing XML
// structure or outputting XML content requires many joins" — is what makes
// Shared Inlining the store's default.
#ifndef XUPD_SHRED_EDGE_H_
#define XUPD_SHRED_EDGE_H_

#include <memory>

#include "common/result.h"
#include "rdb/database.h"
#include "xml/document.h"

namespace xupd::shred {

/// Schema:
///   edge(source INTEGER,   -- parent element id (NULL for the root edge)
///        ordinal INTEGER,  -- position among the parent's children/attrs
///        kind VARCHAR,     -- 'elem' | 'text' | 'attr' | 'ref'
///        name VARCHAR,     -- element/attribute/reflist name
///        value VARCHAR,    -- PCDATA / attribute value / ref target
///        target INTEGER)   -- child element id ('elem' rows)
class EdgeStore {
 public:
  explicit EdgeStore(rdb::Database* db) : db_(db) {}

  static constexpr const char* kTableName = "edge";

  /// Creates the edge relation plus indexes on source and target.
  Status CreateSchema();

  /// Shreds a whole document; returns the root element's id. No DTD needed.
  Result<int64_t> Load(const xml::Document& doc);

  /// Rebuilds the document, *including document order* (children sorted by
  /// ordinal). Ref-attribute names are re-derived from 'ref' rows.
  Result<std::unique_ptr<xml::Document>> Reconstruct();

  /// Number of live edge tuples.
  size_t EdgeCount() const;

  /// Ids of elements with the given name whose 'text'-edge value matches —
  /// a one-level content lookup, used to contrast join counts with the
  /// inlined mapping.
  Result<std::vector<int64_t>> FindElementsByText(const std::string& name,
                                                  const std::string& value);

 private:
  Status LoadElement(const xml::Element& element, int64_t parent_id,
                     int64_t ordinal, int64_t* out_id);

  rdb::Database* db_;
};

}  // namespace xupd::shred

#endif  // XUPD_SHRED_EDGE_H_
