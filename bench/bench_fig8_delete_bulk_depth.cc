// Figure 8: delete performance, bulk workload, fixed sf=100 fanout=4,
// depth 1..6 (the document grows exponentially in depth; the paper plots a
// log y axis). Pass a max depth as argv[2] to trim runtime.
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int max_depth = argc > 2 ? std::atoi(argv[2]) : 6;
  bench::PrintHeader(
      "Figure 8: delete, bulk workload, sf=100 fanout=4 (time vs depth)",
      "depth");
  const DeleteStrategy methods[] = {
      DeleteStrategy::kAsr, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kCascade};
  for (int depth = 1; depth <= max_depth; ++depth) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = depth;
    spec.fanout = 4;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    for (DeleteStrategy method : methods) {
      double t = MeasureOnFreshStores(
          *gen, method, InsertStrategy::kTable,
          [](engine::RelationalStore* store) {
            Status s = store->DeleteWhere("n1", "");
            if (!s.ok()) std::abort();
          },
          {runs});
      bench::PrintPoint(ToString(method), depth, t);
    }
  }
  return 0;
}
