// Heap table with tombstone deletes and hash indexes.
#ifndef XUPD_RDB_TABLE_H_
#define XUPD_RDB_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdb/schema.h"
#include "rdb/value.h"

namespace xupd::rdb {

class TransactionManager;

/// Hash index over one column: value -> set of row ids. Per-key hash sets
/// keep Erase O(1) even for low-cardinality keys (e.g. a parentId shared by
/// thousands of children, or an ASR column holding the single root id).
class HashIndex {
 public:
  HashIndex(std::string name, int column) : name_(std::move(name)), column_(column) {}

  const std::string& name() const { return name_; }
  int column() const { return column_; }

  void Insert(const Value& v, size_t rowid) {
    map_[v].insert(rowid);
    ++size_;
  }
  void Clear() {
    map_.clear();
    size_ = 0;
  }
  void Erase(const Value& v, size_t rowid) {
    auto it = map_.find(v);
    if (it == map_.end()) return;
    if (it->second.erase(rowid) > 0) --size_;
    if (it->second.empty()) map_.erase(it);
  }
  /// Appends matching row ids to *out.
  void Lookup(const Value& v, std::vector<size_t>* out) const {
    auto it = map_.find(v);
    if (it == map_.end()) return;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  size_t size() const { return size_; }

 private:
  std::string name_;
  int column_;
  std::unordered_map<Value, std::unordered_set<size_t>, ValueHash> map_;
  size_t size_ = 0;
};

class Table {
 public:
  /// `txn` (optional) is the undo log every mutation reports to while a
  /// transaction is active; tables created through the Database catalog are
  /// always wired to its TransactionManager.
  explicit Table(TableSchema schema, TransactionManager* txn = nullptr)
      : schema_(std::move(schema)), txn_(txn) {}

  const TableSchema& schema() const { return schema_; }

  /// Durable tables participate in write-ahead logging and snapshots
  /// (rdb/wal.h): tables created through SQL DDL or recovered from a
  /// snapshot are durable; engine scratch tables created through the direct
  /// catalog API are not — their contents are rebuilt, not recovered.
  bool durable() const { return durable_; }
  void set_durable(bool durable) { durable_ = durable; }

  /// Number of row slots (live + tombstoned). Scans iterate this range.
  size_t capacity() const { return rows_.size(); }
  size_t live_count() const { return live_count_; }

  bool is_live(size_t rowid) const { return live_[rowid]; }
  const Row& row(size_t rowid) const { return rows_[rowid]; }

  /// Appends a row (arity must match the schema). Returns its rowid.
  Result<size_t> Insert(Row row);

  /// Snapshot-restore append (rdb/snapshot.cc): places `row` in the next
  /// slot with the given liveness, without undo/WAL logging or index
  /// maintenance — tombstoned slots keep their positions (row ids are
  /// physical WAL addresses) and indexes are created after all slots load.
  void LoadSlot(Row row, bool live);

  /// Tombstones a row; index entries are removed.
  Status Delete(size_t rowid);

  /// Truncates the table: every row slot (live and tombstoned) and all index
  /// entries are discarded, resetting capacity() to 0. NOT transactional —
  /// no undo is logged and any undo records already held for this table
  /// become no-ops (their rowids fall out of range). For scratch tables.
  void Clear();

  /// Sets one column; index entries are maintained.
  Status SetColumn(size_t rowid, int column, Value v);

  /// Creates a hash index over `column` (by index), populating from current
  /// rows. Fails if an index of this name exists.
  Status CreateIndex(const std::string& index_name, int column);
  Status DropIndex(const std::string& index_name);
  /// Drops the index if this table owns one of that name; returns whether it
  /// did. Single scan — lets DROP INDEX's owning-table search avoid the
  /// find-then-drop double lookup.
  bool TryDropIndex(std::string_view index_name);

  /// Index over `column`, or null.
  const HashIndex* FindIndexOnColumn(int column) const;
  const HashIndex* FindIndexByName(const std::string& name) const;
  /// All indexes, for snapshot serialization.
  const std::vector<std::unique_ptr<HashIndex>>& indexes() const {
    return indexes_;
  }

  // --- rollback hooks (TransactionManager only; none of these log) --------

  /// Reverts an Insert: removes index entries and kills the row. When the
  /// row is still the newest slot (always true under LIFO undo) the slot is
  /// popped, restoring capacity() too.
  void UndoInsert(size_t rowid);
  /// Reverts a Delete: revives the tombstoned row (its data is still in the
  /// slot) and re-adds its index entries.
  void UndoDelete(size_t rowid);
  /// Reverts a SetColumn: writes the old value back, index-maintaining.
  void UndoSetColumn(size_t rowid, int column, const Value& v);

 private:
  TableSchema schema_;
  TransactionManager* txn_ = nullptr;
  bool durable_ = false;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_TABLE_H_
