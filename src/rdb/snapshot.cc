#include "rdb/snapshot.h"

#include <cstring>
#include <vector>

#include "rdb/database.h"
#include "rdb/table.h"
#include "rdb/vfs.h"
#include "rdb/wal.h"

namespace xupd::rdb {

namespace {

constexpr char kSnapshotMagic[8] = {'X', 'U', 'P', 'D', 'S', 'N', 'A', 'P'};
constexpr uint32_t kSnapshotFormatVersion = 1;

Status WriteFileDurably(Vfs* vfs, const std::string& path,
                        const std::string& data) {
  int err = 0;
  std::unique_ptr<VfsFile> file =
      vfs->Open(path, Vfs::OpenMode::kTruncate, &err);
  if (file == nullptr) return ErrnoStatus("cannot create snapshot", path, err);
  XUPD_RETURN_IF_ERROR(WriteFully(file.get(), data.data(), data.size(),
                                  "cannot write snapshot", path));
  if ((err = file->Sync()) != 0) {
    return ErrnoStatus("cannot fsync snapshot", path, err);
  }
  if ((err = file->Close()) != 0) {
    return ErrnoStatus("cannot close snapshot", path, err);
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const Database& db, Vfs* vfs, const std::string& path,
                     const std::string& tmp_path, uint64_t epoch,
                     bool* renamed) {
  const uint64_t t0 = MonotonicNanos();
  if (renamed != nullptr) *renamed = false;
  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  binio::PutU32(&out, kSnapshotFormatVersion);
  binio::PutU64(&out, epoch);
  binio::PutI64(&out, db.next_id());

  std::vector<const Table*> tables;
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    if (t != nullptr && t->durable()) tables.push_back(t);
  }
  binio::PutU32(&out, static_cast<uint32_t>(tables.size()));
  for (const Table* t : tables) {
    const TableSchema& schema = t->schema();
    binio::PutString(&out, schema.name());
    binio::PutU32(&out, static_cast<uint32_t>(schema.column_count()));
    for (const ColumnDef& c : schema.columns()) {
      binio::PutString(&out, c.name);
      binio::PutU8(&out, static_cast<uint8_t>(c.type));
    }
    // Every slot, live or tombstoned: row ids are physical addresses the
    // WAL's redo records point at, so dead slots must keep their positions.
    binio::PutU64(&out, t->capacity());
    for (size_t rowid = 0; rowid < t->capacity(); ++rowid) {
      binio::PutU8(&out, t->is_live(rowid) ? 1 : 0);
      for (const Value& v : t->row_span(rowid)) binio::PutValue(&out, v);
    }
    binio::PutU32(&out, static_cast<uint32_t>(t->indexes().size()));
    for (const auto& index : t->indexes()) {
      binio::PutString(&out, index->name());
      binio::PutU32(&out, static_cast<uint32_t>(index->column()));
    }
  }

  const auto& triggers = db.triggers();
  binio::PutU32(&out, static_cast<uint32_t>(triggers.size()));
  for (const auto& trigger : triggers) {
    if (trigger.sql.empty()) {
      return Status::Internal("trigger '" + trigger.name +
                              "' has no CREATE TRIGGER text to checkpoint");
    }
    binio::PutString(&out, trigger.sql);
  }

  binio::PutU32(&out, binio::Crc32(out.data(), out.size()));

  XUPD_RETURN_IF_ERROR(WriteFileDurably(vfs, tmp_path, out));
  if (int err = vfs->Rename(tmp_path, path); err != 0) {
    return ErrnoStatus("cannot rename snapshot into place", path, err);
  }
  if (renamed != nullptr) *renamed = true;
  if (int err = vfs->SyncDir(path); err != 0) {
    return ErrnoStatus("cannot fsync snapshot directory", path, err);
  }
  db.metrics().GetHistogram("snapshot.write")->Record(MonotonicNanos() - t0);
  return Status::OK();
}

Result<uint64_t> LoadSnapshot(Database* db, Vfs* vfs,
                              const std::string& path) {
  XUPD_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(vfs, path));
  if (data.size() < sizeof(kSnapshotMagic) + 4 + 4 ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Internal("'" + path + "' is not a snapshot file");
  }
  {
    binio::Reader v(data.data() + sizeof(kSnapshotMagic), 4);
    uint32_t version = v.U32();
    if (version != kSnapshotFormatVersion) {
      return Status::Internal(
          "snapshot format version mismatch: file has " +
          std::to_string(version) + ", this build reads " +
          std::to_string(kSnapshotFormatVersion));
    }
  }
  {
    binio::Reader c(data.data() + data.size() - 4, 4);
    uint32_t stored = c.U32();
    uint32_t actual = binio::Crc32(data.data(), data.size() - 4);
    if (stored != actual) {
      return Status::Internal("snapshot '" + path +
                              "' failed its CRC check (truncated or corrupt)");
    }
  }

  binio::Reader r(data.data() + sizeof(kSnapshotMagic) + 4,
                  data.size() - sizeof(kSnapshotMagic) - 4 - 4);
  uint64_t epoch = r.U64();
  int64_t next_id = r.I64();
  uint32_t table_count = r.U32();
  for (uint32_t ti = 0; r.ok() && ti < table_count; ++ti) {
    std::string name = r.String();
    uint32_t ncols = r.U32();
    std::vector<ColumnDef> cols;
    for (uint32_t ci = 0; r.ok() && ci < ncols; ++ci) {
      ColumnDef def;
      def.name = r.String();
      def.type = static_cast<ColumnType>(r.U8());
      cols.push_back(std::move(def));
    }
    if (!r.ok()) break;
    auto table = db->CreateTableDirect(TableSchema(name, std::move(cols)),
                                       /*transactional=*/true,
                                       /*durable=*/true);
    if (!table.ok()) return table.status();
    uint64_t slots = r.U64();
    for (uint64_t s = 0; r.ok() && s < slots; ++s) {
      bool live = r.U8() != 0;
      Row row;
      row.reserve(ncols);
      for (uint32_t ci = 0; r.ok() && ci < ncols; ++ci) {
        row.push_back(r.ReadValue());
      }
      if (!r.ok()) break;
      table.value()->LoadSlot(std::move(row), live);
    }
    uint32_t index_count = r.U32();
    for (uint32_t ii = 0; r.ok() && ii < index_count; ++ii) {
      std::string index_name = r.String();
      uint32_t column = r.U32();
      if (!r.ok()) break;
      XUPD_RETURN_IF_ERROR(
          table.value()->CreateIndex(index_name, static_cast<int>(column)));
    }
  }
  uint32_t trigger_count = r.U32();
  for (uint32_t ti = 0; r.ok() && ti < trigger_count; ++ti) {
    std::string sql = r.String();
    if (!r.ok()) break;
    XUPD_RETURN_IF_ERROR(db->Execute(sql));
  }
  if (!r.ok()) {
    return Status::Internal("snapshot '" + path + "' is malformed");
  }
  db->set_next_id(next_id);
  return epoch;
}

std::vector<std::string> VerifySnapshotFile(Vfs* vfs,
                                            const std::string& path) {
  std::vector<std::string> violations;
  auto read = ReadWholeFile(vfs, path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) return violations;
    violations.push_back("snapshot unreadable: " + read.status().message());
    return violations;
  }
  const std::string& data = read.value();
  if (data.size() < sizeof(kSnapshotMagic) + 4 + 4 ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    violations.push_back("snapshot header corrupt: '" + path + "'");
    return violations;
  }
  binio::Reader v(data.data() + sizeof(kSnapshotMagic), 4);
  uint32_t version = v.U32();
  if (version != kSnapshotFormatVersion) {
    violations.push_back("snapshot version mismatch: file has " +
                         std::to_string(version));
  }
  binio::Reader c(data.data() + data.size() - 4, 4);
  uint32_t stored = c.U32();
  uint32_t actual = binio::Crc32(data.data(), data.size() - 4);
  if (stored != actual) {
    violations.push_back("snapshot CRC mismatch: '" + path + "'");
  }
  return violations;
}

uint64_t SnapshotEpochOnDisk(Vfs* vfs, const std::string& path) {
  auto read = ReadWholeFile(vfs, path);
  if (!read.ok()) return 0;
  const std::string& data = read.value();
  size_t header = sizeof(kSnapshotMagic) + 4;
  if (data.size() < header + 8 ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return 0;
  }
  binio::Reader r(data.data() + header, 8);
  return r.U64();
}

}  // namespace xupd::rdb
