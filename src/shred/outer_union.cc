#include "shred/outer_union.h"

#include <map>

#include "common/str_util.h"

namespace xupd::shred {

using rdb::Value;

std::vector<std::string> OuterUnionLayout::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    out.push_back("C" + std::to_string(i + 1));
  }
  return out;
}

OuterUnionQuery BuildOuterUnion(const Mapping& mapping,
                                const TableMapping* region_root,
                                const std::string& root_where) {
  OuterUnionQuery out;
  std::vector<const TableMapping*> tables = mapping.SubtreeTables(region_root);

  // Assign wide-tuple columns.
  std::map<const TableMapping*, size_t> segment_of;
  int next_col = 0;
  for (const TableMapping* t : tables) {
    OuterUnionLayout::Segment seg;
    seg.table = t;
    seg.id_col = next_col++;
    seg.first_field_col = next_col;
    seg.field_count = t->fields.size();
    next_col += static_cast<int>(t->fields.size());
    segment_of[t] = out.layout.segments.size();
    out.layout.segments.push_back(seg);
  }
  out.layout.width = static_cast<size_t>(next_col);
  // Parent id columns.
  for (auto& seg : out.layout.segments) {
    if (seg.table == region_root) {
      seg.parent_id_col = -1;
    } else {
      const TableMapping* parent = mapping.ForElement(seg.table->parent_element);
      seg.parent_id_col =
          out.layout.segments[segment_of.at(parent)].id_col;
    }
  }

  std::vector<std::string> col_names = out.layout.ColumnNames();
  std::string col_list = "(" + Join(col_names, ", ") + ")";

  // Ancestor segments (within the region) per segment.
  auto ancestors_of = [&](size_t seg_idx) {
    std::vector<size_t> anc;
    const TableMapping* cur = out.layout.segments[seg_idx].table;
    while (cur != region_root) {
      const TableMapping* parent = mapping.ForElement(cur->parent_element);
      anc.push_back(segment_of.at(parent));
      cur = parent;
    }
    return anc;
  };

  std::string sql = "WITH ";
  for (size_t k = 0; k < out.layout.segments.size(); ++k) {
    const auto& seg = out.layout.segments[k];
    if (k > 0) sql += ", ";
    sql += "Q" + std::to_string(k + 1) + " " + col_list + " AS (SELECT ";
    std::vector<size_t> anc = ancestors_of(k);
    std::vector<std::string> exprs(out.layout.width, "NULL");
    for (size_t a : anc) {
      int col = out.layout.segments[a].id_col;
      exprs[static_cast<size_t>(col)] =
          "q." + col_names[static_cast<size_t>(col)];
    }
    exprs[static_cast<size_t>(seg.id_col)] = "t.id";
    for (size_t f = 0; f < seg.field_count; ++f) {
      exprs[static_cast<size_t>(seg.first_field_col) + f] =
          "t." + seg.table->fields[f].column;
    }
    sql += Join(exprs, ", ");
    if (k == 0) {
      sql += " FROM " + seg.table->table + " t";
      if (!root_where.empty()) sql += " WHERE " + root_where;
    } else {
      size_t parent_seg = anc.front();
      sql += " FROM Q" + std::to_string(parent_seg + 1) + " q, " +
             seg.table->table + " t WHERE t.parentId = q." +
             col_names[static_cast<size_t>(
                 out.layout.segments[parent_seg].id_col)];
    }
    sql += ")";
  }
  sql += " ";
  for (size_t k = 0; k < out.layout.segments.size(); ++k) {
    if (k > 0) sql += " UNION ALL ";
    sql += "(SELECT * FROM Q" + std::to_string(k + 1) + ")";
  }
  sql += " ORDER BY ";
  std::vector<std::string> order_cols;
  for (const auto& seg : out.layout.segments) {
    order_cols.push_back(col_names[static_cast<size_t>(seg.id_col)]);
  }
  sql += Join(order_cols, ", ");
  out.sql = std::move(sql);
  return out;
}

namespace {

/// Ensures the inlined element at `path` below `root` exists, creating
/// missing steps in order; returns the element at the end of the path.
xml::Element* EnsurePath(xml::Element* root,
                         const std::vector<std::string>& path) {
  xml::Element* cur = root;
  for (const std::string& step : path) {
    xml::Element* next = cur->FindChildElement(step);
    if (next == nullptr) {
      next = cur->AppendSimpleChild(step, "");
    }
    cur = next;
  }
  return cur;
}

std::unique_ptr<xml::Element> BuildElementFromRow(
    const TableMapping* tm, const rdb::Row& row,
    const OuterUnionLayout::Segment& seg) {
  auto elem = std::make_unique<xml::Element>(tm->element);
  for (size_t f = 0; f < seg.field_count; ++f) {
    const InlinedField& field = tm->fields[f];
    const Value& v = row[static_cast<size_t>(seg.first_field_col) + f];
    if (v.is_null()) continue;
    xml::Element* at = EnsurePath(elem.get(), field.path);
    switch (field.kind) {
      case InlinedField::Kind::kPcdata:
        if (!v.ToString().empty()) at->AppendText(v.ToString());
        break;
      case InlinedField::Kind::kAttribute:
        if (field.is_ref) {
          for (std::string& target : SplitWhitespace(v.ToString())) {
            at->AppendRef(field.attr, std::move(target));
          }
        } else {
          at->SetAttribute(field.attr, v.ToString());
        }
        break;
      case InlinedField::Kind::kPresence:
        break;  // EnsurePath materialized it.
    }
  }
  return elem;
}

}  // namespace

Result<std::vector<std::unique_ptr<xml::Element>>> ReconstructFromOuterUnion(
    const Mapping& mapping, const OuterUnionLayout& layout,
    const rdb::ResultSet& result) {
  (void)mapping;
  std::vector<std::unique_ptr<xml::Element>> roots;
  std::map<int64_t, xml::Element*> by_id;
  for (const rdb::Row& row : result.rows) {
    // The row's segment: the last (pre-order) segment whose id is non-null.
    int seg_idx = -1;
    for (size_t k = 0; k < layout.segments.size(); ++k) {
      if (!row[static_cast<size_t>(layout.segments[k].id_col)].is_null()) {
        seg_idx = static_cast<int>(k);
      }
    }
    if (seg_idx < 0) {
      return Status::Internal("outer-union row with no id columns");
    }
    const auto& seg = layout.segments[static_cast<size_t>(seg_idx)];
    int64_t id = row[static_cast<size_t>(seg.id_col)].AsInt();
    auto elem = BuildElementFromRow(seg.table, row, seg);
    xml::Element* raw = elem.get();
    if (seg.parent_id_col < 0) {
      roots.push_back(std::move(elem));
    } else {
      const Value& pid = row[static_cast<size_t>(seg.parent_id_col)];
      if (pid.is_null()) {
        return Status::Internal("child row with NULL parent id");
      }
      auto it = by_id.find(pid.AsInt());
      if (it == by_id.end()) {
        return Status::Internal(
            "sorted stream violated: child before parent (parent id " +
            pid.ToString() + ")");
      }
      it->second->AppendChild(std::move(elem));
    }
    by_id[id] = raw;
  }
  return roots;
}

Result<std::unique_ptr<xml::Document>> ReconstructDocument(
    const Mapping& mapping, rdb::Database* db) {
  OuterUnionQuery query = BuildOuterUnion(mapping, mapping.root(), "");
  auto result = db->ExecuteQuery(query.sql);
  if (!result.ok()) return result.status();
  auto roots = ReconstructFromOuterUnion(mapping, query.layout, *result);
  if (!roots.ok()) return roots.status();
  if (roots->size() != 1) {
    return Status::Internal("expected exactly one document root, got " +
                            std::to_string(roots->size()));
  }
  auto doc = std::make_unique<xml::Document>(std::move(roots->front()));
  for (const xml::AttrDecl& a : mapping.dtd().attributes()) {
    if (a.type == xml::AttrType::kIdref || a.type == xml::AttrType::kIdrefs) {
      doc->DeclareRefAttribute(a.name);
    }
    if (a.type == xml::AttrType::kId) {
      doc->set_id_attribute(a.name);
    }
  }
  return doc;
}

}  // namespace xupd::shred
