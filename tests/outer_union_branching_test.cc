// Outer-union + strategies over a *branching* table hierarchy (DBLP shape:
// publication has two child tables, author and cite) — the linear-chain
// tests in shred_test.cc do not cover sibling table regions.
#include <gtest/gtest.h>

#include "engine/store.h"
#include "test_util.h"
#include "workload/synthetic.h"
#include "xml/serializer.h"

namespace xupd::shred {
namespace {

class BranchingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gen = workload::GenerateDblp(MakeSpec(), /*seed=*/99);
    ASSERT_TRUE(gen.ok());
    gen_ = std::make_unique<workload::GeneratedDoc>(std::move(gen).value());
  }

  static workload::DblpSpec MakeSpec() {
    workload::DblpSpec spec;
    spec.conferences = 6;
    return spec;
  }

  std::unique_ptr<engine::RelationalStore> MakeStore(
      engine::DeleteStrategy del, engine::InsertStrategy ins) {
    engine::RelationalStore::Options options;
    options.delete_strategy = del;
    options.insert_strategy = ins;
    auto store = engine::RelationalStore::Create(gen_->dtd, options);
    EXPECT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(store.value()->Load(*gen_->doc).ok());
    return std::move(store).value();
  }

  std::unique_ptr<workload::GeneratedDoc> gen_;
};

TEST_F(BranchingTest, RoundTripThroughOuterUnion) {
  auto store = MakeStore(engine::DeleteStrategy::kPerTupleTrigger,
                         engine::InsertStrategy::kTable);
  auto rebuilt = store->Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(
      xml::DeepEqualUnordered(*gen_->doc->root(), *rebuilt.value()->root()));
}

TEST_F(BranchingTest, OuterUnionRegionQueryOnMidLevel) {
  auto store = MakeStore(engine::DeleteStrategy::kPerTupleTrigger,
                         engine::InsertStrategy::kTable);
  // Publications of one year, with authors and cites attached.
  auto result = store->OuterUnion("publication", "year = '1995'");
  ASSERT_TRUE(result.ok()) << result.status();
  OuterUnionQuery query = BuildOuterUnion(
      store->mapping(), store->mapping().ForElement("publication"),
      "year = '1995'");
  auto roots = ReconstructFromOuterUnion(store->mapping(), query.layout,
                                         *result);
  ASSERT_TRUE(roots.ok()) << roots.status();
  ASSERT_FALSE(roots->empty());
  for (const auto& pub : *roots) {
    EXPECT_EQ(pub->name(), "publication");
    EXPECT_EQ(pub->FindChildElement("year")->TextContent(), "1995");
  }
}

using ComboParam =
    std::tuple<engine::DeleteStrategy, engine::InsertStrategy>;

class BranchingComboTest
    : public BranchingTest,
      public ::testing::WithParamInterface<ComboParam> {
 protected:
  void SetUp() override { BranchingTest::SetUp(); }
};

TEST_P(BranchingComboTest, DeleteAndCopyOnBushyData) {
  auto [del, ins] = GetParam();
  auto store = MakeStore(del, ins);
  // Delete year-2000 publications (mid-level target with two child tables).
  ASSERT_TRUE(store->DeleteWhere("publication", "year = '2000'").ok());
  auto year2000 = store->db()->ExecuteQuery(
      "SELECT COUNT(*) FROM publication WHERE year = '2000'");
  ASSERT_TRUE(year2000.ok());
  EXPECT_EQ(year2000->rows[0][0].AsInt(), 0);
  // No orphaned authors/cites.
  auto orphans = store->db()->ExecuteQuery(
      "SELECT COUNT(*) FROM author WHERE parentId NOT IN "
      "(SELECT id FROM publication)");
  ASSERT_TRUE(orphans.ok());
  EXPECT_EQ(orphans->rows[0][0].AsInt(), 0);

  // Copy one conference; tuple counts double for its region.
  auto ids = store->SelectIds("conference", "");
  ASSERT_TRUE(ids.ok());
  auto before = store->db()->ExecuteQuery("SELECT COUNT(*) FROM author");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      store->CopySubtree("conference", ids->front(), store->root_id()).ok());
  auto confs = store->SelectIds("conference", "");
  ASSERT_TRUE(confs.ok());
  EXPECT_EQ(confs->size(), ids->size() + 1);
  // The copy has authors too.
  auto after = store->db()->ExecuteQuery("SELECT COUNT(*) FROM author");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->rows[0][0].AsInt(), before->rows[0][0].AsInt());

  // Still reconstructs.
  auto rebuilt = store->Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
}

INSTANTIATE_TEST_SUITE_P(
    Combos, BranchingComboTest,
    ::testing::Combine(
        ::testing::Values(engine::DeleteStrategy::kPerTupleTrigger,
                          engine::DeleteStrategy::kPerStatementTrigger,
                          engine::DeleteStrategy::kCascade,
                          engine::DeleteStrategy::kAsr),
        ::testing::Values(engine::InsertStrategy::kTuple,
                          engine::InsertStrategy::kTable,
                          engine::InsertStrategy::kAsr)));

TEST_F(BranchingTest, CopiesAgreeAcrossInsertStrategies) {
  std::string canon;
  for (auto ins : {engine::InsertStrategy::kTuple, engine::InsertStrategy::kTable,
                   engine::InsertStrategy::kAsr}) {
    auto store = MakeStore(engine::DeleteStrategy::kCascade, ins);
    auto ids = store->SelectIds("conference", "");
    ASSERT_TRUE(ids.ok());
    ASSERT_TRUE(
        store->CopySubtree("conference", ids->back(), store->root_id()).ok());
    auto rebuilt = store->Reconstruct();
    ASSERT_TRUE(rebuilt.ok());
    // Canonical unordered form: strip ids by comparing canonical text of the
    // reconstructed tree (ids are not stored in the XML itself).
    std::string text = xml::Canonical(*rebuilt.value());
    if (canon.empty()) {
      canon = text;
    } else {
      EXPECT_EQ(canon.size(), text.size())
          << "insert strategy " << engine::ToString(ins) << " diverged";
    }
  }
}

}  // namespace
}  // namespace xupd::shred
