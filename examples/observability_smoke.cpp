// Observability smoke tool for CI: run the fig. 6-shaped workload, then
// prove the observability surfaces carry real numbers — EXPLAIN ANALYZE
// reports per-operator actuals that match the plain query, SHOW METRICS
// reports nonzero statement timings, the slow-statement log captures at
// threshold 0, and the event ring holds statement spans. Exits nonzero on
// any missing or zero timing field, so a silently-broken instrumentation
// path fails the build instead of shipping dead dashboards.
//
//   $ ./observability_smoke
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/store.h"
#include "workload/synthetic.h"

using namespace xupd;
using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  } else {
    std::printf("ok: %s\n", what);
  }
}

/// Finds `key` in SHOW METRICS rows and returns its value (-1 = missing).
int64_t MetricValue(const rdb::ResultSet& metrics, const std::string& key) {
  for (const rdb::Row& row : metrics.rows) {
    if (row[0].ToString() == key) return row[1].AsInt();
  }
  return -1;
}

}  // namespace

int main() {
  workload::SyntheticSpec spec;
  spec.scaling_factor = 20;
  spec.depth = 4;
  spec.fanout = 2;
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  if (!gen.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 gen.status().ToString().c_str());
    return 2;
  }

  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerStatementTrigger;
  options.insert_strategy = InsertStrategy::kTable;
  auto store = RelationalStore::Create(gen->dtd, options);
  if (!store.ok()) {
    std::fprintf(stderr, "store create failed: %s\n",
                 store.status().ToString().c_str());
    return 2;
  }
  rdb::Database* db = store.value()->db();
  db->set_slow_statement_threshold_us(0);  // capture everything
  Status loaded = store.value()->Load(*gen->doc);
  if (!loaded.ok()) {
    std::fprintf(stderr, "store load failed: %s\n", loaded.ToString().c_str());
    return 2;
  }

  // --- EXPLAIN ANALYZE over the fig. 6 join shape --------------------------
  const std::string join =
      "SELECT n2.id FROM n1, n2 WHERE n2.parentId = n1.id";
  auto plain = db->ExecuteQuery(join);
  if (!plain.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 plain.status().ToString().c_str());
    return 2;
  }
  auto analyzed = db->ExecuteQuery("EXPLAIN ANALYZE " + join);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "EXPLAIN ANALYZE failed: %s\n",
                 analyzed.status().ToString().c_str());
    return 2;
  }
  std::string plan_text;
  for (const rdb::Row& row : analyzed->rows) {
    plan_text += row[0].ToString();
    plan_text += '\n';
  }
  std::printf("%s", plan_text.c_str());
  Check(plan_text.find("actual rows=") != std::string::npos,
        "EXPLAIN ANALYZE reports per-operator actual rows");
  Check(plan_text.find("time_us=") != std::string::npos,
        "EXPLAIN ANALYZE reports per-operator times");
  const std::string exec_line =
      "Execution: rows=" + std::to_string(plain->rows.size());
  Check(plan_text.find(exec_line) != std::string::npos,
        "EXPLAIN ANALYZE row count matches the plain query");
  Check(plan_text.find("time_us=0.000") == std::string::npos,
        "no operator reports a zero time");

  // --- fig. 6 bulk delete + SHOW METRICS -----------------------------------
  Status deleted = store.value()->DeleteWhere("n1", "");
  if (!deleted.ok()) {
    std::fprintf(stderr, "delete failed: %s\n", deleted.ToString().c_str());
    return 2;
  }
  auto metrics = db->ExecuteQuery("SHOW METRICS");
  if (!metrics.ok()) {
    std::fprintf(stderr, "SHOW METRICS failed: %s\n",
                 metrics.status().ToString().c_str());
    return 2;
  }
  Check(MetricValue(*metrics, "stats.statements") > 0,
        "SHOW METRICS carries the stats counters");
  Check(MetricValue(*metrics, "stmt.delete.count") >= 1,
        "DELETE statements recorded a latency sample");
  Check(MetricValue(*metrics, "stmt.delete.p50_ns") > 0,
        "DELETE latency p50 is nonzero");
  Check(MetricValue(*metrics, "stmt.select.p99_ns") > 0,
        "SELECT latency p99 is nonzero");
  Check(MetricValue(*metrics, "db.exec_ns") > 0,
        "cumulative execution time counter is nonzero");
  Check(MetricValue(*metrics, "engine.delete_where.count") >= 1,
        "the engine operation recorded its span");
  Check(MetricValue(*metrics, "engine.delete_where.p50_ns") > 0,
        "the engine span time is nonzero");

  // --- slow log + event ring ----------------------------------------------
  auto slow = db->ExecuteQuery("SHOW SLOW");
  Check(slow.ok() && !slow->rows.empty(),
        "SHOW SLOW captured statements at threshold 0");
  auto events = db->ExecuteQuery("SHOW EVENTS");
  Check(events.ok() && !events->rows.empty(), "SHOW EVENTS returns spans");
  if (events.ok() && !events->rows.empty()) {
    const std::string first = events->rows[0][0].ToString();
    Check(first.find("\"kind\"") != std::string::npos &&
              first.find("\"duration_ns\"") != std::string::npos,
          "events serialize as JSON spans");
  }
  auto health = db->ExecuteQuery("SHOW HEALTH");
  Check(health.ok() && !health->rows.empty(), "SHOW HEALTH returns rows");

  if (g_failures > 0) {
    std::fprintf(stderr, "%d observability check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("observability smoke passed\n");
  return 0;
}
