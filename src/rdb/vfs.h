// Pluggable virtual filesystem for the durability layer.
//
// Every file operation the WAL and snapshot code performs goes through a Vfs
// so that tests can interpose a FaultVfs: a write-through wrapper that injects
// EIO / ENOSPC / short writes / EINTR at the Nth mutating operation and can
// simulate power loss by reverting every file to its last-fsynced image
// (optionally keeping a torn prefix of the unsynced tail). The default
// implementation, PosixVfs, is a thin shim over open/read/write/fsync.
//
// Error reporting is deliberately C-flavored (errno ints and byte counts)
// rather than Status: the retry policy (bounded EINTR/EAGAIN loops) and the
// message formatting (symbolic errno names) live in the helpers below, so an
// injected fault travels through the exact same code path a real one would.
#ifndef XUPD_RDB_VFS_H_
#define XUPD_RDB_VFS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/result.h"

namespace xupd::rdb {

/// Outcome of one raw read or write: `n` bytes transferred when `err` is 0
/// (short counts are legal, as with the underlying syscalls), otherwise an
/// errno value and `n` == 0.
struct VfsIoResult {
  ssize_t n = 0;
  int err = 0;
};

/// An open file handle. All methods return 0 / a VfsIoResult with err == 0 on
/// success, or an errno value. Close() is idempotent and implied by the
/// destructor.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  virtual VfsIoResult Read(void* buf, size_t size) = 0;
  virtual VfsIoResult Write(const void* buf, size_t size) = 0;
  virtual int Sync() = 0;
  virtual int Truncate(uint64_t size) = 0;
  /// Repositions the file offset (absolute).
  virtual int Seek(uint64_t offset) = 0;
  /// flock(LOCK_EX | LOCK_NB); EWOULDBLOCK when another process holds it.
  virtual int TryLockExclusive() = 0;
  virtual int Close() = 0;
};

class Vfs {
 public:
  enum class OpenMode {
    kRead,      ///< O_RDONLY; the file must exist.
    kWrite,     ///< O_WRONLY | O_CREAT, existing content kept.
    kTruncate,  ///< O_WRONLY | O_CREAT | O_TRUNC.
  };

  virtual ~Vfs() = default;

  /// Null on failure with *err set to the errno.
  virtual std::unique_ptr<VfsFile> Open(const std::string& path, OpenMode mode,
                                        int* err) = 0;
  virtual int Mkdir(const std::string& dir) = 0;  ///< EEXIST passed through.
  virtual int Rename(const std::string& from, const std::string& to) = 0;
  virtual int Remove(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// fsyncs the directory containing `path_in_dir`, making renames and file
  /// creations in it durable.
  virtual int SyncDir(const std::string& path_in_dir) = 0;

  /// Process-wide PosixVfs singleton.
  static Vfs* Default();
};

/// Stable symbolic name for an errno value ("ENOSPC", ...), or "errno <n>".
const char* ErrnoName(int err);

/// Internal-status "<what> '<path>': <ENAME> (<strerror>)".
Status ErrnoStatus(const std::string& what, const std::string& path, int err);

/// Writes all of [data, data+size), retrying short writes and a bounded
/// number of EINTR/EAGAIN interruptions (transient signal wakeups must not
/// fail-stop the WAL writer).
Status WriteFully(VfsFile* file, const char* data, size_t size,
                  const std::string& what, const std::string& path);

/// Reads a whole file into a string. NotFound when the file does not exist.
Result<std::string> ReadWholeFile(Vfs* vfs, const std::string& path);

// ---------------------------------------------------------------------------
// FaultVfs

/// A write-through fault-injection wrapper (single-threaded, test-only).
///
/// Every mutating operation (write, fsync, truncate, rename, dir-sync) on a
/// path matching the armed filter increments an op counter; when it reaches
/// `fail_at` the armed fault fires. Reads and opens are never counted, so a
/// clean run's op count is a stable schedule for a fault matrix.
///
/// Besides injecting errors, FaultVfs shadows file contents: `synced` is what
/// is guaranteed to survive power loss, `current` is what the OS would show
/// now. Operations pass through to the base Vfs (so other processes see the
/// real files), and SimulatePowerLoss() rewrites the real files from the
/// synced images — dropping never-synced writes, un-doing un-synced renames
/// and truncations, and removing files whose directory entry was never made
/// durable with SyncDir.
class FaultVfs : public Vfs {
 public:
  enum class FaultKind {
    kNone,
    kEio,        ///< Every later mutating op fails EIO until ClearFault().
    kEnospc,     ///< Half the bytes land, then ENOSPC; writes keep failing.
    kShortWrite, ///< One short count (no error) — exercises the retry loop.
    kEintr,      ///< One EINTR — must be absorbed by the retry loop.
    kPowerLoss,  ///< SimulatePowerLoss() fires; open handles go dead (EIO).
  };

  explicit FaultVfs(Vfs* base) : base_(base) {}

  /// Arms `kind` to fire on the `fail_at`-th (1-based) mutating op whose path
  /// contains `path_filter` (empty matches all).
  void ArmFault(FaultKind kind, int fail_at, std::string path_filter = "");
  void ClearFault();

  /// Bytes of the most recently written unsynced tail to keep when power is
  /// lost (models a torn sector write).
  void set_torn_tail_bytes(size_t n) { torn_tail_bytes_ = n; }

  /// Reverts the real filesystem to the last-synced state.
  void SimulatePowerLoss();

  int mutating_ops() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return op_count_;
  }
  bool fired() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return fired_;
  }

  std::unique_ptr<VfsFile> Open(const std::string& path, OpenMode mode,
                                int* err) override;
  int Mkdir(const std::string& dir) override { return base_->Mkdir(dir); }
  int Rename(const std::string& from, const std::string& to) override;
  int Remove(const std::string& path) override;
  bool Exists(const std::string& path) override { return base_->Exists(path); }
  int SyncDir(const std::string& path_in_dir) override;

 private:
  friend class FaultFile;

  struct Shadow {
    std::string synced;
    std::string current;
    bool exists_synced = false;   ///< Directory entry survives power loss.
    bool exists_current = false;
  };

  /// A rename whose directory entry has not been made durable with SyncDir
  /// yet; power loss reverts it.
  struct PendingRename {
    std::string dir;
    std::string from;
    std::string to;
    Shadow old_from;
    Shadow old_to;
    bool to_existed = false;
  };

  /// Counts one mutating op on `path`; returns the errno to inject (0 = let
  /// the op proceed). kShortWrite/kEnospc half-writes are signaled via
  /// *one_shot so the write path can land partial bytes first.
  int CheckFault(const std::string& path, bool is_write, FaultKind* one_shot);
  Shadow& TouchShadow(const std::string& path);
  void RecordWrite(const std::string& path, size_t offset, const char* data,
                   size_t n);
  void RecordSync(const std::string& path);
  void RecordTruncate(const std::string& path, uint64_t size);
  void ForgetFile(class FaultFile* file);
  static std::string DirOf(const std::string& path);

  Vfs* base_;
  /// Serializes all fault/shadow state: a kBatched group-commit flusher
  /// syncs through this Vfs from its own thread while the writer appends.
  /// Recursive because CheckFault(kPowerLoss) calls SimulatePowerLoss.
  mutable std::recursive_mutex mu_;
  std::map<std::string, Shadow> shadows_;
  std::vector<class FaultFile*> open_files_;
  std::vector<PendingRename> pending_renames_;

  FaultKind armed_ = FaultKind::kNone;
  std::string path_filter_;
  int fail_at_ = 0;
  int op_count_ = 0;
  bool fired_ = false;
  /// Persistent-failure mode entered when kEio/kEnospc fires.
  FaultKind active_ = FaultKind::kNone;
  size_t torn_tail_bytes_ = 0;
  /// Path of the last un-synced write (the torn tail lives at its end).
  std::string last_written_path_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_VFS_H_
