// SQL values: NULL, INTEGER (int64), VARCHAR (string).
#ifndef XUPD_RDB_VALUE_H_
#define XUPD_RDB_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

namespace xupd::rdb {

enum class ValueType { kNull, kInt, kString };

class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt;
    out.int_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.str_ = std::move(v);
    return out;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  int64_t AsInt() const { return int_; }
  const std::string& AsString() const { return str_; }

  /// Three-way comparison for ORDER BY and joins. NULL sorts first; NULL is
  /// only equal to NULL here (SQL expression evaluation handles UNKNOWN
  /// separately). Mixed int/string: the string is coerced to int when it
  /// parses, else values compare by their textual form.
  int Compare(const Value& other) const;

  /// SQL equality (used by indexes and IN-sets): NULL never matches.
  bool SqlEquals(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    return Compare(other) == 0;
  }

  /// Identity (NULL == NULL), for container keys.
  bool operator==(const Value& other) const {
    if (type_ != other.type_) return Compare(other) == 0 && !is_null() && !other.is_null();
    switch (type_) {
      case ValueType::kNull:
        return true;
      case ValueType::kInt:
        return int_ == other.int_;
      case ValueType::kString:
        return str_ == other.str_;
    }
    return false;
  }

  size_t Hash() const;

  /// Rendering for result display ("NULL", 42, abc).
  std::string ToString() const;

  /// Rendering as a SQL literal (quoted string / bare int / NULL).
  std::string ToSqlLiteral() const;

 private:
  ValueType type_;
  int64_t int_ = 0;
  std::string str_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_VALUE_H_
