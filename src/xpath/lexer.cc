#include "xpath/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace xupd::xpath {

Lexer::Lexer(std::string_view text) : text_(text) {}

void Lexer::SkipSpace() {
  while (pos_ < text_.size()) {
    char c = text_[pos_];
    if (c == '\n') {
      ++line_;
      col_ = 1;
      ++pos_;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++col_;
      ++pos_;
    } else {
      break;
    }
  }
}

namespace {
bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == ':';
}
}  // namespace

const Token& Lexer::Peek() {
  if (!has_peek_) {
    peek_ = Scan();
    has_peek_ = true;
  }
  return peek_;
}

Token Lexer::Next() {
  if (has_peek_) {
    has_peek_ = false;
    return peek_;
  }
  return Scan();
}

bool Lexer::PeekKeyword(std::string_view kw) {
  const Token& t = Peek();
  return t.type == TokenType::kName && EqualsIgnoreCase(t.text, kw);
}

bool Lexer::ConsumeKeyword(std::string_view kw) {
  if (PeekKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

Result<Token> Lexer::Expect(TokenType type, std::string_view what) {
  const Token& t = Peek();
  if (t.type != type) {
    return Error("expected " + std::string(what));
  }
  return Next();
}

Status Lexer::Error(const std::string& msg) const {
  int line = has_peek_ ? peek_.line : line_;
  int col = has_peek_ ? peek_.col : col_;
  return Status::ParseError("query " + std::to_string(line) + ":" +
                            std::to_string(col) + ": " + msg);
}

Token Lexer::Scan() {
  SkipSpace();
  Token t;
  t.line = line_;
  t.col = col_;
  if (pos_ >= text_.size()) {
    t.type = TokenType::kEnd;
    return t;
  }
  char c = text_[pos_];
  auto advance = [&](size_t n) {
    pos_ += n;
    col_ += static_cast<int>(n);
  };
  auto two = [&](char next) {
    return pos_ + 1 < text_.size() && text_[pos_ + 1] == next;
  };
  switch (c) {
    case '/':
      if (two('/')) {
        advance(2);
        t.type = TokenType::kDoubleSlash;
      } else {
        advance(1);
        t.type = TokenType::kSlash;
      }
      return t;
    case '.':
      advance(1);
      t.type = TokenType::kDot;
      return t;
    case '@':
      advance(1);
      t.type = TokenType::kAt;
      return t;
    case '*':
      advance(1);
      t.type = TokenType::kStar;
      return t;
    case '(':
      advance(1);
      t.type = TokenType::kLParen;
      return t;
    case ')':
      advance(1);
      t.type = TokenType::kRParen;
      return t;
    case '[':
      advance(1);
      t.type = TokenType::kLBracket;
      return t;
    case ']':
      advance(1);
      t.type = TokenType::kRBracket;
      return t;
    case '{':
      advance(1);
      t.type = TokenType::kLBrace;
      return t;
    case '}':
      advance(1);
      t.type = TokenType::kRBrace;
      return t;
    case ',':
      advance(1);
      t.type = TokenType::kComma;
      return t;
    case '=':
      advance(1);
      t.type = TokenType::kEq;
      return t;
    case ':':
      if (two('=')) {
        advance(2);
        t.type = TokenType::kAssign;
        return t;
      }
      advance(1);
      t.type = TokenType::kName;  // lone ':' is invalid; surfaces as bad name
      t.text = ":";
      return t;
    case '!':
      if (two('=')) {
        advance(2);
        t.type = TokenType::kNe;
        return t;
      }
      advance(1);
      t.type = TokenType::kName;
      t.text = "!";
      return t;
    case '<':
      if (two('=')) {
        advance(2);
        t.type = TokenType::kLe;
      } else if (two('>')) {
        advance(2);
        t.type = TokenType::kNe;
      } else {
        advance(1);
        t.type = TokenType::kLt;
      }
      return t;
    case '>':
      if (two('=')) {
        advance(2);
        t.type = TokenType::kGe;
      } else {
        advance(1);
        t.type = TokenType::kGt;
      }
      return t;
    case '-':
      if (two('>')) {
        advance(2);
        t.type = TokenType::kArrow;
        return t;
      }
      if (pos_ + 1 < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        // negative number
        advance(1);
        std::string digits = "-";
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          digits += text_[pos_];
          advance(1);
        }
        t.type = TokenType::kNumber;
        ParseInt64(digits, &t.number);
        return t;
      }
      advance(1);
      t.type = TokenType::kName;
      t.text = "-";
      return t;
    case '$': {
      advance(1);
      std::string name;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) {
        name += text_[pos_];
        advance(1);
      }
      t.type = TokenType::kVariable;
      t.text = std::move(name);
      return t;
    }
    case '"':
    case '\'': {
      char quote = c;
      advance(1);
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        if (text_[pos_] == '\n') {
          ++line_;
          col_ = 0;
        }
        value += text_[pos_];
        advance(1);
      }
      if (pos_ < text_.size()) advance(1);  // closing quote
      t.type = TokenType::kString;
      t.text = std::move(value);
      return t;
    }
    default:
      break;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string digits;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      digits += text_[pos_];
      advance(1);
    }
    t.type = TokenType::kNumber;
    ParseInt64(digits, &t.number);
    return t;
  }
  if (IsNameStart(c)) {
    std::string name;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) {
      // '-' is a legal XML name character, but '->' is the dereference
      // operator: stop the name before it.
      if (text_[pos_] == '-' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '>') {
        break;
      }
      name += text_[pos_];
      advance(1);
    }
    t.type = TokenType::kName;
    t.text = std::move(name);
    return t;
  }
  // Unknown character: emit as a one-char name so the parser reports context.
  advance(1);
  t.type = TokenType::kName;
  t.text = std::string(1, c);
  return t;
}

Result<Token> Lexer::NextContent() {
  // Ensure we look at raw text (no lookahead already consumed).
  if (has_peek_) {
    if (peek_.type == TokenType::kLt) {
      // Re-scan from the '<': rewind is impossible with the stored token, so
      // capture from the current position (right after '<').
      has_peek_ = false;
      return ScanXmlFragment();
    }
    has_peek_ = false;
    return peek_;
  }
  SkipSpace();
  if (pos_ < text_.size() && text_[pos_] == '<') {
    ++pos_;
    ++col_;
    return ScanXmlFragment();
  }
  return Scan();
}

Result<Token> Lexer::ScanXmlFragment() {
  // Called with the leading '<' already consumed. Captures a balanced
  // element: tracks tag nesting; supports the paper's `</>` close shorthand,
  // self-closing tags and quoted attribute values.
  Token t;
  t.type = TokenType::kXmlFragment;
  t.line = line_;
  t.col = col_;
  std::string frag = "<";
  int depth = 0;       // number of currently open elements
  bool in_tag = true;  // currently inside <...>
  bool closing = false;
  bool self_close = false;
  char quote = '\0';
  while (pos_ < text_.size()) {
    char c = text_[pos_];
    frag += c;
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
    if (in_tag) {
      if (quote != '\0') {
        if (c == quote) quote = '\0';
        continue;
      }
      if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '/') {
        // '</' begins a close tag only right after '<'; '/>' self-closes.
        if (frag.size() >= 2 && frag[frag.size() - 2] == '<') {
          closing = true;
        } else {
          self_close = true;
        }
      } else if (c == '>') {
        in_tag = false;
        if (closing || self_close) {
          if (closing) --depth;
          closing = false;
          self_close = false;
          if (depth <= 0) {
            t.text = frag;
            return t;
          }
        } else {
          ++depth;
        }
      }
    } else {
      if (c == '<') {
        in_tag = true;
        closing = false;
        self_close = false;
      }
    }
  }
  return Status::ParseError("unterminated XML constructor in query");
}

}  // namespace xupd::xpath
