// Ablation: durability overhead. The WAL (rdb/wal.h) appends logical redo
// records for every committed unit of work on durable tables; this bench
// quantifies what that costs on the paper's fig. 6 bulk-delete workload,
// per delete strategy, in four modes plus a recovery measurement:
//
//   memory      Options::durability off — the baseline in-memory regime
//   wal-nosync  WAL appends, never fsyncs (OS flushes eventually)
//   wal-batch   WAL appends, group commit (fsync every 32 commit units)
//   wal-fsync   WAL appends, fsync at every commit unit
//   recovered   the op runs on a store REOPENED from disk (snapshot + WAL
//               replay); the row also carries the recovery time itself
//
// One JSON row per (strategy, mode) with wal_appends / wal_bytes /
// wal_fsyncs / recovery_replayed. The acceptance bar is wal-nosync overhead
// <= ~15% over memory on the bulk-delete workload; with durability off the
// fig. 6/10 numbers must be unchanged within run noise (the hooks reduce to
// one pointer test per row mutation).
#include <dirent.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <functional>
#include <string>

#include "harness.h"

using namespace xupd;
using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

namespace {

void RemoveDirRecursive(const std::string& path) {
  DIR* d = ::opendir(path.c_str());
  if (d != nullptr) {
    while (dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      std::remove((path + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(path.c_str());
}

/// A scratch data directory per durable store, wiped between runs so every
/// store starts fresh instead of recovering its predecessor.
class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "/tmp/xupd_walbench_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    if (p == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::abort();
    }
    path_ = p;
  }
  ~ScratchDir() { RemoveDirRecursive(path_); }
  void Wipe() {
    RemoveDirRecursive(path_);
    ::mkdir(path_.c_str(), 0755);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct ModeSpec {
  const char* name;
  bool durability = false;
  rdb::SyncMode sync = rdb::SyncMode::kNone;
  bool recovered = false;  ///< reopen from disk before running the op.
};

struct ModeResult {
  double seconds = 0;
  double recovery_seconds = 0;
  rdb::Stats stats;
  uint64_t replayed = 0;
  /// Per-run op wall times (ns) — the JSON row's run_p50_us comes from here
  /// instead of the noise-prone single average.
  Histogram run_ns;
  /// wal.commit_unit samples merged across every counted run's store (the
  /// load's commit units are included — same sync mode, more samples).
  Histogram commit_ns;
};

using Op = std::function<Status(RelationalStore*)>;

std::unique_ptr<RelationalStore> BuildStore(
    const workload::GeneratedDoc& gen, RelationalStore::Options options,
    const ModeSpec& mode, ScratchDir* dir, double* recovery_seconds,
    uint64_t* replayed) {
  options.durability = mode.durability;
  options.sync_mode = mode.sync;
  if (mode.durability) {
    dir->Wipe();
    options.data_dir = dir->path();
  }
  auto store = bench::FreshStore(gen, options);
  if (!mode.recovered) return store;
  // Drop the freshly loaded store and reopen from its files: the op then
  // runs against recovered state (snapshot-less, pure WAL replay).
  store.reset();
  Stopwatch sw;
  auto reopened = RelationalStore::Create(gen.dtd, options);
  *recovery_seconds = sw.ElapsedSeconds();
  if (!reopened.ok() || !reopened.value()->recovered()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 reopened.status().ToString().c_str());
    std::abort();
  }
  *replayed = reopened.value()->stats().recovery_replayed;
  return std::move(reopened).value();
}

template <size_t N>
std::array<ModeResult, N> MeasureInterleaved(
    const workload::GeneratedDoc& gen, RelationalStore::Options options,
    const Op& op, int runs, const std::array<ModeSpec, N>& modes) {
  std::array<ModeResult, N> out{};
  ScratchDir dir;
  int counted = 0;
  for (int r = 0; r < runs; ++r) {
    for (size_t m = 0; m < N; ++m) {
      double recovery_seconds = 0;
      uint64_t replayed = 0;
      auto store = BuildStore(gen, options, modes[m], &dir,
                              &recovery_seconds, &replayed);
      rdb::Stats before = store->stats();
      Stopwatch sw;
      Status s = op(store.get());
      double t = sw.ElapsedSeconds();
      if (!s.ok()) {
        std::fprintf(stderr, "op failed (%s): %s\n", modes[m].name,
                     s.ToString().c_str());
        std::abort();
      }
      if (r > 0) {
        out[m].seconds += t;
        out[m].recovery_seconds += recovery_seconds;
        out[m].stats = store->stats().Delta(before);
        out[m].replayed = replayed;
        out[m].run_ns.Record(static_cast<uint64_t>(t * 1e9));
        const Histogram* commit =
            store->db()->metrics().FindHistogram("wal.commit_unit");
        if (commit != nullptr) out[m].commit_ns.Merge(*commit);
      }
    }
    if (r > 0) ++counted;
  }
  for (size_t m = 0; m < N; ++m) {
    if (counted > 0) {
      out[m].seconds /= counted;
      out[m].recovery_seconds /= counted;
    }
  }
  return out;
}

void Report(const char* strategy, const char* mode, const ModeResult& r,
            double overhead_pct) {
  std::printf("%-10s %-10s %10.6f sec  overhead=%+6.2f%%  recovery=%.6f\n",
              strategy, mode, r.seconds, overhead_pct, r.recovery_seconds);
  std::printf(
      "{\"bench\":\"ablation_wal_overhead\",\"strategy\":\"%s\","
      "\"mode\":\"%s\",\"seconds\":%.6f,\"overhead_pct\":%.2f,"
      "\"run_p50_us\":%.1f,\"commit_p50_us\":%.3f,\"commit_p99_us\":%.3f,"
      "\"commit_units\":%llu,"
      "\"recovery_seconds\":%.6f,\"wal_appends\":%llu,\"wal_bytes\":%llu,"
      "\"wal_fsyncs\":%llu,\"recovery_replayed\":%llu,"
      "\"wal_bytes_per_record\":%.1f,%s\n",
      strategy, mode, r.seconds, overhead_pct,
      r.run_ns.Percentile(50) / 1e3, r.commit_ns.Percentile(50) / 1e3,
      r.commit_ns.Percentile(99) / 1e3,
      static_cast<unsigned long long>(r.commit_ns.count()),
      r.recovery_seconds,
      static_cast<unsigned long long>(r.stats.wal_appends),
      static_cast<unsigned long long>(r.stats.wal_bytes),
      static_cast<unsigned long long>(r.stats.wal_fsyncs),
      static_cast<unsigned long long>(r.replayed),
      r.stats.wal_appends > 0
          ? static_cast<double>(r.stats.wal_bytes) /
                static_cast<double>(r.stats.wal_appends)
          : 0.0,
      bench::JsonTail().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int sf = argc > 2 ? std::atoi(argv[2]) : 100;
  int depth = argc > 3 ? std::atoi(argv[3]) : 6;
  std::printf("# Ablation: WAL durability overhead (fig. 6 bulk delete, "
              "sf=%d depth=%d)\n", sf, depth);

  workload::SyntheticSpec spec;
  spec.scaling_factor = sf;
  spec.depth = depth;
  spec.fanout = 1;
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  if (!gen.ok()) return 1;
  Op bulk_delete = [](RelationalStore* s) { return s->DeleteWhere("n1", ""); };

  const std::array<ModeSpec, 5> modes = {{
      {"memory", false, rdb::SyncMode::kNone, false},
      {"wal-nosync", true, rdb::SyncMode::kNone, false},
      {"wal-batch", true, rdb::SyncMode::kBatched, false},
      {"wal-fsync", true, rdb::SyncMode::kCommit, false},
      {"recovered", true, rdb::SyncMode::kNone, true},
  }};

  const DeleteStrategy methods[] = {
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kCascade, DeleteStrategy::kAsr};
  for (DeleteStrategy method : methods) {
    RelationalStore::Options options;
    options.delete_strategy = method;
    options.insert_strategy = InsertStrategy::kTable;
    auto results =
        MeasureInterleaved(*gen, options, bulk_delete, runs, modes);
    double base = results[0].seconds;
    for (size_t m = 0; m < modes.size(); ++m) {
      double overhead =
          base > 0 ? 100.0 * (results[m].seconds - base) / base : 0.0;
      Report(ToString(method), modes[m].name, results[m], overhead);
    }
    // scrub: the online integrity scrub (CHECK INTEGRITY + VerifyStore) over
    // the loaded durable store — what an inter-operation health check costs
    // relative to the bulk-delete op itself.
    {
      ScratchDir sdir;
      RelationalStore::Options so = options;
      so.durability = true;
      so.sync_mode = rdb::SyncMode::kNone;
      so.data_dir = sdir.path();
      auto store = bench::FreshStore(*gen, so);
      ModeResult r{};
      for (int i = 0; i < runs; ++i) {
        Stopwatch sw;
        size_t v = store->db()->VerifyIntegrity().size() +
                   store->VerifyStore().size();
        double t = sw.ElapsedSeconds();
        if (v != 0) {
          std::fprintf(stderr, "scrub found %zu violations\n", v);
          std::abort();
        }
        if (i > 0) r.run_ns.Record(static_cast<uint64_t>(t * 1e9));
      }
      // Histogram-backed median: one outlier run (page cache miss, CI
      // neighbor) no longer drags the reported scrub cost.
      r.seconds = r.run_ns.Percentile(50) / 1e9;
      const Histogram* commit =
          store->db()->metrics().FindHistogram("wal.commit_unit");
      if (commit != nullptr) r.commit_ns.Merge(*commit);
      double overhead =
          base > 0 ? 100.0 * (r.seconds - base) / base : 0.0;
      Report(ToString(method), "scrub", r, overhead);
    }
  }
  return 0;
}
