#include "common/metrics.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

namespace xupd {

double Histogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (p <= 0) return static_cast<double>(min());
  if (p >= 100) return static_cast<double>(max());
  // Rank of the target sample, 1-based; ceil so p=50 over 2 samples picks
  // the first.
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const uint64_t n =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= rank) {
      // Interpolate linearly inside the bucket by how far the rank sits
      // among its samples.
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(n);
      const double v = static_cast<double>(BucketLowerBound(i)) +
                       frac * static_cast<double>(BucketWidth(i));
      return std::clamp(v, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    seen += n;
  }
  return static_cast<double>(max());
}

void Histogram::Merge(const Histogram& other) {
  if (other.count() == 0) return;
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<size_t>(i)].fetch_add(
        other.buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  const uint64_t omin = other.min_.load(std::memory_order_relaxed);
  uint64_t m = min_.load(std::memory_order_relaxed);
  while (omin < m &&
         !min_.compare_exchange_weak(m, omin, std::memory_order_relaxed)) {
  }
  const uint64_t omax = other.max_.load(std::memory_order_relaxed);
  m = max_.load(std::memory_order_relaxed);
  while (omax > m &&
         !max_.compare_exchange_weak(m, omax, std::memory_order_relaxed)) {
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

namespace trace {
namespace {

// Dense thread ids start at 1; track names live in a fixed global table so
// naming and lookup never allocate. Threads beyond the table stay unnamed
// (they still trace, their track is just called "thread-<tid>").
constexpr uint32_t kMaxNamedTids = 256;
std::atomic<uint32_t> g_next_tid{1};
std::atomic<uint64_t> g_next_span_id{1};
std::array<std::atomic<const char*>, kMaxNamedTids> g_thread_names{};
thread_local uint32_t t_tid = 0;
thread_local Context t_context;

}  // namespace

uint32_t CurrentTid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

void SetCurrentThreadName(const char* name) {
  const uint32_t tid = CurrentTid();
  if (tid < kMaxNamedTids) {
    g_thread_names[tid].store(name, std::memory_order_release);
  }
}

const char* ThreadName(uint32_t tid) {
  if (tid >= kMaxNamedTids) return nullptr;
  return g_thread_names[tid].load(std::memory_order_acquire);
}

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

Context& CurrentContext() { return t_context; }

}  // namespace trace

const char* ToString(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kStatement: return "statement";
    case TraceEvent::Kind::kTxn: return "txn";
    case TraceEvent::Kind::kWalUnit: return "wal_unit";
    case TraceEvent::Kind::kFsync: return "fsync";
    case TraceEvent::Kind::kCheckpoint: return "checkpoint";
    case TraceEvent::Kind::kRecovery: return "recovery";
    case TraceEvent::Kind::kScrub: return "scrub";
    case TraceEvent::Kind::kEngineOp: return "engine_op";
    case TraceEvent::Kind::kGovernance: return "governance";
  }
  return "unknown";
}

void EventLog::Record(const TraceEvent& e) {
  TraceEvent ev = e;
  // The sequence is stamped atomically BEFORE taking the ring lock, so it
  // reflects arrival order even when threads then race into slots; dumps
  // sort by it.
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (ev.tid == 0) ev.tid = trace::CurrentTid();
  if (ev.span_id == 0) {
    const trace::Context& ctx = trace::CurrentContext();
    ev.span_id = trace::NextSpanId();
    if (ev.parent_span_id == 0) ev.parent_span_id = ctx.span_id;
    if (ev.trace_id == 0) {
      ev.trace_id = ctx.trace_id != 0 ? ctx.trace_id : ev.span_id;
    }
  } else if (ev.trace_id == 0) {
    ev.trace_id = ev.span_id;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;
  if (size_ == ring_.size()) {
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  } else {
    ring_[(head_ + size_) % ring_.size()] = ev;
    ++size_;
  }
}

std::vector<TraceEvent> EventLog::Events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<std::string> EventLog::ToJsonLines() const {
  const std::vector<TraceEvent> events = Events();
  std::vector<std::string> out;
  out.reserve(events.size());
  char buf[384];
  for (const TraceEvent& e : events) {
    int n = std::snprintf(
        buf, sizeof buf,
        "{\"kind\":\"%s\",\"start_ns\":%" PRIu64 ",\"duration_ns\":%" PRIu64
        ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 ",\"tid\":%" PRIu32
        ",\"seq\":%" PRIu64 ",\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
        ",\"parent_span_id\":%" PRIu64 "%s%s%s}",
        ToString(e.kind), e.start_ns, e.duration_ns, e.a, e.b, e.tid, e.seq,
        e.trace_id, e.span_id, e.parent_span_id,
        e.detail != nullptr ? ",\"detail\":\"" : "",
        e.detail != nullptr ? e.detail : "", e.detail != nullptr ? "\"" : "");
    out.emplace_back(buf, static_cast<size_t>(std::max(n, 0)));
  }
  return out;
}

std::string EventLog::DumpJson() const {
  std::string out = "[";
  bool first = true;
  for (std::string& line : ToJsonLines()) {
    if (!first) out += ',';
    first = false;
    out += line;
  }
  out += ']';
  return out;
}

std::string EventLog::DumpChromeTrace() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  char buf[512];
  bool first = true;
  auto append = [&](int n) {
    if (!first) out += ',';
    first = false;
    out.append(buf, static_cast<size_t>(std::max(n, 0)));
  };

  // One metadata event names each distinct track. Tids are small dense
  // ints, so a sorted set keeps the output deterministic.
  std::vector<uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (uint32_t tid : tids) {
    const char* name = trace::ThreadName(tid);
    char fallback[32];
    if (name == nullptr) {
      std::snprintf(fallback, sizeof fallback, "thread-%" PRIu32, tid);
      name = fallback;
    }
    append(std::snprintf(buf, sizeof buf,
                         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                         "\"tid\":%" PRIu32 ",\"args\":{\"name\":\"%s\"}}",
                         tid, name));
  }

  // Complete ("X") duration events, ts/dur in microseconds.
  for (const TraceEvent& e : events) {
    append(std::snprintf(
        buf, sizeof buf,
        "{\"name\":\"%s\",\"cat\":\"xupd\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu32
        ",\"args\":{\"seq\":%" PRIu64 ",\"trace_id\":%" PRIu64
        ",\"span_id\":%" PRIu64 ",\"parent_span_id\":%" PRIu64
        ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 "%s%s%s}}",
        ToString(e.kind), static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.duration_ns) / 1e3, e.tid, e.seq, e.trace_id,
        e.span_id, e.parent_span_id, e.a, e.b,
        e.detail != nullptr ? ",\"detail\":\"" : "",
        e.detail != nullptr ? e.detail : "", e.detail != nullptr ? "\"" : ""));
  }

  // Flow arrows for every parent→child edge that crosses threads. The
  // arrow is keyed by the child's span id; the start point is clamped into
  // the parent slice so chrome://tracing binds it.
  std::map<uint64_t, const TraceEvent*> by_span;
  for (const TraceEvent& e : events) by_span[e.span_id] = &e;
  for (const TraceEvent& e : events) {
    if (e.parent_span_id == 0) continue;
    auto it = by_span.find(e.parent_span_id);
    if (it == by_span.end()) continue;
    const TraceEvent& parent = *it->second;
    if (parent.tid == e.tid) continue;
    const uint64_t parent_end = parent.start_ns + parent.duration_ns;
    const uint64_t s_ns = std::min(parent_end, e.start_ns);
    append(std::snprintf(buf, sizeof buf,
                         "{\"name\":\"handoff\",\"cat\":\"flow\",\"ph\":\"s\","
                         "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":1,"
                         "\"tid\":%" PRIu32 "}",
                         e.span_id, static_cast<double>(s_ns) / 1e3,
                         parent.tid));
    append(std::snprintf(buf, sizeof buf,
                         "{\"name\":\"handoff\",\"cat\":\"flow\",\"ph\":\"f\","
                         "\"bp\":\"e\",\"id\":%" PRIu64 ",\"ts\":%.3f,"
                         "\"pid\":1,\"tid\":%" PRIu32 "}",
                         e.span_id, static_cast<double>(e.start_ns) / 1e3,
                         e.tid));
  }

  out += "]}";
  return out;
}

std::atomic<uint64_t>* MetricsRegistry::Counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<uint64_t>>(0))
             .first;
  }
  return it->second.get();
}

std::atomic<int64_t>* MetricsRegistry::Gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<int64_t>>(0))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", name.c_str(),
                  value->load(std::memory_order_relaxed));
    out += buf;
  }
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof buf, "%s %" PRId64 "\n", name.c_str(),
                  value->load(std::memory_order_relaxed));
    out += buf;
  }
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot s = hist->Snapshot();
    std::snprintf(buf, sizeof buf,
                  "%s.count %" PRIu64 "\n%s.p50 %.0f\n%s.p95 %.0f\n"
                  "%s.p99 %.0f\n%s.max %" PRIu64 "\n%s.sum %" PRIu64 "\n",
                  name.c_str(), s.count, name.c_str(), s.p50, name.c_str(),
                  s.p95, name.c_str(), s.p99, name.c_str(), s.max,
                  name.c_str(), s.sum);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  char buf[200];
  bool first = true;
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof buf, "%s\"%s\":%" PRIu64, first ? "" : ",",
                  name.c_str(), value->load(std::memory_order_relaxed));
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof buf, "%s\"%s\":%" PRId64, first ? "" : ",",
                  name.c_str(), value->load(std::memory_order_relaxed));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot s = hist->Snapshot();
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
                  ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
                  first ? "" : ",", name.c_str(), s.count, s.sum, s.min, s.max,
                  s.p50, s.p95, s.p99);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace xupd
