// The paper's running example end-to-end: Examples 1-5 of §4 executed over
// the Figure-1 bio-labs document, each on a fresh copy, printing the result.
// Example 5's output should match Figure 3 of the paper.
#include <cstdio>
#include <memory>
#include <string>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/executor.h"

using namespace xupd;

static const char kBioXml[] = R"(<db lab="lalab">
  <university ID="ucla">
    <lab ID="lalab" managers="smith1 jones1">
      <name>UCLA Bio Lab</name><city>Los Angeles</city>
    </lab>
  </university>
  <lab ID="baselab" managers="smith1">
    <name>Seattle Bio Lab</name>
    <location><city>Seattle</city><country>USA</country></location>
  </lab>
  <lab ID="lab2">
    <name>PMBL</name><city>Philadelphia</city><country>USA</country>
  </lab>
  <paper ID="Smith991231" source="lab2" category="spectral" biologist="smith1">
    <title>Autocatalysis of Spectral...</title>
  </paper>
  <biologist ID="smith1"><lastname>Smith</lastname></biologist>
  <biologist ID="jones1" age="32"><lastname>Jones</lastname></biologist>
</db>)";

namespace {

std::unique_ptr<xml::Document> FreshDoc() {
  xml::ParseOptions options;
  options.ref_attributes = {"managers", "source", "biologist", "lab",
                            "worksAt"};
  auto parsed = xml::ParseXml(kBioXml, options);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(parsed.value().document);
}

void RunExample(const char* title, const char* query,
                const char* focus_id = nullptr) {
  auto doc = FreshDoc();
  xquery::NativeExecutor exec(doc.get());
  Status s = exec.ExecuteString(query);
  std::printf("=== %s ===\n", title);
  if (!s.ok()) {
    std::printf("error: %s\n\n", s.ToString().c_str());
    return;
  }
  if (focus_id != nullptr && doc->FindById(focus_id) != nullptr) {
    std::printf("%s\n", xml::Serialize(*doc->FindById(focus_id)).c_str());
  } else {
    std::printf("%s\n", xml::Serialize(*doc).c_str());
  }
}

}  // namespace

int main() {
  RunExample("Example 1: deleting an attribute, IDREF, and subelement", R"(
      FOR $p IN document("bio.xml")/paper,
          $cat IN $p/@category,
          $bio IN $p/ref(biologist,"smith1"),
          $ti IN $p/title
      UPDATE $p { DELETE $cat, DELETE $bio, DELETE $ti })",
             "Smith991231");

  RunExample("Example 2: inserting an attribute, two refs, a subelement", R"(
      FOR $bio IN document("bio.xml")/db/biologist[@ID="smith1"]
      UPDATE $bio {
        INSERT new_attribute(age,"29"),
        INSERT new_ref(worksAt,"ucla"),
        INSERT new_ref(worksAt,"baselab"),
        INSERT <firstname>Jeff</firstname>
      })",
             "smith1");

  RunExample("Example 3: positional inserts (ordered model)", R"(
      FOR $lab IN document("bio.xml")/db/lab[@ID="baselab"],
          $n IN $lab/name,
          $sref IN ref(managers,"smith1")
      UPDATE $lab {
        INSERT "jones1" BEFORE $sref,
        INSERT <street>Oak</street> AFTER $n
      })",
             "baselab");

  RunExample("Example 4: replacing elements, references, attributes", R"(
      FOR $lab IN document("bio.xml")/db/lab,
          $name IN $lab/name,
          $mgr IN $lab/ref(managers, *)
      UPDATE $lab {
        REPLACE $name WITH <appellation>Fancy Lab</>,
        REPLACE $mgr WITH new_attribute(managers,"jones1")
      })",
             "baselab");

  // The printed query in the paper binds $lab IN $u/name — a typo for
  // $u/lab (the university has no name child, and Figure 3 shows the new
  // lab inserted before the existing lab).
  RunExample("Example 5: multi-level nested update (compare to Figure 3)", R"(
      FOR $u IN document("bio.xml")/db/university[@ID="ucla"],
          $lab IN $u/lab
      WHERE $lab.index() = 0
      UPDATE $u {
        INSERT new_attribute(labs,"2"),
        INSERT <lab ID="newlab">
                 <name>UCLA Secondary Lab</name>
               </lab> BEFORE $lab,
        FOR $l1 IN $u/lab,
            $labname IN $l1/name,
            $ci IN $l1/city
        UPDATE $l1 {
          REPLACE $labname WITH <name>UCLA Primary Lab</>,
          DELETE $ci
        }
      })");
  return 0;
}
