// SQL lexer + recursive-descent parser.
#ifndef XUPD_RDB_SQL_PARSER_H_
#define XUPD_RDB_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "rdb/sql_ast.h"

namespace xupd::rdb::sql {

/// Parses a single SQL statement (a trailing ';' is allowed).
Result<Statement> ParseSql(std::string_view text);

}  // namespace xupd::rdb::sql

#endif  // XUPD_RDB_SQL_PARSER_H_
