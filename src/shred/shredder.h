// Shredder: walks an XML document and produces relational tuples according
// to a Mapping. Loading can go through SQL INSERT statements (authentic but
// slower) or the direct bulk API.
#ifndef XUPD_SHRED_SHREDDER_H_
#define XUPD_SHRED_SHREDDER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rdb/database.h"
#include "shred/mapping.h"
#include "xml/document.h"

namespace xupd::shred {

/// One shredded tuple, not yet inserted.
struct ShreddedTuple {
  const TableMapping* table = nullptr;
  int64_t id = 0;
  int64_t parent_id = 0;  ///< 0 = no parent (root).
  rdb::Row row;           ///< full row including id/parentId columns.
};

class Shredder {
 public:
  /// `sql_batch_size` caps the number of rows per multi-row INSERT when
  /// loading through SQL (1 = one single-row INSERT per tuple, the paper's
  /// original per-statement regime).
  Shredder(const Mapping* mapping, rdb::Database* db, int sql_batch_size = 64)
      : mapping_(mapping), db_(db),
        sql_batch_size_(sql_batch_size < 1 ? 1 : sql_batch_size) {}

  int sql_batch_size() const { return sql_batch_size_; }

  /// Creates all tables and id/parentId indexes (always through SQL DDL).
  Status CreateSchema();

  /// Shreds and loads a whole document. Returns the root tuple id.
  /// `via_sql` loads through INSERT statements instead of the bulk API.
  Result<int64_t> LoadDocument(const xml::Document& doc, bool via_sql);

  /// Shreds the subtree rooted at `element` (which must map to a table),
  /// assigning fresh ids from the database id counter, with the subtree root
  /// attached to `parent_id`. Does not insert.
  Result<std::vector<ShreddedTuple>> ShredSubtree(const xml::Element& element,
                                                  int64_t parent_id);

  /// Renders an INSERT statement for a shredded tuple (literal SQL text,
  /// parsed on every execution — the pre-prepared-statement path).
  static std::string InsertSql(const ShreddedTuple& tuple);

  /// Inserts shredded tuples through SQL using cached prepared statements:
  /// tuples are grouped per table and issued as multi-row INSERTs of at most
  /// sql_batch_size rows, with all values bound as parameters. Every batch
  /// of the same (table, batch size) shape reuses one parsed statement.
  Status InsertTuplesSql(const std::vector<ShreddedTuple>& tuples);

 private:
  Status FillFields(const xml::Element& element, const TableMapping* tm,
                    rdb::Row* row) const;
  Status ShredElement(const xml::Element& element, int64_t parent_id,
                      std::vector<ShreddedTuple>* out);

  const Mapping* mapping_;
  rdb::Database* db_;
  int sql_batch_size_ = 64;
};

}  // namespace xupd::shred

#endif  // XUPD_SHRED_SHREDDER_H_
