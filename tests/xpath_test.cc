// Tests for the path-expression parser and evaluator.
#include <gtest/gtest.h>

#include "test_util.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace xupd::xpath {
namespace {

class XPathTest : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = xupd::testing::ParseBioDocument(); }

  std::vector<XmlObject> Eval(const std::string& path,
                              const Environment& env = {}) {
    auto parsed = ParsePathString(path);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Evaluator eval(doc_.get());
    auto result = eval.Eval(parsed.value(), env, XmlObject::Null());
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(result).value() : std::vector<XmlObject>{};
  }

  std::unique_ptr<xml::Document> doc_;
};

TEST_F(XPathTest, ParseRoundTrip) {
  struct Case {
    const char* in;
    const char* normalized;
  };
  const Case cases[] = {
      {"document(\"bio.xml\")/db/lab", "document(\"bio.xml\")/db/lab"},
      {"$p/title", "$p/title"},
      {"$p/@category", "$p/@category"},
      {"$p/ref(biologist,\"smith1\")", "$p/ref(biologist,\"smith1\")"},
      {"$lab/ref(managers, *)", "$lab/ref(managers,*)"},
      {"//Order", "//Order"},
      {"db/lab[@ID=\"baselab\"]/name", "db/lab[@ID=\"baselab\"]/name"},
      {"CustDb.Customer", "CustDb/Customer"},
      {"$lab.index()", "$lab.index()"},
      {"@biologist->lastname", "@biologist->lastname"},
  };
  for (const Case& c : cases) {
    auto parsed = ParsePathString(c.in);
    ASSERT_TRUE(parsed.ok()) << c.in << ": " << parsed.status();
    EXPECT_EQ(ToString(parsed.value()), c.normalized) << c.in;
  }
}

TEST_F(XPathTest, ParseErrors) {
  EXPECT_FALSE(ParsePathString("").ok());
  EXPECT_FALSE(ParsePathString("$x/[foo]").ok());
  EXPECT_FALSE(ParsePathString("a[unclosed").ok());
  EXPECT_FALSE(ParsePathString("ref(a)").ok());
  EXPECT_FALSE(ParsePathString("a b").ok());  // trailing input
}

TEST_F(XPathTest, DocumentChildStep) {
  auto labs = Eval("document(\"bio.xml\")/db/lab");
  ASSERT_EQ(labs.size(), 2u);  // baselab and lab2 (lalab is nested deeper)
  EXPECT_EQ(StringValueOf(XmlObject::OfAttribute(labs[0].element, "ID")),
            "baselab");
}

TEST_F(XPathTest, DocumentHeadMayNameRootOrChild) {
  // The paper writes both document(...)/db/biologist and document(...)/paper.
  EXPECT_EQ(Eval("document(\"bio.xml\")/db").size(), 1u);
  EXPECT_EQ(Eval("document(\"bio.xml\")/paper").size(), 1u);
}

TEST_F(XPathTest, DescendantStep) {
  auto labs = Eval("document(\"bio.xml\")//lab");
  EXPECT_EQ(labs.size(), 3u);
  auto cities = Eval("document(\"bio.xml\")//city");
  EXPECT_EQ(cities.size(), 3u);
}

TEST_F(XPathTest, WildcardStep) {
  auto kids = Eval("document(\"bio.xml\")/db/*");
  EXPECT_EQ(kids.size(), 6u);  // university, 2 labs, paper, 2 biologists
}

TEST_F(XPathTest, AttributeBinding) {
  auto cats = Eval("document(\"bio.xml\")/paper/@category");
  ASSERT_EQ(cats.size(), 1u);
  EXPECT_TRUE(cats[0].is_attribute());
  EXPECT_EQ(StringValueOf(cats[0]), "spectral");
}

TEST_F(XPathTest, AttributeWildcard) {
  auto attrs = Eval("document(\"bio.xml\")/paper/@*");
  // ID and category are plain attributes; source/biologist are IDREFs.
  EXPECT_EQ(attrs.size(), 2u);
}

TEST_F(XPathTest, RefEntryBinding) {
  auto refs = Eval("document(\"bio.xml\")//lab[@ID=\"lalab\"]/"
                   "ref(managers,\"jones1\")");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_TRUE(refs[0].is_ref_entry());
  EXPECT_EQ(refs[0].index, 1u);
  EXPECT_EQ(StringValueOf(refs[0]), "jones1");
}

TEST_F(XPathTest, RefWildcardTarget) {
  auto refs = Eval("document(\"bio.xml\")//lab[@ID=\"lalab\"]/ref(managers,*)");
  EXPECT_EQ(refs.size(), 2u);
}

TEST_F(XPathTest, RefWildcardName) {
  auto refs = Eval("document(\"bio.xml\")/paper/ref(*,*)");
  EXPECT_EQ(refs.size(), 2u);  // source and biologist
}

TEST_F(XPathTest, DerefOperator) {
  auto names = Eval(
      "document(\"bio.xml\")/paper/ref(biologist,*)->biologist/lastname");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(StringValueOf(names[0]), "Smith");
}

TEST_F(XPathTest, DerefAttributeStyle) {
  // db's lab attribute is an IDREF; dereference it.
  auto labs = Eval("document(\"bio.xml\")/db/ref(lab,*)->lab/name");
  ASSERT_EQ(labs.size(), 1u);
  EXPECT_EQ(StringValueOf(labs[0]), "UCLA Bio Lab");
}

TEST_F(XPathTest, PredicateOnValue) {
  auto labs = Eval("document(\"bio.xml\")//lab[name=\"PMBL\"]");
  ASSERT_EQ(labs.size(), 1u);
  EXPECT_EQ(StringValueOf(XmlObject::OfAttribute(labs[0].element, "ID")),
            "lab2");
}

TEST_F(XPathTest, PredicateAndOr) {
  auto both = Eval(
      "document(\"bio.xml\")//lab[city=\"Philadelphia\" and country=\"USA\"]");
  EXPECT_EQ(both.size(), 1u);
  auto either = Eval(
      "document(\"bio.xml\")//lab[name=\"PMBL\" or name=\"Seattle Bio Lab\"]");
  EXPECT_EQ(either.size(), 2u);
}

TEST_F(XPathTest, PredicateNot) {
  // lalab has no country child; baselab's country is nested under location,
  // so only lab2 has a *direct* country child.
  auto labs = Eval("document(\"bio.xml\")//lab[not(country=\"USA\")]");
  EXPECT_EQ(labs.size(), 2u);
  auto deep = Eval("document(\"bio.xml\")//lab[not(location/country=\"USA\")]");
  EXPECT_EQ(deep.size(), 2u);  // lalab and lab2
}

TEST_F(XPathTest, PredicateExistence) {
  auto labs = Eval("document(\"bio.xml\")//lab[location]");
  ASSERT_EQ(labs.size(), 1u);
  EXPECT_EQ(StringValueOf(XmlObject::OfAttribute(labs[0].element, "ID")),
            "baselab");
}

TEST_F(XPathTest, PredicateNestedPath) {
  auto labs = Eval("document(\"bio.xml\")//lab[location/city=\"Seattle\"]");
  EXPECT_EQ(labs.size(), 1u);
}

TEST_F(XPathTest, NumericComparison) {
  auto bios = Eval("document(\"bio.xml\")/db/biologist[@age>30]");
  ASSERT_EQ(bios.size(), 1u);
  auto none = Eval("document(\"bio.xml\")/db/biologist[@age>40]");
  EXPECT_EQ(none.size(), 0u);
  auto le = Eval("document(\"bio.xml\")/db/biologist[@age<=32]");
  EXPECT_EQ(le.size(), 1u);
}

TEST_F(XPathTest, VariableHead) {
  auto papers = Eval("document(\"bio.xml\")/paper");
  ASSERT_EQ(papers.size(), 1u);
  Environment env{{"p", papers[0]}};
  auto parsed = ParsePathString("$p/title");
  ASSERT_TRUE(parsed.ok());
  Evaluator eval(doc_.get());
  auto titles = eval.Eval(parsed.value(), env, XmlObject::Null());
  ASSERT_TRUE(titles.ok());
  ASSERT_EQ(titles->size(), 1u);
  EXPECT_EQ(StringValueOf(titles->front()), "Autocatalysis of Spectral...");
}

TEST_F(XPathTest, UnboundVariableFails) {
  auto parsed = ParsePathString("$nosuch/title");
  ASSERT_TRUE(parsed.ok());
  Evaluator eval(doc_.get());
  auto result = eval.Eval(parsed.value(), {}, XmlObject::Null());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(XPathTest, IndexFunctionPreservesForBindingPosition) {
  auto labs = Eval("document(\"bio.xml\")//lab");
  ASSERT_EQ(labs.size(), 3u);
  EXPECT_EQ(labs[0].binding_index, 0u);
  EXPECT_EQ(labs[2].binding_index, 2u);
  // $lab.index() = 2 is true only for the third binding.
  auto pred = ParsePredicateString("$lab.index() = 2");
  ASSERT_TRUE(pred.ok());
  Evaluator eval(doc_.get());
  Environment env{{"lab", labs[2]}};
  auto r = eval.EvalPredicate(pred.value(), env, XmlObject::Null());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  env["lab"] = labs[0];
  r = eval.EvalPredicate(pred.value(), env, XmlObject::Null());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST_F(XPathTest, TextNodeStep) {
  auto texts = Eval("document(\"bio.xml\")//lab[@ID=\"lab2\"]/name/text()");
  ASSERT_EQ(texts.size(), 1u);
  EXPECT_TRUE(texts[0].is_text());
  EXPECT_EQ(StringValueOf(texts[0]), "PMBL");
}

TEST_F(XPathTest, DottedPathSeparators) {
  // Example 7 style: Customer.Order.OrderLine
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  Evaluator eval(doc.get());
  auto parsed = ParsePathString("document(\"c\")/CustDB.Customer.Order.OrderLine");
  ASSERT_TRUE(parsed.ok());
  auto lines = eval.Eval(parsed.value(), {}, XmlObject::Null());
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines->size(), 4u);
}

TEST_F(XPathTest, EmptyResultIsNotAnError) {
  EXPECT_EQ(Eval("document(\"bio.xml\")/db/nosuch/deeper").size(), 0u);
}

}  // namespace
}  // namespace xupd::xpath
