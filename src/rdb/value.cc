#include "rdb/value.h"

#include "common/str_util.h"

namespace xupd::rdb {

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;  // NULLs sort first (outer-union ORDER BY relies
  if (other.is_null()) return 1;  // on parent rows preceding child rows).
  if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
    return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
  }
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    int c = str_.compare(other.str_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed: try numeric coercion of the string side.
  int64_t coerced;
  if (type_ == ValueType::kString && ParseInt64(str_, &coerced)) {
    return coerced < other.int_ ? -1 : (coerced > other.int_ ? 1 : 0);
  }
  if (other.type_ == ValueType::kString && ParseInt64(other.str_, &coerced)) {
    return int_ < coerced ? -1 : (int_ > coerced ? 1 : 0);
  }
  std::string lhs = ToString();
  std::string rhs = other.ToString();
  int c = lhs.compare(rhs);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      return std::hash<int64_t>{}(int_);
    case ValueType::kString: {
      // Hash strings that look like integers identically to the integer so
      // mixed-type joins work with hash indexes.
      int64_t coerced;
      if (ParseInt64(str_, &coerced)) return std::hash<int64_t>{}(coerced);
      return std::hash<std::string>{}(str_);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kString:
      return str_;
  }
  return "";
}

std::string Value::ToSqlLiteral() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kString:
      return SqlQuote(str_);
  }
  return "NULL";
}

}  // namespace xupd::rdb
