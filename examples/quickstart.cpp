// Quickstart: parse the paper's bio-lab document (Figure 1), run two update
// statements from §4 against the native tree, and print the results — then a
// short tour of the relational engine's observability surfaces (EXPLAIN
// ANALYZE and the metrics snapshot).
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "rdb/database.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/executor.h"

static const char kBioXml[] = R"(<db lab="lalab">
  <university ID="ucla">
    <lab ID="lalab" managers="smith1 jones1">
      <name>UCLA Bio Lab</name><city>Los Angeles</city>
    </lab>
  </university>
  <lab ID="baselab" managers="smith1">
    <name>Seattle Bio Lab</name>
    <location><city>Seattle</city><country>USA</country></location>
  </lab>
  <lab ID="lab2">
    <name>PMBL</name><city>Philadelphia</city><country>USA</country>
  </lab>
  <paper ID="Smith991231" source="lab2" category="spectral" biologist="smith1">
    <title>Autocatalysis of Spectral...</title>
  </paper>
  <biologist ID="smith1"><lastname>Smith</lastname></biologist>
  <biologist ID="jones1" age="32"><lastname>Jones</lastname></biologist>
</db>)";

int main() {
  using namespace xupd;

  // 1. Parse. The bio document uses IDREF attributes without a DTD, so we
  //    declare them explicitly (managers/source/biologist/lab).
  xml::ParseOptions options;
  options.ref_attributes = {"managers", "source", "biologist", "lab",
                            "worksAt"};
  auto parsed = xml::ParseXml(kBioXml, options);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto doc = std::move(parsed.value().document);

  // 2. Example 1 of the paper: delete an attribute, an IDREF, and a
  //    subelement of the paper element.
  xquery::NativeExecutor exec(doc.get());
  Status s = exec.ExecuteString(R"(
      FOR $p IN document("bio.xml")/paper,
          $cat IN $p/@category,
          $bio IN $p/ref(biologist,"smith1"),
          $ti IN $p/title
      UPDATE $p {
        DELETE $cat,
        DELETE $bio,
        DELETE $ti
      })");
  if (!s.ok()) {
    std::fprintf(stderr, "update error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("After Example 1 (paper element stripped):\n%s\n",
              xml::Serialize(*doc->FindById("Smith991231")).c_str());

  // 3. Example 2: insert an attribute, two references and a subelement into
  //    biologist smith1.
  s = exec.ExecuteString(R"(
      FOR $bio IN document("bio.xml")/db/biologist[@ID="smith1"]
      UPDATE $bio {
        INSERT new_attribute(age,"29"),
        INSERT new_ref(worksAt,"ucla"),
        INSERT new_ref(worksAt,"baselab"),
        INSERT <firstname>Jeff</firstname>
      })");
  if (!s.ok()) {
    std::fprintf(stderr, "update error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("After Example 2 (biologist smith1 extended):\n%s\n",
              xml::Serialize(*doc->FindById("smith1")).c_str());

  // 4. Observability tour: the relational engine under the XML store keeps
  //    always-on latency histograms and can annotate any plan with actual
  //    per-operator rows and times.
  rdb::Database db;
  (void)db.Execute("CREATE TABLE paper (id INT, parentId INT)");
  (void)db.Execute("CREATE TABLE title (id INT, parentId INT)");
  (void)db.Execute("CREATE INDEX title_parent ON title (parentId)");
  for (int i = 0; i < 8; ++i) {
    (void)db.Execute("INSERT INTO paper VALUES (" + std::to_string(i) +
                     ", 0)");
    (void)db.Execute("INSERT INTO title VALUES (" + std::to_string(100 + i) +
                     ", " + std::to_string(i) + ")");
  }
  auto analyzed = db.ExecuteQuery(
      "EXPLAIN ANALYZE SELECT title.id FROM paper, title "
      "WHERE title.parentId = paper.id");
  if (!analyzed.ok()) {
    std::fprintf(stderr, "explain analyze error: %s\n",
                 analyzed.status().ToString().c_str());
    return 1;
  }
  std::printf("EXPLAIN ANALYZE of a parent/child join:\n");
  for (const rdb::Row& row : analyzed->rows) {
    std::printf("  %s\n", row[0].ToString().c_str());
  }
  std::printf("\nMetrics snapshot (statement histograms and counters):\n%s",
              db.metrics().ExportText().c_str());
  return 0;
}
