// Ablation: per-SQL-statement overhead. Quantifies why the tuple-based
// insert (one INSERT per tuple) loses to the table-based insert (one
// INSERT...SELECT per relation) as subtrees grow — §6 "issuing multiple
// separate SQL statements incurs overhead" — and how much of that overhead
// the prepared-statement cache and multi-row batching recover:
//
//   parse-per-call    one literal INSERT per row, parsed + planned each call
//   cached-prepared   one INSERT per row, ? params, parsed + planned once
//                     (LRU statement cache; the plan rides on the handle)
//   batched-insert    multi-row prepared INSERTs of `batch` rows
//   insert-select     set-oriented INSERT ... SELECT (one statement)
//   direct-bulk-api   no SQL at all (floor)
//
// Each mode runs at statement latency 0 and at --latency_us (default 20) to
// separate the parse cost from the round-trip cost, and emits one JSON row
// per (mode, latency) combination.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "harness.h"
#include "rdb/database.h"

using namespace xupd;

namespace {

struct ModeResult {
  double seconds = 0;
  rdb::Stats stats;
  /// Per-INSERT-statement latency percentiles (the stmt.insert histogram the
  /// Database records always-on), scoped to the timed body.
  bench::LatencySummary stmt;
};

ModeResult RunMode(int n, double latency_us,
                   const std::function<void(rdb::Database&)>& body,
                   const std::function<void(rdb::Database&)>& setup = {}) {
  rdb::Database db;
  Status s = db.Execute("CREATE TABLE t (id INTEGER, payload VARCHAR)");
  if (!s.ok()) std::abort();
  if (setup) setup(db);  // untimed, latency off: staging is not the workload
  db.set_statement_latency_us(latency_us);
  rdb::Stats before = db.stats();
  db.metrics().GetHistogram("stmt.insert")->Reset();
  Stopwatch sw;
  body(db);
  ModeResult out;
  out.seconds = sw.ElapsedSeconds();
  out.stats = db.stats().Delta(before);
  out.stmt = bench::Summarize(*db.metrics().GetHistogram("stmt.insert"));
  auto count = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  if (!count.ok() || count->rows[0][0].AsInt() != n) {
    std::fprintf(stderr, "row count mismatch\n");
    std::abort();
  }
  return out;
}

void Report(const char* mode, int n, double latency_us, const ModeResult& r) {
  double us_per_row = n > 0 ? 1e6 * r.seconds / n : 0;
  std::printf("%-18s lat=%4.0fus %10.6f sec (%8.2f us/row)\n", mode,
              latency_us, r.seconds, us_per_row);
  std::printf(
      "{\"bench\":\"ablation_stmt_overhead\",\"mode\":\"%s\",\"rows\":%d,"
      "\"latency_us\":%.1f,\"seconds\":%.6f,\"us_per_row\":%.3f,"
      "\"stmt_p50_us\":%.3f,\"stmt_p99_us\":%.3f,\"stmt_count\":%llu,"
      "\"statements\":%llu,\"sql_parses\":%llu,\"prepared_hits\":%llu,"
      "\"prepared_misses\":%llu,\"batched_rows\":%llu,"
      "\"plans_built\":%llu,\"plan_cache_hits\":%llu,%s\n",
      mode, n, latency_us, r.seconds, us_per_row,
      r.stmt.p50_us, r.stmt.p99_us,
      static_cast<unsigned long long>(r.stmt.count),
      static_cast<unsigned long long>(r.stats.statements),
      static_cast<unsigned long long>(r.stats.sql_parses),
      static_cast<unsigned long long>(r.stats.prepared_hits),
      static_cast<unsigned long long>(r.stats.prepared_misses),
      static_cast<unsigned long long>(r.stats.batched_rows),
      static_cast<unsigned long long>(r.stats.plans_built),
      static_cast<unsigned long long>(r.stats.plan_cache_hits),
      bench::JsonTail().c_str());
}

std::string Payload(int i) { return "payload-" + std::to_string(i); }

}  // namespace

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 20000;
  double max_latency = argc > 2 ? std::atof(argv[2]) : 20.0;
  int batch = argc > 3 ? std::atoi(argv[3]) : 64;
  if (batch < 1) batch = 1;
  std::printf("# Ablation: per-statement overhead (%d rows, batch=%d)\n", n,
              batch);

  std::vector<double> latencies = {0.0};
  if (max_latency > 0) latencies.push_back(max_latency);
  for (double latency_us : latencies) {
    ModeResult parse_per_call = RunMode(n, latency_us, [&](rdb::Database& db) {
      for (int i = 0; i < n; ++i) {
        Status s = db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                              ", '" + Payload(i) + "')");
        if (!s.ok()) std::abort();
      }
    });
    Report("parse-per-call", n, latency_us, parse_per_call);

    ModeResult cached_prepared = RunMode(n, latency_us, [&](rdb::Database& db) {
      for (int i = 0; i < n; ++i) {
        Status s = db.ExecuteBound(
            "INSERT INTO t VALUES (?, ?)",
            {rdb::Value::Int(i), rdb::Value::Str(Payload(i))});
        if (!s.ok()) std::abort();
      }
    });
    Report("cached-prepared", n, latency_us, cached_prepared);

    // cached-prepared with every governance surface armed (deadline, memory
    // budgets) at bounds generous enough to never trip: isolates the cost
    // of the per-pull tick and the statement admission gate. CI holds this
    // row to the same 1.5x budget as cached-prepared itself.
    ModeResult governed = RunMode(
        n, latency_us,
        [&](rdb::Database& db) {
          for (int i = 0; i < n; ++i) {
            Status s = db.ExecuteBound(
                "INSERT INTO t VALUES (?, ?)",
                {rdb::Value::Int(i), rdb::Value::Str(Payload(i))});
            if (!s.ok()) std::abort();
          }
        },
        [&](rdb::Database& db) {
          db.set_statement_timeout_us(60'000'000);
          db.memory_accountant().set_soft_budget(uint64_t{1} << 40);
          db.memory_accountant().set_hard_budget(uint64_t{1} << 40);
        });
    Report("governance-on", n, latency_us, governed);

    ModeResult batched = RunMode(n, latency_us, [&](rdb::Database& db) {
      for (int start = 0; start < n; start += batch) {
        int rows = std::min(batch, n - start);
        std::vector<rdb::Value> params;
        params.reserve(static_cast<size_t>(rows) * 2);
        for (int i = start; i < start + rows; ++i) {
          params.push_back(rdb::Value::Int(i));
          params.push_back(rdb::Value::Str(Payload(i)));
        }
        Status s = db.ExecuteBound(
            rdb::MultiRowInsertSql("t", 2, static_cast<size_t>(rows)), params);
        if (!s.ok()) std::abort();
      }
    });
    Report("batched-insert", n, latency_us, batched);

    ModeResult insert_select = RunMode(
        n, latency_us,
        [&](rdb::Database& db) {
          Status s = db.Execute("INSERT INTO t SELECT id, payload FROM src");
          if (!s.ok()) std::abort();
        },
        [&](rdb::Database& db) {  // untimed staging via the direct API
          Status s =
              db.Execute("CREATE TABLE src (id INTEGER, payload VARCHAR)");
          if (!s.ok()) std::abort();
          rdb::Table* src = db.FindTable("src");
          for (int i = 0; i < n; ++i) {
            (void)db.InsertDirect(
                src, {rdb::Value::Int(i), rdb::Value::Str(Payload(i))});
          }
        });
    Report("insert-select", n, latency_us, insert_select);

    ModeResult direct = RunMode(n, latency_us, [&](rdb::Database& db) {
      rdb::Table* t = db.FindTable("t");
      for (int i = 0; i < n; ++i) {
        (void)db.InsertDirect(t,
                              {rdb::Value::Int(i), rdb::Value::Str(Payload(i))});
      }
    });
    Report("direct-bulk-api", n, latency_us, direct);
  }
  return 0;
}
