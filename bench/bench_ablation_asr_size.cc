// Ablation: ASR growth with fanout. §7.2 reason 2 for the ASR's poor
// showing: "with larger fanouts, the ASR relation quickly becomes very
// large, since it contains a tuple for each full path in the XML tree."
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "harness.h"

using namespace xupd;

int main() {
  std::printf("# Ablation: ASR size and build cost vs fanout (sf=100, d=5)\n");
  std::printf("%-7s %12s %12s %14s\n", "fanout", "data_rows", "asr_rows",
              "build_sec");
  for (int fanout : {1, 2, 4, 8}) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = 5;
    spec.fanout = fanout;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    engine::RelationalStore::Options options;
    options.build_asr = true;
    Stopwatch sw;
    auto store_or = engine::RelationalStore::Create(gen->dtd, options);
    if (!store_or.ok()) return 1;
    auto store = std::move(store_or).value();
    if (!store->Load(*gen->doc).ok()) return 1;
    double build = sw.ElapsedSeconds();
    std::printf("%-7d %12zu %12zu %14.6f\n", fanout, gen->tuple_count,
                store->db()->FindTable("asr")->live_count(), build);
  }
  return 0;
}
