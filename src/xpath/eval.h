// Path-expression evaluation over the native XML tree. Produces XmlObject
// bindings; follows the paper's conventions: a variable bound to @attr is a
// reference to the attribute (not just its value), ref(label, id) binds a
// single IDREF entry, and -> dereferences references via the document ID map.
#ifndef XUPD_XPATH_EVAL_H_
#define XUPD_XPATH_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/document.h"
#include "xpath/ast.h"
#include "xpath/object.h"

namespace xupd::xpath {

/// Variable environment: one object per variable (tuple-at-a-time FLWR
/// iteration).
using Environment = std::map<std::string, XmlObject>;

class Evaluator {
 public:
  explicit Evaluator(const xml::Document* doc) : doc_(doc) {}

  /// Evaluates `path` and returns its object sequence. `env` resolves
  /// $variable heads; `context` is the object a relative path starts from
  /// (may be Null, in which case relative paths start at the document root).
  ///
  /// On return every object's binding_index is its position in the result.
  Result<std::vector<XmlObject>> Eval(const PathExpr& path,
                                      const Environment& env,
                                      const XmlObject& context) const;

  /// Evaluates a predicate with `context` as the current object.
  Result<bool> EvalPredicate(const Predicate& pred, const Environment& env,
                             const XmlObject& context) const;

  /// Evaluates a path that is expected to produce a comparable value
  /// sequence and compares existentially against a literal (XPath
  /// semantics: true if ANY object satisfies the comparison).
  Result<bool> EvalCompare(const Predicate& pred, const Environment& env,
                           const XmlObject& context) const;

  const xml::Document* document() const { return doc_; }

 private:
  Result<std::vector<XmlObject>> ApplyStep(const Step& step,
                                           const std::vector<XmlObject>& input,
                                           const Environment& env,
                                           bool from_document_head) const;

  const xml::Document* doc_;
};

}  // namespace xupd::xpath

#endif  // XUPD_XPATH_EVAL_H_
