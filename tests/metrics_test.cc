// Tests for the metrics layer (common/metrics.h): log-linear histogram
// bucket math, percentile interpolation, merge, the trace-event ring, and
// registry export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace xupd {
namespace {

// --- histogram bucket math --------------------------------------------------

TEST(HistogramTest, SmallValuesGetExactBuckets) {
  // Values below 2^kSubBits land in their own unit-width bucket.
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v)) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v) << v;
    EXPECT_EQ(Histogram::BucketWidth(Histogram::BucketIndex(v)), 1u) << v;
  }
}

TEST(HistogramTest, OctaveBoundariesAreBucketStarts) {
  // Each power-of-two boundary starts a fresh bucket whose lower bound is
  // the boundary itself; widths double per octave.
  const int b32 = Histogram::BucketIndex(32);
  EXPECT_EQ(Histogram::BucketLowerBound(b32), 32u);
  EXPECT_EQ(Histogram::BucketWidth(b32), 2u);
  // 32 and 33 share a bucket (width 2); 34 is the next one.
  EXPECT_EQ(Histogram::BucketIndex(33), b32);
  EXPECT_EQ(Histogram::BucketIndex(34), b32 + 1);

  const int b1024 = Histogram::BucketIndex(1024);
  EXPECT_EQ(Histogram::BucketLowerBound(b1024), 1024u);
  EXPECT_EQ(Histogram::BucketWidth(b1024), 64u);
}

TEST(HistogramTest, BucketIndexIsMonotonic) {
  int prev = Histogram::BucketIndex(0);
  for (uint64_t v = 1; v < 100000; v = v * 2 + 1) {
    int b = Histogram::BucketIndex(v);
    EXPECT_GE(b, prev) << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << v;
    EXPECT_GT(Histogram::BucketLowerBound(b) + Histogram::BucketWidth(b), v)
        << v;
    prev = b;
  }
}

TEST(HistogramTest, HugeValuesSaturateInsteadOfOverflowing) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  // The percentile comes back from the top bucket without wrapping.
  EXPECT_GT(h.Percentile(50), 0.0);
}

// --- recording and percentiles ----------------------------------------------

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
}

TEST(HistogramTest, SingleValueClampsAllPercentiles) {
  Histogram h;
  h.Record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 777u);
  EXPECT_EQ(h.max(), 777u);
  // Interpolation inside the bucket is clamped to the observed range, so a
  // single sample reports itself at every percentile.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 777.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 777.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 777.0);
}

TEST(HistogramTest, PercentilesOfUniformSmallRange) {
  // 0..15 once each: every value has its own exact bucket, so percentiles
  // are sharp up to intra-bucket interpolation.
  Histogram h;
  for (uint64_t v = 0; v <= 15; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.sum(), 120u);
  double p50 = h.Percentile(50);
  EXPECT_GE(p50, 7.0);
  EXPECT_LE(p50, 9.0);
  EXPECT_GE(h.Percentile(100), 15.0);
  EXPECT_LE(h.Percentile(1), 1.0);
}

TEST(HistogramTest, PercentileOrderingHolds) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  double p50 = h.Percentile(50);
  double p95 = h.Percentile(95);
  double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-linear buckets bound the relative error: p50 of 1..10000 is near
  // 5000, and a bucket at that magnitude is 512 wide.
  EXPECT_NEAR(p50, 5000.0, 600.0);
  EXPECT_NEAR(p99, 9900.0, 1200.0);
}

TEST(HistogramTest, MergeCombinesCountsAndBounds) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 100000u);
  EXPECT_EQ(a.sum(), 100030u);
  EXPECT_GT(a.Percentile(99), 1000.0);  // the merged tail is visible
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SnapshotMatchesAccessors) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 10);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, h.count());
  EXPECT_EQ(s.sum, h.sum());
  EXPECT_EQ(s.min, h.min());
  EXPECT_EQ(s.max, h.max());
  EXPECT_DOUBLE_EQ(s.p50, h.Percentile(50));
  EXPECT_DOUBLE_EQ(s.p99, h.Percentile(99));
}

// --- trace-event ring -------------------------------------------------------

TEST(EventLogTest, RingOverwritesOldestAndCountsDrops) {
  EventLog log(4);
  for (uint64_t i = 0; i < 6; ++i) {
    log.Record({TraceEvent::Kind::kStatement, /*start_ns=*/i * 100,
                /*duration_ns=*/i, /*a=*/i, /*b=*/0, /*detail=*/nullptr});
  }
  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  // Oldest two (a=0, a=1) were overwritten; order is oldest-first.
  EXPECT_EQ(events[0].a, 2u);
  EXPECT_EQ(events[3].a, 5u);
}

TEST(EventLogTest, JsonLinesCarryKindAndTiming) {
  EventLog log(8);
  log.Record({TraceEvent::Kind::kFsync, 1000, 250, 1, 2, nullptr});
  std::vector<std::string> lines = log.ToJsonLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\":\"fsync\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"duration_ns\":250"), std::string::npos);
}

// --- causal identity --------------------------------------------------------

TEST(EventLogTest, RecordStampsSequenceTidAndSelfRootedTrace) {
  // Outside any SpanScope, Record fills the causal fields itself: a fresh
  // per-log sequence starting at 1, the recording thread's tid, a fresh
  // span id, no parent, and a trace id rooted at the span itself.
  EventLog log(8);
  log.Record({TraceEvent::Kind::kStatement, 10, 1, 0, 0, nullptr});
  log.Record({TraceEvent::Kind::kStatement, 20, 1, 0, 0, nullptr});
  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[0].tid, trace::CurrentTid());
  EXPECT_NE(events[0].span_id, 0u);
  EXPECT_NE(events[1].span_id, events[0].span_id);
  EXPECT_EQ(events[0].parent_span_id, 0u);
  EXPECT_EQ(events[0].trace_id, events[0].span_id);  // self-rooted
  // Explicitly-set identity is preserved verbatim (only seq is stamped).
  TraceEvent explicit_ev{TraceEvent::Kind::kFsync, 30, 1, 0, 0, nullptr};
  explicit_ev.tid = 77;
  explicit_ev.trace_id = 500;
  explicit_ev.span_id = 501;
  explicit_ev.parent_span_id = 500;
  log.Record(explicit_ev);
  events = log.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].tid, 77u);
  EXPECT_EQ(events[2].trace_id, 500u);
  EXPECT_EQ(events[2].span_id, 501u);
  EXPECT_EQ(events[2].parent_span_id, 500u);
}

TEST(TraceContextTest, SpanScopeNestsAndHandoffCrossesThreads) {
  // No active span outside any scope.
  EXPECT_EQ(trace::CurrentContext().span_id, 0u);
  uint64_t outer_trace = 0;
  uint64_t outer_span = 0;
  trace::Handoff token;
  {
    trace::SpanScope outer;
    outer_trace = outer.trace_id();
    outer_span = outer.span_id();
    EXPECT_EQ(outer.parent_span_id(), 0u);
    EXPECT_EQ(outer.trace_id(), outer.span_id());  // roots a new trace
    EXPECT_EQ(trace::CurrentContext().span_id, outer.span_id());
    {
      trace::SpanScope inner;
      EXPECT_EQ(inner.trace_id(), outer_trace);
      EXPECT_EQ(inner.parent_span_id(), outer_span);
      EXPECT_NE(inner.span_id(), outer_span);
      // Events recorded in scope inherit the trace and parent under it.
      EventLog log(4);
      log.Record({TraceEvent::Kind::kWalUnit, 1, 1, 0, 0, nullptr});
      std::vector<TraceEvent> events = log.Events();
      ASSERT_EQ(events.size(), 1u);
      EXPECT_EQ(events[0].trace_id, outer_trace);
      EXPECT_EQ(events[0].parent_span_id, inner.span_id());
    }
    // Inner scope popped; the outer context is current again.
    EXPECT_EQ(trace::CurrentContext().span_id, outer_span);
    token = outer.handoff();
  }
  EXPECT_EQ(trace::CurrentContext().span_id, 0u);  // fully unwound

  // A handoff token adopted on another thread keeps the causal edge: the
  // remote span joins the same trace with the originating span as parent.
  uint64_t remote_trace = 0;
  uint64_t remote_parent = 0;
  std::thread remote([&] {
    trace::SpanScope adopted{token};
    remote_trace = adopted.trace_id();
    remote_parent = adopted.parent_span_id();
  });
  remote.join();
  EXPECT_EQ(remote_trace, outer_trace);
  EXPECT_EQ(remote_parent, outer_span);
}

TEST(EventLogTest, ConcurrentRecordersDumpInSequenceOrder) {
  // Threads racing into the ring may land in slots out of arrival order;
  // Events() must still come back sorted by the atomic sequence, with no
  // duplicates, no drops below capacity, and every event accounted for.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 500;
  EventLog log(4096);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Record({TraceEvent::Kind::kEngineOp, i, 1,
                    /*a=*/static_cast<uint64_t>(t), /*b=*/i, nullptr});
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
  uint64_t per_thread_seen[kThreads] = {};
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) EXPECT_LT(events[i - 1].seq, events[i].seq) << i;
    ASSERT_LT(events[i].a, static_cast<uint64_t>(kThreads));
    ++per_thread_seen[events[i].a];
  }
  EXPECT_EQ(events.front().seq, 1u);
  EXPECT_EQ(events.back().seq, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread_seen[t], kPerThread);
}

// --- Chrome trace export ----------------------------------------------------

// Golden-file-style check: a fresh EventLog with fully-explicit causal
// fields produces byte-predictable Chrome trace-event JSON (per-log seq
// starts at 1 and Record preserves nonzero identity fields).
TEST(EventLogTest, ChromeTraceGoldenShape) {
  EventLog log(8);
  TraceEvent parent{TraceEvent::Kind::kWalUnit, /*start_ns=*/1000,
                    /*duration_ns=*/5000, /*a=*/3, /*b=*/96, nullptr};
  parent.tid = 200;
  parent.trace_id = 1000;
  parent.span_id = 1000;
  log.Record(parent);
  TraceEvent child{TraceEvent::Kind::kFsync, /*start_ns=*/2000,
                   /*duration_ns=*/1000, /*a=*/3, /*b=*/0, nullptr};
  child.tid = 201;
  child.trace_id = 1000;
  child.span_id = 1001;
  child.parent_span_id = 1000;
  log.Record(child);

  const std::string json = log.DumpChromeTrace();
  EXPECT_EQ(json.substr(0, 16), "{\"traceEvents\":[") << json;
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // One metadata record per distinct tid, unnamed tracks get the fallback.
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":200,\"args\":{\"name\":\"thread-200\"}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tid\":201,\"args\":{\"name\":\"thread-201\"}"),
            std::string::npos);
  // Complete slices: ts/dur are microseconds with ns precision.
  EXPECT_NE(json.find("{\"name\":\"wal_unit\",\"cat\":\"xupd\",\"ph\":\"X\","
                      "\"ts\":1.000,\"dur\":5.000,\"pid\":1,\"tid\":200,"
                      "\"args\":{\"seq\":1,\"trace_id\":1000,\"span_id\":1000,"
                      "\"parent_span_id\":0,\"a\":3,\"b\":96}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"fsync\",\"cat\":\"xupd\",\"ph\":\"X\","
                      "\"ts\":2.000,\"dur\":1.000,\"pid\":1,\"tid\":201,"
                      "\"args\":{\"seq\":2,\"trace_id\":1000,\"span_id\":1001,"
                      "\"parent_span_id\":1000,\"a\":3,\"b\":0}}"),
            std::string::npos)
      << json;
  // The cross-thread parent→child edge gets a flow arrow pair keyed by the
  // child span: the start is clamped into the parent slice on the parent's
  // track, the finish binds to the child slice's start on its own track.
  EXPECT_NE(json.find("{\"name\":\"handoff\",\"cat\":\"flow\",\"ph\":\"s\","
                      "\"id\":1001,\"ts\":2.000,\"pid\":1,\"tid\":200}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"handoff\",\"cat\":\"flow\",\"ph\":\"f\","
                      "\"bp\":\"e\",\"id\":1001,\"ts\":2.000,\"pid\":1,"
                      "\"tid\":201}"),
            std::string::npos)
      << json;
}

TEST(EventLogTest, ChromeTraceSkipsSameThreadAndDanglingFlows) {
  EventLog log(8);
  // Parent and child on the SAME thread: nesting is visible from the X
  // slices alone, so no flow arrow is emitted.
  TraceEvent parent{TraceEvent::Kind::kStatement, 100, 900, 0, 0, nullptr};
  parent.tid = 210;
  parent.trace_id = 2000;
  parent.span_id = 2000;
  log.Record(parent);
  TraceEvent child{TraceEvent::Kind::kEngineOp, 200, 300, 0, 0, nullptr};
  child.tid = 210;
  child.trace_id = 2000;
  child.span_id = 2001;
  child.parent_span_id = 2000;
  log.Record(child);
  // A child whose parent was overwritten out of the ring: the arrow would
  // dangle, so it is suppressed too.
  TraceEvent orphan{TraceEvent::Kind::kFsync, 400, 100, 0, 0, nullptr};
  orphan.tid = 211;
  orphan.trace_id = 2000;
  orphan.span_id = 2002;
  orphan.parent_span_id = 999999;
  log.Record(orphan);

  const std::string json = log.DumpChromeTrace();
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"ph\":\"f\""), std::string::npos) << json;
}

TEST(EventLogTest, ChromeTraceNamesRegisteredThreads) {
  EventLog log(8);
  std::thread worker([&log] {
    trace::SetCurrentThreadName("golden-worker");
    log.Record({TraceEvent::Kind::kCheckpoint, 10, 5, 1, 0, nullptr});
  });
  worker.join();
  const std::string json = log.DumpChromeTrace();
  EXPECT_NE(json.find("\"args\":{\"name\":\"golden-worker\"}"),
            std::string::npos)
      << json;
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistogramsRoundTrip) {
  MetricsRegistry reg;
  std::atomic<uint64_t>* c = reg.Counter("test.counter");
  *c += 41;
  *reg.Counter("test.counter") += 1;  // same slot on re-lookup
  EXPECT_EQ(*c, 42u);
  std::atomic<int64_t>* g = reg.Gauge("test.gauge");
  *g = -7;
  Histogram* h = reg.GetHistogram("test.hist");
  h->Record(123);
  EXPECT_EQ(reg.FindHistogram("test.hist"), h);
  EXPECT_EQ(reg.FindHistogram("no.such"), nullptr);
}

TEST(MetricsRegistryTest, ExportsContainRegisteredNames) {
  MetricsRegistry reg;
  *reg.Counter("export.counter") = 5;
  reg.GetHistogram("export.hist")->Record(1000);
  std::string text = reg.ExportText();
  EXPECT_NE(text.find("export.counter"), std::string::npos) << text;
  EXPECT_NE(text.find("export.hist"), std::string::npos) << text;
  std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"export.counter\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"export.hist\""), std::string::npos) << json;
  // The JSON export is at least structurally balanced.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- concurrency ------------------------------------------------------------

TEST(MetricsConcurrencyTest, ParallelRecordingLosesNothing) {
  // Histograms, counters and gauges are recorded from the writer, the
  // group-commit flusher, the checkpointer and reader sessions at once; no
  // increment may be lost and min/max must cover every recorded value.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("conc.hist");
  std::atomic<uint64_t>* c = reg.Counter("conc.counter");
  std::atomic<int64_t>* g = reg.Gauge("conc.gauge");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        h->Record(i + static_cast<uint64_t>(t));
        c->fetch_add(1, std::memory_order_relaxed);
        g->fetch_add(t % 2 == 0 ? 1 : -1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), kPerThread + kThreads - 1);
  EXPECT_EQ(c->load(), kThreads * kPerThread);
  EXPECT_EQ(g->load(), 0);  // two up-counting threads, two down-counting
  // A snapshot taken after the join is internally consistent.
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_GE(s.max, s.min);
}

TEST(MetricsConcurrencyTest, RegistryLookupsRaceWithRecording) {
  // Re-looking up named slots while other threads hammer them must neither
  // invalidate pointers nor drop counts (the registry hands out stable
  // pointers guarded by an internal mutex).
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.Counter("race.counter")->fetch_add(1, std::memory_order_relaxed);
        reg.GetHistogram("race.hist")->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.Counter("race.counter")->load(),
            static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(reg.GetHistogram("race.hist")->count(),
            static_cast<uint64_t>(kThreads * kIters));
}

}  // namespace
}  // namespace xupd
