// SQL values: NULL, INTEGER (int64), VARCHAR (string).
//
// Compact 16-byte tagged representation — every row of every table holds
// one Value per column, and the fig. 6-11 workloads stream millions of them
// through scans, probes, undo records and WAL serialization:
//
//   byte   0..13                    14     15
//   kNull  (unused)                        tag
//   kInt   int64 in bytes 0..7             tag
//   kSso   chars in bytes 0..13     len    tag   (strings <= 14 bytes, inline)
//   kHeap  StrRep* in bytes 0..7           tag   (longer strings, refcounted)
//
// Short strings (element/attribute names, path steps, small text) need no
// allocation at all; longer strings live in an immutable refcounted heap
// block shared by every copy of the Value (copying a Value never copies
// string bytes). A per-Database StringInterner additionally dedupes heap
// strings stored into tables — shredded XML repeats element names and path
// strings massively — so a million rows naming the same path share one
// block. Values are NOT thread-safe to mutate concurrently (nothing in this
// engine is); sharing immutable Values between reads is fine.
#ifndef XUPD_RDB_VALUE_H_
#define XUPD_RDB_VALUE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "rdb/governance.h"

namespace xupd::rdb {

enum class ValueType { kNull, kInt, kString };

/// Refcounted immutable heap block backing strings longer than the SSO
/// limit: header + character data in one allocation. The refcount is
/// atomic: epoch-snapshot reader sessions copy Values (Ref) concurrently
/// with the writer dropping its own references (Unref). Ref is relaxed —
/// a new reference is always cloned from an existing owned one; Unref is
/// acq_rel so the block's contents are fully visible to whichever thread
/// performs the final release and frees it.
struct StrRep {
  std::atomic<uint32_t> refs;
  uint32_t len;
  // Characters follow the header in the same allocation.
  char* data() { return reinterpret_cast<char*>(this + 1); }
  const char* data() const { return reinterpret_cast<const char*>(this + 1); }

  static StrRep* New(std::string_view s);
  static void Ref(StrRep* rep) {
    rep->refs.fetch_add(1, std::memory_order_relaxed);
  }
  static void Unref(StrRep* rep) {
    if (rep->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ::operator delete(rep);
    }
  }
};

class Value {
 public:
  /// Longest string stored inline (bytes 0..13; byte 14 holds the length).
  static constexpr size_t kSsoMax = 14;

  Value() { raw_[kTagByte] = kTagNull; }
  ~Value() {
    if (tag() == kTagHeap) StrRep::Unref(heap_rep());
  }
  Value(const Value& other) {
    std::memcpy(raw_, other.raw_, sizeof(raw_));
    if (tag() == kTagHeap) StrRep::Ref(heap_rep());
  }
  Value(Value&& other) noexcept {
    std::memcpy(raw_, other.raw_, sizeof(raw_));
    other.raw_[kTagByte] = kTagNull;
  }
  Value& operator=(const Value& other) {
    if (this == &other) return *this;
    if (other.tag() == kTagHeap) StrRep::Ref(other.heap_rep());
    if (tag() == kTagHeap) StrRep::Unref(heap_rep());
    std::memcpy(raw_, other.raw_, sizeof(raw_));
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this == &other) return *this;
    if (tag() == kTagHeap) StrRep::Unref(heap_rep());
    std::memcpy(raw_, other.raw_, sizeof(raw_));
    other.raw_[kTagByte] = kTagNull;
    return *this;
  }

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    std::memcpy(out.raw_, &v, sizeof(v));
    out.raw_[kTagByte] = kTagInt;
    return out;
  }
  static Value Str(std::string_view s) {
    Value out;
    if (s.size() <= kSsoMax) {
      std::memcpy(out.raw_, s.data(), s.size());
      out.raw_[kLenByte] = static_cast<char>(s.size());
      out.raw_[kTagByte] = kTagSso;
    } else {
      out.AdoptRep(StrRep::New(s));
    }
    return out;
  }
  /// Wraps an already-referenced heap rep (interner fast path); takes over
  /// one reference.
  static Value FromRep(StrRep* rep) {
    Value out;
    out.AdoptRep(rep);
    return out;
  }

  ValueType type() const {
    switch (tag()) {
      case kTagNull:
        return ValueType::kNull;
      case kTagInt:
        return ValueType::kInt;
      default:
        return ValueType::kString;
    }
  }
  bool is_null() const { return tag() == kTagNull; }
  int64_t AsInt() const {
    int64_t v;
    std::memcpy(&v, raw_, sizeof(v));
    return v;
  }
  std::string_view AsString() const {
    if (tag() == kTagSso) {
      return {raw_, static_cast<size_t>(static_cast<unsigned char>(
                        raw_[kLenByte]))};
    }
    const StrRep* rep = heap_rep();
    return {rep->data(), rep->len};
  }
  /// The heap block backing a long string, or null for SSO/non-string
  /// values (interner bookkeeping).
  StrRep* rep() const {
    return tag() == kTagHeap ? heap_rep() : nullptr;
  }

  /// Three-way comparison for ORDER BY and joins. NULL sorts first; NULL is
  /// only equal to NULL here (SQL expression evaluation handles UNKNOWN
  /// separately). Mixed int/string: the string is coerced to int when it
  /// parses, else values compare by their textual form.
  int Compare(const Value& other) const;

  /// SQL equality (used by indexes and IN-sets): NULL never matches.
  bool SqlEquals(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    return Compare(other) == 0;
  }

  /// Identity (NULL == NULL), for container keys. Mixed int/string pairs
  /// are equal when the string coerces to the same integer (so "42" and 42
  /// land on one hash-index key, matching Hash()).
  bool operator==(const Value& other) const {
    char t = tag(), ot = other.tag();
    if (t == ot) {
      switch (t) {
        case kTagNull:
          return true;
        case kTagInt:
          return AsInt() == other.AsInt();
        case kTagHeap:
          if (heap_rep() == other.heap_rep()) return true;  // interned hit
          [[fallthrough]];
        default:
          return AsString() == other.AsString();
      }
    }
    // kSso vs kHeap are both strings; mixed int/string compares by coercion.
    if (t != kTagNull && ot != kTagNull && t != kTagInt && ot != kTagInt) {
      return AsString() == other.AsString();
    }
    if (is_null() || other.is_null()) return false;
    return Compare(other) == 0;
  }

  size_t Hash() const;

  /// Rendering for result display ("NULL", 42, abc).
  std::string ToString() const;

  /// Rendering as a SQL literal (quoted string / bare int / NULL).
  std::string ToSqlLiteral() const;

  // ---- Concurrent-slab support (epoch-snapshot readers) ----
  // Table slab cells may be overwritten in place by the writer while a
  // pinned reader copies them under a per-row seqlock (see table.h). These
  // helpers split a copy into (1) untorn word loads, (2) seqlock
  // validation by the caller, (3) materialization with a refcount
  // acquire — step 3 must only run on validated words, since bumping the
  // refcount of a torn pointer would be undefined behavior.

  /// Loads the 16 raw bytes of `src` as two relaxed-atomic words. The
  /// result is only meaningful after the caller's seqlock validation.
  static void RacyLoadWords(const Value* src, uint64_t out[2]) {
    // atomic_ref<const T> arrives in C++26; the loads themselves never
    // mutate.
    auto* words = reinterpret_cast<uint64_t*>(const_cast<char*>(src->raw_));
    out[0] =
        std::atomic_ref<uint64_t>(words[0]).load(std::memory_order_relaxed);
    out[1] =
        std::atomic_ref<uint64_t>(words[1]).load(std::memory_order_relaxed);
  }

  /// Materializes an owning Value from seqlock-validated raw words,
  /// acquiring a new heap reference when the words name a heap string.
  /// The source row is guaranteed alive by the caller's epoch pin.
  static Value FromSnapshotWords(const uint64_t w[2]) {
    Value ghost;
    std::memcpy(ghost.raw_, w, sizeof(ghost.raw_));
    Value out = ghost;                  // copy ctor acquires the reference
    ghost.raw_[kTagByte] = kTagNull;    // the ghost never owned one
    return out;
  }

  /// Moves *this into `*dst` with word-atomic stores (so a racing reader's
  /// RacyLoadWords never tears) and releases dst's previous reference.
  /// Writer-thread only; readers are fenced off by the row seqlock.
  void RacyPublishTo(Value* dst) && {
    uint64_t w[2];
    std::memcpy(w, raw_, sizeof(raw_));
    Value old;
    std::memcpy(old.raw_, dst->raw_, sizeof(old.raw_));  // adopt dst's ref
    auto* words = reinterpret_cast<uint64_t*>(dst->raw_);
    std::atomic_ref<uint64_t>(words[0]).store(w[0], std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(words[1]).store(w[1], std::memory_order_relaxed);
    raw_[kTagByte] = kTagNull;  // our reference now lives in *dst
    // `old` releases dst's previous reference on scope exit.
  }

 private:
  static constexpr int kTagByte = 15;
  static constexpr int kLenByte = 14;
  static constexpr char kTagNull = 0;
  static constexpr char kTagInt = 1;
  static constexpr char kTagSso = 2;
  static constexpr char kTagHeap = 3;

  char tag() const { return raw_[kTagByte]; }
  StrRep* heap_rep() const {
    StrRep* rep;
    std::memcpy(&rep, raw_, sizeof(rep));
    return rep;
  }
  void AdoptRep(StrRep* rep) {
    std::memcpy(raw_, &rep, sizeof(rep));
    raw_[kTagByte] = kTagHeap;
  }

  alignas(8) char raw_[16];
};

static_assert(sizeof(Value) <= 16, "Value must stay 16 bytes (one row slot "
                                   "spans arity*16 cache-friendly bytes)");

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Per-Database arena deduplicating heap strings stored into tables: the
/// first store of a given long string allocates its StrRep, every later
/// store of equal bytes shares it. The interner holds one reference per
/// unique string; entries whose only remaining reference is the interner's
/// are swept opportunistically when the map doubles, so a churn of unique
/// long strings (document content) cannot grow it without bound.
///
/// Lifetime rule: interned Values are plain refcounted Values — they stay
/// valid after the interner (or the Database) is gone, and un-interned
/// equal strings compare and hash identically (content equality; pointer
/// equality is only a fast path).
class StringInterner {
 public:
  StringInterner() = default;
  ~StringInterner() {
    for (auto& [key, rep] : map_) {
      ReleaseCharge(rep);
      StrRep::Unref(rep);
    }
  }
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the canonical Value for `s` (allocating it on first sight).
  /// Strings within the SSO limit come back inline — they never need the
  /// arena.
  Value Intern(std::string_view s) {
    if (s.size() <= Value::kSsoMax) return Value::Str(s);
    auto it = map_.find(s);
    if (it != map_.end()) {
      StrRep::Ref(it->second);
      return Value::FromRep(it->second);
    }
    MaybeSweep();
    StrRep* rep = StrRep::New(s);
    StrRep::Ref(rep);  // the interner's own reference
    map_.emplace(std::string_view(rep->data(), rep->len), rep);
    AddCharge(rep);
    return Value::FromRep(rep);
  }

  /// Canonicalizes `v` in place when it is a heap string: an equal interned
  /// block replaces the fresh allocation (SSO/int/null pass through).
  void InternInPlace(Value* v) {
    if (v->rep() == nullptr) return;
    auto it = map_.find(v->AsString());
    if (it != map_.end()) {
      if (it->second != v->rep()) {
        StrRep::Ref(it->second);
        *v = Value::FromRep(it->second);
      }
      return;
    }
    MaybeSweep();
    StrRep* rep = v->rep();
    StrRep::Ref(rep);
    map_.emplace(std::string_view(rep->data(), rep->len), rep);
    AddCharge(rep);
  }

  size_t size() const { return map_.size(); }

  /// Wires the Database's memory accountant: every retained block charges
  /// its header + character bytes to mem.interner until swept or destroyed.
  void set_accountant(MemoryAccountant* mem) { mem_ = mem; }

 private:
  void AddCharge(const StrRep* rep) {
    if (mem_ != nullptr) {
      mem_->Charge(MemoryAccountant::kInterner, sizeof(StrRep) + rep->len);
    }
  }
  void ReleaseCharge(const StrRep* rep) {
    if (mem_ != nullptr) {
      mem_->Release(MemoryAccountant::kInterner, sizeof(StrRep) + rep->len);
    }
  }

  /// Drops entries only the interner still references once the map has
  /// doubled since the last sweep (amortized O(1) per intern).
  void MaybeSweep() {
    if (map_.size() < 1024 || map_.size() < 2 * last_sweep_size_) return;
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second->refs == 1) {
        // Erase BEFORE dropping the last reference: the node's key views
        // into the block, and erase may touch the key.
        StrRep* rep = it->second;
        it = map_.erase(it);
        ReleaseCharge(rep);
        StrRep::Unref(rep);
      } else {
        ++it;
      }
    }
    last_sweep_size_ = map_.size();
  }

  /// Keys view into their StrRep's character data (stable: blocks are
  /// immutable and outlive their map entry).
  std::unordered_map<std::string_view, StrRep*> map_;
  size_t last_sweep_size_ = 0;
  MemoryAccountant* mem_ = nullptr;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_VALUE_H_
