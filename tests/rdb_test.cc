// Tests for the relational engine: SQL parsing/execution, joins, CTE outer
// unions (Fig. 5), triggers (per-row / per-statement), and statistics.
#include <gtest/gtest.h>

#include "rdb/database.h"
#include "rdb/sql_parser.h"

namespace xupd::rdb {
namespace {

class RdbTest : public ::testing::Test {
 protected:
  void Must(const std::string& sql) {
    Status s = db_.Execute(sql);
    ASSERT_TRUE(s.ok()) << sql << "\n  -> " << s;
  }
  ResultSet Query(const std::string& sql) {
    auto r = db_.ExecuteQuery(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }
  int64_t QueryInt(const std::string& sql) {
    ResultSet r = Query(sql);
    EXPECT_EQ(r.rows.size(), 1u) << sql;
    EXPECT_GE(r.rows[0].size(), 1u) << sql;
    return r.rows[0][0].AsInt();
  }

  // The customer schema of §5.1 (4 relations with id/parentId links).
  void CreateCustomerSchema() {
    Must("CREATE TABLE CustDB (id INTEGER)");
    Must("CREATE TABLE Customer (id INTEGER, parentId INTEGER, "
         "Name VARCHAR, Address_City VARCHAR, Address_State VARCHAR)");
    Must("CREATE TABLE Ord (id INTEGER, parentId INTEGER, Status VARCHAR)");
    Must("CREATE TABLE OrderLine (id INTEGER, parentId INTEGER, "
         "ItemName VARCHAR, Qty INTEGER)");
    Must("CREATE INDEX cust_id ON Customer (id)");
    Must("CREATE INDEX cust_pid ON Customer (parentId)");
    Must("CREATE INDEX ord_id ON Ord (id)");
    Must("CREATE INDEX ord_pid ON Ord (parentId)");
    Must("CREATE INDEX ol_id ON OrderLine (id)");
    Must("CREATE INDEX ol_pid ON OrderLine (parentId)");
  }

  void LoadCustomerData() {
    Must("INSERT INTO CustDB VALUES (1)");
    Must("INSERT INTO Customer VALUES (2, 1, 'John', 'Seattle', 'WA')");
    Must("INSERT INTO Customer VALUES (3, 1, 'Mary', 'Fresno', 'CA')");
    Must("INSERT INTO Customer VALUES (4, 1, 'John', 'Portland', 'OR')");
    Must("INSERT INTO Ord VALUES (5, 2, 'ready')");
    Must("INSERT INTO Ord VALUES (6, 2, 'shipped')");
    Must("INSERT INTO Ord VALUES (7, 3, 'ready')");
    Must("INSERT INTO OrderLine VALUES (8, 5, 'tire', 4)");
    Must("INSERT INTO OrderLine VALUES (9, 5, 'wrench', 1)");
    Must("INSERT INTO OrderLine VALUES (10, 6, 'tire', 2)");
    Must("INSERT INTO OrderLine VALUES (11, 7, 'hammer', 1)");
  }

  Database db_;
};

TEST_F(RdbTest, CreateTableAndInsertSelect) {
  Must("CREATE TABLE t (a INTEGER, b VARCHAR)");
  Must("INSERT INTO t VALUES (1, 'x')");
  Must("INSERT INTO t (b, a) VALUES ('y', 2)");
  ResultSet r = Query("SELECT a, b FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsString(), "x");
  EXPECT_EQ(r.rows[1][1].AsString(), "y");
}

TEST_F(RdbTest, DuplicateTableFails) {
  Must("CREATE TABLE t (a INTEGER)");
  EXPECT_EQ(db_.Execute("CREATE TABLE t (a INTEGER)").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RdbTest, ParseErrors) {
  EXPECT_FALSE(db_.Execute("SELEC 1").ok());
  EXPECT_FALSE(db_.Execute("CREATE TABLE ()").ok());
  EXPECT_FALSE(db_.Execute("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("DELETE t").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM t WHERE").ok());
}

TEST_F(RdbTest, TypeCoercionOnInsert) {
  Must("CREATE TABLE t (a INTEGER, b VARCHAR)");
  Must("INSERT INTO t VALUES ('42', 7)");  // both coerced
  ResultSet r = Query("SELECT a, b FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 42);
  EXPECT_EQ(r.rows[0][1].AsString(), "7");
  EXPECT_EQ(db_.Execute("INSERT INTO t VALUES ('abc', 'x')").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RdbTest, NullHandling) {
  Must("CREATE TABLE t (a INTEGER, b VARCHAR)");
  Must("INSERT INTO t VALUES (NULL, 'x')");
  Must("INSERT INTO t VALUES (1, NULL)");
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a IS NULL"), 1);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE b IS NOT NULL"), 1);
  // NULL comparisons are not true.
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a = 1"), 1);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a <> 1"), 0);
}

TEST_F(RdbTest, OrderByNullsFirst) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (2)");
  Must("INSERT INTO t VALUES (NULL)");
  Must("INSERT INTO t VALUES (1)");
  ResultSet r = Query("SELECT a FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(r.rows[1][0].AsInt(), 1);
  EXPECT_EQ(r.rows[2][0].AsInt(), 2);
  ResultSet d = Query("SELECT a FROM t ORDER BY a DESC");
  EXPECT_EQ(d.rows[0][0].AsInt(), 2);
  EXPECT_TRUE(d.rows[2][0].is_null());
}

TEST_F(RdbTest, WhereComparisonsAndLogic) {
  Must("CREATE TABLE t (a INTEGER, b VARCHAR)");
  for (int i = 1; i <= 10; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i) + ", 'v" +
         std::to_string(i % 3) + "')");
  }
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a > 5"), 5);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a >= 5 AND a <= 7"), 3);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a < 3 OR a > 8"), 4);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE NOT a = 1"), 9);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE b = 'v0'"), 3);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a IN (1, 5, 99)"), 2);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM t WHERE a NOT IN (1, 5)"), 8);
}

TEST_F(RdbTest, Arithmetic) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (10)");
  ResultSet r = Query("SELECT a + 5, a - 3, a * 2, a / 4 FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 15);
  EXPECT_EQ(r.rows[0][1].AsInt(), 7);
  EXPECT_EQ(r.rows[0][2].AsInt(), 20);
  EXPECT_EQ(r.rows[0][3].AsInt(), 2);
}

TEST_F(RdbTest, Aggregates) {
  Must("CREATE TABLE t (a INTEGER)");
  for (int i = 1; i <= 5; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i * 10) + ")");
  }
  ResultSet r = Query("SELECT MIN(a), MAX(a), COUNT(*), SUM(a) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt(), 50);
  EXPECT_EQ(r.rows[0][2].AsInt(), 5);
  EXPECT_EQ(r.rows[0][3].AsInt(), 150);
  // Aggregates over empty input: COUNT 0, MIN/MAX NULL.
  Must("DELETE FROM t");
  ResultSet e = Query("SELECT COUNT(*), MIN(a) FROM t");
  EXPECT_EQ(e.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(e.rows[0][1].is_null());
}

TEST_F(RdbTest, JoinTwoTables) {
  CreateCustomerSchema();
  LoadCustomerData();
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Customer c, Ord o "
                     "WHERE o.parentId = c.id AND c.Name = 'John'"),
            2);
}

TEST_F(RdbTest, ThreeWayJoin) {
  CreateCustomerSchema();
  LoadCustomerData();
  // Customers who ordered tires.
  ResultSet r = Query(
      "SELECT c.Name FROM Customer c, Ord o, OrderLine l "
      "WHERE o.parentId = c.id AND l.parentId = o.id AND l.ItemName = 'tire' "
      "ORDER BY Name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "John");
}

TEST_F(RdbTest, JoinUsesIndex) {
  CreateCustomerSchema();
  LoadCustomerData();
  Stats before = db_.stats();
  Query("SELECT o.id FROM Customer c, Ord o "
        "WHERE c.Name = 'Mary' AND o.parentId = c.id");
  Stats delta = db_.stats().Delta(before);
  // Ord must be probed via its parentId index, not scanned.
  EXPECT_GT(delta.index_probes, 0u);
  // Customer scan (4 rows incl. CustDB? no: just Customer's 3 live rows).
  EXPECT_LE(delta.rows_scanned, 4u);
}

TEST_F(RdbTest, InSubquery) {
  CreateCustomerSchema();
  LoadCustomerData();
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Ord WHERE parentId IN "
                     "(SELECT id FROM Customer WHERE Name = 'John')"),
            2);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Ord WHERE parentId NOT IN "
                     "(SELECT id FROM Customer)"),
            0);
}

TEST_F(RdbTest, DeleteWithWhere) {
  CreateCustomerSchema();
  LoadCustomerData();
  Must("DELETE FROM Customer WHERE Name = 'John'");
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Customer"), 1);
  // Orphan delete (cascading-delete building block, §6.1.2).
  Must("DELETE FROM Ord WHERE parentId NOT IN (SELECT id FROM Customer)");
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Ord"), 1);
  Must("DELETE FROM OrderLine WHERE parentId NOT IN (SELECT id FROM Ord)");
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM OrderLine"), 1);
}

TEST_F(RdbTest, UpdateSetsColumns) {
  CreateCustomerSchema();
  LoadCustomerData();
  Must("UPDATE Ord SET Status = 'suspended' WHERE Status = 'ready'");
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Ord WHERE Status = 'suspended'"), 2);
  // SET expressions read the pre-update row.
  Must("CREATE TABLE n (a INTEGER, b INTEGER)");
  Must("INSERT INTO n VALUES (1, 2)");
  Must("UPDATE n SET a = b, b = a");
  ResultSet r = Query("SELECT a, b FROM n");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
}

TEST_F(RdbTest, UpdateWithArithmeticOffset) {
  // The table-based insert remaps ids by adding an offset (§6.2.2).
  Must("CREATE TABLE tmp (id INTEGER, parentId INTEGER)");
  Must("INSERT INTO tmp VALUES (100, 50)");
  Must("INSERT INTO tmp VALUES (101, 100)");
  Must("UPDATE tmp SET id = id + 1000, parentId = parentId + 1000");
  ResultSet r = Query("SELECT id, parentId FROM tmp ORDER BY id");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1100);
  EXPECT_EQ(r.rows[1][1].AsInt(), 1100);
}

TEST_F(RdbTest, InsertFromSelect) {
  CreateCustomerSchema();
  LoadCustomerData();
  Must("INSERT INTO Customer SELECT id + 100, parentId, Name, Address_City, "
       "Address_State FROM Customer WHERE Name = 'Mary'");
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Customer WHERE Name = 'Mary'"), 2);
  EXPECT_EQ(QueryInt("SELECT MAX(id) FROM Customer"), 103);
}

TEST_F(RdbTest, OuterUnionFigure5Shape) {
  CreateCustomerSchema();
  LoadCustomerData();
  // The WITH/UNION ALL/ORDER BY query of Figure 5, for customers named John.
  ResultSet r = Query(R"(
    WITH Q1 (C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
      SELECT id, Name, Address_City, Address_State,
             NULL, NULL, NULL, NULL, NULL
      FROM Customer WHERE Name = 'John'
    ), Q2 (C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
      SELECT Q1.C1, NULL, NULL, NULL, O.id, O.Status, NULL, NULL, NULL
      FROM Q1, Ord O WHERE O.parentId = Q1.C1
    ), Q3 (C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
      SELECT Q2.C1, NULL, NULL, NULL, Q2.C5, NULL, OL.id, OL.ItemName, OL.Qty
      FROM Q2, OrderLine OL WHERE OL.parentId = Q2.C5
    )
    (SELECT * FROM Q1) UNION ALL (SELECT * FROM Q2) UNION ALL (SELECT * FROM Q3)
    ORDER BY C1, C5, C7)");
  // John(2): order 5 (2 lines), order 6 (1 line); John(4): no orders.
  // Rows: 2 customer rows + 2 order rows + 3 orderline rows = 7.
  ASSERT_EQ(r.rows.size(), 7u);
  ASSERT_EQ(r.columns.size(), 9u);
  EXPECT_EQ(r.columns[0], "C1");
  // Sorted stream: customer 2 first (C5 NULL), then its orders/lines,
  // child data after parent data, different parents not intermixed.
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_TRUE(r.rows[0][4].is_null());  // customer row: C5 NULL
  EXPECT_EQ(r.rows[1][4].AsInt(), 5);   // order 5 row precedes its lines
  EXPECT_TRUE(r.rows[1][6].is_null());
  EXPECT_EQ(r.rows[2][6].AsInt(), 8);   // line 8
  EXPECT_EQ(r.rows[3][6].AsInt(), 9);   // line 9
  EXPECT_EQ(r.rows[4][4].AsInt(), 6);   // order 6
  EXPECT_EQ(r.rows[5][6].AsInt(), 10);  // line 10
  EXPECT_EQ(r.rows[6][0].AsInt(), 4);   // customer 4 block last
  EXPECT_TRUE(r.rows[6][4].is_null());
}

TEST_F(RdbTest, PerRowTriggerCascades) {
  CreateCustomerSchema();
  LoadCustomerData();
  Must("CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH ROW BEGIN "
       "DELETE FROM Ord WHERE parentId = OLD.id; END");
  Must("CREATE TRIGGER ord_del AFTER DELETE ON Ord FOR EACH ROW BEGIN "
       "DELETE FROM OrderLine WHERE parentId = OLD.id; END");
  Stats before = db_.stats();
  Must("DELETE FROM Customer WHERE Name = 'John'");
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Customer"), 1);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Ord"), 1);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM OrderLine"), 1);
  // 2 customers + 2 orders fired row triggers; 1 app statement only.
  EXPECT_EQ(delta.statements, 1u);
  EXPECT_EQ(delta.trigger_firings, 4u);
  EXPECT_EQ(delta.rows_deleted, 7u);
}

TEST_F(RdbTest, PerStatementTriggerCascades) {
  CreateCustomerSchema();
  LoadCustomerData();
  Must("CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH STATEMENT "
       "BEGIN DELETE FROM Ord WHERE parentId NOT IN (SELECT id FROM Customer); "
       "END");
  Must("CREATE TRIGGER ord_del AFTER DELETE ON Ord FOR EACH STATEMENT BEGIN "
       "DELETE FROM OrderLine WHERE parentId NOT IN (SELECT id FROM Ord); END");
  Must("DELETE FROM Customer WHERE Name = 'John'");
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Customer"), 1);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM Ord"), 1);
  EXPECT_EQ(QueryInt("SELECT COUNT(*) FROM OrderLine"), 1);
}

TEST_F(RdbTest, PerStatementTriggerScansWholeChildRelation) {
  CreateCustomerSchema();
  LoadCustomerData();
  Must("CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH STATEMENT "
       "BEGIN DELETE FROM Ord WHERE parentId NOT IN (SELECT id FROM Customer); "
       "END");
  Stats before = db_.stats();
  Must("DELETE FROM Customer WHERE Name = 'Mary'");
  Stats delta = db_.stats().Delta(before);
  // The orphan sweep scans the whole Ord relation (cost grows with data
  // size — the effect behind Figure 7's per-statement curve).
  EXPECT_GE(delta.rows_scanned, 3u);
}

TEST_F(RdbTest, TriggerNotFiredWhenNothingDeleted) {
  CreateCustomerSchema();
  LoadCustomerData();
  Must("CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH STATEMENT "
       "BEGIN DELETE FROM Ord WHERE parentId NOT IN (SELECT id FROM Customer); "
       "END");
  Stats before = db_.stats();
  Must("DELETE FROM Customer WHERE Name = 'Nobody'");
  EXPECT_EQ(db_.stats().Delta(before).trigger_firings, 0u);
}

TEST_F(RdbTest, DropTriggerAndTable) {
  CreateCustomerSchema();
  Must("CREATE TRIGGER t1 AFTER DELETE ON Customer FOR EACH ROW BEGIN "
       "DELETE FROM Ord WHERE parentId = OLD.id; END");
  Must("DROP TRIGGER t1");
  EXPECT_EQ(db_.Execute("DROP TRIGGER t1").code(), StatusCode::kNotFound);
  Must("DROP TABLE OrderLine");
  EXPECT_FALSE(db_.Execute("SELECT * FROM OrderLine").ok());
}

TEST_F(RdbTest, StatementCountTracksAppStatements) {
  Must("CREATE TABLE t (a INTEGER)");
  uint64_t before = db_.stats().statements;
  for (int i = 0; i < 7; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  EXPECT_EQ(db_.stats().statements - before, 7u);
}

TEST_F(RdbTest, IndexLookupAfterDeleteSeesLiveRowsOnly) {
  Must("CREATE TABLE t (id INTEGER, v VARCHAR)");
  Must("CREATE INDEX t_id ON t (id)");
  Must("INSERT INTO t VALUES (1, 'a')");
  Must("INSERT INTO t VALUES (1, 'b')");
  Must("DELETE FROM t WHERE v = 'a'");
  ResultSet r = Query("SELECT v FROM t WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "b");
}

TEST_F(RdbTest, MinMaxIdRemapHeuristic) {
  // §6.2.2: offset = nextId - minId; advance nextId by maxId - minId + 1.
  Must("CREATE TABLE src (id INTEGER)");
  Must("INSERT INTO src VALUES (100)");
  Must("INSERT INTO src VALUES (140)");
  ResultSet r = Query("SELECT MIN(id), MAX(id) FROM src");
  int64_t min_id = r.rows[0][0].AsInt(), max_id = r.rows[0][1].AsInt();
  db_.set_next_id(500);
  int64_t offset = db_.next_id() - min_id;
  db_.AllocateIdBlock(max_id - min_id + 1);
  Must("UPDATE src SET id = id + " + std::to_string(offset));
  EXPECT_EQ(QueryInt("SELECT MIN(id) FROM src"), 500);
  EXPECT_EQ(QueryInt("SELECT MAX(id) FROM src"), 540);
  EXPECT_EQ(db_.next_id(), 541);
}

TEST_F(RdbTest, CaseInsensitiveIdentifiers) {
  Must("CREATE TABLE Customer (Id INTEGER, NAME VARCHAR)");
  Must("insert into CUSTOMER values (1, 'x')");
  EXPECT_EQ(QueryInt("select count(*) from customer where name = 'x'"), 1);
}

TEST_F(RdbTest, SelectStarColumnsOrdered) {
  Must("CREATE TABLE t (a INTEGER, b VARCHAR)");
  Must("INSERT INTO t VALUES (1, 'z')");
  ResultSet r = Query("SELECT * FROM t");
  ASSERT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.columns[0], "a");
  EXPECT_EQ(r.columns[1], "b");
}

TEST_F(RdbTest, QuotedStringEscapes) {
  Must("CREATE TABLE t (v VARCHAR)");
  Must("INSERT INTO t VALUES ('John''s data')");
  ResultSet r = Query("SELECT v FROM t");
  EXPECT_EQ(r.rows[0][0].AsString(), "John's data");
}

}  // namespace
}  // namespace xupd::rdb
