// Logical planner: turns parsed SELECT/INSERT/DELETE/UPDATE statements into
// immutable plan trees. Planning resolves every column reference to a
// (relation ordinal, column ordinal) pair, chooses index access paths, and
// pushes WHERE conjuncts down to the earliest join step that can evaluate
// them — all ONCE per plan instead of once per row, which is what lets the
// physical operators (rdb/exec_node.h) run over pre-resolved ordinals.
//
// Plans capture raw Table* / HashIndex* pointers from the catalog snapshot
// they were built against; two guards protect every cached reuse. The
// global Database::catalog_version() is bumped by any SQL DDL (including
// CREATE INDEX / DROP INDEX — plans capture index choices). In addition
// each plan records per-table dependencies (PlanTableDep): the direct
// DropTableDirect bumps only the dropped table's counter, so §6.2.2 staging
// churn re-plans exactly the statements that referenced the staging tables
// while every other cached plan stays hot. A stale plan is rebuilt, never
// dereferenced. Plans are immutable after construction and hold no
// execution state, so one cached plan can be executed reentrantly (e.g. a
// recursive trigger body).
#ifndef XUPD_RDB_PLANNER_H_
#define XUPD_RDB_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdb/sql_ast.h"
#include "rdb/table.h"

namespace xupd::rdb {

class Database;
struct PlannedSelect;

/// A bound expression: sql::Expr with every column reference resolved to
/// ordinals (kColumn -> relation/column, kOldColumn -> trigger-schema column)
/// and IN-subqueries planned. `name` keeps the source identifier for EXPLAIN.
struct BoundExpr {
  sql::Expr::Kind kind = sql::Expr::Kind::kLiteral;
  Value literal;
  int param_index = 0;   ///< kParam: 0-based placeholder ordinal.
  size_t rel = 0;        ///< kColumn: relation ordinal within the plan.
  size_t col = 0;        ///< kColumn / kOldColumn / kAggregate argument.
  std::string name;      ///< source identifier (display only).
  sql::Expr::Op op = sql::Expr::Op::kNone;
  std::vector<BoundExpr> children;
  std::vector<BoundExpr> in_list;
  std::shared_ptr<const PlannedSelect> subquery;  ///< kInSubquery.
  bool negated = false;
  sql::Expr::Agg agg = sql::Expr::Agg::kCount;
  bool count_star = false;
  /// Highest relation ordinal referenced by this subtree (-1 = none).
  /// Subqueries are independent (the dialect has no correlation) and do not
  /// contribute.
  int max_rel = -1;
};

/// One FROM entry, resolved: a catalog table or a materialized CTE slot.
struct PlannedRelation {
  std::string alias;
  std::string name;               ///< table / CTE name (display).
  const Table* table = nullptr;   ///< catalog table (null for a CTE).
  int cte_slot = -1;              ///< >= 0: slot in the execution's CTE store.
  std::vector<std::string> columns;  ///< column names, for * expansion.
};

/// How one relation is accessed: full scan, or a hash-index probe driven by
/// an equality conjunct, an IN value list, or an IN (SELECT ...) set.
struct AccessPath {
  enum class Kind { kScan, kIndexEq, kIndexIn, kIndexInSubquery };
  Kind kind = Kind::kScan;
  const HashIndex* index = nullptr;
  std::string index_name;   ///< display only.
  std::string column_name;  ///< indexed column, display only.
  /// kIndexEq: probe value over strictly-earlier relations (or no columns).
  BoundExpr probe;
  /// kIndexIn: the column-free IN-list values.
  std::vector<BoundExpr> probe_list;
  /// kIndexInSubquery: the planned set-producing subquery (shared with the
  /// bound conjunct, so the execution-time memo covers both uses).
  std::shared_ptr<const PlannedSelect> probe_subquery;
};

/// One planned SELECT core: a left-to-right nested-loop join pipeline with
/// per-step access paths and pushed-down filters, then project or aggregate.
struct PlannedCore {
  std::vector<PlannedRelation> relations;
  std::vector<AccessPath> paths;                ///< one per relation.
  std::vector<std::vector<BoundExpr>> filters;  ///< conjuncts per join step.
  std::vector<BoundExpr> const_filters;         ///< WHERE with no FROM.
  bool has_aggregate = false;
  /// Output expressions ('*' pre-expanded into kColumn refs at plan time;
  /// kAggregate items when has_aggregate).
  std::vector<BoundExpr> outputs;
  std::vector<std::string> out_columns;
};

/// A planned SELECT statement: CTEs (materialized into per-execution slots),
/// UNION ALL cores, and ORDER BY resolved to output ordinals.
struct PlannedSelect {
  struct Cte {
    std::string name;
    int slot = 0;
    std::shared_ptr<const PlannedSelect> query;
    std::vector<std::string> columns;
  };
  std::vector<Cte> ctes;
  std::vector<PlannedCore> cores;
  std::vector<std::pair<int, bool>> order_by;  ///< (output ordinal, desc).
  std::vector<std::string> out_columns;
};

/// A planned DELETE or UPDATE: single-table access path + residual filters.
struct PlannedMutation {
  Table* table = nullptr;
  std::string table_name;
  AccessPath path;
  std::vector<BoundExpr> filters;  ///< conjuncts not consumed by the path.
  struct Set {
    int col = 0;
    ColumnType type = ColumnType::kVarchar;
    BoundExpr expr;
  };
  std::vector<Set> sets;  ///< UPDATE only.
};

/// A planned INSERT: resolved column map + bound VALUES rows or a planned
/// source SELECT.
struct PlannedInsert {
  Table* table = nullptr;
  std::string table_name;
  std::vector<int> column_map;            ///< statement position -> column.
  std::vector<ColumnType> column_types;   ///< per column_map entry.
  std::vector<std::vector<BoundExpr>> rows;
  std::shared_ptr<const PlannedSelect> select;
};

/// One per-table dependency of a cached plan: a handle on the Database's
/// live per-table version counter plus its value at plan time. Validation
/// compares the two — never dereferencing a Table — so a direct drop of one
/// table (which bumps only that table's counter) invalidates exactly the
/// plans that reference it.
struct PlanTableDep {
  std::shared_ptr<const uint64_t> version;
  uint64_t snapshot = 0;
};

struct PlannedStatement {
  sql::Statement::Kind kind = sql::Statement::Kind::kSelect;
  std::shared_ptr<const PlannedSelect> select;
  PlannedMutation mutation;
  PlannedInsert insert;
  /// Total CTE slots across the statement (including nested subqueries);
  /// sizes the per-execution CTE store.
  int cte_slot_count = 0;
  /// Every catalog table this plan touches (deduplicated), including tables
  /// inside CTEs and IN-subqueries.
  std::vector<PlanTableDep> table_deps;
};

/// One cached plan: hangs off a StatementHandle (prepared statements) or the
/// Database's trigger-body map. `version`/`db` guard reuse against catalog
/// changes and cross-database handle misuse.
struct PlanCacheSlot {
  std::shared_ptr<const PlannedStatement> plan;
  uint64_t version = 0;
  const void* db = nullptr;
};

class Planner {
 public:
  /// `old_schema` (optional) resolves OLD.column references — the schema of
  /// the table whose row trigger is being planned.
  Planner(Database* db, const TableSchema* old_schema)
      : db_(db), old_schema_(old_schema) {}

  /// Plans a SELECT/INSERT/DELETE/UPDATE statement. Other kinds are not
  /// plannable and return InvalidArgument.
  Result<std::shared_ptr<const PlannedStatement>> Plan(
      const sql::Statement& stmt);

  /// Reader sessions plan with index probes disabled: hash indexes are
  /// writer-private (not epoch-versioned), so snapshot reads always scan.
  void set_allow_index_probes(bool allow) { allow_index_probes_ = allow; }

 private:
  struct CteScope {
    std::string name;
    int slot = 0;
    std::vector<std::string> columns;
  };

  Result<std::shared_ptr<const PlannedSelect>> PlanSelect(
      const sql::SelectStmt& stmt);
  Result<PlannedCore> PlanCore(const sql::SelectCore& core);
  Result<PlannedMutation> PlanDelete(const sql::DeleteStmt& stmt);
  Result<PlannedMutation> PlanUpdate(const sql::UpdateStmt& stmt);
  Result<PlannedInsert> PlanInsert(const sql::InsertStmt& stmt);

  /// Resolves [alias.]column against `rels` (all of them; ambiguity and
  /// not-found reproduce the interpreter's messages).
  Result<std::pair<size_t, size_t>> ResolveColumn(
      const std::vector<PlannedRelation>& rels, const std::string& table,
      const std::string& column) const;

  /// Binds `e` against `rels`. `values_context` switches the no-columns
  /// error message (INSERT VALUES rows reject column references outright).
  Result<BoundExpr> Bind(const sql::Expr& e,
                         const std::vector<PlannedRelation>& rels,
                         bool values_context = false);

  /// Picks an index access path for relation `k` from the conjuncts placed
  /// at step `k` (first usable conjunct in order wins). Equality probes may
  /// reference strictly-earlier relations; IN-list and IN-subquery probes
  /// are row-free by construction (the dialect has no correlation) and are
  /// considered at EVERY join position — at inner steps the executor
  /// gathers their candidate set once per execution and replays it for each
  /// outer row. Returns the index of the consumed conjunct in `conjuncts`
  /// (-1 = scan).
  int ChooseAccessPath(const std::vector<PlannedRelation>& rels, size_t k,
                       const std::vector<BoundExpr*>& conjuncts,
                       AccessPath* path) const;

  /// Records a dependency on the named catalog table's version counter
  /// (deduplicated); collected into the finished plan's table_deps.
  void NoteTable(const std::string& name);

  Database* db_;
  const TableSchema* old_schema_;
  bool allow_index_probes_ = true;
  /// CTE scopes visible while planning (innermost last).
  std::vector<CteScope> cte_stack_;
  int next_cte_slot_ = 0;
  std::vector<PlanTableDep> table_deps_;
};

/// Actual-execution counters for one plan operator, filled by EXPLAIN
/// ANALYZE (see exec_node.cc's TimedNode).
struct OpStats {
  uint64_t opens = 0;    ///< Open() calls — "loops" for a join inner side.
  uint64_t rows = 0;     ///< tuples emitted.
  uint64_t time_ns = 0;  ///< inclusive wall time spent in Open()/Next().
};

/// Per-operator actuals for one EXPLAIN ANALYZE execution, shaped like the
/// plan: one entry per (core, relation access step) plus a per-core total
/// (pipeline + project/aggregate) and the statement root.
struct AnalyzeStats {
  struct Core {
    OpStats total;              ///< the whole core, inclusive.
    std::vector<OpStats> rels;  ///< one per relation access step.
  };
  std::vector<Core> cores;  ///< top-level SELECT cores (or INSERT..SELECT).
  OpStats mutation;         ///< DELETE/UPDATE row-collection step.
  OpStats root;             ///< the whole statement (rows = result/affected).
};

/// Renders a plan tree, one node per line (the EXPLAIN output).
std::string PlanToString(const PlannedStatement& plan);

/// Renders the plan annotated with per-operator actuals plus a trailing
/// "Execution: ..." summary line (the EXPLAIN ANALYZE output).
std::string PlanToStringAnalyzed(const PlannedStatement& plan,
                                 const AnalyzeStats& stats);

}  // namespace xupd::rdb

#endif  // XUPD_RDB_PLANNER_H_
