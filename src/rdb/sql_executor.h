// SQL execution engine. One Executor instance runs one top-level statement
// (plus any trigger cascade it sets off).
//
// SELECT/INSERT/DELETE/UPDATE run through plan trees: the logical planner
// (rdb/planner.h) resolves names and chooses access paths once, the physical
// operators (rdb/exec_node.h) stream tuples through pull-based iterators.
// Plans are cached per prepared-statement handle and per trigger-body
// statement, guarded by Database::catalog_version(). DDL and transaction
// control execute directly; EXPLAIN plans without executing and returns the
// plan tree as rows.
#ifndef XUPD_RDB_SQL_EXECUTOR_H_
#define XUPD_RDB_SQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdb/database.h"
#include "rdb/exec_node.h"
#include "rdb/planner.h"
#include "rdb/result.h"
#include "rdb/sql_ast.h"

namespace xupd::rdb {

class Executor {
 public:
  /// `params` (optional) are the values bound to the statement's ?
  /// placeholders, positionally; they must outlive the Run call. `sql_text`
  /// (optional) is the statement's original text, used to persist DDL — the
  /// WAL logs DDL as its SQL, and CREATE TRIGGER keeps its text for
  /// snapshots; both must outlive the Run call.
  explicit Executor(Database* db, const std::vector<Value>* params = nullptr,
                    std::string_view sql_text = {})
      : db_(db), params_(params), sql_text_(sql_text) {}

  /// Executes any statement; SELECTs return their ResultSet, DML returns an
  /// empty set. `slot` (optional) caches the plan across calls — pass the
  /// slot of a prepared-statement handle; ad-hoc execution plans fresh.
  Result<ResultSet> Run(const sql::Statement& stmt,
                        PlanCacheSlot* slot = nullptr);

  /// Plan of the last GetPlan call, captured only while the Database's
  /// slow-statement log is enabled (so the log can render the plan without
  /// re-planning). Null otherwise.
  const PlannedStatement* last_plan() const { return last_plan_.get(); }

  /// Absolute MonotonicNanos deadline (0 = none) threaded into every
  /// ExecContext this statement (and its trigger cascade) creates.
  void set_deadline(uint64_t deadline_ns) { deadline_ns_ = deadline_ns; }

 private:
  Result<ResultSet> RunCreateTable(const sql::CreateTableStmt& stmt);
  Result<ResultSet> RunCreateIndex(const sql::CreateIndexStmt& stmt);
  Result<ResultSet> RunCreateTrigger(const sql::CreateTriggerStmt& stmt);
  Result<ResultSet> RunDrop(const sql::DropStmt& stmt);
  Result<ResultSet> RunExplain(const sql::Statement& stmt,
                               PlanCacheSlot* slot, bool analyze);
  Result<ResultSet> RunShow(const sql::Statement& stmt);

  Result<ResultSet> RunPlanned(const PlannedStatement& plan);
  Result<ResultSet> RunPlannedSelect(const PlannedStatement& plan);
  Result<ResultSet> RunPlannedInsert(const PlannedStatement& plan);
  Result<ResultSet> RunPlannedDelete(const PlannedStatement& plan);
  Result<ResultSet> RunPlannedUpdate(const PlannedStatement& plan);

  /// Returns the cached plan when `slot` holds one valid for the current
  /// catalog version, else builds (and caches) a fresh plan.
  Result<std::shared_ptr<const PlannedStatement>> GetPlan(
      const sql::Statement& stmt, PlanCacheSlot* slot);

  /// Execution context for one planned statement: CTE store sized to the
  /// plan, subquery memo shared across the whole top-level statement.
  ExecContext MakeContext(std::vector<std::unique_ptr<ResultSet>>* cte_store);

  /// Fires AFTER DELETE triggers for `table` given the deleted rows.
  Status FireDeleteTriggers(const Table* table,
                            const std::vector<Row>& deleted_rows);

  Database* db_;
  /// Parameter values for ? placeholders (null = none bound).
  const std::vector<Value>* params_ = nullptr;
  /// Original statement text of the top-level statement (empty when unknown;
  /// trigger-body statements never see their own text).
  std::string_view sql_text_;
  /// Memoized IN-subquery sets, keyed by planned-subquery identity; spans
  /// the statement and its trigger cascade (seed-interpreter semantics).
  ExecContext::SubqueryMemo subquery_memo_;
  /// OLD-row context while running trigger bodies.
  const Row* trigger_old_row_ = nullptr;
  const TableSchema* trigger_old_schema_ = nullptr;
  int trigger_depth_ = 0;
  /// EXPLAIN ANALYZE sink + root-select identity while the analyzed
  /// statement runs (cleared for trigger bodies, which are the statement's
  /// side effects, not its plan).
  AnalyzeStats* analyze_ = nullptr;
  const void* analyze_select_ = nullptr;
  /// See set_deadline().
  uint64_t deadline_ns_ = 0;
  /// See last_plan().
  std::shared_ptr<const PlannedStatement> last_plan_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_SQL_EXECUTOR_H_
