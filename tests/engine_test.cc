// Tests for the RelationalStore: §6.1 delete strategies, §6.2 insert
// strategies, ASR maintenance, path queries, and the XQuery translator.
// The central property: every strategy leaves the store reconstructing to
// the same document a native-tree execution produces.
#include <gtest/gtest.h>

#include "engine/store.h"
#include "test_util.h"
#include "xml/serializer.h"
#include "xquery/executor.h"

namespace xupd::engine {
namespace {

std::unique_ptr<RelationalStore> MakeStore(DeleteStrategy del,
                                           InsertStrategy ins) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = del;
  options.insert_strategy = ins;
  auto store = RelationalStore::Create(dtd, options);
  EXPECT_TRUE(store.ok()) << store.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  Status s = store.value()->Load(*doc);
  EXPECT_TRUE(s.ok()) << s;
  return std::move(store).value();
}

int64_t Count(RelationalStore* store, const std::string& table) {
  auto r = store->db()->ExecuteQuery("SELECT COUNT(*) FROM " + table);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r->rows[0][0].AsInt() : -1;
}

// ---------------------------------------------------------------------------
// Delete strategies: all four remove the full subtree.

class DeleteStrategyTest : public ::testing::TestWithParam<DeleteStrategy> {};

TEST_P(DeleteStrategyTest, DeleteJohnsRemovesSubtrees) {
  auto store = MakeStore(GetParam(), InsertStrategy::kTable);
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'John'").ok());
  EXPECT_EQ(Count(store.get(), "Customer"), 1);
  EXPECT_EQ(Count(store.get(), "Order"), 1);     // Mary's order remains
  EXPECT_EQ(Count(store.get(), "OrderLine"), 1);
}

TEST_P(DeleteStrategyTest, BulkDeleteLeavesOnlyRoot) {
  auto store = MakeStore(GetParam(), InsertStrategy::kTable);
  ASSERT_TRUE(store->DeleteWhere("Customer", "").ok());
  EXPECT_EQ(Count(store.get(), "CustDB"), 1);
  EXPECT_EQ(Count(store.get(), "Customer"), 0);
  EXPECT_EQ(Count(store.get(), "Order"), 0);
  EXPECT_EQ(Count(store.get(), "OrderLine"), 0);
}

TEST_P(DeleteStrategyTest, RandomDeleteByIds) {
  auto store = MakeStore(GetParam(), InsertStrategy::kTable);
  auto ids = store->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  ASSERT_TRUE(store->DeleteByIds("Customer", *ids).ok());
  EXPECT_EQ(Count(store.get(), "Customer"), 2);
  EXPECT_EQ(Count(store.get(), "Order"), 2);
  EXPECT_EQ(Count(store.get(), "OrderLine"), 3);
}

TEST_P(DeleteStrategyTest, ReconstructionMatchesNativeExecution) {
  auto store = MakeStore(GetParam(), InsertStrategy::kTable);
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'John'").ok());
  auto rebuilt = store->Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  // Native execution of the same update.
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  xquery::NativeExecutor native(doc.get());
  ASSERT_TRUE(native
                  .ExecuteString(R"(
    FOR $d IN document("custdb.xml"),
        $c IN $d/Customer[Name="John"]
    UPDATE $d { DELETE $c })")
                  .ok());
  EXPECT_TRUE(xml::DeepEqualUnordered(*doc->root(), *rebuilt.value()->root()));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DeleteStrategyTest,
                         ::testing::Values(DeleteStrategy::kPerTupleTrigger,
                                           DeleteStrategy::kPerStatementTrigger,
                                           DeleteStrategy::kCascade,
                                           DeleteStrategy::kAsr),
                         [](const auto& info) {
                           return std::string(ToString(info.param)) == "per-tuple"
                                      ? "PerTuple"
                                  : ToString(info.param) == std::string("per-stm")
                                      ? "PerStatement"
                                  : ToString(info.param) == std::string("cascade")
                                      ? "Cascade"
                                      : "Asr";
                         });

// ---------------------------------------------------------------------------
// Statement-count shapes (§6.1/§7.3).

TEST(DeleteShapeTest, TriggerDeleteIssuesOneStatement) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  uint64_t before = store->stats().statements;
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'John'").ok());
  EXPECT_EQ(store->stats().statements - before, 1u);
}

TEST(DeleteShapeTest, CascadeIssuesOnePerLevel) {
  auto store = MakeStore(DeleteStrategy::kCascade, InsertStrategy::kTable);
  uint64_t before = store->stats().statements;
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'John'").ok());
  // Customer + Order sweep + OrderLine sweep (+ a possible extra stopped
  // level): at least 3, more than the single trigger statement.
  EXPECT_GE(store->stats().statements - before, 3u);
}

TEST(DeleteShapeTest, PerTupleTriggerProbesPerDeletedRow) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  rdb::Stats before = store->stats();
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'John'").ok());
  rdb::Stats delta = store->stats().Delta(before);
  // Row triggers fired for 2 customers + 2 orders.
  EXPECT_EQ(delta.trigger_firings, 4u);
  EXPECT_GT(delta.index_probes, 0u);
}

TEST(DeleteShapeTest, PerStatementTriggerScansChildRelations) {
  auto store = MakeStore(DeleteStrategy::kPerStatementTrigger,
                         InsertStrategy::kTable);
  rdb::Stats before = store->stats();
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'John'").ok());
  rdb::Stats delta = store->stats().Delta(before);
  // Orphan sweeps scan entire child relations.
  EXPECT_GT(delta.rows_scanned, 0u);
  EXPECT_GE(delta.trigger_firings, 2u);
}

TEST(DeleteShapeTest, DeleteByIdsReusesOnePreparedPlan) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  auto ids = store->SelectIds("Customer", "");
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 3u);
  rdb::Stats before = store->stats();
  ASSERT_TRUE(store->DeleteByIds("Customer", *ids).ok());
  rdb::Stats delta = store->stats().Delta(before);
  // One DELETE statement per id (the §7.3 random workload shape), but a
  // single parse: the handle is prepared once and reused directly.
  EXPECT_EQ(delta.statements, 3u);
  EXPECT_EQ(delta.prepared_misses, 1u);
  EXPECT_EQ(delta.prepared_hits, 0u);
  EXPECT_EQ(delta.sql_parses, 1u);
  EXPECT_EQ(Count(store.get(), "Customer"), 0);
  EXPECT_EQ(Count(store.get(), "OrderLine"), 0);
}

// ---------------------------------------------------------------------------
// Insert strategies.

class InsertStrategyTest : public ::testing::TestWithParam<InsertStrategy> {};

TEST_P(InsertStrategyTest, CopySubtreeDuplicatesData) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, GetParam());
  auto ids = store->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  ASSERT_TRUE(store->CopySubtree("Customer", ids->front(), store->root_id()).ok());
  EXPECT_EQ(Count(store.get(), "Customer"), 4);
  EXPECT_EQ(Count(store.get(), "Order"), 4);
  EXPECT_EQ(Count(store.get(), "OrderLine"), 5);
  // The copy got fresh ids and the same content.
  auto marys = store->db()->ExecuteQuery(
      "SELECT id FROM Customer WHERE Name = 'Mary' ORDER BY id");
  ASSERT_TRUE(marys.ok());
  ASSERT_EQ(marys->rows.size(), 2u);
  EXPECT_NE(marys->rows[0][0].AsInt(), marys->rows[1][0].AsInt());
}

TEST_P(InsertStrategyTest, CopyReconstructsEquivalentDocument) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, GetParam());
  auto ids = store->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(store->CopySubtree("Customer", ids->front(), store->root_id()).ok());
  auto rebuilt = store->Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  // Native: copy Mary under the root.
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  xquery::NativeExecutor native(doc.get());
  ASSERT_TRUE(native
                  .ExecuteString(R"(
    FOR $d IN document("custdb.xml"),
        $src IN $d/Customer[Name="Mary"]
    UPDATE $d { INSERT $src })")
                  .ok());
  EXPECT_TRUE(xml::DeepEqualUnordered(*doc->root(), *rebuilt.value()->root()))
      << xml::Serialize(*doc->root()) << "----\n"
      << xml::Serialize(*rebuilt.value()->root());
}

TEST_P(InsertStrategyTest, IdsRemainUniqueAfterManyCopies) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, GetParam());
  for (int i = 0; i < 3; ++i) {
    auto ids = store->SelectIds("Customer", "");
    ASSERT_TRUE(ids.ok());
    ASSERT_TRUE(
        store->CopySubtree("Customer", ids->front(), store->root_id()).ok());
  }
  auto all = store->db()->ExecuteQuery("SELECT COUNT(*) FROM Customer");
  ASSERT_TRUE(all.ok());
  // Uniqueness: grouping by id would need GROUP BY; instead compare COUNT
  // against the number of distinct ids via MIN/MAX sanity plus per-id probe.
  auto ids = store->SelectIds("Customer", "");
  ASSERT_TRUE(ids.ok());
  std::set<int64_t> unique(ids->begin(), ids->end());
  EXPECT_EQ(unique.size(), ids->size());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, InsertStrategyTest,
                         ::testing::Values(InsertStrategy::kTuple,
                                           InsertStrategy::kTable,
                                           InsertStrategy::kAsr),
                         [](const auto& info) {
                           return ToString(info.param) == std::string("tuple")
                                      ? "Tuple"
                                  : ToString(info.param) == std::string("table")
                                      ? "Table"
                                      : "Asr";
                         });

std::unique_ptr<RelationalStore> MakeStoreWithBatch(DeleteStrategy del,
                                                    InsertStrategy ins,
                                                    int batch_size) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = del;
  options.insert_strategy = ins;
  options.insert_batch_size = batch_size;
  auto store = RelationalStore::Create(dtd, options);
  EXPECT_TRUE(store.ok()) << store.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  Status s = store.value()->Load(*doc);
  EXPECT_TRUE(s.ok()) << s;
  return std::move(store).value();
}

TEST(InsertShapeTest, TupleInsertBatchSizeOneIssuesOneStatementPerTuple) {
  // insert_batch_size = 1 restores the paper's §6.2.1 regime exactly: one
  // literal INSERT statement per tuple, parsed every time.
  auto store = MakeStoreWithBatch(DeleteStrategy::kPerTupleTrigger,
                                  InsertStrategy::kTuple, 1);
  auto ids = store->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(ids.ok());
  rdb::Stats before = store->stats();
  ASSERT_TRUE(store->CopySubtree("Customer", ids->front(), store->root_id()).ok());
  rdb::Stats delta = store->stats().Delta(before);
  // Mary's subtree: 1 customer + 1 order + 1 line = 3 INSERTs + 1 query.
  EXPECT_EQ(delta.statements, 4u);
  EXPECT_EQ(delta.sql_parses, 4u);  // every statement parses
  EXPECT_EQ(delta.prepared_hits, 0u);
  EXPECT_EQ(delta.prepared_misses, 0u);
  EXPECT_EQ(store->stats().batched_rows, 0u);
}

TEST(InsertShapeTest, TupleInsertBatchesMultiRowInsertsPerTable) {
  // Default batching: tuples of the same table ride in one multi-row INSERT,
  // so the statement count depends on the number of tables, not tuples.
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTuple);
  auto john = store->SelectIds("Customer", "Address_City = 'Seattle'");
  ASSERT_TRUE(john.ok());
  rdb::Stats before = store->stats();
  // Seattle John's subtree: 1 customer + 2 orders + 3 lines = 6 tuples.
  ASSERT_TRUE(store->CopySubtree("Customer", john->front(), store->root_id()).ok());
  rdb::Stats delta = store->stats().Delta(before);
  // 1 outer-union query + 3 per-table INSERTs (Customer, Order, OrderLine).
  EXPECT_EQ(delta.statements, 4u);
  EXPECT_EQ(delta.rows_inserted, 6u);
  // Order (2 rows) and OrderLine (3 rows) went in as multi-row statements.
  EXPECT_EQ(delta.batched_rows, 5u);
}

TEST(InsertShapeTest, RepeatedTupleCopiesReuseThePreparedPlan) {
  // Default batching: a second copy of the same subtree issues the same
  // batched INSERT shapes, so every insert is a cache hit.
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTuple);
  auto ids = store->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(store->CopySubtree("Customer", ids->front(), store->root_id()).ok());
  rdb::Stats before = store->stats();
  ASSERT_TRUE(store->CopySubtree("Customer", ids->front(), store->root_id()).ok());
  rdb::Stats delta = store->stats().Delta(before);
  EXPECT_EQ(delta.prepared_misses, 0u);
  EXPECT_GE(delta.prepared_hits, 3u);
}

TEST(InsertShapeTest, TableInsertStatementsIndependentOfTupleCount) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  auto john = store->SelectIds("Customer", "Address_City = 'Seattle'");
  auto mary = store->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(john.ok());
  ASSERT_TRUE(mary.ok());
  uint64_t b1 = store->stats().statements;
  ASSERT_TRUE(store->CopySubtree("Customer", john->front(), store->root_id()).ok());
  uint64_t big = store->stats().statements - b1;  // 6-tuple subtree
  uint64_t b2 = store->stats().statements;
  ASSERT_TRUE(store->CopySubtree("Customer", mary->front(), store->root_id()).ok());
  uint64_t small = store->stats().statements - b2;  // 3-tuple subtree
  EXPECT_EQ(big, small);  // statement count depends on #tables only
}

// ---------------------------------------------------------------------------
// ASR behavior.

TEST(AsrTest, AsrRowCountEqualsLeafPathCount) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kAsr;
  auto store = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store.ok());
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  ASSERT_TRUE(store.value()->Load(*doc).ok());
  // Leaf-most instances: 4 order lines + customer 4 (no orders) = 5 paths.
  EXPECT_EQ(Count(store.value().get(), "asr"), 5);
}

TEST(AsrTest, AsrMaintainedAcrossDeleteAndInsert) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kAsr;
  options.insert_strategy = InsertStrategy::kAsr;
  auto store_or = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  ASSERT_TRUE(store->Load(*doc).ok());
  // Copy Mary (adds 1 path), then delete both Marys (removes 2 paths).
  auto ids = store->SelectIds("Customer", "Name = 'Mary'");
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(store->CopySubtree("Customer", ids->front(), store->root_id()).ok());
  EXPECT_EQ(Count(store.get(), "asr"), 6);
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'Mary'").ok());
  EXPECT_EQ(Count(store.get(), "asr"), 4);
  // All remaining rows unmarked.
  auto marked = store->db()->ExecuteQuery(
      "SELECT COUNT(*) FROM asr WHERE marked = 1");
  ASSERT_TRUE(marked.ok());
  EXPECT_EQ(marked->rows[0][0].AsInt(), 0);
}

TEST(AsrTest, BulkDeleteRepairsLeftCompleteness) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kAsr;
  auto store_or = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  ASSERT_TRUE(store->Load(*doc).ok());
  ASSERT_TRUE(store->DeleteWhere("Customer", "").ok());
  // Only the root remains; the ASR must hold its left-complete row.
  EXPECT_EQ(Count(store.get(), "asr"), 1);
  auto row = store->db()->ExecuteQuery("SELECT id_CustDB FROM asr");
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->rows.size(), 1u);
  EXPECT_EQ(row->rows[0][0].AsInt(), store->root_id());
}

// ---------------------------------------------------------------------------
// Path queries (§5.3 / §7.2).

TEST(PathQueryTest, JoinsAndAsrAgree) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.build_asr = true;
  auto store_or = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  ASSERT_TRUE(store->Load(*doc).ok());
  auto via_joins =
      store->PathQueryJoins("Customer", "OrderLine", "l0.ItemName = 'tire'");
  auto via_asr =
      store->PathQueryAsr("Customer", "OrderLine", "l.ItemName = 'tire'");
  ASSERT_TRUE(via_joins.ok()) << via_joins.status();
  ASSERT_TRUE(via_asr.ok()) << via_asr.status();
  EXPECT_EQ(*via_joins, *via_asr);
  EXPECT_EQ(via_joins->size(), 1u);  // only Seattle John ordered tires
}

// ---------------------------------------------------------------------------
// XQuery translation (§6, Examples 8/9).

TEST(TranslatorTest, Example9DeleteJohns) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  Status s = store->ExecuteXQueryUpdate(R"(
    FOR $d IN document("custdb.xml"),
        $c IN $d/Customer[Name="John"]
    UPDATE $d { DELETE $c })");
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(Count(store.get(), "Customer"), 1);
  EXPECT_EQ(Count(store.get(), "Order"), 1);
}

TEST(TranslatorTest, Example8SuspendTireOrders) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  Status s = store->ExecuteXQueryUpdate(R"(
    FOR $o IN document("custdb.xml")//Order[Status="ready" and
                                            OrderLine/ItemName="tire"]
    UPDATE $o {
      INSERT <Status>suspended</Status>,
      FOR $i IN $o/OrderLine[ItemName="tire"]
      UPDATE $i {
        INSERT <comment>recalled</comment>
      }
    })");
  ASSERT_TRUE(s.ok()) << s;
  // John's ready tire order is suspended; Mary's ready hammer order is not.
  auto suspended = store->db()->ExecuteQuery(
      "SELECT COUNT(*) FROM Order WHERE Status = 'suspended'");
  ASSERT_TRUE(suspended.ok());
  EXPECT_EQ(suspended->rows[0][0].AsInt(), 1);
  // Only the tire line of that order was commented.
  auto commented = store->db()->ExecuteQuery(
      "SELECT ItemName FROM OrderLine WHERE comment = 'recalled'");
  ASSERT_TRUE(commented.ok());
  ASSERT_EQ(commented->rows.size(), 1u);
  EXPECT_EQ(commented->rows[0][0].AsString(), "tire");
}

TEST(TranslatorTest, Example8BindingsComputedBeforeUpdates) {
  // The §6 hazard: the outer INSERT flips Status to 'suspended'; if the
  // nested binding ran *after* it, the nested predicate would still match
  // (it does not depend on Status) — instead check the reverse hazard: a
  // nested predicate on Status must bind before the outer update changes it.
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  Status s = store->ExecuteXQueryUpdate(R"(
    FOR $o IN document("custdb.xml")//Order[Status="ready"]
    UPDATE $o {
      INSERT <Status>suspended</Status>,
      FOR $i IN $o/OrderLine[ItemName="tire"]
      UPDATE $i { INSERT <comment>recalled</comment> }
    })");
  ASSERT_TRUE(s.ok()) << s;
  auto commented = store->db()->ExecuteQuery(
      "SELECT COUNT(*) FROM OrderLine WHERE comment = 'recalled'");
  ASSERT_TRUE(commented.ok());
  EXPECT_EQ(commented->rows[0][0].AsInt(), 1);
}

TEST(TranslatorTest, Example10CopyCaliforniansAcrossStores) {
  // Copying into a different document with the same DTD is equivalent to a
  // same-document copy (§7.4 fn. 2): copy CA customers under the root.
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  Status s = store->ExecuteXQueryUpdate(R"(
    FOR $d IN document("custDB.xml"),
        $source IN $d/Customer[Address/State="CA"]
    UPDATE $d { INSERT $source })");
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(Count(store.get(), "Customer"), 4);
  auto cas = store->db()->ExecuteQuery(
      "SELECT COUNT(*) FROM Customer WHERE Address_State = 'CA'");
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(cas->rows[0][0].AsInt(), 2);
}

TEST(TranslatorTest, InlinedDeleteSetsColumnsNull) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  Status s = store->ExecuteXQueryUpdate(R"(
    FOR $c IN document("custdb.xml")/Customer[Name="Mary"],
        $a IN $c/Address
    UPDATE $c { DELETE $a })");
  ASSERT_TRUE(s.ok()) << s;
  auto r = store->db()->ExecuteQuery(
      "SELECT Address_City, Address_present FROM Customer WHERE Name = 'Mary'");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows[0][0].is_null());
  EXPECT_TRUE(r->rows[0][1].is_null());
}

TEST(TranslatorTest, UnsupportedFormsReportCleanly) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  // Positional insert is meaningless without document order (§5.1).
  Status s = store->ExecuteXQueryUpdate(R"(
    FOR $c IN document("x")/Customer[Name="Mary"],
        $n IN $c/Name
    UPDATE $c { INSERT <Name>Zed</Name> BEFORE $n })");
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace xupd::engine
