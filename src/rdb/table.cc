#include "rdb/table.h"

#include <cstring>
#include <new>

#include "rdb/txn.h"

namespace xupd::rdb {

// ---------------------------------------------------------------------------
// HashIndex: flat open-addressing (value, rowid) pair table + chain heads.

namespace {
constexpr uint8_t kEmpty = 0;
constexpr uint8_t kOccupied = 1;
constexpr uint8_t kTombstone = 2;
constexpr int32_t kHeadEmpty = -1;
constexpr int32_t kHeadTombstone = -2;
constexpr size_t kInitialCap = 16;
}  // namespace

int32_t HashIndex::FindPair(uint64_t vhash, const Value& v,
                            size_t rowid) const {
  if (slots_.empty()) return -1;
  const size_t mask = slots_.size() - 1;
  size_t pos = PairHash(vhash, rowid) & mask;
  for (;;) {
    const Slot& s = slots_[pos];
    if (s.state == kEmpty) return -1;
    if (s.state == kOccupied && s.rowid == rowid && s.vhash == vhash &&
        s.value == v) {
      return static_cast<int32_t>(pos);
    }
    pos = (pos + 1) & mask;
  }
}

int32_t HashIndex::FindHead(uint64_t vhash, const Value& v) const {
  if (heads_.empty()) return -1;
  const size_t mask = heads_.size() - 1;
  size_t pos = HeadHash(vhash) & mask;
  for (;;) {
    int32_t head = heads_[pos];
    if (head == kHeadEmpty) return -1;
    if (head != kHeadTombstone) {
      const Slot& s = slots_[static_cast<size_t>(head)];
      if (s.vhash == vhash && s.value == v) return static_cast<int32_t>(pos);
    }
    pos = (pos + 1) & mask;
  }
}

void HashIndex::Rehash(size_t new_cap) {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(new_cap);
  heads_.assign(new_cap, kHeadEmpty);
  slots_used_ = 0;
  heads_used_ = 0;
  size_ = 0;
  for (Slot& s : old) {
    if (s.state == kOccupied) InsertEntry(s.vhash, s.value, s.rowid);
  }
}

void HashIndex::Insert(const Value& v, size_t rowid) {
  // Grow at 3/4 load of the entry table (tombstones count — they lengthen
  // probe runs just like live entries).
  if (slots_.empty()) {
    Rehash(kInitialCap);
  } else if ((slots_used_ + 1) * 4 > slots_.size() * 3 ||
             (heads_used_ + 1) * 4 > heads_.size() * 3) {
    Rehash(slots_.size() * 2);
  }
  InsertEntry(v.Hash(), v, rowid);
}

void HashIndex::InsertEntry(uint64_t vhash, const Value& v, size_t rowid) {
  const size_t mask = slots_.size() - 1;

  // One probe pass finds an existing exact pair (duplicate insert = no-op,
  // matching the old map-of-sets semantics) or the insertion slot.
  size_t pos = PairHash(vhash, rowid) & mask;
  int32_t insert_at = -1;
  for (;;) {
    const Slot& s = slots_[pos];
    if (s.state == kEmpty) {
      if (insert_at < 0) insert_at = static_cast<int32_t>(pos);
      break;
    }
    if (s.state == kTombstone) {
      if (insert_at < 0) insert_at = static_cast<int32_t>(pos);
    } else if (s.rowid == rowid && s.vhash == vhash && s.value == v) {
      return;  // exact pair already present
    }
    pos = (pos + 1) & mask;
  }

  Slot& dst = slots_[static_cast<size_t>(insert_at)];
  const bool was_empty = dst.state == kEmpty;
  dst.vhash = vhash;
  dst.rowid = rowid;
  dst.value = v;
  dst.prev = -1;
  dst.next = -1;
  dst.state = kOccupied;
  if (was_empty) ++slots_used_;
  ++size_;

  // Link at the head of the key's chain.
  const size_t hmask = heads_.size() - 1;
  size_t hpos = HeadHash(vhash) & hmask;
  int32_t hinsert = -1;
  for (;;) {
    int32_t head = heads_[hpos];
    if (head == kHeadEmpty) {
      if (hinsert < 0) {
        hinsert = static_cast<int32_t>(hpos);
        ++heads_used_;
      }
      heads_[static_cast<size_t>(hinsert)] = insert_at;
      return;
    }
    if (head == kHeadTombstone) {
      if (hinsert < 0) hinsert = static_cast<int32_t>(hpos);
    } else {
      Slot& h = slots_[static_cast<size_t>(head)];
      if (h.vhash == vhash && h.value == v) {
        dst.next = head;
        h.prev = insert_at;
        heads_[hpos] = insert_at;
        return;
      }
    }
    hpos = (hpos + 1) & hmask;
  }
}

void HashIndex::Erase(const Value& v, size_t rowid) {
  const uint64_t vhash = v.Hash();
  int32_t at = FindPair(vhash, v, rowid);
  if (at < 0) return;
  Slot& s = slots_[static_cast<size_t>(at)];
  if (s.prev >= 0) {
    slots_[static_cast<size_t>(s.prev)].next = s.next;
    if (s.next >= 0) slots_[static_cast<size_t>(s.next)].prev = s.prev;
  } else {
    // Chain head: repoint (or tombstone) its heads_ entry.
    int32_t hpos = FindHead(vhash, v);
    if (hpos >= 0) {
      if (s.next >= 0) {
        heads_[static_cast<size_t>(hpos)] = s.next;
        slots_[static_cast<size_t>(s.next)].prev = -1;
      } else {
        heads_[static_cast<size_t>(hpos)] = kHeadTombstone;
      }
    }
  }
  s.state = kTombstone;
  s.value = Value();  // release a heap string's reference
  s.prev = -1;
  s.next = -1;
  --size_;
}

void HashIndex::Lookup(const Value& v, std::vector<size_t>* out) const {
  ++probes_;
  int32_t hpos = FindHead(v.Hash(), v);
  if (hpos < 0) return;
  ++hits_;
  for (int32_t at = heads_[static_cast<size_t>(hpos)]; at >= 0;
       at = slots_[static_cast<size_t>(at)].next) {
    out->push_back(slots_[static_cast<size_t>(at)].rowid);
  }
}

void HashIndex::Clear() {
  for (Slot& s : slots_) s = Slot();
  heads_.assign(heads_.size(), kHeadEmpty);
  size_ = 0;
  slots_used_ = 0;
  heads_used_ = 0;
}

// ---------------------------------------------------------------------------
// Table

Table::~Table() {
  Value* cells = cells_.load(std::memory_order_relaxed);
  if (cells != nullptr) {
    const size_t n = filled_.load(std::memory_order_relaxed) * stride_;
    for (size_t i = 0; i < n; ++i) cells[i].~Value();
    ::operator delete(cells);
    if (mem_ != nullptr) {
      mem_->Release(MemoryAccountant::kTableSlabs,
                    cap_rows_ * stride_ * sizeof(Value));
    }
  }
  if (mem_ != nullptr && version_bytes_.load() != 0) {
    mem_->Release(MemoryAccountant::kVersionBuffers, version_bytes_.load());
  }
}

Value* Table::ReserveRowSlot() {
  Value* cells = cells_.load(std::memory_order_relaxed);
  const size_t rows = filled_.load(std::memory_order_relaxed);
  if (rows == cap_rows_) {
    const size_t new_cap = cap_rows_ == 0 ? 8 : cap_rows_ * 2;
    const size_t old_bytes = cap_rows_ * stride_ * sizeof(Value);
    auto* grown =
        static_cast<Value*>(::operator new(new_cap * stride_ * sizeof(Value)));
    if (mem_ != nullptr) {
      mem_->Charge(MemoryAccountant::kTableSlabs,
                   new_cap * stride_ * sizeof(Value));
    }
    if (cells != nullptr) {
      // Raw byte copy, NOT Value moves: the new buffer takes over every
      // heap reference; the old buffer keeps ghost images that pinned
      // readers may still be streaming, and is retired without running
      // destructors.
      std::memcpy(static_cast<void*>(grown), static_cast<const void*>(cells),
                  rows * stride_ * sizeof(Value));
    }
    cells_.store(grown, std::memory_order_release);
    cap_rows_ = new_cap;
    if (cells != nullptr) {
      RetireBuffer(cells, rows, /*destroy_values=*/false, old_bytes);
    }
    cells = grown;
  }
  return cells + rows * stride_;
}

void Table::RetireBuffer(Value* buf, size_t rows, bool destroy_values,
                         size_t charged_bytes) {
  const size_t cell_count = rows * stride_;
  MemoryAccountant* mem = mem_;
  auto free_fn = [buf, cell_count, destroy_values, mem, charged_bytes] {
    if (destroy_values) {
      for (size_t i = 0; i < cell_count; ++i) buf[i].~Value();
    }
    ::operator delete(buf);
    if (mem != nullptr) {
      mem->Release(MemoryAccountant::kTableSlabs, charged_bytes);
    }
  };
  if (em_ != nullptr) {
    em_->Retire(em_->current(), std::move(free_fn));
  } else {
    free_fn();
  }
}

void Table::AppendRow(Row&& row, uint32_t begin, uint32_t end, uint64_t mod) {
  Value* slot = ReserveRowSlot();
  for (size_t c = 0; c < arity_; ++c) {
    new (slot + c) Value(std::move(row[c]));
  }
  Value* meta_cell = new (slot + arity_) Value();
  RowMetaRef m(meta_cell);
  m.StoreBeginEnd(begin, end);
  m.StoreMod(mod);
  // Publish: the release pairs with readers' SnapshotRowCount acquire.
  filled_.store(filled_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
}

Result<size_t> Table::Insert(Row row) {
  if (row.size() != arity_) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        schema_.name() + "' (" + std::to_string(arity_) + ")");
  }
  size_t rowid = live_.size();
  if (interner_ != nullptr) {
    for (Value& v : row) interner_->InternInPlace(&v);
  }
  for (const auto& index : indexes_) {
    index->Insert(row[static_cast<size_t>(index->column())], rowid);
  }
  const uint64_t w = WriteEpoch();
  AppendRow(std::move(row), RowEpochClamp(w), kRowEpochInf, w);
  live_.push_back(true);
  ++live_count_;
  ++access_stats_.rows_inserted;
  if (txn_ != nullptr) txn_->LogInsert(this, rowid);
  return rowid;
}

void Table::LoadSlot(Row row, bool live) {
  if (interner_ != nullptr) {
    for (Value& v : row) interner_->InternInPlace(&v);
  }
  // Snapshot/recovery rows predate every possible pin: born at epoch 1.
  // Dead slots get an empty [1, 1) interval — never visible, but their
  // positions (and values) are preserved for WAL redo addressing.
  AppendRow(std::move(row), 1, live ? kRowEpochInf : 1, 1);
  live_.push_back(live);
  if (live) ++live_count_;
}

Status Table::Delete(size_t rowid) {
  if (rowid >= live_.size() || !live_[rowid]) {
    return Status::NotFound("row already deleted or out of range");
  }
  const Value* r = row(rowid);
  for (const auto& index : indexes_) {
    index->Erase(r[static_cast<size_t>(index->column())], rowid);
  }
  // Tombstone for readers: end = write epoch. Pins below it still see the
  // row (its values stay in the slot); pins at or above it do not.
  meta(rowid).StoreEnd(RowEpochClamp(WriteEpoch()));
  live_[rowid] = false;
  --live_count_;
  ++access_stats_.rows_deleted;
  if (txn_ != nullptr) txn_->LogDelete(this, rowid);
  return Status::OK();
}

void Table::PrepareRowUpdate(size_t rowid) {
  if (em_ == nullptr) return;
  const uint64_t w = em_->write_epoch();
  RowMetaRef m = meta(rowid);
  if (m.mod() == w) return;  // window already open for this row
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    OldVersion ov;
    ov.end_valid = w;
    ov.values = CopyRow(rowid);
    versions_.emplace(rowid, std::move(ov));
    ++em_->version_entries;
    ++version_rows_;
    version_bytes_ += arity_ * sizeof(Value);
    if (mem_ != nullptr) {
      mem_->Charge(MemoryAccountant::kVersionBuffers, arity_ * sizeof(Value));
    }
  }
  // Seqlock open: stamp the mod word, then fence, then (in the caller)
  // word-atomic cell stores. A reader that observes any new cell bytes is
  // therefore guaranteed to observe mod >= w on revalidation and divert
  // to the parked pre-image.
  m.StoreMod(w);
  std::atomic_thread_fence(std::memory_order_release);
}

Status Table::SetColumn(size_t rowid, int column, Value v) {
  if (rowid >= live_.size() || !live_[rowid]) {
    return Status::NotFound("row deleted or out of range");
  }
  if (interner_ != nullptr) interner_->InternInPlace(&v);
  PrepareRowUpdate(rowid);
  Value& cell = mutable_row(rowid)[static_cast<size_t>(column)];
  if (txn_ != nullptr) {
    txn_->LogUpdate(this, rowid, column, cell, v);
  }
  for (const auto& index : indexes_) {
    if (index->column() == column) {
      index->Erase(cell, rowid);
      index->Insert(v, rowid);
    }
  }
  std::move(v).RacyPublishTo(&cell);
  ++access_stats_.rows_updated;
  return Status::OK();
}

void Table::Clear() {
  Value* cells = cells_.load(std::memory_order_relaxed);
  const size_t rows = filled_.load(std::memory_order_relaxed);
  // Readers re-load the row count and cell pointer per access, so after
  // these stores they observe an empty table (Clear is not snapshot-
  // isolated — it only serves writer-private scratch tables); the retired
  // buffer keeps any in-flight row copies valid until their pins drop.
  const size_t charged = cap_rows_ * stride_ * sizeof(Value);
  filled_.store(0, std::memory_order_release);
  cells_.store(nullptr, std::memory_order_release);
  cap_rows_ = 0;
  live_.clear();
  live_count_ = 0;
  if (cells != nullptr) {
    RetireBuffer(cells, rows, /*destroy_values=*/true, charged);
  }
  for (const auto& index : indexes_) index->Clear();
}

void Table::UndoInsert(size_t rowid) {
  if (rowid >= live_.size() || !live_[rowid]) return;
  const Value* r = row(rowid);
  for (const auto& index : indexes_) {
    index->Erase(r[static_cast<size_t>(index->column())], rowid);
  }
  live_[rowid] = false;
  --live_count_;
  if (rowid + 1 == live_.size()) {
    // Pop the slot. Readers with a stale row count reject it by its begin
    // epoch (> their pin) without touching the cells, so destroying the
    // writer's references here is safe.
    Value* cells = cells_.load(std::memory_order_relaxed);
    filled_.store(rowid, std::memory_order_release);
    for (size_t c = 0; c < stride_; ++c) {
      cells[rowid * stride_ + c].~Value();
    }
    live_.pop_back();
  } else {
    // Mid-undo of an interleaved multi-table scope: kill the row for every
    // epoch (empty interval) but keep the slot.
    const uint32_t w = RowEpochClamp(WriteEpoch());
    meta(rowid).StoreBeginEnd(w, w);
  }
}

void Table::UndoDelete(size_t rowid) {
  if (rowid >= live_.size() || live_[rowid]) return;
  meta(rowid).StoreEnd(kRowEpochInf);
  live_[rowid] = true;
  ++live_count_;
  const Value* r = row(rowid);
  for (const auto& index : indexes_) {
    index->Insert(r[static_cast<size_t>(index->column())], rowid);
  }
}

void Table::UndoSetColumn(size_t rowid, int column, const Value& v) {
  if (rowid >= live_.size()) return;
  // The row's seqlock window is already open (the forward SetColumn opened
  // it), so readers of older epochs are diverted; still store word-
  // atomically so a reader's optimistic copy attempt never tears.
  Value& cell = mutable_row(rowid)[static_cast<size_t>(column)];
  for (const auto& index : indexes_) {
    if (index->column() == column) {
      index->Erase(cell, rowid);
      index->Insert(v, rowid);
    }
  }
  Value(v).RacyPublishTo(&cell);
}

bool Table::SnapshotReadRow(size_t rowid, uint64_t pin, Row* out) const {
  out->clear();
  for (int attempt = 0;; ++attempt) {
    // Visibility first: the begin/end pair is one untorn word, and during
    // slot reuse (pop + re-insert) every transient value of `begin`
    // exceeds any pinned epoch, so an invisible row is rejected without
    // ever touching its cells. Acquire on the buffer pointer: a grow
    // publishes the memcpy'd rows via the release store of `cells_`, and
    // this load may observe a buffer newer than the one `filled_`'s
    // acquire synchronized with.
    const Value* cells = cells_.load(std::memory_order_acquire);
    const Value* slot = cells + rowid * stride_;
    RowMetaRef m(slot + arity_);
    if (!RowMetaRef::Visible(m.begin_end(), pin)) return false;
    const uint64_t m1 = m.mod_acquire();
    if (m1 <= pin) {
      // Optimistic seqlock copy: raw word loads, fence, revalidate, and
      // only then materialize owning Values (a torn heap pointer must
      // never reach a refcount).
      uint64_t stack_words[2 * 16];
      std::vector<uint64_t> heap_words;
      uint64_t* w = stack_words;
      if (arity_ > 16) {
        heap_words.resize(2 * arity_);
        w = heap_words.data();
      }
      for (size_t c = 0; c < arity_; ++c) {
        Value::RacyLoadWords(slot + c, w + 2 * c);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (m.mod() == m1) {
        for (size_t c = 0; c < arity_; ++c) {
          out->push_back(Value::FromSnapshotWords(w + 2 * c));
        }
        return true;
      }
      continue;  // writer opened the row's window mid-copy; retry
    }
    // The row was modified inside a window newer than our pin: fetch the
    // matching parked pre-image — the entry with the smallest end_valid
    // still above the pin holds the row as of our epoch.
    {
      std::lock_guard<std::mutex> lock(versions_mu_);
      auto [it, end] = versions_.equal_range(rowid);
      const OldVersion* best = nullptr;
      for (; it != end; ++it) {
        if (it->second.end_valid > pin &&
            (best == nullptr || it->second.end_valid < best->end_valid)) {
          best = &it->second;
        }
      }
      if (best != nullptr) {
        out->insert(out->end(), best->values.begin(), best->values.end());
        return true;
      }
    }
    // No entry can only mean the writer is between stamping `mod` and
    // parking the pre-image becoming observable — retry resolves it. The
    // attempt bound is sheer paranoia (treat the row as dead rather than
    // spin forever on a logic bug).
    if (attempt > 1000) return false;
  }
}

size_t Table::GcVersions(uint64_t min_pinned) {
  std::lock_guard<std::mutex> lock(versions_mu_);
  size_t trimmed = 0;
  for (auto it = versions_.begin(); it != versions_.end();) {
    if (it->second.end_valid <= min_pinned) {
      it = versions_.erase(it);
      if (em_ != nullptr) --em_->version_entries;
      ++trimmed;
    } else {
      ++it;
    }
  }
  if (trimmed != 0) {
    version_rows_ -= trimmed;
    version_bytes_ -= trimmed * arity_ * sizeof(Value);
    if (mem_ != nullptr) {
      mem_->Release(MemoryAccountant::kVersionBuffers,
                    trimmed * arity_ * sizeof(Value));
    }
  }
  return trimmed;
}

Status Table::CreateIndex(const std::string& index_name, int column) {
  if (FindIndexByName(index_name) != nullptr) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  if (column < 0 || static_cast<size_t>(column) >= arity_) {
    return Status::InvalidArgument("bad index column");
  }
  auto index = std::make_unique<HashIndex>(index_name, column);
  for (size_t rowid = 0; rowid < live_.size(); ++rowid) {
    if (live_[rowid]) {
      index->Insert(row(rowid)[static_cast<size_t>(column)], rowid);
    }
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::TryDropIndex(std::string_view index_name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (EqualsIgnoreCase((*it)->name(), index_name)) {
      indexes_.erase(it);
      return true;
    }
  }
  return false;
}

Status Table::DropIndex(const std::string& index_name) {
  if (TryDropIndex(index_name)) return Status::OK();
  return Status::NotFound("index '" + index_name + "' not found");
}

const HashIndex* Table::FindIndexOnColumn(int column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

const HashIndex* Table::FindIndexByName(const std::string& name) const {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name(), name)) return index.get();
  }
  return nullptr;
}

}  // namespace xupd::rdb
