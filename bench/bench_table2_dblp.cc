// Table 2: experiments on the DBLP-like document. Deletes all publications
// of year 2000 under each delete method, and copies 10 random conference
// subtrees under each insert method. The real DBLP snapshot (40MB, >400k
// tuples) is simulated by a generator with the same bushy, shallow shape;
// argv[2] scales the number of conferences.
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

namespace {

void RunRegime(const workload::GeneratedDoc& gen, int runs,
               double statement_latency_us) {
  std::printf("## statement_latency = %.0f us%s\n", statement_latency_us,
              statement_latency_us > 0
                  ? " (simulated JDBC/DB2 per-statement cost; see DESIGN.md)"
                  : " (raw in-process engine)");
  std::printf("%-10s %-12s %12s\n", "operation", "method", "time_sec");

  const DeleteStrategy del_methods[] = {
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kCascade, DeleteStrategy::kAsr};
  for (DeleteStrategy method : del_methods) {
    double t = MeasureOnFreshStores(
        gen, method, InsertStrategy::kTable,
        [statement_latency_us](engine::RelationalStore* store) {
          store->db()->set_statement_latency_us(statement_latency_us);
          Status s = store->DeleteWhere("publication", "year = '2000'");
          if (!s.ok()) {
            std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
            std::abort();
          }
        },
        {runs});
    std::printf("%-10s %-12s %12.6f\n", "delete", ToString(method), t);
  }

  std::vector<int64_t> picked;
  {
    auto scratch = bench::FreshStore(gen, DeleteStrategy::kCascade,
                                     InsertStrategy::kTable);
    auto ids = scratch->SelectIds("conference", "");
    if (!ids.ok()) std::abort();
    picked = bench::PickRandomIds(*ids, 10, 7);
  }
  const InsertStrategy ins_methods[] = {
      InsertStrategy::kAsr, InsertStrategy::kTable, InsertStrategy::kTuple};
  for (InsertStrategy method : ins_methods) {
    double t = MeasureOnFreshStores(
        gen, DeleteStrategy::kCascade, method,
        [&picked, statement_latency_us](engine::RelationalStore* store) {
          store->db()->set_statement_latency_us(statement_latency_us);
          for (int64_t id : picked) {
            Status s = store->CopySubtree("conference", id, store->root_id());
            if (!s.ok()) std::abort();
          }
        },
        {runs});
    std::printf("%-10s %-12s %12.6f\n", "insert", ToString(method), t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int conferences = argc > 2 ? std::atoi(argv[2]) : 400;
  workload::DblpSpec spec;
  spec.conferences = conferences;
  auto gen = workload::GenerateDblp(spec, 42);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }
  std::printf("# Table 2: DBLP-like data (%zu tuples)\n", gen->tuple_count);
  RunRegime(*gen, runs, 0);
  RunRegime(*gen, runs, 500);
  return 0;
}
