// Workload generators reproducing §7.1 of the paper:
//  * fixed synthetic documents (scaling factor, depth, fanout; every element
//    carries a 50-character string and an integer as data subelements);
//  * randomized synthetic documents (depth ~ U[2, max], fanout ~ U[1, max]);
//  * a DBLP-like document (conferences -> publications -> authors/cites;
//    "bushy" and shallow) standing in for the real 40MB DBLP snapshot.
//
// Element naming: the root is <doc>; level-k subtree nodes are <nk>; their
// data children are <sk> (string) and <vk> (integer). Per-level data names
// keep the data inlined under Shared Inlining (a shared <str> child would
// become its own table and distort the tuple counts of Table 1).
#ifndef XUPD_WORKLOAD_SYNTHETIC_H_
#define XUPD_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "xml/document.h"
#include "xml/dtd.h"

namespace xupd::workload {

struct SyntheticSpec {
  int scaling_factor = 100;  ///< number of subtrees at the root level.
  int depth = 2;             ///< levels per subtree (max depth if randomized).
  int fanout = 1;            ///< children per internal node (max if randomized).
};

struct GeneratedDoc {
  std::string dtd_text;
  xml::Dtd dtd;
  std::unique_ptr<xml::Document> doc;
  /// Number of table-mapped elements (root + all <nk>); equals the row count
  /// the relational store will hold (Table 1's "data size").
  size_t tuple_count = 0;
};

/// §7.1.1. Deterministic for a given spec + seed (content strings only).
Result<GeneratedDoc> GenerateFixedSynthetic(const SyntheticSpec& spec,
                                            uint64_t seed);

/// §7.1.2. Depth of each subtree ~ U[2, spec.depth] (minimum 2, as in the
/// paper); fanout of each internal node ~ U[1, spec.fanout].
Result<GeneratedDoc> GenerateRandomizedSynthetic(const SyntheticSpec& spec,
                                                 uint64_t seed);

struct DblpSpec {
  int conferences = 50;
  int min_pubs = 10, max_pubs = 30;       ///< publications per conference.
  int min_authors = 1, max_authors = 4;   ///< authors per publication.
  int min_cites = 0, max_cites = 5;       ///< citations per publication.
  int min_year = 1990, max_year = 2002;
};

/// §7.1.3 substitute for the real DBLP data (see DESIGN.md).
Result<GeneratedDoc> GenerateDblp(const DblpSpec& spec, uint64_t seed);

/// Closed-form tuple count for a fixed synthetic doc:
/// 1 + sf * sum_{i=0..depth-1} fanout^i.
size_t FixedSyntheticTupleCount(const SyntheticSpec& spec);

}  // namespace xupd::workload

#endif  // XUPD_WORKLOAD_SYNTHETIC_H_
