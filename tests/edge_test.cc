// Tests for the Edge mapping (§5.1 alternative): DTD-less loading, ordered
// round trips, and the fragmentation contrast with Shared Inlining.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "rdb/database.h"
#include "shred/edge.h"
#include "shred/mapping.h"
#include "shred/shredder.h"
#include "test_util.h"
#include "workload/synthetic.h"
#include "xml/serializer.h"

namespace xupd::shred {
namespace {

TEST(EdgeTest, RoundTripPreservesDocumentOrder) {
  // The Edge mapping keeps ordinals, so the ORDERED comparison must hold —
  // stronger than the inlined mapping's unordered guarantee.
  auto doc = xupd::testing::ParseBioDocument();
  rdb::Database db;
  EdgeStore store(&db);
  ASSERT_TRUE(store.CreateSchema().ok());
  ASSERT_TRUE(store.Load(*doc).ok());
  auto rebuilt = store.Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(xml::DeepEqual(*doc->root(), *rebuilt.value()->root()))
      << xml::Serialize(*rebuilt.value());
}

TEST(EdgeTest, WorksWithoutAnyDtd) {
  // Irregular document no DTD could describe tightly.
  auto doc = xupd::testing::MustParse(
      "<mix>text<a x=\"1\"/>more<b><c/>tail</b></mix>");
  rdb::Database db;
  EdgeStore store(&db);
  ASSERT_TRUE(store.CreateSchema().ok());
  ASSERT_TRUE(store.Load(*doc).ok());
  auto rebuilt = store.Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(xml::DeepEqual(*doc->root(), *rebuilt.value()->root()));
}

TEST(EdgeTest, EdgeCountMatchesObjectCount) {
  auto doc = xupd::testing::MustParse("<r><a x=\"1\">t</a><b/></r>");
  rdb::Database db;
  EdgeStore store(&db);
  ASSERT_TRUE(store.CreateSchema().ok());
  ASSERT_TRUE(store.Load(*doc).ok());
  // Edges: r, a, x(attr), t(text), b = 5.
  EXPECT_EQ(store.EdgeCount(), 5u);
}

TEST(EdgeTest, RefListsKeepEntryOrder) {
  auto doc = xupd::testing::ParseBioDocument();
  rdb::Database db;
  EdgeStore store(&db);
  ASSERT_TRUE(store.CreateSchema().ok());
  ASSERT_TRUE(store.Load(*doc).ok());
  auto rebuilt = store.Reconstruct();
  ASSERT_TRUE(rebuilt.ok());
  const xml::RefList* managers =
      rebuilt.value()->FindById("lalab")->FindRefList("managers");
  ASSERT_NE(managers, nullptr);
  EXPECT_EQ(managers->targets, (std::vector<std::string>{"smith1", "jones1"}));
}

TEST(EdgeTest, FindElementsByText) {
  auto doc = xupd::testing::ParseBioDocument();
  rdb::Database db;
  EdgeStore store(&db);
  ASSERT_TRUE(store.CreateSchema().ok());
  ASSERT_TRUE(store.Load(*doc).ok());
  auto ids = store.FindElementsByText("name", "PMBL");
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(ids->size(), 1u);
  auto none = store.FindElementsByText("name", "No Such Lab");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(EdgeTest, FragmentationVsInlining) {
  // The paper's criticism quantified: the same document produces far more
  // edge tuples than inlined tuples, and a content lookup needs a self-join
  // instead of a single-table predicate.
  auto gen = workload::GenerateFixedSynthetic({20, 3, 2}, 17);
  ASSERT_TRUE(gen.ok());

  rdb::Database edge_db;
  EdgeStore edges(&edge_db);
  ASSERT_TRUE(edges.CreateSchema().ok());
  ASSERT_TRUE(edges.Load(*gen->doc).ok());

  rdb::Database inline_db;
  auto mapping = Mapping::SharedInlining(gen->dtd);
  ASSERT_TRUE(mapping.ok());
  Shredder shredder(&mapping.value(), &inline_db);
  ASSERT_TRUE(shredder.CreateSchema().ok());
  ASSERT_TRUE(shredder.LoadDocument(*gen->doc, false).ok());

  size_t inlined_tuples = 0;
  for (const auto& name : inline_db.TableNames()) {
    inlined_tuples += inline_db.FindTable(name)->live_count();
  }
  // Every element + attribute + text is an edge: >3x the inlined tuples
  // for this shape (each nk has s/v children with text).
  EXPECT_GT(edges.EdgeCount(), 3 * inlined_tuples);
}

TEST(EdgeTest, LargeDocumentRoundTrip) {
  auto gen = workload::GenerateRandomizedSynthetic({25, 4, 3}, 23);
  ASSERT_TRUE(gen.ok());
  rdb::Database db;
  EdgeStore store(&db);
  ASSERT_TRUE(store.CreateSchema().ok());
  ASSERT_TRUE(store.Load(*gen->doc).ok());
  auto rebuilt = store.Reconstruct();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(xml::DeepEqual(*gen->doc->root(), *rebuilt.value()->root()));
}

}  // namespace
}  // namespace xupd::shred
