// TransactionManager: an in-memory logical undo log over Table mutations.
//
// Every Table insert/delete/update logs one undo record while a transaction
// is active (the Table holds a pointer back to the manager, so every write
// path — SQL DML, trigger bodies, the direct bulk API — logs into the
// enclosing transaction automatically). Scopes nest: a Begin() while a
// transaction is active opens a savepoint; Rollback() undoes only the
// records of the innermost scope, Commit() merges them into the parent.
// Scopes may carry a name (the SQL SAVEPOINT surface): RollbackTo() undoes
// every record back to the named scope and keeps it open, Release() merges
// it (and any scopes nested inside it) into its parent.
// Undo is applied strictly LIFO, which keeps the records logical and small:
//   insert  -> re-kill the inserted rowid (and pop it when it is still the
//              newest slot, restoring table capacity too)
//   delete  -> revive the tombstoned rowid (the row data is still in place)
//              and re-add its hash-index entries
//   update  -> write the old value back (index-maintaining)
// DDL is NOT undoable; the Database rejects SQL DDL inside a transaction
// (see database.h for the policy) and the direct catalog APIs purge a
// dropped table's records so the log never dangles.
//
// When a WAL is attached (rdb/wal.h), the same hooks also serialize one
// logical REDO record per mutation of a durable table into the WAL's
// pending buffer — rollback truncates that buffer in lockstep with the
// undo log (each scope carries both positions), so only committed work is
// ever written to the file.
//
// The record log is region-allocated: fixed 4096-record chunks (~96 KiB)
// that are allocated once, never copied on growth (unlike vector
// reallocation, appending the N+1th chunk leaves existing records in
// place), and retained across transactions, so steady-state logging of any
// size never touches the allocator.
#ifndef XUPD_RDB_TXN_H_
#define XUPD_RDB_TXN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rdb/stats.h"
#include "rdb/value.h"
#include "rdb/wal.h"

namespace xupd::rdb {

class Table;

/// One logical undo record. Kept trivially copyable and small (the hot
/// delete/insert paths append one per row): kUpdate's old value lives in a
/// parallel side vector whose entries correspond to the kUpdate records in
/// log order — LIFO undo always consumes the vector from the back, so no
/// index needs to be stored.
struct UndoRecord {
  enum class Kind : uint8_t { kInsert, kDelete, kUpdate };
  Kind kind = Kind::kInsert;
  int column = 0;  ///< kUpdate only.
  Table* table = nullptr;
  size_t rowid = 0;
};

/// Chunked region log of UndoRecords. Appends never relocate existing
/// records; chunks are retained on clear() for reuse.
class UndoLog {
 public:
  /// 4096 records/chunk * 24 bytes = one ~96 KiB region per chunk.
  static constexpr size_t kChunkBits = 12;
  static constexpr size_t kChunkRecords = size_t{1} << kChunkBits;

  ~UndoLog() {
    if (mem_ != nullptr) {
      mem_->Release(MemoryAccountant::kUndoLog,
                    chunks_.size() * kChunkRecords * sizeof(UndoRecord));
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Wires the Database's memory accountant: chunk regions charge to
  /// mem.undo_log when allocated (chunks are retained across transactions,
  /// so the charge tracks the log's high-water footprint).
  void set_accountant(MemoryAccountant* mem) { mem_ = mem; }

  void Append(const UndoRecord& rec) {
    if (size_ == chunks_.size() * kChunkRecords) {
      chunks_.push_back(std::make_unique<UndoRecord[]>(kChunkRecords));
      if (mem_ != nullptr) {
        mem_->Charge(MemoryAccountant::kUndoLog,
                     kChunkRecords * sizeof(UndoRecord));
      }
    }
    chunks_[size_ >> kChunkBits][size_ & (kChunkRecords - 1)] = rec;
    ++size_;
  }

  const UndoRecord& at(size_t i) const {
    return chunks_[i >> kChunkBits][i & (kChunkRecords - 1)];
  }
  UndoRecord& at(size_t i) {
    return chunks_[i >> kChunkBits][i & (kChunkRecords - 1)];
  }
  const UndoRecord& back() const { return at(size_ - 1); }

  void pop_back() { --size_; }
  /// Keeps the chunks for the next transaction.
  void clear() { size_ = 0; }
  /// Drops records at and above `new_size` (scope rollback).
  void resize_down(size_t new_size) { size_ = new_size; }

 private:
  std::vector<std::unique_ptr<UndoRecord[]>> chunks_;
  size_t size_ = 0;
  MemoryAccountant* mem_ = nullptr;
};

class TransactionManager {
 public:
  explicit TransactionManager(Stats* stats) : stats_(stats) {}

  bool active() const { return !scopes_.empty(); }
  size_t depth() const { return scopes_.size(); }
  size_t undo_size() const { return log_.size(); }

  /// Opens a scope (a savepoint when one is already active). `next_id` is
  /// the Database id counter to restore if this scope rolls back. `name`
  /// (optional) makes the scope addressable by RollbackTo/Release.
  void Begin(int64_t next_id, std::string name = {});

  /// Pops the innermost scope, keeping its records for the parent; clears
  /// the log when the outermost scope commits.
  Status Commit();

  /// Undoes the innermost scope's records in reverse order and returns the
  /// id-counter snapshot taken at its Begin.
  Result<int64_t> Rollback();

  /// Undoes every record logged since the innermost scope named `name`
  /// (scopes nested inside it are discarded); the named scope itself stays
  /// open, per SQL ROLLBACK TO semantics. Returns its id-counter snapshot.
  Result<int64_t> RollbackTo(std::string_view name);

  /// Merges the innermost scope named `name` — and any scopes nested inside
  /// it — into its parent (SQL RELEASE semantics: the records are kept and
  /// commit or roll back with the enclosing scope).
  Status Release(std::string_view name);

  /// Attaches the write-ahead log (rdb/wal.h): from then on every mutation
  /// hook also pends a redo record for durable tables — inside a
  /// transaction (truncated again if the scope rolls back) or not (the
  /// Database flushes autocommit units at statement boundaries).
  void AttachWal(WalWriter* wal) { wal_ = wal; }

  /// Wires the memory accountant into the undo log (see UndoLog).
  void set_accountant(MemoryAccountant* mem) { log_.set_accountant(mem); }

  /// Record hooks (no-ops unless a transaction is active or a WAL is
  /// attached). Inline: they sit on the per-row hot path of every Table
  /// mutation.
  void LogInsert(Table* table, size_t rowid) {
    if (wal_ != nullptr) WalInsert(table, rowid);
    if (scopes_.empty()) return;
    log_.Append({UndoRecord::Kind::kInsert, 0, table, rowid});
    ++stats_->undo_records;
  }
  void LogDelete(Table* table, size_t rowid) {
    if (wal_ != nullptr) WalDelete(table, rowid);
    if (scopes_.empty()) return;
    log_.Append({UndoRecord::Kind::kDelete, 0, table, rowid});
    ++stats_->undo_records;
  }
  void LogUpdate(Table* table, size_t rowid, int column, Value old_value,
                 const Value& new_value) {
    if (wal_ != nullptr) WalUpdate(table, rowid, column, new_value);
    if (scopes_.empty()) return;
    log_.Append({UndoRecord::Kind::kUpdate, column, table, rowid});
    old_values_.push_back(std::move(old_value));
    ++stats_->undo_records;
  }

  /// Drops every record referencing `table` (called when a table is dropped
  /// through the direct catalog API while a transaction is active — the drop
  /// itself is not undoable, so its rows' undo records are moot).
  void PurgeTable(const Table* table);

 private:
  struct Scope {
    size_t undo_start = 0;  ///< log_ size at Begin.
    int64_t next_id = 0;    ///< Database id counter at Begin.
    std::string name;       ///< SAVEPOINT name (empty for plain Begin).
    /// WAL pending position at Begin; rollback truncates the redo buffer
    /// back to it in lockstep with the undo log.
    WalWriter::Mark wal_mark;
  };

  /// Undoes log records down to `undo_start` (LIFO).
  void UndoDownTo(size_t undo_start);
  /// Innermost scope index with a case-insensitive name match, or -1.
  int FindScope(std::string_view name) const;

  // Out-of-line redo pends (they need the complete Table type to check
  // durability; the inline hooks above only test the wal_ pointer).
  void WalInsert(Table* table, size_t rowid);
  void WalDelete(Table* table, size_t rowid);
  void WalUpdate(Table* table, size_t rowid, int column,
                 const Value& new_value);

  Stats* stats_;
  WalWriter* wal_ = nullptr;
  UndoLog log_;
  /// Old values of kUpdate records, appended in log order (log_ indexes in).
  std::vector<Value> old_values_;
  std::vector<Scope> scopes_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_TXN_H_
