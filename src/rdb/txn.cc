#include "rdb/txn.h"

#include <algorithm>

#include "common/str_util.h"
#include "rdb/table.h"

namespace xupd::rdb {

void TransactionManager::Begin(int64_t next_id, std::string name) {
  scopes_.push_back({log_.size(), next_id, std::move(name),
                     wal_ != nullptr ? wal_->mark() : WalWriter::Mark{}});
  ++stats_->txn_begins;
}

void TransactionManager::WalInsert(Table* table, size_t rowid) {
  if (table->durable()) wal_->PendInsert(*table, rowid);
}

void TransactionManager::WalDelete(Table* table, size_t rowid) {
  if (table->durable()) wal_->PendDelete(*table, rowid);
}

void TransactionManager::WalUpdate(Table* table, size_t rowid, int column,
                                   const Value& new_value) {
  if (table->durable()) wal_->PendUpdate(*table, rowid, column, new_value);
}

Status TransactionManager::Commit() {
  if (scopes_.empty()) {
    return Status::InvalidArgument("COMMIT without an active transaction");
  }
  scopes_.pop_back();
  // Outermost commit: the changes are durable, the log is dead weight. The
  // log keeps its chunks; only the old-value side vector frees memory.
  if (scopes_.empty()) {
    log_.clear();
    old_values_.clear();
  }
  ++stats_->txn_commits;
  return Status::OK();
}

void TransactionManager::UndoDownTo(size_t undo_start) {
  while (log_.size() > undo_start) {
    const UndoRecord& rec = log_.back();
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        rec.table->UndoInsert(rec.rowid);
        break;
      case UndoRecord::Kind::kDelete:
        rec.table->UndoDelete(rec.rowid);
        break;
      case UndoRecord::Kind::kUpdate:
        rec.table->UndoSetColumn(rec.rowid, rec.column, old_values_.back());
        old_values_.pop_back();
        break;
    }
    log_.pop_back();
  }
}

Result<int64_t> TransactionManager::Rollback() {
  if (scopes_.empty()) {
    return Status::InvalidArgument("ROLLBACK without an active transaction");
  }
  const Scope scope = scopes_.back();
  scopes_.pop_back();
  UndoDownTo(scope.undo_start);
  if (wal_ != nullptr) wal_->TruncatePending(scope.wal_mark);
  ++stats_->txn_rollbacks;
  return scope.next_id;
}

int TransactionManager::FindScope(std::string_view name) const {
  for (size_t i = scopes_.size(); i-- > 0;) {
    if (EqualsIgnoreCase(scopes_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<int64_t> TransactionManager::RollbackTo(std::string_view name) {
  int i = FindScope(name);
  if (i < 0) {
    return Status::InvalidArgument("no savepoint named '" + std::string(name) +
                                   "'");
  }
  UndoDownTo(scopes_[static_cast<size_t>(i)].undo_start);
  if (wal_ != nullptr) {
    wal_->TruncatePending(scopes_[static_cast<size_t>(i)].wal_mark);
  }
  // The named scope stays open (SQL keeps the savepoint after ROLLBACK TO);
  // scopes nested inside it are gone.
  scopes_.resize(static_cast<size_t>(i) + 1);
  ++stats_->txn_rollbacks;
  return scopes_[static_cast<size_t>(i)].next_id;
}

Status TransactionManager::Release(std::string_view name) {
  int i = FindScope(name);
  if (i < 0) {
    return Status::InvalidArgument("no savepoint named '" + std::string(name) +
                                   "'");
  }
  scopes_.resize(static_cast<size_t>(i));
  if (scopes_.empty()) {
    log_.clear();
    old_values_.clear();
  }
  ++stats_->txn_commits;
  return Status::OK();
}

void TransactionManager::PurgeTable(const Table* table) {
  if (log_.empty()) return;
  // Removing records shifts positions; every scope boundary must be remapped
  // to the count of surviving records that preceded it. The old-value vector
  // is compacted in step with the surviving kUpdate records (entries pair up
  // with kUpdate records in log order). Compaction is in place: the write
  // cursor never passes the read cursor, so records move only backwards
  // within the chunked log.
  const size_t old_size = log_.size();
  std::vector<size_t> survivors_before(scopes_.size(), 0);
  size_t kept = 0;
  size_t next_value = 0;
  size_t kept_values = 0;
  for (size_t i = 0; i < old_size; ++i) {
    for (size_t s = 0; s < scopes_.size(); ++s) {
      if (scopes_[s].undo_start == i) survivors_before[s] = kept;
    }
    const UndoRecord rec = log_.at(i);
    bool is_update = rec.kind == UndoRecord::Kind::kUpdate;
    if (rec.table != table) {
      if (is_update && kept_values != next_value) {
        old_values_[kept_values] = std::move(old_values_[next_value]);
      }
      if (is_update) ++kept_values;
      if (kept != i) log_.at(kept) = rec;
      ++kept;
    }
    if (is_update) ++next_value;
  }
  for (size_t s = 0; s < scopes_.size(); ++s) {
    if (scopes_[s].undo_start >= old_size) {
      scopes_[s].undo_start = kept;
    } else {
      scopes_[s].undo_start = survivors_before[s];
    }
  }
  log_.resize_down(kept);
  old_values_.resize(kept_values);
}

}  // namespace xupd::rdb
