#include "rdb/wal.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "rdb/database.h"
#include "rdb/table.h"
#include "rdb/vfs.h"

namespace xupd::rdb {

namespace {

constexpr char kWalMagic[8] = {'X', 'U', 'P', 'D', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalFormatVersion = 2;
/// magic + u32 version + u64 epoch.
constexpr size_t kWalHeaderSize = 8 + 4 + 8;
/// A frame length beyond this is treated as garbage (torn tail), not an
/// allocation request.
constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class RecordKind : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
  kDdl = 4,
  kCommit = 5,
  /// Interns a table name: u16 id | str name. Emitted once per WAL file
  /// before the first data record naming the table; every insert/delete/
  /// update record carries the u16 id instead of the name (~30% wal_bytes
  /// on narrow tables).
  kTableDef = 6,
};

}  // namespace

const char* ToString(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone:
      return "none";
    case SyncMode::kCommit:
      return "commit";
    case SyncMode::kBatched:
      return "batched";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// binio

namespace binio {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>((v >> 8) & 0xFFu));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
  out->append(b, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutI64(out, v.AsInt());
      break;
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

bool Reader::Need(size_t n) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(*p_++);
}

uint16_t Reader::U16() {
  if (!Need(2)) return 0;
  uint16_t v = static_cast<uint16_t>(static_cast<unsigned char>(*p_++));
  v = static_cast<uint16_t>(
      v | static_cast<uint16_t>(static_cast<unsigned char>(*p_++)) << 8);
  return v;
}

uint32_t Reader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(*p_++)) << (8 * i);
  }
  return v;
}

uint64_t Reader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(*p_++)) << (8 * i);
  }
  return v;
}

int64_t Reader::I64() { return static_cast<int64_t>(U64()); }

std::string Reader::String() {
  uint32_t len = U32();
  if (!Need(len)) return {};
  std::string s(p_, len);
  p_ += len;
  return s;
}

Value Reader::ReadValue() {
  switch (U8()) {
    case static_cast<uint8_t>(ValueType::kNull):
      return Value::Null();
    case static_cast<uint8_t>(ValueType::kInt):
      return Value::Int(I64());
    case static_cast<uint8_t>(ValueType::kString):
      return Value::Str(String());
    default:
      ok_ = false;
      return Value::Null();
  }
}

}  // namespace binio

// ---------------------------------------------------------------------------
// WalWriter

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    Vfs* vfs, const std::string& path, uint64_t epoch, uint64_t resume_offset,
    const DurabilityOptions& options, Stats* stats,
    const std::vector<std::pair<std::string, uint16_t>>* table_ids) {
  int err = 0;
  std::unique_ptr<VfsFile> file = vfs->Open(path, Vfs::OpenMode::kWrite, &err);
  if (file == nullptr) return ErrnoStatus("cannot open WAL", path, err);
  if ((err = file->Truncate(resume_offset)) != 0) {
    return ErrnoStatus("cannot truncate WAL", path, err);
  }
  std::unique_ptr<WalWriter> w(new WalWriter());
  w->file_ = std::move(file);
  w->path_ = path;
  w->epoch_ = epoch;
  w->options_ = options;
  w->stats_ = stats;
  if (resume_offset > 0 && table_ids != nullptr) {
    for (const auto& [name, id] : *table_ids) {
      w->table_ids_.emplace(name, id);
      if (id >= w->next_table_id_) {
        w->next_table_id_ = static_cast<uint16_t>(id + 1);
      }
    }
  }
  if (resume_offset == 0) {
    std::string header(kWalMagic, sizeof(kWalMagic));
    binio::PutU32(&header, kWalFormatVersion);
    binio::PutU64(&header, epoch);
    XUPD_RETURN_IF_ERROR(WriteFully(w->file_.get(), header.data(),
                                    header.size(), "cannot write WAL header",
                                    path));
    // The file's directory entry must be durable before any commit unit
    // can claim to be: fsyncing the file alone does not persist a freshly
    // created name. kNone makes no power-loss promise, so it skips this.
    if (options.sync_mode != SyncMode::kNone) {
      if ((err = vfs->SyncDir(path)) != 0) {
        return ErrnoStatus("cannot fsync WAL directory", path, err);
      }
    }
    w->file_size_ = kWalHeaderSize;
    w->dirty_ = true;
  } else {
    if ((err = w->file_->Seek(resume_offset)) != 0) {
      return ErrnoStatus("cannot seek WAL", path, err);
    }
    w->file_size_ = resume_offset;
    w->dirty_ = true;
  }
  // The reset itself (truncation of the old log + the fresh header) must be
  // durable before any commit unit can claim to be: power loss after an
  // unsynced checkpoint reset could persist the new-epoch header over the
  // old file while stale frames survive behind it, and replay would apply
  // pre-checkpoint records on top of the new snapshot. kNone makes no
  // power-loss promise and skips the fsync.
  if (options.sync_mode != SyncMode::kNone) {
    XUPD_RETURN_IF_ERROR(w->Sync());
  }
  // The prefix up to here was either just fsynced or (kNone) validated by
  // replay; either way it is the newest boundary known to be on disk.
  w->synced_size_ = w->file_size_;
  return w;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) (void)file_->Close();
  if (mem_ != nullptr && charged_pending_ != 0) {
    mem_->Release(MemoryAccountant::kWalPending, charged_pending_);
  }
}

void WalWriter::TruncatePending(const Mark& m) {
  if (m.bytes > pending_.size()) return;
  pending_.resize(m.bytes);
  pending_records_ = m.records;
  // Table defs pended after the mark never reach the file: forget them and
  // hand their ids back (pending_defs_ is offset-ascending, so the rolled
  // back defs are exactly a suffix holding the highest ids).
  while (!pending_defs_.empty() &&
         std::get<2>(pending_defs_.back()) >= m.bytes) {
    table_ids_.erase(std::get<0>(pending_defs_.back()));
    next_table_id_ = std::get<1>(pending_defs_.back());
    pending_defs_.pop_back();
  }
  SyncPendingCharge();
}

// Records serialize straight into pending_ (this sits on the per-row
// mutation hot path — no per-record temporary buffers): FrameBegin reserves
// the 8-byte length+CRC header, the payload appends in place, FrameEnd
// patches the header over the written region.
size_t WalWriter::FrameBegin() {
  size_t header_at = pending_.size();
  pending_.append(8, '\0');
  return header_at;
}

void WalWriter::FrameEnd(size_t header_at) {
  const size_t payload_start = header_at + 8;
  const uint32_t len = static_cast<uint32_t>(pending_.size() - payload_start);
  const uint32_t crc = binio::Crc32(pending_.data() + payload_start, len);
  for (int i = 0; i < 4; ++i) {
    pending_[header_at + static_cast<size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xFFu);
    pending_[header_at + 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  ++pending_records_;
  SyncPendingCharge();
}

namespace {

/// Raw little-endian writer over a stack buffer — the delete/update fast
/// path assembles its whole frame (header included) in one cache-hot
/// buffer and lands it in the pending buffer with a single append.
struct BufWriter {
  explicit BufWriter(char* begin) : p(begin), begin_(begin) {}
  void U8(uint8_t v) { *p++ = static_cast<char>(v); }
  void U16(uint16_t v) {
    *p++ = static_cast<char>(v & 0xFFu);
    *p++ = static_cast<char>((v >> 8) & 0xFFu);
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      *p++ = static_cast<char>((v >> (8 * i)) & 0xFFu);
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      *p++ = static_cast<char>((v >> (8 * i)) & 0xFFu);
    }
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    std::memcpy(p, s.data(), s.size());
    p += s.size();
  }
  size_t size() const { return static_cast<size_t>(p - begin_); }

  char* p;
  char* begin_;
};

}  // namespace

void WalWriter::AppendFixedFrame(const char* buf, size_t payload_size) {
  char header[8];
  BufWriter h(header);
  h.U32(static_cast<uint32_t>(payload_size));
  h.U32(binio::Crc32(buf + 8, payload_size));
  std::memcpy(const_cast<char*>(buf), header, 8);
  pending_.append(buf, 8 + payload_size);
  ++pending_records_;
  SyncPendingCharge();
}

uint16_t WalWriter::TableId(const std::string& name) {
  auto it = table_ids_.find(name);
  if (it != table_ids_.end()) return it->second;
  if (table_ids_.size() >= 0xFFFF) {
    // u16 id space exhausted for this file (65535 unique durable table
    // names in one checkpoint interval). Fail-stop rather than wrap: a
    // wrapped id would alias an earlier table and corrupt replay silently.
    // CommitPending surfaces the error at the next unit boundary;
    // checkpointing opens a fresh file with an empty dictionary.
    MarkBroken("per-file table-id space exhausted");
    return 0xFFFF;
  }
  uint16_t id = next_table_id_++;
  size_t frame = FrameBegin();
  binio::PutU8(&pending_, static_cast<uint8_t>(RecordKind::kTableDef));
  binio::PutU16(&pending_, id);
  binio::PutString(&pending_, name);
  FrameEnd(frame);
  table_ids_.emplace(name, id);
  pending_defs_.emplace_back(name, id, frame);
  return id;
}

void WalWriter::PendInsert(const Table& table, size_t rowid) {
  uint16_t tid = TableId(table.schema().name());
  size_t frame = FrameBegin();
  binio::PutU8(&pending_, static_cast<uint8_t>(RecordKind::kInsert));
  binio::PutU16(&pending_, tid);
  binio::PutU64(&pending_, rowid);
  auto row = table.row_span(rowid);
  binio::PutU32(&pending_, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) binio::PutValue(&pending_, v);
  FrameEnd(frame);
}

void WalWriter::PendDelete(const Table& table, size_t rowid) {
  uint16_t tid = TableId(table.schema().name());
  char buf[8 + 1 + 2 + 8];
  BufWriter w(buf + 8);
  w.U8(static_cast<uint8_t>(RecordKind::kDelete));
  w.U16(tid);
  w.U64(rowid);
  AppendFixedFrame(buf, w.size());
}

void WalWriter::PendUpdate(const Table& table, size_t rowid, int column,
                           const Value& new_value) {
  uint16_t tid = TableId(table.schema().name());
  if (new_value.type() != ValueType::kString ||
      new_value.AsString().size() <= 128) {
    char buf[8 + 1 + 2 + 8 + 4 + 1 + 4 + 128 + 8];
    BufWriter w(buf + 8);
    w.U8(static_cast<uint8_t>(RecordKind::kUpdate));
    w.U16(tid);
    w.U64(rowid);
    w.U32(static_cast<uint32_t>(column));
    w.U8(static_cast<uint8_t>(new_value.type()));
    if (new_value.type() == ValueType::kInt) {
      w.U64(static_cast<uint64_t>(new_value.AsInt()));
    } else if (new_value.type() == ValueType::kString) {
      w.Str(new_value.AsString());
    }
    AppendFixedFrame(buf, w.size());
    return;
  }
  size_t frame = FrameBegin();
  binio::PutU8(&pending_, static_cast<uint8_t>(RecordKind::kUpdate));
  binio::PutU16(&pending_, tid);
  binio::PutU64(&pending_, rowid);
  binio::PutU32(&pending_, static_cast<uint32_t>(column));
  binio::PutValue(&pending_, new_value);
  FrameEnd(frame);
}

void WalWriter::PendDdl(std::string_view sql) {
  size_t frame = FrameBegin();
  binio::PutU8(&pending_, static_cast<uint8_t>(RecordKind::kDdl));
  binio::PutString(&pending_, sql);
  FrameEnd(frame);
}

Status WalWriter::CommitPending(int64_t next_id) {
  if (pending_.empty()) return Status::OK();
  if (broken()) {
    std::string cause = broken_cause();
    return Status::Internal(
        "WAL writer is fail-stopped (" +
        (cause.empty() ? std::string("unknown cause") : cause) +
        "); the on-disk log ends at the last fully persisted unit — reopen "
        "or heal the database to resume");
  }
  const uint64_t t0 = commit_hist_ != nullptr ? MonotonicNanos() : 0;
  // The commit unit is a span of its own (child of the enclosing statement
  // or txn span); the fsync that persists it — inline under kCommit, on the
  // flusher thread under kBatched — becomes its child via sync_handoff_.
  trace::SpanScope unit_span;
  const uint64_t unit_records = pending_records_;
  size_t frame = FrameBegin();
  binio::PutU8(&pending_, static_cast<uint8_t>(RecordKind::kCommit));
  binio::PutI64(&pending_, next_id);
  FrameEnd(frame);
  const uint64_t unit_bytes = pending_.size();

  // The file descriptor and its byte accounting are shared with the
  // group-commit flusher thread; the pending buffer itself is writer-only
  // and was framed outside the lock.
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status write_status = WriteFully(file_.get(), pending_.data(),
                                     pending_.size(), "cannot append to WAL",
                                     path_);
    if (!write_status.ok()) {
      // Fail-stop: a partial write left a torn frame in the file. Truncate
      // back to the last unit boundary (best effort) and refuse further
      // appends — if garbage stayed mid-file, replay would end there and
      // silently drop every unit written after it.
      (void)file_->Truncate(file_size_);
      (void)file_->Seek(file_size_);
      MarkBroken(write_status.message());
      pending_.clear();
      SyncPendingCharge();
      pending_records_ = 0;
      for (const auto& [name, id, offset] : pending_defs_) {
        table_ids_.erase(name);
      }
      pending_defs_.clear();
      return write_status;
    }
    file_size_ += pending_.size();
    stats_->wal_appends += pending_records_;
    stats_->wal_bytes += pending_.size();
    pending_.clear();
    SyncPendingCharge();
    pending_records_ = 0;
    pending_defs_.clear();  // the defs (and their ids) are in the file now
    dirty_ = true;
    ++commits_since_sync_;
    sync_handoff_ = unit_span.handoff();

    switch (options_.sync_mode) {
      case SyncMode::kNone:
        break;
      case SyncMode::kCommit:
        XUPD_RETURN_IF_ERROR(SyncLocked());
        break;
      case SyncMode::kBatched:
        // Group commit: the background flusher fsyncs every
        // group_commit_window_us; this unit is acknowledged now and
        // becomes power-loss durable at the window's end.
        break;
    }
  }
  if (commit_hist_ != nullptr) {
    const uint64_t dur = MonotonicNanos() - t0;
    commit_hist_->Record(dur);
    if (events_ != nullptr) {
      TraceEvent ev{TraceEvent::Kind::kWalUnit, t0, dur, unit_records,
                    unit_bytes, nullptr};
      unit_span.Annotate(&ev);
      events_->Record(ev);
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status WalWriter::SyncLocked() {
  if (!dirty_) return Status::OK();
  const uint64_t t0 = fsync_hist_ != nullptr ? MonotonicNanos() : 0;
  const uint64_t batch = commits_since_sync_;
  if (int err = file_->Sync(); err != 0) {
    // Fail-stop on fsync failure too: the kernel may have DROPPED the dirty
    // pages (fsync-gate semantics), so a unit that reported a commit error
    // may be missing from disk — letting later units commit "successfully"
    // behind the hole would break the committed-prefix recovery guarantee.
    Status s = ErrnoStatus("cannot fsync WAL", path_, err);
    MarkBroken(s.message());
    return s;
  }
  dirty_ = false;
  commits_since_sync_ = 0;
  const trace::Handoff from_unit = sync_handoff_;
  sync_handoff_ = trace::Handoff{};
  synced_size_.store(file_size_, std::memory_order_release);
  ++stats_->wal_fsyncs;
  if (batch_hist_ != nullptr && batch > 0) batch_hist_->Record(batch);
  if (fsync_hist_ != nullptr) {
    const uint64_t dur = MonotonicNanos() - t0;
    fsync_hist_->Record(dur);
    if (events_ != nullptr) {
      // `a` = group-commit batch size (units this fsync persisted). The
      // span adopts the last unit's handoff, so under kBatched the trace
      // carries a writer->flusher flow edge.
      trace::SpanScope fsync_span{from_unit};
      TraceEvent ev{TraceEvent::Kind::kFsync, t0, dur, batch, 0, nullptr};
      fsync_span.Annotate(&ev);
      events_->Record(ev);
    }
  }
  return Status::OK();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status s = SyncLocked();
  (void)file_->Close();
  file_ = nullptr;
  return s;
}

// ---------------------------------------------------------------------------
// Replay

namespace {

/// One decoded data record held until its unit's commit frame arrives.
struct PendingRecord {
  RecordKind kind = RecordKind::kInsert;
  std::string table;
  uint64_t rowid = 0;
  uint32_t column = 0;
  Row values;    ///< kInsert row / kUpdate single value at [0].
  std::string sql;  ///< kDdl.
};

Status ApplyRecord(Database* db, const PendingRecord& rec) {
  if (rec.kind == RecordKind::kDdl) {
    return db->Execute(rec.sql);
  }
  Table* table = db->FindTable(rec.table);
  if (table == nullptr) {
    return Status::Internal("WAL replay: table '" + rec.table +
                            "' not in catalog");
  }
  switch (rec.kind) {
    case RecordKind::kInsert: {
      if (rec.rowid != table->capacity()) {
        return Status::Internal(
            "WAL replay: insert row id " + std::to_string(rec.rowid) +
            " does not line up with table '" + rec.table + "' (capacity " +
            std::to_string(table->capacity()) + ")");
      }
      auto rowid = table->Insert(rec.values);
      if (!rowid.ok()) return rowid.status();
      return Status::OK();
    }
    case RecordKind::kDelete:
      return table->Delete(rec.rowid);
    case RecordKind::kUpdate:
      return table->SetColumn(rec.rowid, static_cast<int>(rec.column),
                              rec.values.empty() ? Value::Null()
                                                 : rec.values[0]);
    default:
      return Status::Internal("WAL replay: unexpected record kind");
  }
}

}  // namespace

Result<WalReplayResult> ReplayWal(Database* db, Vfs* vfs,
                                  const std::string& path,
                                  uint64_t snapshot_epoch,
                                  uint64_t start_offset) {
  // Read the whole file (WALs are truncated at every checkpoint; between
  // checkpoints they are bounded by the update volume since the last one).
  auto read = ReadWholeFile(vfs, path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      return WalReplayResult{};  // no WAL: start fresh.
    }
    return read.status();
  }
  const std::string& data = read.value();
  if (data.empty()) return WalReplayResult{};  // created but never written.
  if (std::memcmp(data.data(), kWalMagic,
                  std::min(data.size(), sizeof(kWalMagic))) != 0) {
    return Status::Internal("'" + path + "' is not a WAL file");
  }
  if (data.size() < kWalHeaderSize) {
    // A crash tore the header write itself: nothing was ever committed
    // through this file, so reset it.
    return WalReplayResult{};
  }
  binio::Reader header(data.data() + sizeof(kWalMagic),
                       kWalHeaderSize - sizeof(kWalMagic));
  uint32_t version = header.U32();
  uint64_t epoch = header.U64();
  if (version != kWalFormatVersion) {
    return Status::Internal("WAL format version mismatch: file has " +
                            std::to_string(version) + ", this build reads " +
                            std::to_string(kWalFormatVersion));
  }
  if (epoch < snapshot_epoch) {
    // Pre-checkpoint WAL that a crash kept around: every record in it is
    // already contained in the snapshot. Reset it.
    return WalReplayResult{};
  }
  if (epoch > snapshot_epoch) {
    return Status::Internal(
        "WAL epoch " + std::to_string(epoch) + " is ahead of snapshot epoch " +
        std::to_string(snapshot_epoch) + " (snapshot file lost?)");
  }

  WalReplayResult out;
  out.valid_bytes = kWalHeaderSize;
  std::vector<PendingRecord> unit;
  // Per-file table-name dictionary: defs decode into `defs` in frame order;
  // data records resolve ids through it immediately (a def always precedes
  // its first use in the same or an earlier unit). Only the defs seen
  // before the last commit marker are handed to the resuming writer —
  // later ones die with their uncommitted unit.
  std::vector<std::pair<std::string, uint16_t>> defs;
  std::unordered_map<uint16_t, std::string> id_names;
  size_t committed_defs = 0;
  size_t pos = kWalHeaderSize;
  while (pos + 8 <= data.size()) {
    binio::Reader frame(data.data() + pos, 8);
    uint32_t len = frame.U32();
    uint32_t crc = frame.U32();
    if (len > kMaxFramePayload || pos + 8 + len > data.size()) break;  // torn.
    const char* payload = data.data() + pos + 8;
    if (binio::Crc32(payload, len) != crc) break;  // corrupt: end of log.
    binio::Reader r(payload, len);
    PendingRecord rec;
    rec.kind = static_cast<RecordKind>(r.U8());
    bool end_of_log = false;
    bool is_def = false;
    int64_t commit_next_id = 0;
    auto resolve_table = [&](uint16_t id) -> bool {
      auto it = id_names.find(id);
      if (it == id_names.end()) return false;
      rec.table = it->second;
      return true;
    };
    switch (rec.kind) {
      case RecordKind::kTableDef: {
        uint16_t id = r.U16();
        std::string name = r.String();
        if (!r.ok()) break;
        id_names[id] = name;
        defs.emplace_back(std::move(name), id);
        is_def = true;
        break;
      }
      case RecordKind::kInsert: {
        uint16_t tid = r.U16();
        rec.rowid = r.U64();
        uint32_t n = r.U32();
        for (uint32_t i = 0; r.ok() && i < n; ++i) {
          rec.values.push_back(r.ReadValue());
        }
        if (r.ok() && !resolve_table(tid)) {
          return Status::Internal(
              "WAL replay: record references undefined table id " +
              std::to_string(tid));
        }
        break;
      }
      case RecordKind::kDelete: {
        uint16_t tid = r.U16();
        rec.rowid = r.U64();
        if (r.ok() && !resolve_table(tid)) {
          return Status::Internal(
              "WAL replay: record references undefined table id " +
              std::to_string(tid));
        }
        break;
      }
      case RecordKind::kUpdate: {
        uint16_t tid = r.U16();
        rec.rowid = r.U64();
        rec.column = r.U32();
        rec.values.push_back(r.ReadValue());
        if (r.ok() && !resolve_table(tid)) {
          return Status::Internal(
              "WAL replay: record references undefined table id " +
              std::to_string(tid));
        }
        break;
      }
      case RecordKind::kDdl:
        rec.sql = r.String();
        break;
      case RecordKind::kCommit:
        commit_next_id = r.I64();
        break;
      default:
        end_of_log = true;  // unknown kind: treat like a torn frame.
        break;
    }
    if (end_of_log || !r.ok()) break;
    pos += 8 + len;
    if (rec.kind == RecordKind::kCommit) {
      if (pos <= start_offset) {
        // This unit is already folded into the snapshot (off-thread
        // checkpoint): keep the dictionary and the commit boundary but do
        // not re-apply it — and leave next_id to the snapshot's value.
        unit.clear();
      } else {
        for (const PendingRecord& pending : unit) {
          XUPD_RETURN_IF_ERROR(ApplyRecord(db, pending));
          ++out.applied_records;
        }
        unit.clear();
        db->set_next_id(commit_next_id);
      }
      out.valid_bytes = pos;
      committed_defs = defs.size();
    } else if (!is_def) {
      unit.push_back(std::move(rec));
    }
  }
  defs.resize(committed_defs);
  out.table_ids = std::move(defs);
  // Records after the last commit frame (an uncommitted or torn unit) are
  // discarded; the caller truncates the file back to valid_bytes.
  return out;
}

std::vector<std::string> VerifyWalFile(Vfs* vfs, const std::string& path,
                                       uint64_t expected_epoch,
                                       uint64_t writer_epoch,
                                       uint64_t writer_bytes) {
  std::vector<std::string> violations;
  auto read = ReadWholeFile(vfs, path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      if (expected_epoch != 0) {
        violations.push_back("WAL file missing: '" + path + "'");
      }
      return violations;
    }
    violations.push_back("WAL unreadable: " + read.status().message());
    return violations;
  }
  const std::string& data = read.value();
  if (data.empty()) return violations;  // created but never written: clean.
  if (std::memcmp(data.data(), kWalMagic,
                  std::min(data.size(), sizeof(kWalMagic))) != 0) {
    violations.push_back("WAL header corrupt: '" + path + "'");
    return violations;
  }
  if (data.size() < kWalHeaderSize) {
    // A torn header write — ReplayWal resets such a file, so it is clean.
    return violations;
  }
  binio::Reader header(data.data() + sizeof(kWalMagic),
                       kWalHeaderSize - sizeof(kWalMagic));
  uint32_t version = header.U32();
  uint64_t epoch = header.U64();
  if (version != kWalFormatVersion) {
    violations.push_back("WAL version mismatch: file has " +
                         std::to_string(version));
  }
  // A file epoch BEHIND the expected one is a stale pre-checkpoint log that
  // recovery ignores (and a failed post-checkpoint reset legitimately leaves
  // the file one epoch ahead of the broken old writer — the caller folds the
  // snapshot's epoch into expected_epoch). Only a file ahead of everything
  // durable is inconsistent: replay would have no snapshot to anchor it.
  if (expected_epoch != 0 && epoch > expected_epoch) {
    violations.push_back("WAL epoch " + std::to_string(epoch) +
                         " is ahead of the expected epoch " +
                         std::to_string(expected_epoch));
  }
  size_t pos = kWalHeaderSize;
  size_t last_boundary = kWalHeaderSize;
  while (pos < data.size()) {
    // Any tear — a partial frame header, a frame running past EOF, a CRC
    // mismatch — ends the log exactly as it ends it for ReplayWal: the
    // bytes beyond the last commit boundary are a discardable crash
    // artifact (e.g. the torn tail a power loss leaves when the writer's
    // fail-stop truncate could no longer run), not corruption of anything
    // committed. Lost committed data is caught below instead.
    if (pos + 8 > data.size()) break;
    binio::Reader frame(data.data() + pos, 8);
    uint32_t len = frame.U32();
    uint32_t crc = frame.U32();
    if (len > kMaxFramePayload || pos + 8 + len > data.size()) break;
    const char* payload = data.data() + pos + 8;
    if (binio::Crc32(payload, len) != crc) break;
    if (len > 0 &&
        static_cast<RecordKind>(static_cast<uint8_t>(payload[0])) ==
            RecordKind::kCommit) {
      last_boundary = pos + 8 + len;
    }
    pos += 8 + len;
  }
  // The open writer knows how many bytes it durably committed; a replay of
  // this file ending short of that loses committed units. Only meaningful
  // when the file belongs to that writer's epoch (a failed post-checkpoint
  // reset leaves a fresh next-epoch file the old writer's count predates).
  if (writer_epoch != 0 && epoch == writer_epoch && writer_bytes != 0 &&
      last_boundary < writer_bytes) {
    violations.push_back(
        "WAL lost committed data: last commit boundary at " +
        std::to_string(last_boundary) + ", writer committed " +
        std::to_string(writer_bytes) + " bytes");
  }
  return violations;
}

}  // namespace xupd::rdb
