// Execution statistics — the observable cost model of the engine. Tests and
// benches assert on these (e.g. tuple-based insert issues O(#tuples)
// statements; per-statement triggers scan whole child relations).
#ifndef XUPD_RDB_STATS_H_
#define XUPD_RDB_STATS_H_

#include <cstdint>
#include <string>

namespace xupd::rdb {

struct Stats {
  /// SQL statements issued through Database::Execute / ExecuteQuery /
  /// ExecutePrepared (each pays the simulated round-trip latency once).
  uint64_t statements = 0;
  /// Full ParseSql invocations: every Execute/ExecuteQuery call plus every
  /// prepared-cache miss. Statement reuse shows up as this counter growing
  /// slower than `statements`.
  uint64_t sql_parses = 0;
  /// Prepared-statement cache hits: Database::Prepare (or the ExecuteBound
  /// convenience wrappers) found the SQL text already parsed and skipped
  /// ParseSql entirely.
  uint64_t prepared_hits = 0;
  /// Prepared-statement cache misses: Prepare had to parse. misses == the
  /// number of distinct statement shapes seen (modulo LRU eviction and DDL
  /// invalidation).
  uint64_t prepared_misses = 0;
  /// Rows inserted through multi-row INSERT ... VALUES (...), (...) ...
  /// statements (only statements carrying more than one row count). The
  /// batched bulk-load path drives this.
  uint64_t batched_rows = 0;
  /// Plans built by the logical planner: every ad-hoc Execute/ExecuteQuery
  /// of a plannable statement, every plan-cache miss, and every EXPLAIN.
  uint64_t plans_built = 0;
  /// Cached-plan reuses: ExecutePrepared/ExecuteBound (or a trigger body
  /// re-firing) found a plan still valid for the current catalog version
  /// and skipped name resolution + access-path selection entirely.
  uint64_t plan_cache_hits = 0;
  /// Statements executed inside trigger bodies.
  uint64_t trigger_statements = 0;
  /// Trigger firings (row triggers: per row; statement triggers: per stmt).
  uint64_t trigger_firings = 0;
  /// Rows visited by table scans.
  uint64_t rows_scanned = 0;
  /// Index probes (hash lookups).
  uint64_t index_probes = 0;
  uint64_t rows_inserted = 0;
  uint64_t rows_deleted = 0;
  uint64_t rows_updated = 0;
  /// Transaction scopes opened (nested Begin = savepoint counts too).
  uint64_t txn_begins = 0;
  /// Scopes committed (outermost commit makes the changes durable).
  uint64_t txn_commits = 0;
  /// Scopes rolled back (each undoes that scope's records LIFO).
  uint64_t txn_rollbacks = 0;
  /// Undo records logged (one per row insert/delete/column update executed
  /// while a transaction was active) — the txn write-amplification signal.
  uint64_t undo_records = 0;
  /// Redo records written to the WAL file (data records, DDL records and
  /// commit markers) — the durability write-amplification signal. Pending
  /// records of rolled-back scopes never count.
  uint64_t wal_appends = 0;
  /// Bytes written to the WAL file (frames + commit markers; excludes the
  /// file header).
  uint64_t wal_bytes = 0;
  /// fsync calls issued by the WAL (per commit unit in `commit` mode, every
  /// group_commit_interval units in `batched`, zero in `none`).
  uint64_t wal_fsyncs = 0;
  /// Snapshot checkpoints taken (each truncates the WAL).
  uint64_t checkpoints = 0;
  /// Redo records replayed from the WAL by the last Database::Open.
  uint64_t recovery_replayed = 0;
  /// VerifyIntegrity runs (SQL CHECK INTEGRITY counts too).
  uint64_t integrity_checks = 0;
  /// TryHeal attempts (each re-opens the data directory; successful or not).
  uint64_t heal_attempts = 0;

  void Reset() { *this = Stats{}; }

  Stats Delta(const Stats& earlier) const {
    Stats d;
    d.statements = statements - earlier.statements;
    d.sql_parses = sql_parses - earlier.sql_parses;
    d.prepared_hits = prepared_hits - earlier.prepared_hits;
    d.prepared_misses = prepared_misses - earlier.prepared_misses;
    d.batched_rows = batched_rows - earlier.batched_rows;
    d.plans_built = plans_built - earlier.plans_built;
    d.plan_cache_hits = plan_cache_hits - earlier.plan_cache_hits;
    d.trigger_statements = trigger_statements - earlier.trigger_statements;
    d.trigger_firings = trigger_firings - earlier.trigger_firings;
    d.rows_scanned = rows_scanned - earlier.rows_scanned;
    d.index_probes = index_probes - earlier.index_probes;
    d.rows_inserted = rows_inserted - earlier.rows_inserted;
    d.rows_deleted = rows_deleted - earlier.rows_deleted;
    d.rows_updated = rows_updated - earlier.rows_updated;
    d.txn_begins = txn_begins - earlier.txn_begins;
    d.txn_commits = txn_commits - earlier.txn_commits;
    d.txn_rollbacks = txn_rollbacks - earlier.txn_rollbacks;
    d.undo_records = undo_records - earlier.undo_records;
    d.wal_appends = wal_appends - earlier.wal_appends;
    d.wal_bytes = wal_bytes - earlier.wal_bytes;
    d.wal_fsyncs = wal_fsyncs - earlier.wal_fsyncs;
    d.checkpoints = checkpoints - earlier.checkpoints;
    d.recovery_replayed = recovery_replayed - earlier.recovery_replayed;
    d.integrity_checks = integrity_checks - earlier.integrity_checks;
    d.heal_attempts = heal_attempts - earlier.heal_attempts;
    return d;
  }

  std::string ToString() const {
    return "stmts=" + std::to_string(statements) +
           " parses=" + std::to_string(sql_parses) +
           " prep_hits=" + std::to_string(prepared_hits) +
           " prep_miss=" + std::to_string(prepared_misses) +
           " batched=" + std::to_string(batched_rows) +
           " plans=" + std::to_string(plans_built) +
           " plan_hits=" + std::to_string(plan_cache_hits) +
           " trig_stmts=" + std::to_string(trigger_statements) +
           " trig_fires=" + std::to_string(trigger_firings) +
           " scanned=" + std::to_string(rows_scanned) +
           " probes=" + std::to_string(index_probes) +
           " ins=" + std::to_string(rows_inserted) +
           " del=" + std::to_string(rows_deleted) +
           " upd=" + std::to_string(rows_updated) +
           " txn_begin=" + std::to_string(txn_begins) +
           " txn_commit=" + std::to_string(txn_commits) +
           " txn_rollback=" + std::to_string(txn_rollbacks) +
           " undo=" + std::to_string(undo_records) +
           " wal_appends=" + std::to_string(wal_appends) +
           " wal_bytes=" + std::to_string(wal_bytes) +
           " wal_fsyncs=" + std::to_string(wal_fsyncs) +
           " checkpoints=" + std::to_string(checkpoints) +
           " replayed=" + std::to_string(recovery_replayed) +
           " scrubs=" + std::to_string(integrity_checks) +
           " heals=" + std::to_string(heal_attempts);
  }
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_STATS_H_
