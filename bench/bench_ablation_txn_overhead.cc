// Ablation: transaction overhead. The engine wraps every XML update
// operation in a transaction (undo logging + commit bookkeeping) so a
// mid-operation failure cannot strand a half-updated store. This bench
// quantifies what that costs on the paper's fig. 6 bulk-delete workload and
// the fig. 10 bulk-copy workload, per strategy, in three modes:
//
//   autocommit   Options::transactional = false — the raw regime; every SQL
//                statement lands individually, no undo log
//   txn          default — one txn per operation, committed
//   rollback     one txn per operation, a failure injected halfway through,
//                the whole operation undone (rollback-heavy regime)
//
// One JSON row per (op, strategy, mode); txn rows carry overhead_pct vs the
// matching autocommit row. The acceptance bar is per-op txn overhead <= 15%
// over autocommit on the bulk-delete workload.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "harness.h"

using namespace xupd;
using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

namespace {

struct ModeResult {
  double seconds = 0;  ///< median of counted runs (histogram-backed).
  rdb::Stats stats;
  Histogram run_ns;  ///< one sample per counted run.
};

using Op = std::function<Status(RelationalStore*)>;

/// Statement executions (incl. trigger bodies) one clean run performs —
/// the rollback mode injects its failure at half this count.
int64_t CountStatements(const workload::GeneratedDoc& gen,
                        const RelationalStore::Options& options, const Op& op) {
  auto store = bench::FreshStore(gen, options);
  rdb::Stats before = store->stats();
  Status s = op(store.get());
  if (!s.ok()) {
    std::fprintf(stderr, "probe run failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  rdb::Stats d = store->stats().Delta(before);
  return static_cast<int64_t>(d.statements + d.trigger_statements);
}

struct ModeSpec {
  const char* name;
  bool transactional = true;
  int64_t fail_after = -1;  ///< -1 = run to completion.
};

/// Measures all modes interleaved: each run executes every mode back to
/// back on its own fresh store, so run-to-run drift (allocator state, CPU
/// frequency) hits every mode equally instead of biasing whole blocks.
template <size_t N>
std::array<ModeResult, N> MeasureInterleaved(
    const workload::GeneratedDoc& gen, RelationalStore::Options options,
    const Op& op, int runs, const std::array<ModeSpec, N>& modes) {
  std::array<ModeResult, N> out{};
  for (int r = 0; r < runs; ++r) {
    for (size_t m = 0; m < N; ++m) {
      options.transactional = modes[m].transactional;
      auto store = bench::FreshStore(gen, options);
      rdb::Stats before = store->stats();
      if (modes[m].fail_after >= 0) {
        store->db()->InjectFailureAfterStatements(modes[m].fail_after);
      }
      Stopwatch sw;
      Status s = op(store.get());
      double t = sw.ElapsedSeconds();
      store->db()->InjectFailureAfterStatements(-1);
      if (modes[m].fail_after >= 0 ? s.ok() : !s.ok()) {
        std::fprintf(stderr, "unexpected op outcome: %s\n",
                     s.ToString().c_str());
        std::abort();
      }
      if (r > 0) {
        out[m].run_ns.Record(static_cast<uint64_t>(t * 1e9));
        out[m].stats = store->stats().Delta(before);
      }
    }
  }
  // Histogram-backed medians: one outlier run no longer skews the mode
  // comparison the overhead_pct gate rides on.
  for (size_t m = 0; m < N; ++m) {
    out[m].seconds = out[m].run_ns.Percentile(50) / 1e9;
  }
  return out;
}

void Report(const char* op_name, const char* strategy, const char* mode,
            const ModeResult& r, double overhead_pct) {
  std::printf("%-7s %-10s %-10s %10.6f sec  overhead=%+6.2f%%\n", op_name,
              strategy, mode, r.seconds, overhead_pct);
  std::printf(
      "{\"bench\":\"ablation_txn_overhead\",\"op\":\"%s\",\"strategy\":\"%s\","
      "\"mode\":\"%s\",\"seconds\":%.6f,\"overhead_pct\":%.2f,"
      "\"run_p50_us\":%.1f,\"run_p99_us\":%.1f,"
      "\"statements\":%llu,\"trigger_statements\":%llu,"
      "\"txn_begins\":%llu,\"txn_commits\":%llu,\"txn_rollbacks\":%llu,"
      "\"undo_records\":%llu,%s\n",
      op_name, strategy, mode, r.seconds, overhead_pct,
      r.run_ns.Percentile(50) / 1e3, r.run_ns.Percentile(99) / 1e3,
      static_cast<unsigned long long>(r.stats.statements),
      static_cast<unsigned long long>(r.stats.trigger_statements),
      static_cast<unsigned long long>(r.stats.txn_begins),
      static_cast<unsigned long long>(r.stats.txn_commits),
      static_cast<unsigned long long>(r.stats.txn_rollbacks),
      static_cast<unsigned long long>(r.stats.undo_records),
      bench::JsonTail().c_str());
}

void RunModes(const workload::GeneratedDoc& gen, const char* op_name,
              const char* strategy, RelationalStore::Options options,
              const Op& op, int runs) {
  options.transactional = true;
  int64_t fail_after = CountStatements(gen, options, op) / 2;
  std::array<ModeSpec, 3> modes = {{{"autocommit", false, -1},
                                    {"txn", true, -1},
                                    {"rollback", true, fail_after}}};
  auto results = MeasureInterleaved(gen, options, op, runs, modes);
  double base = results[0].seconds;
  for (size_t m = 0; m < modes.size(); ++m) {
    double overhead =
        base > 0 ? 100.0 * (results[m].seconds - base) / base : 0.0;
    Report(op_name, strategy, modes[m].name, results[m], overhead);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int sf = argc > 2 ? std::atoi(argv[2]) : 100;
  int depth = argc > 3 ? std::atoi(argv[3]) : 6;
  std::printf("# Ablation: per-operation txn overhead (sf=%d depth=%d)\n", sf,
              depth);

  // Fig. 6 regime: bulk delete of every root subtree (fanout 1 keeps the
  // document a set of chains, the paper's delete-bench shape).
  workload::SyntheticSpec del_spec;
  del_spec.scaling_factor = sf;
  del_spec.depth = depth;
  del_spec.fanout = 1;
  auto del_gen = workload::GenerateFixedSynthetic(del_spec, 42);
  if (!del_gen.ok()) return 1;
  Op bulk_delete = [](RelationalStore* s) { return s->DeleteWhere("n1", ""); };
  const DeleteStrategy del_methods[] = {
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kCascade, DeleteStrategy::kAsr};
  for (DeleteStrategy method : del_methods) {
    RelationalStore::Options options;
    options.delete_strategy = method;
    options.insert_strategy = InsertStrategy::kTable;
    RunModes(*del_gen, "delete", ToString(method), options, bulk_delete, runs);
  }

  // Fig. 10 regime: bulk copy of every root subtree (fanout 4 gives real
  // subtrees to replicate).
  workload::SyntheticSpec ins_spec;
  ins_spec.scaling_factor = sf;
  ins_spec.depth = depth > 4 ? 4 : depth;
  ins_spec.fanout = 4;
  auto ins_gen = workload::GenerateFixedSynthetic(ins_spec, 42);
  if (!ins_gen.ok()) return 1;
  Op bulk_copy = [](RelationalStore* s) {
    return s->CopySubtreesWhere("n1", "", s->root_id());
  };
  const InsertStrategy ins_methods[] = {InsertStrategy::kTuple,
                                        InsertStrategy::kTable,
                                        InsertStrategy::kAsr};
  for (InsertStrategy method : ins_methods) {
    RelationalStore::Options options;
    options.delete_strategy = DeleteStrategy::kCascade;
    options.insert_strategy = method;
    RunModes(*ins_gen, "insert", ToString(method), options, bulk_copy, runs);
  }
  return 0;
}
