#include "shred/mapping.h"

#include <cctype>
#include <functional>
#include <map>
#include <set>

#include "common/str_util.h"

namespace xupd::shred {

using xml::AttrDecl;
using xml::AttrType;
using xml::ChildOccurrence;
using xml::ContentType;
using xml::Dtd;
using xml::ElementDecl;

namespace {

std::string SanitizeIdentifier(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "t_" + out;
  }
  return out;
}

std::string ColumnNameFor(const std::vector<std::string>& path,
                          const std::string& suffix) {
  std::string out;
  for (const std::string& p : path) {
    if (!out.empty()) out += "_";
    out += SanitizeIdentifier(p);
  }
  if (!suffix.empty()) {
    if (!out.empty()) out += "_";
    out += SanitizeIdentifier(suffix);
  }
  return out;
}

// Detects elements reachable from themselves through the DTD graph.
bool IsRecursive(const Dtd& dtd, const std::string& start) {
  std::set<std::string> visited;
  std::vector<std::string> stack{start};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    for (const ChildOccurrence& c : dtd.ChildElements(cur)) {
      if (c.name == start) return true;
      if (visited.insert(c.name).second) stack.push_back(c.name);
    }
  }
  return false;
}

}  // namespace

Result<Mapping> Mapping::SharedInlining(const Dtd& dtd) {
  Mapping mapping;
  mapping.dtd_ = dtd;

  // Count distinct parents and repeated occurrences per element.
  std::map<std::string, std::set<std::string>> parents;
  std::set<std::string> repeated;
  for (const ElementDecl& decl : dtd.elements()) {
    if (decl.type == ContentType::kAny) {
      return Status::InvalidArgument("element <" + decl.name +
                                     "> has ANY content; not mappable");
    }
    for (const ChildOccurrence& c : dtd.ChildElements(decl.name)) {
      parents[c.name].insert(decl.name);
      if (c.repeated) repeated.insert(c.name);
    }
  }

  std::string root = dtd.RootName();
  std::set<std::string> table_elements{root};
  for (const ElementDecl& decl : dtd.elements()) {
    if (decl.name == root) continue;
    if (repeated.count(decl.name) > 0 || parents[decl.name].size() > 1 ||
        IsRecursive(dtd, decl.name)) {
      table_elements.insert(decl.name);
    }
  }

  // Build the table list by walking from the root so parent_element is the
  // nearest table ancestor.
  std::set<std::string> emitted;
  // Recursive lambda: builds the TableMapping for `element` whose nearest
  // table ancestor is `parent_table_element`.
  std::function<Status(const std::string&, const std::string&)> build =
      [&](const std::string& element,
          const std::string& parent_table_element) -> Status {
    if (!emitted.insert(element).second) {
      // Shared elements reachable from several parents get one table; the
      // first discovery wins for parent_element (used only for diagnostics;
      // tuples carry real parent ids).
      return Status::OK();
    }
    TableMapping tm;
    tm.element = element;
    tm.table = SanitizeIdentifier(element);
    tm.parent_element = parent_table_element;

    std::set<std::string> used_columns{"id", "parentid"};
    auto add_field = [&](InlinedField f) {
      std::string base = AsciiToLower(f.column);
      std::string column = f.column;
      int suffix = 2;
      while (used_columns.count(AsciiToLower(column)) > 0) {
        column = f.column + "_" + std::to_string(suffix++);
      }
      used_columns.insert(AsciiToLower(column));
      f.column = column;
      tm.fields.push_back(std::move(f));
      (void)base;
    };

    std::vector<std::string> pending_tables;  // child table elements

    // Recursive inlining walk.
    std::function<void(const std::string&, const std::vector<std::string>&)>
        inline_element = [&](const std::string& name,
                             const std::vector<std::string>& path) {
          // Attributes of `name` become columns.
          for (const AttrDecl* a : dtd.AttributesOf(name)) {
            InlinedField f;
            f.kind = InlinedField::Kind::kAttribute;
            f.path = path;
            f.attr = a->name;
            f.is_ref =
                a->type == AttrType::kIdref || a->type == AttrType::kIdrefs;
            f.column = ColumnNameFor(path, a->name);
            add_field(std::move(f));
          }
          const ElementDecl* decl = dtd.FindElement(name);
          if (decl == nullptr) return;
          if (decl->type == ContentType::kPcdataOnly ||
              decl->type == ContentType::kMixed) {
            InlinedField f;
            f.kind = InlinedField::Kind::kPcdata;
            f.path = path;
            f.column = path.empty() ? "value" : ColumnNameFor(path, "");
            add_field(std::move(f));
          }
          for (const ChildOccurrence& c : dtd.ChildElements(name)) {
            if (table_elements.count(c.name) > 0) {
              if (path.empty()) {
                pending_tables.push_back(c.name);
              } else {
                // A table element nested under an inlined one: its parent
                // tuples are the enclosing table's tuples.
                pending_tables.push_back(c.name);
              }
              continue;
            }
            std::vector<std::string> child_path = path;
            child_path.push_back(c.name);
            const ElementDecl* child_decl = dtd.FindElement(c.name);
            bool leaf = child_decl == nullptr ||
                        child_decl->type == ContentType::kPcdataOnly ||
                        child_decl->type == ContentType::kEmpty;
            if (!leaf) {
              // Presence flag disambiguates "deleted" vs "empty" (§6.1).
              InlinedField f;
              f.kind = InlinedField::Kind::kPresence;
              f.path = child_path;
              f.column = ColumnNameFor(child_path, "present");
              add_field(std::move(f));
            }
            inline_element(c.name, child_path);
          }
        };

    inline_element(element, {});
    mapping.tables_.push_back(std::move(tm));
    for (const std::string& child : pending_tables) {
      XUPD_RETURN_IF_ERROR(build(child, element));
    }
    return Status::OK();
  };

  XUPD_RETURN_IF_ERROR(build(root, ""));
  if (mapping.tables_.empty()) {
    return Status::InvalidArgument("DTD yielded no tables");
  }
  return mapping;
}

const TableMapping* Mapping::ForElement(std::string_view element) const {
  for (const TableMapping& t : tables_) {
    if (t.element == element) return &t;
  }
  return nullptr;
}

const TableMapping* Mapping::ForTable(std::string_view table) const {
  for (const TableMapping& t : tables_) {
    if (EqualsIgnoreCase(t.table, table)) return &t;
  }
  return nullptr;
}

std::vector<const TableMapping*> Mapping::ChildTables(
    std::string_view element) const {
  std::vector<const TableMapping*> out;
  for (const TableMapping& t : tables_) {
    if (t.parent_element == element) out.push_back(&t);
  }
  return out;
}

std::vector<const TableMapping*> Mapping::SubtreeTables(
    const TableMapping* t) const {
  std::vector<const TableMapping*> out{t};
  for (size_t i = 0; i < out.size(); ++i) {
    for (const TableMapping* child : ChildTables(out[i]->element)) {
      out.push_back(child);
    }
  }
  return out;
}

std::vector<const TableMapping*> Mapping::PathFromRoot(
    const TableMapping* t) const {
  std::vector<const TableMapping*> out;
  const TableMapping* cur = t;
  while (cur != nullptr) {
    out.insert(out.begin(), cur);
    if (cur->parent_element.empty()) break;
    cur = ForElement(cur->parent_element);
  }
  return out;
}

size_t Mapping::Depth() const {
  size_t depth = 0;
  for (const TableMapping& t : tables_) {
    depth = std::max(depth, PathFromRoot(&t).size());
  }
  return depth;
}

std::vector<std::string> Mapping::SchemaSql() const {
  std::vector<std::string> out;
  for (const TableMapping& t : tables_) {
    std::string sql = "CREATE TABLE " + t.table + " (id INTEGER, parentId INTEGER";
    for (const InlinedField& f : t.fields) {
      sql += ", " + f.column + " VARCHAR";
    }
    sql += ")";
    out.push_back(std::move(sql));
    out.push_back("CREATE INDEX idx_" + t.table + "_id ON " + t.table + " (id)");
    out.push_back("CREATE INDEX idx_" + t.table + "_pid ON " + t.table +
                  " (parentId)");
  }
  return out;
}

const InlinedField* Mapping::ResolveInlined(
    const TableMapping* t, const std::vector<std::string>& path,
    const std::string& attr) const {
  for (const InlinedField& f : t->fields) {
    if (f.path != path) continue;
    if (!attr.empty()) {
      if (f.kind == InlinedField::Kind::kAttribute && f.attr == attr) return &f;
    } else {
      if (f.kind == InlinedField::Kind::kPcdata) return &f;
    }
  }
  return nullptr;
}

}  // namespace xupd::shred
