// XmlObject: a binding to an XML *object* in the sense of §3.1/§4.2 of the
// paper — an element, an attribute as a whole, a single IDREF entry within an
// IDREFS list, or a PCDATA node. Path expressions and the XQuery-update
// executor pass these around; update primitives consume them.
#ifndef XUPD_XPATH_OBJECT_H_
#define XUPD_XPATH_OBJECT_H_

#include <cstddef>
#include <string>

#include "xml/document.h"
#include "xml/node.h"

namespace xupd::xpath {

struct XmlObject {
  enum class Kind {
    kNull,
    kElement,   ///< element = the element itself.
    kAttribute, ///< element = owner, name = attribute name.
    kRefEntry,  ///< element = owner, name = IDREFS name, index = entry index.
    kText,      ///< element = owner, text = the PCDATA node (stable handle).
  };

  Kind kind = Kind::kNull;
  xml::Element* element = nullptr;
  std::string name;
  size_t index = 0;
  xml::Text* text = nullptr;

  /// Position of this object within the step/FOR evaluation that produced it
  /// (0-based); backs the paper's index() function (Example 5).
  size_t binding_index = 0;

  static XmlObject Null() { return XmlObject{}; }
  static XmlObject OfElement(xml::Element* e) {
    XmlObject o;
    o.kind = Kind::kElement;
    o.element = e;
    return o;
  }
  static XmlObject OfAttribute(xml::Element* owner, std::string attr) {
    XmlObject o;
    o.kind = Kind::kAttribute;
    o.element = owner;
    o.name = std::move(attr);
    return o;
  }
  static XmlObject OfRefEntry(xml::Element* owner, std::string list, size_t i) {
    XmlObject o;
    o.kind = Kind::kRefEntry;
    o.element = owner;
    o.name = std::move(list);
    o.index = i;
    return o;
  }
  static XmlObject OfText(xml::Element* owner, xml::Text* node) {
    XmlObject o;
    o.kind = Kind::kText;
    o.element = owner;
    o.text = node;
    return o;
  }

  bool is_null() const { return kind == Kind::kNull; }
  bool is_element() const { return kind == Kind::kElement; }
  bool is_attribute() const { return kind == Kind::kAttribute; }
  bool is_ref_entry() const { return kind == Kind::kRefEntry; }
  bool is_text() const { return kind == Kind::kText; }

  /// Identity comparison (same underlying object, ignoring binding_index).
  bool SameObject(const XmlObject& other) const {
    return kind == other.kind && element == other.element &&
           name == other.name && index == other.index && text == other.text;
  }
};

/// The string value of an object: element -> concatenated direct PCDATA,
/// attribute -> value, IDREF entry -> target ID, text -> text value.
std::string StringValueOf(const XmlObject& obj);

}  // namespace xupd::xpath

#endif  // XUPD_XPATH_OBJECT_H_
