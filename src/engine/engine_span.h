// RAII observability spans for engine/store.cc operations (internal).
//
// The paper's figures attribute whole-operation cost (fig. 6/10: seconds per
// delete/insert strategy); the engine decomposes that further — how much of
// an operation was SQL statement execution, and how much of THAT was trigger
// cascade — by diffing the Database's db.exec_ns / db.trigger_ns registry
// counters across the span. Each finished span records an engine.<op>
// histogram sample plus one kEngineOp trace event.
#ifndef XUPD_ENGINE_ENGINE_SPAN_H_
#define XUPD_ENGINE_ENGINE_SPAN_H_

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "rdb/database.h"

namespace xupd::engine {

/// Spans one public store operation. `op` must be a string literal: the
/// trace ring keeps the pointer (see TraceEvent::detail).
class EngineSpan {
 public:
  EngineSpan(rdb::Database* db, const char* op)
      : db_(db),
        op_(op),
        exec_ns_(db->metrics().Counter("db.exec_ns")),
        trigger_ns_(db->metrics().Counter("db.trigger_ns")),
        t0_(MonotonicNanos()),
        exec0_(*exec_ns_),
        trigger0_(*trigger_ns_) {}
  EngineSpan(const EngineSpan&) = delete;
  EngineSpan& operator=(const EngineSpan&) = delete;
  ~EngineSpan() {
    const uint64_t dur = MonotonicNanos() - t0_;
    db_->metrics().GetHistogram(std::string("engine.") + op_)->Record(dur);
    TraceEvent ev{TraceEvent::Kind::kEngineOp, t0_, dur, *exec_ns_ - exec0_,
                  *trigger_ns_ - trigger0_, op_};
    span_.Annotate(&ev);
    db_->events().Record(ev);
  }

 private:
  rdb::Database* db_;
  const char* op_;
  std::atomic<uint64_t>* exec_ns_;
  std::atomic<uint64_t>* trigger_ns_;
  /// The op is the causal parent of every statement it issues: opened in
  /// the member list before t0_, so the thread-local context already points
  /// at this span when the operation body runs.
  trace::SpanScope span_;
  uint64_t t0_;
  uint64_t exec0_;
  uint64_t trigger0_;
};

/// Accumulates a scope's wall time into a registry counter — used to charge
/// ASR maintenance (engine.asr_ns) inside whatever operation runs it.
class ScopedNsCounter {
 public:
  explicit ScopedNsCounter(std::atomic<uint64_t>* counter)
      : counter_(counter), t0_(MonotonicNanos()) {}
  ScopedNsCounter(const ScopedNsCounter&) = delete;
  ScopedNsCounter& operator=(const ScopedNsCounter&) = delete;
  ~ScopedNsCounter() { *counter_ += MonotonicNanos() - t0_; }

 private:
  std::atomic<uint64_t>* counter_;
  uint64_t t0_;
};

}  // namespace xupd::engine

#endif  // XUPD_ENGINE_ENGINE_SPAN_H_
