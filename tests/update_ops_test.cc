// Tests for the §3.2 primitive operations and their semantic restrictions.
#include <gtest/gtest.h>

#include "test_util.h"
#include "update/ops.h"
#include "xml/serializer.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace xupd::update {
namespace {

using xpath::XmlObject;

class UpdateOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = xupd::testing::ParseBioDocument();
    exec_ = std::make_unique<UpdateExecutor>(doc_.get(),
                                             ExecutionModel::kOrdered);
  }

  XmlObject EvalOne(const std::string& path) {
    auto parsed = xpath::ParsePathString(path);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    xpath::Evaluator eval(doc_.get());
    auto result = eval.Eval(parsed.value(), {}, XmlObject::Null());
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->empty()) << path << " bound nothing";
    return result->front();
  }

  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<UpdateExecutor> exec_;
};

TEST_F(UpdateOpsTest, DeleteElement) {
  XmlObject title = EvalOne("document(\"b\")/paper/title");
  ASSERT_TRUE(exec_->Delete(title).ok());
  xpath::Evaluator eval(doc_.get());
  auto parsed = xpath::ParsePathString("document(\"b\")/paper/title");
  auto after = eval.Eval(parsed.value(), {}, XmlObject::Null());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
}

TEST_F(UpdateOpsTest, DeleteAttribute) {
  XmlObject cat = EvalOne("document(\"b\")/paper/@category");
  ASSERT_TRUE(exec_->Delete(cat).ok());
  EXPECT_EQ(doc_->FindById("Smith991231")->FindAttribute("category"), nullptr);
}

TEST_F(UpdateOpsTest, DeleteSingleRefPreservesRest) {
  XmlObject ref = EvalOne(
      "document(\"b\")//lab[@ID=\"lalab\"]/ref(managers,\"smith1\")");
  ASSERT_TRUE(exec_->Delete(ref).ok());
  const xml::RefList* managers =
      doc_->FindById("lalab")->FindRefList("managers");
  ASSERT_NE(managers, nullptr);
  EXPECT_EQ(managers->targets, (std::vector<std::string>{"jones1"}));
}

TEST_F(UpdateOpsTest, DeleteRootFails) {
  XmlObject root = XmlObject::OfElement(doc_->root());
  EXPECT_FALSE(exec_->Delete(root).ok());
}

TEST_F(UpdateOpsTest, DanglingReferencesAreAllowed) {
  // §4.2.1: deleting a referenced element leaves a dangling IDREF.
  XmlObject bio = EvalOne("document(\"b\")/db/biologist[@ID=\"smith1\"]");
  ASSERT_TRUE(exec_->Delete(bio).ok());
  const xml::RefList* managers =
      doc_->FindById("baselab")->FindRefList("managers");
  ASSERT_NE(managers, nullptr);
  EXPECT_EQ(managers->targets.front(), "smith1");  // dangles, by design
}

TEST_F(UpdateOpsTest, DeletedBindingCannotBeRenamed) {
  XmlObject title = EvalOne("document(\"b\")/paper/title");
  ASSERT_TRUE(exec_->Delete(title).ok());
  Status s = exec_->Rename(title, "headline");
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST_F(UpdateOpsTest, DescendantOfDeletedSubtreeIsDeleted) {
  XmlObject location = EvalOne("document(\"b\")//lab[@ID=\"baselab\"]/location");
  XmlObject city = EvalOne(
      "document(\"b\")//lab[@ID=\"baselab\"]/location/city");
  ASSERT_TRUE(exec_->Delete(location).ok());
  EXPECT_TRUE(exec_->IsDeleted(city));
  EXPECT_FALSE(exec_->Rename(city, "town").ok());
}

TEST_F(UpdateOpsTest, RenameElement) {
  XmlObject name = EvalOne("document(\"b\")//lab[@ID=\"lab2\"]/name");
  ASSERT_TRUE(exec_->Rename(name, "title").ok());
  EXPECT_EQ(doc_->FindById("lab2")->FindChildElement("title")->TextContent(),
            "PMBL");
}

TEST_F(UpdateOpsTest, RenameAttribute) {
  XmlObject age = EvalOne("document(\"b\")/db/biologist[@ID=\"jones1\"]/@age");
  ASSERT_TRUE(exec_->Rename(age, "years").ok());
  EXPECT_EQ(doc_->FindById("jones1")->FindAttribute("age"), nullptr);
  EXPECT_EQ(doc_->FindById("jones1")->FindAttribute("years")->value, "32");
}

TEST_F(UpdateOpsTest, RenameRefEntryRenamesWholeList) {
  // §3.2: renaming an individual IDREF renames the entire IDREFS.
  XmlObject ref = EvalOne(
      "document(\"b\")//lab[@ID=\"lalab\"]/ref(managers,\"smith1\")");
  ASSERT_TRUE(exec_->Rename(ref, "supervisors").ok());
  xml::Element* lalab = doc_->FindById("lalab");
  EXPECT_EQ(lalab->FindRefList("managers"), nullptr);
  ASSERT_NE(lalab->FindRefList("supervisors"), nullptr);
  EXPECT_EQ(lalab->FindRefList("supervisors")->targets.size(), 2u);
}

TEST_F(UpdateOpsTest, RenamePcdataFails) {
  XmlObject text = EvalOne("document(\"b\")//lab[@ID=\"lab2\"]/name/text()");
  EXPECT_FALSE(exec_->Rename(text, "x").ok());
}

TEST_F(UpdateOpsTest, InsertAttributeFailsOnExisting) {
  XmlObject paper = EvalOne("document(\"b\")/paper");
  Status s = exec_->Insert(paper, Content::MakeAttribute("category", "x"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(UpdateOpsTest, InsertReferenceExtendsList) {
  XmlObject lab = EvalOne("document(\"b\")/db/lab[@ID=\"baselab\"]");
  ASSERT_TRUE(
      exec_->Insert(lab, Content::MakeReference("managers", "jones1")).ok());
  EXPECT_EQ(doc_->FindById("baselab")->FindRefList("managers")->targets,
            (std::vector<std::string>{"smith1", "jones1"}));
}

TEST_F(UpdateOpsTest, InsertElementAppendsAtEnd) {
  XmlObject bio = EvalOne("document(\"b\")/db/biologist[@ID=\"smith1\"]");
  auto first = std::make_unique<xml::Element>("firstname");
  first->AppendText("Jeff");
  ASSERT_TRUE(exec_->Insert(bio, Content::MakeElement(std::move(first))).ok());
  xml::Element* smith = doc_->FindById("smith1");
  ASSERT_EQ(smith->child_count(), 2u);
  EXPECT_EQ(static_cast<xml::Element*>(smith->child(1))->name(), "firstname");
}

TEST_F(UpdateOpsTest, InsertPcdata) {
  XmlObject name = EvalOne("document(\"b\")//lab[@ID=\"lab2\"]/name");
  ASSERT_TRUE(exec_->Insert(name, Content::MakePcdata(" (Philly)")).ok());
  EXPECT_EQ(doc_->FindById("lab2")->FindChildElement("name")->TextContent(),
            "PMBL (Philly)");
}

TEST_F(UpdateOpsTest, InsertBeforeElement) {
  // Example 3: add a street element after the name.
  XmlObject name = EvalOne("document(\"b\")/db/lab[@ID=\"baselab\"]/name");
  auto street = std::make_unique<xml::Element>("street");
  street->AppendText("Oak");
  ASSERT_TRUE(
      exec_->InsertAfter(name, Content::MakeElement(std::move(street))).ok());
  xml::Element* lab = doc_->FindById("baselab");
  ASSERT_GE(lab->child_count(), 2u);
  EXPECT_EQ(static_cast<xml::Element*>(lab->child(1))->name(), "street");
}

TEST_F(UpdateOpsTest, InsertRefBeforeEntry) {
  // Example 3: add jones1 as the first manager.
  XmlObject sref = EvalOne(
      "document(\"b\")/db/lab[@ID=\"baselab\"]/ref(managers,\"smith1\")");
  ASSERT_TRUE(exec_->InsertBefore(sref, Content::MakePcdata("jones1")).ok());
  EXPECT_EQ(doc_->FindById("baselab")->FindRefList("managers")->targets,
            (std::vector<std::string>{"jones1", "smith1"}));
}

TEST_F(UpdateOpsTest, RefBindingSurvivesEarlierListEdits) {
  // Bind both entries of lalab's managers, delete the first, then delete
  // the second via its original index — position remapping must apply.
  XmlObject first = EvalOne(
      "document(\"b\")//lab[@ID=\"lalab\"]/ref(managers,\"smith1\")");
  XmlObject second = EvalOne(
      "document(\"b\")//lab[@ID=\"lalab\"]/ref(managers,\"jones1\")");
  ASSERT_EQ(second.index, 1u);
  ASSERT_TRUE(exec_->Delete(first).ok());
  ASSERT_TRUE(exec_->Delete(second).ok());
  EXPECT_EQ(doc_->FindById("lalab")->FindRefList("managers"), nullptr);
}

TEST_F(UpdateOpsTest, DoubleDeleteRefIsDeletedBindingError) {
  XmlObject ref = EvalOne(
      "document(\"b\")//lab[@ID=\"lalab\"]/ref(managers,\"smith1\")");
  ASSERT_TRUE(exec_->Delete(ref).ok());
  EXPECT_EQ(exec_->Delete(ref).code(), StatusCode::kConstraintViolation);
}

TEST_F(UpdateOpsTest, PositionalInsertRejectedInUnorderedModel) {
  UpdateExecutor unordered(doc_.get(), ExecutionModel::kUnordered);
  XmlObject name = EvalOne("document(\"b\")/db/lab[@ID=\"baselab\"]/name");
  auto street = std::make_unique<xml::Element>("street");
  EXPECT_FALSE(
      unordered.InsertBefore(name, Content::MakeElement(std::move(street)))
          .ok());
}

TEST_F(UpdateOpsTest, ReplaceElement) {
  // Example 4: replace the name with an appellation element.
  XmlObject name = EvalOne("document(\"b\")/db/lab[@ID=\"baselab\"]/name");
  auto appellation = std::make_unique<xml::Element>("appellation");
  appellation->AppendText("Fancy Lab");
  ASSERT_TRUE(
      exec_->Replace(name, Content::MakeElement(std::move(appellation))).ok());
  xml::Element* lab = doc_->FindById("baselab");
  EXPECT_EQ(lab->FindChildElement("name"), nullptr);
  ASSERT_NE(lab->FindChildElement("appellation"), nullptr);
  EXPECT_EQ(lab->FindChildElement("appellation")->TextContent(), "Fancy Lab");
  // Replacement occupies the original position (ordered model).
  EXPECT_EQ(lab->IndexOfChild(lab->FindChildElement("appellation")), 0u);
}

TEST_F(UpdateOpsTest, ReplaceRefRequiresSameLabel) {
  XmlObject ref = EvalOne(
      "document(\"b\")/db/lab[@ID=\"baselab\"]/ref(managers,\"smith1\")");
  EXPECT_FALSE(
      exec_->Replace(ref, Content::MakeReference("owners", "jones1")).ok());
  ASSERT_TRUE(
      exec_->Replace(ref, Content::MakeReference("managers", "jones1")).ok());
  EXPECT_EQ(doc_->FindById("baselab")->FindRefList("managers")->targets,
            (std::vector<std::string>{"jones1"}));
}

TEST_F(UpdateOpsTest, ReplaceAttribute) {
  XmlObject cat = EvalOne("document(\"b\")/paper/@category");
  ASSERT_TRUE(
      exec_->Replace(cat, Content::MakeAttribute("category", "biology")).ok());
  EXPECT_EQ(doc_->FindById("Smith991231")->FindAttribute("category")->value,
            "biology");
}

TEST_F(UpdateOpsTest, ReplaceDeletedBindingFails) {
  XmlObject name = EvalOne("document(\"b\")/db/lab[@ID=\"baselab\"]/name");
  ASSERT_TRUE(exec_->Delete(name).ok());
  auto repl = std::make_unique<xml::Element>("name");
  EXPECT_EQ(
      exec_->Replace(name, Content::MakeElement(std::move(repl))).code(),
      StatusCode::kConstraintViolation);
}

TEST_F(UpdateOpsTest, UnorderedReplaceAppends) {
  UpdateExecutor unordered(doc_.get(), ExecutionModel::kUnordered);
  XmlObject name = EvalOne("document(\"b\")/db/lab[@ID=\"baselab\"]/name");
  auto repl = std::make_unique<xml::Element>("appellation");
  repl->AppendText("Fancy");
  ASSERT_TRUE(
      unordered.Replace(name, Content::MakeElement(std::move(repl))).ok());
  xml::Element* lab = doc_->FindById("baselab");
  EXPECT_EQ(lab->FindChildElement("name"), nullptr);
  EXPECT_NE(lab->FindChildElement("appellation"), nullptr);
}

TEST_F(UpdateOpsTest, DeletedSubtreeUsableAsContent) {
  // Delete a subtree, then insert a copy of it elsewhere (content use of a
  // deleted binding is allowed).
  XmlObject location = EvalOne("document(\"b\")//lab[@ID=\"baselab\"]/location");
  ASSERT_TRUE(exec_->Delete(location).ok());
  XmlObject lab2 = XmlObject::OfElement(doc_->FindById("lab2"));
  ASSERT_TRUE(
      exec_->Insert(lab2, Content::MakeElement(location.element->Clone()))
          .ok());
  EXPECT_NE(doc_->FindById("lab2")->FindChildElement("location"), nullptr);
}

}  // namespace
}  // namespace xupd::update
