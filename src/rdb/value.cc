#include "rdb/value.h"

#include <new>

#include "common/str_util.h"

namespace xupd::rdb {

StrRep* StrRep::New(std::string_view s) {
  auto* rep = static_cast<StrRep*>(::operator new(sizeof(StrRep) + s.size()));
  new (&rep->refs) std::atomic<uint32_t>(1);
  rep->len = static_cast<uint32_t>(s.size());
  std::memcpy(rep->data(), s.data(), s.size());
  return rep;
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;  // NULLs sort first (outer-union ORDER BY relies
  if (other.is_null()) return 1;  // on parent rows preceding child rows).
  ValueType t = type(), ot = other.type();
  if (t == ValueType::kInt && ot == ValueType::kInt) {
    int64_t a = AsInt(), b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (t == ValueType::kString && ot == ValueType::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed: try numeric coercion of the string side.
  int64_t coerced;
  if (t == ValueType::kString && ParseInt64(AsString(), &coerced)) {
    int64_t b = other.AsInt();
    return coerced < b ? -1 : (coerced > b ? 1 : 0);
  }
  if (ot == ValueType::kString && ParseInt64(other.AsString(), &coerced)) {
    int64_t a = AsInt();
    return a < coerced ? -1 : (a > coerced ? 1 : 0);
  }
  std::string lhs = ToString();
  std::string rhs = other.ToString();
  int c = lhs.compare(rhs);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      return std::hash<int64_t>{}(AsInt());
    case ValueType::kString: {
      // Hash strings that look like integers identically to the integer so
      // mixed-type joins work with hash indexes.
      std::string_view s = AsString();
      int64_t coerced;
      if (ParseInt64(s, &coerced)) return std::hash<int64_t>{}(coerced);
      return std::hash<std::string_view>{}(s);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kString:
      return std::string(AsString());
  }
  return "";
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kString:
      return SqlQuote(AsString());
  }
  return "NULL";
}

}  // namespace xupd::rdb
