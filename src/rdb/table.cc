#include "rdb/table.h"

#include "rdb/txn.h"

namespace xupd::rdb {

Result<size_t> Table::Insert(Row row) {
  if (row.size() != schema_.column_count()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        schema_.name() + "' (" + std::to_string(schema_.column_count()) + ")");
  }
  size_t rowid = rows_.size();
  for (const auto& index : indexes_) {
    index->Insert(row[static_cast<size_t>(index->column())], rowid);
  }
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  if (txn_ != nullptr) txn_->LogInsert(this, rowid);
  return rowid;
}

void Table::LoadSlot(Row row, bool live) {
  rows_.push_back(std::move(row));
  live_.push_back(live);
  if (live) ++live_count_;
}

Status Table::Delete(size_t rowid) {
  if (rowid >= rows_.size() || !live_[rowid]) {
    return Status::NotFound("row already deleted or out of range");
  }
  for (const auto& index : indexes_) {
    index->Erase(rows_[rowid][static_cast<size_t>(index->column())], rowid);
  }
  live_[rowid] = false;
  --live_count_;
  if (txn_ != nullptr) txn_->LogDelete(this, rowid);
  return Status::OK();
}

Status Table::SetColumn(size_t rowid, int column, Value v) {
  if (rowid >= rows_.size() || !live_[rowid]) {
    return Status::NotFound("row deleted or out of range");
  }
  if (txn_ != nullptr) {
    txn_->LogUpdate(this, rowid, column,
                    rows_[rowid][static_cast<size_t>(column)], v);
  }
  for (const auto& index : indexes_) {
    if (index->column() == column) {
      index->Erase(rows_[rowid][static_cast<size_t>(column)], rowid);
      index->Insert(v, rowid);
    }
  }
  rows_[rowid][static_cast<size_t>(column)] = std::move(v);
  return Status::OK();
}

void Table::Clear() {
  rows_.clear();
  live_.clear();
  live_count_ = 0;
  for (const auto& index : indexes_) index->Clear();
}

void Table::UndoInsert(size_t rowid) {
  if (rowid >= rows_.size() || !live_[rowid]) return;
  for (const auto& index : indexes_) {
    index->Erase(rows_[rowid][static_cast<size_t>(index->column())], rowid);
  }
  live_[rowid] = false;
  --live_count_;
  if (rowid + 1 == rows_.size()) {
    rows_.pop_back();
    live_.pop_back();
  }
}

void Table::UndoDelete(size_t rowid) {
  if (rowid >= rows_.size() || live_[rowid]) return;
  live_[rowid] = true;
  ++live_count_;
  for (const auto& index : indexes_) {
    index->Insert(rows_[rowid][static_cast<size_t>(index->column())], rowid);
  }
}

void Table::UndoSetColumn(size_t rowid, int column, const Value& v) {
  if (rowid >= rows_.size()) return;
  for (const auto& index : indexes_) {
    if (index->column() == column) {
      index->Erase(rows_[rowid][static_cast<size_t>(column)], rowid);
      index->Insert(v, rowid);
    }
  }
  rows_[rowid][static_cast<size_t>(column)] = v;
}

Status Table::CreateIndex(const std::string& index_name, int column) {
  if (FindIndexByName(index_name) != nullptr) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  if (column < 0 || static_cast<size_t>(column) >= schema_.column_count()) {
    return Status::InvalidArgument("bad index column");
  }
  auto index = std::make_unique<HashIndex>(index_name, column);
  for (size_t rowid = 0; rowid < rows_.size(); ++rowid) {
    if (live_[rowid]) {
      index->Insert(rows_[rowid][static_cast<size_t>(column)], rowid);
    }
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::TryDropIndex(std::string_view index_name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (EqualsIgnoreCase((*it)->name(), index_name)) {
      indexes_.erase(it);
      return true;
    }
  }
  return false;
}

Status Table::DropIndex(const std::string& index_name) {
  if (TryDropIndex(index_name)) return Status::OK();
  return Status::NotFound("index '" + index_name + "' not found");
}

const HashIndex* Table::FindIndexOnColumn(int column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

const HashIndex* Table::FindIndexByName(const std::string& name) const {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name(), name)) return index.get();
  }
  return nullptr;
}

}  // namespace xupd::rdb
