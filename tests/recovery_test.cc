// Durability subsystem tests (rdb/wal.h, rdb/snapshot.h): WAL unit
// semantics (commit / rollback / savepoints / autocommit), snapshot
// checkpoints and WAL truncation, DDL replay, corrupt-file handling
// (torn tails, bad CRC frames, version mismatches, stale epochs), and the
// engine-level crash-recovery property: for a failure injected at EVERY
// statement boundary of every delete/insert/copy strategy, reopening the
// surviving files reproduces exactly the last committed pre-op or post-op
// state — element tables, hash indexes, tombstones, next-id and the ASR.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/store.h"
#include "rdb/database.h"
#include "test_util.h"
#include "workload/synthetic.h"
#include "xml/serializer.h"

namespace xupd {
namespace {

using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

// ---------------------------------------------------------------------------
// Helpers

/// A scratch data directory, removed (with its contents) on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/xupd_recovery_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p == nullptr ? "/tmp/xupd_recovery_fallback" : p;
  }
  ~TempDir() {
    DIR* d = ::opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Renders the full durable state of a database — every durable table's
/// schema, every row slot (with liveness), index definitions, and the
/// next-id counter — as one comparable string.
std::string DumpDurableState(const rdb::Database& db) {
  std::string out = "next_id=" + std::to_string(db.next_id()) + "\n";
  for (const std::string& name : db.TableNames()) {
    const rdb::Table* t = db.FindTable(name);
    if (t == nullptr || !t->durable()) continue;
    out += "table " + t->schema().name() + " (";
    for (const auto& c : t->schema().columns()) out += c.name + ",";
    out += ")\n";
    for (size_t rowid = 0; rowid < t->capacity(); ++rowid) {
      out += t->is_live(rowid) ? "  live " : "  dead ";
      for (const rdb::Value& v : t->row_span(rowid)) out += v.ToString() + "|";
      out += "\n";
    }
    for (const auto& index : t->indexes()) {
      out += "  index " + index->name() + " col " +
             std::to_string(index->column()) + " size " +
             std::to_string(index->size()) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// rdb layer: WAL unit semantics

class RdbRecoveryTest : public ::testing::Test {
 protected:
  void Must(rdb::Database* db, const std::string& sql) {
    Status s = db->Execute(sql);
    ASSERT_TRUE(s.ok()) << sql << ": " << s;
  }
  void Setup(rdb::Database* db) {
    ASSERT_TRUE(db->Open(dir_.path()).ok());
    Must(db, "CREATE TABLE t (id INTEGER, name VARCHAR)");
    Must(db, "CREATE INDEX idx_t_id ON t (id)");
  }
  int64_t Count(rdb::Database* db, const std::string& where = "") {
    auto r = db->ExecuteQuery("SELECT COUNT(*) FROM t" +
                              (where.empty() ? "" : " WHERE " + where));
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  }

  TempDir dir_;
};

TEST_F(RdbRecoveryTest, FreshDirectoryOpensEmptyAndReopensRecovered) {
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir_.path()).ok());
    EXPECT_FALSE(db.recovered());
    EXPECT_TRUE(db.durability_open());
    Must(&db, "CREATE TABLE t (id INTEGER, name VARCHAR)");
    Must(&db, "INSERT INTO t VALUES (1, 'a'), (2, 'b')");
    EXPECT_GT(db.stats().wal_appends, 0u);
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_TRUE(db2.recovered());
  EXPECT_GT(db2.stats().recovery_replayed, 0u);
  EXPECT_EQ(Count(&db2), 2);
}

TEST_F(RdbRecoveryTest, OnlyCommittedTransactionsSurvive) {
  std::string committed;
  {
    rdb::Database db;
    Setup(&db);
    Must(&db, "BEGIN");
    Must(&db, "INSERT INTO t VALUES (1, 'committed')");
    Must(&db, "COMMIT");
    committed = DumpDurableState(db);
    Must(&db, "BEGIN");
    Must(&db, "INSERT INTO t VALUES (2, 'open')");
    // Destroyed with the transaction still open: its redo is pending, never
    // written — crash or clean close, an uncommitted scope must not persist.
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(Count(&db2), 1);
  EXPECT_EQ(DumpDurableState(db2), committed);
}

TEST_F(RdbRecoveryTest, RolledBackWorkWritesNoRedo) {
  {
    rdb::Database db;
    Setup(&db);
    uint64_t appends_before = db.stats().wal_appends;
    Must(&db, "BEGIN");
    Must(&db, "INSERT INTO t VALUES (1, 'x')");
    Must(&db, "UPDATE t SET name = 'y' WHERE id = 1");
    Must(&db, "ROLLBACK");
    EXPECT_EQ(db.stats().wal_appends, appends_before);
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(Count(&db2), 0);
}

TEST_F(RdbRecoveryTest, SecondOpenOnALiveDirectoryIsRejected) {
  rdb::Database db;
  Setup(&db);
  // Two writers on one WAL would truncate each other's committed frames;
  // the directory flock turns that into a clean "in use" error.
  rdb::Database intruder;
  Status s = intruder.Open(dir_.path());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("in use"), std::string::npos) << s;
  // The first database keeps working; the lock dies with it.
  Must(&db, "INSERT INTO t VALUES (1, 'still-mine')");
}

TEST_F(RdbRecoveryTest, SavepointRollbackTruncatesRedoInLockstep) {
  std::string expected;
  {
    rdb::Database db;
    Setup(&db);
    Must(&db, "BEGIN");
    Must(&db, "INSERT INTO t VALUES (1, 'keep')");
    Must(&db, "SAVEPOINT sp");
    Must(&db, "INSERT INTO t VALUES (2, 'drop')");
    Must(&db, "DELETE FROM t WHERE id = 1");
    Must(&db, "ROLLBACK TO sp");
    Must(&db, "RELEASE sp");  // ROLLBACK TO keeps the savepoint open
    Must(&db, "INSERT INTO t VALUES (3, 'keep2')");
    Must(&db, "COMMIT");
    ASSERT_FALSE(db.in_transaction());
    EXPECT_EQ(Count(&db), 2);
    expected = DumpDurableState(db);
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(Count(&db2, "id = 1"), 1);
  EXPECT_EQ(Count(&db2, "id = 2"), 0);
  EXPECT_EQ(Count(&db2, "id = 3"), 1);
  EXPECT_EQ(DumpDurableState(db2), expected);
}

TEST_F(RdbRecoveryTest, TombstonesAndNextIdReplayExactly) {
  std::string expected;
  {
    rdb::Database db;
    Setup(&db);
    Must(&db, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')");
    Must(&db, "DELETE FROM t WHERE id = 2");
    Must(&db, "UPDATE t SET name = 'A' WHERE id = 1");
    db.set_next_id(777);
    Must(&db, "INSERT INTO t VALUES (4, 'd')");  // commits carry next_id
    expected = DumpDurableState(db);
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(db2.next_id(), 777);
  EXPECT_EQ(DumpDurableState(db2), expected);
  // The tombstoned slot must hold its position: a post-recovery insert gets
  // the next fresh rowid, exactly as it would have pre-crash.
  rdb::Table* t = db2.FindTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->capacity(), 4u);
  EXPECT_EQ(t->live_count(), 3u);
}

TEST_F(RdbRecoveryTest, DdlAndTriggersReplay) {
  std::string expected;
  {
    rdb::Database db;
    Setup(&db);
    Must(&db, "CREATE TABLE child (id INTEGER, parentId INTEGER)");
    Must(&db,
         "CREATE TRIGGER trg_t AFTER DELETE ON t FOR EACH ROW BEGIN "
         "DELETE FROM child WHERE parentId = OLD.id; END");
    Must(&db, "INSERT INTO t VALUES (1, 'a'), (2, 'b')");
    Must(&db, "INSERT INTO child VALUES (10, 1), (11, 2)");
    expected = DumpDurableState(db);
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(DumpDurableState(db2), expected);
  // The recovered trigger must actually fire.
  Must(&db2, "DELETE FROM t WHERE id = 1");
  auto r = db2.ExecuteQuery("SELECT COUNT(*) FROM child");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(RdbRecoveryTest, CheckpointTruncatesWalAndRecoversFromSnapshot) {
  std::string expected;
  {
    rdb::Database db;
    Setup(&db);
    for (int i = 0; i < 50; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", 'x')");
    }
    uint64_t wal_size_before = ReadFile(dir_.path() + "/wal.xupd").size();
    ASSERT_TRUE(db.Checkpoint().ok());
    EXPECT_EQ(db.stats().checkpoints, 1u);
    EXPECT_LT(ReadFile(dir_.path() + "/wal.xupd").size(), wal_size_before);
    Must(&db, "INSERT INTO t VALUES (100, 'post-checkpoint')");
    expected = DumpDurableState(db);
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(DumpDurableState(db2), expected);
  // Only the post-checkpoint records replay; the 50 pre-checkpoint inserts
  // come from the snapshot.
  EXPECT_LT(db2.stats().recovery_replayed, 10u);
  EXPECT_GT(db2.stats().recovery_replayed, 0u);
  EXPECT_EQ(Count(&db2), 51);
}

TEST_F(RdbRecoveryTest, CheckpointInsideTransactionIsRejected) {
  rdb::Database db;
  Setup(&db);
  Must(&db, "BEGIN");
  Must(&db, "INSERT INTO t VALUES (1, 'open')");
  Status s = db.Checkpoint();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  Must(&db, "COMMIT");
  EXPECT_TRUE(db.Checkpoint().ok());
}

TEST_F(RdbRecoveryTest, AutocommitStatementsPersistWithoutExplicitTxn) {
  {
    rdb::Database db;
    Setup(&db);
    Must(&db, "INSERT INTO t VALUES (1, 'a')");
    Must(&db, "UPDATE t SET name = 'z' WHERE id = 1");
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  auto r = db2.ExecuteQuery("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "z");
}

TEST_F(RdbRecoveryTest, DirectScratchTablesAreEphemeral) {
  {
    rdb::Database db;
    Setup(&db);
    auto scratch = db.CreateTableDirect(
        rdb::TableSchema("scratch", {{"id", rdb::ColumnType::kInteger}}),
        /*transactional=*/false);
    ASSERT_TRUE(scratch.ok());
    ASSERT_TRUE(db.InsertDirect(scratch.value(), {rdb::Value::Int(1)}).ok());
    Must(&db, "INSERT INTO t VALUES (1, 'real')");
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(db2.FindTable("scratch"), nullptr);
  EXPECT_EQ(Count(&db2), 1);
}

TEST_F(RdbRecoveryTest, DroppingDurableTableDirectInsideTxnIsRejected) {
  {
    rdb::Database db;
    Setup(&db);
    ASSERT_TRUE(db.Begin().ok());
    Status s = db.DropTableDirect("t");
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(db.Commit().ok());
    EXPECT_TRUE(db.DropTableDirect("t").ok());
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir_.path()).ok());
  EXPECT_EQ(db2.FindTable("t"), nullptr);
}

// ---------------------------------------------------------------------------
// Corrupt-file handling

class WalCorruptionTest : public RdbRecoveryTest {
 protected:
  /// Builds a WAL of committed units (two DDL units + `units` single-insert
  /// units) and returns the state dump after EVERY unit boundary, index 0 =
  /// the empty database — truncating the log anywhere must land on one of
  /// these.
  std::vector<std::string> BuildUnits(int units) {
    std::vector<std::string> states;
    rdb::Database db;
    (void)db.Open(dir_.path());
    states.push_back(DumpDurableState(db));
    (void)db.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)");
    states.push_back(DumpDurableState(db));
    (void)db.Execute("CREATE INDEX idx_t_id ON t (id)");
    states.push_back(DumpDurableState(db));
    for (int i = 0; i < units; ++i) {
      (void)db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                       ", 'u')");
      states.push_back(DumpDurableState(db));
    }
    return states;
  }
};

TEST_F(WalCorruptionTest, TruncatedTailRecoversACommittedPrefix) {
  std::vector<std::string> states = BuildUnits(8);
  std::string wal = ReadFile(dir_.path() + "/wal.xupd");
  ASSERT_GT(wal.size(), 64u);
  // Chop the WAL at every 7th byte: recovery must always land on exactly
  // one of the committed states — never an error, never a torn mixture.
  for (size_t cut = 0; cut <= wal.size(); cut += 7) {
    WriteFile(dir_.path() + "/wal.xupd", wal.substr(0, cut));
    rdb::Database db;
    Status s = db.Open(dir_.path());
    ASSERT_TRUE(s.ok()) << "cut at " << cut << ": " << s;
    std::string got = DumpDurableState(db);
    bool is_prefix_state = false;
    for (const std::string& state : states) {
      if (got == state) {
        is_prefix_state = true;
        break;
      }
    }
    EXPECT_TRUE(is_prefix_state) << "cut at " << cut
                                 << " produced a non-prefix state:\n" << got;
    // The writer truncated the torn tail; put the full log back for the
    // next cut.
    WriteFile(dir_.path() + "/wal.xupd", wal);
  }
}

TEST_F(WalCorruptionTest, BadCrcFrameEndsTheLogAtTheLastGoodCommit) {
  std::vector<std::string> states = BuildUnits(8);
  std::string wal = ReadFile(dir_.path() + "/wal.xupd");
  // Flip one byte somewhere in the middle of the frame stream.
  std::string corrupted = wal;
  size_t at = 20 + (wal.size() - 20) / 2;
  corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5A);
  WriteFile(dir_.path() + "/wal.xupd", corrupted);
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir_.path()).ok());
  std::string got = DumpDurableState(db);
  bool is_prefix_state = false;
  size_t which = 0;
  for (size_t i = 0; i < states.size(); ++i) {
    if (got == states[i]) {
      is_prefix_state = true;
      which = i;
      break;
    }
  }
  EXPECT_TRUE(is_prefix_state) << "corruption produced a non-prefix state";
  EXPECT_LT(which, states.size() - 1);  // the tail after the flip is gone
}

TEST_F(WalCorruptionTest, WalBitFlipSweepRecoversAPrefixOrFailsCleanly) {
  // Exhaustive corruption sweep: flip one byte at EVERY offset of the WAL.
  // Whatever the flip hits — magic, version, epoch, frame length, CRC,
  // payload — recovery must either land on a committed prefix state (with
  // the integrity scrub passing) or fail with a clean, described error.
  // Garbage states and crashes are the only unacceptable outcomes.
  std::vector<std::string> states = BuildUnits(4);
  std::string wal = ReadFile(dir_.path() + "/wal.xupd");
  ASSERT_GT(wal.size(), 20u);
  for (size_t at = 0; at < wal.size(); ++at) {
    std::string corrupted = wal;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5A);
    WriteFile(dir_.path() + "/wal.xupd", corrupted);
    rdb::Database db;
    Status s = db.Open(dir_.path());
    if (s.ok()) {
      std::string got = DumpDurableState(db);
      bool is_prefix_state = false;
      for (const std::string& state : states) {
        if (got == state) {
          is_prefix_state = true;
          break;
        }
      }
      EXPECT_TRUE(is_prefix_state)
          << "flip at byte " << at << " produced a non-prefix state";
      std::vector<std::string> v = db.VerifyIntegrity();
      EXPECT_TRUE(v.empty()) << "flip at byte " << at << ": " << v[0];
    } else {
      EXPECT_FALSE(s.message().empty()) << "flip at byte " << at;
    }
    // The writer truncated the torn tail; put the full log back.
    WriteFile(dir_.path() + "/wal.xupd", wal);
  }
}

TEST_F(WalCorruptionTest, SnapshotBitFlipSweepNeverRecoversGarbage) {
  BuildUnits(2);
  std::string at_checkpoint;
  std::string final_state;
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir_.path()).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
    at_checkpoint = DumpDurableState(db);
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (100, 'post')").ok());
    final_state = DumpDurableState(db);
  }
  std::string snap = ReadFile(dir_.path() + "/snapshot.xupd");
  std::string wal = ReadFile(dir_.path() + "/wal.xupd");
  ASSERT_FALSE(snap.empty());
  for (size_t at = 0; at < snap.size(); ++at) {
    std::string corrupted = snap;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5A);
    WriteFile(dir_.path() + "/snapshot.xupd", corrupted);
    rdb::Database db;
    Status s = db.Open(dir_.path());
    if (s.ok()) {
      // A flip the CRC does not cover (e.g. the epoch field) may demote the
      // WAL to stale; the only legal outcomes are the exact checkpoint or
      // final states — never a mixture.
      std::string got = DumpDurableState(db);
      EXPECT_TRUE(got == final_state || got == at_checkpoint)
          << "flip at byte " << at << " produced a garbage state";
    } else {
      EXPECT_FALSE(s.message().empty()) << "flip at byte " << at;
    }
    WriteFile(dir_.path() + "/snapshot.xupd", snap);
    WriteFile(dir_.path() + "/wal.xupd", wal);
  }
}

TEST_F(WalCorruptionTest, WalVersionMismatchIsACleanError) {
  BuildUnits(2);
  std::string wal = ReadFile(dir_.path() + "/wal.xupd");
  wal[8] = 99;  // format version field (u32 LE after the 8-byte magic)
  WriteFile(dir_.path() + "/wal.xupd", wal);
  rdb::Database db;
  Status s = db.Open(dir_.path());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version mismatch"), std::string::npos) << s;
}

TEST_F(WalCorruptionTest, SnapshotVersionMismatchIsACleanError) {
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir_.path()).ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  std::string snap = ReadFile(dir_.path() + "/snapshot.xupd");
  ASSERT_FALSE(snap.empty());
  snap[8] = 99;  // format version field
  WriteFile(dir_.path() + "/snapshot.xupd", snap);
  rdb::Database db;
  Status s = db.Open(dir_.path());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version mismatch"), std::string::npos) << s;
}

TEST_F(WalCorruptionTest, CorruptSnapshotFailsItsCrcCheckCleanly) {
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir_.path()).ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  std::string snap = ReadFile(dir_.path() + "/snapshot.xupd");
  snap[snap.size() / 2] = static_cast<char>(snap[snap.size() / 2] ^ 0xFF);
  WriteFile(dir_.path() + "/snapshot.xupd", snap);
  rdb::Database db;
  Status s = db.Open(dir_.path());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s;
}

TEST_F(WalCorruptionTest, StaleEpochWalIsIgnoredAfterCheckpoint) {
  std::string expected;
  std::string old_wal;
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir_.path()).ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
    old_wal = ReadFile(dir_.path() + "/wal.xupd");  // epoch 1
    ASSERT_TRUE(db.Checkpoint().ok());              // snapshot epoch 2
    expected = DumpDurableState(db);
  }
  // Simulate a crash between the snapshot rename and the WAL reset: the
  // old epoch-1 WAL is still on disk. Its records are all contained in the
  // snapshot; replaying them would double-apply.
  WriteFile(dir_.path() + "/wal.xupd", old_wal);
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir_.path()).ok());
  EXPECT_EQ(db.stats().recovery_replayed, 0u);
  EXPECT_EQ(DumpDurableState(db), expected);
}

// ---------------------------------------------------------------------------
// Engine layer: reopen-identical across strategies, and the crash-injection
// acceptance property.

workload::GeneratedDoc MakeDoc() {
  workload::SyntheticSpec spec;
  spec.scaling_factor = 6;
  spec.depth = 3;
  spec.fanout = 2;
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  EXPECT_TRUE(gen.ok());
  return std::move(gen).value();
}

std::unique_ptr<RelationalStore> MakeDurableStore(
    const workload::GeneratedDoc& gen, const std::string& dir,
    DeleteStrategy del, InsertStrategy ins, bool load) {
  RelationalStore::Options options;
  options.delete_strategy = del;
  options.insert_strategy = ins;
  options.durability = true;
  options.data_dir = dir;
  options.sync_mode = rdb::SyncMode::kNone;  // tests survive process exit
  auto store = RelationalStore::Create(gen.dtd, options);
  EXPECT_TRUE(store.ok()) << store.status();
  if (!store.ok()) return nullptr;
  if (load && !store.value()->recovered()) {
    Status s = store.value()->Load(*gen.doc);
    EXPECT_TRUE(s.ok()) << s;
  }
  return std::move(store).value();
}

std::string SerializeStore(RelationalStore* store) {
  auto doc = store->Reconstruct();
  EXPECT_TRUE(doc.ok()) << doc.status();
  return doc.ok() ? xml::Serialize(**doc) : std::string();
}

using EngineOp = std::function<Status(RelationalStore*)>;

struct StrategyOp {
  const char* name;
  DeleteStrategy del = DeleteStrategy::kPerTupleTrigger;
  InsertStrategy ins = InsertStrategy::kTable;
  EngineOp op;
};

std::vector<StrategyOp> AllStrategyOps() {
  std::vector<StrategyOp> ops;
  const DeleteStrategy dels[] = {
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kCascade, DeleteStrategy::kAsr};
  for (DeleteStrategy d : dels) {
    ops.push_back({"bulk-delete", d, InsertStrategy::kTable,
                   [](RelationalStore* s) {
                     return s->DeleteWhere("n2", "v2 > 500000");
                   }});
  }
  ops.push_back({"delete-by-ids", DeleteStrategy::kPerTupleTrigger,
                 InsertStrategy::kTable, [](RelationalStore* s) -> Status {
                   auto ids = s->SelectIds("n2", "v2 <= 500000");
                   if (!ids.ok()) return ids.status();
                   return s->DeleteByIds("n2", *ids);
                 }});
  const InsertStrategy inss[] = {InsertStrategy::kTuple,
                                 InsertStrategy::kTable, InsertStrategy::kAsr};
  for (InsertStrategy i : inss) {
    ops.push_back({"bulk-copy", DeleteStrategy::kCascade, i,
                   [](RelationalStore* s) {
                     return s->CopySubtreesWhere("n2", "v2 < 300000",
                                                 s->root_id());
                   }});
  }
  return ops;
}

TEST(EngineRecoveryTest, ReopenedStoreIsIdenticalAcrossAllStrategies) {
  workload::GeneratedDoc gen = MakeDoc();
  for (const StrategyOp& sop : AllStrategyOps()) {
    SCOPED_TRACE(std::string(sop.name) + " del=" + ToString(sop.del) +
                 " ins=" + ToString(sop.ins));
    TempDir dir;
    std::string expected_state;
    std::string expected_xml;
    {
      auto store = MakeDurableStore(gen, dir.path(), sop.del, sop.ins, true);
      ASSERT_NE(store, nullptr);
      ASSERT_FALSE(store->recovered());
      Status s = sop.op(store.get());
      ASSERT_TRUE(s.ok()) << s;
      expected_state = DumpDurableState(*store->db());
      expected_xml = SerializeStore(store.get());
    }
    auto reopened = MakeDurableStore(gen, dir.path(), sop.del, sop.ins, true);
    ASSERT_NE(reopened, nullptr);
    ASSERT_TRUE(reopened->recovered());
    // Element tables, hash indexes, tombstones, next-id, the ASR and the
    // trigger-maintained child tables all come back bit-for-bit.
    EXPECT_EQ(DumpDurableState(*reopened->db()), expected_state);
    EXPECT_EQ(SerializeStore(reopened.get()), expected_xml);
    // Both scrub layers must find a recovered store indistinguishable from
    // a freshly built one.
    std::vector<std::string> iv = reopened->db()->VerifyIntegrity();
    EXPECT_TRUE(iv.empty()) << iv[0];
    std::vector<std::string> sv = reopened->VerifyStore();
    EXPECT_TRUE(sv.empty()) << sv[0];
  }
}

TEST(EngineRecoveryTest, ConstructedInsertAndXQueryUpdateSurviveReopen) {
  auto dtd = testing::MustParseDtd(testing::kCustomerDtd);
  auto doc = testing::MustParse(testing::kCustomerXml);
  TempDir dir;
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerTupleTrigger;
  options.insert_strategy = InsertStrategy::kTable;
  options.durability = true;
  options.data_dir = dir.path();
  options.sync_mode = rdb::SyncMode::kBatched;
  std::string expected_state;
  std::string expected_xml;
  {
    auto store = RelationalStore::Create(dtd, options);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(store.value()->Load(*doc).ok());
    Status xq = store.value()->ExecuteXQueryUpdate(R"(
      FOR $o IN document("custdb.xml")//Order[Status="ready"]
      UPDATE $o { INSERT <Status>suspended</Status> })");
    ASSERT_TRUE(xq.ok()) << xq;
    expected_state = DumpDurableState(*store.value()->db());
    expected_xml = SerializeStore(store.value().get());
  }
  auto reopened = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_TRUE(reopened.value()->recovered());
  EXPECT_EQ(DumpDurableState(*reopened.value()->db()), expected_state);
  EXPECT_EQ(SerializeStore(reopened.value().get()), expected_xml);
}

/// Counts the statements one clean run of `op` issues (including trigger
/// bodies), so the injection loop can hit every boundary.
int64_t CountStatements(const workload::GeneratedDoc& gen,
                        const StrategyOp& sop) {
  TempDir dir;
  auto store = MakeDurableStore(gen, dir.path(), sop.del, sop.ins, true);
  EXPECT_NE(store, nullptr);
  rdb::Stats before = store->stats();
  Status s = sop.op(store.get());
  EXPECT_TRUE(s.ok()) << s;
  rdb::Stats d = store->stats().Delta(before);
  return static_cast<int64_t>(d.statements + d.trigger_statements);
}

TEST(EngineRecoveryTest, CrashInjectionAtEveryStatementBoundary) {
  // The acceptance property: for a failure at EVERY statement boundary of
  // every strategy, reopening the surviving files reproduces exactly the
  // last committed state — the pre-op snapshot when the operation aborted,
  // the post-op state once it ran to completion.
  workload::GeneratedDoc gen = MakeDoc();
  for (const StrategyOp& sop : AllStrategyOps()) {
    SCOPED_TRACE(std::string(sop.name) + " del=" + ToString(sop.del) +
                 " ins=" + ToString(sop.ins));
    int64_t statements = CountStatements(gen, sop);
    ASSERT_GT(statements, 0);
    for (int64_t k = 0; k <= statements; ++k) {
      TempDir dir;
      std::string pre_op;
      std::string post_op;
      bool completed = false;
      {
        auto store = MakeDurableStore(gen, dir.path(), sop.del, sop.ins, true);
        ASSERT_NE(store, nullptr);
        pre_op = DumpDurableState(*store->db());
        store->db()->InjectFailureAfterStatements(k);
        Status s = sop.op(store.get());
        store->db()->InjectFailureAfterStatements(-1);
        completed = s.ok();
        if (completed) post_op = DumpDurableState(*store->db());
        // The store object dies here; anything uncommitted dies with it.
      }
      auto reopened =
          MakeDurableStore(gen, dir.path(), sop.del, sop.ins, false);
      ASSERT_NE(reopened, nullptr);
      ASSERT_TRUE(reopened->recovered());
      std::string recovered = DumpDurableState(*reopened->db());
      if (completed) {
        EXPECT_EQ(recovered, post_op) << "boundary " << k << " (completed)";
      } else {
        EXPECT_EQ(recovered, pre_op) << "boundary " << k << " (aborted)";
      }
    }
  }
}

TEST(EngineRecoveryTest, IncompleteStoreCreationIsReportedNotRecovered) {
  // Durable store creation commits each schema DDL as its own WAL unit; a
  // crash mid-setup leaves a partial catalog. Simulate one: a directory
  // whose WAL holds only the root table's CREATE (no element tables, no
  // triggers, no setup marker). Reopen must refuse cleanly instead of
  // presenting the fragment as a recovered store.
  workload::GeneratedDoc gen = MakeDoc();
  TempDir dir;
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    ASSERT_TRUE(
        db.Execute("CREATE TABLE doc (id INTEGER, parentId INTEGER)").ok());
  }
  RelationalStore::Options options;
  options.durability = true;
  options.data_dir = dir.path();
  auto reopened = RelationalStore::Create(gen.dtd, options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("incomplete"),
            std::string::npos)
      << reopened.status();
}

TEST(EngineRecoveryTest, CheckpointThenMutateThenRecover) {
  workload::GeneratedDoc gen = MakeDoc();
  TempDir dir;
  std::string expected;
  {
    auto store = MakeDurableStore(gen, dir.path(), DeleteStrategy::kAsr,
                                  InsertStrategy::kAsr, true);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(store->DeleteWhere("n3", "v3 < 500000").ok());
    expected = DumpDurableState(*store->db());
  }
  auto reopened = MakeDurableStore(gen, dir.path(), DeleteStrategy::kAsr,
                                   InsertStrategy::kAsr, false);
  ASSERT_NE(reopened, nullptr);
  ASSERT_TRUE(reopened->recovered());
  EXPECT_EQ(DumpDurableState(*reopened->db()), expected);
  EXPECT_TRUE(reopened->db()->VerifyIntegrity().empty());
  EXPECT_TRUE(reopened->VerifyStore().empty());
}

// ---------------------------------------------------------------------------
// Strategy options are persisted in the durable state (the xupd_meta
// table) and verified on reopen: a mismatched reopen is a clean error.

TEST(OptionsPersistenceTest, MismatchedReopenIsCleanError) {
  TempDir dir;
  auto gen = MakeDoc();
  {
    auto store = MakeDurableStore(gen, dir.path(),
                                  DeleteStrategy::kPerTupleTrigger,
                                  InsertStrategy::kTable, true);
    ASSERT_NE(store, nullptr);
  }
  // Different delete strategy: must refuse, naming the field.
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kCascade;
  options.insert_strategy = InsertStrategy::kTable;
  options.durability = true;
  options.data_dir = dir.path();
  options.sync_mode = rdb::SyncMode::kNone;
  auto mismatched = RelationalStore::Create(gen.dtd, options);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatched.status().ToString().find("delete_strategy"),
            std::string::npos)
      << mismatched.status();

  // ASR maintenance mismatch is caught too (build_asr differs even when
  // the delete strategy field matches).
  options.delete_strategy = DeleteStrategy::kPerTupleTrigger;
  options.build_asr = true;
  auto asr_mismatch = RelationalStore::Create(gen.dtd, options);
  ASSERT_FALSE(asr_mismatch.ok());
  EXPECT_NE(asr_mismatch.status().ToString().find("build_asr"),
            std::string::npos)
      << asr_mismatch.status();

  // The original options still reopen fine.
  auto reopened = MakeDurableStore(gen, dir.path(),
                                   DeleteStrategy::kPerTupleTrigger,
                                   InsertStrategy::kTable, false);
  ASSERT_NE(reopened, nullptr);
  EXPECT_TRUE(reopened->recovered());
}

}  // namespace
}  // namespace xupd
