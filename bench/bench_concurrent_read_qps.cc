// Concurrent-read throughput: epoch-snapshot reader sessions scanning a
// shared table while the single writer churns rows. Reports read QPS at
// 1/2/4/8/16 reader threads — the tentpole claim is that snapshot reads
// scale near-linearly because readers take no locks on the scan path — plus
// the commit-latency contrast between per-commit fsync (kCommit) and the
// time-based group-commit window (kBatched). Each QPS row also carries the
// MVCC telemetry the run produced (peak epoch lag, version-buffer
// rows/bytes, GC/reclaim counters), so regressions in epoch GC show up in
// the same archived JSON as throughput.
//
// Usage: bench_concurrent_read_qps [duration_ms] [threads]
//   duration_ms  per-point measurement window (default 300)
//   threads      run only this reader count (default: 1 2 4 8 16 sweep)
//
// Exits nonzero if any measured point records zero completed queries, so CI
// can use a short run as a liveness smoke test.
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rdb/database.h"
#include "rdb/wal.h"

using namespace xupd;

namespace {

void MustExec(rdb::Database* db, const std::string& sql) {
  Status s = db->Execute(sql);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", sql.c_str(), s.ToString().c_str());
    std::abort();
  }
}

/// Loads the read workload: `rows` rows across a skewed value column, the
/// same shape the fig. 6/10 element tables have (id + payload columns).
void LoadTable(rdb::Database* db, int rows) {
  MustExec(db, "CREATE TABLE r (id INTEGER, grp INTEGER, v INTEGER)");
  for (int i = 0; i < rows; ++i) {
    MustExec(db, "INSERT INTO r VALUES (" + std::to_string(i) + ", " +
                     std::to_string(i % 16) + ", " + std::to_string(i % 97) +
                     ")");
  }
}

struct Point {
  int threads = 0;
  uint64_t queries = 0;
  double seconds = 0;
  /// Peak epoch.lag sampled at the writer's commit boundaries: how far the
  /// slowest pinned reader trailed the published epoch during the window.
  int64_t epoch_lag_max = 0;
  double qps() const { return seconds > 0 ? queries / seconds : 0; }
};

/// One measurement: `threads` reader sessions issue scan-aggregate queries
/// for `duration_ms` while the writer churns insert/delete pairs.
Point MeasureReaders(rdb::Database* db, int threads, int duration_ms) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([db, t, &stop, &total] {
      auto rs = db->OpenReaderSession();
      if (!rs.ok()) {
        std::fprintf(stderr, "reader open: %s\n",
                     rs.status().ToString().c_str());
        return;
      }
      const std::string q1 = "SELECT COUNT(*) FROM r WHERE v < 50";
      const std::string q2 =
          "SELECT SUM(v) FROM r WHERE grp = " + std::to_string(t % 16);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto a = (*rs)->ExecuteQuery(q1);
        auto b = (*rs)->ExecuteQuery(q2);
        if (!a.ok() || !b.ok()) {
          std::fprintf(stderr, "reader query failed: %s\n",
                       (!a.ok() ? a.status() : b.status()).ToString().c_str());
          break;
        }
        n += 2;
      }
      total.fetch_add(n, std::memory_order_relaxed);
    });
  }

  // Writer churn for the whole window, the fig. 6/10 replay mix in
  // miniature: delete + re-insert of one subtree row plus an in-place
  // update of another (the update parks a pre-image in the version buffer
  // whenever a reader pin can still reach the old value). Each commit
  // boundary samples the epoch-lag gauge the boundary just refreshed.
  std::atomic<int64_t>* lag = db->metrics().Gauge("epoch.lag");
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::milliseconds(duration_ms);
  int64_t lag_max = 0;
  int cursor = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    MustExec(db, "BEGIN");
    MustExec(db, "DELETE FROM r WHERE id = " + std::to_string(cursor % 4096));
    MustExec(db, "INSERT INTO r VALUES (" + std::to_string(cursor % 4096) +
                     ", " + std::to_string(cursor % 16) + ", " +
                     std::to_string(cursor % 97) + ")");
    MustExec(db, "UPDATE r SET v = " + std::to_string((cursor + 1) % 97) +
                     " WHERE id = " + std::to_string((cursor + 2048) % 4096));
    MustExec(db, "COMMIT");
    lag_max = std::max(lag_max, lag->load(std::memory_order_relaxed));
    ++cursor;
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  Point p;
  p.threads = threads;
  p.queries = total.load();
  p.epoch_lag_max = lag_max;
  p.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  return p;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/xupd_qps_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    path_ = p == nullptr ? "/tmp/xupd_qps_fallback" : p;
  }
  ~TempDir() {
    DIR* d = ::opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Commit latency under a durable WAL: per-commit fsync vs the background
/// group-commit window. Reports the wal.commit_unit percentiles.
void MeasureCommitLatency(rdb::SyncMode mode, const char* mode_name,
                          int commits) {
  TempDir dir;
  rdb::Database db;
  rdb::DurabilityOptions opts;
  opts.sync_mode = mode;
  Status s = db.Open(dir.path(), opts);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    std::abort();
  }
  MustExec(&db, "CREATE TABLE w (id INTEGER, v VARCHAR)");
  for (int i = 0; i < commits; ++i) {
    MustExec(&db, "INSERT INTO w VALUES (" + std::to_string(i) +
                      ", 'payload-" + std::to_string(i) + "')");
  }
  const Histogram* commit = db.metrics().FindHistogram("wal.commit_unit");
  const Histogram* fsync = db.metrics().FindHistogram("wal.fsync");
  bench::LatencySummary cs =
      commit != nullptr ? bench::Summarize(*commit) : bench::LatencySummary{};
  uint64_t fsyncs = fsync != nullptr ? fsync->count() : 0;
  std::printf("commit[%-7s] p50=%8.2fus p99=%8.2fus fsyncs=%llu\n", mode_name,
              cs.p50_us, cs.p99_us, static_cast<unsigned long long>(fsyncs));
  std::printf(
      "{\"bench\":\"concurrent_read_qps\",\"series\":\"commit_latency\","
      "\"sync_mode\":\"%s\",\"commits\":%d,\"commit_p50_us\":%.3f,"
      "\"commit_p99_us\":%.3f,\"fsyncs\":%llu,%s\n",
      mode_name, commits, cs.p50_us, cs.p99_us,
      static_cast<unsigned long long>(fsyncs), bench::JsonTail().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int duration_ms = argc > 1 ? std::atoi(argv[1]) : 300;
  const int only_threads = argc > 2 ? std::atoi(argv[2]) : 0;

  rdb::Database db;
  LoadTable(&db, 4096);

  std::printf("# concurrent read QPS (%d ms per point, writer churning)\n",
              duration_ms);
  std::printf("%-8s %12s %12s\n", "threads", "queries", "qps");

  bool zero_point = false;
  double qps1 = 0;
  std::vector<int> sweep =
      only_threads > 0 ? std::vector<int>{only_threads}
                       : std::vector<int>{1, 2, 4, 8, 16};
  for (int threads : sweep) {
    Point p = MeasureReaders(&db, threads, duration_ms);
    if (p.queries == 0) zero_point = true;
    if (threads == 1) qps1 = p.qps();
    // MVCC telemetry at the point's end: the gauges hold the last commit
    // boundary's view, the counters accumulate across the whole process.
    const int64_t version_rows =
        db.metrics().Gauge("mvcc.version_rows")->load();
    const int64_t version_bytes =
        db.metrics().Gauge("mvcc.version_bytes")->load();
    const uint64_t gc_rows = db.metrics().Counter("mvcc.version_gc_rows")->load();
    const uint64_t reclaims =
        db.metrics().Counter("mvcc.slab_reclaims")->load();
    std::printf("%-8d %12llu %12.0f   lag_max=%lld\n", threads,
                static_cast<unsigned long long>(p.queries), p.qps(),
                static_cast<long long>(p.epoch_lag_max));
    std::printf(
        "{\"bench\":\"concurrent_read_qps\",\"series\":\"read_qps\","
        "\"writer\":\"churn\",\"duration_ms\":%d,\"queries\":%llu,"
        "\"qps\":%.0f,\"speedup_vs_1\":%.2f,\"epoch_lag_max\":%lld,"
        "\"version_rows\":%lld,\"version_bytes\":%lld,"
        "\"version_gc_rows\":%llu,\"slab_reclaims\":%llu,%s\n",
        duration_ms, static_cast<unsigned long long>(p.queries), p.qps(),
        qps1 > 0 ? p.qps() / qps1 : 0.0,
        static_cast<long long>(p.epoch_lag_max),
        static_cast<long long>(version_rows),
        static_cast<long long>(version_bytes),
        static_cast<unsigned long long>(gc_rows),
        static_cast<unsigned long long>(reclaims),
        bench::JsonTail(threads).c_str());
  }

  MeasureCommitLatency(rdb::SyncMode::kCommit, "commit", 2000);
  MeasureCommitLatency(rdb::SyncMode::kBatched, "batched", 2000);

  if (zero_point) {
    std::fprintf(stderr, "FAIL: a measured point completed zero queries\n");
    return 1;
  }
  return 0;
}
