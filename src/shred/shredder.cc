#include "shred/shredder.h"

#include <algorithm>
#include <functional>

#include "common/str_util.h"

namespace xupd::shred {

using rdb::Value;

Status Shredder::CreateSchema() {
  for (const std::string& sql : mapping_->SchemaSql()) {
    XUPD_RETURN_IF_ERROR(db_->Execute(sql));
  }
  return Status::OK();
}

namespace {

/// Finds the element at `path` below `e`; null when any step is missing.
const xml::Element* Navigate(const xml::Element& e,
                             const std::vector<std::string>& path) {
  const xml::Element* cur = &e;
  for (const std::string& step : path) {
    cur = cur->FindChildElement(step);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

}  // namespace

Status Shredder::FillFields(const xml::Element& element, const TableMapping* tm,
                            rdb::Row* row) const {
  for (size_t i = 0; i < tm->fields.size(); ++i) {
    const InlinedField& f = tm->fields[i];
    const xml::Element* target = Navigate(element, f.path);
    Value v;  // NULL
    if (target != nullptr) {
      switch (f.kind) {
        case InlinedField::Kind::kPcdata:
          v = Value::Str(target->TextContent());
          break;
        case InlinedField::Kind::kAttribute: {
          if (f.is_ref) {
            if (const xml::RefList* r = target->FindRefList(f.attr)) {
              v = Value::Str(Join(r->targets, " "));
            }
          } else if (const xml::Attribute* a = target->FindAttribute(f.attr)) {
            v = Value::Str(a->value);
          }
          break;
        }
        case InlinedField::Kind::kPresence:
          v = Value::Str("1");
          break;
      }
    }
    (*row)[static_cast<size_t>(tm->FieldColumn(i))] = std::move(v);
  }
  return Status::OK();
}

Status Shredder::ShredElement(const xml::Element& element, int64_t parent_id,
                              std::vector<ShreddedTuple>* out) {
  const TableMapping* tm = mapping_->ForElement(element.name());
  if (tm == nullptr) {
    return Status::InvalidArgument("element <" + element.name() +
                                   "> does not map to a table");
  }
  ShreddedTuple tuple;
  tuple.table = tm;
  tuple.id = db_->AllocateId();
  tuple.parent_id = parent_id;
  tuple.row.assign(2 + tm->fields.size(), Value::Null());
  tuple.row[TableMapping::kIdColumn] = Value::Int(tuple.id);
  tuple.row[TableMapping::kParentIdColumn] =
      parent_id == 0 ? Value::Null() : Value::Int(parent_id);
  XUPD_RETURN_IF_ERROR(FillFields(element, tm, &tuple.row));
  int64_t self_id = tuple.id;
  out->push_back(std::move(tuple));

  // Recurse into descendants that map to tables. Inlined subtrees were
  // captured by FillFields; table-mapped elements may sit below inlined
  // levels, so walk the whole subtree but stop at table boundaries.
  std::function<Status(const xml::Element&)> walk =
      [&](const xml::Element& e) -> Status {
    for (const auto& child : e.children()) {
      if (!child->is_element()) continue;
      const auto* ce = static_cast<const xml::Element*>(child.get());
      if (mapping_->ForElement(ce->name()) != nullptr) {
        XUPD_RETURN_IF_ERROR(ShredElement(*ce, self_id, out));
      } else {
        XUPD_RETURN_IF_ERROR(walk(*ce));
      }
    }
    return Status::OK();
  };
  return walk(element);
}

Result<std::vector<ShreddedTuple>> Shredder::ShredSubtree(
    const xml::Element& element, int64_t parent_id) {
  std::vector<ShreddedTuple> out;
  XUPD_RETURN_IF_ERROR(ShredElement(element, parent_id, &out));
  return out;
}

std::string Shredder::InsertSql(const ShreddedTuple& tuple) {
  std::string sql = "INSERT INTO " + tuple.table->table + " VALUES (";
  for (size_t i = 0; i < tuple.row.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += tuple.row[i].ToSqlLiteral();
  }
  sql += ")";
  return sql;
}

Status Shredder::InsertTuplesSql(const std::vector<ShreddedTuple>& tuples) {
  if (sql_batch_size_ == 1) {
    // The paper's original regime on every path: one literal single-row
    // INSERT statement per tuple, parsed on every execution.
    for (const ShreddedTuple& t : tuples) {
      XUPD_RETURN_IF_ERROR(db_->Execute(InsertSql(t)));
    }
    return Status::OK();
  }
  // Group per table, preserving first-seen table order and arrival order
  // within a table (parent ids are pre-assigned, so cross-table statement
  // order does not matter for correctness).
  std::vector<std::pair<const TableMapping*, std::vector<const ShreddedTuple*>>>
      groups;
  for (const ShreddedTuple& t : tuples) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == t.table; });
    if (it == groups.end()) {
      groups.push_back({t.table, {&t}});
    } else {
      it->second.push_back(&t);
    }
  }
  const size_t batch = static_cast<size_t>(sql_batch_size_);
  for (const auto& [tm, group] : groups) {
    const size_t cols = 2 + tm->fields.size();
    for (size_t start = 0; start < group.size(); start += batch) {
      size_t n = std::min(batch, group.size() - start);
      std::string sql = rdb::MultiRowInsertSql(tm->table, cols, n);
      std::vector<Value> params;
      params.reserve(cols * n);
      for (size_t i = 0; i < n; ++i) {
        const rdb::Row& row = group[start + i]->row;
        params.insert(params.end(), row.begin(), row.end());
      }
      XUPD_RETURN_IF_ERROR(db_->ExecuteBound(sql, params));
    }
  }
  return Status::OK();
}

Result<int64_t> Shredder::LoadDocument(const xml::Document& doc, bool via_sql) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root");
  }
  if (doc.root()->name() != mapping_->root()->element) {
    return Status::InvalidArgument("document root <" + doc.root()->name() +
                                   "> does not match mapping root <" +
                                   mapping_->root()->element + ">");
  }
  auto tuples = ShredSubtree(*doc.root(), 0);
  if (!tuples.ok()) return tuples.status();
  int64_t root_id = tuples->front().id;
  if (via_sql) {
    XUPD_RETURN_IF_ERROR(InsertTuplesSql(*tuples));
  } else {
    for (ShreddedTuple& t : *tuples) {
      rdb::Table* table = db_->FindTable(t.table->table);
      if (table == nullptr) {
        return Status::Internal("table '" + t.table->table + "' missing");
      }
      XUPD_RETURN_IF_ERROR(db_->InsertDirect(table, std::move(t.row)));
    }
  }
  return root_id;
}

}  // namespace xupd::shred
