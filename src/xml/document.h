// Document: owns the element tree, tracks which attribute names carry ID /
// IDREF semantics, and maintains the ID -> element index used by ref()
// path steps and the -> dereference operator.
#ifndef XUPD_XML_DOCUMENT_H_
#define XUPD_XML_DOCUMENT_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "xml/node.h"

namespace xupd::xml {

class Document {
 public:
  Document() = default;
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  Element* root() const { return root_.get(); }
  void set_root(std::unique_ptr<Element> root) {
    root_ = std::move(root);
    InvalidateIdMap();
  }

  /// Name of the attribute that carries element identity ("ID" by default,
  /// as in the paper's bio-lab example).
  const std::string& id_attribute() const { return id_attribute_; }
  void set_id_attribute(std::string name) {
    id_attribute_ = std::move(name);
    InvalidateIdMap();
  }

  /// Attribute names that should be interpreted as IDREF/IDREFS when parsing
  /// (e.g. "managers", "source", "biologist", "lab" in the paper's example).
  const std::set<std::string>& ref_attributes() const { return ref_attributes_; }
  void DeclareRefAttribute(std::string name) {
    ref_attributes_.insert(std::move(name));
  }

  /// Looks up an element by its ID attribute value. The index is rebuilt
  /// lazily after mutations (see InvalidateIdMap).
  Element* FindById(std::string_view id) const;

  /// Must be called (directly or via the update executor) after structural
  /// mutations that may add/remove IDs.
  void InvalidateIdMap() { id_map_dirty_ = true; }

  /// Deep copy of the whole document, including ref-attribute declarations.
  std::unique_ptr<Document> Clone() const;

  /// Number of element nodes in the document.
  size_t ElementCount() const {
    return root_ ? root_->SubtreeElementCount() : 0;
  }

 private:
  void RebuildIdMap() const;

  std::unique_ptr<Element> root_;
  std::string id_attribute_ = "ID";
  std::set<std::string> ref_attributes_;

  mutable bool id_map_dirty_ = true;
  mutable std::unordered_map<std::string, Element*> id_map_;
};

}  // namespace xupd::xml

#endif  // XUPD_XML_DOCUMENT_H_
