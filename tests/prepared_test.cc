// Tests for the prepared-statement subsystem: LRU cache hit/miss accounting,
// invalidation on DDL, positional ? parameter binding for every Value type
// (including NULL), and multi-row VALUES parsing + execution.
#include <gtest/gtest.h>

#include "engine/store.h"
#include "rdb/database.h"
#include "rdb/sql_parser.h"
#include "test_util.h"

namespace xupd::rdb {
namespace {

class PreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)").ok());
  }

  int64_t CountRows() {
    auto r = db_.ExecuteQuery("SELECT COUNT(*) FROM t");
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Cache accounting.

TEST_F(PreparedTest, RepeatedPrepareHitsTheCache) {
  const char kSql[] = "INSERT INTO t VALUES (?, ?)";
  Stats before = db_.stats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db_.ExecuteBound(kSql, {Value::Int(i), Value::Str("row")}).ok());
  }
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.prepared_misses, 1u);
  EXPECT_EQ(delta.prepared_hits, 9u);
  EXPECT_EQ(delta.sql_parses, 1u);  // one parse serves all ten statements
  EXPECT_EQ(delta.statements, 10u);
  EXPECT_EQ(CountRows(), 10);
}

TEST_F(PreparedTest, HandleReuseSkipsTheCacheLookup) {
  auto handle = db_.Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(handle.ok()) << handle.status();
  Stats before = db_.stats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_.ExecutePrepared(handle.value(),
                                    {Value::Int(i), Value::Str("h")})
                    .ok());
  }
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.sql_parses, 0u);
  EXPECT_EQ(delta.statements, 5u);
  EXPECT_EQ(CountRows(), 5);
}

TEST_F(PreparedTest, DistinctTextsAreDistinctEntries) {
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());
  ASSERT_TRUE(db_.Prepare("SELECT name FROM t").ok());
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());  // hit
  EXPECT_EQ(db_.prepared_cache_size(), 2u);
  EXPECT_EQ(db_.stats().prepared_misses, 2u);
  EXPECT_EQ(db_.stats().prepared_hits, 1u);
}

TEST_F(PreparedTest, LruEvictsLeastRecentlyUsed) {
  db_.set_prepared_cache_capacity(2);
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());
  ASSERT_TRUE(db_.Prepare("SELECT name FROM t").ok());
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());        // refresh id
  ASSERT_TRUE(db_.Prepare("SELECT id, name FROM t").ok());  // evicts name
  EXPECT_EQ(db_.prepared_cache_size(), 2u);
  uint64_t misses = db_.stats().prepared_misses;
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());  // still cached
  EXPECT_EQ(db_.stats().prepared_misses, misses);
  ASSERT_TRUE(db_.Prepare("SELECT name FROM t").ok());  // evicted -> miss
  EXPECT_EQ(db_.stats().prepared_misses, misses + 1);
}

// ---------------------------------------------------------------------------
// Invalidation.

TEST_F(PreparedTest, DropInvalidatesCache) {
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());
  EXPECT_EQ(db_.prepared_cache_size(), 1u);
  ASSERT_TRUE(db_.Execute("DROP TABLE t").ok());
  EXPECT_EQ(db_.prepared_cache_size(), 0u);
  uint64_t misses = db_.stats().prepared_misses;
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());  // re-parse
  EXPECT_EQ(db_.stats().prepared_misses, misses + 1);
}

TEST_F(PreparedTest, CreateInvalidatesCache) {
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE u (id INTEGER)").ok());
  EXPECT_EQ(db_.prepared_cache_size(), 0u);
  ASSERT_TRUE(db_.Execute("CREATE INDEX t_id ON t (id)").ok());
  EXPECT_EQ(db_.prepared_cache_size(), 0u);
}

TEST_F(PreparedTest, HandleSurvivesInvalidation) {
  auto handle = db_.Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE u (id INTEGER)").ok());
  // The cache is empty, but the outstanding handle still executes (name
  // resolution happens at run time).
  ASSERT_TRUE(db_.ExecutePrepared(handle.value(),
                                  {Value::Int(1), Value::Str("x")})
                  .ok());
  EXPECT_EQ(CountRows(), 1);
}

TEST_F(PreparedTest, DdlIsNotCached) {
  ASSERT_TRUE(db_.Prepare("CREATE TABLE v (id INTEGER)").ok());
  EXPECT_EQ(db_.prepared_cache_size(), 0u);
}

// ---------------------------------------------------------------------------
// Parameter binding.

TEST_F(PreparedTest, BindsAllValueTypes) {
  ASSERT_TRUE(db_.ExecuteBound("INSERT INTO t VALUES (?, ?)",
                               {Value::Int(7), Value::Str("seven")})
                  .ok());
  ASSERT_TRUE(db_.ExecuteBound("INSERT INTO t VALUES (?, ?)",
                               {Value::Int(8), Value::Null()})
                  .ok());
  auto r = db_.ExecuteQueryBound("SELECT name FROM t WHERE id = ?",
                                 {Value::Int(7)});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "seven");
  auto null_row = db_.ExecuteQuery("SELECT id FROM t WHERE name IS NULL");
  ASSERT_TRUE(null_row.ok());
  ASSERT_EQ(null_row->rows.size(), 1u);
  EXPECT_EQ(null_row->rows[0][0].AsInt(), 8);
}

TEST_F(PreparedTest, NullParamInComparisonMatchesNothing) {
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'a')").ok());
  auto r = db_.ExecuteQueryBound("SELECT id FROM t WHERE name = ?",
                                 {Value::Null()});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(PreparedTest, ParamsWorkInUpdateAndDelete) {
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'a')").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (2, 'b')").ok());
  ASSERT_TRUE(db_.ExecuteBound("UPDATE t SET name = ? WHERE id = ?",
                               {Value::Str("z"), Value::Int(1)})
                  .ok());
  auto r = db_.ExecuteQueryBound("SELECT name FROM t WHERE id = ?",
                                 {Value::Int(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsString(), "z");
  ASSERT_TRUE(db_.ExecuteBound("DELETE FROM t WHERE id = ?", {Value::Int(2)})
                  .ok());
  EXPECT_EQ(CountRows(), 1);
}

TEST_F(PreparedTest, ParamProbeUsesIndex) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX t_id ON t (id)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_.ExecuteBound("INSERT INTO t VALUES (?, ?)",
                                 {Value::Int(i), Value::Str("r")})
                    .ok());
  }
  Stats before = db_.stats();
  auto r = db_.ExecuteQueryBound("SELECT name FROM t WHERE id = ?",
                                 {Value::Int(11)});
  ASSERT_TRUE(r.ok());
  Stats delta = db_.stats().Delta(before);
  EXPECT_GT(delta.index_probes, 0u);
  EXPECT_EQ(delta.rows_scanned, 0u);
}

TEST_F(PreparedTest, ArityMismatchIsAnError) {
  auto handle = db_.Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(handle.ok());
  Status s = db_.ExecutePrepared(handle.value(), {Value::Int(1)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  Status s2 = db_.ExecutePrepared(
      handle.value(), {Value::Int(1), Value::Str("a"), Value::Int(2)});
  EXPECT_EQ(s2.code(), StatusCode::kInvalidArgument);
}

TEST_F(PreparedTest, UnboundParamViaExecuteIsAnError) {
  // Plain Execute never binds parameters; evaluating ? must fail cleanly.
  Status s = db_.Execute("INSERT INTO t VALUES (?, 'x')");
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------------
// Multi-row VALUES.

TEST_F(PreparedTest, MultiRowValuesParses) {
  auto stmt = sql::ParseSql("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt.value().insert.rows.size(), 3u);
}

TEST_F(PreparedTest, MultiRowValuesExecutesAndCounts) {
  Stats before = db_.stats();
  ASSERT_TRUE(
      db_.Execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')").ok());
  Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.rows_inserted, 3u);
  EXPECT_EQ(delta.batched_rows, 3u);
  EXPECT_EQ(delta.statements, 1u);
  EXPECT_EQ(CountRows(), 3);
}

TEST_F(PreparedTest, SingleRowInsertIsNotCountedAsBatched) {
  Stats before = db_.stats();
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'a')").ok());
  EXPECT_EQ(db_.stats().Delta(before).batched_rows, 0u);
}

TEST_F(PreparedTest, MultiRowInsertSqlHelperRoundTrips) {
  EXPECT_EQ(MultiRowInsertSql("t", 2, 2), "INSERT INTO t VALUES (?, ?), (?, ?)");
  std::string sql = MultiRowInsertSql("t", 2, 3);
  ASSERT_TRUE(db_.ExecuteBound(sql, {Value::Int(1), Value::Str("a"),
                                     Value::Int(2), Value::Null(),
                                     Value::Int(3), Value::Str("c")})
                  .ok());
  EXPECT_EQ(CountRows(), 3);
  EXPECT_EQ(db_.stats().batched_rows, 3u);
}

TEST_F(PreparedTest, MultiRowArityMismatchRejected) {
  Status s = db_.Execute("INSERT INTO t VALUES (1, 'a'), (2)");
  EXPECT_FALSE(s.ok());
}

TEST_F(PreparedTest, MultiRowInsertIsAtomic) {
  // A bad row anywhere in the VALUES list must leave the table untouched
  // and must not inflate batched_rows.
  Status s = db_.Execute("INSERT INTO t VALUES (1, 'a'), (nosuchcol, 'b')");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(CountRows(), 0);
  EXPECT_EQ(db_.stats().batched_rows, 0u);
  EXPECT_EQ(db_.stats().rows_inserted, 0u);
}

TEST_F(PreparedTest, OneShotTextsStayOutOfTheCache) {
  ASSERT_TRUE(db_.ExecuteBound("INSERT INTO t VALUES (?, ?)",
                               {Value::Int(1), Value::Str("a")},
                               /*cacheable=*/false)
                  .ok());
  EXPECT_EQ(db_.prepared_cache_size(), 0u);
  // But an uncacheable Prepare still reuses an existing entry.
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t").ok());
  uint64_t hits = db_.stats().prepared_hits;
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t", /*cacheable=*/false).ok());
  EXPECT_EQ(db_.stats().prepared_hits, hits + 1);
}

// ---------------------------------------------------------------------------
// End-to-end through the store: batched SQL load.

TEST(PreparedStoreTest, SqlLoadBatchesAndSkipsReparse) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  engine::RelationalStore::Options options;
  options.load_via_sql = true;
  options.insert_batch_size = 64;
  auto store = engine::RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store.ok()) << store.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  Stats before = store.value()->stats();
  ASSERT_TRUE(store.value()->Load(*doc).ok());
  Stats delta = store.value()->stats().Delta(before);
  // 11 tuples over 4 tables: one multi-row INSERT per table with >1 row
  // (Customer 3 + Order 3 + OrderLine 4 = 10 batched rows).
  EXPECT_EQ(delta.rows_inserted, 11u);
  EXPECT_EQ(delta.batched_rows, 10u);
  EXPECT_EQ(delta.statements, 4u);
}

TEST(PreparedStoreTest, BatchSizeOneLoadMatchesPaperRegime) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  engine::RelationalStore::Options options;
  options.load_via_sql = true;
  options.insert_batch_size = 1;
  auto store = engine::RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store.ok()) << store.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  Stats before = store.value()->stats();
  ASSERT_TRUE(store.value()->Load(*doc).ok());
  Stats delta = store.value()->stats().Delta(before);
  EXPECT_EQ(delta.statements, 11u);  // one statement per tuple
  EXPECT_EQ(delta.sql_parses, 11u);  // literal SQL, parsed every time
  EXPECT_EQ(delta.batched_rows, 0u);
}

}  // namespace
}  // namespace xupd::rdb
