// Resource governance primitives: cooperative cancellation and memory
// accounting.
//
// CancelToken is a thread-safe cancel flag: any thread may call Cancel()
// while a statement runs on the writer (or a reader session) thread; the
// executor polls the flag amortized every few operator pulls and unwinds
// with StatusCode::kCancelled, riding the normal transaction rollback.
//
// MemoryAccountant tracks the engine's dominant heap consumers per
// Database under two budgets:
//   - soft: new statements are shed (kResourceExhausted) while usage stays
//     above it, but in-flight work keeps running — backpressure, not abort;
//   - hard: in-flight statements fail at the next governance poll and roll
//     back — the invariant-preserving stop before the OS OOM-kills us.
// Charges are relaxed atomics and NEVER fail: low-level allocators (slab
// growth, undo chunks, WAL pending appends) stay infallible, and budget
// enforcement happens only at statement-level poll points where a clean
// Status can unwind through the txn machinery. A budget of 0 = unlimited.
// When metrics are attached every category mirrors into a mem.* gauge.
#ifndef XUPD_RDB_GOVERNANCE_H_
#define XUPD_RDB_GOVERNANCE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace xupd::rdb {

/// A shared cancel flag. Copies share state; Cancel() from any thread is
/// observed by the running statement at its next governance poll.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { state_->store(true, std::memory_order_release); }
  void Reset() { state_->store(false, std::memory_order_release); }
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

  /// The raw flag an ExecContext polls (stable for the token's lifetime).
  const std::atomic<bool>* flag() const { return state_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Per-Database memory accounting with soft/hard budgets (see file comment).
class MemoryAccountant {
 public:
  enum Category : int {
    kTableSlabs = 0,   ///< row-slab capacity bytes (charged at growth).
    kVersionBuffers,   ///< MVCC parked pre-images.
    kInterner,         ///< retained interned string blocks.
    kUndoLog,          ///< undo record chunks of open scopes.
    kWalPending,       ///< WAL bytes staged but not yet committed.
    kQueryScratch,     ///< sort / CTE / result materialization.
    kNumCategories,
  };

  static const char* CategoryName(int c) {
    switch (c) {
      case kTableSlabs: return "mem.table_slabs";
      case kVersionBuffers: return "mem.version_buffers";
      case kInterner: return "mem.interner";
      case kUndoLog: return "mem.undo_log";
      case kWalPending: return "mem.wal_pending";
      case kQueryScratch: return "mem.query_scratch";
    }
    return "mem.unknown";
  }

  void Charge(Category c, size_t bytes) {
    if (bytes == 0) return;
    used_[c].fetch_add(bytes, std::memory_order_relaxed);
    total_.fetch_add(bytes, std::memory_order_relaxed);
    if (gauges_[c] != nullptr) {
      gauges_[c]->fetch_add(static_cast<int64_t>(bytes),
                            std::memory_order_relaxed);
      total_gauge_->fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
    }
  }

  void Release(Category c, size_t bytes) {
    if (bytes == 0) return;
    used_[c].fetch_sub(bytes, std::memory_order_relaxed);
    total_.fetch_sub(bytes, std::memory_order_relaxed);
    if (gauges_[c] != nullptr) {
      gauges_[c]->fetch_sub(static_cast<int64_t>(bytes),
                            std::memory_order_relaxed);
      total_gauge_->fetch_sub(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
    }
  }

  uint64_t used(Category c) const {
    return used_[c].load(std::memory_order_relaxed);
  }
  uint64_t total_used() const { return total_.load(std::memory_order_relaxed); }

  /// Budgets in bytes; 0 disables the limit.
  void set_soft_budget(uint64_t bytes) {
    soft_.store(bytes, std::memory_order_relaxed);
  }
  void set_hard_budget(uint64_t bytes) {
    hard_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t soft_budget() const { return soft_.load(std::memory_order_relaxed); }
  uint64_t hard_budget() const { return hard_.load(std::memory_order_relaxed); }

  /// Bounded WAL pending-buffer watermark (bytes staged for one commit
  /// unit); 0 disables. Checked at governance polls so an oversized unit
  /// fails cleanly (statement error -> scope rollback -> TruncatePending)
  /// instead of growing without bound.
  void set_wal_pending_limit(uint64_t bytes) {
    wal_pending_limit_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t wal_pending_limit() const {
    return wal_pending_limit_.load(std::memory_order_relaxed);
  }

  bool OverSoft() const {
    uint64_t soft = soft_budget();
    return soft != 0 && total_used() > soft;
  }
  bool OverHard() const {
    uint64_t hard = hard_budget();
    return hard != 0 && total_used() > hard;
  }

  /// kResourceExhausted when over the hard budget or the WAL pending
  /// watermark — the statement-poll enforcement point.
  Status CheckHard() const {
    if (OverHard()) {
      return Status::ResourceExhausted(
          "hard memory budget exceeded (" + std::to_string(total_used()) +
          " of " + std::to_string(hard_budget()) +
          " bytes in use); statement rolled back");
    }
    uint64_t limit = wal_pending_limit();
    if (limit != 0 && used(kWalPending) > limit) {
      return Status::ResourceExhausted(
          "WAL pending buffer exceeds its watermark (" +
          std::to_string(used(kWalPending)) + " of " + std::to_string(limit) +
          " bytes staged); commit unit failed cleanly and rolled back");
    }
    return Status::OK();
  }

  /// kResourceExhausted when over the soft budget — the admission-time
  /// check that sheds NEW statements while in-flight work drains.
  Status CheckAdmission() const {
    if (!OverSoft()) return Status::OK();
    return Status::ResourceExhausted(
        "soft memory budget exceeded (" + std::to_string(total_used()) +
        " of " + std::to_string(soft_budget()) +
        " bytes in use); shedding new statements until usage drops");
  }

  /// Resolves one mem.* gauge per category plus mem.total; charges mirror
  /// into them from then on (gauges start at the current usage). Pass null
  /// to detach — ~Database detaches before its members release their
  /// charges, since the registry dies before the charging members do.
  void AttachMetrics(MetricsRegistry* registry) {
    if (registry == nullptr) {
      total_gauge_ = nullptr;
      for (int c = 0; c < kNumCategories; ++c) gauges_[c] = nullptr;
      return;
    }
    total_gauge_ = registry->Gauge("mem.total");
    total_gauge_->store(static_cast<int64_t>(total_used()),
                        std::memory_order_relaxed);
    for (int c = 0; c < kNumCategories; ++c) {
      gauges_[c] = registry->Gauge(CategoryName(c));
      gauges_[c]->store(static_cast<int64_t>(used(static_cast<Category>(c))),
                        std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> used_[kNumCategories] = {};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> soft_{0};
  std::atomic<uint64_t> hard_{0};
  std::atomic<uint64_t> wal_pending_limit_{0};
  std::atomic<int64_t>* gauges_[kNumCategories] = {};
  std::atomic<int64_t>* total_gauge_ = nullptr;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_GOVERNANCE_H_
