// Compact-Value representation tests (rdb/value.h): the 16-byte tagged
// layout, SSO boundary lengths, interned vs inline equality/hashing, the
// mixed int/string coercion corners of Compare/Hash/operator==, and a
// HashIndex stress test that interleaves Insert/Erase/Lookup against a
// shadow map.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rdb/table.h"
#include "rdb/value.h"

namespace xupd::rdb {
namespace {

// ---------------------------------------------------------------------------
// Layout

TEST(ValueLayoutTest, ValueIs16Bytes) {
  EXPECT_LE(sizeof(Value), 16u);
}

TEST(ValueLayoutTest, SsoBoundaryLengths) {
  // 13 and 14 chars are inline (no heap block); 15 chars spill to the heap.
  for (size_t len : {size_t{0}, size_t{1}, size_t{13}, size_t{14}}) {
    Value v = Value::Str(std::string(len, 'x'));
    EXPECT_EQ(v.rep(), nullptr) << "len " << len << " should be inline";
    EXPECT_EQ(v.AsString().size(), len);
  }
  for (size_t len : {size_t{15}, size_t{16}, size_t{100}}) {
    Value v = Value::Str(std::string(len, 'x'));
    EXPECT_NE(v.rep(), nullptr) << "len " << len << " should be heap";
    EXPECT_EQ(v.AsString().size(), len);
    EXPECT_EQ(v.AsString(), std::string(len, 'x'));
  }
}

TEST(ValueLayoutTest, CopyAndMoveShareHeapBlocks) {
  Value a = Value::Str("this string is long enough to heap-allocate");
  ASSERT_NE(a.rep(), nullptr);
  Value b = a;  // copy: same block, bumped refcount
  EXPECT_EQ(a.rep(), b.rep());
  EXPECT_EQ(a.AsString(), b.AsString());
  Value c = std::move(a);  // move: steal, source becomes NULL
  EXPECT_EQ(c.rep(), b.rep());
  EXPECT_TRUE(a.is_null());  // NOLINT(bugprone-use-after-move): spec'd
  b = Value::Int(1);         // drop one reference
  EXPECT_EQ(c.AsString(), "this string is long enough to heap-allocate");
}

// ---------------------------------------------------------------------------
// Compare / Hash coercion corners

TEST(ValueCompareTest, MixedIntStringCoercion) {
  // A numeric-parsing string compares as its integer against an int...
  EXPECT_EQ(Value::Str("42").Compare(Value::Int(42)), 0);
  EXPECT_EQ(Value::Int(42).Compare(Value::Str("42")), 0);
  EXPECT_LT(Value::Str("41").Compare(Value::Int(42)), 0);
  EXPECT_GT(Value::Int(43).Compare(Value::Str("42")), 0);
  EXPECT_EQ(Value::Str("-7").Compare(Value::Int(-7)), 0);
  // ...a non-numeric string falls back to textual comparison.
  EXPECT_GT(Value::Str("abc").Compare(Value::Int(42)), 0);  // "abc" > "42"
  EXPECT_LT(Value::Int(42).Compare(Value::Str("abc")), 0);
  // Same-type comparisons are untouched by coercion: "042" != "42" as text.
  EXPECT_NE(Value::Str("042").Compare(Value::Str("42")), 0);
  // NULL sorts first and only equals NULL.
  EXPECT_LT(Value::Null().Compare(Value::Int(-999)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueCompareTest, EqualityAndHashAgreeOnCoercedPairs) {
  // "42" (string) and 42 (int) are one index key: equal AND same hash.
  EXPECT_TRUE(Value::Str("42") == Value::Int(42));
  EXPECT_EQ(Value::Str("42").Hash(), Value::Int(42).Hash());
  // SqlEquals matches too (NULL never does).
  EXPECT_TRUE(Value::Str("42").SqlEquals(Value::Int(42)));
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  // Long numeric-looking strings (> SSO) still coerce for hashing.
  EXPECT_EQ(Value::Str("123456789012345678").Hash(),
            Value::Int(123456789012345678LL).Hash());
  EXPECT_TRUE(Value::Str("123456789012345678") ==
              Value::Int(123456789012345678LL));
  // Textually different spellings of one integer hash together but stay
  // textually unequal as strings.
  EXPECT_EQ(Value::Str("042").Hash(), Value::Int(42).Hash());
  EXPECT_FALSE(Value::Str("042") == Value::Str("42"));
}

TEST(ValueCompareTest, SsoVsHeapEquality) {
  // The same logical string in inline and heap form must be equal and hash
  // identically (a 14-char SSO string vs the same bytes inside a copied
  // longer-lived heap block can meet in one index).
  std::string s14(14, 'q');
  Value inline_v = Value::Str(s14);
  ASSERT_EQ(inline_v.rep(), nullptr);
  StringInterner interner;
  // Intern() of an SSO-sized string stays inline (no arena entry)...
  Value interned14 = interner.Intern(s14);
  EXPECT_EQ(interned14.rep(), nullptr);
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_TRUE(inline_v == interned14);
  EXPECT_EQ(inline_v.Hash(), interned14.Hash());
  // ...and a heap string equal to an inline prefix-extended sibling keeps
  // content equality/hash across representations.
  std::string s15(15, 'q');
  Value heap_v = interner.Intern(s15);
  ASSERT_NE(heap_v.rep(), nullptr);
  EXPECT_TRUE(heap_v == Value::Str(s15));
  EXPECT_EQ(heap_v.Hash(), Value::Str(s15).Hash());
  EXPECT_FALSE(heap_v == inline_v);
}

// ---------------------------------------------------------------------------
// Interning

TEST(InternerTest, EqualStringsShareOneBlock) {
  StringInterner interner;
  std::string s = "an interned string well beyond the SSO limit";
  Value a = interner.Intern(s);
  Value b = interner.Intern(s);
  ASSERT_NE(a.rep(), nullptr);
  EXPECT_EQ(a.rep(), b.rep());
  EXPECT_EQ(interner.size(), 1u);
  // A fresh (un-interned) equal Value has its own block but stays equal
  // and hashes identically.
  Value fresh = Value::Str(s);
  EXPECT_NE(fresh.rep(), a.rep());
  EXPECT_TRUE(fresh == a);
  EXPECT_EQ(fresh.Hash(), a.Hash());
  // InternInPlace canonicalizes the fresh copy onto the shared block.
  interner.InternInPlace(&fresh);
  EXPECT_EQ(fresh.rep(), a.rep());
}

TEST(InternerTest, InternedValuesOutliveTheInterner) {
  Value survivor;
  {
    StringInterner interner;
    survivor = interner.Intern("keeps its bytes after the arena is gone");
  }
  EXPECT_EQ(survivor.AsString(), "keeps its bytes after the arena is gone");
}

TEST(InternerTest, TableInsertDeduplicatesLongStrings) {
  StringInterner interner;
  Table t(TableSchema("t", {{"v", ColumnType::kVarchar}}));
  t.set_interner(&interner);
  std::string path = "/site/people/person/address/zipcode/step";
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert({Value::Str(path)}).ok());
  }
  ASSERT_EQ(interner.size(), 1u);
  const StrRep* canonical = t.row(0)[0].rep();
  ASSERT_NE(canonical, nullptr);
  for (size_t r = 0; r < t.capacity(); ++r) {
    EXPECT_EQ(t.row(r)[0].rep(), canonical);
  }
}

// ---------------------------------------------------------------------------
// HashIndex stress: random Insert/Erase/Lookup interleave vs a shadow map.

TEST(HashIndexStressTest, MatchesShadowMap) {
  HashIndex index("stress", 0);
  // Shadow: value key (by ToString of the canonical form) -> set of rowids.
  std::map<std::string, std::set<size_t>> shadow;
  auto key_of = [](const Value& v) {
    // Canonicalize coercible strings onto their integer key, mirroring
    // Value::operator==/Hash (e.g. "7" and 7 are one index key).
    return v.ToString();
  };
  std::vector<Value> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(Value::Int(i % 25));
  for (int i = 0; i < 25; ++i) pool.push_back(Value::Str(std::to_string(i)));
  for (int i = 0; i < 20; ++i) {
    pool.push_back(Value::Str("short" + std::to_string(i % 10)));
    pool.push_back(Value::Str(
        "a deliberately long intername string #" + std::to_string(i % 10)));
  }

  Rng rng(2026);
  for (int step = 0; step < 20000; ++step) {
    const Value& v = pool[rng.Uniform(pool.size())];
    size_t rowid = rng.Uniform(64);
    uint64_t action = rng.Uniform(10);
    if (action < 5) {
      index.Insert(v, rowid);
      shadow[key_of(v)].insert(rowid);
    } else if (action < 8) {
      index.Erase(v, rowid);
      auto it = shadow.find(key_of(v));
      if (it != shadow.end()) {
        it->second.erase(rowid);
        if (it->second.empty()) shadow.erase(it);
      }
    } else {
      std::vector<size_t> got;
      index.Lookup(v, &got);
      std::sort(got.begin(), got.end());
      auto it = shadow.find(key_of(v));
      std::vector<size_t> want;
      if (it != shadow.end()) want.assign(it->second.begin(), it->second.end());
      ASSERT_EQ(got, want) << "step " << step << " key " << v.ToString();
    }
    size_t total = 0;
    for (const auto& [k, rows] : shadow) total += rows.size();
    ASSERT_EQ(index.size(), total) << "step " << step;
  }
  // Drain: erase everything through the index and verify emptiness.
  for (const auto& [k, rows] : shadow) {
    // Re-derive a Value for the key: all keys here render as their
    // canonical text, so Str(k) == the original key under SQL identity.
    for (size_t rowid : rows) index.Erase(Value::Str(k), rowid);
  }
  EXPECT_EQ(index.size(), 0u);
}

TEST(HashIndexStressTest, DuplicateInsertIsANoOp) {
  HashIndex index("dup", 0);
  index.Insert(Value::Int(7), 3);
  index.Insert(Value::Int(7), 3);
  index.Insert(Value::Str("7"), 3);  // same key under SQL identity
  EXPECT_EQ(index.size(), 1u);
  std::vector<size_t> got;
  index.Lookup(Value::Int(7), &got);
  EXPECT_EQ(got.size(), 1u);
}

TEST(HashIndexStressTest, LowCardinalityKeyEraseStaysExact) {
  // Thousands of rows under ONE key (the parentId shape the engine leans
  // on); erase from the middle, ends, and head, verifying membership.
  HashIndex index("parent", 0);
  Value key = Value::Int(1);
  for (size_t r = 0; r < 5000; ++r) index.Insert(key, r);
  EXPECT_EQ(index.size(), 5000u);
  for (size_t r = 0; r < 5000; r += 2) index.Erase(key, r);
  EXPECT_EQ(index.size(), 2500u);
  std::vector<size_t> got;
  index.Lookup(key, &got);
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 2500u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], 2 * i + 1);
}

}  // namespace
}  // namespace xupd::rdb
