// §7.3 (randomized synthetic check): the delete-method ranking carries over
// to documents with randomized structure — per-tuple wins the random
// workload and sits slightly below per-stm on the bulk workload.
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  workload::SyntheticSpec spec;
  spec.scaling_factor = 200;
  spec.depth = 5;   // maximum depth; actual ~ U[2,5]
  spec.fanout = 4;  // maximum fanout; actual ~ U[1,4]
  auto gen = workload::GenerateRandomizedSynthetic(spec, 42);
  if (!gen.ok()) return 1;
  std::printf("# Randomized synthetic documents (%zu tuples), delete methods\n",
              gen->tuple_count);
  std::printf("%-10s %-12s %12s\n", "workload", "method", "time_sec");
  const DeleteStrategy methods[] = {
      DeleteStrategy::kAsr, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kCascade};
  for (DeleteStrategy method : methods) {
    double t = MeasureOnFreshStores(
        *gen, method, InsertStrategy::kTable,
        [](engine::RelationalStore* store) {
          Status s = store->DeleteWhere("n1", "");
          if (!s.ok()) std::abort();
        },
        {runs});
    std::printf("%-10s %-12s %12.6f\n", "bulk", ToString(method), t);
  }
  std::vector<int64_t> picked;
  {
    auto scratch = bench::FreshStore(*gen, DeleteStrategy::kCascade,
                                     InsertStrategy::kTable);
    auto ids = scratch->SelectIds("n1", "");
    if (!ids.ok()) return 1;
    picked = bench::PickRandomIds(*ids, 10, 7);
  }
  for (DeleteStrategy method : methods) {
    double t = MeasureOnFreshStores(
        *gen, method, InsertStrategy::kTable,
        [&picked](engine::RelationalStore* store) {
          Status s = store->DeleteByIds("n1", picked);
          if (!s.ok()) std::abort();
        },
        {runs});
    std::printf("%-10s %-12s %12.6f\n", "random", ToString(method), t);
  }
  return 0;
}
