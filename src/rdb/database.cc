#include "rdb/database.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "rdb/exec_node.h"
#include "rdb/snapshot.h"
#include "rdb/sql_executor.h"
#include "rdb/sql_parser.h"
#include "rdb/vfs.h"

namespace xupd::rdb {

namespace {

// Busy-wait so the simulated latency shows up in wall-clock measurements.
// Deadline-aware: an armed statement deadline cuts the spin short so a
// timed-out statement fails promptly instead of first paying the full
// simulated round trip.
void SpinFor(double us, uint64_t deadline_ns = 0) {
  if (us <= 0) return;
  Stopwatch sw;
  while (sw.ElapsedSeconds() * 1e6 < us) {
    if (deadline_ns != 0 && MonotonicNanos() >= deadline_ns) return;
  }
}

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.xupd";
}
std::string SnapshotTmpPath(const std::string& dir) {
  return dir + "/snapshot.tmp";
}
std::string WalPath(const std::string& dir) { return dir + "/wal.xupd"; }

}  // namespace

std::string MultiRowInsertSql(std::string_view table, size_t columns,
                              size_t rows) {
  std::string sql = "INSERT INTO ";
  sql += table;
  sql += " VALUES ";
  for (size_t r = 0; r < rows; ++r) {
    if (r > 0) sql += ", ";
    sql += "(";
    for (size_t c = 0; c < columns; ++c) {
      if (c > 0) sql += ", ";
      sql += "?";
    }
    sql += ")";
  }
  return sql;
}

Database::Database() {
  InitMetrics();
  // Wire the memory accountant into the always-present charge sites; tables
  // and the WAL writer are wired as they are created/opened.
  interner_.set_accountant(&mem_);
  txn_.set_accountant(&mem_);
}

void Database::InitMetrics() {
  static constexpr const char* kStmtHistNames[kStmtKindSlots] = {
      "stmt.select", "stmt.insert", "stmt.delete", "stmt.update",
      "stmt.ddl",    "stmt.txn",    "stmt.explain", "stmt.other",
  };
  for (size_t i = 0; i < kStmtKindSlots; ++i) {
    stmt_hists_[i] = metrics_.GetHistogram(kStmtHistNames[i]);
  }
  exec_ns_ = metrics_.Counter("db.exec_ns");
  trigger_ns_ = metrics_.Counter("db.trigger_ns");
  epochs_.readers_gauge = metrics_.Gauge("readers.active");
  // Concurrency telemetry (PR 9): resolved once so the commit-boundary and
  // reader hot paths touch plain atomics.
  epochs_.lag_gauge = metrics_.Gauge("epoch.lag");
  epochs_.reclaim_counter = metrics_.Counter("mvcc.slab_reclaims");
  epoch_published_gauge_ = metrics_.Gauge("epoch.published");
  version_rows_gauge_ = metrics_.Gauge("mvcc.version_rows");
  version_bytes_gauge_ = metrics_.Gauge("mvcc.version_bytes");
  version_gc_rows_ = metrics_.Counter("mvcc.version_gc_rows");
  reader_sessions_gauge_ = metrics_.Gauge("readers.sessions");
  catalog_shared_wait_ = metrics_.GetHistogram("catalog_lock.shared_wait");
  catalog_exclusive_wait_ =
      metrics_.GetHistogram("catalog_lock.exclusive_wait");
  // Resource governance (PR 10): statement-kill counters, heal/watchdog
  // observability, and the mem.* gauges the accountant mirrors into.
  stmt_cancelled_ = metrics_.Counter("stmt.cancelled");
  stmt_deadline_exceeded_ = metrics_.Counter("stmt.deadline_exceeded");
  stmt_resource_exhausted_ = metrics_.Counter("stmt.resource_exhausted");
  stmt_shed_ = metrics_.Counter("stmt.shed");
  heal_attempts_counter_ = metrics_.Counter("db.heal_attempts");
  flusher_stall_counter_ = metrics_.Counter("watchdog.flusher_stalls");
  checkpoint_stall_counter_ = metrics_.Counter("watchdog.checkpoint_stalls");
  mem_.AttachMetrics(&metrics_);
}

std::unique_lock<std::shared_mutex> Database::LockCatalogExclusive() const {
  const uint64_t t0 = MonotonicNanos();
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  catalog_exclusive_wait_->Record(MonotonicNanos() - t0);
  return lock;
}

std::shared_lock<std::shared_mutex> Database::LockCatalogShared() const {
  const uint64_t t0 = MonotonicNanos();
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  catalog_shared_wait_->Record(MonotonicNanos() - t0);
  return lock;
}

size_t Database::StmtKindSlot(sql::Statement::Kind kind) {
  switch (kind) {
    case sql::Statement::Kind::kSelect:
      return 0;
    case sql::Statement::Kind::kInsert:
      return 1;
    case sql::Statement::Kind::kDelete:
      return 2;
    case sql::Statement::Kind::kUpdate:
      return 3;
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateIndex:
    case sql::Statement::Kind::kCreateTrigger:
    case sql::Statement::Kind::kDrop:
      return 4;
    case sql::Statement::Kind::kBegin:
    case sql::Statement::Kind::kCommit:
    case sql::Statement::Kind::kRollback:
    case sql::Statement::Kind::kSavepoint:
    case sql::Statement::Kind::kRelease:
      return 5;
    case sql::Statement::Kind::kExplain:
      return 6;
    default:  // kCheckIntegrity, kShow
      return 7;
  }
}

bool Database::IsDdl(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateIndex:
    case sql::Statement::Kind::kCreateTrigger:
    case sql::Statement::Kind::kDrop:
      return true;
    default:
      return false;
  }
}

void Database::InvalidateStatementCache() {
  cache_index_.clear();
  cache_lru_.clear();
  BumpCatalogVersion();
}

void Database::BumpCatalogVersion() {
  catalog_version_.fetch_add(1, std::memory_order_acq_rel);
  trigger_plans_.clear();
}

std::shared_ptr<const uint64_t> Database::table_version(
    std::string_view name) {
  std::lock_guard<std::mutex> lock(table_versions_mu_);
  auto it = table_versions_.find(name);
  if (it == table_versions_.end()) {
    it = table_versions_.emplace(std::string(name),
                                 std::make_shared<uint64_t>(0)).first;
  }
  return it->second;
}

void Database::BumpTableVersion(std::string_view name) {
  std::lock_guard<std::mutex> lock(table_versions_mu_);
  auto it = table_versions_.find(name);
  if (it != table_versions_.end()) ++*it->second;
}

// ---------------------------------------------------------------------------
// Durability

Database::~Database() {
  // Background threads first: the checkpoint thread holds raw Table* /
  // reader-slot state, the flusher dereferences wal_.
  (void)CheckpointWait();
  StopFlusher();
  // The metrics registry dies before tables_/interner_/txn_ do, and their
  // destructors release memory charges — stop mirroring into gauges now.
  mem_.AttachMetrics(nullptr);
  if (wal_ != nullptr) {
    // Clean shutdown persists pending direct-API writes; an open
    // transaction's pending redo is uncommitted and must not.
    if (!txn_.active()) (void)WalCommitUnit();
    (void)wal_->Close();
  }
  // lock_file_'s destructor releases the directory flock.
}

Status Database::Open(const std::string& dir,
                      const DurabilityOptions& options) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("durability is already open");
  }
  if (!tables_.empty() || txn_.active()) {
    return Status::InvalidArgument(
        "Open requires a fresh Database (no tables, no open transaction)");
  }
  vfs_ = options.vfs != nullptr ? options.vfs : Vfs::Default();
  int err = vfs_->Mkdir(dir);
  if (err == 0) {
    // Make the new directory's own entry durable (see WalWriter::Open for
    // the file-level counterpart); without this a power loss could lose
    // the whole directory even though its files were fsynced.
    if (options.sync_mode != SyncMode::kNone) {
      if ((err = vfs_->SyncDir(dir)) != 0) {
        return ErrnoStatus("cannot fsync parent of data directory", dir, err);
      }
    }
  } else if (err != EEXIST) {
    return ErrnoStatus("cannot create data directory", dir, err);
  }
  data_dir_ = dir;
  durability_options_ = options;

  // Exclusive directory lock: two writers on one WAL would truncate and
  // overwrite each other's committed frames with no error until the next
  // recovery hits a CRC mismatch. flock conflicts across processes AND
  // across two Database instances in one process; released in ~Database.
  std::string lock_path = dir + "/LOCK";
  std::unique_ptr<VfsFile> lock =
      vfs_->Open(lock_path, Vfs::OpenMode::kWrite, &err);
  if (lock == nullptr) {
    return ErrnoStatus("cannot open lock file", lock_path, err);
  }
  if (lock->TryLockExclusive() != 0) {
    return Status::InvalidArgument(
        "data directory '" + dir +
        "' is already in use by another Database (lock held)");
  }
  lock_file_ = std::move(lock);
  // Restore the documented fresh-Database precondition on any failure: a
  // half-loaded snapshot or half-replayed WAL must not linger as a partial
  // catalog the caller could mistake for usable in-memory state.
  auto fail = [&](Status s) {
    tables_.clear();
    triggers_.clear();
    trigger_plans_.clear();
    table_versions_.clear();
    next_id_ = 1;
    data_dir_.clear();
    recovered_ = false;
    lock_file_ = nullptr;
    return s;
  };

  // A crash (or ENOSPC) between a checkpoint's temp-file write and its
  // rename leaves an orphan temp snapshot; clean it up here so it cannot
  // accumulate in the data dir forever.
  if (vfs_->Exists(SnapshotTmpPath(dir))) {
    (void)vfs_->Remove(SnapshotTmpPath(dir));
  }

  Status recovered = RecoverFromDir();
  if (!recovered.ok()) return fail(recovered);
  if (durability_options_.sync_mode == SyncMode::kBatched) StartFlusher();
  return Status::OK();
}

Status Database::RecoverFromDir() {
  const uint64_t t0 = MonotonicNanos();
  uint64_t epoch = 1;
  uint64_t wal_offset = 0;
  bool have_snapshot = false;
  if (vfs_->Exists(SnapshotPath(data_dir_))) {
    auto loaded = LoadSnapshot(this, vfs_, SnapshotPath(data_dir_));
    if (!loaded.ok()) return loaded.status();
    epoch = loaded.value().epoch;
    wal_offset = loaded.value().wal_offset;
    have_snapshot = true;
  }
  WalReplayResult replay;
  if (vfs_->Exists(WalPath(data_dir_))) {
    auto replayed = ReplayWal(this, vfs_, WalPath(data_dir_), epoch,
                              wal_offset);
    if (!replayed.ok()) return replayed.status();
    replay = replayed.value();
  }
  if (replay.valid_bytes < wal_offset) {
    // The snapshot (written by a background checkpoint) contains every
    // commit up to wal_offset, but the WAL's valid prefix ends short of
    // that — a synced region was lost or corrupted. Resuming appends at
    // valid_bytes would alias NEW commits into the byte range the next
    // recovery skips as snapshot-covered, silently dropping them; fail
    // loudly instead.
    return Status::Internal(
        "WAL valid prefix (" + std::to_string(replay.valid_bytes) +
        " bytes) ends before the snapshot's recorded offset (" +
        std::to_string(wal_offset) + "): a synced WAL region was lost");
  }
  stats_.recovery_replayed += replay.applied_records;
  recovered_ = have_snapshot || replay.applied_records > 0;

  auto writer = WalWriter::Open(vfs_, WalPath(data_dir_), epoch,
                                replay.valid_bytes, durability_options_,
                                &stats_, &replay.table_ids);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(writer).value();
  wal_->AttachMetrics(metrics_.GetHistogram("wal.commit_unit"),
                      metrics_.GetHistogram("wal.fsync"),
                      metrics_.GetHistogram("wal.batch_commits"), &events_);
  wal_->set_accountant(&mem_);
  txn_.AttachWal(wal_.get());
  // Everything loaded so far belongs to the pre-boundary epoch; publish the
  // first post-recovery boundary so reader pins see the recovered state.
  epochs_.Advance();
  const uint64_t dur = MonotonicNanos() - t0;
  metrics_.GetHistogram("db.recovery")->Record(dur);
  events_.Record({TraceEvent::Kind::kRecovery, t0, dur,
                  replay.applied_records, 0, nullptr});
  return Status::OK();
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durability is not open");
  }
  if (read_only_) return ReadOnlyError("checkpoint");
  if (txn_.active()) {
    return Status::InvalidArgument(
        "cannot checkpoint inside a transaction (the snapshot must not "
        "contain uncommitted effects)");
  }
  // A background checkpoint holds raw Table* and WAL-offset assumptions
  // this full checkpoint would invalidate (it truncates the WAL). Its own
  // failure is benign (old snapshot + full WAL stay consistent), so it
  // does not block this full checkpoint.
  (void)CheckpointWait();
  Status unit = WalCommitUnit();
  if (!unit.ok()) {
    if (wal_->broken()) EnterReadOnly(unit);
    return unit;
  }
  const uint64_t t0 = MonotonicNanos();
  const uint64_t new_epoch = wal_->epoch() + 1;
  bool renamed = false;
  Status snap = WriteSnapshot(*this, vfs_, SnapshotPath(data_dir_),
                              SnapshotTmpPath(data_dir_), new_epoch,
                              /*wal_offset=*/0, &renamed);
  if (!snap.ok()) {
    // Fail-stop only when the new-epoch snapshot is already visible (the
    // failure hit the post-rename directory fsync): the still-open
    // old-epoch writer would otherwise accept commits that the next
    // recovery silently ignores. A pre-rename failure (e.g. transient
    // ENOSPC on the temp file) leaves old snapshot + WAL fully consistent,
    // so the writer keeps going and the checkpoint can simply be retried.
    if (renamed) {
      wal_->MarkBroken("checkpoint failed after the new snapshot became "
                       "visible: " + snap.message());
      EnterReadOnly(snap);
    }
    return snap;
  }
  // The snapshot now contains every WAL record; reset the log to the new
  // epoch. A crash between the rename above and this reset leaves an
  // old-epoch WAL that recovery recognizes as contained and ignores.
  // flusher_mu_ keeps the group-commit flusher off wal_ across the swap.
  std::unique_lock<std::mutex> flusher_lock(flusher_mu_);
  Status closed = wal_->Close();
  auto reopened = closed.ok()
                      ? WalWriter::Open(vfs_, WalPath(data_dir_), new_epoch, 0,
                                        durability_options_, &stats_)
                      : Result<std::unique_ptr<WalWriter>>(closed);
  if (!reopened.ok()) {
    // Same fail-stop: the snapshot is durable up to this point, but the
    // log cannot accept new units. The (closed) writer stays attached in
    // its broken state so mutations still pend and every later durable
    // COMMIT fails loudly at its unit boundary.
    wal_->MarkBroken("cannot reset WAL after checkpoint: " +
                     reopened.status().message());
    flusher_lock.unlock();
    EnterReadOnly(reopened.status());
    return reopened.status();
  }
  wal_ = std::move(reopened).value();
  wal_->AttachMetrics(metrics_.GetHistogram("wal.commit_unit"),
                      metrics_.GetHistogram("wal.fsync"),
                      metrics_.GetHistogram("wal.batch_commits"), &events_);
  wal_->set_accountant(&mem_);
  txn_.AttachWal(wal_.get());
  flusher_lock.unlock();
  ++stats_.checkpoints;
  const uint64_t dur = MonotonicNanos() - t0;
  metrics_.GetHistogram("db.checkpoint")->Record(dur);
  events_.Record({TraceEvent::Kind::kCheckpoint, t0, dur, 0, 0, nullptr});
  return Status::OK();
}

Status Database::WalFlush() {
  if (txn_.active()) return Status::OK();
  Status unit = WalCommitUnit();
  // Every top-level boundary publishes an epoch — also on statement failure
  // (outside a transaction partial effects stay visible, matching the
  // documented single-thread semantics) and on non-durable Databases.
  AdvanceEpochBoundary();
  return unit;
}

void Database::AdvanceEpochBoundary() {
  const uint64_t published = epochs_.Advance();
  epoch_published_gauge_->store(static_cast<int64_t>(published),
                                std::memory_order_relaxed);
  // Fast path: nothing retired, no version-buffer images, no reader
  // pinned, and no stale lag to decay → the boundary cost stays the single
  // atomic increment plus three relaxed gauge touches. The min-pinned slot
  // scan runs only while it has something to observe (readers to measure
  // lag against, garbage to reclaim, or a nonzero lag to decay back to 0).
  const bool has_garbage =
      epochs_.has_retired() || epochs_.version_entries > 0;
  if (!has_garbage &&
      epochs_.readers_gauge->load(std::memory_order_relaxed) == 0 &&
      epochs_.lag_gauge->load(std::memory_order_relaxed) == 0) {
    return;
  }
  const uint64_t min_pinned = epochs_.MinPinned();
  epochs_.lag_gauge->store(
      min_pinned == UINT64_MAX ? 0
                               : static_cast<int64_t>(published - min_pinned),
      std::memory_order_relaxed);
  if (!has_garbage) return;
  epochs_.ReclaimBefore(min_pinned);
  uint64_t version_bytes = 0;
  if (epochs_.version_entries > 0) {
    uint64_t trimmed = 0;
    for (auto& [name, table] : tables_) {
      trimmed += table->GcVersions(min_pinned);
      version_bytes += table->version_bytes();
    }
    if (trimmed != 0) {
      version_gc_rows_->fetch_add(trimmed, std::memory_order_relaxed);
    }
  }
  version_rows_gauge_->store(static_cast<int64_t>(epochs_.version_entries),
                             std::memory_order_relaxed);
  version_bytes_gauge_->store(static_cast<int64_t>(version_bytes),
                              std::memory_order_relaxed);
}

Status Database::WalCommitUnit() {
  if (wal_ == nullptr || wal_->pending_empty()) return Status::OK();
  Status s = wal_->CommitPending(next_id_);
  // A fail-stopped writer can never accept another unit: flip the whole
  // Database into read-only mode so later statements are rejected up front
  // with a clean kUnavailable instead of each discovering the broken log.
  if (!s.ok() && wal_->broken()) EnterReadOnly(s);
  return s;
}

void Database::WalLogDdl(std::string_view sql_text) {
  if (wal_ == nullptr || sql_text.empty()) return;
  wal_->PendDdl(sql_text);
}

// ---------------------------------------------------------------------------
// Graceful degradation

Database::Health Database::health() const {
  Health h;
  h.read_only = read_only_.load(std::memory_order_acquire);
  h.cause = read_only_cause_;
  h.flusher_stalled = FlusherStalled();
  h.checkpoint_stalled = CheckpointStalled();
  return h;
}

bool Database::FlusherStalled() const {
  const uint64_t hb = flusher_heartbeat_ns_.load(std::memory_order_acquire);
  if (!flusher_.joinable() || hb == 0) return false;
  const int window_us = durability_options_.group_commit_window_us > 0
                            ? durability_options_.group_commit_window_us
                            : 2000;
  const uint64_t budget = static_cast<uint64_t>(watchdog_stall_windows_) *
                          static_cast<uint64_t>(window_us) * 1000;
  const uint64_t now = MonotonicNanos();
  const bool stalled = now - hb > budget;
  if (stalled) {
    if (!flusher_stall_reported_.exchange(true, std::memory_order_acq_rel)) {
      flusher_stall_counter_->fetch_add(1, std::memory_order_relaxed);
      events_.Record({TraceEvent::Kind::kGovernance, hb, now - hb,
                      static_cast<uint64_t>(watchdog_stall_windows_),
                      static_cast<uint64_t>(window_us), "flusher_stall"});
    }
  } else {
    flusher_stall_reported_.store(false, std::memory_order_release);
  }
  return stalled;
}

bool Database::CheckpointStalled() const {
  if (!checkpoint_running_ ||
      checkpoint_done_.load(std::memory_order_acquire)) {
    // A finished-but-unjoined background checkpoint made its progress; only
    // a thread still inside the snapshot write can be stalled.
    checkpoint_stall_reported_.store(false, std::memory_order_release);
    return false;
  }
  const uint64_t hb = checkpoint_heartbeat_ns_.load(std::memory_order_acquire);
  if (hb == 0) return false;
  const uint64_t budget = static_cast<uint64_t>(watchdog_stall_windows_) *
                          static_cast<uint64_t>(checkpoint_watchdog_window_us_) *
                          1000;
  const uint64_t now = MonotonicNanos();
  const bool stalled = now - hb > budget;
  if (stalled &&
      !checkpoint_stall_reported_.exchange(true, std::memory_order_acq_rel)) {
    checkpoint_stall_counter_->fetch_add(1, std::memory_order_relaxed);
    events_.Record({TraceEvent::Kind::kGovernance, hb, now - hb,
                    static_cast<uint64_t>(watchdog_stall_windows_),
                    static_cast<uint64_t>(checkpoint_watchdog_window_us_),
                    "checkpoint_stall"});
  }
  return stalled;
}

void Database::EnterReadOnly(const Status& cause) {
  if (read_only_) return;  // keep the first (root) cause
  read_only_ = true;
  read_only_cause_ = cause.message();
}

Status Database::ReadOnlyError(const std::string& action) const {
  return Status::Unavailable(
      action + " rejected: database is in read-only mode after a storage "
      "fault (" + read_only_cause_ + "); retry after TryHeal()");
}

Status Database::CheckWritable(const sql::Statement& stmt) const {
  if (!read_only_) return Status::OK();
  const char* action = nullptr;
  switch (stmt.kind) {
    // DDL always goes through the WAL when durability is open.
    case sql::Statement::Kind::kCreateTable:
      action = "CREATE TABLE";
      break;
    case sql::Statement::Kind::kCreateIndex:
      action = "CREATE INDEX";
      break;
    case sql::Statement::Kind::kCreateTrigger:
      action = "CREATE TRIGGER";
      break;
    case sql::Statement::Kind::kDrop:
      action = "DROP";
      break;
    // DML is rejected only against durable tables: engine scratch tables
    // (idlists, setup markers) bypass the WAL and must keep working so
    // reads — which stage intermediate ids — still run in degraded mode.
    case sql::Statement::Kind::kInsert: {
      const Table* t = FindTable(stmt.insert.table);
      if (t == nullptr || t->durable()) action = "INSERT";
      break;
    }
    case sql::Statement::Kind::kDelete: {
      const Table* t = FindTable(stmt.del.table);
      if (t == nullptr || t->durable()) action = "DELETE";
      break;
    }
    case sql::Statement::Kind::kUpdate: {
      const Table* t = FindTable(stmt.update.table);
      if (t == nullptr || t->durable()) action = "UPDATE";
      break;
    }
    // SELECT, EXPLAIN, CHECK INTEGRITY, and transaction control stay
    // available (a txn holding only scratch-table writes is legitimate).
    default:
      break;
  }
  if (action == nullptr) return Status::OK();
  return ReadOnlyError(action);
}

Status Database::ReopenFromDisk() {
  // No background work may straddle the rebuild: the checkpoint thread
  // holds raw Table*, the flusher dereferences wal_.
  (void)CheckpointWait();
  // Probe first: recover the on-disk state into a scratch Database. Free
  // functions only (no Open), so the scratch never touches our flock. If
  // the fault is still active this fails without disturbing our readable
  // in-memory catalog.
  {
    Database probe;
    probe.data_dir_ = data_dir_;
    probe.durability_options_ = durability_options_;
    probe.vfs_ = vfs_;
    Status probed = probe.RecoverFromDir();
    // The probe opened its own writer on our WAL path; close it before we
    // reopen ours so the header/truncate below is the only writer.
    if (probe.wal_ != nullptr) {
      (void)probe.wal_->Close();
      probe.wal_ = nullptr;
      probe.txn_.AttachWal(nullptr);
    }
    probe.data_dir_.clear();
    if (!probed.ok()) return probed;
  }

  // The disk state recovers cleanly — rebuild this Database from it.
  // Dropping the catalog invalidates every cached plan via per-table
  // versions plus the global catalog version. The exclusive catalog lock
  // covers only the teardown (holding it across RecoverFromDir would
  // deadlock with CreateTableDirect's own exclusive acquisition): reader
  // statements racing the rebuild may see a partial catalog — a documented
  // heal-window anomaly.
  {
    std::lock_guard<std::mutex> flusher_lock(flusher_mu_);
    wal_ = nullptr;
  }
  txn_.AttachWal(nullptr);
  {
    auto lock = LockCatalogExclusive();
    {
      std::lock_guard<std::mutex> vlock(table_versions_mu_);
      for (auto& [name, version] : table_versions_) ++*version;
    }
    tables_.clear();
    triggers_.clear();
    trigger_plans_.clear();
    InvalidateStatementCache();
  }
  next_id_ = 1;
  recovered_ = false;
  // Clear the gate BEFORE replaying: snapshot load re-executes CREATE
  // TRIGGER text through the Executor, which checks CheckWritable.
  read_only_ = false;
  read_only_cause_.clear();
  Status s = RecoverFromDir();
  if (!s.ok()) {
    // Half-recovered catalog: stay degraded with the new cause. Reads over
    // whatever loaded still work; writes stay rejected.
    EnterReadOnly(s);
    return s;
  }
  return Status::OK();
}

Status Database::TryHeal(int max_attempts) {
  if (data_dir_.empty()) {
    return Status::InvalidArgument("durability is not open");
  }
  if (!read_only_) return Status::OK();
  if (txn_.active()) {
    return Status::InvalidArgument(
        "cannot heal inside a transaction (roll back first)");
  }
  Status last = Status::OK();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff, bounded by kMaxHealBackoffMs and interruptible
      // via the cancel token (slept in 1ms slices so a Cancel() from
      // another thread is honored within ~1ms). Each backoff is a
      // kGovernance trace span annotated with the attempt and planned wait.
      const int backoff_ms =
          std::min(1 << attempt, kMaxHealBackoffMs);
      const uint64_t t0 = MonotonicNanos();
      for (int slept = 0; slept < backoff_ms; ++slept) {
        if (cancel_token_.cancelled()) {
          events_.Record({TraceEvent::Kind::kGovernance, t0,
                          MonotonicNanos() - t0,
                          static_cast<uint64_t>(attempt),
                          static_cast<uint64_t>(backoff_ms), "heal_backoff"});
          return Status::Cancelled(
              "heal cancelled during backoff (attempt " +
              std::to_string(attempt) + " of " +
              std::to_string(max_attempts) + ")");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      events_.Record({TraceEvent::Kind::kGovernance, t0,
                      MonotonicNanos() - t0, static_cast<uint64_t>(attempt),
                      static_cast<uint64_t>(backoff_ms), "heal_backoff"});
    }
    ++stats_.heal_attempts;
    heal_attempts_counter_->fetch_add(1, std::memory_order_relaxed);
    last = ReopenFromDisk();
    if (last.ok()) return Status::OK();
  }
  return Status::Unavailable(
      "heal failed after " + std::to_string(max_attempts) +
      " attempts, database remains read-only (" + last.message() + ")");
}

Status Database::Begin() {
  if (!txn_.active()) txn_start_ns_ = MonotonicNanos();
  txn_.Begin(next_id_);
  return Status::OK();
}

Status Database::Commit() {
  XUPD_RETURN_IF_ERROR(txn_.Commit());
  // The outermost commit makes the unit durable: flush its redo records.
  if (!txn_.active()) {
    Status unit = WalCommitUnit();
    AdvanceEpochBoundary();
    const uint64_t dur = MonotonicNanos() - txn_start_ns_;
    metrics_.GetHistogram("db.txn")->Record(dur);
    events_.Record({TraceEvent::Kind::kTxn, txn_start_ns_, dur, 1, 0,
                    nullptr});
    return unit;
  }
  return Status::OK();
}

Status Database::Rollback() {
  auto next_id = txn_.Rollback();
  if (!next_id.ok()) return next_id.status();
  next_id_ = next_id.value();
  if (!txn_.active()) {
    // Rolled-back state is a boundary too: rows un-deleted by undo carry
    // their restored metadata and must become visible to new pins.
    AdvanceEpochBoundary();
    const uint64_t dur = MonotonicNanos() - txn_start_ns_;
    metrics_.GetHistogram("db.txn")->Record(dur);
    events_.Record({TraceEvent::Kind::kTxn, txn_start_ns_, dur, 0, 0,
                    nullptr});
  }
  return Status::OK();
}

Status Database::Savepoint(const std::string& name) {
  if (!txn_.active()) {
    return Status::InvalidArgument(
        "SAVEPOINT requires an active transaction");
  }
  txn_.Begin(next_id_, name);
  return Status::OK();
}

Status Database::RollbackTo(const std::string& name) {
  auto next_id = txn_.RollbackTo(name);
  if (!next_id.ok()) return next_id.status();
  next_id_ = next_id.value();
  return Status::OK();
}

Status Database::Release(const std::string& name) {
  XUPD_RETURN_IF_ERROR(txn_.Release(name));
  // Releasing the outermost scope commits the unit — WalFlush also
  // publishes the epoch boundary.
  if (!txn_.active()) return WalFlush();
  return Status::OK();
}

Status Database::ConsumeFailpoint() {
  if (fail_after_statements_ < 0) return Status::OK();
  if (fail_after_statements_ == 0) {
    fail_after_statements_ = -1;
    return Status::Internal("injected failure");
  }
  --fail_after_statements_;
  return Status::OK();
}

Status Database::CheckDdlBarrier(const sql::Statement& stmt) const {
  if (txn_.active() && IsDdl(stmt)) {
    return Status::InvalidArgument(
        "DDL is not allowed inside a transaction (catalog changes are not "
        "undoable; commit or roll back first)");
  }
  return Status::OK();
}

void Database::set_prepared_cache_capacity(size_t capacity) {
  cache_capacity_ = capacity;
  while (cache_lru_.size() > cache_capacity_) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

uint64_t Database::EffectiveDeadline(int64_t timeout_us) const {
  uint64_t deadline =
      timeout_us > 0 ? MonotonicNanos() + static_cast<uint64_t>(timeout_us) *
                                              1000
                     : 0;
  // An armed engine-op deadline bounds every statement of the op; the
  // earlier of the two wins.
  if (operation_deadline_ns_ != 0 &&
      (deadline == 0 || operation_deadline_ns_ < deadline)) {
    deadline = operation_deadline_ns_;
  }
  return deadline;
}

bool Database::GovernanceExempt(sql::Statement::Kind kind) {
  switch (kind) {
    // Resource-releasing and diagnostic statements must run even over
    // budget / past a deadline: COMMIT and ROLLBACK shrink the very
    // buffers the budgets meter, and SHOW / CHECK INTEGRITY / SET are how
    // an operator diagnoses and fixes an overloaded database.
    case sql::Statement::Kind::kCommit:
    case sql::Statement::Kind::kRollback:
    case sql::Statement::Kind::kRelease:
    case sql::Statement::Kind::kShow:
    case sql::Statement::Kind::kCheckIntegrity:
    case sql::Statement::Kind::kSet:
      return true;
    default:
      return false;
  }
}

Status Database::GovernanceAdmission(uint64_t deadline_ns) const {
  if (cancel_token_.cancelled()) {
    return Status::Cancelled(
        "statement cancelled via CancelToken (Reset() to resume)");
  }
  if (deadline_ns != 0 && MonotonicNanos() >= deadline_ns) {
    return Status::DeadlineExceeded(
        "statement deadline exceeded before execution (see "
        "Database::set_statement_timeout_us / SET STATEMENT_TIMEOUT)");
  }
  XUPD_RETURN_IF_ERROR(mem_.CheckHard());
  return mem_.CheckAdmission();
}

Result<ResultSet> Database::RunStatement(const sql::Statement& stmt,
                                         const std::vector<Value>* params,
                                         std::string_view sql_text,
                                         PlanCacheSlot* slot,
                                         uint64_t deadline_ns) {
  // DDL invalidation happens inside the Executor, the choke point shared
  // by all entry paths.
  const bool exempt = GovernanceExempt(stmt.kind);
  // Snapshot stats when governance could kill this statement, so a killed
  // statement's slow-log entry carries the partial-work delta even with
  // the slow log's threshold disabled.
  const bool governed =
      !exempt && (deadline_ns != 0 || cancel_at_pull_armed_ ||
                  mem_.soft_budget() != 0 || mem_.hard_budget() != 0 ||
                  mem_.wal_pending_limit() != 0);
  const bool slow_enabled = slow_statement_threshold_us_ >= 0;
  Stats before;
  if (slow_enabled || governed) before = stats_;
  const uint64_t t0 = MonotonicNanos();
  // Root (or nested, inside a trigger cascade) span of the statement: every
  // engine op, WAL unit and fsync recorded below inherits it through the
  // thread-local trace context.
  trace::SpanScope stmt_span;
  Executor exec(this, params, sql_text);
  exec.set_deadline(deadline_ns);
  Status gate = exempt ? Status::OK() : GovernanceAdmission(deadline_ns);
  auto result = gate.ok() ? exec.Run(stmt, slot) : Result<ResultSet>(gate);
  Status wal = WalFlush();
  const uint64_t dur = MonotonicNanos() - t0;
  stmt_hists_[StmtKindSlot(stmt.kind)]->Record(dur);
  *exec_ns_ += dur;
  TraceEvent stmt_ev{TraceEvent::Kind::kStatement, t0, dur,
                     static_cast<uint64_t>(stmt.kind), 0, nullptr};
  stmt_span.Annotate(&stmt_ev);
  events_.Record(stmt_ev);
  // Classify governance kills: count them, and force a slow-log entry with
  // the cause so operators can see WHAT was killed and how far it got.
  const char* cause = nullptr;
  if (!result.ok()) {
    switch (result.status().code()) {
      case StatusCode::kCancelled:
        cause = "cancelled";
        stmt_cancelled_->fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        cause = "deadline_exceeded";
        stmt_deadline_exceeded_->fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kResourceExhausted:
        cause = "resource_exhausted";
        stmt_resource_exhausted_->fetch_add(1, std::memory_order_relaxed);
        if (!gate.ok()) stmt_shed_->fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;
    }
  }
  if ((slow_enabled && dur >= slow_statement_threshold_us_ * 1000.0) ||
      cause != nullptr) {
    SlowStatement slow;
    slow.sql = std::string(sql_text);
    slow.duration_ns = dur;
    if (slow_enabled || governed) slow.delta = stats_.Delta(before);
    if (exec.last_plan() != nullptr) slow.plan = PlanToString(*exec.last_plan());
    if (cause != nullptr) slow.cause = cause;
    if (slow_log_.size() >= slow_log_capacity_) {
      slow_log_.erase(slow_log_.begin());
    }
    slow_log_.push_back(std::move(slow));
    ++stats_.slow_statements;
  }
  if (!result.ok()) return result;
  if (!wal.ok()) return wal;
  return result;
}

Status Database::Execute(std::string_view sql_text) {
  return Execute(sql_text, statement_timeout_us());
}

Status Database::Execute(std::string_view sql_text, int64_t timeout_us) {
  auto result = ExecuteQuery(sql_text, timeout_us);
  if (!result.ok()) return result.status();
  return Status::OK();
}

Result<ResultSet> Database::ExecuteQuery(std::string_view sql_text) {
  return ExecuteQuery(sql_text, statement_timeout_us());
}

Result<ResultSet> Database::ExecuteQuery(std::string_view sql_text,
                                         int64_t timeout_us) {
  ++stats_.statements;
  const uint64_t deadline_ns = EffectiveDeadline(timeout_us);
  SpinFor(statement_latency_us_, deadline_ns);
  ++stats_.sql_parses;
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return stmt.status();
  return RunStatement(stmt.value(), nullptr, sql_text, nullptr, deadline_ns);
}

Result<StatementHandle> Database::Prepare(std::string_view sql_text,
                                          bool cacheable) {
  auto it = cache_index_.find(sql_text);
  if (it != cache_index_.end()) {
    ++stats_.prepared_hits;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->second;
  }
  ++stats_.prepared_misses;
  ++stats_.sql_parses;
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return stmt.status();
  auto prepared = std::make_shared<PreparedStatement>();
  prepared->sql = std::string(sql_text);
  prepared->param_count = stmt.value().param_count;
  prepared->stmt = std::move(stmt).value();
  StatementHandle handle = std::move(prepared);
  // DDL is never cached: executing it would invalidate its own entry.
  if (cacheable && !IsDdl(handle->stmt) && cache_capacity_ > 0) {
    cache_lru_.emplace_front(handle->sql, handle);
    cache_index_[handle->sql] = cache_lru_.begin();
    if (cache_lru_.size() > cache_capacity_) {
      cache_index_.erase(cache_lru_.back().first);
      cache_lru_.pop_back();
    }
  }
  return handle;
}

Status Database::ExecutePrepared(const StatementHandle& handle,
                                 const std::vector<Value>& params) {
  auto result = ExecuteQueryPrepared(handle, params);
  if (!result.ok()) return result.status();
  return Status::OK();
}

Result<ResultSet> Database::ExecuteQueryPrepared(
    const StatementHandle& handle, const std::vector<Value>& params) {
  if (handle == nullptr) {
    return Status::InvalidArgument("null prepared statement handle");
  }
  if (static_cast<int>(params.size()) != handle->param_count) {
    return Status::InvalidArgument(
        "bound " + std::to_string(params.size()) + " parameters, statement has " +
        std::to_string(handle->param_count));
  }
  ++stats_.statements;
  const uint64_t deadline_ns = EffectiveDeadline(statement_timeout_us());
  SpinFor(statement_latency_us_, deadline_ns);
  return RunStatement(handle->stmt, &params, handle->sql,
                      &handle->plan_slot, deadline_ns);
}

Status Database::ExecuteBound(std::string_view sql,
                              const std::vector<Value>& params,
                              bool cacheable) {
  auto handle = Prepare(sql, cacheable);
  if (!handle.ok()) return handle.status();
  return ExecutePrepared(handle.value(), params);
}

Result<ResultSet> Database::ExecuteQueryBound(std::string_view sql,
                                              const std::vector<Value>& params,
                                              bool cacheable) {
  auto handle = Prepare(sql, cacheable);
  if (!handle.ok()) return handle.status();
  return ExecuteQueryPrepared(handle.value(), params);
}

Result<Table*> Database::CreateTableDirect(TableSchema schema,
                                           bool transactional, bool durable) {
  if (read_only_ && durable) return ReadOnlyError("CREATE TABLE");
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table '" + schema.name() + "' already exists");
  }
  std::string key = schema.name();
  auto table = std::make_unique<Table>(std::move(schema),
                                       transactional ? &txn_ : nullptr);
  table->set_durable(durable);
  table->set_interner(&interner_);
  table->set_epoch_manager(&epochs_);
  table->set_accountant(&mem_);
  Table* raw = table.get();
  {
    auto lock = LockCatalogExclusive();
    tables_.emplace(std::move(key), std::move(table));
  }
  return raw;
}

Status Database::DropTableDirect(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' not found");
  }
  if (read_only_ && it->second->durable()) return ReadOnlyError("DROP TABLE");
  if (it->second->durable() && wal_ != nullptr && txn_.active()) {
    return Status::InvalidArgument(
        "cannot drop durable table '" + std::string(name) +
        "' inside a transaction while the WAL is open (the drop could not "
        "roll back with the enclosing scope)");
  }
  // An off-thread checkpoint may hold this raw Table*.
  (void)CheckpointWait();
  txn_.PurgeTable(it->second.get());
  std::string dropped = it->second->schema().name();
  bool was_durable = it->second->durable();
  if (was_durable) {
    // Redo for the drop: pending records over this table (already
    // serialized) replay first, then the DROP removes it, like in memory.
    WalLogDdl("DROP TABLE " + dropped);
  }
  {
    auto lock = LockCatalogExclusive();
    // Cached plans may hold this Table*; their per-table dependency makes
    // them re-plan before any reuse. Plans over other tables stay valid —
    // no global version bump (that is the point of per-table dependencies:
    // the §6.2.2 staging churn leaves unrelated cached plans hot). Bumped
    // inside the exclusive section so no reader validates a stale plan
    // against the mutated catalog.
    BumpTableVersion(name);
    tables_.erase(it);
    for (auto t = triggers_.begin(); t != triggers_.end();) {
      if (EqualsIgnoreCase(t->table, dropped)) {
        // The trigger-plan map is keyed by these statements' identities;
        // erase them before the shared_ptrs can die.
        for (const auto& stmt : t->body) trigger_plans_.erase(stmt.get());
        t = triggers_.erase(t);
      } else {
        ++t;
      }
    }
  }
  // A durable drop is a catalog change like SQL DDL: flush it (and any
  // pending direct writes that preceded it) as one committed unit now — it
  // happens outside a transaction (rejected above otherwise), so there is
  // no later commit to ride on.
  if (was_durable) return WalFlush();
  return Status::OK();
}

Status Database::InsertDirect(Table* table, Row row) {
  if (read_only_ && table->durable()) return ReadOnlyError("INSERT");
  auto rowid = table->Insert(std::move(row));
  if (!rowid.ok()) return rowid.status();
  ++stats_.rows_inserted;
  return Status::OK();
}

Table* Database::FindTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    out.push_back(table->schema().name());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Group-commit flusher (kBatched durability)

void Database::StartFlusher() {
  if (flusher_.joinable()) return;
  flusher_stop_ = false;
  // Seed the heartbeat so the watchdog measures from thread start, not
  // from a stale stamp left by a previous flusher incarnation.
  flusher_heartbeat_ns_.store(MonotonicNanos(), std::memory_order_release);
  flusher_stall_reported_.store(false, std::memory_order_relaxed);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void Database::StopFlusher() {
  if (!flusher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(flusher_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  flusher_.join();
}

void Database::FlusherLoop() {
  trace::SetCurrentThreadName("wal-flusher");
  const int window_us = durability_options_.group_commit_window_us > 0
                            ? durability_options_.group_commit_window_us
                            : 2000;
  // Occupancy of the group-commit window: how much of each period the
  // flusher spent inside Sync (100 ≈ fsync saturates the window and
  // commits start seeing un-amortized latency).
  Histogram* occupancy = metrics_.GetHistogram("wal.window_occupancy_pct");
  std::unique_lock<std::mutex> lock(flusher_mu_);
  while (!flusher_stop_) {
    flusher_cv_.wait_for(lock, std::chrono::microseconds(window_us));
    if (flusher_stop_) break;
    // flusher_mu_ (held) keeps wal_ stable across checkpoint/heal swaps;
    // Sync itself no-ops when nothing is dirty. A sync failure is left for
    // the writer to discover at its next commit (MarkBroken happened
    // inside Sync); the flusher never flips the Database read-only from
    // off-thread.
    if (wal_ != nullptr && !wal_->broken()) {
      const uint64_t t0 = MonotonicNanos();
      Status synced = wal_->Sync();
      const uint64_t sync_ns = MonotonicNanos() - t0;
      occupancy->Record(sync_ns * 100 / (static_cast<uint64_t>(window_us) *
                                         1000));
      // Heartbeat only on a successful fsync: a broken or wedged WAL stops
      // the stamps, and the watchdog reports the stall after K windows.
      if (synced.ok()) {
        flusher_heartbeat_ns_.store(MonotonicNanos(),
                                    std::memory_order_release);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Off-thread checkpoint

Status Database::CheckpointBackground() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durability is not open");
  }
  if (read_only_) return ReadOnlyError("checkpoint");
  if (txn_.active()) {
    return Status::InvalidArgument(
        "cannot checkpoint inside a transaction (the snapshot must not "
        "contain uncommitted effects)");
  }
  if (checkpoint_running_) {
    return Status::InvalidArgument(
        "a background checkpoint is already running");
  }
  Status unit = WalCommitUnit();
  if (!unit.ok()) {
    if (wal_->broken()) EnterReadOnly(unit);
    return unit;
  }
  // Everything the snapshot will claim (bytes below wal_offset) must be
  // power-loss durable before the offset is stamped: under kBatched there
  // may be acknowledged-but-unsynced units.
  Status synced = wal_->Sync();
  if (!synced.ok()) {
    if (wal_->broken()) EnterReadOnly(synced);
    return synced;
  }
  // Publish the boundary the snapshot captures, then pin it like a reader:
  // the writer keeps committing past it while the background thread reads
  // the pinned epoch's view, and reclamation holds anything the pin can
  // still reach.
  AdvanceEpochBoundary();
  const int slot = epochs_.AcquireSlot();
  if (slot < 0) {
    return Status::Unavailable(
        "no epoch slot free for a background checkpoint (all reader "
        "sessions in use)");
  }
  auto capture = std::make_shared<CheckpointCapture>();
  capture->pin_epoch = epochs_.Pin(slot);
  capture->next_id = next_id_;
  capture->wal_offset = wal_->file_size();
  capture->epoch = wal_->epoch();
  for (const auto& [name, table] : tables_) {
    if (!table->durable()) continue;
    capture->tables.emplace_back(table.get(), table->SnapshotRowCount());
  }
  for (const auto& trigger : triggers_) {
    capture->trigger_sql.push_back(trigger.sql);
  }
  checkpoint_slot_ = slot;
  checkpoint_running_ = true;
  checkpoint_status_ = Status::OK();
  checkpoint_renamed_ = false;
  checkpoint_done_.store(false, std::memory_order_release);
  checkpoint_stall_reported_.store(false, std::memory_order_relaxed);
  checkpoint_heartbeat_ns_.store(MonotonicNanos(), std::memory_order_release);

  // Writer-side scheduling span (kCheckpoint a=2): the background thread's
  // snapshot-write span (a=1) adopts its handoff, so the trace carries a
  // writer -> checkpoint-thread flow edge.
  trace::SpanScope schedule_span;
  {
    const uint64_t sched_ns = MonotonicNanos();
    TraceEvent ev{TraceEvent::Kind::kCheckpoint, sched_ns, 0, 2, 0,
                  "schedule"};
    schedule_span.Annotate(&ev);
    events_.Record(ev);
  }
  const trace::Handoff bg_handoff = schedule_span.handoff();

  // Handshake: the captured raw Table* are only safe while the background
  // thread holds the shared catalog lock, but a shared_lock cannot be
  // transferred across threads — so wait here until the spawned thread has
  // acquired it. Only then can the writer run DDL again (it will block on
  // the exclusive lock until the snapshot is written or CheckpointWait
  // joined).
  std::mutex ready_mu;
  std::condition_variable ready_cv;
  bool ready = false;
  checkpoint_thread_ =
      std::thread([this, capture, bg_handoff, &ready_mu, &ready_cv, &ready] {
        trace::SetCurrentThreadName("checkpoint");
        trace::SpanScope snapshot_span{bg_handoff};
        auto catalog_lock = LockCatalogShared();
        {
          // Notify under the mutex: the waiter must re-acquire it to return
          // from wait(), so it cannot destroy the stack-local cv while the
          // signal call is still touching it.
          std::lock_guard<std::mutex> lk(ready_mu);
          ready = true;
          ready_cv.notify_one();
        }
        // The stack locals above are dead after the unlock; everything
        // below uses only owned/captured state.
        const uint64_t t0 = MonotonicNanos();
        checkpoint_heartbeat_ns_.store(t0, std::memory_order_release);
        bool renamed = false;
        Status s =
            WriteSnapshotAsOf(*this, vfs_, SnapshotPath(data_dir_),
                              SnapshotTmpPath(data_dir_), *capture, &renamed);
        checkpoint_heartbeat_ns_.store(MonotonicNanos(),
                                       std::memory_order_release);
        checkpoint_status_ = s;
        checkpoint_renamed_ = renamed;
        if (s.ok()) {
          const uint64_t dur = MonotonicNanos() - t0;
          metrics_.GetHistogram("db.checkpoint")->Record(dur);
          TraceEvent ev{TraceEvent::Kind::kCheckpoint, t0, dur, 1, 0,
                        "snapshot"};
          snapshot_span.Annotate(&ev);
          events_.Record(ev);
        }
        // Finished-but-unjoined is not a stall: the watchdog ignores the
        // heartbeat once this flips, even before CheckpointWait runs.
        checkpoint_done_.store(true, std::memory_order_release);
      });
  {
    std::unique_lock<std::mutex> lk(ready_mu);
    ready_cv.wait(lk, [&] { return ready; });
  }
  return Status::OK();
}

Status Database::CheckpointWait() {
  if (!checkpoint_running_) return Status::OK();
  checkpoint_thread_.join();
  checkpoint_running_ = false;
  checkpoint_done_.store(false, std::memory_order_release);
  checkpoint_stall_reported_.store(false, std::memory_order_relaxed);
  epochs_.Unpin(checkpoint_slot_);
  epochs_.ReleaseSlot(checkpoint_slot_);
  checkpoint_slot_ = -1;
  // A background-checkpoint failure is benign — the WAL was not truncated
  // and the previous snapshot (or none) plus the full WAL recover every
  // committed unit; even a renamed-but-unsynced new snapshot is consistent
  // because its wal_offset only skips records it already contains. No
  // fail-stop: the caller may simply retry.
  if (checkpoint_status_.ok()) ++stats_.checkpoints;
  return checkpoint_status_;
}

// ---------------------------------------------------------------------------
// Reader sessions

Result<std::unique_ptr<ReaderSession>> Database::OpenReaderSession() {
  const int slot = epochs_.AcquireSlot();
  if (slot < 0) {
    return Status::Unavailable(
        "all " + std::to_string(EpochManager::kMaxReaders) +
        " reader session slots are in use; retry after an open session "
        "closes (sessions release their slot on destruction)");
  }
  reader_sessions_gauge_->fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<ReaderSession>(new ReaderSession(this, slot));
}

ReaderSession::~ReaderSession() {
  Unpin();
  db_->epochs_.ReleaseSlot(slot_);
  db_->reader_sessions_gauge_->fetch_sub(1, std::memory_order_relaxed);
}

uint64_t ReaderSession::PinSnapshot() {
  if (explicit_pin_) return pin_epoch_;
  pin_epoch_ = db_->epochs_.Pin(slot_);
  explicit_pin_ = true;
  if (db_->epochs_.readers_gauge != nullptr) {
    db_->epochs_.readers_gauge->fetch_add(1, std::memory_order_relaxed);
  }
  return pin_epoch_;
}

void ReaderSession::Unpin() {
  if (!explicit_pin_) return;
  db_->epochs_.Unpin(slot_);
  explicit_pin_ = false;
  pin_epoch_ = 0;
  if (db_->epochs_.readers_gauge != nullptr) {
    db_->epochs_.readers_gauge->fetch_sub(1, std::memory_order_relaxed);
  }
}

Result<ResultSet> ReaderSession::ExecuteQuery(std::string_view sql) {
  return Run(sql, nullptr);
}

Result<ResultSet> ReaderSession::ExecuteQueryBound(
    std::string_view sql, const std::vector<Value>& params) {
  return Run(sql, &params);
}

Result<ResultSet> ReaderSession::Run(std::string_view sql_text,
                                     const std::vector<Value>* params) {
  ++stats_.statements;
  // Parse, or reuse this session's cached parse of the same text.
  auto it = plan_cache_.find(sql_text);
  if (it == plan_cache_.end()) {
    ++stats_.sql_parses;
    auto parsed = sql::ParseSql(sql_text);
    if (!parsed.ok()) return parsed.status();
    CachedPlan entry;
    entry.param_count = parsed.value().param_count;
    entry.stmt = std::move(parsed).value();
    it = plan_cache_.emplace(std::string(sql_text), std::move(entry)).first;
  }
  CachedPlan& cached = it->second;

  // Only SELECT and plain EXPLAIN SELECT: everything else mutates, needs
  // the writer's transaction machinery, or reports writer-private state.
  const sql::Statement* target = &cached.stmt;
  bool explain = false;
  if (target->kind == sql::Statement::Kind::kExplain) {
    if (target->explain_analyze ||
        target->explain->kind != sql::Statement::Kind::kSelect) {
      return Status::InvalidArgument(
          "reader sessions accept only SELECT and EXPLAIN SELECT");
    }
    explain = true;
    target = target->explain.get();
  } else if (target->kind != sql::Statement::Kind::kSelect) {
    return Status::InvalidArgument(
        "reader sessions accept only SELECT and EXPLAIN SELECT");
  }
  const size_t bound = params != nullptr ? params->size() : 0;
  if (static_cast<int>(bound) != cached.param_count) {
    return Status::InvalidArgument(
        "bound " + std::to_string(bound) + " parameters, statement has " +
        std::to_string(cached.param_count));
  }

  // The shared catalog lock spans plan validation AND execution, so the
  // catalog (and every Table* the plan holds) is stable for the whole
  // statement; row-level consistency is the pinned epoch's job.
  auto catalog_lock = db_->LockCatalogShared();
  std::shared_ptr<const PlannedStatement> plan;
  if (cached.plan != nullptr && cached.version == db_->catalog_version()) {
    bool deps_current = true;
    for (const PlanTableDep& dep : cached.plan->table_deps) {
      if (*dep.version != dep.snapshot) {
        deps_current = false;
        break;
      }
    }
    if (deps_current) {
      ++stats_.plan_cache_hits;
      plan = cached.plan;
    }
  }
  if (plan == nullptr) {
    Planner planner(db_, nullptr);
    planner.set_allow_index_probes(false);
    auto planned = planner.Plan(*target);
    if (!planned.ok()) return planned.status();
    ++stats_.plans_built;
    plan = std::move(planned).value();
    cached.plan = plan;
    cached.version = db_->catalog_version();
  }
  if (explain) {
    ResultSet out;
    out.columns = {"plan"};
    for (const std::string& line : SplitChar(PlanToString(*plan), '\n')) {
      out.rows.push_back({Value::Str(line)});
    }
    return out;
  }

  // Pin for this statement unless an explicit snapshot pin is open.
  const bool statement_pin = !explicit_pin_;
  const uint64_t pin =
      statement_pin ? db_->epochs_.Pin(slot_) : pin_epoch_;
  if (statement_pin && db_->epochs_.readers_gauge != nullptr) {
    db_->epochs_.readers_gauge->fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<std::unique_ptr<ResultSet>> cte_store(
      static_cast<size_t>(plan->cte_slot_count));
  ExecContext::SubqueryMemo memo;
  ExecContext ctx;
  ctx.db = db_;
  ctx.stats = &stats_;
  ctx.read_epoch = pin;
  ctx.params = params;
  ctx.cte_values = &cte_store;
  ctx.subquery_memo = &memo;
  // Governance for readers: the statement timeout (read atomically — the
  // writer thread owns the setting) and the shared cancel token. The
  // cancel-at-pull hook and engine-op deadline are writer-thread state and
  // are NOT consulted here.
  const int64_t timeout_us = db_->statement_timeout_us();
  ctx.deadline_ns =
      timeout_us > 0
          ? MonotonicNanos() + static_cast<uint64_t>(timeout_us) * 1000
          : 0;
  ctx.cancel = db_->cancel_token_.flag();
  ctx.mem = &db_->mem_;
  auto result = ExecutePlannedSelect(*plan->select, ctx);
  if (statement_pin) {
    db_->epochs_.Unpin(slot_);
    if (db_->epochs_.readers_gauge != nullptr) {
      db_->epochs_.readers_gauge->fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return result;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size()) + " rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace xupd::rdb
