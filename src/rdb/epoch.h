// Epoch-based MVCC core: the writer publishes a new epoch at every
// outermost commit boundary; reader sessions pin the current epoch for the
// duration of one statement (or an explicit long-running snapshot) and see
// exactly the rows whose [begin, end) epoch interval contains their pin.
// Storage superseded inside a newer epoch (old slab buffers on growth,
// pre-update row images, cleared scratch slabs) is retired here and freed
// only once no reader pins an epoch that could still reference it.
//
// Protocol (all seq_cst on the pin path, so the classic epoch-based
// reclamation argument holds):
//
//   reader pin:    loop { e = current; slot.pinned = e;
//                         if (current == e) break; }
//   writer boundary: current += 1; then scan slots for min pinned
//
// A reader whose re-check succeeds is guaranteed visible to every writer
// scan performed after the next epoch advance, so an object retired at
// epoch E is freed only when min(pinned) > E — at which point no reader
// can be executing inside an epoch that could reach it.
//
// The writer-side cost when no reader is pinned is one atomic increment
// per commit boundary plus (only when garbage is queued) one pass over the
// fixed slot array — the "epoch hooks are ~free" property the concurrent
// read bench budget depends on.
#ifndef XUPD_RDB_EPOCH_H_
#define XUPD_RDB_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace xupd::rdb {

/// Row-epoch constants: row metadata stores begin/end as packed u32s (4B
/// commit boundaries before saturation — unreachable in practice; the
/// write path saturates rather than wraps).
inline constexpr uint32_t kRowEpochInf = UINT32_MAX;
inline constexpr uint32_t kRowEpochMax = UINT32_MAX - 1;

/// ExecContext::read_epoch sentinel: not a snapshot read — the writer
/// thread's scans see the latest in-memory state via liveness bits.
inline constexpr uint64_t kLatestEpoch = ~0ULL;

class EpochManager {
 public:
  /// Fixed slot budget: one per concurrently open reader session. 64 slots
  /// of one cache line each keep the writer's min-pinned scan trivially
  /// cheap.
  static constexpr int kMaxReaders = 64;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;
  ~EpochManager() {
    // Any remaining garbage is unreachable by definition (no readers can
    // outlive the Database that owns this manager).
    for (auto& g : retired_) g.free();
  }

  /// The last published epoch. Rows committed at boundary N carry
  /// begin == N and become visible to pins >= N.
  uint64_t current() const { return current_.load(std::memory_order_seq_cst); }

  /// The epoch the writer's in-flight (uncommitted) changes will belong
  /// to: always current()+1, so nothing in flight is visible to any reader
  /// until the next boundary publishes it.
  uint64_t write_epoch() const {
    return current_.load(std::memory_order_relaxed) + 1;
  }

  /// Claims a reader slot for a session's lifetime; -1 when all
  /// kMaxReaders slots are taken.
  int AcquireSlot() {
    for (int i = 0; i < kMaxReaders; ++i) {
      bool expected = false;
      if (slots_[i].in_use.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        slots_[i].pinned.store(0, std::memory_order_relaxed);
        return i;
      }
    }
    return -1;
  }

  void ReleaseSlot(int slot) {
    slots_[slot].pinned.store(0, std::memory_order_release);
    slots_[slot].in_use.store(false, std::memory_order_release);
  }

  /// Pins the current epoch into `slot` and returns it. The store-then-
  /// revalidate loop guarantees the pin is visible to every writer scan
  /// after the next Advance (see file comment).
  uint64_t Pin(int slot) {
    for (;;) {
      const uint64_t e = current_.load(std::memory_order_seq_cst);
      slots_[slot].pinned.store(e, std::memory_order_seq_cst);
      if (current_.load(std::memory_order_seq_cst) == e) return e;
    }
  }

  bool IsPinned(int slot) const {
    return slots_[slot].pinned.load(std::memory_order_relaxed) != 0;
  }

  void Unpin(int slot) {
    slots_[slot].pinned.store(0, std::memory_order_release);
  }

  /// Publishes a new epoch (writer thread, at an outermost commit
  /// boundary) and returns it.
  uint64_t Advance() {
    return current_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Smallest pinned epoch, or UINT64_MAX when no reader is pinned. Must
  /// be called after Advance for the reclamation argument to hold.
  uint64_t MinPinned() const {
    uint64_t min = UINT64_MAX;
    for (const Slot& s : slots_) {
      const uint64_t p = s.pinned.load(std::memory_order_seq_cst);
      if (p != 0 && p < min) min = p;
    }
    return min;
  }

  /// Queues `free` to run once no reader pins an epoch <= `epoch`.
  /// Writer thread only.
  void Retire(uint64_t epoch, std::function<void()> free) {
    retired_.push_back({epoch, std::move(free)});
  }

  bool has_retired() const { return !retired_.empty(); }

  /// Frees every queued object retired strictly before `min_pinned`
  /// (writer thread, called at commit boundaries). Each freed retirement
  /// bumps the reclaim counter when one is attached.
  void ReclaimBefore(uint64_t min_pinned) {
    size_t kept = 0;
    uint64_t freed = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].epoch < min_pinned) {
        retired_[i].free();
        ++freed;
      } else {
        if (kept != i) retired_[kept] = std::move(retired_[i]);
        ++kept;
      }
    }
    retired_.resize(kept);
    if (freed != 0 && reclaim_counter != nullptr) {
      reclaim_counter->fetch_add(freed, std::memory_order_relaxed);
    }
  }

  /// Retirements still queued (waiting on a pinned reader to unpin).
  size_t retired_pending() const { return retired_.size(); }

  /// Count of pre-update row images parked in table version buffers
  /// (maintained by Table; the writer consults it to decide whether a
  /// boundary needs a GC pass at all). Writer thread only.
  uint64_t version_entries = 0;

  /// Optional metrics hooks, resolved once by Database::InitMetrics so the
  /// epoch hot path touches plain atomics, never a registry map.
  /// Active-reader gauge (readers.active): statements currently holding a
  /// pinned epoch.
  std::atomic<int64_t>* readers_gauge = nullptr;
  /// Epoch-lag gauge (epoch.lag): published − min pinned at the last
  /// boundary, 0 when no reader was pinned. The writer updates it from
  /// AdvanceEpochBoundary.
  std::atomic<int64_t>* lag_gauge = nullptr;
  /// Reclaim counter (mvcc.slab_reclaims): retired slabs/scratch buffers
  /// actually freed by ReclaimBefore.
  std::atomic<uint64_t>* reclaim_counter = nullptr;

 private:
  struct alignas(64) Slot {
    std::atomic<bool> in_use{false};
    std::atomic<uint64_t> pinned{0};  // 0 = not pinned.
  };

  struct Garbage {
    uint64_t epoch = 0;
    std::function<void()> free;
  };

  /// Epoch 1 is "everything loaded before the first boundary": snapshot /
  /// recovery rows get begin = 1 via RowEpochClamp, visible to every pin.
  std::atomic<uint64_t> current_{1};
  Slot slots_[kMaxReaders];
  std::vector<Garbage> retired_;  // writer thread only.
};

/// Saturating u64 -> row-epoch (u32) conversion for row metadata.
inline uint32_t RowEpochClamp(uint64_t e) {
  return e > kRowEpochMax ? kRowEpochMax : static_cast<uint32_t>(e);
}

}  // namespace xupd::rdb

#endif  // XUPD_RDB_EPOCH_H_
