// Content values for Insert / Replace operations (§3.2): new PCDATA, a new
// element subtree, a new attribute, or a new reference. Mirrors the XQuery
// constructors <elem>...</elem>, "text", new_attribute(n, v), new_ref(n, t).
#ifndef XUPD_UPDATE_CONTENT_H_
#define XUPD_UPDATE_CONTENT_H_

#include <memory>
#include <string>

#include "xml/node.h"

namespace xupd::update {

class Content {
 public:
  enum class Kind { kElement, kPcdata, kAttribute, kReference };

  static Content MakeElement(std::unique_ptr<xml::Element> element) {
    Content c(Kind::kElement);
    c.element_ = std::move(element);
    return c;
  }
  static Content MakePcdata(std::string text) {
    Content c(Kind::kPcdata);
    c.text_ = std::move(text);
    return c;
  }
  static Content MakeAttribute(std::string name, std::string value) {
    Content c(Kind::kAttribute);
    c.name_ = std::move(name);
    c.text_ = std::move(value);
    return c;
  }
  static Content MakeReference(std::string name, std::string target) {
    Content c(Kind::kReference);
    c.name_ = std::move(name);
    c.text_ = std::move(target);
    return c;
  }

  Kind kind() const { return kind_; }
  /// kElement: the subtree template; insertion clones it so a Content can be
  /// applied to many targets.
  const xml::Element* element() const { return element_.get(); }
  /// kPcdata: text; kAttribute: value; kReference: target ID.
  const std::string& text() const { return text_; }
  /// kAttribute / kReference: the name / label.
  const std::string& name() const { return name_; }

  Content Clone() const {
    Content c(kind_);
    c.name_ = name_;
    c.text_ = text_;
    if (element_ != nullptr) c.element_ = element_->Clone();
    return c;
  }

 private:
  explicit Content(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::unique_ptr<xml::Element> element_;
  std::string text_;
  std::string name_;
};

}  // namespace xupd::update

#endif  // XUPD_UPDATE_CONTENT_H_
