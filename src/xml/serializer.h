// XML serialization: pretty printing for humans, canonical form for tests.
#ifndef XUPD_XML_SERIALIZER_H_
#define XUPD_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"
#include "xml/node.h"

namespace xupd::xml {

struct SerializeOptions {
  bool pretty = true;
  int indent = 2;
  /// Sort attributes and reflists by name (stable output regardless of
  /// insertion order; attributes are semantically unordered).
  bool sort_attributes = false;
};

std::string Serialize(const Node& node, const SerializeOptions& options = {});
std::string Serialize(const Document& doc, const SerializeOptions& options = {});

/// Canonical single-line form with sorted attributes — suitable for golden
/// comparisons in tests.
std::string Canonical(const Node& node);
std::string Canonical(const Document& doc);

}  // namespace xupd::xml

#endif  // XUPD_XML_SERIALIZER_H_
