// Tests for the Shared Inlining mapping, shredder and Sorted Outer Union.
#include <gtest/gtest.h>

#include "rdb/database.h"
#include "shred/mapping.h"
#include "shred/outer_union.h"
#include "shred/shredder.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xupd::shred {
namespace {

class ShredTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dtd_ = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
    auto mapping = Mapping::SharedInlining(dtd_);
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    mapping_ = std::make_unique<Mapping>(std::move(mapping).value());
  }

  xml::Dtd dtd_;
  std::unique_ptr<Mapping> mapping_;
};

TEST_F(ShredTest, SharedInliningCreatesFourTables) {
  // §5.1: CustDB, Customer, Order, OrderLine (Name/Address/City/... inlined).
  ASSERT_EQ(mapping_->tables().size(), 4u);
  EXPECT_EQ(mapping_->tables()[0].element, "CustDB");
  EXPECT_NE(mapping_->ForElement("Customer"), nullptr);
  EXPECT_NE(mapping_->ForElement("Order"), nullptr);
  EXPECT_NE(mapping_->ForElement("OrderLine"), nullptr);
  EXPECT_EQ(mapping_->ForElement("Name"), nullptr);    // inlined
  EXPECT_EQ(mapping_->ForElement("Address"), nullptr); // inlined
}

TEST_F(ShredTest, InlinedColumns) {
  const TableMapping* customer = mapping_->ForElement("Customer");
  ASSERT_NE(customer, nullptr);
  EXPECT_NE(customer->FindFieldByColumn("Name"), nullptr);
  EXPECT_NE(customer->FindFieldByColumn("Address_City"), nullptr);
  EXPECT_NE(customer->FindFieldByColumn("Address_State"), nullptr);
  // Address is a non-leaf inlined element: it carries a presence flag (§6.1).
  EXPECT_NE(customer->FindFieldByColumn("Address_present"), nullptr);
  const TableMapping* order = mapping_->ForElement("Order");
  ASSERT_NE(order, nullptr);
  EXPECT_NE(order->FindFieldByColumn("Date"), nullptr);
  EXPECT_NE(order->FindFieldByColumn("Status"), nullptr);
}

TEST_F(ShredTest, ParentChildRelationships) {
  EXPECT_EQ(mapping_->ForElement("Customer")->parent_element, "CustDB");
  EXPECT_EQ(mapping_->ForElement("Order")->parent_element, "Customer");
  EXPECT_EQ(mapping_->ForElement("OrderLine")->parent_element, "Order");
  EXPECT_EQ(mapping_->Depth(), 4u);
}

TEST_F(ShredTest, RepeatedLeafGetsOwnTable) {
  // DBLP-style: repeated PCDATA-only children (author*) become tables.
  auto dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT dblp (conference*)>
    <!ELEMENT conference (name, publication*)>
    <!ELEMENT publication (title, year, author*, cite*)>
    <!ELEMENT name (#PCDATA)> <!ELEMENT title (#PCDATA)>
    <!ELEMENT year (#PCDATA)> <!ELEMENT author (#PCDATA)>
    <!ELEMENT cite (#PCDATA)>)");
  auto mapping = Mapping::SharedInlining(dtd);
  ASSERT_TRUE(mapping.ok());
  // dblp, conference, publication, author, cite (name/title/year inlined).
  EXPECT_EQ(mapping->tables().size(), 5u);
  EXPECT_NE(mapping->ForElement("author"), nullptr);
  EXPECT_NE(mapping->ForElement("cite"), nullptr);
  // author table has a value column for its PCDATA.
  EXPECT_NE(mapping->ForElement("author")->FindFieldByColumn("value"), nullptr);
}

TEST_F(ShredTest, SharedChildGetsOwnTable) {
  auto dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT root (a, b)>
    <!ELEMENT a (addr)>
    <!ELEMENT b (addr)>
    <!ELEMENT addr (#PCDATA)>)");
  auto mapping = Mapping::SharedInlining(dtd);
  ASSERT_TRUE(mapping.ok());
  // addr appears under two parents: it must be a table, a/b stay inlined.
  EXPECT_NE(mapping->ForElement("addr"), nullptr);
  EXPECT_EQ(mapping->ForElement("a"), nullptr);
}

TEST_F(ShredTest, RecursiveElementGetsOwnTable) {
  auto dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT part (name, part?)>
    <!ELEMENT name (#PCDATA)>)");
  auto mapping = Mapping::SharedInlining(dtd);
  ASSERT_TRUE(mapping.ok());
  // `part` is recursive: even the optional occurrence cannot be inlined.
  ASSERT_EQ(mapping->tables().size(), 1u);
  EXPECT_EQ(mapping->tables()[0].element, "part");
}

TEST_F(ShredTest, IdRefAttributesMarked) {
  auto dtd = xupd::testing::MustParseDtd(R"(
    <!ELEMENT db (lab*)>
    <!ELEMENT lab (name)>
    <!ELEMENT name (#PCDATA)>
    <!ATTLIST lab ID ID #REQUIRED managers IDREFS #IMPLIED>)");
  auto mapping = Mapping::SharedInlining(dtd);
  ASSERT_TRUE(mapping.ok());
  const TableMapping* lab = mapping->ForElement("lab");
  ASSERT_NE(lab, nullptr);
  const InlinedField* managers = lab->FindFieldByColumn("managers");
  ASSERT_NE(managers, nullptr);
  EXPECT_TRUE(managers->is_ref);
  // The XML attribute "ID" collides with the system id column and is
  // deduplicated; resolve it through the mapping rather than by column name.
  const InlinedField* id = mapping->ResolveInlined(lab, {}, "ID");
  ASSERT_NE(id, nullptr);
  EXPECT_FALSE(id->is_ref);
  EXPECT_NE(id->column, "id");
}

TEST_F(ShredTest, AnyContentRejected) {
  auto dtd = xupd::testing::MustParseDtd("<!ELEMENT free ANY>");
  auto mapping = Mapping::SharedInlining(dtd);
  EXPECT_FALSE(mapping.ok());
}

class ShredLoadTest : public ShredTest {
 protected:
  void SetUp() override {
    ShredTest::SetUp();
    shredder_ = std::make_unique<Shredder>(mapping_.get(), &db_);
    ASSERT_TRUE(shredder_->CreateSchema().ok());
    doc_ = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  }

  rdb::Database db_;
  std::unique_ptr<Shredder> shredder_;
  std::unique_ptr<xml::Document> doc_;
};

TEST_F(ShredLoadTest, LoadCountsPerTable) {
  auto root_id = shredder_->LoadDocument(*doc_, /*via_sql=*/false);
  ASSERT_TRUE(root_id.ok()) << root_id.status();
  auto count = [&](const char* t) {
    auto r = db_.ExecuteQuery(std::string("SELECT COUNT(*) FROM ") + t);
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  };
  EXPECT_EQ(count("CustDB"), 1);
  EXPECT_EQ(count("Customer"), 3);
  EXPECT_EQ(count("Order"), 3);
  EXPECT_EQ(count("OrderLine"), 4);
}

TEST_F(ShredLoadTest, LoadViaSqlMatchesBulk) {
  auto root_id = shredder_->LoadDocument(*doc_, /*via_sql=*/true);
  ASSERT_TRUE(root_id.ok()) << root_id.status();
  auto r = db_.ExecuteQuery("SELECT COUNT(*) FROM OrderLine");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 4);
  // 11 tuples batched into one multi-row INSERT per table (4 tables), after
  // the schema DDL statements.
  EXPECT_GE(db_.stats().statements, 4u);
  EXPECT_EQ(db_.stats().rows_inserted, 11u);
  // Customer 3 + Order 3 + OrderLine 4 rows went in multi-row statements.
  EXPECT_EQ(db_.stats().batched_rows, 10u);
}

TEST_F(ShredLoadTest, InlinedValuesStored) {
  ASSERT_TRUE(shredder_->LoadDocument(*doc_, false).ok());
  auto r = db_.ExecuteQuery(
      "SELECT Name, Address_City, Address_State, Address_present FROM "
      "Customer WHERE Address_State = 'CA'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "Mary");
  EXPECT_EQ(r->rows[0][1].AsString(), "Fresno");
  EXPECT_EQ(r->rows[0][3].AsString(), "1");
}

TEST_F(ShredLoadTest, OptionalAbsentIsNull) {
  ASSERT_TRUE(shredder_->LoadDocument(*doc_, false).ok());
  // No order lacks a Status in the fixture; delete one to observe NULL via
  // a fresh insert instead: check customer 3 (no orders) exists with NULLs
  // only where expected. Simpler: Status of all orders is non-NULL.
  auto r = db_.ExecuteQuery(
      "SELECT COUNT(*) FROM Ord WHERE Status IS NULL");
  // Table is named "Order"; ensure wrong name errors out:
  EXPECT_FALSE(r.ok());
  auto r2 = db_.ExecuteQuery(
      "SELECT COUNT(*) FROM Order WHERE Status IS NULL");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].AsInt(), 0);
}

TEST_F(ShredLoadTest, OuterUnionRoundTripsDocument) {
  ASSERT_TRUE(shredder_->LoadDocument(*doc_, false).ok());
  auto rebuilt = ReconstructDocument(*mapping_, &db_);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  // Unordered comparison: the relational store does not keep document order.
  EXPECT_TRUE(xml::DeepEqualUnordered(*doc_->root(), *rebuilt.value()->root()))
      << "original:\n"
      << xml::Serialize(*doc_->root()) << "rebuilt:\n"
      << xml::Serialize(*rebuilt.value()->root());
}

TEST_F(ShredLoadTest, OuterUnionFilteredRegion) {
  ASSERT_TRUE(shredder_->LoadDocument(*doc_, false).ok());
  OuterUnionQuery query = BuildOuterUnion(
      *mapping_, mapping_->ForElement("Customer"), "Name = 'John'");
  auto result = db_.ExecuteQuery(query.sql);
  ASSERT_TRUE(result.ok()) << result.status() << "\nSQL: " << query.sql;
  auto roots = ReconstructFromOuterUnion(*mapping_, query.layout, *result);
  ASSERT_TRUE(roots.ok()) << roots.status();
  ASSERT_EQ(roots->size(), 2u);  // two Johns
  for (const auto& e : *roots) {
    EXPECT_EQ(e->name(), "Customer");
    EXPECT_EQ(e->FindChildElement("Name")->TextContent(), "John");
  }
  // The Seattle John has 2 orders with 3 lines total.
  size_t max_orders = 0;
  for (const auto& e : *roots) {
    size_t orders = 0;
    for (const auto& c : e->children()) {
      if (c->is_element() &&
          static_cast<xml::Element*>(c.get())->name() == "Order") {
        ++orders;
      }
    }
    max_orders = std::max(max_orders, orders);
  }
  EXPECT_EQ(max_orders, 2u);
}

TEST_F(ShredLoadTest, ShredSubtreeAssignsFreshIds) {
  ASSERT_TRUE(shredder_->LoadDocument(*doc_, false).ok());
  int64_t before = db_.next_id();
  auto frag = xml::ParseFragment(
      "<Order><Date>2001-01-01</Date><OrderLine><ItemName>bolt</ItemName>"
      "<Qty>9</Qty></OrderLine></Order>",
      xml::ParseOptions{});
  ASSERT_TRUE(frag.ok());
  auto tuples = shredder_->ShredSubtree(*frag.value(), 2);
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples->size(), 2u);
  EXPECT_EQ(tuples->front().id, before);
  EXPECT_EQ(tuples->front().parent_id, 2);
  EXPECT_EQ(tuples->back().parent_id, before);
}

TEST_F(ShredLoadTest, UnmappedElementRejected) {
  auto frag = xml::ParseFragment("<Widget/>", xml::ParseOptions{});
  ASSERT_TRUE(frag.ok());
  auto tuples = shredder_->ShredSubtree(*frag.value(), 1);
  EXPECT_FALSE(tuples.ok());
}

}  // namespace
}  // namespace xupd::shred
