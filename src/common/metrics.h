// Engine-wide observability primitives: a monotonic clock, log-bucketed
// latency histograms, a registry of named counters/gauges/histograms, and a
// fixed-size ring buffer of structured trace events.
//
// The paper's argument is experimental — figs. 6-11 attribute update cost
// to strategy choices — so the engine must be able to say *where time went*,
// not just how often things happened (that is rdb/stats.h's job). Everything
// here is built to be always-on: recording a histogram sample is one clock
// read plus one bucket increment, and recording a trace event is a struct
// copy into a preallocated ring. Nothing allocates on the hot path.
//
// Thread safety: the multi-threaded engine (epoch-snapshot readers, the
// group-commit flusher, the background checkpointer) records into these
// primitives from several threads at once. Histogram::Record and registry
// counters/gauges are relaxed atomics — concurrent Record() calls never
// tear, though a reader taking a snapshot mid-burst may observe a count
// that is ahead of the matching bucket (monotonic, eventually consistent).
// EventLog is mutex-guarded (Record is rare enough that a lock beats the
// complexity of a lock-free ring). MetricsRegistry's get-or-create maps are
// mutex-guarded; the returned pointers stay valid for the registry's
// lifetime and are themselves atomic, so hot paths still touch plain
// memory after a one-time lookup.
#ifndef XUPD_COMMON_METRICS_H_
#define XUPD_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xupd {

/// Nanoseconds on the monotonic clock. All histogram samples and event
/// timestamps use this time base; it is not wall time.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Point-in-time summary of a Histogram. Percentiles are interpolated
/// within the matching bucket and clamped to the observed [min, max].
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Log-linear latency histogram (HdrHistogram-style): values below 16 get
/// exact unit buckets; above that, each power-of-two octave is split into
/// 16 linear sub-buckets, so relative error is bounded at ~6% across the
/// full uint64 range. Record() is one std::bit_width plus one relaxed
/// atomic increment, safe to call from any thread. Readers (Percentile,
/// Snapshot, Merge, copy) take a racy-but-untorn view: each word is loaded
/// atomically, so concurrent recording can skew a snapshot by at most the
/// in-flight samples.
///
/// Samples are dimensionless; engine call sites record nanoseconds.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                       // 16 sub-buckets
  static constexpr int kSubCount = 1 << kSubBits;          // per octave
  static constexpr int kFirstOctave = kSubBits;            // values >= 16
  static constexpr int kLastOctave = 63;
  static constexpr int kBucketCount =
      kSubCount + (kLastOctave - kFirstOctave + 1) * kSubCount;

  Histogram() = default;
  Histogram(const Histogram& other) { CopyFrom(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Bucket index for a value. Deterministic and exposed for tests:
  /// BucketIndex(v) == v for v < 16; BucketIndex(32) starts a new octave.
  static int BucketIndex(uint64_t value) {
    if (value < kSubCount) return static_cast<int>(value);
    const int octave = std::bit_width(value) - 1;  // >= kFirstOctave
    const int shift = octave - kSubBits;
    const int sub = static_cast<int>((value >> shift) - kSubCount);
    return kSubCount + (octave - kFirstOctave) * kSubCount + sub;
  }

  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index) {
    if (index < kSubCount) return static_cast<uint64_t>(index);
    const int rel = index - kSubCount;
    const int octave = rel / kSubCount + kFirstOctave;
    const int sub = rel % kSubCount;
    const int shift = octave - kSubBits;
    return static_cast<uint64_t>(kSubCount + sub) << shift;
  }

  /// Width of bucket `index` (1 for the exact range).
  static uint64_t BucketWidth(int index) {
    if (index < kSubCount) return 1;
    const int octave = (index - kSubCount) / kSubCount + kFirstOctave;
    return uint64_t{1} << (octave - kSubBits);
  }

  void Record(uint64_t value) {
    buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t m = min_.load(std::memory_order_relaxed);
    while (value < m &&
           !min_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
    }
    m = max_.load(std::memory_order_relaxed);
    while (value > m &&
           !max_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kNoMin ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Value at percentile `p` in [0, 100]: linear interpolation inside the
  /// bucket holding the p-th sample, clamped to [min, max] so single-sample
  /// and narrow distributions report exact observed values. Returns 0 when
  /// empty.
  double Percentile(double p) const;

  /// Adds every bucket (and count/sum/min/max) of `other` into this.
  void Merge(const Histogram& other);

  void Reset() { *this = Histogram{}; }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    s.count = count();
    s.sum = sum();
    s.min = min();
    s.max = max();
    s.p50 = Percentile(50);
    s.p95 = Percentile(95);
    s.p99 = Percentile(99);
    return s;
  }

 private:
  static constexpr uint64_t kNoMin = UINT64_MAX;  // min_ when empty.

  void CopyFrom(const Histogram& other) {
    for (int i = 0; i < kBucketCount; ++i) {
      buckets_[static_cast<size_t>(i)].store(
          other.buckets_[static_cast<size_t>(i)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{kNoMin};
  std::atomic<uint64_t> max_{0};
};

/// One structured trace event: a timestamped span with two numeric payload
/// slots whose meaning depends on the kind (see the kind comments).
/// `detail` must point at a string literal or other static storage — the
/// ring never copies it, which keeps Record() allocation-free.
///
/// Causal identity (PR 9): every recorded event carries the recording
/// thread's id, a process-order sequence number, and a
/// (trace_id, span_id, parent_span_id) triple. Call sites normally leave
/// the causal fields zero — EventLog::Record fills them from the calling
/// thread's trace::Context — and set them explicitly only when a span was
/// handed off from another thread (group-commit fsync, background
/// checkpoint).
struct TraceEvent {
  enum class Kind : uint8_t {
    kStatement,   ///< one SQL statement; a = sql::Statement::Kind.
    kTxn,         ///< outermost BEGIN..COMMIT/ROLLBACK; a = 1 if committed.
    kWalUnit,     ///< one WAL commit unit; a = records, b = bytes.
    kFsync,       ///< one WAL fsync; a = commit units batched into it.
    kCheckpoint,  ///< snapshot + WAL truncation (snapshot.write histogram
                  ///< holds the write alone). a = 0 blocking, 1 background
                  ///< snapshot write, 2 background schedule (writer side).
    kRecovery,    ///< startup replay; a = records replayed.
    kScrub,       ///< integrity scrub; a = violations found.
    kEngineOp,    ///< one engine/store.cc operation; a = SQL exec ns,
                  ///< b = trigger-cascade ns; detail = op name.
    kGovernance,  ///< resource-governance event (heal backoff, watchdog
                  ///< stall); detail names it, a/b are event-specific.
  };
  Kind kind = Kind::kStatement;
  uint64_t start_ns = 0;     ///< MonotonicNanos() at span start.
  uint64_t duration_ns = 0;  ///< span length.
  uint64_t a = 0;            ///< kind-specific payload.
  uint64_t b = 0;            ///< kind-specific payload.
  const char* detail = nullptr;  ///< static string or nullptr.
  uint32_t tid = 0;              ///< trace::CurrentTid() of the recorder.
  uint64_t seq = 0;              ///< stamped atomically by EventLog::Record.
  uint64_t trace_id = 0;         ///< causal root id (0 = stamp from context).
  uint64_t span_id = 0;          ///< this span's id (0 = allocate fresh).
  uint64_t parent_span_id = 0;   ///< causal parent (0 = current span).
};

const char* ToString(TraceEvent::Kind kind);

// --- trace context ----------------------------------------------------------
//
// Lightweight causal propagation: each thread carries a current
// (trace_id, span_id) in a thread_local trace::Context; SpanScope pushes a
// fresh span for the dynamic extent of a statement/engine op, and a Handoff
// token carries the pair by value across an explicit thread boundary (the
// writer stashes one for the group-commit flusher and the background
// checkpointer). Everything here is allocation-free: ids come from one
// relaxed atomic counter, thread names must be static strings.
namespace trace {

/// Small dense id (>= 1) of the calling thread, assigned on first use.
uint32_t CurrentTid();

/// Names the calling thread's track in DumpChromeTrace() output. `name`
/// must be a string literal or other static storage.
void SetCurrentThreadName(const char* name);

/// Registered name for `tid`, or nullptr when the thread never named
/// itself.
const char* ThreadName(uint32_t tid);

/// Process-unique nonzero span id.
uint64_t NextSpanId();

/// The calling thread's current causal position. Both ids are zero outside
/// any SpanScope.
struct Context {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};
Context& CurrentContext();

/// A span's identity captured for another thread: record the remote event
/// with trace_id = token.trace_id and parent_span_id = token.parent_span_id
/// to keep the cross-thread edge in the trace.
struct Handoff {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

/// Current position as a handoff token (zeros outside any scope).
inline Handoff CaptureHandoff() {
  const Context& c = CurrentContext();
  return Handoff{c.trace_id, c.span_id};
}

/// RAII: makes a fresh span the thread's current one for the scope's
/// lifetime. A scope opened with no active span and no handoff roots a new
/// trace (trace_id = its own span_id).
class SpanScope {
 public:
  SpanScope() : SpanScope(CaptureHandoff()) {}
  explicit SpanScope(const Handoff& from) {
    Context& cur = CurrentContext();
    prev_ = cur;
    parent_span_id_ = from.parent_span_id;
    cur.span_id = NextSpanId();
    cur.trace_id = from.trace_id != 0 ? from.trace_id : cur.span_id;
    ctx_ = cur;
  }
  ~SpanScope() { CurrentContext() = prev_; }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint64_t trace_id() const { return ctx_.trace_id; }
  uint64_t span_id() const { return ctx_.span_id; }
  uint64_t parent_span_id() const { return parent_span_id_; }
  Handoff handoff() const { return Handoff{ctx_.trace_id, ctx_.span_id}; }

  /// Stamps `e` with this scope's identity (the event IS this span).
  void Annotate(TraceEvent* e) const {
    e->trace_id = ctx_.trace_id;
    e->span_id = ctx_.span_id;
    e->parent_span_id = parent_span_id_;
  }

 private:
  Context prev_;
  Context ctx_;
  uint64_t parent_span_id_ = 0;
};

}  // namespace trace

/// Fixed-capacity ring of TraceEvents. When full, the oldest event is
/// overwritten and `dropped()` counts it; the engine can therefore trace
/// forever with bounded memory and no branch-heavy bookkeeping. A mutex
/// guards the ring — events are recorded at statement/fsync granularity
/// (thousands per second, not millions), so contention is negligible and
/// recording from the writer, flusher, and checkpoint threads is safe.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024) : ring_(capacity) {}

  /// Copies `e` into the ring, stamping the causal fields first: `seq` is
  /// taken from an atomic counter (so dumps can be ordered even when
  /// concurrent threads race into slots), `tid` defaults to the calling
  /// thread, and zero span fields are filled from the thread's
  /// trace::Context (fresh span_id, parent = current span, trace inherited
  /// or self-rooted).
  void Record(const TraceEvent& e);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return ring_.size(); }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    size_ = head_ = 0;
    dropped_ = 0;
  }

  /// Events in recording (sequence) order, oldest-first. Slot order can
  /// deviate from sequence order when threads race between the seq stamp
  /// and the ring insert, so this sorts by `seq`.
  std::vector<TraceEvent> Events() const;

  /// One JSON object per event, sequence order.
  std::vector<std::string> ToJsonLines() const;

  /// The whole ring as a JSON array, sequence order.
  std::string DumpJson() const;

  /// Chrome/Perfetto trace-event JSON: one "X" (complete duration) event
  /// per span on its thread's track (ts/dur in microseconds), "M" metadata
  /// naming every track (trace::ThreadName or "thread-<tid>"), and "s"/"f"
  /// flow arrows for every parent→child edge that crosses threads. Load
  /// the result in chrome://tracing or ui.perfetto.dev.
  std::string DumpChromeTrace() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // capacity fixed after construction.
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  std::atomic<uint64_t> next_seq_{1};
};

/// Named counters, gauges, and histograms. Counter()/Gauge()/GetHistogram()
/// are get-or-create and return pointers that stay valid for the registry's
/// lifetime, so call sites resolve names once and then touch plain memory.
/// Counters and gauges are atomics (updated via the returned pointer from
/// any thread); the name maps are mutex-guarded. Iteration and export are
/// name-sorted for deterministic output.
class MetricsRegistry {
 public:
  /// Monotonically increasing counter (caller increments through the
  /// returned pointer).
  std::atomic<uint64_t>* Counter(std::string_view name);

  /// Point-in-time gauge (caller assigns through the returned pointer).
  std::atomic<int64_t>* Gauge(std::string_view name);

  Histogram* GetHistogram(std::string_view name);

  /// Existing histogram or nullptr (does not create).
  const Histogram* FindHistogram(std::string_view name) const;

  template <typename Fn>  // fn(const std::string&, uint64_t)
  void ForEachCounter(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : counters_) {
      fn(name, value->load(std::memory_order_relaxed));
    }
  }

  template <typename Fn>  // fn(const std::string&, int64_t)
  void ForEachGauge(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : gauges_) {
      fn(name, value->load(std::memory_order_relaxed));
    }
  }

  template <typename Fn>  // fn(const std::string&, const Histogram&)
  void ForEachHistogram(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, hist] : histograms_) fn(name, *hist);
  }

  /// "name value" per line; histograms expand to name.count / name.p50 /
  /// name.p95 / name.p99 / name.max / name.sum.
  std::string ExportText() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{snapshot...}}}.
  std::string ExportJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<std::atomic<int64_t>>, std::less<>>
      gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xupd

#endif  // XUPD_COMMON_METRICS_H_
