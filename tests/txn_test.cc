// Transaction subsystem tests: BEGIN/COMMIT/ROLLBACK through SQL, savepoint
// nesting, the DDL-in-txn barrier, undo of inserts/deletes/updates including
// hash-index and tombstone state, trigger-cascade logging, and the engine
// guarantee the paper inherits from the relational engine (§6): a failure
// anywhere inside an XML update operation leaves element tables, indexes and
// the ASR exactly as they were.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "engine/store.h"
#include "rdb/database.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xupd {
namespace {

using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

// ---------------------------------------------------------------------------
// rdb layer

class RdbTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE t (id INTEGER, name VARCHAR)");
    Must("CREATE INDEX idx_t_id ON t (id)");
    Must("INSERT INTO t VALUES (1, 'a')");
    Must("INSERT INTO t VALUES (2, 'b')");
  }

  void Must(const std::string& sql) {
    Status s = db_.Execute(sql);
    ASSERT_TRUE(s.ok()) << sql << ": " << s;
  }

  int64_t Count(const std::string& table) {
    auto r = db_.ExecuteQuery("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  }

  // Probes through the hash index (id is indexed).
  int64_t CountById(int64_t id) {
    auto r = db_.ExecuteQuery("SELECT COUNT(*) FROM t WHERE id = " +
                              std::to_string(id));
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  }

  rdb::Database db_;
};

TEST_F(RdbTxnTest, RollbackUndoesInsertDeleteUpdate) {
  rdb::Table* t = db_.FindTable("t");
  size_t capacity_before = t->capacity();
  size_t index_before = t->FindIndexOnColumn(0)->size();

  Must("BEGIN");
  Must("INSERT INTO t VALUES (3, 'c')");
  Must("DELETE FROM t WHERE id = 1");
  Must("UPDATE t SET id = 20, name = 'B' WHERE id = 2");
  EXPECT_EQ(CountById(20), 1);
  EXPECT_EQ(CountById(1), 0);
  Must("ROLLBACK");

  EXPECT_EQ(Count("t"), 2);
  EXPECT_EQ(CountById(1), 1);   // tombstone revived, index entry back
  EXPECT_EQ(CountById(2), 1);   // update undone through the index
  EXPECT_EQ(CountById(20), 0);
  EXPECT_EQ(CountById(3), 0);   // insert gone
  auto name = db_.ExecuteQuery("SELECT name FROM t WHERE id = 2");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->rows[0][0].AsString(), "b");
  EXPECT_EQ(t->capacity(), capacity_before);  // LIFO undo popped the slot
  EXPECT_EQ(t->FindIndexOnColumn(0)->size(), index_before);
}

TEST_F(RdbTxnTest, CommitMakesChangesDurable) {
  Must("BEGIN TRANSACTION");
  Must("INSERT INTO t VALUES (3, 'c')");
  Must("COMMIT TRANSACTION");
  EXPECT_EQ(Count("t"), 3);
  EXPECT_FALSE(db_.in_transaction());
  EXPECT_EQ(db_.undo_log_size(), 0u);
  // A rollback after commit has nothing to undo.
  Status s = db_.Execute("ROLLBACK");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Count("t"), 3);
}

TEST_F(RdbTxnTest, NestedScopesAreSavepoints) {
  Must("BEGIN");
  Must("INSERT INTO t VALUES (3, 'outer')");
  Must("BEGIN");  // savepoint
  Must("INSERT INTO t VALUES (4, 'inner')");
  EXPECT_EQ(db_.transaction_depth(), 2u);
  Must("ROLLBACK");  // undoes only the inner scope
  EXPECT_EQ(Count("t"), 3);
  EXPECT_EQ(CountById(3), 1);
  EXPECT_EQ(CountById(4), 0);
  Must("COMMIT");
  EXPECT_EQ(Count("t"), 3);
}

TEST_F(RdbTxnTest, InnerCommitMergesIntoOuterScope) {
  Must("BEGIN");
  Must("BEGIN");
  Must("INSERT INTO t VALUES (3, 'inner')");
  Must("COMMIT");  // merges into the outer scope, not durable yet
  EXPECT_EQ(Count("t"), 3);
  Must("ROLLBACK");  // outer rollback undoes the merged writes
  EXPECT_EQ(Count("t"), 2);
  EXPECT_EQ(CountById(3), 0);
}

TEST_F(RdbTxnTest, DdlInsideTransactionIsRejected) {
  Must("BEGIN");
  for (const char* ddl :
       {"CREATE TABLE t2 (id INTEGER)", "CREATE INDEX idx2 ON t (name)",
        "DROP TABLE t", "DROP INDEX idx_t_id ON t",
        "CREATE TRIGGER trg AFTER DELETE ON t FOR EACH ROW BEGIN "
        "DELETE FROM t WHERE id = OLD.id; END"}) {
    Status s = db_.Execute(ddl);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << ddl << ": " << s;
  }
  Must("COMMIT");
  Must("CREATE TABLE t2 (id INTEGER)");  // fine outside
}

TEST_F(RdbTxnTest, CommitAndRollbackWithoutBeginFail) {
  EXPECT_EQ(db_.Execute("COMMIT").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.Execute("ROLLBACK").code(), StatusCode::kInvalidArgument);
}

TEST_F(RdbTxnTest, RollbackRestoresNextId) {
  db_.set_next_id(100);
  ASSERT_TRUE(db_.Begin().ok());
  db_.AllocateIdBlock(50);
  EXPECT_EQ(db_.next_id(), 150);
  ASSERT_TRUE(db_.Rollback().ok());
  EXPECT_EQ(db_.next_id(), 100);
}

TEST_F(RdbTxnTest, StatsCountTxnActivity) {
  rdb::Stats before = db_.stats();
  Must("BEGIN");
  Must("INSERT INTO t VALUES (3, 'c')");
  Must("DELETE FROM t WHERE id = 3");
  Must("ROLLBACK");
  Must("BEGIN");
  Must("COMMIT");
  rdb::Stats delta = db_.stats().Delta(before);
  EXPECT_EQ(delta.txn_begins, 2u);
  EXPECT_EQ(delta.txn_commits, 1u);
  EXPECT_EQ(delta.txn_rollbacks, 1u);
  EXPECT_EQ(delta.undo_records, 2u);  // one insert + one delete
}

TEST_F(RdbTxnTest, TriggerWritesLogIntoEnclosingTxn) {
  Must("CREATE TABLE child (id INTEGER, parentId INTEGER)");
  Must("CREATE INDEX idx_child_pid ON child (parentId)");
  Must("INSERT INTO child VALUES (10, 1)");
  Must("INSERT INTO child VALUES (11, 1)");
  Must("CREATE TRIGGER trg_t AFTER DELETE ON t FOR EACH ROW BEGIN "
       "DELETE FROM child WHERE parentId = OLD.id; END");
  Must("BEGIN");
  Must("DELETE FROM t WHERE id = 1");
  EXPECT_EQ(Count("child"), 0);  // cascade fired
  Must("ROLLBACK");
  EXPECT_EQ(Count("t"), 2);
  EXPECT_EQ(Count("child"), 2);  // cascade undone too
  auto probe = db_.ExecuteQuery("SELECT COUNT(*) FROM child WHERE parentId = 1");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->rows[0][0].AsInt(), 2);  // index entries restored
}

TEST_F(RdbTxnTest, InjectedFailureInsideStatementSequence) {
  ASSERT_TRUE(db_.Begin().ok());
  Must("INSERT INTO t VALUES (3, 'c')");
  db_.InjectFailureAfterStatements(0);
  Status s = db_.Execute("INSERT INTO t VALUES (4, 'd')");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  ASSERT_TRUE(db_.Rollback().ok());
  EXPECT_EQ(Count("t"), 2);
}

// ---------------------------------------------------------------------------
// engine layer: mid-operation failure must restore the pre-op snapshot.

struct StoreState {
  std::map<std::string, size_t> live_counts;
  std::map<std::string, size_t> id_index_sizes;
  int64_t next_id = 0;
  size_t asr_rows = 0;
  std::string document;
};

StoreState Capture(RelationalStore* store) {
  StoreState state;
  for (const std::string& name : store->db()->TableNames()) {
    // Engine scratch (the lazily-created id-list table, temp staging) is not
    // document state: it is unwired from the undo log by design, so both its
    // catalog entry and its last staged contents survive rollback.
    if (name == "xupd_idlist" || name.rfind("tmp_", 0) == 0) continue;
    const rdb::Table* t = store->db()->FindTable(name);
    state.live_counts[name] = t->live_count();
    const rdb::HashIndex* idx = t->FindIndexOnColumn(0);
    if (idx != nullptr) state.id_index_sizes[name] = idx->size();
  }
  state.next_id = store->db()->next_id();
  if (store->asr() != nullptr) state.asr_rows = store->asr()->RowCount();
  auto doc = store->Reconstruct();
  EXPECT_TRUE(doc.ok()) << doc.status();
  if (doc.ok()) state.document = xml::Serialize(*doc.value()->root());
  return state;
}

void ExpectSameState(const StoreState& before, const StoreState& after) {
  EXPECT_EQ(before.live_counts, after.live_counts);
  EXPECT_EQ(before.id_index_sizes, after.id_index_sizes);
  EXPECT_EQ(before.next_id, after.next_id);
  EXPECT_EQ(before.asr_rows, after.asr_rows);
  EXPECT_EQ(before.document, after.document);
}

std::unique_ptr<RelationalStore> MakeStore(DeleteStrategy del,
                                           InsertStrategy ins) {
  auto dtd = testing::MustParseDtd(testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = del;
  options.insert_strategy = ins;
  auto store = RelationalStore::Create(dtd, options);
  EXPECT_TRUE(store.ok()) << store.status();
  auto doc = testing::MustParse(testing::kCustomerXml);
  Status s = store.value()->Load(*doc);
  EXPECT_TRUE(s.ok()) << s;
  return std::move(store).value();
}

/// Statement executions (incl. trigger bodies) one run of `op` performs.
int64_t CountStatements(RelationalStore* store,
                        const std::function<Status(RelationalStore*)>& op) {
  rdb::Stats before = store->stats();
  Status s = op(store);
  EXPECT_TRUE(s.ok()) << s;
  rdb::Stats delta = store->stats().Delta(before);
  return static_cast<int64_t>(delta.statements + delta.trigger_statements);
}

/// Runs `op` against fresh stores with a failure injected at several points
/// and verifies the store always rolls back to its pre-op state.
void CheckMidFailureRollback(DeleteStrategy del, InsertStrategy ins,
                             const std::function<Status(RelationalStore*)>& op) {
  int64_t total = CountStatements(MakeStore(del, ins).get(), op);
  ASSERT_GT(total, 1) << "op too small to fail mid-flight";
  std::vector<int64_t> points = {1, total / 2, total - 1};
  for (int64_t k : points) {
    if (k < 1 || k >= total) continue;
    auto store = MakeStore(del, ins);
    StoreState before = Capture(store.get());
    store->db()->InjectFailureAfterStatements(k);
    Status s = op(store.get());
    store->db()->InjectFailureAfterStatements(-1);  // disarm leftovers
    ASSERT_EQ(s.code(), StatusCode::kInternal)
        << "expected the injected failure at k=" << k << ", got: " << s;
    EXPECT_FALSE(store->db()->in_transaction());
    EXPECT_EQ(store->db()->undo_log_size(), 0u);
    StoreState after = Capture(store.get());
    {
      SCOPED_TRACE("failure injected after " + std::to_string(k) + " of " +
                   std::to_string(total) + " statements");
      ExpectSameState(before, after);
    }
  }
}

class InsertRollbackTest : public ::testing::TestWithParam<InsertStrategy> {};

TEST_P(InsertRollbackTest, MidCopySubtreesWhereFailureRollsBack) {
  CheckMidFailureRollback(
      DeleteStrategy::kPerTupleTrigger, GetParam(), [](RelationalStore* s) {
        return s->CopySubtreesWhere("Customer", "", s->root_id());
      });
}

TEST_P(InsertRollbackTest, TempStagingTablesAreCleanedUpOnFailure) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, GetParam());
  int64_t total = CountStatements(store.get(), [](RelationalStore* s) {
    return s->CopySubtreesWhere("Customer", "", s->root_id());
  });
  auto victim = MakeStore(DeleteStrategy::kPerTupleTrigger, GetParam());
  victim->db()->InjectFailureAfterStatements(total / 2);
  Status s = victim->CopySubtreesWhere("Customer", "", victim->root_id());
  victim->db()->InjectFailureAfterStatements(-1);
  ASSERT_FALSE(s.ok());
  for (const std::string& name : victim->db()->TableNames()) {
    EXPECT_NE(name.rfind("tmp_", 0), 0u) << "staging table leaked: " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, InsertRollbackTest,
                         ::testing::Values(InsertStrategy::kTuple,
                                           InsertStrategy::kTable,
                                           InsertStrategy::kAsr),
                         [](const auto& info) {
                           return ToString(info.param) == std::string("tuple")
                                      ? "Tuple"
                                  : ToString(info.param) == std::string("table")
                                      ? "Table"
                                      : "Asr";
                         });

class DeleteRollbackTest : public ::testing::TestWithParam<DeleteStrategy> {};

TEST_P(DeleteRollbackTest, MidDeleteFailureRollsBack) {
  CheckMidFailureRollback(GetParam(), InsertStrategy::kTable,
                          [](RelationalStore* s) {
                            return s->DeleteWhere("Customer", "");
                          });
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DeleteRollbackTest,
                         ::testing::Values(DeleteStrategy::kPerTupleTrigger,
                                           DeleteStrategy::kPerStatementTrigger,
                                           DeleteStrategy::kCascade,
                                           DeleteStrategy::kAsr),
                         [](const auto& info) {
                           std::string name = ToString(info.param);
                           return name == "per-tuple"     ? "PerTuple"
                                  : name == "per-stm"     ? "PerStatement"
                                  : name == "cascade"     ? "Cascade"
                                                          : "Asr";
                         });

TEST(TxnEngineTest, TriggerCascadeDeleteMidFailureRestoresEverything) {
  // The per-tuple trigger delete is ONE SQL statement whose cascade runs
  // entirely inside trigger bodies; the failpoint lands inside the cascade.
  auto probe = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  rdb::Stats before_stats = probe->stats();
  ASSERT_TRUE(probe->DeleteWhere("Customer", "").ok());
  rdb::Stats delta = probe->stats().Delta(before_stats);
  int64_t total =
      static_cast<int64_t>(delta.statements + delta.trigger_statements);
  ASSERT_GT(total, 2);  // a real cascade, not a single statement

  for (int64_t k = 1; k < total; ++k) {
    auto store =
        MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
    StoreState before = Capture(store.get());
    store->db()->InjectFailureAfterStatements(k);
    Status s = store->DeleteWhere("Customer", "");
    store->db()->InjectFailureAfterStatements(-1);
    ASSERT_EQ(s.code(), StatusCode::kInternal) << "k=" << k;
    StoreState after = Capture(store.get());
    SCOPED_TRACE("cascade failpoint k=" + std::to_string(k));
    ExpectSameState(before, after);
  }
}

TEST(TxnEngineTest, TranslatorStatementMidFailureRollsBack) {
  // Example 8-style statement: several sub-operations over multiple targets.
  const char* kQuery = R"(
    FOR $o IN document("custdb.xml")//Order[Status="ready"]
    UPDATE $o {
      INSERT <Status>suspended</Status>,
      FOR $i IN $o/OrderLine[ItemName="tire"]
      UPDATE $i { INSERT <comment>recalled</comment> }
    })";
  CheckMidFailureRollback(
      DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable,
      [kQuery](RelationalStore* s) { return s->ExecuteXQueryUpdate(kQuery); });
}

TEST(TxnEngineTest, TranslatorDeleteMidFailureRollsBack) {
  const char* kQuery = R"(
    FOR $d IN document("custdb.xml"),
        $c IN $d/Customer[Name="John"]
    UPDATE $d { DELETE $c })";
  CheckMidFailureRollback(
      DeleteStrategy::kAsr, InsertStrategy::kAsr,
      [kQuery](RelationalStore* s) { return s->ExecuteXQueryUpdate(kQuery); });
}

TEST(TxnEngineTest, AutocommitModeLeavesPartialEffects) {
  // Contrast case documenting what Options::transactional buys: without it,
  // a mid-operation failure strands partial writes.
  auto dtd = testing::MustParseDtd(testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerTupleTrigger;
  options.insert_strategy = InsertStrategy::kTuple;
  options.insert_batch_size = 1;
  options.transactional = false;
  auto store_or = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  auto doc = testing::MustParse(testing::kCustomerXml);
  ASSERT_TRUE(store->Load(*doc).ok());
  int64_t customers = store->db()->FindTable("Customer")->live_count();
  // Outer-union read + first INSERT succeed, second INSERT fails.
  store->db()->InjectFailureAfterStatements(2);
  Status s = store->CopySubtreesWhere("Customer", "", store->root_id());
  store->db()->InjectFailureAfterStatements(-1);
  ASSERT_FALSE(s.ok());
  EXPECT_GT(store->db()->FindTable("Customer")->live_count(),
            static_cast<size_t>(customers));  // stranded partial copy
}

TEST(TxnEngineTest, IdListScratchStaysBoundedAcrossStatements) {
  // The translator's id staging truncates the scratch table per use; slots
  // must not accumulate across statements (a tombstoning DELETE would grow
  // the slot array, and every later probe over it, without bound).
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  const char* kQuery = R"(
    FOR $c IN document("custdb.xml")/Customer[Name="Mary"]
    UPDATE $c { INSERT <Name>Mary</Name> })";
  ASSERT_TRUE(store->ExecuteXQueryUpdate(kQuery).ok());
  const rdb::Table* scratch = store->db()->FindTable("xupd_idlist");
  ASSERT_NE(scratch, nullptr);
  size_t capacity_after_one = scratch->capacity();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->ExecuteXQueryUpdate(kQuery).ok());
  }
  EXPECT_EQ(scratch->capacity(), capacity_after_one);
}

TEST(TxnEngineTest, IdListScratchIsNotUndoLogged) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  uint64_t undo_before = store->stats().undo_records;
  // A statement whose only writes are scratch staging + one real UPDATE:
  // the undo log must reflect the real write, not the staged ids.
  ASSERT_TRUE(store->ExecuteXQueryUpdate(R"(
    FOR $c IN document("custdb.xml")/Customer[Name="Mary"]
    UPDATE $c { INSERT <Name>Maria</Name> })").ok());
  uint64_t undo = store->stats().undo_records - undo_before;
  EXPECT_GT(undo, 0u);
  EXPECT_LE(undo, 4u);  // column updates on the one matched customer row
}

TEST(TxnEngineTest, SuccessfulOpsCommitAndLeaveNoOpenScope) {
  auto store = MakeStore(DeleteStrategy::kPerTupleTrigger, InsertStrategy::kTable);
  ASSERT_TRUE(store->CopySubtreesWhere("Customer", "Name = 'Mary'",
                                       store->root_id()).ok());
  ASSERT_TRUE(store->DeleteWhere("Customer", "Name = 'John'").ok());
  EXPECT_FALSE(store->db()->in_transaction());
  EXPECT_EQ(store->db()->undo_log_size(), 0u);
  rdb::Stats stats = store->stats();
  EXPECT_GT(stats.txn_begins, 0u);
  EXPECT_EQ(stats.txn_begins, stats.txn_commits);
  EXPECT_EQ(stats.txn_rollbacks, 0u);
}

}  // namespace
}  // namespace xupd
