// Execution statistics — the observable cost model of the engine. Tests and
// benches assert on these (e.g. tuple-based insert issues O(#tuples)
// statements; per-statement triggers scan whole child relations).
//
// Fields are declared once, in the XUPD_RDB_STATS_FIELDS X-macro: each
// X(field, label) entry generates the counter itself, its Delta() line, its
// ToString() key and its ForEachField() visit, so a new counter cannot be
// half-wired (the old hand-written Delta/ToString silently dropped fields
// that were added in only one place).
#ifndef XUPD_RDB_STATS_H_
#define XUPD_RDB_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace xupd::rdb {

/// One stats counter: a relaxed-atomic uint64 that still behaves like a
/// plain integer at call sites (`++s.rows_scanned`, `s.wal_bytes += n`,
/// `EXPECT_EQ(3u, s.rows_inserted)`). The writer thread owns all mutations
/// on most counters, but epoch-snapshot reader sessions bump their own
/// Stats concurrently with snapshot copies (slow-log deltas, SHOW STATS),
/// and the group-commit flusher bumps wal_fsyncs from its own thread —
/// relaxed atomics keep every such access untorn and TSan-clean without
/// imposing ordering the cost model doesn't need. Copyable so `Stats
/// before = stats_;` snapshots keep working.
class RelaxedU64 {
 public:
  RelaxedU64() = default;
  RelaxedU64(uint64_t v) : v_(v) {}  // NOLINT: implicit by design
  RelaxedU64(const RelaxedU64& o) : v_(o.load()) {}
  RelaxedU64& operator=(const RelaxedU64& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const { return load(); }  // NOLINT: implicit by design
  RelaxedU64& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator+=(uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator-=(uint64_t n) {
    v_.fetch_sub(n, std::memory_order_relaxed);
    return *this;
  }
  uint64_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// X(field, label): `field` is the struct member, `label` the short key used
// by ToString() — bench logs and tests grep these, keep them stable.
#define XUPD_RDB_STATS_FIELDS(X)                                             \
  /* SQL statements issued through Database::Execute / ExecuteQuery /        \
     ExecutePrepared (each pays the simulated round-trip latency once). */   \
  X(statements, "stmts")                                                     \
  /* Full ParseSql invocations: every Execute/ExecuteQuery call plus every   \
     prepared-cache miss. Statement reuse shows up as this counter growing   \
     slower than `statements`. */                                            \
  X(sql_parses, "parses")                                                    \
  /* Prepared-statement cache hits: Database::Prepare (or the ExecuteBound   \
     convenience wrappers) found the SQL text already parsed and skipped     \
     ParseSql entirely. */                                                   \
  X(prepared_hits, "prep_hits")                                              \
  /* Prepared-statement cache misses: Prepare had to parse. misses == the    \
     number of distinct statement shapes seen (modulo LRU eviction and DDL   \
     invalidation). */                                                       \
  X(prepared_misses, "prep_miss")                                            \
  /* Rows inserted through multi-row INSERT ... VALUES (...), (...) ...      \
     statements (only statements carrying more than one row count). The     \
     batched bulk-load path drives this. */                                  \
  X(batched_rows, "batched")                                                 \
  /* Plans built by the logical planner: every ad-hoc Execute/ExecuteQuery   \
     of a plannable statement, every plan-cache miss, and every EXPLAIN. */  \
  X(plans_built, "plans")                                                    \
  /* Cached-plan reuses: ExecutePrepared/ExecuteBound (or a trigger body     \
     re-firing) found a plan still valid for the current catalog version     \
     and skipped name resolution + access-path selection entirely. */        \
  X(plan_cache_hits, "plan_hits")                                            \
  /* Statements executed inside trigger bodies. */                           \
  X(trigger_statements, "trig_stmts")                                        \
  /* Trigger firings (row triggers: per row; stmt triggers: per stmt). */    \
  X(trigger_firings, "trig_fires")                                           \
  /* Rows visited by table scans. */                                         \
  X(rows_scanned, "scanned")                                                 \
  /* Index probes (hash lookups). */                                         \
  X(index_probes, "probes")                                                  \
  X(rows_inserted, "ins")                                                    \
  X(rows_deleted, "del")                                                     \
  X(rows_updated, "upd")                                                     \
  /* Transaction scopes opened (nested Begin = savepoint counts too). */     \
  X(txn_begins, "txn_begin")                                                 \
  /* Scopes committed (outermost commit makes the changes durable). */       \
  X(txn_commits, "txn_commit")                                               \
  /* Scopes rolled back (each undoes that scope's records LIFO). */          \
  X(txn_rollbacks, "txn_rollback")                                           \
  /* Undo records logged (one per row insert/delete/column update executed   \
     while a transaction was active) — the txn write-amplification           \
     signal. */                                                              \
  X(undo_records, "undo")                                                    \
  /* Redo records written to the WAL file (data records, DDL records and     \
     commit markers) — the durability write-amplification signal. Pending    \
     records of rolled-back scopes never count. */                           \
  X(wal_appends, "wal_appends")                                              \
  /* Bytes written to the WAL file (frames + commit markers; excludes the    \
     file header). */                                                        \
  X(wal_bytes, "wal_bytes")                                                  \
  /* fsync calls issued by the WAL (per commit unit in `commit` mode, by    \
     the background flusher every group_commit_window_us microseconds in    \
     `batched`, zero in `none`). */                                         \
  X(wal_fsyncs, "wal_fsyncs")                                                \
  /* Snapshot checkpoints taken (each truncates the WAL). */                 \
  X(checkpoints, "checkpoints")                                              \
  /* Redo records replayed from the WAL by the last Database::Open. */       \
  X(recovery_replayed, "replayed")                                           \
  /* VerifyIntegrity runs (SQL CHECK INTEGRITY counts too). */               \
  X(integrity_checks, "scrubs")                                              \
  /* TryHeal attempts (each re-opens the data dir; successful or not). */    \
  X(heal_attempts, "heals")                                                  \
  /* Statements captured by the slow-statement log (threshold exceeded). */  \
  X(slow_statements, "slow")                                                 \
  /* EXPLAIN ANALYZE executions (the wrapped statement runs for real). */    \
  X(explain_analyzes, "analyzed")

struct Stats {
#define XUPD_RDB_STATS_DECLARE(field, label) RelaxedU64 field;
  XUPD_RDB_STATS_FIELDS(XUPD_RDB_STATS_DECLARE)
#undef XUPD_RDB_STATS_DECLARE

  void Reset() { *this = Stats{}; }

  Stats Delta(const Stats& earlier) const {
    Stats d;
#define XUPD_RDB_STATS_DELTA(field, label) d.field = field - earlier.field;
    XUPD_RDB_STATS_FIELDS(XUPD_RDB_STATS_DELTA)
#undef XUPD_RDB_STATS_DELTA
    return d;
  }

  std::string ToString() const {
    std::string out;
#define XUPD_RDB_STATS_TOSTRING(field, label) \
  if (!out.empty()) out += ' ';               \
  out += label "=";                           \
  out += std::to_string(field.load());
    XUPD_RDB_STATS_FIELDS(XUPD_RDB_STATS_TOSTRING)
#undef XUPD_RDB_STATS_TOSTRING
    return out;
  }

  /// Visits every counter as fn(field_name, value) in declaration order —
  /// SHOW METRICS enumerates the full cost model through this.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define XUPD_RDB_STATS_VISIT(field, label) fn(#field, field.load());
    XUPD_RDB_STATS_FIELDS(XUPD_RDB_STATS_VISIT)
#undef XUPD_RDB_STATS_VISIT
  }
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_STATS_H_
