// Shredder: walks an XML document and produces relational tuples according
// to a Mapping. Loading can go through SQL INSERT statements (authentic but
// slower) or the direct bulk API.
#ifndef XUPD_SHRED_SHREDDER_H_
#define XUPD_SHRED_SHREDDER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rdb/database.h"
#include "shred/mapping.h"
#include "xml/document.h"

namespace xupd::shred {

/// One shredded tuple, not yet inserted.
struct ShreddedTuple {
  const TableMapping* table = nullptr;
  int64_t id = 0;
  int64_t parent_id = 0;  ///< 0 = no parent (root).
  rdb::Row row;           ///< full row including id/parentId columns.
};

class Shredder {
 public:
  Shredder(const Mapping* mapping, rdb::Database* db)
      : mapping_(mapping), db_(db) {}

  /// Creates all tables and id/parentId indexes (always through SQL DDL).
  Status CreateSchema();

  /// Shreds and loads a whole document. Returns the root tuple id.
  /// `via_sql` loads through INSERT statements instead of the bulk API.
  Result<int64_t> LoadDocument(const xml::Document& doc, bool via_sql);

  /// Shreds the subtree rooted at `element` (which must map to a table),
  /// assigning fresh ids from the database id counter, with the subtree root
  /// attached to `parent_id`. Does not insert.
  Result<std::vector<ShreddedTuple>> ShredSubtree(const xml::Element& element,
                                                  int64_t parent_id);

  /// Renders an INSERT statement for a shredded tuple.
  static std::string InsertSql(const ShreddedTuple& tuple);

 private:
  Status FillFields(const xml::Element& element, const TableMapping* tm,
                    rdb::Row* row) const;
  Status ShredElement(const xml::Element& element, int64_t parent_id,
                      std::vector<ShreddedTuple>* out);

  const Mapping* mapping_;
  rdb::Database* db_;
};

}  // namespace xupd::shred

#endif  // XUPD_SHRED_SHREDDER_H_
